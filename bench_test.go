// Benchmark harness regenerating every table and figure of the paper's
// evaluation (see DESIGN.md's experiment index):
//
//	E1/E2 BenchmarkFigValidation*   — fluid vs packet rates and speed
//	E3    BenchmarkFigGantt         — the 2-server / 3-client execution
//	E4    BenchmarkFigMaxMin        — the MaxMin fairness solver
//	E5    BenchmarkTableLANPastry   — LAN message-exchange table
//	E6    BenchmarkTableWANPastry   — WAN message-exchange table
//	E7    BenchmarkSMPIMatmul       — the SMPI 1-D matrix multiply
//	      BenchmarkAblation*        — design-choice ablations
//
// Custom metrics: accuracy benches report mean|err| vs the packet
// comparator as "err%"; Pastry benches report the modelled exchange
// time as "ms/exchange".
package simgrid

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/gantt"
	"repro/internal/gras/codec"
	"repro/internal/maxmin"
	"repro/internal/msg"
	"repro/internal/packet"
	"repro/internal/pastry"
	"repro/internal/platform"
	"repro/internal/smpi"
	"repro/internal/surf"
	"repro/internal/validate"
)

// validationSetup builds the E1 workload at a bench-friendly scale
// (8 routers, 5 flows × 20 MB; cmd/validate runs the paper-scale one).
func validationSetup(b *testing.B) (*platform.Platform, []validate.FlowSpec) {
	b.Helper()
	pf, err := platform.GenerateWaxman(platform.DefaultWaxmanConfig(8, 42))
	if err != nil {
		b.Fatal(err)
	}
	return pf, validate.RandomFlows(pf, 5, 20e6, 7)
}

// BenchmarkFigValidationFluid times the SimGrid side of the validation
// figure (E1): one full fluid simulation of the flow set per iteration.
func BenchmarkFigValidationFluid(b *testing.B) {
	pf, flows := validationSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := validate.RunFluid(pf, flows, surf.DefaultConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigValidationPacketNS2 times the NS2 comparator on the same
// workload; the ns/op ratio against the fluid bench is the paper's
// "orders of magnitude faster" claim (E2).
func BenchmarkFigValidationPacketNS2(b *testing.B) {
	pf, flows := validationSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := validate.RunPacket(pf, flows, packet.VariantNS2); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigValidationAccuracy reports the fluid model's mean
// absolute rate error vs both packet comparators (the ±15% figure).
func BenchmarkFigValidationAccuracy(b *testing.B) {
	pf, flows := validationSetup(b)
	var errPct float64
	for i := 0; i < b.N; i++ {
		res, err := validate.Run(pf, flows, surf.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		errPct = 100 * res.MeanAbsErrVsNS2()
	}
	b.ReportMetric(errPct, "err%")
}

// BenchmarkFigGantt runs the paper's Gantt-figure scenario (E3):
// 3 clients × 2 servers exchanging 30 MFlop / 3.2 MB tasks.
func BenchmarkFigGantt(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pf := platform.New()
		if err := pf.AddRouter("hub"); err != nil {
			b.Fatal(err)
		}
		servers := []string{"server1", "server2"}
		clients := []string{"client1", "client2", "client3"}
		for _, n := range append(append([]string{}, servers...), clients...) {
			if err := pf.AddHost(&platform.Host{Name: n, Power: 1e9}); err != nil {
				b.Fatal(err)
			}
			l := &platform.Link{Name: "lan-" + n, Bandwidth: 1.25e7, Latency: 0.0001}
			if err := pf.Connect(n, "hub", l); err != nil {
				b.Fatal(err)
			}
		}
		if err := pf.ComputeRoutes(); err != nil {
			b.Fatal(err)
		}
		env := msg.NewEnvironment(pf, surf.DefaultConfig())
		env.Gantt = &gantt.Recorder{}
		for _, s := range servers {
			if _, err := env.NewProcess(s, s, func(p *msg.Process) error {
				p.Daemonize()
				for {
					task, err := p.Get(22)
					if err != nil {
						return err
					}
					if err := p.Execute(task); err != nil {
						return err
					}
					if err := p.Put(msg.NewTask("Ack", 0, 1e4), task.Source().Name, 23); err != nil {
						return err
					}
				}
			}); err != nil {
				b.Fatal(err)
			}
		}
		for ci, c := range clients {
			server := servers[ci%2]
			if _, err := env.NewProcess(c, c, func(p *msg.Process) error {
				if err := p.Put(msg.NewTask("Remote", 30e6, 3.2e6), server, 22); err != nil {
					return err
				}
				if err := p.Execute(msg.NewTask("Local", 10.5e6, 3.2e6)); err != nil {
					return err
				}
				_, err := p.Get(23)
				return err
			}); err != nil {
				b.Fatal(err)
			}
		}
		if err := env.Run(); err != nil {
			b.Fatal(err)
		}
		if len(env.Gantt.Intervals()) == 0 {
			b.Fatal("no gantt intervals recorded")
		}
	}
}

// BenchmarkFigMaxMin solves the paper's MaxMin illustration (E4) plus a
// large random sharing system per iteration — the inner loop of every
// simulation step.
func BenchmarkFigMaxMin(b *testing.B) {
	b.Run("paper-illustration", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s := maxmin.NewSystem()
			shared := s.NewConstraint(100)
			private := s.NewConstraint(60)
			for j := 0; j < 3; j++ {
				s.Expand(shared, s.NewVariable(1, 0), 1)
			}
			s.Expand(private, s.NewVariable(1, 0), 1)
			s.Solve()
		}
	})
	b.Run("500flows-100links", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s := maxmin.NewSystem()
			cnsts := make([]*maxmin.Constraint, 100)
			for j := range cnsts {
				cnsts[j] = s.NewConstraint(float64(10 + j%17))
			}
			for j := 0; j < 500; j++ {
				v := s.NewVariable(1, 0)
				s.Expand(cnsts[j%100], v, 1)
				s.Expand(cnsts[(j*7+3)%100], v, 1)
				s.Expand(cnsts[(j*13+9)%100], v, 1)
			}
			s.Solve()
		}
	})
	// Scaling suite: sparse-churn workloads where only a handful of
	// flows mutate per simulation step, the regime the incremental
	// ("selective update") solver targets. `incremental` re-solves only
	// the dirty connected components; `full-recompute` forces the
	// from-scratch progressive filling the seed solver performed on
	// every step (the two produce identical allocations — see
	// TestIncrementalEquivalenceProperty and -tags=maxmincheck).
	for _, n := range []int{100, 1000, 10000} {
		for _, full := range []bool{false, true} {
			mode := "incremental"
			if full {
				mode = "full-recompute"
			}
			b.Run(fmt.Sprintf("churn-flows-%d/%s", n, mode), func(b *testing.B) {
				b.ReportAllocs()
				benchMaxMinFlowChurn(b, n, full)
			})
			b.Run(fmt.Sprintf("churn-compute-%d/%s", n, mode), func(b *testing.B) {
				b.ReportAllocs()
				benchMaxMinComputeChurn(b, n, full)
			})
		}
	}
}

// maxminFlowChurn is a MaxMin-level model of a federated grid: flows
// routed over independent Waxman islands (16 routers + 16 hosts each),
// so churn in one island never disturbs the components of the others.
// Links are mapped to constraints exactly like surf.New does for the
// validation platforms: split-duplex links (which is what the Waxman
// generator emits) get one independent constraint per direction, and
// routes resolve to the constraints of the traversed direction.
type maxminFlowChurn struct {
	sys    *maxmin.System
	routes [][]*maxmin.Constraint // precomputed candidate (directed) routes
	flows  []*maxmin.Variable     // live flow ring
	next   int                    // next candidate route to use
}

func (cb *maxminFlowChurn) newFlow() *maxmin.Variable {
	r := cb.routes[cb.next%len(cb.routes)]
	cb.next++
	v := cb.sys.NewVariable(1, 0)
	for _, c := range r {
		cb.sys.Expand(c, v, 1)
	}
	return v
}

// newMaxMinFlowChurn builds the island federation with nFlows live
// flows, their link constraints, and a pool of precomputed routes so
// the benchmark loop measures solver work only.
func newMaxMinFlowChurn(b *testing.B, nFlows int) *maxminFlowChurn {
	b.Helper()
	const islandSize = 16
	nIslands := (nFlows-1)/50 + 1
	cb := &maxminFlowChurn{sys: maxmin.NewSystem()}
	for isl := 0; isl < nIslands; isl++ {
		pf, err := platform.GenerateWaxman(platform.DefaultWaxmanConfig(islandSize, int64(1000+isl)))
		if err != nil {
			b.Fatal(err)
		}
		// Directional (split-duplex) constraints, keyed like surf.New:
		// "<link>-><endpoint>" per direction, plain link name otherwise.
		cnst := make(map[string]*maxmin.Constraint)
		for _, e := range pf.Edges() {
			if e.Link.Policy == platform.SplitDuplex {
				cnst[e.Link.Name+"->"+e.A] = cb.sys.NewConstraint(e.Link.Bandwidth)
				cnst[e.Link.Name+"->"+e.B] = cb.sys.NewConstraint(e.Link.Bandwidth)
			} else {
				cnst[e.Link.Name] = cb.sys.NewConstraint(e.Link.Bandwidth)
			}
		}
		// Deterministic intra-island host pairs, resolved to the hop
		// route so each flow consumes the traversed direction only.
		for k := 0; k < 2*nFlows/nIslands+2; k++ {
			src := fmt.Sprintf("host%d", (k*5+isl)%islandSize)
			dst := fmt.Sprintf("host%d", (k*11+7)%islandSize)
			if src == dst {
				continue
			}
			hops, err := pf.HopRoute(src, dst)
			if err != nil || len(hops) == 0 {
				continue
			}
			cs := make([]*maxmin.Constraint, len(hops))
			ok := true
			for i, h := range hops {
				c := cnst[h.Link.Name+"->"+h.B]
				if c == nil {
					c = cnst[h.Link.Name]
				}
				if c == nil {
					ok = false
					break
				}
				cs[i] = c
			}
			if !ok {
				continue
			}
			cb.routes = append(cb.routes, cs)
		}
	}
	if len(cb.routes) == 0 {
		b.Fatal("flow churn setup produced no usable routes")
	}
	for i := 0; i < nFlows; i++ {
		cb.flows = append(cb.flows, cb.newFlow())
	}
	return cb
}

// benchMaxMinFlowChurn measures one sparse churn step per iteration:
// 10 flows finish, 10 new ones start, the system re-solves.
func benchMaxMinFlowChurn(b *testing.B, nFlows int, fullRecompute bool) {
	cb := newMaxMinFlowChurn(b, nFlows)
	cb.sys.Solve()
	const churn = 10
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for k := 0; k < churn; k++ {
			idx := (i*churn + k) % len(cb.flows)
			cb.sys.RemoveVariable(cb.flows[idx])
			cb.flows[idx] = cb.newFlow()
		}
		if fullRecompute {
			cb.sys.InvalidateAll()
		}
		cb.sys.Solve()
	}
}

// BenchmarkMaxMinParallelSolve measures the parallel component solve on
// a full recompute of the island federation (the multi-island platform
// case): every island is an independent component, so the progressive
// filling of the whole system fans out across the worker pool.
// workers-1 is the sequential baseline; the second lane uses GOMAXPROCS
// workers, or the pool size pinned by -solver-workers.
func BenchmarkMaxMinParallelSolve(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		for _, workers := range []int{1, *solverWorkers} {
			mode := "workers-auto"
			switch {
			case workers == 1:
				mode = "workers-1"
			case workers > 0:
				mode = fmt.Sprintf("workers-%d", workers)
			}
			b.Run(fmt.Sprintf("flows-%d/%s", n, mode), func(b *testing.B) {
				cb := newMaxMinFlowChurn(b, n)
				cb.sys.SetWorkers(workers)
				cb.sys.Solve()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					cb.sys.InvalidateAll()
					cb.sys.Solve()
				}
			})
		}
	}
}

// benchMaxMinComputeChurn mirrors BenchmarkKernelProcessChurn at the
// solver level: nHosts CPUs each running a few tasks, with a handful of
// tasks finishing and spawning per step (every host is its own
// connected component).
func benchMaxMinComputeChurn(b *testing.B, nHosts int, fullRecompute bool) {
	sys := maxmin.NewSystem()
	cpus := make([]*maxmin.Constraint, nHosts)
	for i := range cpus {
		cpus[i] = sys.NewConstraint(1e9)
	}
	var tasks []*maxmin.Variable
	spawn := func(host int) *maxmin.Variable {
		v := sys.NewVariable(1+float64(host%3), 0)
		sys.Expand(cpus[host], v, 1)
		return v
	}
	for i := 0; i < 3*nHosts; i++ {
		tasks = append(tasks, spawn(i%nHosts))
	}
	sys.Solve()
	const churn = 10
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for k := 0; k < churn; k++ {
			idx := (i*churn + k) % len(tasks)
			sys.RemoveVariable(tasks[idx])
			tasks[idx] = spawn((i + k*31) % nHosts)
		}
		if fullRecompute {
			sys.InvalidateAll()
		}
		sys.Solve()
	}
}

// pastryBench runs the E5/E6 table cells as sub-benchmarks, reporting
// the modelled exchange time over the given network.
func pastryBench(b *testing.B, net pastry.Net) {
	msgSample := pastry.Sample()
	desc, err := codec.Describe(msgSample)
	if err != nil {
		b.Fatal(err)
	}
	pairs := []struct {
		name     string
		from, to codec.Arch
	}{
		{"homogeneous-x86", codec.ArchX86, codec.ArchX86},
		{"cross-endian-x86-to-sparc", codec.ArchX86, codec.ArchSparc},
	}
	for _, cdc := range codec.All() {
		for _, pair := range pairs {
			b.Run(fmt.Sprintf("%s/%s", cdc.Name(), pair.name), func(b *testing.B) {
				frame, err := cdc.Encode(desc, msgSample, pair.from)
				if err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					out, err := cdc.Encode(desc, msgSample, pair.from)
					if err != nil {
						b.Fatal(err)
					}
					if _, err := cdc.Decode(desc, out, pair.to); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				perOp := float64(b.Elapsed().Nanoseconds()) / float64(b.N) / 1e9
				exchange := perOp + net.Latency + float64(len(frame))/net.Bandwidth
				b.ReportMetric(exchange*1e3, "ms/exchange")
				b.ReportMetric(float64(len(frame)), "wire-bytes")
			})
		}
	}
}

// BenchmarkTableLANPastry regenerates the LAN Pastry table (E5).
func BenchmarkTableLANPastry(b *testing.B) { pastryBench(b, pastry.LAN) }

// BenchmarkTableWANPastry regenerates the WAN Pastry table (E6).
func BenchmarkTableWANPastry(b *testing.B) { pastryBench(b, pastry.WAN) }

// BenchmarkSMPIMatmul runs the SMPI 1-D matrix multiplication (E7) on
// homogeneous and heterogeneous clusters, reporting simulated makespan.
func BenchmarkSMPIMatmul(b *testing.B) {
	run := func(b *testing.B, powers []float64) {
		var makespan float64
		for i := 0; i < b.N; i++ {
			pf := platform.New()
			if err := pf.AddRouter("sw"); err != nil {
				b.Fatal(err)
			}
			hosts := make([]string, len(powers))
			for j, p := range powers {
				hosts[j] = fmt.Sprintf("n%d", j)
				if err := pf.AddHost(&platform.Host{Name: hosts[j], Power: p}); err != nil {
					b.Fatal(err)
				}
				l := &platform.Link{Name: "e" + hosts[j], Bandwidth: 1.25e8, Latency: 5e-5}
				if err := pf.Connect(hosts[j], "sw", l); err != nil {
					b.Fatal(err)
				}
			}
			if err := pf.ComputeRoutes(); err != nil {
				b.Fatal(err)
			}
			w, err := smpi.New(pf, surf.DefaultConfig(), hosts)
			if err != nil {
				b.Fatal(err)
			}
			makespan, err = smpi.RunMatMul(w, smpi.MatMulConfig{M: 64, N: 64, K: 64}, 0.0005, false)
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(makespan, "sim-makespan-s")
	}
	b.Run("homogeneous-4x1G", func(b *testing.B) {
		run(b, []float64{1e9, 1e9, 1e9, 1e9})
	})
	b.Run("heterogeneous-one-slow", func(b *testing.B) {
		run(b, []float64{1e9, 1e9, 1e9, 2.5e8})
	})
}

// BenchmarkAblationRTTWeighting compares the fluid model's accuracy
// with and without the 1/RTT weighting (the CM02 design choice that
// reproduces TCP's RTT unfairness).
func BenchmarkAblationRTTWeighting(b *testing.B) {
	pf, flows := validationSetup(b)
	ns2, err := validate.RunPacket(pf, flows, packet.VariantNS2)
	if err != nil {
		b.Fatal(err)
	}
	meanErr := func(rates []float64) float64 {
		sum := 0.0
		for i := range rates {
			d := (rates[i] - ns2[i]) / ns2[i]
			if d < 0 {
				d = -d
			}
			sum += d
		}
		return 100 * sum / float64(len(rates))
	}
	for _, withRTT := range []bool{true, false} {
		name := "with-rtt-weighting"
		if !withRTT {
			name = "without-rtt-weighting"
		}
		b.Run(name, func(b *testing.B) {
			cfg := surf.DefaultConfig()
			cfg.WeightByRTT = withRTT
			var e float64
			for i := 0; i < b.N; i++ {
				rates, err := validate.RunFluid(pf, flows, cfg)
				if err != nil {
					b.Fatal(err)
				}
				e = meanErr(rates)
			}
			b.ReportMetric(e, "err%")
		})
	}
}

// BenchmarkAblationTCPGamma measures the effect of the TCP window
// bound on a long fat pipe: without the gamma cap the fluid model
// overestimates a window-limited flow's rate.
func BenchmarkAblationTCPGamma(b *testing.B) {
	pf := platform.New()
	if err := pf.AddHost(&platform.Host{Name: "a", Power: 1e9}); err != nil {
		b.Fatal(err)
	}
	if err := pf.AddHost(&platform.Host{Name: "b", Power: 1e9}); err != nil {
		b.Fatal(err)
	}
	// Long fat pipe: 1 Gbit/s, 50 ms: gamma-bound at 4 MiB window.
	if err := pf.AddRoute("a", "b", []*platform.Link{
		{Name: "lfn", Bandwidth: 1.25e8, Latency: 0.05},
	}); err != nil {
		b.Fatal(err)
	}
	flows := []validate.FlowSpec{{Src: "a", Dst: "b", Bytes: 100e6}}
	for _, gamma := range []float64{4194304, 0} {
		name := "gamma-4MiB"
		if gamma == 0 {
			name = "gamma-off"
		}
		b.Run(name, func(b *testing.B) {
			cfg := surf.DefaultConfig()
			cfg.TCPGamma = gamma
			var rate float64
			for i := 0; i < b.N; i++ {
				rates, err := validate.RunFluid(pf, flows, cfg)
				if err != nil {
					b.Fatal(err)
				}
				rate = rates[0]
			}
			b.ReportMetric(rate/1e6, "MB/s")
		})
	}
}

// BenchmarkKernelProcessChurn measures raw kernel scheduling: spawning,
// sleeping and terminating many simulated processes per run.
func BenchmarkKernelProcessChurn(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := core.New()
		for p := 0; p < 1000; p++ {
			d := float64(p%17) * 0.001
			e.Spawn("p", nil, func(pr *core.Process) { pr.Sleep(d) })
		}
		if err := e.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMSGTaskExchange measures the MSG put/get round trip through
// the full stack (kernel + fluid model + mailboxes).
func BenchmarkMSGTaskExchange(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pf := platform.New()
		if err := pf.AddHost(&platform.Host{Name: "a", Power: 1e9}); err != nil {
			b.Fatal(err)
		}
		if err := pf.AddHost(&platform.Host{Name: "b", Power: 1e9}); err != nil {
			b.Fatal(err)
		}
		if err := pf.AddRoute("a", "b", []*platform.Link{
			{Name: "l", Bandwidth: 1.25e8, Latency: 1e-4},
		}); err != nil {
			b.Fatal(err)
		}
		env := msg.NewEnvironment(pf, surf.DefaultConfig())
		const rounds = 100
		if _, err := env.NewProcess("recv", "b", func(p *msg.Process) error {
			for r := 0; r < rounds; r++ {
				if _, err := p.Get(1); err != nil {
					return err
				}
			}
			return nil
		}); err != nil {
			b.Fatal(err)
		}
		if _, err := env.NewProcess("send", "a", func(p *msg.Process) error {
			for r := 0; r < rounds; r++ {
				if err := p.Put(msg.NewTask("t", 0, 1e5), "b", 1); err != nil {
					return err
				}
			}
			return nil
		}); err != nil {
			b.Fatal(err)
		}
		if err := env.Run(); err != nil {
			b.Fatal(err)
		}
	}
}
