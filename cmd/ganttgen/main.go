// ganttgen regenerates the paper's Gantt chart figure (E3): the MSG
// client/server example with 2 servers and 3 clients; dark portions
// (#) are computations, light portions (=) communications, dots are
// receive waits. Concurrent transfers share the network links, so the
// communications visibly stretch when they interfere.
//
//	go run ./cmd/ganttgen [-width 100]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/gantt"
	"repro/internal/msg"
	"repro/internal/platform"
	"repro/internal/surf"
)

const (
	dataChannel = 22
	ackChannel  = 23
)

func main() {
	width := flag.Int("width", 100, "chart width in columns")
	rounds := flag.Int("rounds", 3, "requests per client")
	flag.Parse()

	// The poster's platform: clients behind a hub, servers across a
	// router — a shared backbone all transfers compete on.
	pf := platform.New()
	servers := []string{"server1", "server2"}
	clients := []string{"client1", "client2", "client3"}
	must(pf.AddRouter("hub"))
	must(pf.AddRouter("router"))
	for _, c := range clients {
		must(pf.AddHost(&platform.Host{Name: c, Power: 1e9}))
		must(pf.Connect(c, "hub", &platform.Link{
			Name: "lan-" + c, Bandwidth: 1.25e7, Latency: 0.0001}))
	}
	must(pf.Connect("hub", "router", &platform.Link{
		Name: "backbone", Bandwidth: 1.25e6, Latency: 0.005}))
	for _, s := range servers {
		must(pf.AddHost(&platform.Host{Name: s, Power: 1e9}))
		must(pf.Connect("router", s, &platform.Link{
			Name: "lan-" + s, Bandwidth: 1.25e7, Latency: 0.0001}))
	}
	must(pf.ComputeRoutes())

	env := msg.NewEnvironment(pf, surf.DefaultConfig())
	env.Gantt = &gantt.Recorder{}

	for _, s := range servers {
		_, err := env.NewProcess(s, s, func(p *msg.Process) error {
			p.Daemonize()
			for {
				task, err := p.Get(dataChannel)
				if err != nil {
					return err
				}
				if err := p.Execute(task); err != nil {
					return err
				}
				ack := msg.NewTask("Ack", 0, 0.01e6)
				if err := p.Put(ack, task.Source().Name, ackChannel); err != nil {
					return err
				}
			}
		})
		must(err)
	}
	for i, c := range clients {
		server := servers[i%len(servers)]
		_, err := env.NewProcess(c, c, func(p *msg.Process) error {
			for r := 0; r < *rounds; r++ {
				remote := msg.NewTask("Remote", 30e6, 3.2e6)
				if err := p.Put(remote, server, dataChannel); err != nil {
					return err
				}
				local := msg.NewTask("Local", 10.5e6, 3.2e6)
				if err := p.Execute(local); err != nil {
					return err
				}
				if _, err := p.Get(ackChannel); err != nil {
					return err
				}
			}
			return nil
		})
		must(err)
	}

	must(env.Run())

	fmt.Printf("Gantt chart for %d clients × %d rounds against %d servers "+
		"(ends at t=%.3f s)\n", len(clients), *rounds, len(servers), env.Now())
	fmt.Println("dark (#): computation   light (=): communication   dots (.): waiting")
	fmt.Println()
	must(env.Gantt.Render(os.Stdout, *width))

	fmt.Println("\nper-track totals (seconds):")
	for _, tr := range env.Gantt.Tracks() {
		tot := env.Gantt.TotalByKind(tr)
		fmt.Printf("  %-9s compute %6.3f   comm %6.3f   wait %6.3f\n",
			tr, tot[gantt.Compute], tot[gantt.Comm], tot[gantt.Wait])
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
