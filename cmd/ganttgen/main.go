// ganttgen regenerates the paper's Gantt chart figure (E3): the MSG
// client/server example with 2 servers and 3 clients; dark portions
// (#) are computations, light portions (=) communications, dots are
// receive waits. Concurrent transfers share the network links, so the
// communications visibly stretch when they interfere.
//
// With -dag the chart switches to the SimDag view: a seeded random
// workflow scheduled by min-min, one row per host, each span labeled
// with its task name.
//
// With -paje FILE the chart is instead reconstructed from a Paje trace
// written by simgrid-run/simdag-run -trace: process activity states
// (PSTATE compute/put/get), task running spans (TSTATE), and resource
// downtime (STATE down) become one Gantt row per traced container.
//
//	go run ./cmd/ganttgen [-width 100] [-dag [-seed 3]] [-paje run.paje]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/gantt"
	"repro/internal/instr"
	"repro/internal/msg"
	"repro/internal/platform"
	"repro/internal/simdag"
	"repro/internal/surf"
)

const (
	dataChannel = 22
	ackChannel  = 23
)

func main() {
	width := flag.Int("width", 100, "chart width in columns")
	rounds := flag.Int("rounds", 3, "requests per client")
	dag := flag.Bool("dag", false, "render a SimDag workflow schedule instead (one row per host)")
	seed := flag.Int64("seed", 3, "seed for the -dag workflow and platform")
	paje := flag.String("paje", "", "render a Paje trace file (written by -trace) instead")
	flag.Parse()

	if *paje != "" {
		renderPaje(*paje, *width)
		return
	}
	if *dag {
		renderDAG(*width, *seed)
		return
	}

	// The poster's platform: clients behind a hub, servers across a
	// router — a shared backbone all transfers compete on.
	pf := platform.New()
	servers := []string{"server1", "server2"}
	clients := []string{"client1", "client2", "client3"}
	must(pf.AddRouter("hub"))
	must(pf.AddRouter("router"))
	for _, c := range clients {
		must(pf.AddHost(&platform.Host{Name: c, Power: 1e9}))
		must(pf.Connect(c, "hub", &platform.Link{
			Name: "lan-" + c, Bandwidth: 1.25e7, Latency: 0.0001}))
	}
	must(pf.Connect("hub", "router", &platform.Link{
		Name: "backbone", Bandwidth: 1.25e6, Latency: 0.005}))
	for _, s := range servers {
		must(pf.AddHost(&platform.Host{Name: s, Power: 1e9}))
		must(pf.Connect("router", s, &platform.Link{
			Name: "lan-" + s, Bandwidth: 1.25e7, Latency: 0.0001}))
	}
	must(pf.ComputeRoutes())

	env := msg.NewEnvironment(pf, surf.DefaultConfig())
	env.Gantt = &gantt.Recorder{}

	for _, s := range servers {
		_, err := env.NewProcess(s, s, func(p *msg.Process) error {
			p.Daemonize()
			for {
				task, err := p.Get(dataChannel)
				if err != nil {
					return err
				}
				if err := p.Execute(task); err != nil {
					return err
				}
				ack := msg.NewTask("Ack", 0, 0.01e6)
				if err := p.Put(ack, task.Source().Name, ackChannel); err != nil {
					return err
				}
			}
		})
		must(err)
	}
	for i, c := range clients {
		server := servers[i%len(servers)]
		_, err := env.NewProcess(c, c, func(p *msg.Process) error {
			for r := 0; r < *rounds; r++ {
				remote := msg.NewTask("Remote", 30e6, 3.2e6)
				if err := p.Put(remote, server, dataChannel); err != nil {
					return err
				}
				local := msg.NewTask("Local", 10.5e6, 3.2e6)
				if err := p.Execute(local); err != nil {
					return err
				}
				if _, err := p.Get(ackChannel); err != nil {
					return err
				}
			}
			return nil
		})
		must(err)
	}

	must(env.Run())

	fmt.Printf("Gantt chart for %d clients × %d rounds against %d servers "+
		"(ends at t=%.3f s)\n", len(clients), *rounds, len(servers), env.Now())
	fmt.Println("dark (#): computation   light (=): communication   dots (.): waiting")
	fmt.Println()
	must(env.Gantt.Render(os.Stdout, *width))

	fmt.Println("\nper-track totals (seconds):")
	for _, tr := range env.Gantt.Tracks() {
		tot := env.Gantt.TotalByKind(tr)
		fmt.Printf("  %-9s compute %6.3f   comm %6.3f   wait %6.3f\n",
			tr, tot[gantt.Compute], tot[gantt.Comm], tot[gantt.Wait])
	}
}

// renderDAG draws the SimDag schedule view: a seeded random workflow,
// min-min placed on a seeded Waxman platform, one Gantt row per host
// with task-name labels inside the spans.
func renderDAG(width int, seed int64) {
	pf, err := platform.GenerateWaxman(platform.DefaultWaxmanConfig(5, seed))
	must(err)
	sim := simdag.New(pf, surf.DefaultConfig())
	sim.Gantt = &gantt.Recorder{}
	tasks, err := simdag.RandomLayered(sim, simdag.DefaultRandomConfig(6, 6, seed+1))
	must(err)
	var hosts []string
	for _, h := range pf.Hosts() {
		hosts = append(hosts, h.Name)
	}
	must(simdag.ScheduleMinMin(sim, hosts))
	_, err = sim.Simulate()
	must(err)

	fmt.Printf("SimDag schedule: %d tasks min-min-placed on %d hosts "+
		"(makespan %.3f s, %d goroutines spawned)\n",
		len(tasks), len(hosts), sim.Makespan(), sim.Engine().Spawned())
	fmt.Println("dark (#): computation   light (=): communication   labels: task names")
	fmt.Println()
	must(sim.Gantt.RenderLabeled(os.Stdout, width))
}

// renderPaje reconstructs a Gantt chart from a Paje trace file: every
// activity interval the trace recorded lands on its container's row —
// process activities (PSTATE) with their compute/put/get kinds, task
// running spans (TSTATE), and resource downtime (STATE down) as waits.
func renderPaje(path string, width int) {
	f, err := os.Open(path)
	must(err)
	defer f.Close()
	td, err := instr.ReadTrace(f)
	must(err)

	rec := &gantt.Recorder{}
	n := 0
	for _, iv := range td.Intervals {
		var kind gantt.Kind
		switch iv.Type {
		case "PSTATE":
			switch iv.Value {
			case "compute":
				kind = gantt.Compute
			case "put":
				kind = gantt.Comm
			case "get":
				kind = gantt.Wait
			default:
				continue // the "killed" marker has no extent
			}
		case "TSTATE":
			if iv.Value != "running" {
				continue
			}
			kind = gantt.Compute
		case "STATE":
			if iv.Value != "down" {
				continue
			}
			kind = gantt.Wait
		default:
			continue
		}
		rec.Add(iv.Container, kind, iv.Value, iv.Start, iv.End)
		n++
	}

	fmt.Printf("Paje trace %s: %d containers, %d intervals rendered, %d message links "+
		"(ends at t=%.3f s)\n", path, len(td.Containers), n, len(td.Links), td.EndTime)
	fmt.Println("dark (#): computation   light (=): communication   dots (.): waiting/down")
	fmt.Println()
	must(rec.Render(os.Stdout, width))
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
