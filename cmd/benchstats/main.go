// benchstats runs the scaling benchmarks programmatically and emits
// machine-readable per-tier stats, so the perf trajectory is tracked
// across revisions as data instead of log grepping:
//
//	benchstats -benchjson out/          # full tiers (minutes)
//	benchstats -benchjson out/ -small   # reduced tiers (CI smoke)
//
// writes out/BENCH_msg_scaling.json and out/BENCH_simdag_scaling.json
// with µs/activity, allocs/op and the goroutine accounting split
// (logical starts vs fresh stacks vs peak) for every size tier. The
// workloads are the same pair chains as BenchmarkMSGScaling and
// BenchmarkSimDagScaling, rebuilt here against public APIs only so the
// binary can be dropped onto an older revision to backfill a baseline.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/instr"
	"repro/internal/msg"
	"repro/internal/platform"
	"repro/internal/simdag"
	"repro/internal/surf"
	"repro/internal/sweep"
)

func main() {
	outDir := flag.String("benchjson", ".", "directory to write BENCH_*.json into")
	small := flag.Bool("small", false, "run reduced tiers (CI smoke)")
	flag.Parse()

	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fatal(err)
	}
	write(filepath.Join(*outDir, "BENCH_msg_scaling.json"), msgReport(*small))
	write(filepath.Join(*outDir, "BENCH_simdag_scaling.json"), simdagReport(*small))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchstats:", err)
	os.Exit(1)
}

func write(path string, rep sweep.TierReport) {
	data, err := sweep.Marshal(rep)
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s (%d tiers)\n", path, len(rep.Tiers))
}

// --- MSG pair workload (mirrors BenchmarkMSGScaling) --------------------

func scalingPlatform(nPairs int) *platform.Platform {
	pf := platform.New()
	for i := 0; i < nPairs; i++ {
		src, dst := fmt.Sprintf("s%d", i), fmt.Sprintf("r%d", i)
		must(pf.AddHost(&platform.Host{Name: src, Power: 1e9}))
		must(pf.AddHost(&platform.Host{Name: dst, Power: 1e9}))
		l := &platform.Link{
			Name:      fmt.Sprintf("l%d", i),
			Bandwidth: 1e8 * (1 + 0.15*float64(i%7)),
			Latency:   1e-4 * (1 + float64(i%5)),
		}
		must(pf.AddRoute(src, dst, []*platform.Link{l}))
	}
	return pf
}

func must(err error) {
	if err != nil {
		fatal(err)
	}
}

// modelPools collects the scoreboards shared by every workload form:
// the surf action/slice free lists, the maxmin solver's free lists, and
// the process-global worker-stack pool.
func modelPools(m *surf.Model) map[string]instr.PoolStat {
	return map[string]instr.PoolStat{
		"surf.action":    m.ActionPoolStats(),
		"surf.res_slice": m.ResSlicePoolStats(),
		"maxmin.var":     m.VarPoolStats(),
		"maxmin.elem":    m.ElemPoolStats(),
		"core.worker":    core.WorkerPoolStats(),
	}
}

// msgPools adds the MSG rendezvous/chain free lists on top.
func msgPools(env *msg.Environment) map[string]instr.PoolStat {
	pools := modelPools(env.Model())
	pools["msg.send"] = env.SendPoolStats()
	pools["msg.recv"] = env.RecvPoolStats()
	pools["msg.chain"] = env.ChainPoolStats()
	return pools
}

func pairPayload(i int) (bytes, flops float64) {
	return 1e5 * (1 + float64(i%9)), 1e6 * (1 + float64(i%4))
}

func buildGoroutineEnv(pf *platform.Platform, nPairs, rounds int) *msg.Environment {
	env := msg.NewEnvironment(pf, surf.DefaultConfig())
	const channel = 1
	for i := 0; i < nPairs; i++ {
		src, dst := fmt.Sprintf("s%d", i), fmt.Sprintf("r%d", i)
		bytes, flops := pairPayload(i)
		_, err := env.NewProcess("recv", dst, func(p *msg.Process) error {
			for r := 0; r < rounds; r++ {
				if _, err := p.Get(channel); err != nil {
					return err
				}
			}
			return nil
		})
		must(err)
		_, err = env.NewProcess("send", src, func(p *msg.Process) error {
			for r := 0; r < rounds; r++ {
				if err := p.Put(msg.NewTask("t", 0, bytes), dst, channel); err != nil {
					return err
				}
				if err := p.Execute(msg.NewTask("c", flops, 0)); err != nil {
					return err
				}
			}
			return nil
		})
		must(err)
	}
	return env
}

func buildChainEnv(pf *platform.Platform, nPairs, rounds int) *msg.Environment {
	env := msg.NewEnvironment(pf, surf.DefaultConfig())
	const channel = 1
	for i := 0; i < nPairs; i++ {
		src, dst := fmt.Sprintf("s%d", i), fmt.Sprintf("r%d", i)
		bytes, flops := pairPayload(i)
		taskBytes := bytes
		recv := msg.NewChain().Loop(rounds).Get(channel).End().MustBuild()
		_, err := env.StartChain("recv", dst, recv, nil)
		must(err)
		send := msg.NewChain().
			Do(func(c *msg.ChainProc) { c.SetTask(msg.NewTask("t", 0, taskBytes)) }).
			Loop(rounds).
			PutReg(dst, channel).
			Compute("c", flops).
			End().
			MustBuild()
		_, err = env.StartChain("send", src, send, nil)
		must(err)
	}
	return env
}

func msgReport(small bool) sweep.TierReport {
	type tier struct {
		name   string
		pairs  int
		rounds int
		form   string
	}
	tiers := []tier{
		{"activities-1k", 50, 10, "goroutine"},
		{"activities-10k", 500, 10, "goroutine"},
		{"activities-100k", 5000, 10, "goroutine"},
		{"activities-1M", 10000, 50, "goroutine"},
		{"activities-10M", 100000, 50, "chain"},
	}
	if small {
		tiers = []tier{
			{"activities-1k", 50, 10, "goroutine"},
			{"activities-10k", 500, 10, "goroutine"},
			{"activities-20k-chain", 2000, 5, "chain"},
		}
	}
	rep := sweep.TierReport{SchemaVersion: sweep.SchemaVersion, Benchmark: "msg_scaling", Small: small}
	for _, tc := range tiers {
		tc := tc
		activities := 2 * tc.pairs * tc.rounds
		pf := scalingPlatform(tc.pairs)
		var last *msg.Environment
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				var env *msg.Environment
				if tc.form == "chain" {
					env = buildChainEnv(pf, tc.pairs, tc.rounds)
				} else {
					env = buildGoroutineEnv(pf, tc.pairs, tc.rounds)
				}
				if err := env.Run(); err != nil {
					fatal(fmt.Errorf("%s: %w", tc.name, err))
				}
				last = env
			}
		})
		eng := last.Engine()
		solver := last.Model().SolverStats()
		rep.Tiers = append(rep.Tiers, sweep.TierStat{
			Name:            tc.name,
			Form:            tc.form,
			Activities:      activities,
			UsPerActivity:   float64(res.NsPerOp()) / float64(activities) / 1e3,
			AllocsPerOp:     res.AllocsPerOp(),
			BytesPerOp:      res.AllocedBytesPerOp(),
			Spawned:         eng.Spawned(),
			GoroutineSpawns: eng.GoroutineSpawns(),
			GoroutinesPeak:  eng.GoroutinesPeak(),
			SolverSolves:    solver.Solves,
			SolverParallel:  solver.ParallelSolves,
			Pools:           msgPools(last),
		})
		fmt.Printf("%-22s %-10s %8.3f us/activity  %8d allocs/op  peak %d goroutines\n",
			tc.name, tc.form, rep.Tiers[len(rep.Tiers)-1].UsPerActivity,
			res.AllocsPerOp(), eng.GoroutinesPeak())
	}
	return rep
}

// --- SimDag chain workload (mirrors BenchmarkSimDagScaling) -------------

func simdagReport(small bool) sweep.TierReport {
	type tier struct {
		name   string
		chains int
		rounds int
	}
	tiers := []tier{
		{"tasks-1k", 50, 10},
		{"tasks-10k", 500, 10},
		{"tasks-100k", 5000, 10},
	}
	if small {
		tiers = tiers[:2]
	}
	rep := sweep.TierReport{SchemaVersion: sweep.SchemaVersion, Benchmark: "simdag_scaling", Small: small}
	for _, tc := range tiers {
		tc := tc
		pf := scalingPlatform(tc.chains)
		var last *simdag.Simulation
		tasks := 0
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s := simdag.New(pf, surf.DefaultConfig())
				tasks = buildDag(s, tc.chains, tc.rounds)
				if _, err := s.Simulate(); err != nil {
					fatal(fmt.Errorf("%s: %w", tc.name, err))
				}
				last = s
			}
		})
		eng := last.Engine()
		solver := last.Model().SolverStats()
		rep.Tiers = append(rep.Tiers, sweep.TierStat{
			Name:            tc.name,
			Form:            "dag",
			Activities:      tasks,
			UsPerActivity:   float64(res.NsPerOp()) / float64(tasks) / 1e3,
			AllocsPerOp:     res.AllocsPerOp(),
			BytesPerOp:      res.AllocedBytesPerOp(),
			Spawned:         eng.Spawned(),
			GoroutineSpawns: eng.GoroutineSpawns(),
			GoroutinesPeak:  eng.GoroutinesPeak(),
			SolverSolves:    solver.Solves,
			SolverParallel:  solver.ParallelSolves,
			Pools:           modelPools(last.Model()),
		})
		fmt.Printf("%-22s %-10s %8.3f us/task      %8d allocs/op  peak %d goroutines\n",
			tc.name, "dag", rep.Tiers[len(rep.Tiers)-1].UsPerActivity,
			res.AllocsPerOp(), eng.GoroutinesPeak())
	}
	return rep
}

func buildDag(s *simdag.Simulation, nChains, rounds int) int {
	n := 0
	for i := 0; i < nChains; i++ {
		src, dst := fmt.Sprintf("s%d", i), fmt.Sprintf("r%d", i)
		bytes, flops := pairPayload(i)
		var prev *simdag.Task
		for r := 0; r < rounds; r++ {
			c := s.NewTask(fmt.Sprintf("c%d_%d", i, r), flops)
			must(c.Schedule(src))
			x := s.NewCommTask(fmt.Sprintf("x%d_%d", i, r), bytes)
			must(x.ScheduleComm(src, dst))
			if prev != nil {
				must(s.AddDependency(prev, c))
			}
			must(s.AddDependency(c, x))
			prev = x
			n += 2
		}
	}
	return n
}
