// Command simgrid-lint machine-checks the kernel contracts DESIGN.md
// states in prose: deterministic event ordering, pooled-object
// ownership, goroutine- and Sprintf-free hot paths, and the simcall
// blocking contract for completion handlers.
//
// Usage:
//
//	go run ./cmd/simgrid-lint ./...          # the whole module (CI)
//	go run ./cmd/simgrid-lint ./internal/msg # one package
//	go run ./cmd/simgrid-lint -rules         # list the rules
//	go run ./cmd/simgrid-lint -only det-maprange,hot-sprintf ./...
//
// Findings print as file:line:col: message [rule] and make the command
// exit 1. A finding is suppressed by annotating the offending line (or
// the line directly above it) with a mandatory reason:
//
//	for k := range m { //lint:allow det-maprange keys re-sorted below
//
// Suppressions are themselves checked: an unknown rule name, a missing
// reason, or a stale annotation (the rule no longer fires there) is an
// error.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
)

func main() {
	listRules := flag.Bool("rules", false, "list the registered rules and exit")
	only := flag.String("only", "", "comma-separated rule IDs to run (default: all)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: simgrid-lint [-only rule,rule] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *listRules {
		for _, r := range lint.Rules() {
			fmt.Printf("%-24s %s\n", r.Name, r.Doc)
		}
		return
	}

	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "simgrid-lint:", err)
		os.Exit(2)
	}
	loader, err := lint.NewLoader(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simgrid-lint:", err)
		os.Exit(2)
	}
	pkgs, err := loader.LoadPatterns(flag.Args()...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simgrid-lint:", err)
		os.Exit(2)
	}

	var rules []string
	if *only != "" {
		rules = strings.Split(*only, ",")
	}
	findings := lint.Run(pkgs, lint.DefaultConfig(), rules...)
	for _, f := range findings {
		// Print module-relative paths so output is stable across
		// checkouts.
		if rel, err := filepath.Rel(root, f.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			f.Pos.Filename = rel
		}
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "simgrid-lint: %d finding(s) in %d package(s)\n", len(findings), len(pkgs))
		os.Exit(1)
	}
}

// moduleRoot walks up from the working directory to the enclosing
// go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above the working directory")
		}
		dir = parent
	}
}
