// pastrybench regenerates the paper's two GRAS tables (E5/E6): the
// average time to exchange one Pastry message between PowerPC, Sparc
// and x86 hosts, for GRAS, MPICH, OmniORB, PBIO and XML-based
// communication, on a LAN and on a WAN (California–France).
//
//	go run ./cmd/pastrybench [-net lan|wan|both] [-iters 50] [-v]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/pastry"
)

func main() {
	netFlag := flag.String("net", "both", "lan | wan | both")
	iters := flag.Int("iters", 50, "encode/decode iterations per cell")
	verbose := flag.Bool("v", false, "also print per-cell encode/decode costs and wire sizes")
	flag.Parse()

	cells, err := pastry.Measure(*iters)
	if err != nil {
		log.Fatal(err)
	}

	if *netFlag == "lan" || *netFlag == "both" {
		pastry.Table(os.Stdout, cells, pastry.LAN)
		fmt.Println()
	}
	if *netFlag == "wan" || *netFlag == "both" {
		pastry.Table(os.Stdout, cells, pastry.WAN)
		fmt.Println()
	}

	if *verbose {
		fmt.Println("per-cell detail (encode/decode measured on this machine):")
		for _, c := range cells {
			if !c.Supported {
				fmt.Printf("  %-8s %5s->%-5s n/a\n", c.Codec, c.From.Name, c.To.Name)
				continue
			}
			fmt.Printf("  %-8s %5s->%-5s enc %9v  dec %9v  wire %7d B\n",
				c.Codec, c.From.Name, c.To.Name, c.Encode, c.Decode, c.WireBytes)
		}
	}
}
