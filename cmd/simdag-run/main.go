// simdag-run loads a workflow file (Pegasus DAX or GraphViz DOT),
// schedules it on a platform with a list scheduler, and executes it on
// the simulation kernel — the reproduction's equivalent of a SimDag
// binary, and the zero-goroutine path: however large the workflow, no
// process is spawned.
//
// The platform comes from a JSON file (-platform) or a seeded Waxman
// random topology (-waxman N), matching the paper's BRITE-generated
// validation platforms. Without a workflow file, a seeded random
// layered DAG is generated (-layers/-width).
//
// Examples:
//
//	go run ./cmd/simdag-run -dax testdata/sample.dax -waxman 8
//	go run ./cmd/simdag-run -layers 12 -width 40 -waxman 16 -sched rr
//	go run ./cmd/simdag-run -dot wf.dot -platform cluster.json -gantt
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"

	"repro/internal/gantt"
	"repro/internal/instr"
	"repro/internal/platform"
	"repro/internal/simdag"
	"repro/internal/surf"
)

func main() {
	daxPath := flag.String("dax", "", "Pegasus DAX workflow file")
	dotPath := flag.String("dot", "", "GraphViz DOT workflow file")
	platformPath := flag.String("platform", "", "platform JSON file")
	waxman := flag.Int("waxman", 0, "generate a Waxman platform with N nodes instead")
	seed := flag.Int64("seed", 42, "seed for the Waxman platform and the random DAG")
	layers := flag.Int("layers", 10, "random DAG: layers (when no workflow file is given)")
	width := flag.Int("width", 20, "random DAG: tasks per layer")
	sched := flag.String("sched", "minmin", "scheduler: minmin, rr (round-robin), or heft")
	showGantt := flag.Bool("gantt", false, "print a labeled per-host Gantt chart")
	ganttWidth := flag.Int("gantt-width", 100, "gantt width in columns")
	verbose := flag.Bool("v", false, "print the per-task schedule table")
	tracePath := flag.String("trace", "", "write a Paje trace of the run to this file")
	statsPath := flag.String("stats", "",
		`write a metrics-registry JSON snapshot to this file ("-" = stdout)`)
	profile := flag.Bool("profile", false,
		"print a wall-clock kernel phase profile after the run (report-only; host clock)")
	flag.Parse()

	var pf *platform.Platform
	var err error
	switch {
	case *platformPath != "":
		pf, err = platform.LoadFile(*platformPath)
	case *waxman > 1:
		pf, err = platform.GenerateWaxman(platform.DefaultWaxmanConfig(*waxman, *seed))
	default:
		err = fmt.Errorf("need -platform or -waxman")
	}
	if err != nil {
		log.Fatalf("platform: %v", err)
	}

	sim := simdag.New(pf, surf.DefaultConfig())
	sim.Gantt = &gantt.Recorder{}
	var traceFile *os.File
	if *tracePath != "" {
		traceFile, err = os.Create(*tracePath)
		if err != nil {
			log.Fatalf("trace: %v", err)
		}
		sim.EnableTrace(instr.NewTrace(traceFile))
	}
	var prof *instr.Profiler
	if *profile {
		prof = instr.NewProfiler()
		sim.Engine().SetProfiler(prof)
	}
	var tasks []*simdag.Task
	switch {
	case *daxPath != "":
		f, err := os.Open(*daxPath)
		if err != nil {
			log.Fatal(err)
		}
		tasks, err = simdag.LoadDAX(sim, f)
		f.Close()
		if err != nil {
			log.Fatalf("loading DAX: %v", err)
		}
		fmt.Printf("loaded DAX %s: %d tasks\n", *daxPath, len(tasks))
	case *dotPath != "":
		f, err := os.Open(*dotPath)
		if err != nil {
			log.Fatal(err)
		}
		tasks, err = simdag.LoadDOT(sim, f)
		f.Close()
		if err != nil {
			log.Fatalf("loading DOT: %v", err)
		}
		fmt.Printf("loaded DOT %s: %d tasks\n", *dotPath, len(tasks))
	default:
		tasks, err = simdag.RandomLayered(sim, simdag.DefaultRandomConfig(*layers, *width, *seed))
		if err != nil {
			log.Fatalf("generating DAG: %v", err)
		}
		fmt.Printf("generated layered DAG: %d tasks (%d×%d computes + transfers)\n",
			len(tasks), *layers, *width)
	}

	var hosts []string
	for _, h := range pf.Hosts() {
		hosts = append(hosts, h.Name)
	}
	switch *sched {
	case "minmin":
		err = simdag.ScheduleMinMin(sim, hosts)
	case "rr":
		err = simdag.ScheduleRoundRobin(sim, hosts)
	case "heft":
		var st *simdag.HEFTStats
		st, err = simdag.ScheduleHEFTStats(sim, hosts, nil)
		if err == nil {
			fmt.Printf("heft: critical path %.4f, planned makespan %.4f, max parallelism %d\n",
				st.CriticalPath, st.PlannedMakespan, st.MaxParallelism)
		}
	default:
		err = fmt.Errorf("unknown scheduler %q", *sched)
	}
	if err != nil {
		log.Fatalf("scheduling: %v", err)
	}

	if _, err := sim.Simulate(); err != nil {
		log.Fatalf("simulate: %v", err)
	}

	if traceFile != nil {
		if err := sim.Trace().Close(); err != nil {
			log.Fatalf("trace: %v", err)
		}
		if err := traceFile.Close(); err != nil {
			log.Fatalf("trace: %v", err)
		}
	}
	if *statsPath != "" {
		r := instr.NewRegistry()
		sim.MetricsInto(r)
		r.SetPool("instr.event_pool", instr.EventPoolStats())
		out := os.Stdout
		if *statsPath != "-" {
			out, err = os.Create(*statsPath)
			if err != nil {
				log.Fatalf("stats: %v", err)
			}
			defer out.Close()
		}
		if err := r.WriteJSON(out); err != nil {
			log.Fatalf("stats: %v", err)
		}
	}
	if prof != nil {
		if err := prof.WriteReport(os.Stdout); err != nil {
			log.Fatal(err)
		}
	}

	if *verbose {
		fmt.Printf("%-28s %-8s %-14s %12s %12s  %s\n", "TASK", "KIND", "PLACEMENT", "START", "FINISH", "STATE")
		for _, t := range sim.Tasks() {
			place := t.Host()
			if t.Kind() == simdag.Comm {
				src, dst := t.Endpoints()
				place = src + "->" + dst
			}
			fmt.Printf("%-28s %-8s %-14s %12.6f %12.6f  %s\n",
				t.Name(), t.Kind(), place, t.Start(), t.Finish(), t.State())
		}
	}

	fmt.Printf("tasks: %d done, %d failed, %d left unscheduled\n",
		sim.DoneCount(), sim.FailedCount(), len(sim.Tasks())-sim.DoneCount()-sim.FailedCount())
	fmt.Printf("makespan: %.6f s   (scheduler %s, %d hosts, process goroutines spawned: %d)\n",
		sim.Makespan(), *sched, len(hosts), sim.Engine().Spawned())

	if *showGantt {
		fmt.Println("\nper-host schedule (labels are task names; =: transfers, #: computations):")
		if err := sim.Gantt.RenderLabeled(os.Stdout, *ganttWidth); err != nil {
			log.Fatal(err)
		}
		busy := make(map[string]float64)
		for _, tr := range sim.Gantt.Tracks() {
			tot := sim.Gantt.TotalByKind(tr)
			busy[tr] = tot[gantt.Compute] + tot[gantt.Comm]
		}
		var tracks []string
		for tr := range busy {
			tracks = append(tracks, tr)
		}
		sort.Strings(tracks)
		fmt.Println("\nper-host busy time (s):")
		for _, tr := range tracks {
			fmt.Printf("  %-12s %8.4f\n", tr, busy[tr])
		}
	}
	if sim.FailedCount() > 0 {
		os.Exit(1)
	}
}
