// validate regenerates the paper's validation figure (E1) and the
// "orders of magnitude faster" claim (E2): a random BRITE/Waxman
// topology, 10 random flows of 100 MB, compared across the SimGrid
// fluid model and the NS2/GTNets packet-level stand-ins.
//
//	go run ./cmd/validate [-nodes 10] [-flows 10] [-mb 100] [-seed 42]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/platform"
	"repro/internal/surf"
	"repro/internal/validate"
)

func main() {
	nodes := flag.Int("nodes", 10, "routers in the Waxman topology")
	flows := flag.Int("flows", 10, "number of random flows")
	mb := flag.Float64("mb", 100, "megabytes per flow")
	seed := flag.Int64("seed", 42, "topology seed")
	flowSeed := flag.Int64("flowseed", 7, "flow selection seed")
	flag.Parse()

	fmt.Printf("validation experiment: %d-router Waxman topology (seed %d), "+
		"%d flows × %g MB\n\n", *nodes, *seed, *flows, *mb)

	pf, err := platform.GenerateWaxman(platform.DefaultWaxmanConfig(*nodes, *seed))
	if err != nil {
		log.Fatal(err)
	}
	specs := validate.RandomFlows(pf, *flows, *mb*1e6, *flowSeed)
	res, err := validate.Run(pf, specs, surf.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	res.Report(os.Stdout)
}
