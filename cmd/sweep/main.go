// sweep runs a declarative experiment campaign: a grid of platform ×
// workload × scheduler × solver × faults × seed expanded into isolated
// runs (one engine each), executed with bounded fanout, reported as
// schema-versioned JSON.
//
//	sweep -campaign default -out out/              # bundled grid, 36 runs
//	sweep -campaign baseline -fanout 4 -out out/   # the CI baseline grid
//	sweep -spec mygrid.json -seed 7 -perf          # custom grid + timings
//	sweep -campaign baseline -check BENCH_sweep_baseline.json
//
// The report (perf subtree aside) is a pure function of (grid, seed):
// byte-identical across repeats and across -fanout settings. -check
// regenerates the campaign and compares the report's structure against
// an existing file — schema drift fails, value drift doesn't.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/sweep"
)

func main() {
	campaign := flag.String("campaign", "default", "bundled campaign: default, baseline, or faulty")
	specPath := flag.String("spec", "", "JSON campaign spec (overrides -campaign)")
	outDir := flag.String("out", ".", "directory to write BENCH_sweep_<name>.json into")
	seed := flag.Int64("seed", 1, "campaign seed (per-run seeds derive from it by key hash)")
	fanout := flag.Int("fanout", 1, "concurrent runs (clamped to GOMAXPROCS)")
	perf := flag.Bool("perf", false, "attach wall-clock per-run stats (fanout 1 only)")
	check := flag.String("check", "", "compare the report's schema against this file instead of writing")
	stdout := flag.Bool("stdout", false, "write the report to stdout instead of a file")
	flag.Parse()

	var spec *sweep.Spec
	var err error
	if *specPath != "" {
		spec, err = sweep.Load(*specPath)
		if err != nil {
			fatal(err)
		}
	} else if spec = sweep.ByName(*campaign); spec == nil {
		fatal(fmt.Errorf("unknown campaign %q (bundled: default, baseline, faulty)", *campaign))
	}

	rep, err := sweep.Execute(spec, *seed, sweep.Options{Fanout: *fanout, Perf: *perf})
	if err != nil {
		fatal(err)
	}
	data, err := sweep.Marshal(rep)
	if err != nil {
		fatal(err)
	}

	if *check != "" {
		want, err := os.ReadFile(*check)
		if err != nil {
			fatal(err)
		}
		if err := sweep.CheckSchema(data, want); err != nil {
			fatal(fmt.Errorf("schema drift against %s: %w", *check, err))
		}
		fmt.Printf("schema ok: %s matches campaign %q (%d runs)\n", *check, rep.Campaign, rep.Points)
		return
	}

	if *stdout {
		os.Stdout.Write(data)
		return
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fatal(err)
	}
	path := filepath.Join(*outDir, "BENCH_sweep_"+rep.Campaign+".json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s (%d runs, seed %d)\n", path, rep.Points, rep.Seed)
	for _, sched := range sortedSchedulers(rep) {
		a := rep.ByScheduler[sched]
		fmt.Printf("  %-8s %3d runs  makespan mean %10.4f  [%.4f, %.4f]  failed %d  reschedules %d\n",
			sched, a.Runs, a.MakespanMean, a.MakespanMin, a.MakespanMax, a.Failed, a.Reschedules)
	}
}

func sortedSchedulers(rep *sweep.CampaignReport) []string {
	var keys []string
	for k := range rep.ByScheduler {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sweep:", err)
	os.Exit(1)
}
