// simgrid-run loads a JSON platform file and a JSON deployment file and
// executes the simulation — the reproduction's equivalent of running a
// SimGrid MSG binary with platform.xml and deployment.xml. A small
// built-in registry of generic process functions covers bag-of-tasks
// style applications:
//
//	master <ntasks> <flops> <bytes> <worker...>  — dispatch a bag
//	worker                                       — serve tasks (daemon)
//	pinger <dest> <count> <bytes>                — latency probe
//	ponger                                       — echo (daemon)
//	sleeper <seconds>                            — placeholder load
//
// Example:
//
//	go run ./cmd/simgrid-run -platform testdata/cluster.json \
//	    -deploy testdata/bag.json -gantt
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"repro/internal/deploy"
	"repro/internal/faults"
	"repro/internal/gantt"
	"repro/internal/instr"
	"repro/internal/msg"
	"repro/internal/platform"
	"repro/internal/surf"
)

const (
	workChannel   = 1
	resultChannel = 2
	pingChannel   = 3
	pongChannel   = 4
)

func main() {
	platformPath := flag.String("platform", "", "platform JSON file")
	deployPath := flag.String("deploy", "", "deployment JSON file")
	showGantt := flag.Bool("gantt", false, "print a Gantt chart after the run")
	width := flag.Int("width", 100, "gantt width")
	solverWorkers := flag.Int("solver-workers", 0,
		"worker pool bound for the parallel MaxMin component solve (0 = GOMAXPROCS, 1 = sequential)")
	injectFaults := flag.Bool("faults", false,
		"inject a seeded host-failure campaign; failed processes restart on host recovery")
	faultSeed := flag.Int64("fault-seed", 1, "failure-campaign seed")
	faultMTBF := flag.Float64("fault-mtbf", 10, "mean time between failures per host, s")
	faultMTTR := flag.Float64("fault-mttr", 2, "mean time to repair per host, s")
	faultShape := flag.Float64("fault-shape", 0,
		"Weibull shape for failure lifetimes (0 = exponential)")
	faultHosts := flag.String("fault-hosts", "",
		"comma-separated hosts subject to failure (default: all platform hosts)")
	faultHorizon := flag.Float64("fault-horizon", 60, "no failure starts at or after this time, s")
	tracePath := flag.String("trace", "", "write a Paje trace of the run to this file")
	statsPath := flag.String("stats", "",
		`write a metrics-registry JSON snapshot to this file ("-" = stdout)`)
	profile := flag.Bool("profile", false,
		"print a wall-clock kernel phase profile after the run (report-only; host clock)")
	flag.Parse()
	if *platformPath == "" || *deployPath == "" {
		flag.Usage()
		os.Exit(2)
	}

	pf, err := platform.LoadFile(*platformPath)
	if err != nil {
		log.Fatalf("loading platform: %v", err)
	}
	spec, err := deploy.LoadFile(*deployPath)
	if err != nil {
		log.Fatalf("loading deployment: %v", err)
	}

	cfg := surf.DefaultConfig()
	cfg.SolverWorkers = *solverWorkers
	env := msg.NewEnvironment(pf, cfg)
	if *showGantt {
		env.Gantt = &gantt.Recorder{}
	}
	var traceFile *os.File
	if *tracePath != "" {
		traceFile, err = os.Create(*tracePath)
		if err != nil {
			log.Fatalf("trace: %v", err)
		}
		env.EnableTrace(instr.NewTrace(traceFile))
	}
	var prof *instr.Profiler
	if *profile {
		prof = instr.NewProfiler()
		env.Engine().SetProfiler(prof)
	}
	var injector *faults.Injector
	if *injectFaults {
		// Every process killed by a host failure respawns when the host
		// recovers: long-lived deployments survive the campaign.
		env.RestartOnRecovery = true
		hosts := strings.Split(*faultHosts, ",")
		if *faultHosts == "" {
			hosts = hosts[:0]
			for _, h := range pf.Hosts() {
				hosts = append(hosts, h.Name)
			}
		}
		dist, shape := faults.Exponential, 0.0
		if *faultShape > 0 {
			dist, shape = faults.Weibull, *faultShape
		}
		sched, err := faults.Compile(*faultSeed, faults.Params{
			Horizon: *faultHorizon,
			Classes: []faults.Class{{
				Name: "cli", Hosts: hosts,
				MTBF: *faultMTBF, MTTR: *faultMTTR,
				Dist: dist, Shape: shape,
			}},
		})
		if err != nil {
			log.Fatalf("compiling fault campaign: %v", err)
		}
		in, err := faults.Arm(sched, env.Model())
		if err != nil {
			log.Fatalf("arming fault campaign: %v", err)
		}
		injector = in
		in.OnEvent = func(ev faults.Event) {
			state := "down"
			if ev.Up {
				state = "up"
			}
			fmt.Printf("[%10.6f] fault: host %s %s\n", env.Now(), ev.Name, state)
		}
	}

	if err := deploy.Run(env, spec, registry()); err != nil {
		log.Fatalf("simulation: %v", err)
	}
	fmt.Printf("simulation finished at t=%.6f s\n", env.Now())
	if traceFile != nil {
		if err := env.Trace().Close(); err != nil {
			log.Fatalf("trace: %v", err)
		}
		if err := traceFile.Close(); err != nil {
			log.Fatalf("trace: %v", err)
		}
	}
	if *statsPath != "" {
		r := instr.NewRegistry()
		env.MetricsInto(r)
		if injector != nil {
			injector.MetricsInto(r)
		}
		r.SetPool("instr.event_pool", instr.EventPoolStats())
		out := os.Stdout
		if *statsPath != "-" {
			out, err = os.Create(*statsPath)
			if err != nil {
				log.Fatalf("stats: %v", err)
			}
			defer out.Close()
		}
		if err := r.WriteJSON(out); err != nil {
			log.Fatalf("stats: %v", err)
		}
	}
	if prof != nil {
		fmt.Println()
		if err := prof.WriteReport(os.Stdout); err != nil {
			log.Fatal(err)
		}
	}
	if *showGantt {
		fmt.Println()
		if err := env.Gantt.Render(os.Stdout, *width); err != nil {
			log.Fatal(err)
		}
	}
}

// registry returns the built-in generic process functions.
func registry() deploy.Registry {
	return deploy.Registry{
		"master":  master,
		"rmaster": rmaster,
		"worker":  worker,
		"pinger":  pinger,
		"ponger":  ponger,
		"sleeper": sleeper,
	}
}

// master <ntasks> <flops> <bytes> <worker hosts...>
func master(p *msg.Process, args []string) error {
	if len(args) < 4 {
		return fmt.Errorf("master needs: ntasks flops bytes worker...")
	}
	n, err := strconv.Atoi(args[0])
	if err != nil {
		return err
	}
	flops, err := strconv.ParseFloat(args[1], 64)
	if err != nil {
		return err
	}
	bytes, err := strconv.ParseFloat(args[2], 64)
	if err != nil {
		return err
	}
	workers := args[3:]
	// Results are collected by a separate (non-daemon) process, the
	// standard MSG idiom: rendezvous puts to a busy worker would
	// otherwise deadlock against that worker's own result put. The
	// simulation ends when the collector got everything.
	if _, err := p.Spawn("collector", p.Host().Name, func(c *msg.Process) error {
		for i := 0; i < n; i++ {
			if _, err := c.Get(resultChannel); err != nil {
				return err
			}
		}
		fmt.Printf("[%10.6f] master: %d results collected\n", c.Now(), n)
		return nil
	}); err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		t := msg.NewTask(fmt.Sprintf("job%03d", i), flops, bytes)
		if err := p.Put(t, workers[i%len(workers)], workChannel); err != nil {
			return err
		}
	}
	return nil
}

// rmaster <ntasks> <flops> <bytes> <worker hosts...> — the
// failure-aware master for -faults runs: every unacknowledged job is
// (re)dispatched with bounded per-attempt timeouts rotating over the
// workers (msg.Retry), results are deduplicated by job name, and the
// loop repeats until the whole bag is acknowledged. Pair it with
// daemon workers: a worker killed by a host failure restarts on
// recovery (RestartOnRecovery) and keeps serving.
func rmaster(p *msg.Process, args []string) error {
	if len(args) < 4 {
		return fmt.Errorf("rmaster needs: ntasks flops bytes worker...")
	}
	n, err := strconv.Atoi(args[0])
	if err != nil {
		return err
	}
	flops, err := strconv.ParseFloat(args[1], 64)
	if err != nil {
		return err
	}
	bytes, err := strconv.ParseFloat(args[2], 64)
	if err != nil {
		return err
	}
	workers := args[3:]

	remaining := make(map[string]bool, n)
	order := make([]string, 0, n)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("job%03d", i)
		remaining[name] = true
		order = append(order, name)
	}
	if _, err := p.Spawn("collector", p.Host().Name, func(c *msg.Process) error {
		dry := 0
		for len(remaining) > 0 {
			res, err := c.GetWithTimeout(resultChannel, 2.0)
			if err != nil {
				if dry++; dry == 60 {
					return fmt.Errorf("no result for %d collect timeouts, %d jobs left", dry, len(remaining))
				}
				continue
			}
			dry = 0
			delete(remaining, strings.TrimPrefix(res.Name, "result:"))
		}
		fmt.Printf("[%10.6f] rmaster: all %d results collected\n", c.Now(), n)
		return nil
	}); err != nil {
		return err
	}
	rr := 0
	const maxRounds = 100
	for round := 0; len(remaining) > 0; round++ {
		if round == maxRounds {
			return fmt.Errorf("bag not finished after %d rounds, %d jobs left", maxRounds, len(remaining))
		}
		for _, name := range order {
			if !remaining[name] {
				continue
			}
			name := name
			err := msg.Retry(p, msg.RetryPolicy{Attempts: 2 * len(workers), Backoff: 0.25}, func() error {
				wn := workers[rr%len(workers)]
				rr++
				return p.PutWithTimeout(msg.NewTask(name, flops, bytes), wn, workChannel, 1.0)
			})
			if err != nil {
				fmt.Printf("[%10.6f] rmaster: job %s undeliverable this round (%v)\n", p.Now(), name, err)
			}
		}
		if len(remaining) > 0 {
			if err := p.Sleep(1.0); err != nil {
				return err
			}
		}
	}
	return nil
}

// worker serves tasks forever: execute, return a small result.
func worker(p *msg.Process, args []string) error {
	for {
		task, err := p.Get(workChannel)
		if err != nil {
			return err
		}
		if err := p.Execute(task); err != nil {
			return err
		}
		res := msg.NewTask("result:"+task.Name, 0, 1e4)
		if err := p.Put(res, task.Source().Name, resultChannel); err != nil {
			return err
		}
	}
}

// pinger <dest> <count> <bytes>
func pinger(p *msg.Process, args []string) error {
	if len(args) < 3 {
		return fmt.Errorf("pinger needs: dest count bytes")
	}
	dest := args[0]
	count, err := strconv.Atoi(args[1])
	if err != nil {
		return err
	}
	bytes, err := strconv.ParseFloat(args[2], 64)
	if err != nil {
		return err
	}
	for i := 0; i < count; i++ {
		t0 := p.Now()
		if err := p.Put(msg.NewTask("ping", 0, bytes), dest, pingChannel); err != nil {
			return err
		}
		if _, err := p.Get(pongChannel); err != nil {
			return err
		}
		fmt.Printf("[%10.6f] pinger: rtt %.6f s\n", p.Now(), p.Now()-t0)
	}
	return nil
}

// ponger echoes pings back.
func ponger(p *msg.Process, args []string) error {
	for {
		t, err := p.Get(pingChannel)
		if err != nil {
			return err
		}
		if err := p.Put(msg.NewTask("pong", 0, t.Bytes), t.Source().Name, pongChannel); err != nil {
			return err
		}
	}
}

// sleeper <seconds>
func sleeper(p *msg.Process, args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("sleeper needs: seconds")
	}
	d, err := strconv.ParseFloat(args[0], 64)
	if err != nil {
		return err
	}
	return p.Sleep(d)
}
