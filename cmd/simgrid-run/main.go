// simgrid-run loads a JSON platform file and a JSON deployment file and
// executes the simulation — the reproduction's equivalent of running a
// SimGrid MSG binary with platform.xml and deployment.xml. A small
// built-in registry of generic process functions covers bag-of-tasks
// style applications:
//
//	master <ntasks> <flops> <bytes> <worker...>  — dispatch a bag
//	worker                                       — serve tasks (daemon)
//	pinger <dest> <count> <bytes>                — latency probe
//	ponger                                       — echo (daemon)
//	sleeper <seconds>                            — placeholder load
//
// Example:
//
//	go run ./cmd/simgrid-run -platform testdata/cluster.json \
//	    -deploy testdata/bag.json -gantt
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"

	"repro/internal/deploy"
	"repro/internal/gantt"
	"repro/internal/msg"
	"repro/internal/platform"
	"repro/internal/surf"
)

const (
	workChannel   = 1
	resultChannel = 2
	pingChannel   = 3
	pongChannel   = 4
)

func main() {
	platformPath := flag.String("platform", "", "platform JSON file")
	deployPath := flag.String("deploy", "", "deployment JSON file")
	showGantt := flag.Bool("gantt", false, "print a Gantt chart after the run")
	width := flag.Int("width", 100, "gantt width")
	solverWorkers := flag.Int("solver-workers", 0,
		"worker pool bound for the parallel MaxMin component solve (0 = GOMAXPROCS, 1 = sequential)")
	flag.Parse()
	if *platformPath == "" || *deployPath == "" {
		flag.Usage()
		os.Exit(2)
	}

	pf, err := platform.LoadFile(*platformPath)
	if err != nil {
		log.Fatalf("loading platform: %v", err)
	}
	spec, err := deploy.LoadFile(*deployPath)
	if err != nil {
		log.Fatalf("loading deployment: %v", err)
	}

	cfg := surf.DefaultConfig()
	cfg.SolverWorkers = *solverWorkers
	env := msg.NewEnvironment(pf, cfg)
	if *showGantt {
		env.Gantt = &gantt.Recorder{}
	}

	if err := deploy.Run(env, spec, registry()); err != nil {
		log.Fatalf("simulation: %v", err)
	}
	fmt.Printf("simulation finished at t=%.6f s\n", env.Now())
	if *showGantt {
		fmt.Println()
		if err := env.Gantt.Render(os.Stdout, *width); err != nil {
			log.Fatal(err)
		}
	}
}

// registry returns the built-in generic process functions.
func registry() deploy.Registry {
	return deploy.Registry{
		"master":  master,
		"worker":  worker,
		"pinger":  pinger,
		"ponger":  ponger,
		"sleeper": sleeper,
	}
}

// master <ntasks> <flops> <bytes> <worker hosts...>
func master(p *msg.Process, args []string) error {
	if len(args) < 4 {
		return fmt.Errorf("master needs: ntasks flops bytes worker...")
	}
	n, err := strconv.Atoi(args[0])
	if err != nil {
		return err
	}
	flops, err := strconv.ParseFloat(args[1], 64)
	if err != nil {
		return err
	}
	bytes, err := strconv.ParseFloat(args[2], 64)
	if err != nil {
		return err
	}
	workers := args[3:]
	// Results are collected by a separate (non-daemon) process, the
	// standard MSG idiom: rendezvous puts to a busy worker would
	// otherwise deadlock against that worker's own result put. The
	// simulation ends when the collector got everything.
	if _, err := p.Spawn("collector", p.Host().Name, func(c *msg.Process) error {
		for i := 0; i < n; i++ {
			if _, err := c.Get(resultChannel); err != nil {
				return err
			}
		}
		fmt.Printf("[%10.6f] master: %d results collected\n", c.Now(), n)
		return nil
	}); err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		t := msg.NewTask(fmt.Sprintf("job%03d", i), flops, bytes)
		if err := p.Put(t, workers[i%len(workers)], workChannel); err != nil {
			return err
		}
	}
	return nil
}

// worker serves tasks forever: execute, return a small result.
func worker(p *msg.Process, args []string) error {
	for {
		task, err := p.Get(workChannel)
		if err != nil {
			return err
		}
		if err := p.Execute(task); err != nil {
			return err
		}
		res := msg.NewTask("result:"+task.Name, 0, 1e4)
		if err := p.Put(res, task.Source().Name, resultChannel); err != nil {
			return err
		}
	}
}

// pinger <dest> <count> <bytes>
func pinger(p *msg.Process, args []string) error {
	if len(args) < 3 {
		return fmt.Errorf("pinger needs: dest count bytes")
	}
	dest := args[0]
	count, err := strconv.Atoi(args[1])
	if err != nil {
		return err
	}
	bytes, err := strconv.ParseFloat(args[2], 64)
	if err != nil {
		return err
	}
	for i := 0; i < count; i++ {
		t0 := p.Now()
		if err := p.Put(msg.NewTask("ping", 0, bytes), dest, pingChannel); err != nil {
			return err
		}
		if _, err := p.Get(pongChannel); err != nil {
			return err
		}
		fmt.Printf("[%10.6f] pinger: rtt %.6f s\n", p.Now(), p.Now()-t0)
	}
	return nil
}

// ponger echoes pings back.
func ponger(p *msg.Process, args []string) error {
	for {
		t, err := p.Get(pingChannel)
		if err != nil {
			return err
		}
		if err := p.Put(msg.NewTask("pong", 0, t.Bytes), t.Source().Name, pongChannel); err != nil {
			return err
		}
	}
}

// sleeper <seconds>
func sleeper(p *msg.Process, args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("sleeper needs: seconds")
	}
	d, err := strconv.ParseFloat(args[0], 64)
	if err != nil {
		return err
	}
	return p.Sleep(d)
}
