// TestDeterminism pins the scheduler contract the simcall refactor must
// preserve: a seeded MSG workload produces a bit-identical event order
// on every run. The workload couples every pair through a shared
// backbone link (so completions interact through the MaxMin share),
// mixes transfers, computations, sleeps and same-instant completions,
// and logs every wake. CI runs it with -count=5 so nondeterminism
// introduced by a scheduler change is caught on every push.
package simgrid

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/msg"
	"repro/internal/platform"
	"repro/internal/surf"
)

// determinismPlatform wires nPairs sender/receiver pairs through
// per-pair access links plus one shared backbone, so every transfer
// shares bandwidth with every other.
func determinismPlatform(t *testing.T, nPairs int) *platform.Platform {
	t.Helper()
	pf := platform.New()
	backbone := &platform.Link{Name: "backbone", Bandwidth: 5e8, Latency: 5e-4}
	for i := 0; i < nPairs; i++ {
		src, dst := fmt.Sprintf("s%d", i), fmt.Sprintf("r%d", i)
		if err := pf.AddHost(&platform.Host{Name: src, Power: 1e9}); err != nil {
			t.Fatal(err)
		}
		if err := pf.AddHost(&platform.Host{Name: dst, Power: 1e9}); err != nil {
			t.Fatal(err)
		}
		up := &platform.Link{Name: fmt.Sprintf("up%d", i), Bandwidth: 1e8, Latency: 1e-4}
		down := &platform.Link{Name: fmt.Sprintf("down%d", i), Bandwidth: 1e8, Latency: 1e-4}
		if err := pf.AddRoute(src, dst, []*platform.Link{up, backbone, down}); err != nil {
			t.Fatal(err)
		}
	}
	return pf
}

// runSeededWorkload executes the workload for one seed and returns the
// wake-ordered event log.
func runSeededWorkload(t *testing.T, pf *platform.Platform, nPairs, rounds int, seed int64) []string {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	env := msg.NewEnvironment(pf, surf.DefaultConfig())
	var log []string
	record := func(p *msg.Process, what string, round int) {
		log = append(log, fmt.Sprintf("%.9e pid%d %s r%d", env.Now(), p.PID(), what, round))
	}
	const channel = 7
	for i := 0; i < nPairs; i++ {
		i := i
		src, dst := fmt.Sprintf("s%d", i), fmt.Sprintf("r%d", i)
		bytes := 1e4 * (1 + rng.Float64()*9)
		flops := 1e5 * (1 + rng.Float64()*9)
		sleep := rng.Float64() * 1e-3
		lockstep := i%3 == 0 // a third of the pairs use identical sizes
		if lockstep {
			bytes, flops, sleep = 5e4, 5e5, 0
		}
		if _, err := env.NewProcess("recv", dst, func(p *msg.Process) error {
			for r := 0; r < rounds; r++ {
				task, err := p.Get(channel)
				if err != nil {
					return err
				}
				record(p, "got "+task.Name, r)
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if _, err := env.NewProcess("send", src, func(p *msg.Process) error {
			for r := 0; r < rounds; r++ {
				if sleep > 0 {
					if err := p.Sleep(sleep); err != nil {
						return err
					}
				}
				if err := p.Put(msg.NewTask(fmt.Sprintf("t%d", i), 0, bytes), dst, channel); err != nil {
					return err
				}
				record(p, "sent", r)
				if err := p.Execute(msg.NewTask("c", flops, 0)); err != nil {
					return err
				}
				record(p, "computed", r)
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := env.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	return log
}

func TestDeterminism(t *testing.T) {
	const nPairs, rounds, seed = 40, 6, 12345
	ref := runSeededWorkload(t, determinismPlatform(t, nPairs), nPairs, rounds, seed)
	if len(ref) != nPairs*rounds*3 {
		t.Fatalf("event log has %d entries, want %d", len(ref), nPairs*rounds*3)
	}
	for run := 1; run <= 2; run++ {
		got := runSeededWorkload(t, determinismPlatform(t, nPairs), nPairs, rounds, seed)
		if len(got) != len(ref) {
			t.Fatalf("run %d: %d events, reference has %d", run, len(got), len(ref))
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("run %d: event %d differs:\n  ref: %s\n  got: %s", run, i, ref[i], got[i])
			}
		}
	}
}
