package simgrid

import (
	"math"
	"testing"

	"repro/internal/gras"
	"repro/internal/smpi"
)

// The paper's full MSG example through the public façade.
func TestFacadeMSGClientServer(t *testing.T) {
	pf := NewPlatform()
	if err := pf.AddHost(&Host{Name: "client_host", Power: 1e9}); err != nil {
		t.Fatal(err)
	}
	if err := pf.AddHost(&Host{Name: "server_host", Power: 1e9}); err != nil {
		t.Fatal(err)
	}
	if err := pf.AddRoute("client_host", "server_host", []*Link{
		{Name: "lan", Bandwidth: 1.25e7, Latency: 1e-4},
	}); err != nil {
		t.Fatal(err)
	}

	env := NewMSG(pf, DefaultConfig())
	if _, err := env.NewProcess("server", "server_host", func(p *MSGProcess) error {
		p.Daemonize()
		for {
			task, err := p.Get(22)
			if err != nil {
				return err
			}
			if err := p.Execute(task); err != nil {
				return err
			}
			if err := p.Put(NewMSGTask("Ack", 0, 1e4), task.Source().Name, 23); err != nil {
				return err
			}
		}
	}); err != nil {
		t.Fatal(err)
	}
	var done float64
	if _, err := env.NewProcess("client", "client_host", func(p *MSGProcess) error {
		if err := p.Put(NewMSGTask("Remote", 30e6, 3.2e6), "server_host", 22); err != nil {
			return err
		}
		if err := p.Execute(NewMSGTask("Local", 10.5e6, 3.2e6)); err != nil {
			return err
		}
		if _, err := p.Get(23); err != nil {
			return err
		}
		done = p.Now()
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := env.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if done <= 0 {
		t.Error("client never finished")
	}
}

func TestFacadeWaxmanAndSMPI(t *testing.T) {
	pf, err := GenerateWaxman(6, 1)
	if err != nil {
		t.Fatalf("GenerateWaxman: %v", err)
	}
	hosts := []string{"host0", "host1", "host2", "host3"}
	w, err := NewSMPI(pf, DefaultConfig(), hosts)
	if err != nil {
		t.Fatalf("NewSMPI: %v", err)
	}
	sums := make([]float64, 4)
	if err := w.Run(func(r *SMPIRank) error {
		v, err := r.Allreduce(float64(r.Rank()+1), smpi.OpSum, 1e3)
		sums[r.Rank()] = v
		return err
	}); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i, s := range sums {
		if s != 10 {
			t.Errorf("rank %d sum = %g, want 10", i, s)
		}
	}
}

func TestFacadeGRAS(t *testing.T) {
	pf := NewPlatform()
	for _, n := range []string{"a", "b"} {
		if err := pf.AddHost(&Host{Name: n, Power: 1e9}); err != nil {
			t.Fatal(err)
		}
	}
	if err := pf.AddRoute("a", "b", []*Link{
		{Name: "l", Bandwidth: 1.25e7, Latency: 1e-4},
	}); err != nil {
		t.Fatal(err)
	}
	w := NewGRAS(pf, DefaultConfig())
	if err := w.Launch("server", "b", func(n GRASNode) error {
		n.Registry().Declare("msg", float64(0))
		if err := n.Listen(80); err != nil {
			return err
		}
		m, err := n.Recv("msg", 60)
		if err != nil {
			return err
		}
		if math.Abs(m.Payload.(float64)-3.25) > 1e-12 {
			t.Errorf("payload = %v", m.Payload)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := w.Launch("client", "a", func(n GRASNode) error {
		n.Registry().Declare("msg", float64(0))
		n.Sleep(0.01)
		s, err := n.Client("b", 80)
		if err != nil {
			return err
		}
		return n.Send(s, "msg", 3.25)
	}); err != nil {
		t.Fatal(err)
	}
	if err := w.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := w.NodeError("server"); err != nil {
		t.Errorf("server: %v", err)
	}
}

// Guard the façade against drift: the aliases must keep pointing at the
// implementing packages.
func TestFacadeAliases(t *testing.T) {
	var _ *gras.World = NewGRAS(NewPlatform(), DefaultConfig())
	cfg := DefaultConfig()
	if cfg.BandwidthFactor <= 0 || cfg.TCPGamma <= 0 {
		t.Error("DefaultConfig not calibrated")
	}
	task := NewMSGTask("x", 1, 2)
	if task.Flops != 1 || task.Bytes != 2 {
		t.Error("task constructor wrong")
	}
}
