// MSG-level scaling benchmarks: many processes exchanging tasks through
// the full stack (kernel run queue, mailboxes, fluid model, lazy action
// heap) rather than the bare solver. This is the workload class the
// lazy action management targets: with a linear next-event scan each
// simulation step costs O(concurrent actions), so per-activity cost
// grows with the platform size; with the event heap it stays flat.
//
// Only public APIs are used, so the file can be dropped onto an older
// revision to measure a baseline.
package simgrid

import (
	"fmt"
	"testing"

	"repro/internal/msg"
	"repro/internal/platform"
	"repro/internal/surf"
)

// msgScalingPlatform builds nPairs disjoint sender/receiver host pairs,
// each wired by a dedicated link. With stagger set, bandwidth and
// latency vary per pair so completions spread out (one event per step,
// the worst case for a linear completion sweep); without it all pairs
// run in lock-step, so every step dirties every component (the best
// case for the parallel component solve).
func msgScalingPlatform(b *testing.B, nPairs int, stagger bool) *platform.Platform {
	b.Helper()
	pf := platform.New()
	for i := 0; i < nPairs; i++ {
		src, dst := fmt.Sprintf("s%d", i), fmt.Sprintf("r%d", i)
		if err := pf.AddHost(&platform.Host{Name: src, Power: 1e9}); err != nil {
			b.Fatal(err)
		}
		if err := pf.AddHost(&platform.Host{Name: dst, Power: 1e9}); err != nil {
			b.Fatal(err)
		}
		l := &platform.Link{Name: fmt.Sprintf("l%d", i), Bandwidth: 1e8, Latency: 1e-4}
		if stagger {
			l.Bandwidth *= 1 + 0.15*float64(i%7)
			l.Latency *= 1 + float64(i%5)
		}
		if err := pf.AddRoute(src, dst, []*platform.Link{l}); err != nil {
			b.Fatal(err)
		}
	}
	return pf
}

// runMSGScaling simulates nPairs pairs doing rounds of transfer+compute
// each: 2·nPairs·rounds activities total, up to nPairs of them
// concurrent.
func runMSGScaling(b *testing.B, pf *platform.Platform, nPairs, rounds int) {
	b.Helper()
	env := buildScalingEnv(b, pf, nPairs, rounds, true, surf.DefaultConfig())
	if err := env.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkMSGScaling is the million-activity end-to-end benchmark:
// ns/activity flat across scales demonstrates that NextEventTime and
// AdvanceTo no longer pay O(actions) per step. The 1M case is skipped
// under -short (CI smoke).
func BenchmarkMSGScaling(b *testing.B) {
	cases := []struct {
		name   string
		pairs  int
		rounds int
	}{
		{"activities-1k", 50, 10},
		{"activities-10k", 500, 10},
		{"activities-100k", 5000, 10},
		{"activities-1M", 10000, 50},
	}
	for _, c := range cases {
		activities := 2 * c.pairs * c.rounds
		b.Run(c.name, func(b *testing.B) {
			if testing.Short() && activities > 200000 {
				b.Skipf("skipping %d activities under -short", activities)
			}
			pf := msgScalingPlatform(b, c.pairs, true)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				runMSGScaling(b, pf, c.pairs, c.rounds)
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*activities), "ns/activity")
		})
	}
}

// BenchmarkMSGScalingParallelSolve pins the parallel component solve on
// a multi-island MSG workload (many disjoint pairs are many independent
// components): sequential forces workers=1, parallel uses GOMAXPROCS
// unless -solver-workers pins the pool size.
func BenchmarkMSGScalingParallelSolve(b *testing.B) {
	const pairs, rounds = 2000, 10
	pf := msgScalingPlatform(b, pairs, false)
	for _, mode := range []string{"sequential", "parallel"} {
		b.Run(mode, func(b *testing.B) {
			cfg := surf.DefaultConfig()
			if mode == "sequential" {
				cfg.SolverWorkers = 1
			} else {
				cfg.SolverWorkers = *solverWorkers
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				env := buildScalingEnv(b, pf, pairs, rounds, false, cfg)
				if err := env.Run(); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*2*pairs*rounds), "ns/activity")
		})
	}
}

// BenchmarkMSGScalingLockstep is the same-instant completion workload:
// every pair is identical, so each round's transfers (and then each
// round's computes) all finish at the exact same virtual time — the
// worst case for per-completion event processing. `batched` uses the
// equal-key bulk-pop of the action heap plus the contiguous wake sweep;
// `per-completion` (Config.SequentialCompletions) pops and wakes one
// action at a time. Both paths produce the identical event order
// (TestLockstepBatchedEquivalence); only the cost differs.
func BenchmarkMSGScalingLockstep(b *testing.B) {
	cases := []struct {
		name   string
		pairs  int
		rounds int
	}{
		{"pairs-500", 500, 10},
		{"pairs-5000", 5000, 10},
	}
	for _, c := range cases {
		for _, mode := range []string{"batched", "per-completion"} {
			activities := 2 * c.pairs * c.rounds
			b.Run(fmt.Sprintf("%s/%s", c.name, mode), func(b *testing.B) {
				if testing.Short() && activities > 20000 {
					b.Skipf("skipping %d activities under -short", activities)
				}
				pf := msgScalingPlatform(b, c.pairs, false)
				cfg := surf.DefaultConfig()
				cfg.SequentialCompletions = mode == "per-completion"
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					env := buildScalingEnv(b, pf, c.pairs, c.rounds, false, cfg)
					if err := env.Run(); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*activities), "ns/activity")
			})
		}
	}
}

func buildScalingEnv(b *testing.B, pf *platform.Platform, nPairs, rounds int, stagger bool, cfg surf.Config) *msg.Environment {
	b.Helper()
	env := msg.NewEnvironment(pf, cfg)
	const channel = 1
	for i := 0; i < nPairs; i++ {
		src, dst := fmt.Sprintf("s%d", i), fmt.Sprintf("r%d", i)
		bytes, flops := 1e5, 1e6
		if stagger {
			bytes *= 1 + float64(i%9)
			flops *= 1 + float64(i%4)
		}
		if _, err := env.NewProcess("recv", dst, func(p *msg.Process) error {
			for r := 0; r < rounds; r++ {
				if _, err := p.Get(channel); err != nil {
					return err
				}
			}
			return nil
		}); err != nil {
			b.Fatal(err)
		}
		if _, err := env.NewProcess("send", src, func(p *msg.Process) error {
			for r := 0; r < rounds; r++ {
				if err := p.Put(msg.NewTask("t", 0, bytes), dst, channel); err != nil {
					return err
				}
				if err := p.Execute(msg.NewTask("c", flops, 0)); err != nil {
					return err
				}
			}
			return nil
		}); err != nil {
			b.Fatal(err)
		}
	}
	return env
}
