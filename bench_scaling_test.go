// MSG-level scaling benchmarks: many processes exchanging tasks through
// the full stack (kernel run queue, mailboxes, fluid model, lazy action
// heap) rather than the bare solver. This is the workload class the
// lazy action management targets: with a linear next-event scan each
// simulation step costs O(concurrent actions), so per-activity cost
// grows with the platform size; with the event heap it stays flat.
//
// Only public APIs are used, so the file can be dropped onto an older
// revision to measure a baseline.
package simgrid

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/msg"
	"repro/internal/platform"
	"repro/internal/surf"
)

// msgScalingPlatform builds nPairs disjoint sender/receiver host pairs,
// each wired by a dedicated link. With stagger set, bandwidth and
// latency vary per pair so completions spread out (one event per step,
// the worst case for a linear completion sweep); without it all pairs
// run in lock-step, so every step dirties every component (the best
// case for the parallel component solve).
func msgScalingPlatform(b *testing.B, nPairs int, stagger bool) *platform.Platform {
	b.Helper()
	pf := platform.New()
	for i := 0; i < nPairs; i++ {
		src, dst := fmt.Sprintf("s%d", i), fmt.Sprintf("r%d", i)
		if err := pf.AddHost(&platform.Host{Name: src, Power: 1e9}); err != nil {
			b.Fatal(err)
		}
		if err := pf.AddHost(&platform.Host{Name: dst, Power: 1e9}); err != nil {
			b.Fatal(err)
		}
		l := &platform.Link{Name: fmt.Sprintf("l%d", i), Bandwidth: 1e8, Latency: 1e-4}
		if stagger {
			l.Bandwidth *= 1 + 0.15*float64(i%7)
			l.Latency *= 1 + float64(i%5)
		}
		if err := pf.AddRoute(src, dst, []*platform.Link{l}); err != nil {
			b.Fatal(err)
		}
	}
	return pf
}

// runMSGScaling simulates nPairs pairs doing rounds of transfer+compute
// each: 2·nPairs·rounds activities total, up to nPairs of them
// concurrent.
func runMSGScaling(b *testing.B, pf *platform.Platform, nPairs, rounds int) {
	b.Helper()
	env := buildScalingEnv(b, pf, nPairs, rounds, true, surf.DefaultConfig())
	if err := env.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkMSGScaling is the multi-million-activity end-to-end
// benchmark: ns/activity flat across scales demonstrates that
// NextEventTime and AdvanceTo no longer pay O(actions) per step. Tiers
// up to 1M use goroutine processes (the historical trajectory); the
// 10M tier runs the identical pair workload in declarative chain form
// — goroutine processes at that scale would pay 200k stacks, while
// chains spawn zero. Under -short the big tiers are skipped except
// 10M, which runs reduced as a smoke test of the declarative path.
func BenchmarkMSGScaling(b *testing.B) {
	cases := []struct {
		name   string
		pairs  int
		rounds int
		chains bool
	}{
		{"activities-1k", 50, 10, false},
		{"activities-10k", 500, 10, false},
		{"activities-100k", 5000, 10, false},
		{"activities-1M", 10000, 50, false},
		{"activities-10M", 100000, 50, true},
	}
	for _, c := range cases {
		c := c
		activities := 2 * c.pairs * c.rounds
		b.Run(c.name, func(b *testing.B) {
			if testing.Short() && activities > 200000 {
				if !c.chains {
					b.Skipf("skipping %d activities under -short", activities)
				}
				// Reduced declarative smoke tier: same workload shape,
				// small enough for CI.
				c.pairs, c.rounds = 2000, 5
				activities = 2 * c.pairs * c.rounds
				b.Logf("reduced to %d activities under -short", activities)
			}
			pf := msgScalingPlatform(b, c.pairs, true)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if c.chains {
					runMSGScalingChain(b, pf, c.pairs, c.rounds)
				} else {
					runMSGScaling(b, pf, c.pairs, c.rounds)
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*activities), "ns/activity")
		})
	}
}

// runMSGScalingChain is runMSGScaling in declarative form, asserting
// the processless contract: zero goroutine spawns for the whole run.
func runMSGScalingChain(b *testing.B, pf *platform.Platform, nPairs, rounds int) {
	b.Helper()
	env := buildScalingEnvChain(b, pf, nPairs, rounds, true, surf.DefaultConfig())
	if err := env.Run(); err != nil {
		b.Fatal(err)
	}
	if g := env.Engine().GoroutineSpawns(); g != 0 {
		b.Fatalf("declarative run spawned %d goroutines, want 0", g)
	}
	if s := env.Engine().Spawned(); s != 2*nPairs {
		b.Fatalf("Spawned() = %d, want %d logical starts", s, 2*nPairs)
	}
}

// BenchmarkMSGScalingForms is the A/B/C comparison at a fixed tier:
// the same 100k-activity pair workload as (a) goroutine processes with
// fresh stacks, (b) goroutine processes on the warm worker pool, and
// (c) declarative chains. The deltas isolate what each layer saves —
// (a)→(b) the per-spawn stack cost, (b)→(c) the block/wake handoff.
func BenchmarkMSGScalingForms(b *testing.B) {
	const pairs, rounds = 5000, 10
	activities := 2 * pairs * rounds
	pf := msgScalingPlatform(b, pairs, true)
	for _, form := range []string{"goroutine-fresh", "goroutine-pooled", "chain"} {
		form := form
		b.Run(form, func(b *testing.B) {
			if testing.Short() {
				b.Skip("skipping forms A/B under -short")
			}
			defer core.SetGoroutinePooling(core.SetGoroutinePooling(form != "goroutine-fresh"))
			b.ReportAllocs()
			b.ResetTimer()
			var peak int
			for i := 0; i < b.N; i++ {
				var env *msg.Environment
				if form == "chain" {
					env = buildScalingEnvChain(b, pf, pairs, rounds, true, surf.DefaultConfig())
				} else {
					env = buildScalingEnv(b, pf, pairs, rounds, true, surf.DefaultConfig())
				}
				if err := env.Run(); err != nil {
					b.Fatal(err)
				}
				peak = env.Engine().GoroutinesPeak()
				if form == "chain" && env.Engine().GoroutineSpawns() != 0 {
					b.Fatal("chain form spawned goroutines")
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*activities), "ns/activity")
			b.ReportMetric(float64(peak), "peak-goroutines")
		})
	}
}

// BenchmarkMSGChainChurn measures chain lifecycle cost: a million
// short-lived chains (one compute each) cycled through the ChainProc
// free list, relaunched from OnExit. ns/chain is the full
// start→run→terminate→recycle cost of a logical process with no
// goroutine behind it.
func BenchmarkMSGChainChurn(b *testing.B) {
	const hosts = 100
	total := 1000000
	if testing.Short() {
		total = 10000
	}
	perHost := total / hosts
	pf := msgScalingPlatform(b, hosts, true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		env := msg.NewEnvironment(pf, surf.DefaultConfig())
		spec := msg.NewChain().Compute("w", 1e6).MustBuild()
		var launch func(host string, remaining int)
		launch = func(host string, remaining int) {
			if remaining == 0 {
				return
			}
			if _, err := env.StartChain("w", host, spec, &msg.ChainConfig{
				OnExit: func(error) { launch(host, remaining-1) },
			}); err != nil {
				b.Fatal(err)
			}
		}
		for h := 0; h < hosts; h++ {
			launch(fmt.Sprintf("s%d", h), perHost)
		}
		if err := env.Run(); err != nil {
			b.Fatal(err)
		}
		if s := env.Engine().Spawned(); s != hosts*perHost {
			b.Fatalf("Spawned() = %d, want %d", s, hosts*perHost)
		}
		if g := env.Engine().GoroutineSpawns(); g != 0 {
			b.Fatal("chain churn spawned goroutines")
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*hosts*perHost), "ns/chain")
}

// BenchmarkMSGScalingParallelSolve pins the parallel component solve on
// a multi-island MSG workload (many disjoint pairs are many independent
// components): sequential forces workers=1, parallel uses GOMAXPROCS
// unless -solver-workers pins the pool size.
func BenchmarkMSGScalingParallelSolve(b *testing.B) {
	const pairs, rounds = 2000, 10
	pf := msgScalingPlatform(b, pairs, false)
	for _, mode := range []string{"sequential", "parallel"} {
		b.Run(mode, func(b *testing.B) {
			cfg := surf.DefaultConfig()
			if mode == "sequential" {
				cfg.SolverWorkers = 1
			} else {
				cfg.SolverWorkers = *solverWorkers
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				env := buildScalingEnv(b, pf, pairs, rounds, false, cfg)
				if err := env.Run(); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*2*pairs*rounds), "ns/activity")
		})
	}
}

// BenchmarkMSGScalingLockstep is the same-instant completion workload:
// every pair is identical, so each round's transfers (and then each
// round's computes) all finish at the exact same virtual time — the
// worst case for per-completion event processing. `batched` uses the
// equal-key bulk-pop of the action heap plus the contiguous wake sweep;
// `per-completion` (Config.SequentialCompletions) pops and wakes one
// action at a time. Both paths produce the identical event order
// (TestLockstepBatchedEquivalence); only the cost differs.
func BenchmarkMSGScalingLockstep(b *testing.B) {
	cases := []struct {
		name   string
		pairs  int
		rounds int
	}{
		{"pairs-500", 500, 10},
		{"pairs-5000", 5000, 10},
	}
	for _, c := range cases {
		for _, mode := range []string{"batched", "per-completion"} {
			activities := 2 * c.pairs * c.rounds
			b.Run(fmt.Sprintf("%s/%s", c.name, mode), func(b *testing.B) {
				if testing.Short() && activities > 20000 {
					b.Skipf("skipping %d activities under -short", activities)
				}
				pf := msgScalingPlatform(b, c.pairs, false)
				cfg := surf.DefaultConfig()
				cfg.SequentialCompletions = mode == "per-completion"
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					env := buildScalingEnv(b, pf, c.pairs, c.rounds, false, cfg)
					if err := env.Run(); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*activities), "ns/activity")
			})
		}
	}
}

// buildScalingEnvChain is buildScalingEnv expressed as declarative
// chains: the identical pair workload with zero goroutines. The sender
// allocates its task once (PutReg reuses it every round), matching the
// zero-churn steady state of the rendezvous free lists.
func buildScalingEnvChain(b *testing.B, pf *platform.Platform, nPairs, rounds int, stagger bool, cfg surf.Config) *msg.Environment {
	b.Helper()
	env := msg.NewEnvironment(pf, cfg)
	const channel = 1
	for i := 0; i < nPairs; i++ {
		src, dst := fmt.Sprintf("s%d", i), fmt.Sprintf("r%d", i)
		bytes, flops := 1e5, 1e6
		if stagger {
			bytes *= 1 + float64(i%9)
			flops *= 1 + float64(i%4)
		}
		taskBytes := bytes
		recv := msg.NewChain().
			Loop(rounds).
			Get(channel).
			End().
			MustBuild()
		if _, err := env.StartChain("recv", dst, recv, nil); err != nil {
			b.Fatal(err)
		}
		send := msg.NewChain().
			Do(func(c *msg.ChainProc) { c.SetTask(msg.NewTask("t", 0, taskBytes)) }).
			Loop(rounds).
			PutReg(dst, channel).
			Compute("c", flops).
			End().
			MustBuild()
		if _, err := env.StartChain("send", src, send, nil); err != nil {
			b.Fatal(err)
		}
	}
	return env
}

func buildScalingEnv(b *testing.B, pf *platform.Platform, nPairs, rounds int, stagger bool, cfg surf.Config) *msg.Environment {
	b.Helper()
	env := msg.NewEnvironment(pf, cfg)
	const channel = 1
	for i := 0; i < nPairs; i++ {
		src, dst := fmt.Sprintf("s%d", i), fmt.Sprintf("r%d", i)
		bytes, flops := 1e5, 1e6
		if stagger {
			bytes *= 1 + float64(i%9)
			flops *= 1 + float64(i%4)
		}
		if _, err := env.NewProcess("recv", dst, func(p *msg.Process) error {
			for r := 0; r < rounds; r++ {
				if _, err := p.Get(channel); err != nil {
					return err
				}
			}
			return nil
		}); err != nil {
			b.Fatal(err)
		}
		if _, err := env.NewProcess("send", src, func(p *msg.Process) error {
			for r := 0; r < rounds; r++ {
				if err := p.Put(msg.NewTask("t", 0, bytes), dst, channel); err != nil {
					return err
				}
				if err := p.Execute(msg.NewTask("c", flops, 0)); err != nil {
					return err
				}
			}
			return nil
		}); err != nil {
			b.Fatal(err)
		}
	}
	return env
}
