// Volatile hosts: a peer-to-peer-style workload on hosts whose CPU
// availability varies with external load and which suffer transient
// failures, both driven by traces — the paper's "trace-based simulation
// of performance variations due to external load" and "of dynamic
// resource failures" ("a peer-to-peer file-sharing application running
// on volatile Internet hosts").
//
//	go run ./examples/volatility
package main

import (
	"fmt"
	"log"

	"repro/internal/msg"
	"repro/internal/platform"
	"repro/internal/surf"
	"repro/internal/trace"
)

func main() {
	pf := platform.New()

	// A stable server and two volatile peers.
	must(pf.AddHost(&platform.Host{Name: "server", Power: 2e9}))

	// peer1: CPU availability oscillates between 100% and 30%.
	avail := trace.MustNew("peer1-load", []trace.Event{
		{Time: 0, Value: 1.0},
		{Time: 5, Value: 0.3},
	}, 10)
	must(pf.AddHost(&platform.Host{Name: "peer1", Power: 1e9, Availability: avail}))

	// peer2: fails at t=12 and recovers at t=20 (transient failure).
	state := trace.MustNew("peer2-state", []trace.Event{
		{Time: 12, Value: 0},
		{Time: 20, Value: 1},
	}, 0)
	must(pf.AddHost(&platform.Host{Name: "peer2", Power: 1e9, StateTrace: state}))

	must(pf.AddRouter("net"))
	for _, h := range []string{"server", "peer1", "peer2"} {
		l := &platform.Link{Name: "up-" + h, Bandwidth: 1.25e6, Latency: 0.01}
		must(pf.Connect(h, "net", l))
	}
	must(pf.ComputeRoutes())

	env := msg.NewEnvironment(pf, surf.DefaultConfig())

	// The server hands out work units forever.
	_, err := env.NewProcess("server", "server", func(p *msg.Process) error {
		p.Daemonize()
		for i := 0; ; i++ {
			req, err := p.Get(1)
			if err != nil {
				return err
			}
			unit := msg.NewTask(fmt.Sprintf("unit%03d", i), 500e6, 1e5)
			if err := p.Put(unit, req.Source().Name, 2); err != nil {
				return err
			}
		}
	})
	must(err)

	// Peers request, compute, repeat — until the simulation horizon.
	// peer2 dies mid-computation at t=12 (its process is killed) and is
	// restarted by a monitor when the host recovers.
	peerLoop := func(p *msg.Process) error {
		for {
			if err := p.Put(msg.NewTask("request", 0, 1e3), "server", 1); err != nil {
				return err
			}
			unit, err := p.Get(2)
			if err != nil {
				return err
			}
			start := p.Now()
			if err := p.Execute(unit); err != nil {
				return err
			}
			fmt.Printf("[%7.3fs] %s computed %s in %.3f s\n",
				p.Now(), p.Name(), unit.Name, p.Now()-start)
		}
	}
	launch := func(name, host string) {
		pr, err := env.NewProcess(name, host, peerLoop)
		must(err)
		pr.Daemonize()
	}
	launch("peer1", "peer1")
	launch("peer2", "peer2")

	// A monitor process observes peer2's crash and restarts it after
	// the host comes back (the paper's volatile-Internet-hosts story).
	_, err = env.NewProcess("monitor", "server", func(p *msg.Process) error {
		for p.Now() < 30 {
			p.Sleep(1)
			if !env.Model().HostUp("peer2") {
				fmt.Printf("[%7.3fs] monitor: peer2 is DOWN\n", p.Now())
				for !env.Model().HostUp("peer2") {
					p.Sleep(1)
				}
				fmt.Printf("[%7.3fs] monitor: peer2 is back, restarting its process\n", p.Now())
				launch("peer2", "peer2")
			}
		}
		return nil
	})
	must(err)

	must(env.Run())
	fmt.Printf("simulation horizon reached at t=%.3f s\n", env.Now())
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
