// Quickstart: the paper's MSG client/server example, verbatim in shape.
// A client ships a 30 MFlop / 3.2 MB task to a server, executes a local
// 10.5 MFlop task, and waits for a 10 kB ack, all over a simulated LAN.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/msg"
	"repro/internal/platform"
	"repro/internal/surf"
)

const (
	port22 = 22 // data channel (the paper's PORT_22)
	port23 = 23 // ack channel (the paper's PORT_23)
)

func main() {
	// Two 1 Gflop/s hosts joined by a 100 Mbit/s, 0.1 ms LAN link.
	pf := platform.New()
	must(pf.AddHost(&platform.Host{Name: "client_host", Power: 1e9}))
	must(pf.AddHost(&platform.Host{Name: "server_host", Power: 1e9}))
	lan := &platform.Link{Name: "lan", Bandwidth: 1.25e7, Latency: 0.0001}
	must(pf.AddRoute("client_host", "server_host", []*platform.Link{lan}))

	env := msg.NewEnvironment(pf, surf.DefaultConfig())

	// int server(...) { while(1) { get; execute; put ack; } }
	_, err := env.NewProcess("server", "server_host", func(p *msg.Process) error {
		p.Daemonize()
		for {
			task, err := p.Get(port22)
			if err != nil {
				return err
			}
			fmt.Printf("[%8.4fs] server: received %q\n", p.Now(), task.Name)
			if err := p.Execute(task); err != nil {
				return err
			}
			fmt.Printf("[%8.4fs] server: executed %q\n", p.Now(), task.Name)
			ack := msg.NewTask("Ack", 0, 0.01e6) // 0 MFlop, 10 kB
			if err := p.Put(ack, task.Source().Name, port23); err != nil {
				return err
			}
		}
	})
	must(err)

	// int client(...) { put remote; execute local; get ack; }
	_, err = env.NewProcess("client", "client_host", func(p *msg.Process) error {
		remote := msg.NewTask("Remote", 30e6, 3.2e6) // 30 MFlop, 3.2 MB
		if err := p.Put(remote, "server_host", port22); err != nil {
			return err
		}
		fmt.Printf("[%8.4fs] client: sent %q\n", p.Now(), remote.Name)

		local := msg.NewTask("Local", 10.5e6, 3.2e6) // 10.5 MFlop
		if err := p.Execute(local); err != nil {
			return err
		}
		fmt.Printf("[%8.4fs] client: executed %q\n", p.Now(), local.Name)

		ack, err := p.Get(port23)
		if err != nil {
			return err
		}
		fmt.Printf("[%8.4fs] client: received %q — done\n", p.Now(), ack.Name)
		return nil
	})
	must(err)

	must(env.Run())
	fmt.Printf("simulation finished at t=%.4f s\n", env.Now())
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
