// GRAS ping-pong: the paper's client/server example written ONCE and
// run either inside the simulator or over real TCP — the same
// application code in both modes ("unmodified code run in simulation
// mode or in real-world mode").
//
//	go run ./examples/pingpong -mode sim
//	go run ./examples/pingpong -mode real
//	go run ./examples/pingpong -mode chain
//
// -mode chain is the simulation-only declarative rewrite: the same
// exchange expressed as two activity chains the kernel executes
// directly, spawning zero goroutines — the processless form that
// scales to millions of such agents.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/gras"
	"repro/internal/msg"
	"repro/internal/platform"
	"repro/internal/surf"
)

const port = 4000

// declare registers the two message types (gras_msgtype_declare).
func declare(n gras.Node) {
	n.Registry().Declare("ping", int32(0))
	n.Registry().Declare("pong", int32(0))
}

// server is the paper's server(): register a callback for "ping",
// open the socket, handle one message.
func server(n gras.Node) error {
	declare(n)
	n.RegisterCB("ping", func(n gras.Node, m *gras.Msg) error {
		got := m.Payload.(int32)
		fmt.Printf("[%8.4fs] %s: ping(%d) received, ponging back\n",
			n.Clock(), n.Name(), got)
		// Some computation whose duration should be simulated
		// (GRAS_BENCH_ALWAYS_BEGIN/END).
		if _, err := n.Bench(func() {
			s := 0
			for i := 0; i < 1_000_000; i++ {
				s += i
			}
			_ = s
		}); err != nil {
			return err
		}
		return n.Send(m.Reply, "pong", -got)
	})
	if err := n.Listen(port); err != nil {
		return err
	}
	return n.Handle(600) // wait for next message (up to 600 s) and handle it
}

// client is the paper's client(): sleep for server startup, connect,
// ping, wait for pong.
func client(serverHost string) func(gras.Node) error {
	return func(n gras.Node) error {
		declare(n)
		n.Sleep(1) // wait for the server startup (gras_os_sleep)
		peer, err := n.Client(serverHost, port)
		if err != nil {
			return err
		}
		ping := int32(1234)
		if err := n.Send(peer, "ping", ping); err != nil {
			return err
		}
		fmt.Printf("[%8.4fs] %s: ping(%d) sent\n", n.Clock(), n.Name(), ping)
		msg, err := n.Recv("pong", 60)
		if err != nil {
			return err
		}
		fmt.Printf("[%8.4fs] %s: pong(%d) received\n", n.Clock(), n.Name(), msg.Payload.(int32))
		return nil
	}
}

func main() {
	mode := flag.String("mode", "sim", "sim | real")
	flag.Parse()

	switch *mode {
	case "sim":
		runSim()
	case "real":
		runReal()
	case "chain":
		runChain()
	default:
		log.Fatalf("unknown mode %q", *mode)
	}
}

// pingpongPlatform is the WAN-like two-host world shared by the sim
// and chain modes.
func pingpongPlatform() *platform.Platform {
	pf := platform.New()
	must(pf.AddHost(&platform.Host{Name: "cli", Power: 1e9,
		Properties: map[string]string{"arch": "sparc"}}))
	must(pf.AddHost(&platform.Host{Name: "srv", Power: 1e9,
		Properties: map[string]string{"arch": "x86"}}))
	must(pf.AddRoute("cli", "srv", []*platform.Link{
		{Name: "wan", Bandwidth: 1.25e6, Latency: 0.05},
	}))
	return pf
}

// runChain is the same exchange as runSim, written declaratively: the
// control flow (sleep, send, receive, compute, reply) becomes a chain
// description the kernel advances via completion callbacks. No process
// bodies, no goroutines — note the spawn counter printed at the end.
func runChain() {
	const (
		pingChannel = 1
		pongChannel = 2
	)
	env := msg.NewEnvironment(pingpongPlatform(), surf.DefaultConfig())
	exitErrs := map[string]error{}

	serverSpec := msg.NewChain().
		Get(pingChannel).
		Do(func(c *msg.ChainProc) {
			fmt.Printf("[%8.4fs] %s: ping(%d) received, ponging back\n",
				c.Now(), c.Name(), c.Task().Data.(int32))
		}).
		// The benched computation of the GRAS server, as explicit flops.
		Compute("bench", 2e6).
		PutTask(func(c *msg.ChainProc) *msg.Task {
			t := msg.NewTask("pong", 0, 64)
			t.Data = -c.Task().Data.(int32)
			return t
		}, "cli", pongChannel).
		MustBuild()

	ping := int32(1234)
	clientSpec := msg.NewChain().
		Sleep(1). // wait for the server startup
		PutTask(func(*msg.ChainProc) *msg.Task {
			t := msg.NewTask("ping", 0, 64)
			t.Data = ping
			return t
		}, "srv", pingChannel).
		Do(func(c *msg.ChainProc) {
			fmt.Printf("[%8.4fs] %s: ping(%d) sent\n", c.Now(), c.Name(), ping)
		}).
		Get(pongChannel).
		Do(func(c *msg.ChainProc) {
			fmt.Printf("[%8.4fs] %s: pong(%d) received\n",
				c.Now(), c.Name(), c.Task().Data.(int32))
		}).
		MustBuild()

	for _, agent := range []struct {
		name, host string
		spec       *msg.Chain
	}{{"server", "srv", serverSpec}, {"client", "cli", clientSpec}} {
		agent := agent
		_, err := env.StartChain(agent.name, agent.host, agent.spec,
			&msg.ChainConfig{OnExit: func(err error) { exitErrs[agent.name] = err }})
		must(err)
	}
	must(env.Run())
	for _, agent := range []string{"server", "client"} {
		if err := exitErrs[agent]; err != nil {
			log.Fatalf("%s failed: %v", agent, err)
		}
	}
	fmt.Printf("chain mode done at virtual t=%.4f s (%d goroutines spawned)\n",
		env.Now(), env.Engine().GoroutineSpawns())
}

// runSim executes both agents inside the simulator, on a WAN-like link,
// with the client on sparc and the server on x86 (payloads are
// converted across endianness by the NDR wire format).
func runSim() {
	w := gras.NewWorld(pingpongPlatform(), surf.DefaultConfig())
	must(w.Launch("server", "srv", server))
	must(w.Launch("client", "cli", client("srv")))
	must(w.Run())
	for _, agent := range []string{"server", "client"} {
		if err := w.NodeError(agent); err != nil {
			log.Fatalf("%s failed: %v", agent, err)
		}
	}
	fmt.Printf("simulation mode done at virtual t=%.4f s\n", w.Now())
}

// runReal executes the SAME functions over loopback TCP.
func runReal() {
	reg := gras.NewRegistry()
	srv := gras.NewRealNode("server", gras.ArchX86, reg)
	defer srv.Close()
	cli := gras.NewRealNode("client", gras.ArchX86, reg)
	defer cli.Close()

	errc := make(chan error, 1)
	go func() { errc <- server(srv) }()

	if err := client("127.0.0.1")(cli); err != nil {
		log.Fatalf("client failed: %v", err)
	}
	if err := <-errc; err != nil {
		log.Fatalf("server failed: %v", err)
	}
	fmt.Printf("real-world mode done in %.4f s of wall time\n", cli.Clock())
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
