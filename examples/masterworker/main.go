// Master/worker on a commodity cluster — the paper's first target
// application class ("a parallel linear system solver on a commodity
// cluster"). A master distributes a bag of compute tasks to workers
// over a shared switch, collecting results; the run prints per-worker
// statistics and a Gantt chart of the execution.
//
//	go run ./examples/masterworker [-workers N] [-tasks T]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/gantt"
	"repro/internal/msg"
	"repro/internal/platform"
	"repro/internal/surf"
)

const (
	workChannel   = 1
	resultChannel = 2
)

func main() {
	workers := flag.Int("workers", 4, "number of worker hosts")
	tasks := flag.Int("tasks", 16, "number of tasks in the bag")
	flag.Parse()

	pf := platform.New()
	must(pf.AddRouter("switch"))
	must(pf.AddHost(&platform.Host{Name: "master", Power: 1e9}))
	must(pf.Connect("master", "switch",
		&platform.Link{Name: "eth-master", Bandwidth: 1.25e8, Latency: 5e-5}))
	workerNames := make([]string, *workers)
	for i := range workerNames {
		// Heterogeneous workers: power alternates 1 / 1.5 Gflop/s.
		name := fmt.Sprintf("worker%d", i)
		workerNames[i] = name
		power := 1e9
		if i%2 == 1 {
			power = 1.5e9
		}
		must(pf.AddHost(&platform.Host{Name: name, Power: power}))
		must(pf.Connect(name, "switch",
			&platform.Link{Name: "eth-" + name, Bandwidth: 1.25e8, Latency: 5e-5}))
	}
	must(pf.ComputeRoutes())

	env := msg.NewEnvironment(pf, surf.DefaultConfig())
	env.Gantt = &gantt.Recorder{}

	done := make(map[string]int)

	for _, wn := range workerNames {
		wn := wn
		_, err := env.NewProcess(wn, wn, func(p *msg.Process) error {
			for {
				task, err := p.Get(workChannel)
				if err != nil {
					return err
				}
				if task.Data == "poison" {
					return nil
				}
				if err := p.Execute(task); err != nil {
					return err
				}
				done[p.Name()]++
				res := msg.NewTask("result:"+task.Name, 0, 1e4)
				if err := p.Put(res, "master", resultChannel); err != nil {
					return err
				}
			}
		})
		must(err)
	}

	// Task puts block until the worker picks the task up (rendezvous),
	// so dispatching and result collection run as two processes on the
	// master host — the standard MSG idiom for a bag-of-tasks master.
	_, err := env.NewProcess("dispatcher", "master", func(p *msg.Process) error {
		// Ship the bag round-robin: 250 MFlop + 1 MB input each.
		for i := 0; i < *tasks; i++ {
			t := msg.NewTask(fmt.Sprintf("job%02d", i), 250e6, 1e6)
			if err := p.Put(t, workerNames[i%len(workerNames)], workChannel); err != nil {
				return err
			}
		}
		return nil
	})
	must(err)

	_, err = env.NewProcess("collector", "master", func(p *msg.Process) error {
		// Collect every result, then poison the workers.
		for i := 0; i < *tasks; i++ {
			if _, err := p.Get(resultChannel); err != nil {
				return err
			}
		}
		for _, wn := range workerNames {
			t := msg.NewTask("stop", 0, 100)
			t.Data = "poison"
			if err := p.Put(t, wn, workChannel); err != nil {
				return err
			}
		}
		return nil
	})
	must(err)

	must(env.Run())

	fmt.Printf("bag of %d tasks on %d workers finished at t=%.4f s\n\n",
		*tasks, *workers, env.Now())
	for _, wn := range workerNames {
		fmt.Printf("  %-10s completed %2d tasks (host power %.1f Gflop/s)\n",
			wn, done[wn], pf.Host(wn).Power/1e9)
	}
	fmt.Println("\nGantt chart (# compute, = comm, . idle-wait):")
	must(env.Gantt.Render(os.Stdout, 100))
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
