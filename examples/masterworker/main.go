// Master/worker on a commodity cluster — the paper's first target
// application class ("a parallel linear system solver on a commodity
// cluster"). A master distributes a bag of compute tasks to workers
// over a shared switch, collecting results; the run prints per-worker
// statistics and a Gantt chart of the execution.
//
// With -churn the run becomes a fault-tolerance demo: a seeded failure
// campaign (internal/faults) takes worker hosts down and up mid-run,
// workers auto-restart on host recovery, and the master re-dispatches
// unacknowledged jobs with bounded retries — the bag still completes,
// and the whole run (including the failure log) is deterministic in
// the seed.
//
//	go run ./examples/masterworker [-workers N] [-tasks T] [-churn] [-seed S]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/faults"
	"repro/internal/gantt"
	"repro/internal/msg"
	"repro/internal/platform"
	"repro/internal/surf"
)

const (
	workChannel   = 1
	resultChannel = 2
)

func main() {
	workers := flag.Int("workers", 4, "number of worker hosts")
	tasks := flag.Int("tasks", 16, "number of tasks in the bag")
	churn := flag.Bool("churn", false, "inject worker-host failures and survive them")
	seed := flag.Int64("seed", 42, "failure-campaign seed (with -churn)")
	flag.Parse()

	pf := platform.New()
	must(pf.AddRouter("switch"))
	must(pf.AddHost(&platform.Host{Name: "master", Power: 1e9}))
	must(pf.Connect("master", "switch",
		&platform.Link{Name: "eth-master", Bandwidth: 1.25e8, Latency: 5e-5}))
	workerNames := make([]string, *workers)
	for i := range workerNames {
		// Heterogeneous workers: power alternates 1 / 1.5 Gflop/s.
		name := fmt.Sprintf("worker%d", i)
		workerNames[i] = name
		power := 1e9
		if i%2 == 1 {
			power = 1.5e9
		}
		must(pf.AddHost(&platform.Host{Name: name, Power: power}))
		must(pf.Connect(name, "switch",
			&platform.Link{Name: "eth-" + name, Bandwidth: 1.25e8, Latency: 5e-5}))
	}
	must(pf.ComputeRoutes())

	env := msg.NewEnvironment(pf, surf.DefaultConfig())
	env.Gantt = &gantt.Recorder{}

	done := make(map[string]int)

	// The worker loop is declarative: one immutable chain description
	// shared by every worker, executed by the kernel itself — no
	// goroutine per worker. The master side below stays goroutine-based
	// (its control flow re-dispatches, deduplicates, retries — exactly
	// the irregular logic chains are not for), which is the intended
	// hybrid: chains for the regular hot loop, processes for the brains.
	workerSpec := msg.NewChain().
		Loop(0).
		Get(workChannel).
		StopIf(func(t *msg.Task) bool { return t.Data == "poison" }).
		ComputeTask().
		Do(func(c *msg.ChainProc) { done[c.Name()]++ }).
		PutTask(func(c *msg.ChainProc) *msg.Task {
			return msg.NewTask("result:"+c.Task().Name, 0, 1e4)
		}, "master", resultChannel).
		End().
		MustBuild()

	for _, wn := range workerNames {
		wn := wn
		var cfg *msg.ChainConfig
		if *churn {
			// Churn mode: workers are daemons (the master's completion
			// ends the run), die with their host, and re-arm on
			// recovery.
			cfg = &msg.ChainConfig{
				Daemon:      true,
				AutoRestart: true,
				OnFailure: func(error) {
					fmt.Printf("[%10.6f] %s: killed by host failure\n", env.Now(), wn)
				},
			}
		}
		_, err := env.StartChain(wn, wn, workerSpec, cfg)
		must(err)
	}

	if *churn {
		runChurn(env, workerNames, *tasks, *seed)
	} else {
		runFairWeather(env, workerNames, *tasks)
	}

	must(env.Run())

	fmt.Printf("bag of %d tasks on %d workers finished at t=%.4f s\n\n",
		*tasks, *workers, env.Now())
	for _, wn := range workerNames {
		fmt.Printf("  %-10s completed %2d tasks (host power %.1f Gflop/s)\n",
			wn, done[wn], pf.Host(wn).Power/1e9)
	}
	fmt.Println("\nGantt chart (# compute, = comm, . idle-wait):")
	must(env.Gantt.Render(os.Stdout, 100))
}

// runFairWeather is the classic failure-free bag-of-tasks: rendezvous
// puts block until a worker picks each task up, so dispatching and
// result collection run as two processes on the master host.
func runFairWeather(env *msg.Environment, workerNames []string, tasks int) {
	_, err := env.NewProcess("dispatcher", "master", func(p *msg.Process) error {
		// Ship the bag round-robin: 250 MFlop + 1 MB input each.
		for i := 0; i < tasks; i++ {
			t := msg.NewTask(fmt.Sprintf("job%02d", i), 250e6, 1e6)
			if err := p.Put(t, workerNames[i%len(workerNames)], workChannel); err != nil {
				return err
			}
		}
		return nil
	})
	must(err)

	_, err = env.NewProcess("collector", "master", func(p *msg.Process) error {
		// Collect every result, then poison the workers.
		for i := 0; i < tasks; i++ {
			if _, err := p.Get(resultChannel); err != nil {
				return err
			}
		}
		for _, wn := range workerNames {
			t := msg.NewTask("stop", 0, 100)
			t.Data = "poison"
			if err := p.Put(t, wn, workChannel); err != nil {
				return err
			}
		}
		return nil
	})
	must(err)
}

// runChurn arms a seeded failure campaign over the worker hosts and
// runs a failure-aware master: every outstanding job is (re)dispatched
// with bounded per-attempt timeouts rotating over the workers, results
// are deduplicated by job name (a job can run twice when its first
// worker died after executing but before the master gave up waiting),
// and the loop repeats until the whole bag is acknowledged. No poison
// pills: workers are daemons and the run ends with the master.
func runChurn(env *msg.Environment, workerNames []string, tasks int, seed int64) {
	sched, err := faults.Compile(seed, faults.Params{
		Horizon: 8,
		Classes: []faults.Class{{Name: "workers", Hosts: workerNames, MTBF: 1.5, MTTR: 0.4}},
	})
	must(err)
	in, err := faults.Arm(sched, env.Model())
	must(err)
	in.OnEvent = func(ev faults.Event) {
		state := "down"
		if ev.Up {
			state = "up"
		}
		fmt.Printf("[%10.6f] fault: %s %s\n", env.Now(), ev.Name, state)
	}

	// Dispatcher and collector share the outstanding-job set: the kernel
	// interleaves them deterministically on one OS-level lockstep, so no
	// synchronization is needed. The run ends when both finish.
	remaining := make(map[string]bool, tasks)
	order := make([]string, 0, tasks)
	for i := 0; i < tasks; i++ {
		name := fmt.Sprintf("job%02d", i)
		remaining[name] = true
		order = append(order, name)
	}

	_, err = env.NewProcess("dispatcher", "master", func(p *msg.Process) error {
		rr := 0
		const maxRounds = 100
		for round := 0; len(remaining) > 0; round++ {
			if round == maxRounds {
				return fmt.Errorf("bag not finished after %d rounds, %d jobs left", maxRounds, len(remaining))
			}
			// Dispatch one copy of every unacknowledged job; a job no
			// worker accepts within the retry budget waits for the next
			// round. Duplicates are possible (a job's first worker may
			// die after executing but before its result lands) — the
			// collector deduplicates.
			for _, name := range order {
				if !remaining[name] {
					continue
				}
				name := name
				err := msg.Retry(p, msg.RetryPolicy{Attempts: 2 * len(workerNames), Backoff: 0.25}, func() error {
					wn := workerNames[rr%len(workerNames)]
					rr++
					return p.PutWithTimeout(msg.NewTask(name, 250e6, 1e6), wn, workChannel, 1.0)
				})
				if err != nil {
					fmt.Printf("[%10.6f] master: job %s undeliverable this round (%v)\n", p.Now(), name, err)
				}
			}
			if len(remaining) > 0 {
				// Give in-flight results a beat to land before re-shipping.
				if err := p.Sleep(1.0); err != nil {
					return err
				}
			}
		}
		return nil
	})
	must(err)

	_, err = env.NewProcess("collector", "master", func(p *msg.Process) error {
		dry := 0
		for len(remaining) > 0 {
			res, err := p.GetWithTimeout(resultChannel, 2.0)
			if err != nil {
				if dry++; dry == 60 {
					return fmt.Errorf("no result for %d collect timeouts, %d jobs left", dry, len(remaining))
				}
				continue
			}
			dry = 0
			delete(remaining, strings.TrimPrefix(res.Name, "result:"))
		}
		fmt.Printf("[%10.6f] master: all %d jobs acknowledged\n", p.Now(), tasks)
		return nil
	})
	must(err)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
