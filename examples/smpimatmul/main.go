// SMPI 1-D matrix multiplication — the paper's SMPI example: an MPI
// program benchmarked on a homogeneous platform, then simulated on a
// heterogeneous one to study how it reacts to heterogeneity ("study
// the effect of platform heterogeneity").
//
//	go run ./examples/smpimatmul [-ranks N] [-size S]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/platform"
	"repro/internal/smpi"
	"repro/internal/surf"
)

func main() {
	ranks := flag.Int("ranks", 4, "number of MPI ranks")
	size := flag.Int("size", 512, "matrix dimension (M=N=K)")
	flag.Parse()

	cfg := smpi.MatMulConfig{M: *size, N: *size, K: *size}

	// Homogeneous cluster: every node 1 Gflop/s.
	homoPowers := make([]float64, *ranks)
	for i := range homoPowers {
		homoPowers[i] = 1e9
	}
	tHomo, err := run(homoPowers, cfg)
	must(err)
	fmt.Printf("homogeneous   (%d × 1.0 Gflop/s): makespan %.4f s\n", *ranks, tHomo)

	// Heterogeneous: same code, last node is 4x slower.
	heteroPowers := make([]float64, *ranks)
	for i := range heteroPowers {
		heteroPowers[i] = 1e9
	}
	heteroPowers[*ranks-1] = 2.5e8
	tHetero, err := run(heteroPowers, cfg)
	must(err)
	fmt.Printf("heterogeneous (one 0.25 Gflop/s node): makespan %.4f s\n", tHetero)
	fmt.Printf("slowdown from one slow node: %.2fx "+
		"(the per-step broadcast synchronises on the slowest strip)\n",
		tHetero/tHomo)
}

// run builds a star cluster with the given per-node powers and executes
// the multiplication, really benchmarking the rank-1 update on the
// first execution (the SMPI_BENCH path).
func run(powers []float64, cfg smpi.MatMulConfig) (float64, error) {
	pf := platform.New()
	if err := pf.AddRouter("switch"); err != nil {
		return 0, err
	}
	hosts := make([]string, len(powers))
	for i, p := range powers {
		name := fmt.Sprintf("node%d", i)
		hosts[i] = name
		if err := pf.AddHost(&platform.Host{Name: name, Power: p}); err != nil {
			return 0, err
		}
		l := &platform.Link{Name: "eth" + name, Bandwidth: 1.25e8, Latency: 5e-5}
		if err := pf.Connect(name, "switch", l); err != nil {
			return 0, err
		}
	}
	if err := pf.ComputeRoutes(); err != nil {
		return 0, err
	}
	w, err := smpi.New(pf, surf.DefaultConfig(), hosts)
	if err != nil {
		return 0, err
	}
	return smpi.RunMatMul(w, cfg, 0, true)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
