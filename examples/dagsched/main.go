// dagsched demonstrates the SimDag interface: the same seeded random
// workflow is scheduled on the same BRITE-like random platform with
// two list schedulers — round-robin and min-min — and the makespans
// are compared. This is exactly the experiment shape the paper names
// for SimDag ("evaluation of scheduling heuristics for task graphs"),
// and the whole thing runs without spawning a single process
// goroutine: DAG tasks live entirely in the simulation kernel.
//
//	go run ./examples/dagsched [-layers 8] [-width 12] [-seed 7]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/gantt"
	"repro/internal/platform"
	"repro/internal/simdag"
	"repro/internal/surf"
)

func main() {
	layers := flag.Int("layers", 8, "workflow layers")
	width := flag.Int("width", 12, "tasks per layer")
	nodes := flag.Int("nodes", 6, "Waxman platform nodes")
	seed := flag.Int64("seed", 7, "seed for platform and workflow")
	chart := flag.Bool("gantt", false, "render the min-min schedule")
	flag.Parse()

	run := func(schedule func(*simdag.Simulation, []string) error) (*simdag.Simulation, error) {
		pf, err := platform.GenerateWaxman(platform.DefaultWaxmanConfig(*nodes, *seed))
		if err != nil {
			return nil, err
		}
		sim := simdag.New(pf, surf.DefaultConfig())
		sim.Gantt = &gantt.Recorder{}
		if _, err := simdag.RandomLayered(sim, simdag.DefaultRandomConfig(*layers, *width, *seed+1)); err != nil {
			return nil, err
		}
		var hosts []string
		for _, h := range pf.Hosts() {
			hosts = append(hosts, h.Name)
		}
		if err := schedule(sim, hosts); err != nil {
			return nil, err
		}
		if _, err := sim.Simulate(); err != nil {
			return nil, err
		}
		if sim.FailedCount() > 0 || sim.DoneCount() != len(sim.Tasks()) {
			return nil, fmt.Errorf("run incomplete: %d done, %d failed of %d",
				sim.DoneCount(), sim.FailedCount(), len(sim.Tasks()))
		}
		return sim, nil
	}

	rr, err := run(simdag.ScheduleRoundRobin)
	if err != nil {
		log.Fatal(err)
	}
	mm, err := run(simdag.ScheduleMinMin)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workflow: %d tasks on %d hosts (seed %d)\n",
		len(mm.Tasks()), *nodes, *seed)
	fmt.Printf("round-robin makespan: %10.4f s\n", rr.Makespan())
	fmt.Printf("min-min makespan:     %10.4f s   (%.1f%% of round-robin)\n",
		mm.Makespan(), 100*mm.Makespan()/rr.Makespan())
	fmt.Printf("process goroutines spawned: %d + %d\n",
		rr.Engine().Spawned(), mm.Engine().Spawned())

	if *chart {
		fmt.Println("\nmin-min schedule (one row per host, task-name labels):")
		if err := mm.Gantt.RenderLabeled(os.Stdout, 100); err != nil {
			log.Fatal(err)
		}
	}
}
