// Package pastry implements the paper's GRAS evaluation: the average
// time to exchange one Pastry message between PowerPC, Sparc and x86
// hosts, on a LAN and on a WAN (California–France), for GRAS and the
// four comparator middlewares (MPICH, OmniORB, PBIO, XML-based).
//
// A message exchange costs sender-side encoding, the wire transfer of
// the encoded bytes (latency + size/bandwidth on the experiment's
// network), and receiver-side decoding (including byte-order conversion
// where the wire format demands it). Encode/decode costs are measured
// by really running the codecs; the n/a cells of the paper (middleware
// not available for an architecture pair) are reproduced by the
// documented availability rules below.
package pastry

import (
	"fmt"
	"io"
	"time"

	"repro/internal/gras/codec"
)

// Message is a Pastry JOIN-like message: a routing-table snapshot plus
// leaf set, the kind of state transfer Pastry performs when a node
// joins the overlay.
type Message struct {
	MsgID    uint64
	Kind     int32
	Key      [4]uint32 // 128-bit Pastry key
	Src      string
	Dst      string
	HopsSeen int32
	Rows     []RoutingRow
	Leaves   []LeafEntry
	Load     float64
}

// RoutingRow is one row of the Pastry routing table.
type RoutingRow struct {
	Level   int32
	Entries []RouteEntry
}

// RouteEntry points to one overlay node.
type RouteEntry struct {
	NodeID [4]uint32
	Addr   string
	RTT    float32
	Alive  bool
}

// LeafEntry is one member of the leaf set.
type LeafEntry struct {
	NodeID [4]uint32
	Addr   string
}

// Sample builds the reference message: a 32-row × 16-column routing
// table plus a 32-node leaf set (tens of kB in the GRAS wire format, so
// WAN exchanges are bandwidth-dominated like the paper's).
func Sample() Message {
	m := Message{
		MsgID:    0x0123456789ABCDEF,
		Kind:     2, // JOIN
		Key:      [4]uint32{0xDEADBEEF, 0x01020304, 0xA5A5A5A5, 0x42},
		Src:      "node-036a.ucsd.example.edu:4017",
		Dst:      "node-117f.ens-lyon.example.fr:4017",
		HopsSeen: 3,
		Load:     0.375,
	}
	for row := 0; row < 32; row++ {
		r := RoutingRow{Level: int32(row)}
		for col := 0; col < 16; col++ {
			r.Entries = append(r.Entries, RouteEntry{
				NodeID: [4]uint32{uint32(row), uint32(col), uint32(row * col), 7},
				Addr: fmt.Sprintf("node-%02x%02x.site-%d.example.org:%d",
					row, col, col%4, 4000+col),
				RTT:   float32(row*col) * 0.0001,
				Alive: (row+col)%7 != 0,
			})
		}
		m.Rows = append(m.Rows, r)
	}
	for i := 0; i < 32; i++ {
		m.Leaves = append(m.Leaves, LeafEntry{
			NodeID: [4]uint32{uint32(i), uint32(i * 3), 9, uint32(i * i)},
			Addr:   fmt.Sprintf("leaf-%02d.example.org:%d", i, 4100+i),
		})
	}
	return m
}

// Net describes the experiment's network.
type Net struct {
	Name      string
	Bandwidth float64 // bytes/s
	Latency   float64 // seconds one-way
}

// The two networks of the paper's tables.
var (
	// LAN: 100 Mbit/s switched Ethernet, 0.1 ms.
	LAN = Net{Name: "LAN", Bandwidth: 1.25e7, Latency: 0.0001}
	// WAN: California–France path of the mid-2000s: ~1 Mbit/s usable
	// end-to-end, 80 ms one-way.
	WAN = Net{Name: "WAN", Bandwidth: 1.25e5, Latency: 0.080}
)

// Cell is one table entry: a (codec, sender arch, receiver arch) cell.
type Cell struct {
	Codec     string
	From, To  codec.Arch
	Supported bool
	Encode    time.Duration // measured CPU time per message
	Decode    time.Duration
	WireBytes int
}

// ExchangeTime returns the modelled time to exchange one message over a
// network: encode + transfer + decode.
func (c Cell) ExchangeTime(n Net) float64 {
	if !c.Supported {
		return 0
	}
	return c.Encode.Seconds() + n.Latency +
		float64(c.WireBytes)/n.Bandwidth + c.Decode.Seconds()
}

// Supported reproduces the paper's n/a cells:
//   - MPICH requires a homogeneous MPI installation: cross-endianness
//     pairs are unsupported (the mid-2000s MPICH had no heterogeneous
//     data conversion in common deployments);
//   - PBIO had no PowerPC port.
func supported(codecName string, from, to codec.Arch) bool {
	switch codecName {
	case "MPICH":
		return from.Order == to.Order
	case "PBIO":
		return from.Name != "ppc" && to.Name != "ppc"
	default:
		return true
	}
}

// Measure runs every codec over every architecture pair, timing `iters`
// encode and decode operations of the sample message.
func Measure(iters int) ([]Cell, error) {
	if iters <= 0 {
		iters = 1
	}
	msg := Sample()
	desc, err := codec.Describe(msg)
	if err != nil {
		return nil, err
	}
	var cells []Cell
	for _, cdc := range codec.All() {
		for _, from := range codec.Archs {
			for _, to := range codec.Archs {
				cell := Cell{Codec: cdc.Name(), From: from, To: to}
				if !supported(cdc.Name(), from, to) {
					cells = append(cells, cell)
					continue
				}
				cell.Supported = true

				frame, err := cdc.Encode(desc, msg, from)
				if err != nil {
					return nil, fmt.Errorf("%s %s->%s: %w", cdc.Name(), from.Name, to.Name, err)
				}
				cell.WireBytes = len(frame)

				t0 := time.Now() //lint:allow det-wallclock codec micro-benchmark: measures real encode cost for the report, not simulated time
				for i := 0; i < iters; i++ {
					if _, err := cdc.Encode(desc, msg, from); err != nil {
						return nil, err
					}
				}
				cell.Encode = time.Since(t0) / time.Duration(iters) //lint:allow det-wallclock codec micro-benchmark: measures real encode cost for the report, not simulated time

				t0 = time.Now() //lint:allow det-wallclock codec micro-benchmark: measures real decode cost for the report, not simulated time
				for i := 0; i < iters; i++ {
					if _, err := cdc.Decode(desc, frame, to); err != nil {
						return nil, fmt.Errorf("%s %s->%s decode: %w", cdc.Name(), from.Name, to.Name, err)
					}
				}
				cell.Decode = time.Since(t0) / time.Duration(iters) //lint:allow det-wallclock codec micro-benchmark: measures real decode cost for the report, not simulated time
				cells = append(cells, cell)
			}
		}
	}
	return cells, nil
}

// Table prints the paper-shaped table: one block per (receiver, sender)
// pair with one exchange time per middleware.
func Table(w io.Writer, cells []Cell, n Net) {
	fmt.Fprintf(w, "Average time to exchange one Pastry message on a %s (in seconds)\n", n.Name)
	fmt.Fprintf(w, "%-6s %-6s", "to\\from", "")
	names := []string{"GRAS", "MPICH", "OmniORB", "PBIO", "XML"}
	for _, c := range names {
		fmt.Fprintf(w, " %10s", c)
	}
	fmt.Fprintln(w)
	for _, to := range codec.Archs {
		for _, from := range codec.Archs {
			fmt.Fprintf(w, "%-6s %-6s", to.Name, from.Name)
			for _, name := range names {
				cell, ok := find(cells, name, from, to)
				if !ok || !cell.Supported {
					fmt.Fprintf(w, " %10s", "n/a")
					continue
				}
				fmt.Fprintf(w, " %9.4gs", cell.ExchangeTime(n))
			}
			fmt.Fprintln(w)
		}
	}
}

func find(cells []Cell, codecName string, from, to codec.Arch) (Cell, bool) {
	for _, c := range cells {
		if c.Codec == codecName && c.From.ID == from.ID && c.To.ID == to.ID {
			return c, true
		}
	}
	return Cell{}, false
}

// Find exposes cell lookup for tests and benchmarks.
func Find(cells []Cell, codecName string, from, to codec.Arch) (Cell, bool) {
	return find(cells, codecName, from, to)
}
