package pastry

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/gras/codec"
)

func TestSampleIsDescribable(t *testing.T) {
	d, err := codec.Describe(Sample())
	if err != nil {
		t.Fatalf("Describe: %v", err)
	}
	if d.Kind != codec.KindStruct {
		t.Errorf("kind = %v", d.Kind)
	}
}

func TestSampleSizeInRange(t *testing.T) {
	msg := Sample()
	d, _ := codec.Describe(msg)
	frame, err := (codec.NDR{}).Encode(d, msg, codec.ArchX86)
	if err != nil {
		t.Fatal(err)
	}
	// The message is calibrated to tens of kB so WAN times are
	// bandwidth-dominated like the paper's.
	if len(frame) < 10_000 || len(frame) > 200_000 {
		t.Errorf("NDR frame = %d bytes, want 10k..200k", len(frame))
	}
}

func TestMeasureProducesAllCells(t *testing.T) {
	cells, err := Measure(2)
	if err != nil {
		t.Fatalf("Measure: %v", err)
	}
	// 5 codecs × 3 archs × 3 archs.
	if len(cells) != 45 {
		t.Fatalf("got %d cells, want 45", len(cells))
	}
	for _, c := range cells {
		if !c.Supported {
			continue
		}
		if c.Encode <= 0 || c.Decode <= 0 {
			t.Errorf("%s %s->%s: non-positive timings", c.Codec, c.From.Name, c.To.Name)
		}
		if c.WireBytes <= 0 {
			t.Errorf("%s %s->%s: no wire bytes", c.Codec, c.From.Name, c.To.Name)
		}
	}
}

func TestAvailabilityRules(t *testing.T) {
	cells, err := Measure(1)
	if err != nil {
		t.Fatal(err)
	}
	// MPICH n/a across endianness.
	if c, _ := Find(cells, "MPICH", codec.ArchX86, codec.ArchSparc); c.Supported {
		t.Error("MPICH x86->sparc should be n/a")
	}
	if c, _ := Find(cells, "MPICH", codec.ArchSparc, codec.ArchPowerPC); !c.Supported {
		t.Error("MPICH sparc->ppc (same endianness) should work")
	}
	// PBIO n/a on ppc.
	if c, _ := Find(cells, "PBIO", codec.ArchPowerPC, codec.ArchX86); c.Supported {
		t.Error("PBIO from ppc should be n/a")
	}
	if c, _ := Find(cells, "PBIO", codec.ArchX86, codec.ArchSparc); !c.Supported {
		t.Error("PBIO x86->sparc should work")
	}
	// GRAS works everywhere.
	for _, from := range codec.Archs {
		for _, to := range codec.Archs {
			if c, _ := Find(cells, "GRAS", from, to); !c.Supported {
				t.Errorf("GRAS %s->%s should work", from.Name, to.Name)
			}
		}
	}
}

func TestPaperShape(t *testing.T) {
	cells, err := Measure(3)
	if err != nil {
		t.Fatal(err)
	}
	// Shape 1: XML is the slowest exchange on every supported pair.
	for _, from := range codec.Archs {
		for _, to := range codec.Archs {
			xml, _ := Find(cells, "XML", from, to)
			gras, _ := Find(cells, "GRAS", from, to)
			if xml.ExchangeTime(LAN) <= gras.ExchangeTime(LAN) {
				t.Errorf("%s->%s: XML (%g) not slower than GRAS (%g) on LAN",
					from.Name, to.Name, xml.ExchangeTime(LAN), gras.ExchangeTime(LAN))
			}
		}
	}
	// Shape 2: XML's wire size is several times GRAS's.
	xml, _ := Find(cells, "XML", codec.ArchX86, codec.ArchX86)
	gras, _ := Find(cells, "GRAS", codec.ArchX86, codec.ArchX86)
	if xml.WireBytes < 2*gras.WireBytes {
		t.Errorf("XML %d B vs GRAS %d B: expected ≥2x inflation",
			xml.WireBytes, gras.WireBytes)
	}
	// Shape 3: WAN exchanges are dominated by the network, so every
	// supported cell takes at least the WAN latency.
	for _, c := range cells {
		if c.Supported && c.ExchangeTime(WAN) < WAN.Latency {
			t.Errorf("%s %s->%s: WAN time below latency", c.Codec, c.From.Name, c.To.Name)
		}
	}
	// Shape 4: PBIO costs more wire bytes than GRAS (self-description).
	pbio, _ := Find(cells, "PBIO", codec.ArchX86, codec.ArchX86)
	if pbio.WireBytes <= gras.WireBytes {
		t.Errorf("PBIO %d B not above GRAS %d B", pbio.WireBytes, gras.WireBytes)
	}
}

func TestExchangeTimeComposition(t *testing.T) {
	c := Cell{Supported: true, Encode: 1e6, Decode: 2e6, WireBytes: 1250}
	n := Net{Bandwidth: 1.25e6, Latency: 0.08}
	got := c.ExchangeTime(n)
	want := 0.001 + 0.002 + 0.08 + 0.001
	if got < want-1e-9 || got > want+1e-9 {
		t.Errorf("ExchangeTime = %g, want %g", got, want)
	}
	unsup := Cell{}
	if unsup.ExchangeTime(n) != 0 {
		t.Error("unsupported cell has nonzero time")
	}
}

func TestTableOutput(t *testing.T) {
	cells, err := Measure(1)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	Table(&buf, cells, LAN)
	out := buf.String()
	for _, want := range []string{"LAN", "GRAS", "MPICH", "OmniORB", "PBIO", "XML", "n/a", "x86", "sparc", "ppc"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2+9 { // title + header + 9 pairs
		t.Errorf("table has %d lines:\n%s", len(lines), out)
	}
}
