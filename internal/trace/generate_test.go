package trace

import (
	"math"
	"testing"
)

func TestGenerateAvailabilityBasics(t *testing.T) {
	tr, err := GenerateAvailability("av", AvailabilityConfig{
		Steps: 100, Interval: 5, Mean: 0.7, Volatility: 0.1, Floor: 0.1, Seed: 42,
	})
	if err != nil {
		t.Fatalf("GenerateAvailability: %v", err)
	}
	if tr.Len() != 100 {
		t.Errorf("len = %d", tr.Len())
	}
	if !tr.Periodic() || tr.Period() != 500 {
		t.Errorf("period = %g, want 500", tr.Period())
	}
	for _, e := range tr.Events() {
		if e.Value < 0.1-1e-12 || e.Value > 1+1e-12 {
			t.Errorf("value %g out of [0.1, 1]", e.Value)
		}
	}
}

func TestGenerateAvailabilityMeanReversion(t *testing.T) {
	tr, err := GenerateAvailability("av", AvailabilityConfig{
		Steps: 2000, Interval: 1, Mean: 0.6, Volatility: 0.05, Floor: 0, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if m := tr.MeanValue(); math.Abs(m-0.6) > 0.1 {
		t.Errorf("mean value %g, want ~0.6", m)
	}
}

func TestGenerateAvailabilityDeterministic(t *testing.T) {
	cfg := AvailabilityConfig{Steps: 50, Interval: 2, Mean: 0.8, Volatility: 0.2, Seed: 3}
	a, _ := GenerateAvailability("a", cfg)
	b, _ := GenerateAvailability("b", cfg)
	ea, eb := a.Events(), b.Events()
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("event %d differs between same-seed runs", i)
		}
	}
}

func TestGenerateAvailabilityValidation(t *testing.T) {
	bad := []AvailabilityConfig{
		{Steps: 0, Interval: 1, Mean: 0.5},
		{Steps: 10, Interval: 0, Mean: 0.5},
		{Steps: 10, Interval: 1, Mean: 0},
		{Steps: 10, Interval: 1, Mean: 1.5},
		{Steps: 10, Interval: 1, Mean: 0.5, Floor: 0.9},
	}
	for i, cfg := range bad {
		if _, err := GenerateAvailability("x", cfg); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

func TestGenerateStateAlternates(t *testing.T) {
	tr, err := GenerateState("st", StateConfig{
		MeanUp: 50, MeanDown: 10, Horizon: 1000, Seed: 11,
	})
	if err != nil {
		t.Fatalf("GenerateState: %v", err)
	}
	ev := tr.Events()
	if len(ev) < 2 {
		t.Fatalf("only %d events", len(ev))
	}
	if ev[0].Value != 1 || ev[0].Time != 0 {
		t.Errorf("trace must start up at t=0: %+v", ev[0])
	}
	for i := 1; i < len(ev); i++ {
		if ev[i].Value == ev[i-1].Value {
			t.Errorf("events %d and %d do not alternate", i-1, i)
		}
	}
	if ev[len(ev)-1].Value != 1 {
		t.Error("trace must end up so periodic wrap keeps the host up")
	}
	if !tr.Periodic() || tr.Period() != 1000 {
		t.Errorf("period = %g", tr.Period())
	}
}

func TestGenerateStateUptimeFraction(t *testing.T) {
	tr, err := GenerateState("st", StateConfig{
		MeanUp: 90, MeanDown: 10, Horizon: 20000, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Expected uptime ~ 90/(90+10) = 0.9.
	if m := tr.MeanValue(); math.Abs(m-0.9) > 0.07 {
		t.Errorf("uptime fraction %g, want ~0.9", m)
	}
}

func TestGenerateStateValidation(t *testing.T) {
	bad := []StateConfig{
		{MeanUp: 0, MeanDown: 1, Horizon: 10},
		{MeanUp: 1, MeanDown: 0, Horizon: 10},
		{MeanUp: 1, MeanDown: 1, Horizon: 0},
	}
	for i, cfg := range bad {
		if _, err := GenerateState("x", cfg); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

func TestMeanValueEdgeCases(t *testing.T) {
	var nilTrace *Trace
	if nilTrace.MeanValue() != 1 {
		t.Error("nil trace mean != 1")
	}
	single := MustNew("s", []Event{{0, 0.5}}, 0)
	if single.MeanValue() != 0.5 {
		t.Errorf("single-event mean = %g", single.MeanValue())
	}
	// Before the first event the value is 1; event at t=10 sets 0.
	half := MustNew("h", []Event{{10, 0}}, 20)
	if m := half.MeanValue(); math.Abs(m-0.5) > 1e-9 {
		t.Errorf("half mean = %g, want 0.5", m)
	}
}
