package trace

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

func TestEmptyTraceIsAlwaysOne(t *testing.T) {
	var tr *Trace
	for _, ts := range []float64{0, 1, 100, 1e9} {
		if got := tr.At(ts); got != 1 {
			t.Errorf("nil trace At(%g) = %g, want 1", ts, got)
		}
	}
	tr2 := MustNew("empty", nil, 0)
	if got := tr2.At(42); got != 1 {
		t.Errorf("empty trace At(42) = %g, want 1", got)
	}
}

func TestAtNonPeriodic(t *testing.T) {
	tr := MustNew("t", []Event{{0, 1}, {10, 0.5}, {20, 0.25}}, 0)
	cases := []struct{ ts, want float64 }{
		{0, 1}, {5, 1}, {9.999, 1},
		{10, 0.5}, {15, 0.5},
		{20, 0.25}, {1e6, 0.25},
	}
	for _, c := range cases {
		if got := tr.At(c.ts); !almostEq(got, c.want) {
			t.Errorf("At(%g) = %g, want %g", c.ts, got, c.want)
		}
	}
}

func TestAtBeforeFirstEventIsOne(t *testing.T) {
	tr := MustNew("t", []Event{{5, 0.3}}, 0)
	if got := tr.At(2); got != 1 {
		t.Errorf("At(2) = %g, want 1 before first event", got)
	}
}

func TestAtPeriodic(t *testing.T) {
	tr := MustNew("t", []Event{{0, 1}, {6, 0.5}}, 12)
	cases := []struct{ ts, want float64 }{
		{0, 1}, {5, 1}, {6, 0.5}, {11.9, 0.5},
		{12, 1}, {17, 1}, {18, 0.5}, {23.5, 0.5},
		{1200, 1}, {1206, 0.5},
	}
	for _, c := range cases {
		if got := tr.At(c.ts); !almostEq(got, c.want) {
			t.Errorf("At(%g) = %g, want %g", c.ts, got, c.want)
		}
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New("bad", []Event{{-1, 1}}, 0); err == nil {
		t.Error("negative timestamp accepted")
	}
	if _, err := New("bad", []Event{{0, 1}, {0, 0.5}}, 0); err == nil {
		t.Error("duplicate timestamps accepted")
	}
	if _, err := New("bad", []Event{{5, 1}, {3, 0.5}}, 0); err == nil {
		t.Error("decreasing timestamps accepted")
	}
	if _, err := New("bad", []Event{{5, 1}}, 3); err == nil {
		t.Error("period shorter than last event accepted")
	}
	if _, err := New("bad", nil, -1); err == nil {
		t.Error("negative period accepted")
	}
}

func TestParse(t *testing.T) {
	src := `
# availability of host A
PERIODICITY 24
0.0  1.0
8.0  0.5

12.0 0.75
`
	tr, err := ParseString("a", src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if !tr.Periodic() || tr.Period() != 24 {
		t.Errorf("period = %g periodic=%v, want 24 true", tr.Period(), tr.Periodic())
	}
	if tr.Len() != 3 {
		t.Fatalf("len = %d, want 3", tr.Len())
	}
	if got := tr.At(9); !almostEq(got, 0.5) {
		t.Errorf("At(9) = %g, want 0.5", got)
	}
	if got := tr.At(24 + 13); !almostEq(got, 0.75) {
		t.Errorf("At(37) = %g, want 0.75", got)
	}
}

func TestParseLoopAfterAlias(t *testing.T) {
	tr, err := ParseString("a", "LOOPAFTER 10\n0 1\n5 0\n")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if tr.Period() != 10 {
		t.Errorf("period = %g, want 10", tr.Period())
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"PERIODICITY\n",
		"PERIODICITY a b\n",
		"0.0\n",
		"x 1.0\n",
		"0.0 y\n",
		"1 2 3\n",
	}
	for _, src := range bad {
		if _, err := ParseString("bad", src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestIteratorNonPeriodic(t *testing.T) {
	tr := MustNew("t", []Event{{1, 0.9}, {2, 0.8}, {3, 0.7}}, 0)
	it := tr.Iter(0)
	var got []float64
	for {
		ts, _, ok := it.Next()
		if !ok {
			break
		}
		got = append(got, ts)
	}
	want := []float64{1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if !almostEq(got[i], want[i]) {
			t.Errorf("event %d at %g, want %g", i, got[i], want[i])
		}
	}
}

func TestIteratorFromSkipsPast(t *testing.T) {
	tr := MustNew("t", []Event{{1, 0.9}, {2, 0.8}, {3, 0.7}}, 0)
	it := tr.Iter(2.5)
	ts, v, ok := it.Next()
	if !ok || !almostEq(ts, 3) || !almostEq(v, 0.7) {
		t.Errorf("Next = (%g,%g,%v), want (3,0.7,true)", ts, v, ok)
	}
	if _, _, ok := it.Next(); ok {
		t.Error("iterator should be exhausted")
	}
}

func TestIteratorPeriodicUnrolls(t *testing.T) {
	tr := MustNew("t", []Event{{0, 1}, {4, 0.5}}, 8)
	it := tr.Iter(0)
	want := []float64{0, 4, 8, 12, 16, 20}
	for i, w := range want {
		ts, _, ok := it.Next()
		if !ok {
			t.Fatalf("event %d: iterator exhausted", i)
		}
		if !almostEq(ts, w) {
			t.Errorf("event %d at %g, want %g", i, ts, w)
		}
	}
}

func TestIteratorPeriodicFromMidCycle(t *testing.T) {
	tr := MustNew("t", []Event{{0, 1}, {4, 0.5}}, 8)
	it := tr.Iter(13)
	ts, v, ok := it.Next()
	if !ok || !almostEq(ts, 16) || v != 1 {
		t.Errorf("Next = (%g,%g,%v), want (16,1,true)", ts, v, ok)
	}
}

func TestIteratorPeek(t *testing.T) {
	tr := MustNew("t", []Event{{2, 0.5}}, 0)
	it := tr.Iter(0)
	ts1, v1, ok1 := it.Peek()
	ts2, v2, ok2 := it.Peek()
	if ts1 != ts2 || v1 != v2 || ok1 != ok2 {
		t.Error("Peek is not idempotent")
	}
	if !ok1 || ts1 != 2 || v1 != 0.5 {
		t.Errorf("Peek = (%g,%g,%v), want (2,0.5,true)", ts1, v1, ok1)
	}
}

func TestEventsReturnsCopy(t *testing.T) {
	tr := MustNew("t", []Event{{1, 0.5}}, 0)
	ev := tr.Events()
	ev[0].Value = 99
	if tr.At(1) != 0.5 {
		t.Error("Events() exposed internal state")
	}
}

// Property: iterator events are non-decreasing in time and At(ts) at an
// event time equals the event value.
func TestIteratorMatchesAtProperty(t *testing.T) {
	f := func(rawTimes []uint16, rawVals []uint8, periodic bool) bool {
		n := len(rawTimes)
		if len(rawVals) < n {
			n = len(rawVals)
		}
		if n == 0 {
			return true
		}
		seen := map[float64]bool{}
		var events []Event
		for i := 0; i < n; i++ {
			ts := float64(rawTimes[i]%1000) / 4
			if seen[ts] {
				continue
			}
			seen[ts] = true
			events = append(events, Event{Time: ts, Value: float64(rawVals[i]%100) / 100})
		}
		if len(events) == 0 {
			return true
		}
		sortEvents(events)
		period := 0.0
		if periodic {
			period = events[len(events)-1].Time + 1
		}
		tr, err := New("p", events, period)
		if err != nil {
			return false
		}
		it := tr.Iter(0)
		prev := -1.0
		for i := 0; i < 50; i++ {
			ts, v, ok := it.Next()
			if !ok {
				return !periodic
			}
			if ts < prev {
				return false
			}
			prev = ts
			if !almostEq(tr.At(ts), v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func sortEvents(ev []Event) {
	for i := 1; i < len(ev); i++ {
		for j := i; j > 0 && ev[j].Time < ev[j-1].Time; j-- {
			ev[j], ev[j-1] = ev[j-1], ev[j]
		}
	}
}

func TestParseReaderError(t *testing.T) {
	// A line longer than the scanner default buffer should error, not hang.
	long := strings.Repeat("x", 1024*1024)
	if _, err := ParseString("big", long); err == nil {
		t.Skip("scanner accepted long line (buffer grew); acceptable")
	}
}
