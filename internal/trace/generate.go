// Synthetic trace generation, for studying applications on volatile
// platforms (the paper's "peer-to-peer file-sharing application running
// on volatile Internet hosts") when no measured traces are at hand:
// random-walk availability traces and exponential up/down state traces.

package trace

import (
	"fmt"
	"math"
	"math/rand"
)

// AvailabilityConfig parameterizes a random-walk availability trace.
type AvailabilityConfig struct {
	// Steps is the number of trace points.
	Steps int
	// Interval is the time between points, in seconds.
	Interval float64
	// Mean is the long-run availability level in (0, 1].
	Mean float64
	// Volatility is the step standard deviation of the walk.
	Volatility float64
	// Floor clamps availability from below (a loaded host still makes
	// some progress); values are clamped to [Floor, 1].
	Floor float64
	Seed  int64
}

// GenerateAvailability builds a periodic random-walk availability
// trace: each point nudges the previous one by a Gaussian step with a
// pull back towards the configured mean (an Ornstein–Uhlenbeck walk),
// clamped to [Floor, 1].
func GenerateAvailability(name string, cfg AvailabilityConfig) (*Trace, error) {
	if cfg.Steps <= 0 {
		return nil, fmt.Errorf("trace: availability needs steps")
	}
	if cfg.Interval <= 0 {
		return nil, fmt.Errorf("trace: availability needs a positive interval")
	}
	if cfg.Mean <= 0 || cfg.Mean > 1 {
		return nil, fmt.Errorf("trace: mean availability %g out of (0,1]", cfg.Mean)
	}
	if cfg.Floor < 0 || cfg.Floor > cfg.Mean {
		return nil, fmt.Errorf("trace: floor %g out of [0, mean]", cfg.Floor)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	events := make([]Event, cfg.Steps)
	v := cfg.Mean
	const pull = 0.3 // mean-reversion strength per step
	for i := 0; i < cfg.Steps; i++ {
		events[i] = Event{Time: float64(i) * cfg.Interval, Value: v}
		v += pull*(cfg.Mean-v) + rng.NormFloat64()*cfg.Volatility
		v = math.Min(1, math.Max(cfg.Floor, v))
	}
	period := float64(cfg.Steps) * cfg.Interval
	return New(name, events, period)
}

// StateConfig parameterizes an up/down failure trace.
type StateConfig struct {
	// MeanUp and MeanDown are the mean durations of up and down phases
	// (exponentially distributed), in seconds.
	MeanUp, MeanDown float64
	// Horizon is the trace length; the trace repeats with this period.
	Horizon float64
	Seed    int64
}

// GenerateState builds a periodic state (failure) trace alternating up
// (1) and down (0) phases with exponential durations — the classic
// Poisson failure/repair process used for volatile Internet hosts.
func GenerateState(name string, cfg StateConfig) (*Trace, error) {
	if cfg.MeanUp <= 0 || cfg.MeanDown <= 0 {
		return nil, fmt.Errorf("trace: state needs positive mean durations")
	}
	if cfg.Horizon <= 0 {
		return nil, fmt.Errorf("trace: state needs a positive horizon")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	var events []Event
	t, up := 0.0, true
	events = append(events, Event{Time: 0, Value: 1})
	for {
		mean := cfg.MeanUp
		if !up {
			mean = cfg.MeanDown
		}
		t += rng.ExpFloat64() * mean
		if t >= cfg.Horizon {
			break
		}
		up = !up
		v := 0.0
		if up {
			v = 1
		}
		events = append(events, Event{Time: t, Value: v})
	}
	// Guarantee the host is up when the trace wraps around, so a
	// periodic repetition never glues two down phases together.
	if len(events) > 0 && events[len(events)-1].Value == 0 {
		last := events[len(events)-1].Time
		wake := last + (cfg.Horizon-last)/2
		events = append(events, Event{Time: wake, Value: 1})
	}
	return New(name, events, cfg.Horizon)
}

// MeanValue returns the time-weighted mean of the trace over one period
// (or over the events' span for non-periodic traces) — handy to check
// generated traces against their configured mean.
func (t *Trace) MeanValue() float64 {
	if t == nil || len(t.events) == 0 {
		return 1
	}
	end := t.period
	if end == 0 {
		end = t.events[len(t.events)-1].Time
		if end == 0 {
			return t.events[0].Value
		}
	}
	sum := 0.0
	covered := 0.0
	for i, e := range t.events {
		next := end
		if i+1 < len(t.events) {
			next = t.events[i+1].Time
		}
		if next > e.Time {
			sum += e.Value * (next - e.Time)
			covered += next - e.Time
		}
	}
	// Time before the first event has value 1.
	if first := t.events[0].Time; first > 0 {
		sum += first
		covered += first
	}
	if covered == 0 {
		return t.events[0].Value
	}
	return sum / covered
}
