// Package trace implements time-stamped value traces used to drive
// resource availability variations and transient failures during a
// simulation, mirroring SimGrid's trace files.
//
// A trace is an ordered list of (timestamp, value) events. For an
// availability trace the value is a scaling factor in [0, 1] applied to a
// resource capacity (CPU power or link bandwidth). For a state (failure)
// trace the value is 1 (resource up) or 0 (resource down).
//
// Traces may be periodic: after the last event the sequence restarts,
// shifted by the declared period. A non-periodic trace holds its last
// value forever.
//
// Key invariant: a trace is immutable once parsed, and Iter unrolls
// periodic repetitions lazily — consumers (surf's one-timer-per-trace
// driver) pull events one at a time, so an infinite periodic trace
// costs O(1) memory for the whole run.
package trace

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Event is a single trace point: at time Time the traced quantity takes
// value Value and keeps it until the next event.
type Event struct {
	Time  float64
	Value float64
}

// Trace is an immutable sequence of events, optionally periodic.
// The zero value is an empty trace whose value is 1 at all times
// (i.e. "always fully available").
type Trace struct {
	events []Event
	period float64 // 0 means non-periodic
	name   string
}

// ErrBadTrace reports a malformed trace description.
var ErrBadTrace = errors.New("trace: malformed trace")

// New builds a trace from events. Events must be sorted by strictly
// increasing time and have non-negative timestamps. If period > 0 the
// trace repeats with that period; the period must be at least the last
// event timestamp.
func New(name string, events []Event, period float64) (*Trace, error) {
	for i, e := range events {
		if e.Time < 0 {
			return nil, fmt.Errorf("%w: negative timestamp %g", ErrBadTrace, e.Time)
		}
		if i > 0 && e.Time <= events[i-1].Time {
			return nil, fmt.Errorf("%w: timestamps not strictly increasing at index %d", ErrBadTrace, i)
		}
	}
	if period < 0 {
		return nil, fmt.Errorf("%w: negative period %g", ErrBadTrace, period)
	}
	if period > 0 && len(events) > 0 && events[len(events)-1].Time > period {
		return nil, fmt.Errorf("%w: period %g shorter than last event %g", ErrBadTrace, period, events[len(events)-1].Time)
	}
	ev := make([]Event, len(events))
	copy(ev, events)
	return &Trace{events: ev, period: period, name: name}, nil
}

// MustNew is New but panics on error; it is meant for static tables in
// tests and examples.
func MustNew(name string, events []Event, period float64) *Trace {
	t, err := New(name, events, period)
	if err != nil {
		panic(err)
	}
	return t
}

// Parse reads the SimGrid-like textual trace format:
//
//	# comment
//	PERIODICITY 12.0
//	0.0  1.0
//	11.0 0.5
//
// Lines are "timestamp value" pairs; an optional PERIODICITY (or
// LOOPAFTER) directive makes the trace periodic.
func Parse(name string, r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	var events []Event
	period := 0.0
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch strings.ToUpper(fields[0]) {
		case "PERIODICITY", "LOOPAFTER":
			if len(fields) != 2 {
				return nil, fmt.Errorf("%w: line %d: PERIODICITY needs one argument", ErrBadTrace, lineno)
			}
			p, err := strconv.ParseFloat(fields[1], 64)
			if err != nil {
				return nil, fmt.Errorf("%w: line %d: %v", ErrBadTrace, lineno, err)
			}
			period = p
		default:
			if len(fields) != 2 {
				return nil, fmt.Errorf("%w: line %d: want 'time value'", ErrBadTrace, lineno)
			}
			ts, err := strconv.ParseFloat(fields[0], 64)
			if err != nil {
				return nil, fmt.Errorf("%w: line %d: %v", ErrBadTrace, lineno, err)
			}
			v, err := strconv.ParseFloat(fields[1], 64)
			if err != nil {
				return nil, fmt.Errorf("%w: line %d: %v", ErrBadTrace, lineno, err)
			}
			events = append(events, Event{Time: ts, Value: v})
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return New(name, events, period)
}

// ParseString is Parse over an in-memory string.
func ParseString(name, s string) (*Trace, error) {
	return Parse(name, strings.NewReader(s))
}

// Name returns the trace name.
func (t *Trace) Name() string {
	if t == nil {
		return ""
	}
	return t.name
}

// Len returns the number of events in one period of the trace.
func (t *Trace) Len() int {
	if t == nil {
		return 0
	}
	return len(t.events)
}

// Periodic reports whether the trace repeats.
func (t *Trace) Periodic() bool { return t != nil && t.period > 0 }

// Period returns the repeat period, or 0 for non-periodic traces.
func (t *Trace) Period() float64 {
	if t == nil {
		return 0
	}
	return t.period
}

// Events returns a copy of the trace events.
func (t *Trace) Events() []Event {
	if t == nil {
		return nil
	}
	out := make([]Event, len(t.events))
	copy(out, t.events)
	return out
}

// At returns the trace value at absolute time ts. Before the first event
// the value is 1 (fully available / up).
func (t *Trace) At(ts float64) float64 {
	if t == nil || len(t.events) == 0 {
		return 1
	}
	if t.period > 0 && ts >= 0 {
		cycles := int(ts / t.period)
		ts -= float64(cycles) * t.period
	}
	// Find the last event with Time <= ts.
	i := sort.Search(len(t.events), func(i int) bool { return t.events[i].Time > ts })
	if i == 0 {
		return 1
	}
	return t.events[i-1].Value
}

// Iterator walks the events of a trace over absolute simulated time,
// transparently unrolling periodic traces. Next returns events in
// non-decreasing time order, forever for periodic traces.
type Iterator struct {
	t      *Trace
	idx    int
	offset float64
}

// Iter returns an iterator positioned at the first event at or after
// time `from`.
func (t *Trace) Iter(from float64) *Iterator {
	it := &Iterator{t: t}
	if t == nil || len(t.events) == 0 {
		it.idx = -1
		return it
	}
	if t.period > 0 && from > 0 {
		cycles := int(from / t.period)
		it.offset = float64(cycles) * t.period
	}
	for {
		if it.idx >= len(t.events) {
			if t.period == 0 {
				it.idx = -1
				return it
			}
			it.idx = 0
			it.offset += t.period
		}
		if it.idx == -1 || it.offset+t.events[it.idx].Time >= from {
			return it
		}
		it.idx++
	}
}

// Peek returns the absolute time and value of the next event without
// consuming it. ok is false when the trace is exhausted.
func (it *Iterator) Peek() (ts, v float64, ok bool) {
	if it.idx < 0 || it.t == nil || len(it.t.events) == 0 {
		return 0, 0, false
	}
	e := it.t.events[it.idx]
	return it.offset + e.Time, e.Value, true
}

// Next consumes and returns the next event. ok is false when the trace
// is exhausted (only possible for non-periodic traces).
func (it *Iterator) Next() (ts, v float64, ok bool) {
	ts, v, ok = it.Peek()
	if !ok {
		return
	}
	it.idx++
	if it.idx >= len(it.t.events) {
		if it.t.period > 0 {
			it.idx = 0
			it.offset += it.t.period
		} else {
			it.idx = -1
		}
	}
	return
}
