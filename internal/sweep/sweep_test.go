package sweep

import (
	"bytes"
	"strings"
	"testing"
)

// TestSweepDeterminism is the campaign contract: the report's bytes are
// a pure function of (grid, seed) — identical across repeats and across
// fanout settings. The CI lanes repeat this through the cmd/sweep
// binary 5× in both pooling modes; this in-process version catches
// regressions at `go test` speed.
func TestSweepDeterminism(t *testing.T) {
	spec := Baseline()
	ref, err := Execute(spec, 1, Options{Fanout: 1})
	if err != nil {
		t.Fatal(err)
	}
	refBytes, err := Marshal(ref)
	if err != nil {
		t.Fatal(err)
	}
	for rep := 0; rep < 2; rep++ {
		again, err := Execute(Baseline(), 1, Options{Fanout: 1})
		if err != nil {
			t.Fatal(err)
		}
		b, err := Marshal(again)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(refBytes, b) {
			t.Fatalf("repeat %d: report bytes differ", rep)
		}
	}
	wide, err := Execute(Baseline(), 1, Options{Fanout: 4})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Marshal(wide)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(refBytes, b) {
		t.Fatal("fanout 4 report differs from fanout 1")
	}
}

// TestSweepSeedStability: a run's seed derives from its key, not its
// grid position — growing an axis must not shift sibling runs' results.
func TestSweepSeedStability(t *testing.T) {
	small := Baseline()
	ref, err := Execute(small, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	grown := Baseline()
	grown.Seeds = append(grown.Seeds, 99)
	grown.Schedulers = append(grown.Schedulers, "rr")
	big, err := Execute(grown, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	byKey := make(map[string]*RunStat, len(big.Runs))
	for i := range big.Runs {
		byKey[big.Runs[i].Key] = &big.Runs[i]
	}
	for i := range ref.Runs {
		r := &ref.Runs[i]
		g, ok := byKey[r.Key]
		if !ok {
			t.Fatalf("run %s missing from grown grid", r.Key)
		}
		if g.RunSeed != r.RunSeed {
			t.Fatalf("run %s: seed shifted %d → %d", r.Key, r.RunSeed, g.RunSeed)
		}
		a, err := Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Marshal(g)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("run %s: stats changed when the grid grew", r.Key)
		}
	}
}

// TestExpandGrid checks the expansion shape: full cartesian product,
// unique keys, grid order.
func TestExpandGrid(t *testing.T) {
	spec := Default()
	runs, err := Expand(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := len(spec.Platforms) * len(spec.Workloads) * len(spec.Schedulers) * len(spec.Seeds)
	if len(runs) != want {
		t.Fatalf("expanded %d runs, want %d", len(runs), want)
	}
	if want < 24 {
		t.Fatalf("default campaign has %d points, the gate needs ≥24", want)
	}
	seen := make(map[string]bool, len(runs))
	for i, r := range runs {
		if r.Index != i {
			t.Fatalf("run %d carries index %d", i, r.Index)
		}
		if seen[r.Key] {
			t.Fatalf("duplicate key %s", r.Key)
		}
		seen[r.Key] = true
	}
}

// TestSpecValidate rejects malformed grids.
func TestSpecValidate(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Spec)
		want string
	}{
		{"empty name", func(s *Spec) { s.Name = "" }, "needs a name"},
		{"no platforms", func(s *Spec) { s.Platforms = nil }, "at least one entry"},
		{"no seeds", func(s *Spec) { s.Seeds = nil }, "at least one entry"},
		{"bad scheduler", func(s *Spec) { s.Schedulers = []string{"magic"} }, "unknown scheduler"},
		{"dup platform", func(s *Spec) {
			s.Platforms = append(s.Platforms, s.Platforms[0])
		}, "duplicate platform"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spec := Baseline()
			tc.mut(spec)
			err := spec.Validate()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want substring %q", err, tc.want)
			}
		})
	}
}

// TestFaultyCampaign: the fault axis injects, the reschedule policy
// recovers, and the whole thing stays deterministic.
func TestFaultyCampaign(t *testing.T) {
	rep, err := Execute(Faulty(), 1, Options{Fanout: 2})
	if err != nil {
		t.Fatal(err)
	}
	injected, rescheduled := 0, uint64(0)
	for i := range rep.Runs {
		r := &rep.Runs[i]
		if r.Faults == "none" {
			if r.FaultEvents != 0 {
				t.Fatalf("run %s: fault-free run saw %d events", r.Key, r.FaultEvents)
			}
			continue
		}
		injected += r.FaultEvents
		rescheduled += r.Reschedules
		if r.Done+r.Failed != r.Tasks {
			t.Fatalf("run %s: %d done + %d failed ≠ %d tasks", r.Key, r.Done, r.Failed, r.Tasks)
		}
	}
	if injected == 0 {
		t.Fatal("fault axis injected nothing")
	}
	if rescheduled == 0 {
		t.Fatal("no run rescheduled; the policy wiring is dead")
	}
	again, err := Execute(Faulty(), 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	a, _ := Marshal(rep)
	b, _ := Marshal(again)
	if !bytes.Equal(a, b) {
		t.Fatal("faulty campaign is not deterministic")
	}
}

// TestPerfSubtree: -perf attaches wall-clock stats without touching the
// deterministic part, and is refused at fanout > 1.
func TestPerfSubtree(t *testing.T) {
	spec := Baseline()
	spec.Platforms = spec.Platforms[:1]
	spec.Seeds = spec.Seeds[:1]
	perf, err := Execute(spec, 1, Options{Fanout: 1, Perf: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := range perf.Runs {
		if perf.Runs[i].Perf == nil {
			t.Fatalf("run %s: perf requested but absent", perf.Runs[i].Key)
		}
		if perf.Runs[i].Perf.WallUs <= 0 {
			t.Fatalf("run %s: non-positive wall time", perf.Runs[i].Key)
		}
		perf.Runs[i].Perf = nil
	}
	plain, err := Execute(spec, 1, Options{Fanout: 1})
	if err != nil {
		t.Fatal(err)
	}
	a, _ := Marshal(perf)
	b, _ := Marshal(plain)
	if !bytes.Equal(a, b) {
		t.Fatal("stripping the perf subtree does not recover the deterministic report")
	}
	wide, err := Execute(spec, 1, Options{Fanout: 4, Perf: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := range wide.Runs {
		if wide.Runs[i].Perf != nil {
			t.Fatal("perf stats attached at fanout > 1")
		}
	}
}

// TestCheckSchema: value drift passes, structural drift fails.
func TestCheckSchema(t *testing.T) {
	ref := []byte(`{"schema_version":1,"runs":[{"makespan":1.5,"scheduler":"minmin","ok":true}],"n":2}`)
	cases := []struct {
		name string
		got  string
		ok   bool
	}{
		{"identical", `{"schema_version":1,"runs":[{"makespan":1.5,"scheduler":"minmin","ok":true}],"n":2}`, true},
		{"number drift", `{"schema_version":1,"runs":[{"makespan":9.9,"scheduler":"minmin","ok":true}],"n":7}`, true},
		{"missing key", `{"schema_version":1,"runs":[{"scheduler":"minmin","ok":true}],"n":2}`, false},
		{"new key", `{"schema_version":1,"runs":[{"makespan":1.5,"scheduler":"minmin","ok":true,"x":1}],"n":2}`, false},
		{"type change", `{"schema_version":1,"runs":[{"makespan":"1.5","scheduler":"minmin","ok":true}],"n":2}`, false},
		{"string drift", `{"schema_version":1,"runs":[{"makespan":1.5,"scheduler":"magic","ok":true}],"n":2}`, false},
		{"bool drift", `{"schema_version":1,"runs":[{"makespan":1.5,"scheduler":"minmin","ok":false}],"n":2}`, false},
		{"array length", `{"schema_version":1,"runs":[],"n":2}`, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := CheckSchema([]byte(tc.got), ref)
			if (err == nil) != tc.ok {
				t.Fatalf("CheckSchema = %v, want ok=%v", err, tc.ok)
			}
		})
	}
}
