// Campaign specification: the declarative grid. Each axis entry is a
// named, self-contained recipe (platform shape, workload shape, solver
// knobs, fault process); the cartesian product of the axes is the run
// list. Specs load from JSON (cmd/sweep -spec) or are built in code
// (the bundled campaigns, tests).

package sweep

import (
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/faults"
	"repro/internal/platform"
	"repro/internal/simdag"
	"repro/internal/surf"
)

// PlatformSpec names one platform recipe.
type PlatformSpec struct {
	Name string `json:"name"`
	// Kind selects the builder: "cluster", "dumbbell", "multisite", or
	// "waxman".
	Kind string `json:"kind"`
	// Hosts is the host count (per side for dumbbell, per site for
	// multisite, node count for waxman).
	Hosts int `json:"hosts"`
	// Sites is the cluster count for multisite (default 2).
	Sites int `json:"sites,omitempty"`
	// Power, Bandwidth, Latency parameterize the hosts and edge links;
	// zero takes the defaults (1e9 flop/s, 1.25e8 B/s, 1e-4 s).
	Power     float64 `json:"power,omitempty"`
	Bandwidth float64 `json:"bandwidth,omitempty"`
	Latency   float64 `json:"latency,omitempty"`
	// Backbone inserts a shared cluster backbone of that bandwidth.
	Backbone float64 `json:"backbone,omitempty"`
	// Seed fixes the waxman topology draw. It is a platform property,
	// not a run seed: the same spec always builds the same platform.
	Seed int64 `json:"seed,omitempty"`
}

func (p *PlatformSpec) defaults() (power, bw, lat float64) {
	power, bw, lat = p.Power, p.Bandwidth, p.Latency
	if power <= 0 {
		power = 1e9
	}
	if bw <= 0 {
		bw = 1.25e8
	}
	if lat <= 0 {
		lat = 1e-4
	}
	return power, bw, lat
}

// Build constructs the platform and returns it with its scheduling
// host pool (deterministic order).
func (p *PlatformSpec) Build() (*platform.Platform, []string, error) {
	power, bw, lat := p.defaults()
	switch p.Kind {
	case "cluster":
		pf, hosts, err := platform.NewCluster(platform.ClusterConfig{
			Prefix: p.Name, Hosts: p.Hosts, Power: power,
			Bandwidth: bw, Latency: lat, Backbone: p.Backbone,
		})
		return pf, hosts, err
	case "dumbbell":
		pf, left, right, err := platform.NewDumbbell(platform.DumbbellConfig{
			LeftHosts: p.Hosts, RightHosts: p.Hosts, Power: power,
			EdgeBandwidth: bw, EdgeLatency: lat,
			BottleneckBandwidth: bw / 2, BottleneckLatency: lat,
		})
		return pf, append(left, right...), err
	case "multisite":
		sites := p.Sites
		if sites < 2 {
			sites = 2
		}
		cfg := platform.MultiSiteConfig{WANBandwidth: 4 * bw, WANLatency: 100 * lat}
		for i := 0; i < sites; i++ {
			cfg.Sites = append(cfg.Sites, platform.ClusterConfig{
				Prefix: fmt.Sprintf("%s-s%d-", p.Name, i), Hosts: p.Hosts,
				Power: power, Bandwidth: bw, Latency: lat,
			})
		}
		pf, bySite, err := platform.NewMultiSite(cfg)
		if err != nil {
			return nil, nil, err
		}
		var hosts []string
		for _, site := range bySite {
			hosts = append(hosts, site...)
		}
		return pf, hosts, nil
	case "waxman":
		pf, err := platform.GenerateWaxman(platform.DefaultWaxmanConfig(p.Hosts, p.Seed))
		if err != nil {
			return nil, nil, err
		}
		var hosts []string
		for _, h := range pf.Hosts() {
			hosts = append(hosts, h.Name)
		}
		return pf, hosts, nil
	default:
		return nil, nil, fmt.Errorf("sweep: platform %q: unknown kind %q", p.Name, p.Kind)
	}
}

// WorkloadSpec names one DAG recipe.
type WorkloadSpec struct {
	Name string `json:"name"`
	// Kind selects the generator: "layered" (simdag.RandomLayered,
	// seeded per run) or "dax" (load Path).
	Kind      string  `json:"kind"`
	Layers    int     `json:"layers,omitempty"`
	Width     int     `json:"width,omitempty"`
	ExtraDeps float64 `json:"extra_deps,omitempty"`
	CommProb  float64 `json:"comm_prob,omitempty"`
	MinFlops  float64 `json:"min_flops,omitempty"`
	MaxFlops  float64 `json:"max_flops,omitempty"`
	MinBytes  float64 `json:"min_bytes,omitempty"`
	MaxBytes  float64 `json:"max_bytes,omitempty"`
	// PtaskProb/PtaskSlots draw parallel tasks into the layers (see
	// simdag.RandomConfig).
	PtaskProb  float64 `json:"ptask_prob,omitempty"`
	PtaskSlots int     `json:"ptask_slots,omitempty"`
	Path       string  `json:"path,omitempty"` // dax file
}

// Build populates the simulation with the workload. Layered workloads
// draw from runSeed, so the DAG is part of the run's seeded identity.
func (w *WorkloadSpec) Build(s *simdag.Simulation, runSeed int64) error {
	switch w.Kind {
	case "layered":
		cfg := simdag.DefaultRandomConfig(w.Layers, w.Width, runSeed)
		if w.ExtraDeps > 0 {
			cfg.ExtraDeps = w.ExtraDeps
		}
		if w.CommProb > 0 {
			cfg.CommProb = w.CommProb
		}
		if w.MaxFlops > 0 {
			cfg.MinFlops, cfg.MaxFlops = w.MinFlops, w.MaxFlops
		}
		if w.MaxBytes > 0 {
			cfg.MinBytes, cfg.MaxBytes = w.MinBytes, w.MaxBytes
		}
		cfg.PtaskProb = w.PtaskProb
		cfg.PtaskSlots = w.PtaskSlots
		_, err := simdag.RandomLayered(s, cfg)
		return err
	case "dax":
		f, err := os.Open(w.Path)
		if err != nil {
			return err
		}
		defer f.Close()
		_, err = simdag.LoadDAX(s, f)
		return err
	default:
		return fmt.Errorf("sweep: workload %q: unknown kind %q", w.Name, w.Kind)
	}
}

// SolverSpec names one surf configuration.
type SolverSpec struct {
	Name string `json:"name"`
	// Workers overrides Config.SolverWorkers (0 keeps the default).
	Workers int `json:"workers,omitempty"`
	// Sequential sets Config.SequentialCompletions.
	Sequential bool `json:"sequential,omitempty"`
	// NoRTTWeight disables Config.WeightByRTT.
	NoRTTWeight bool `json:"no_rtt_weight,omitempty"`
}

// Config materializes the surf configuration.
func (sv *SolverSpec) Config() surf.Config {
	cfg := surf.DefaultConfig()
	if sv.Workers > 0 {
		cfg.SolverWorkers = sv.Workers
	}
	cfg.SequentialCompletions = sv.Sequential
	if sv.NoRTTWeight {
		cfg.WeightByRTT = false
	}
	return cfg
}

// FaultSpec names one failure process, applied to the platform's hosts.
// A zero MTBF means no faults (the "none" axis entry).
type FaultSpec struct {
	Name string  `json:"name"`
	MTBF float64 `json:"mtbf,omitempty"`
	MTTR float64 `json:"mttr,omitempty"`
	// Dist is "exp" (default) or "weibull" with Shape.
	Dist  string  `json:"dist,omitempty"`
	Shape float64 `json:"shape,omitempty"`
	// Horizon bounds the failure process (default 1e4 s).
	Horizon float64 `json:"horizon,omitempty"`
	// Hosts limits injection to the first N pool hosts (0 = all).
	Hosts int `json:"hosts,omitempty"`
}

// Active reports whether this entry injects anything.
func (f *FaultSpec) Active() bool { return f.MTBF > 0 }

// Params expands the spec against a concrete host pool.
func (f *FaultSpec) Params(hosts []string) (faults.Params, error) {
	dist := faults.Exponential
	switch f.Dist {
	case "", "exp":
	case "weibull":
		dist = faults.Weibull
	default:
		return faults.Params{}, fmt.Errorf("sweep: faults %q: unknown dist %q", f.Name, f.Dist)
	}
	target := hosts
	if f.Hosts > 0 && f.Hosts < len(hosts) {
		target = hosts[:f.Hosts]
	}
	horizon := f.Horizon
	if horizon <= 0 {
		horizon = 1e4
	}
	mttr := f.MTTR
	if mttr <= 0 {
		mttr = f.MTBF / 10
	}
	return faults.Params{
		Horizon: horizon,
		Classes: []faults.Class{{
			Name: f.Name, Hosts: target,
			MTBF: f.MTBF, MTTR: mttr, Dist: dist, Shape: f.Shape,
		}},
	}, nil
}

// Spec is a complete campaign description. Axes left empty take a
// single neutral entry (default solver, no faults) so minimal specs
// stay small.
type Spec struct {
	Name       string         `json:"name"`
	Platforms  []PlatformSpec `json:"platforms"`
	Workloads  []WorkloadSpec `json:"workloads"`
	Schedulers []string       `json:"schedulers"`
	Solvers    []SolverSpec   `json:"solvers,omitempty"`
	Faults     []FaultSpec    `json:"faults,omitempty"`
	Seeds      []int64        `json:"seeds"`
}

// Load reads a Spec from a JSON file and validates it.
func Load(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var sp Spec
	if err := json.Unmarshal(data, &sp); err != nil {
		return nil, fmt.Errorf("sweep: %s: %w", path, err)
	}
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	return &sp, nil
}

// Validate checks the grid is well-formed: every axis non-empty (after
// defaulting), every name unique within its axis, every scheduler
// known.
func (sp *Spec) Validate() error {
	if sp.Name == "" {
		return fmt.Errorf("sweep: campaign needs a name")
	}
	if len(sp.Platforms) == 0 || len(sp.Workloads) == 0 ||
		len(sp.Schedulers) == 0 || len(sp.Seeds) == 0 {
		return fmt.Errorf("sweep: campaign %q: platforms, workloads, schedulers and seeds must each have at least one entry", sp.Name)
	}
	if len(sp.Solvers) == 0 {
		sp.Solvers = []SolverSpec{{Name: "default"}}
	}
	if len(sp.Faults) == 0 {
		sp.Faults = []FaultSpec{{Name: "none"}}
	}
	seen := make(map[string]bool)
	unique := func(axis, name string) error {
		if name == "" {
			return fmt.Errorf("sweep: campaign %q: unnamed %s entry", sp.Name, axis)
		}
		k := axis + ":" + name
		if seen[k] {
			return fmt.Errorf("sweep: campaign %q: duplicate %s %q", sp.Name, axis, name)
		}
		seen[k] = true
		return nil
	}
	for i := range sp.Platforms {
		if err := unique("platform", sp.Platforms[i].Name); err != nil {
			return err
		}
	}
	for i := range sp.Workloads {
		if err := unique("workload", sp.Workloads[i].Name); err != nil {
			return err
		}
	}
	for i := range sp.Solvers {
		if err := unique("solver", sp.Solvers[i].Name); err != nil {
			return err
		}
	}
	for i := range sp.Faults {
		if err := unique("faults", sp.Faults[i].Name); err != nil {
			return err
		}
	}
	for _, s := range sp.Schedulers {
		switch s {
		case "minmin", "rr", "heft":
		default:
			return fmt.Errorf("sweep: campaign %q: unknown scheduler %q", sp.Name, s)
		}
		if err := unique("scheduler", s); err != nil {
			return err
		}
	}
	return nil
}
