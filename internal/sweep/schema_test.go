package sweep

import (
	"encoding/json"
	"os"
	"testing"
)

// TestSchemaGolden locks the report schema against the committed
// golden: regenerating the baseline campaign must produce the same
// structure (key sets, array shapes, value types, axis names).
// Measured values are free to drift; renaming or dropping a field — or
// a metric key — means bumping SchemaVersion and regenerating both the
// golden and BENCH_sweep_baseline.json:
//
//	go run ./cmd/sweep -campaign baseline -out .
//	cp BENCH_sweep_baseline.json internal/sweep/testdata/schema_golden.json
func TestSchemaGolden(t *testing.T) {
	want, err := os.ReadFile("testdata/schema_golden.json")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Execute(Baseline(), 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckSchema(got, want); err != nil {
		t.Fatalf("schema drifted from the committed golden: %v", err)
	}
	if rep.SchemaVersion != SchemaVersion {
		t.Fatalf("report carries version %d, package says %d", rep.SchemaVersion, SchemaVersion)
	}
}

// TestTierReportVersioned: benchstats' envelope carries the shared
// schema version too.
func TestTierReportVersioned(t *testing.T) {
	rep := TierReport{SchemaVersion: SchemaVersion, Benchmark: "x"}
	data, err := Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back TierReport
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.SchemaVersion != SchemaVersion {
		t.Fatalf("round-trip lost the schema version: %d", back.SchemaVersion)
	}
}
