// Grid expansion and execution. Every run is fully isolated — its own
// platform, surf model and core.Engine — and seeded as
// campaignSeed ⊕ FNV-1a(run key), the same derivation idiom as
// faults.subSeed: a run's stream depends only on its own coordinates,
// so adding grid points never shifts a sibling's draw. Execution order
// is therefore free: fanout N and fanout 1 produce identical reports,
// which the determinism lane diffs byte-for-byte.

package sweep

import (
	"fmt"
	"hash/fnv"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/faults"
	"repro/internal/instr"
	"repro/internal/simdag"
)

// Run is one expanded grid point.
type Run struct {
	Index     int
	Key       string
	Platform  *PlatformSpec
	Workload  *WorkloadSpec
	Scheduler string
	Solver    *SolverSpec
	Fault     *FaultSpec
	Seed      int64 // the seed-axis value
	RunSeed   int64 // derived engine/workload/fault seed
}

// runSeed derives a run's seed from the campaign seed and its key —
// never from its position in the grid.
func runSeed(campaign int64, key string) int64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	return campaign ^ int64(h.Sum64())
}

// Expand lists the campaign's runs in grid order (platforms outermost,
// seeds innermost).
func Expand(sp *Spec, campaignSeed int64) ([]Run, error) {
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	var runs []Run
	for pi := range sp.Platforms {
		for wi := range sp.Workloads {
			for _, sched := range sp.Schedulers {
				for vi := range sp.Solvers {
					for fi := range sp.Faults {
						for _, seed := range sp.Seeds {
							key := sp.Platforms[pi].Name +
								"/" + sp.Workloads[wi].Name +
								"/" + sched +
								"/" + sp.Solvers[vi].Name +
								"/" + sp.Faults[fi].Name +
								"/" + strconv.FormatInt(seed, 10)
							runs = append(runs, Run{
								Index:     len(runs),
								Key:       key,
								Platform:  &sp.Platforms[pi],
								Workload:  &sp.Workloads[wi],
								Scheduler: sched,
								Solver:    &sp.Solvers[vi],
								Fault:     &sp.Faults[fi],
								Seed:      seed,
								RunSeed:   runSeed(campaignSeed, key),
							})
						}
					}
				}
			}
		}
	}
	return runs, nil
}

// Options tunes campaign execution.
type Options struct {
	// Fanout bounds concurrent runs: ≤1 sequential. Worker goroutines
	// interleave even on one CPU, so the concurrent path is exercised
	// regardless of GOMAXPROCS.
	Fanout int
	// Perf attaches wall-clock PerfStat to each run. Only honoured at
	// fanout 1: concurrent siblings would smear the timings.
	Perf bool
}

// Execute expands and runs the campaign, returning the report. The
// report (perf subtree aside) is a pure function of (sp, campaignSeed).
func Execute(sp *Spec, campaignSeed int64, opt Options) (*CampaignReport, error) {
	runs, err := Expand(sp, campaignSeed)
	if err != nil {
		return nil, err
	}
	fanout := opt.Fanout
	if fanout < 1 {
		fanout = 1
	}
	perf := opt.Perf && fanout == 1

	stats := make([]RunStat, len(runs))
	errs := make([]error, len(runs))
	if fanout == 1 {
		for i := range runs {
			stats[i], errs[i] = runOne(&runs[i], perf)
		}
	} else {
		// Bounded fanout: a fixed worker pool draining an index channel.
		// Results land at their run's index, so completion order (the
		// only scheduling-dependent thing here) never reaches the
		// report. This is host-side campaign orchestration, not
		// simulated time — each worker drives its own isolated engine.
		idx := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < fanout; w++ {
			wg.Add(1)
			go func() { // sanctioned spawn site: lint GoroutineAllow names Execute
				defer wg.Done()
				for i := range idx {
					stats[i], errs[i] = runOne(&runs[i], false)
				}
			}()
		}
		for i := range runs {
			idx <- i
		}
		close(idx)
		wg.Wait()
	}
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("sweep: run %s: %w", runs[i].Key, err)
		}
	}

	rep := &CampaignReport{
		SchemaVersion: SchemaVersion,
		Campaign:      sp.Name,
		Seed:          campaignSeed,
		Points:        len(runs),
		Runs:          stats,
		ByScheduler:   aggregate(stats),
	}
	return rep, nil
}

// runOne executes a single grid point in a fresh engine.
func runOne(r *Run, perf bool) (RunStat, error) {
	var t0 time.Time
	var m0 runtime.MemStats
	if perf {
		runtime.ReadMemStats(&m0)
		t0 = time.Now() //lint:allow det-wallclock perf lane only: quarantined in RunStat.Perf, off in determinism runs
	}

	pf, hosts, err := r.Platform.Build()
	if err != nil {
		return RunStat{}, err
	}
	s := simdag.New(pf, r.Solver.Config())
	if err := r.Workload.Build(s, r.RunSeed); err != nil {
		return RunStat{}, err
	}

	var inj *faults.Injector
	if r.Fault.Active() {
		params, err := r.Fault.Params(hosts)
		if err != nil {
			return RunStat{}, err
		}
		sched, err := faults.Compile(r.RunSeed, params)
		if err != nil {
			return RunStat{}, err
		}
		inj, err = faults.Arm(sched, s.Model())
		if err != nil {
			return RunStat{}, err
		}
		s.SetReschedulePolicy(hosts)
	}

	switch r.Scheduler {
	case "minmin":
		err = simdag.ScheduleMinMin(s, hosts)
	case "rr":
		err = simdag.ScheduleRoundRobin(s, hosts)
	case "heft":
		err = simdag.ScheduleHEFT(s, hosts)
	default:
		err = fmt.Errorf("unknown scheduler %q", r.Scheduler)
	}
	if err != nil {
		return RunStat{}, err
	}
	if _, err := s.Simulate(); err != nil {
		return RunStat{}, err
	}

	reg := instr.NewRegistry()
	s.MetricsInto(reg)
	if inj != nil {
		inj.MetricsInto(reg)
	}
	metrics, err := snapshotMetrics(reg)
	if err != nil {
		return RunStat{}, err
	}

	tasks := s.Tasks()
	ptasks := 0
	for _, t := range tasks {
		if t.Kind() == simdag.Parallel {
			ptasks++
		}
	}
	st := RunStat{
		Key:         r.Key,
		Platform:    r.Platform.Name,
		Workload:    r.Workload.Name,
		Scheduler:   r.Scheduler,
		Solver:      r.Solver.Name,
		Faults:      r.Fault.Name,
		Seed:        r.Seed,
		RunSeed:     r.RunSeed,
		Makespan:    s.Makespan(),
		Tasks:       len(tasks),
		Ptasks:      ptasks,
		Done:        s.DoneCount(),
		Failed:      s.FailedCount(),
		Reschedules: s.Reschedules(),
		Metrics:     metrics,
	}
	if inj != nil {
		st.FaultEvents = inj.Applied()
	}
	if perf {
		wall := time.Since(t0) //lint:allow det-wallclock perf lane only: quarantined in RunStat.Perf, off in determinism runs
		var m1 runtime.MemStats
		runtime.ReadMemStats(&m1)
		activities := len(tasks)
		if activities == 0 {
			activities = 1
		}
		st.Perf = &PerfStat{
			WallUs:        float64(wall.Nanoseconds()) / 1e3,
			UsPerActivity: float64(wall.Nanoseconds()) / float64(activities) / 1e3,
			Allocs:        int64(m1.Mallocs - m0.Mallocs),
			Bytes:         int64(m1.TotalAlloc - m0.TotalAlloc),
		}
	}
	return st, nil
}

// aggregate groups the per-run records by scheduler.
func aggregate(stats []RunStat) map[string]Aggregate {
	agg := make(map[string]Aggregate)
	var order []string
	for i := range stats {
		st := &stats[i]
		a, seen := agg[st.Scheduler]
		if !seen {
			order = append(order, st.Scheduler)
			a.MakespanMin = st.Makespan
			a.MakespanMax = st.Makespan
		}
		a.Runs++
		a.MakespanMean += st.Makespan
		if st.Makespan < a.MakespanMin {
			a.MakespanMin = st.Makespan
		}
		if st.Makespan > a.MakespanMax {
			a.MakespanMax = st.Makespan
		}
		a.Failed += st.Failed
		a.Reschedules += st.Reschedules
		agg[st.Scheduler] = a
	}
	sort.Strings(order)
	for _, k := range order {
		a := agg[k]
		a.MakespanMean /= float64(a.Runs)
		agg[k] = a
	}
	return agg
}
