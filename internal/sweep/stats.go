// Package sweep is the declarative experiment harness: a campaign is a
// grid (platform × workload × scheduler × solver × faults × seed) that
// expands to isolated runs — one core.Engine each — executed with
// bounded fanout, and reported as schema-versioned JSON.
//
// This file owns the report schema shared by cmd/sweep and
// cmd/benchstats: both binaries emit BENCH_*.json with the same
// SchemaVersion and the same per-tier record, so downstream tooling
// reads one format. The determinism contract is structural: a
// CampaignReport marshalled without the perf subtree is a pure function
// of (spec, campaign seed) — byte-identical across repeats and across
// fanout settings. Wall-clock numbers are quarantined in PerfStat,
// attached only on request.
package sweep

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"repro/internal/instr"
)

// SchemaVersion stamps every report this package writes. Bump it when
// a field changes meaning or shape; the CI drift check compares
// structure, so additive evolution bumps it too.
const SchemaVersion = 1

// TierStat is one size tier of a scaling benchmark — the record
// cmd/benchstats has emitted since PR 8, extracted here so cmd/sweep's
// perf lane and benchstats share a schema.
type TierStat struct {
	Name            string  `json:"name"`
	Form            string  `json:"form"` // goroutine | chain | dag
	Activities      int     `json:"activities"`
	UsPerActivity   float64 `json:"us_per_activity"`
	AllocsPerOp     int64   `json:"allocs_per_op"`
	BytesPerOp      int64   `json:"bytes_per_op"`
	Spawned         int     `json:"spawned"`
	GoroutineSpawns int     `json:"goroutine_spawns"`
	GoroutinesPeak  int     `json:"goroutines_peak"`
	SolverSolves    uint64  `json:"solver_solves"`
	SolverParallel  uint64  `json:"solver_parallel_dispatches"`
	// Pools is the per-free-list scoreboard from the tier's last run.
	// Go maps marshal with sorted keys, so the JSON stays
	// byte-comparable across runs of the same build.
	Pools map[string]instr.PoolStat `json:"pools"`
}

// TierReport is a benchstats output file.
type TierReport struct {
	SchemaVersion int        `json:"schema_version"`
	Benchmark     string     `json:"benchmark"`
	Small         bool       `json:"small"`
	Tiers         []TierStat `json:"tiers"`
}

// PerfStat is the wall-clock side of one run, collected only when
// Options.Perf is set (and fanout is 1, so timings aren't smeared by
// sibling runs). It lives in its own subtree so the deterministic part
// of the report never embeds host-speed noise.
type PerfStat struct {
	WallUs        float64 `json:"wall_us"`
	UsPerActivity float64 `json:"us_per_activity"`
	Allocs        int64   `json:"allocs"`
	Bytes         int64   `json:"bytes"`
}

// RunStat is the deterministic record of one grid point.
type RunStat struct {
	Key       string `json:"key"`
	Platform  string `json:"platform"`
	Workload  string `json:"workload"`
	Scheduler string `json:"scheduler"`
	Solver    string `json:"solver"`
	Faults    string `json:"faults"`
	// Seed is the grid-axis seed; RunSeed is the engine seed derived
	// from it (campaign seed ⊕ FNV of the run key), so growing the grid
	// never shifts a sibling run's stream.
	Seed    int64 `json:"seed"`
	RunSeed int64 `json:"run_seed"`

	Makespan    float64 `json:"makespan"`
	Tasks       int     `json:"tasks"`
	Ptasks      int     `json:"ptasks"`
	Done        int     `json:"done"`
	Failed      int     `json:"failed"`
	Reschedules uint64  `json:"reschedules"`
	FaultEvents int     `json:"fault_events"`

	// Metrics is the instr.Registry snapshot of the run's engine, with
	// process-global entries (the shared worker-stack pool) filtered
	// out so the values are a pure function of the run.
	Metrics map[string]json.RawMessage `json:"metrics"`

	Perf *PerfStat `json:"perf,omitempty"`
}

// Aggregate summarizes the runs sharing one scheduler.
type Aggregate struct {
	Runs         int     `json:"runs"`
	MakespanMean float64 `json:"makespan_mean"`
	MakespanMin  float64 `json:"makespan_min"`
	MakespanMax  float64 `json:"makespan_max"`
	Failed       int     `json:"failed"`
	Reschedules  uint64  `json:"reschedules"`
}

// CampaignReport is a cmd/sweep output file.
type CampaignReport struct {
	SchemaVersion int                  `json:"schema_version"`
	Campaign      string               `json:"campaign"`
	Seed          int64                `json:"seed"`
	Points        int                  `json:"points"`
	Runs          []RunStat            `json:"runs"`
	ByScheduler   map[string]Aggregate `json:"by_scheduler"`
}

// Marshal renders a report with the project's JSON conventions
// (two-space indent, trailing newline) — the exact bytes the
// determinism lanes diff.
func Marshal(v any) ([]byte, error) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// snapshotMetrics collects MetricsInto output into a filtered map.
// The core.worker_pool triad is process-global (shared stack pool) and
// would couple a run's bytes to its siblings' history; everything else
// in the registry is engine-local.
func snapshotMetrics(reg *instr.Registry) (map[string]json.RawMessage, error) {
	var buf bytes.Buffer
	if err := reg.WriteJSON(&buf); err != nil {
		return nil, err
	}
	var flat map[string]json.RawMessage
	if err := json.Unmarshal(buf.Bytes(), &flat); err != nil {
		return nil, err
	}
	for _, name := range globalMetricNames(flat) {
		delete(flat, name)
	}
	return flat, nil
}

// globalMetricNames lists the keys to strip (collected first: no
// mutation while ranging, and DetPkgs forbids map ranges outside this
// read-only scan anyway).
func globalMetricNames(flat map[string]json.RawMessage) []string {
	var names []string
	for name := range flat { //lint:allow det-maprange collected then sorted; deletion order is irrelevant
		if strings.HasPrefix(name, "core.worker_pool.") {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names
}

// CheckSchema compares the structure of two JSON documents and returns
// a descriptive error on drift. Structure means: objects must carry the
// same key set, arrays the same length with matching elements, numbers
// must stay numbers (values free to differ — perf numbers drift by
// design), strings and booleans must match exactly (they encode names
// and axes, not measurements).
func CheckSchema(got, want []byte) error {
	var g, w any
	if err := json.Unmarshal(got, &g); err != nil {
		return fmt.Errorf("sweep: generated report: %w", err)
	}
	if err := json.Unmarshal(want, &w); err != nil {
		return fmt.Errorf("sweep: reference report: %w", err)
	}
	return checkNode("$", g, w)
}

func checkNode(path string, got, want any) error {
	switch w := want.(type) {
	case map[string]any:
		g, ok := got.(map[string]any)
		if !ok {
			return fmt.Errorf("sweep: %s: object became %T", path, got)
		}
		keys := sortedKeys(w)
		for _, k := range keys {
			gv, ok := g[k]
			if !ok {
				return fmt.Errorf("sweep: %s: key %q disappeared", path, k)
			}
			if err := checkNode(path+"."+k, gv, w[k]); err != nil {
				return err
			}
		}
		if len(g) != len(w) {
			for _, k := range sortedKeys(g) {
				if _, ok := w[k]; !ok {
					return fmt.Errorf("sweep: %s: new key %q", path, k)
				}
			}
		}
	case []any:
		g, ok := got.([]any)
		if !ok {
			return fmt.Errorf("sweep: %s: array became %T", path, got)
		}
		if len(g) != len(w) {
			return fmt.Errorf("sweep: %s: array length %d, want %d", path, len(g), len(w))
		}
		for i := range w {
			if err := checkNode(fmt.Sprintf("%s[%d]", path, i), g[i], w[i]); err != nil {
				return err
			}
		}
	case float64:
		if _, ok := got.(float64); !ok {
			return fmt.Errorf("sweep: %s: number became %T", path, got)
		}
	case string:
		g, ok := got.(string)
		if !ok {
			return fmt.Errorf("sweep: %s: string became %T", path, got)
		}
		if g != w {
			return fmt.Errorf("sweep: %s: %q, want %q", path, g, w)
		}
	case bool:
		g, ok := got.(bool)
		if !ok {
			return fmt.Errorf("sweep: %s: bool became %T", path, got)
		}
		if g != w {
			return fmt.Errorf("sweep: %s: %v, want %v", path, g, w)
		}
	case nil:
		if got != nil {
			return fmt.Errorf("sweep: %s: null became %T", path, got)
		}
	default:
		return fmt.Errorf("sweep: %s: unhandled node %T", path, want)
	}
	return nil
}

func sortedKeys(m map[string]any) []string {
	keys := make([]string, 0, len(m))
	for k := range m { //lint:allow det-maprange keys sorted immediately below
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
