// Bundled campaigns: the grids cmd/sweep ships with, shared with the
// test suite so the CI lanes and the committed baseline exercise
// exactly the code paths users get.

package sweep

// Baseline is the small in-CI campaign behind BENCH_sweep_baseline.json:
// 3 platforms × 1 workload × 2 schedulers × 2 seeds = 12 runs, a couple
// of seconds end to end.
func Baseline() *Spec {
	return &Spec{
		Name: "baseline",
		Platforms: []PlatformSpec{
			{Name: "cluster8", Kind: "cluster", Hosts: 8},
			{Name: "grid2x4", Kind: "multisite", Hosts: 4, Sites: 2},
			{Name: "waxman8", Kind: "waxman", Hosts: 8, Seed: 7},
		},
		Workloads: []WorkloadSpec{
			{Name: "layered-sm", Kind: "layered", Layers: 4, Width: 6},
		},
		Schedulers: []string{"minmin", "heft"},
		Seeds:      []int64{1, 2},
	}
}

// Default is the standard campaign: 3 platforms × 2 workloads ×
// 3 schedulers × 2 seeds = 36 runs, covering every scheduler and the
// ptask task kind.
func Default() *Spec {
	return &Spec{
		Name: "default",
		Platforms: []PlatformSpec{
			{Name: "cluster8", Kind: "cluster", Hosts: 8},
			{Name: "grid2x4", Kind: "multisite", Hosts: 4, Sites: 2},
			{Name: "waxman8", Kind: "waxman", Hosts: 8, Seed: 7},
		},
		Workloads: []WorkloadSpec{
			{Name: "layered-sm", Kind: "layered", Layers: 4, Width: 6},
			{Name: "layered-ptask", Kind: "layered", Layers: 5, Width: 8,
				PtaskProb: 0.25, PtaskSlots: 2},
		},
		Schedulers: []string{"minmin", "rr", "heft"},
		Seeds:      []int64{1, 2},
	}
}

// Faulty overlays the default shape with a host failure process and
// rescheduling recovery: 2 platforms × 1 workload × 2 schedulers ×
// 2 faults × 2 seeds = 16 runs.
func Faulty() *Spec {
	return &Spec{
		Name: "faulty",
		Platforms: []PlatformSpec{
			{Name: "cluster8", Kind: "cluster", Hosts: 8},
			{Name: "waxman8", Kind: "waxman", Hosts: 8, Seed: 7},
		},
		Workloads: []WorkloadSpec{
			{Name: "layered-sm", Kind: "layered", Layers: 4, Width: 6},
		},
		Schedulers: []string{"minmin", "heft"},
		Faults: []FaultSpec{
			{Name: "none"},
			{Name: "exp-mtbf5", MTBF: 5, MTTR: 0.5, Horizon: 60},
		},
		Seeds: []int64{1, 2},
	}
}

// ByName resolves a bundled campaign.
func ByName(name string) *Spec {
	switch name {
	case "baseline":
		return Baseline()
	case "default":
		return Default()
	case "faulty":
		return Faulty()
	default:
		return nil
	}
}
