// Message-type registry (gras_msgtype_declare / gras_msgtype_by_name).
// Type descriptions and wire formats live in the codec subpackage; the
// main package aliases the common types for convenience.

package gras

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/gras/codec"
)

// Re-exported codec types: architecture descriptors and type
// descriptions are part of the public GRAS surface.
type (
	// Arch describes a CPU architecture's data representation.
	Arch = codec.Arch
	// Desc describes an exchangeable type.
	Desc = codec.Desc
)

// Architecture descriptors of the paper's Pastry experiment.
var (
	ArchX86     = codec.ArchX86
	ArchSparc   = codec.ArchSparc
	ArchPowerPC = codec.ArchPowerPC
)

// Describe derives the wire description of a Go value's type.
func Describe(v any) (*Desc, error) { return codec.Describe(v) }

// ArchByName resolves an architecture by name ("" defaults to x86).
func ArchByName(name string) (Arch, bool) { return codec.ArchByName(name) }

// MessageType is a registered message: a name plus the description of
// its payload (gras_msgtype_declare).
type MessageType struct {
	Name string
	Desc *Desc
}

// Registry holds the message types known to a GRAS application. A
// single process-wide registry mirrors the C library's global msgtype
// table; Worlds and real nodes share it. It is safe for concurrent use
// (real-world mode involves multiple OS processes/goroutines).
type Registry struct {
	mu    sync.RWMutex
	types map[string]*MessageType
}

// NewRegistry returns an empty message-type registry.
func NewRegistry() *Registry {
	return &Registry{types: make(map[string]*MessageType)}
}

// Declare registers a message type carrying payloads shaped like
// sample (gras_msgtype_declare). Redeclaring with the same payload
// type is idempotent; with a different type it errors.
func (r *Registry) Declare(name string, sample any) (*MessageType, error) {
	d, err := codec.Describe(sample)
	if err != nil {
		return nil, fmt.Errorf("gras: declaring %q: %w", name, err)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if old, ok := r.types[name]; ok {
		if old.Desc.GoType() != d.GoType() {
			return nil, fmt.Errorf("gras: message %q already declared with type %s",
				name, old.Desc.GoType())
		}
		return old, nil
	}
	mt := &MessageType{Name: name, Desc: d}
	r.types[name] = mt
	return mt, nil
}

// Lookup returns a declared message type (gras_msgtype_by_name).
func (r *Registry) Lookup(name string) (*MessageType, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	mt, ok := r.types[name]
	return mt, ok
}

// Names returns the declared message names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.types))
	for n := range r.types {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
