// Real-world transport: the same Node interface over TCP sockets. A
// GRAS application function can be handed a RealNode instead of a
// simulation node and runs unchanged against real networks — the
// paper's "resulting application is production, not prototype".

package gras

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// realEndpoint is the real-world side of a Socket.
type realEndpoint struct {
	conn net.Conn
	node *RealNode
}

// RealNode is a GRAS agent communicating over real TCP.
type RealNode struct {
	name  string
	arch  Arch
	reg   *Registry
	start time.Time

	mu        sync.Mutex
	listeners []net.Listener
	conns     []net.Conn
	inbox     chan *realMsg
	closed    bool

	cbs map[string]Callback
	// pending holds received-but-unmatched messages (wrong type for
	// the current Recv filter).
	pending []*realMsg
}

type realMsg struct {
	frame []byte
	conn  net.Conn
}

// NewRealNode creates a real-world agent. The arch parameter tags
// outgoing messages; pass ArchX86 (or the actual host architecture) —
// conversion on receipt follows the same NDR rules as in simulation.
func NewRealNode(name string, arch Arch, reg *Registry) *RealNode {
	if reg == nil {
		reg = NewRegistry()
	}
	return &RealNode{
		name:  name,
		arch:  arch,
		reg:   reg,
		start: time.Now(), //lint:allow det-wallclock real-network backend: the node clock IS the wallclock here, nothing is simulated
		inbox: make(chan *realMsg, 128),
		cbs:   make(map[string]Callback),
	}
}

// Name implements Node.
func (n *RealNode) Name() string { return n.name }

// Arch implements Node.
func (n *RealNode) Arch() Arch { return n.arch }

// Registry implements Node.
func (n *RealNode) Registry() *Registry { return n.reg }

// Clock implements Node: seconds since the node started.
func (n *RealNode) Clock() float64 { return time.Since(n.start).Seconds() } //lint:allow det-wallclock real-network backend: the node clock IS the wallclock here, nothing is simulated

// Sleep implements Node.
func (n *RealNode) Sleep(d float64) error {
	time.Sleep(time.Duration(d * float64(time.Second)))
	return nil
}

// Close shuts the node down, closing every socket.
func (n *RealNode) Close() {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return
	}
	n.closed = true
	for _, l := range n.listeners {
		l.Close()
	}
	for _, c := range n.conns {
		c.Close()
	}
}

// Listen implements Node: opens a TCP server socket on 127.0.0.1:port
// (port 0 picks a free port; see Addr).
func (n *RealNode) Listen(port int) error {
	l, err := net.Listen("tcp", fmt.Sprintf("127.0.0.1:%d", port))
	if err != nil {
		return err
	}
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		l.Close()
		return ErrClosed
	}
	n.listeners = append(n.listeners, l)
	n.mu.Unlock()
	go n.acceptLoop(l)
	return nil
}

// Addr returns the listen address of the i-th Listen call (for tests
// using port 0).
func (n *RealNode) Addr(i int) string {
	n.mu.Lock()
	defer n.mu.Unlock()
	if i < 0 || i >= len(n.listeners) {
		return ""
	}
	return n.listeners[i].Addr().String()
}

func (n *RealNode) acceptLoop(l net.Listener) {
	for {
		conn, err := l.Accept()
		if err != nil {
			return // listener closed
		}
		n.mu.Lock()
		if n.closed {
			n.mu.Unlock()
			conn.Close()
			return
		}
		n.conns = append(n.conns, conn)
		n.mu.Unlock()
		go n.readLoop(conn)
	}
}

// readLoop turns a TCP stream into framed messages.
func (n *RealNode) readLoop(conn net.Conn) {
	for {
		var lenBuf [4]byte
		if _, err := io.ReadFull(conn, lenBuf[:]); err != nil {
			return
		}
		size := binary.BigEndian.Uint32(lenBuf[:])
		if size > 64<<20 {
			return // refuse absurd frames
		}
		frame := make([]byte, size)
		if _, err := io.ReadFull(conn, frame); err != nil {
			return
		}
		select {
		case n.inbox <- &realMsg{frame: frame, conn: conn}:
		default:
			// Inbox overflow: drop (TCP-level backpressure would be
			// better but this keeps the node responsive).
		}
	}
}

// Client implements Node: dials host:port.
func (n *RealNode) Client(host string, port int) (*Socket, error) {
	addr := fmt.Sprintf("%s:%d", host, port)
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, fmt.Errorf("%w: %s (%v)", ErrRefused, addr, err)
	}
	n.mu.Lock()
	n.conns = append(n.conns, conn)
	n.mu.Unlock()
	go n.readLoop(conn) // replies may arrive on the same connection
	return &Socket{Peer: addr, real: &realEndpoint{conn: conn, node: n}}, nil
}

// ClientAddr dials a full address ("127.0.0.1:53420"), convenient with
// ephemeral ports.
func (n *RealNode) ClientAddr(addr string) (*Socket, error) {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, fmt.Errorf("%w: %s (%v)", ErrRefused, addr, err)
	}
	n.mu.Lock()
	n.conns = append(n.conns, conn)
	n.mu.Unlock()
	go n.readLoop(conn)
	return &Socket{Peer: addr, real: &realEndpoint{conn: conn, node: n}}, nil
}

// Send implements Node: frames the message onto the TCP stream.
func (n *RealNode) Send(s *Socket, msgType string, payload any) error {
	if s == nil || s.real == nil {
		return fmt.Errorf("gras: Send on a non-real socket")
	}
	frame, err := encodeFrame(n.reg, msgType, payload, n.arch)
	if err != nil {
		return err
	}
	var lenBuf [4]byte
	binary.BigEndian.PutUint32(lenBuf[:], uint32(len(frame)))
	if _, err := s.real.conn.Write(lenBuf[:]); err != nil {
		return err
	}
	_, err = s.real.conn.Write(frame)
	return err
}

// Recv implements Node.
func (n *RealNode) Recv(msgType string, timeout float64) (*Msg, error) {
	m, err := n.recvRaw(msgType, timeout)
	if err != nil {
		return nil, err
	}
	return n.finish(m)
}

func (n *RealNode) recvRaw(msgType string, timeout float64) (*realMsg, error) {
	// Check messages parked by earlier Recv calls with other filters.
	for i, m := range n.pending {
		if msgType == "" || frameType(m.frame) == msgType {
			n.pending = append(n.pending[:i], n.pending[i+1:]...)
			return m, nil
		}
	}
	var deadline <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(time.Duration(timeout * float64(time.Second)))
		defer t.Stop()
		deadline = t.C
	}
	for {
		select {
		case m := <-n.inbox:
			if msgType == "" || frameType(m.frame) == msgType {
				return m, nil
			}
			n.pending = append(n.pending, m)
		case <-deadline:
			return nil, ErrTimeout
		}
	}
}

func (n *RealNode) finish(m *realMsg) (*Msg, error) {
	msgType, payload, err := decodeFrame(n.reg, m.frame, n.arch)
	if err != nil {
		return nil, err
	}
	from := ""
	if m.conn != nil {
		from = m.conn.RemoteAddr().String()
	}
	return &Msg{
		Type:    msgType,
		Payload: payload,
		From:    from,
		Reply:   &Socket{Peer: from, real: &realEndpoint{conn: m.conn, node: n}},
	}, nil
}

// RegisterCB implements Node.
func (n *RealNode) RegisterCB(msgType string, cb Callback) {
	n.cbs[msgType] = cb
}

// Handle implements Node.
func (n *RealNode) Handle(timeout float64) error {
	m, err := n.recvRaw("", timeout)
	if err != nil {
		return err
	}
	msg, err := n.finish(m)
	if err != nil {
		return err
	}
	cb := n.cbs[msg.Type]
	if cb == nil {
		return fmt.Errorf("gras: no callback for message %q", msg.Type)
	}
	return cb(n, msg)
}

// Bench implements Node: for a real node the code just runs; the
// measurement is returned so applications can log it.
func (n *RealNode) Bench(fn func()) (float64, error) {
	t0 := time.Now() //lint:allow det-wallclock real-network backend: Bench measures real execution by design
	fn()
	return time.Since(t0).Seconds(), nil //lint:allow det-wallclock real-network backend: Bench measures real execution by design
}
