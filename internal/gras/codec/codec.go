// The Codec interface and the shared reflection-driven walk used by the
// binary codecs.

package codec

import (
	"fmt"
	"reflect"
)

// Codec is one wire format of the Pastry comparison.
type Codec interface {
	// Name returns the format's display name (as in the paper's table).
	Name() string
	// Encode serializes v (which must match d's Go type) as emitted by
	// architecture `from`. The result is a self-contained frame.
	Encode(d *Desc, v any, from Arch) ([]byte, error)
	// Decode rebuilds a value of d's Go type on architecture `to`.
	Decode(d *Desc, data []byte, to Arch) (any, error)
}

// All returns one instance of every codec, in the paper's table order.
func All() []Codec {
	return []Codec{NDR{}, XDR{}, CDR{}, PBIO{}, XML{}}
}

// ByName returns the codec with the given name, or nil.
func ByName(name string) Codec {
	for _, c := range All() {
		if c.Name() == name {
			return c
		}
	}
	return nil
}

// encodeValue walks a described value, writing scalars through w.
// align enables CDR-style natural alignment.
func encodeValue(w *writer, d *Desc, v reflect.Value, align bool) error {
	if align {
		if sz := d.Kind.FixedSize(); sz > 1 {
			w.pad(sz)
		}
	}
	switch d.Kind {
	case KindBool:
		if v.Bool() {
			w.u8(1)
		} else {
			w.u8(0)
		}
	case KindInt8:
		w.u8(byte(v.Int()))
	case KindInt16:
		w.u16(uint16(v.Int()))
	case KindInt32:
		w.u32(uint32(v.Int()))
	case KindInt64:
		w.u64(uint64(v.Int()))
	case KindUint8:
		w.u8(byte(v.Uint()))
	case KindUint16:
		w.u16(uint16(v.Uint()))
	case KindUint32:
		w.u32(uint32(v.Uint()))
	case KindUint64:
		w.u64(v.Uint())
	case KindFloat32:
		w.f32(float32(v.Float()))
	case KindFloat64:
		w.f64(v.Float())
	case KindString:
		s := v.String()
		if align {
			w.pad(4)
		}
		w.u32(uint32(len(s)))
		w.raw([]byte(s))
	case KindStruct:
		for _, f := range d.Fields {
			fv := v.FieldByName(f.Name)
			if err := encodeValue(w, f.Desc, fv, align); err != nil {
				return err
			}
		}
	case KindSlice:
		if align {
			w.pad(4)
		}
		w.u32(uint32(v.Len()))
		for i := 0; i < v.Len(); i++ {
			if err := encodeValue(w, d.Elem, v.Index(i), align); err != nil {
				return err
			}
		}
	case KindArray:
		for i := 0; i < d.Len; i++ {
			if err := encodeValue(w, d.Elem, v.Index(i), align); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("codec: cannot encode kind %v", d.Kind)
	}
	return nil
}

// decodeValue reads a described value from r into the addressable
// reflect.Value v.
func decodeValue(r *reader, d *Desc, v reflect.Value, align bool) error {
	if align {
		if sz := d.Kind.FixedSize(); sz > 1 {
			if err := r.skipPad(sz); err != nil {
				return err
			}
		}
	}
	switch d.Kind {
	case KindBool:
		b, err := r.u8()
		if err != nil {
			return err
		}
		v.SetBool(b != 0)
	case KindInt8:
		b, err := r.u8()
		if err != nil {
			return err
		}
		v.SetInt(int64(int8(b)))
	case KindInt16:
		x, err := r.u16()
		if err != nil {
			return err
		}
		v.SetInt(int64(int16(x)))
	case KindInt32:
		x, err := r.u32()
		if err != nil {
			return err
		}
		v.SetInt(int64(int32(x)))
	case KindInt64:
		x, err := r.u64()
		if err != nil {
			return err
		}
		v.SetInt(int64(x))
	case KindUint8:
		b, err := r.u8()
		if err != nil {
			return err
		}
		v.SetUint(uint64(b))
	case KindUint16:
		x, err := r.u16()
		if err != nil {
			return err
		}
		v.SetUint(uint64(x))
	case KindUint32:
		x, err := r.u32()
		if err != nil {
			return err
		}
		v.SetUint(uint64(x))
	case KindUint64:
		x, err := r.u64()
		if err != nil {
			return err
		}
		v.SetUint(x)
	case KindFloat32:
		f, err := r.f32()
		if err != nil {
			return err
		}
		v.SetFloat(float64(f))
	case KindFloat64:
		f, err := r.f64()
		if err != nil {
			return err
		}
		v.SetFloat(f)
	case KindString:
		if align {
			if err := r.skipPad(4); err != nil {
				return err
			}
		}
		n, err := r.u32()
		if err != nil {
			return err
		}
		b, err := r.raw(int(n))
		if err != nil {
			return err
		}
		v.SetString(string(b))
	case KindStruct:
		for _, f := range d.Fields {
			fv := v.FieldByName(f.Name)
			if err := decodeValue(r, f.Desc, fv, align); err != nil {
				return err
			}
		}
	case KindSlice:
		if align {
			if err := r.skipPad(4); err != nil {
				return err
			}
		}
		n, err := r.u32()
		if err != nil {
			return err
		}
		if int(n) > r.remaining() {
			return ErrShortBuffer // defensive cap against hostile lengths
		}
		sl := reflect.MakeSlice(v.Type(), int(n), int(n))
		for i := 0; i < int(n); i++ {
			if err := decodeValue(r, d.Elem, sl.Index(i), align); err != nil {
				return err
			}
		}
		v.Set(sl)
	case KindArray:
		for i := 0; i < d.Len; i++ {
			if err := decodeValue(r, d.Elem, v.Index(i), align); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("codec: cannot decode kind %v", d.Kind)
	}
	return nil
}

// newValueFor allocates a fresh addressable value of d's Go type.
func newValueFor(d *Desc) (reflect.Value, error) {
	t := d.GoType()
	if t == nil {
		return reflect.Value{}, fmt.Errorf("codec: description %q has no Go type", d.Name)
	}
	return reflect.New(t).Elem(), nil
}
