// The five wire formats of the Pastry comparison.

package codec

import (
	"fmt"
	"reflect"
	"strconv"
	"strings"
)

// --- GRAS NDR ---------------------------------------------------------------

// NDR is the GRAS native wire format: the payload travels in the
// sender's native representation, prefixed by one architecture byte.
// Homogeneous exchanges need no conversion at all; on heterogeneous
// exchanges only the receiver converts ("receiver makes it right").
type NDR struct{}

// Name implements Codec.
func (NDR) Name() string { return "GRAS" }

// Encode implements Codec.
func (NDR) Encode(d *Desc, v any, from Arch) ([]byte, error) {
	w := newWriter(from.Order)
	w.u8(from.ID)
	if err := encodeValue(w, d, reflect.ValueOf(v), false); err != nil {
		return nil, err
	}
	return w.bytes(), nil
}

// Decode implements Codec.
func (NDR) Decode(d *Desc, data []byte, to Arch) (any, error) {
	if len(data) < 1 {
		return nil, ErrShortBuffer
	}
	sender, ok := ArchByID(data[0])
	if !ok {
		return nil, fmt.Errorf("codec: unknown sender architecture %d", data[0])
	}
	r := newReader(data[1:], sender.Order) // reads convert only if orders differ
	out, err := newValueFor(d)
	if err != nil {
		return nil, err
	}
	if err := decodeValue(r, d, out, false); err != nil {
		return nil, err
	}
	return out.Interface(), nil
}

// --- MPICH-like XDR ---------------------------------------------------------

// XDR is an MPICH-like canonical format: everything is converted to
// big-endian with 4-byte units on the wire (XDR rules), so *both* sides
// pay conversion on little-endian hosts and small scalars are inflated
// to four bytes.
type XDR struct{}

// Name implements Codec.
func (XDR) Name() string { return "MPICH" }

// xdrDesc widens sub-4-byte scalars to their XDR on-wire kind.
func xdrKind(k Kind) Kind {
	switch k {
	case KindBool, KindInt8, KindInt16:
		return KindInt32
	case KindUint8, KindUint16:
		return KindUint32
	default:
		return k
	}
}

// Encode implements Codec.
func (XDR) Encode(d *Desc, v any, from Arch) ([]byte, error) {
	w := newWriter(BigEndian)
	if err := xdrEncode(w, d, reflect.ValueOf(v)); err != nil {
		return nil, err
	}
	return w.bytes(), nil
}

func xdrEncode(w *writer, d *Desc, v reflect.Value) error {
	switch xdrKind(d.Kind) {
	case KindInt32:
		switch d.Kind {
		case KindBool:
			if v.Bool() {
				w.u32(1)
			} else {
				w.u32(0)
			}
		default:
			w.u32(uint32(int32(v.Int())))
		}
	case KindUint32:
		if d.Kind == KindUint32 {
			w.u32(uint32(v.Uint()))
		} else {
			w.u32(uint32(v.Uint()))
		}
	case KindInt64:
		w.u64(uint64(v.Int()))
	case KindUint64:
		w.u64(v.Uint())
	case KindFloat32:
		w.f32(float32(v.Float()))
	case KindFloat64:
		w.f64(v.Float())
	case KindString:
		s := v.String()
		w.u32(uint32(len(s)))
		w.raw([]byte(s))
		w.pad(4)
	case KindStruct:
		for _, f := range d.Fields {
			if err := xdrEncode(w, f.Desc, v.FieldByName(f.Name)); err != nil {
				return err
			}
		}
	case KindSlice:
		w.u32(uint32(v.Len()))
		for i := 0; i < v.Len(); i++ {
			if err := xdrEncode(w, d.Elem, v.Index(i)); err != nil {
				return err
			}
		}
	case KindArray:
		for i := 0; i < d.Len; i++ {
			if err := xdrEncode(w, d.Elem, v.Index(i)); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("codec: xdr cannot encode %v", d.Kind)
	}
	return nil
}

// Decode implements Codec.
func (XDR) Decode(d *Desc, data []byte, to Arch) (any, error) {
	r := newReader(data, BigEndian)
	out, err := newValueFor(d)
	if err != nil {
		return nil, err
	}
	if err := xdrDecode(r, d, out); err != nil {
		return nil, err
	}
	return out.Interface(), nil
}

func xdrDecode(r *reader, d *Desc, v reflect.Value) error {
	switch xdrKind(d.Kind) {
	case KindInt32:
		x, err := r.u32()
		if err != nil {
			return err
		}
		if d.Kind == KindBool {
			v.SetBool(x != 0)
		} else {
			v.SetInt(int64(int32(x)))
		}
	case KindUint32:
		x, err := r.u32()
		if err != nil {
			return err
		}
		v.SetUint(uint64(x))
	case KindInt64:
		x, err := r.u64()
		if err != nil {
			return err
		}
		v.SetInt(int64(x))
	case KindUint64:
		x, err := r.u64()
		if err != nil {
			return err
		}
		v.SetUint(x)
	case KindFloat32:
		f, err := r.f32()
		if err != nil {
			return err
		}
		v.SetFloat(float64(f))
	case KindFloat64:
		f, err := r.f64()
		if err != nil {
			return err
		}
		v.SetFloat(f)
	case KindString:
		n, err := r.u32()
		if err != nil {
			return err
		}
		b, err := r.raw(int(n))
		if err != nil {
			return err
		}
		v.SetString(string(b))
		if err := r.skipPad(4); err != nil {
			return err
		}
	case KindStruct:
		for _, f := range d.Fields {
			if err := xdrDecode(r, f.Desc, v.FieldByName(f.Name)); err != nil {
				return err
			}
		}
	case KindSlice:
		n, err := r.u32()
		if err != nil {
			return err
		}
		if int(n) > r.remaining() {
			return ErrShortBuffer
		}
		sl := reflect.MakeSlice(v.Type(), int(n), int(n))
		for i := 0; i < int(n); i++ {
			if err := xdrDecode(r, d.Elem, sl.Index(i)); err != nil {
				return err
			}
		}
		v.Set(sl)
	case KindArray:
		for i := 0; i < d.Len; i++ {
			if err := xdrDecode(r, d.Elem, v.Index(i)); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("codec: xdr cannot decode %v", d.Kind)
	}
	return nil
}

// --- OmniORB-like CDR -------------------------------------------------------

// CDR is an OmniORB/GIOP-like format: a 12-byte GIOP-style header with
// an endianness flag, natural alignment with padding, and
// receiver-makes-right conversion.
type CDR struct{}

// Name implements Codec.
func (CDR) Name() string { return "OmniORB" }

// giopHeader mimics GIOP: magic, version, flags (endianness), type,
// length placeholder.
var giopMagic = []byte{'G', 'I', 'O', 'P', 1, 2, 0, 0}

// Encode implements Codec.
func (CDR) Encode(d *Desc, v any, from Arch) ([]byte, error) {
	w := newWriter(from.Order)
	w.raw(giopMagic)
	if from.Order == LittleEndian {
		w.buf[6] = 1 // endianness flag
	}
	w.u32(0) // length placeholder (filled below)
	if err := encodeValue(w, d, reflect.ValueOf(v), true); err != nil {
		return nil, err
	}
	// Patch the body length at offset 8, in sender order.
	body := uint32(len(w.buf) - 12)
	lw := newWriter(from.Order)
	lw.u32(body)
	copy(w.buf[8:12], lw.bytes())
	return w.bytes(), nil
}

// Decode implements Codec.
func (CDR) Decode(d *Desc, data []byte, to Arch) (any, error) {
	if len(data) < 12 {
		return nil, ErrShortBuffer
	}
	if string(data[:4]) != "GIOP" {
		return nil, fmt.Errorf("codec: bad GIOP magic")
	}
	order := BigEndian
	if data[6] == 1 {
		order = LittleEndian
	}
	r := newReader(data, order)
	if _, err := r.raw(12); err != nil { // header, alignment preserved
		return nil, err
	}
	out, err := newValueFor(d)
	if err != nil {
		return nil, err
	}
	if err := decodeValue(r, d, out, true); err != nil {
		return nil, err
	}
	return out.Interface(), nil
}

// --- PBIO-like self-describing binary ----------------------------------------

// PBIO is a PBIO-like format: native-representation binary payload
// preceded by self-describing metadata (field names and kinds), so a
// receiver can decode without prior agreement; metadata is what buys
// PBIO its flexibility and what we charge per message.
type PBIO struct{}

// Name implements Codec.
func (PBIO) Name() string { return "PBIO" }

// Encode implements Codec.
func (PBIO) Encode(d *Desc, v any, from Arch) ([]byte, error) {
	w := newWriter(from.Order)
	w.u8(from.ID)
	writeMeta(w, d)
	if err := encodeValue(w, d, reflect.ValueOf(v), false); err != nil {
		return nil, err
	}
	return w.bytes(), nil
}

func writeMeta(w *writer, d *Desc) {
	w.u8(byte(d.Kind))
	switch d.Kind {
	case KindStruct:
		w.u16(uint16(len(d.Fields)))
		for _, f := range d.Fields {
			w.u16(uint16(len(f.Name)))
			w.raw([]byte(f.Name))
			writeMeta(w, f.Desc)
		}
	case KindSlice:
		writeMeta(w, d.Elem)
	case KindArray:
		w.u32(uint32(d.Len))
		writeMeta(w, d.Elem)
	}
}

// Decode implements Codec.
func (PBIO) Decode(d *Desc, data []byte, to Arch) (any, error) {
	if len(data) < 1 {
		return nil, ErrShortBuffer
	}
	sender, ok := ArchByID(data[0])
	if !ok {
		return nil, fmt.Errorf("codec: unknown sender architecture %d", data[0])
	}
	r := newReader(data[1:], sender.Order)
	if err := checkMeta(r, d); err != nil {
		return nil, err
	}
	out, err := newValueFor(d)
	if err != nil {
		return nil, err
	}
	if err := decodeValue(r, d, out, false); err != nil {
		return nil, err
	}
	return out.Interface(), nil
}

// checkMeta parses and validates the self-description against the
// expected description (the real PBIO reconciles differing formats;
// validation is the cost we model).
func checkMeta(r *reader, d *Desc) error {
	k, err := r.u8()
	if err != nil {
		return err
	}
	if Kind(k) != d.Kind {
		return fmt.Errorf("codec: pbio metadata kind %v, want %v", Kind(k), d.Kind)
	}
	switch d.Kind {
	case KindStruct:
		n, err := r.u16()
		if err != nil {
			return err
		}
		if int(n) != len(d.Fields) {
			return fmt.Errorf("codec: pbio field count %d, want %d", n, len(d.Fields))
		}
		for _, f := range d.Fields {
			ln, err := r.u16()
			if err != nil {
				return err
			}
			name, err := r.raw(int(ln))
			if err != nil {
				return err
			}
			if string(name) != f.Name {
				return fmt.Errorf("codec: pbio field %q, want %q", name, f.Name)
			}
			if err := checkMeta(r, f.Desc); err != nil {
				return err
			}
		}
	case KindSlice:
		return checkMeta(r, d.Elem)
	case KindArray:
		n, err := r.u32()
		if err != nil {
			return err
		}
		if int(n) != d.Len {
			return fmt.Errorf("codec: pbio array len %d, want %d", n, d.Len)
		}
		return checkMeta(r, d.Elem)
	}
	return nil
}

// --- XML ----------------------------------------------------------------------

// XML is a plain-text format: every scalar is formatted and parsed as
// text, the price the paper's XML column pays on every exchange.
type XML struct{}

// Name implements Codec.
func (XML) Name() string { return "XML" }

// Encode implements Codec.
func (XML) Encode(d *Desc, v any, from Arch) ([]byte, error) {
	var b strings.Builder
	b.WriteString("<?xml version=\"1.0\"?>")
	if err := xmlEncode(&b, "payload", d, reflect.ValueOf(v)); err != nil {
		return nil, err
	}
	return []byte(b.String()), nil
}

func xmlEscape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
	return r.Replace(s)
}

func xmlUnescape(s string) string {
	r := strings.NewReplacer("&lt;", "<", "&gt;", ">", "&amp;", "&")
	return r.Replace(s)
}

func xmlEncode(b *strings.Builder, tag string, d *Desc, v reflect.Value) error {
	fmt.Fprintf(b, "<%s>", tag)
	switch d.Kind {
	case KindBool:
		fmt.Fprintf(b, "%t", v.Bool())
	case KindInt8, KindInt16, KindInt32, KindInt64:
		fmt.Fprintf(b, "%d", v.Int())
	case KindUint8, KindUint16, KindUint32, KindUint64:
		fmt.Fprintf(b, "%d", v.Uint())
	case KindFloat32:
		fmt.Fprintf(b, "%g", v.Float())
	case KindFloat64:
		fmt.Fprintf(b, "%.17g", v.Float())
	case KindString:
		b.WriteString(xmlEscape(v.String()))
	case KindStruct:
		for _, f := range d.Fields {
			if err := xmlEncode(b, f.Name, f.Desc, v.FieldByName(f.Name)); err != nil {
				return err
			}
		}
	case KindSlice, KindArray:
		n := v.Len()
		if d.Kind == KindSlice {
			fmt.Fprintf(b, "<len>%d</len>", n)
		}
		for i := 0; i < n; i++ {
			if err := xmlEncode(b, "item", d.Elem, v.Index(i)); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("codec: xml cannot encode %v", d.Kind)
	}
	fmt.Fprintf(b, "</%s>", tag)
	return nil
}

// Decode implements Codec.
func (XML) Decode(d *Desc, data []byte, to Arch) (any, error) {
	s := string(data)
	if i := strings.Index(s, "?>"); i >= 0 {
		s = s[i+2:]
	}
	p := &xmlParser{s: s}
	out, err := newValueFor(d)
	if err != nil {
		return nil, err
	}
	if err := p.decode("payload", d, out); err != nil {
		return nil, err
	}
	return out.Interface(), nil
}

// xmlParser is a minimal recursive-descent parser for the emitter's
// output (a strict subset of XML).
type xmlParser struct {
	s   string
	pos int
}

func (p *xmlParser) expect(tok string) error {
	if !strings.HasPrefix(p.s[p.pos:], tok) {
		end := p.pos + 20
		if end > len(p.s) {
			end = len(p.s)
		}
		return fmt.Errorf("codec: xml expected %q at %q", tok, p.s[p.pos:end])
	}
	p.pos += len(tok)
	return nil
}

// text reads until the next '<'.
func (p *xmlParser) text() string {
	start := p.pos
	for p.pos < len(p.s) && p.s[p.pos] != '<' {
		p.pos++
	}
	return p.s[start:p.pos]
}

func (p *xmlParser) decode(tag string, d *Desc, v reflect.Value) error {
	if err := p.expect("<" + tag + ">"); err != nil {
		return err
	}
	switch d.Kind {
	case KindBool:
		t := p.text()
		v.SetBool(t == "true")
	case KindInt8, KindInt16, KindInt32, KindInt64:
		n, err := strconv.ParseInt(p.text(), 10, 64)
		if err != nil {
			return fmt.Errorf("codec: xml int: %w", err)
		}
		v.SetInt(n)
	case KindUint8, KindUint16, KindUint32, KindUint64:
		n, err := strconv.ParseUint(p.text(), 10, 64)
		if err != nil {
			return fmt.Errorf("codec: xml uint: %w", err)
		}
		v.SetUint(n)
	case KindFloat32, KindFloat64:
		f, err := strconv.ParseFloat(p.text(), 64)
		if err != nil {
			return fmt.Errorf("codec: xml float: %w", err)
		}
		v.SetFloat(f)
	case KindString:
		v.SetString(xmlUnescape(p.text()))
	case KindStruct:
		for _, f := range d.Fields {
			if err := p.decode(f.Name, f.Desc, v.FieldByName(f.Name)); err != nil {
				return err
			}
		}
	case KindSlice:
		if err := p.expect("<len>"); err != nil {
			return err
		}
		n, err := strconv.Atoi(p.text())
		if err != nil {
			return fmt.Errorf("codec: xml slice len: %w", err)
		}
		if err := p.expect("</len>"); err != nil {
			return err
		}
		if n < 0 || n > len(p.s) {
			return fmt.Errorf("codec: xml slice len %d out of bounds", n)
		}
		sl := reflect.MakeSlice(v.Type(), n, n)
		for i := 0; i < n; i++ {
			if err := p.decode("item", d.Elem, sl.Index(i)); err != nil {
				return err
			}
		}
		v.Set(sl)
	case KindArray:
		for i := 0; i < d.Len; i++ {
			if err := p.decode("item", d.Elem, v.Index(i)); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("codec: xml cannot decode %v", d.Kind)
	}
	return p.expect("</" + tag + ">")
}
