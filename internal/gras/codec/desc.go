// Package codec implements the wire formats compared in the paper's
// Pastry experiment: the GRAS native NDR format ("receiver makes it
// right": data travels in the sender's representation and is only
// converted on heterogeneous exchanges), an MPICH-like canonical XDR
// format, an OmniORB-like CDR format, a PBIO-like self-describing
// binary format, and a plain-text XML format.
//
// All codecs serialize Go values through the same architecture
// descriptors and type descriptions, so the comparison measures exactly
// what the paper's tables measure: wire-format encode/decode cost and
// bytes on the wire between architectures of different endianness.
package codec

import (
	"errors"
	"fmt"
	"reflect"
)

// Kind is the category of a described type.
type Kind int

// Description kinds.
const (
	KindInvalid Kind = iota
	KindBool
	KindInt8
	KindInt16
	KindInt32
	KindInt64
	KindUint8
	KindUint16
	KindUint32
	KindUint64
	KindFloat32
	KindFloat64
	KindString
	KindStruct
	KindSlice // dynamically sized array
	KindArray // fixed-size array
)

var kindNames = map[Kind]string{
	KindBool: "bool", KindInt8: "int8", KindInt16: "int16",
	KindInt32: "int32", KindInt64: "int64", KindUint8: "uint8",
	KindUint16: "uint16", KindUint32: "uint32", KindUint64: "uint64",
	KindFloat32: "float32", KindFloat64: "float64", KindString: "string",
	KindStruct: "struct", KindSlice: "slice", KindArray: "array",
}

func (k Kind) String() string {
	if n, ok := kindNames[k]; ok {
		return n
	}
	return "invalid"
}

// FixedSize returns the wire size in bytes of fixed-width kinds, or 0
// for variable-size kinds (string, struct, slice, array).
func (k Kind) FixedSize() int {
	switch k {
	case KindBool, KindInt8, KindUint8:
		return 1
	case KindInt16, KindUint16:
		return 2
	case KindInt32, KindUint32, KindFloat32:
		return 4
	case KindInt64, KindUint64, KindFloat64:
		return 8
	default:
		return 0
	}
}

// Field is a named member of a struct description.
type Field struct {
	Name string
	Desc *Desc
}

// Desc describes a type for cross-architecture exchange.
type Desc struct {
	Name   string
	Kind   Kind
	Fields []Field // KindStruct
	Elem   *Desc   // KindSlice / KindArray
	Len    int     // KindArray

	goType reflect.Type
}

// GoType returns the reflect.Type the description was derived from.
func (d *Desc) GoType() reflect.Type { return d.goType }

// ErrUnsupported reports a Go type the data-description system cannot
// exchange (pointers, maps, channels, interfaces, functions).
var ErrUnsupported = errors.New("gras: unsupported type for data description")

// Describe derives the description of a Go value's type. Supported:
// booleans, fixed-width and platform integers, floats, strings, structs
// of supported types (exported fields only), slices and fixed arrays.
func Describe(v any) (*Desc, error) {
	if v == nil {
		return nil, fmt.Errorf("%w: nil", ErrUnsupported)
	}
	return describeType(reflect.TypeOf(v))
}

func describeType(t reflect.Type) (*Desc, error) {
	d := &Desc{Name: t.String(), goType: t}
	switch t.Kind() {
	case reflect.Bool:
		d.Kind = KindBool
	case reflect.Int8:
		d.Kind = KindInt8
	case reflect.Int16:
		d.Kind = KindInt16
	case reflect.Int32:
		d.Kind = KindInt32
	case reflect.Int64, reflect.Int:
		d.Kind = KindInt64
	case reflect.Uint8:
		d.Kind = KindUint8
	case reflect.Uint16:
		d.Kind = KindUint16
	case reflect.Uint32:
		d.Kind = KindUint32
	case reflect.Uint64, reflect.Uint:
		d.Kind = KindUint64
	case reflect.Float32:
		d.Kind = KindFloat32
	case reflect.Float64:
		d.Kind = KindFloat64
	case reflect.String:
		d.Kind = KindString
	case reflect.Struct:
		d.Kind = KindStruct
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			if !f.IsExported() {
				continue
			}
			fd, err := describeType(f.Type)
			if err != nil {
				return nil, fmt.Errorf("field %s.%s: %w", t.Name(), f.Name, err)
			}
			d.Fields = append(d.Fields, Field{Name: f.Name, Desc: fd})
		}
	case reflect.Slice:
		ed, err := describeType(t.Elem())
		if err != nil {
			return nil, err
		}
		d.Kind = KindSlice
		d.Elem = ed
	case reflect.Array:
		ed, err := describeType(t.Elem())
		if err != nil {
			return nil, err
		}
		d.Kind = KindArray
		d.Elem = ed
		d.Len = t.Len()
	default:
		return nil, fmt.Errorf("%w: %s", ErrUnsupported, t.Kind())
	}
	return d, nil
}
