// Architecture descriptors: the data-representation identity of a host.

package codec

// ByteOrder tags the endianness of an architecture.
type ByteOrder int

// Byte orders.
const (
	LittleEndian ByteOrder = iota
	BigEndian
)

func (b ByteOrder) String() string {
	if b == BigEndian {
		return "big-endian"
	}
	return "little-endian"
}

// Arch describes a CPU architecture's in-memory data representation.
// The paper's GRAS ran on 12 CPU architectures; the NDR wire format
// tags every message with the sender's architecture so that conversion
// only happens on heterogeneous exchanges and is paid by the receiver
// ("receiver makes it right").
type Arch struct {
	ID    byte
	Name  string
	Order ByteOrder
}

// The three architectures of the paper's Pastry experiment.
var (
	ArchX86     = Arch{ID: 0, Name: "x86", Order: LittleEndian}
	ArchSparc   = Arch{ID: 1, Name: "sparc", Order: BigEndian}
	ArchPowerPC = Arch{ID: 2, Name: "ppc", Order: BigEndian}
)

// Archs lists the known architectures indexed by ID.
var Archs = []Arch{ArchX86, ArchSparc, ArchPowerPC}

// ArchByName resolves an architecture by name ("" defaults to x86).
func ArchByName(name string) (Arch, bool) {
	if name == "" {
		return ArchX86, true
	}
	for _, a := range Archs {
		if a.Name == name {
			return a, true
		}
	}
	return Arch{}, false
}

// ArchByID resolves an architecture by wire ID.
func ArchByID(id byte) (Arch, bool) {
	if int(id) < len(Archs) {
		return Archs[id], true
	}
	return Arch{}, false
}
