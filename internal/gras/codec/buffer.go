// Byte-level encode/decode helpers with explicit endianness. The swap
// work on heterogeneous exchanges is really performed, so benchmarks of
// the codecs measure genuine conversion cost.

package codec

import (
	"errors"
	"math"
)

// ErrShortBuffer reports truncated input during decoding.
var ErrShortBuffer = errors.New("codec: short buffer")

// writer accumulates wire bytes in a chosen byte order.
type writer struct {
	buf   []byte
	order ByteOrder
}

func newWriter(order ByteOrder) *writer {
	return &writer{buf: make([]byte, 0, 256), order: order}
}

func (w *writer) bytes() []byte { return w.buf }

func (w *writer) u8(v byte) { w.buf = append(w.buf, v) }

func (w *writer) u16(v uint16) {
	if w.order == BigEndian {
		w.buf = append(w.buf, byte(v>>8), byte(v))
	} else {
		w.buf = append(w.buf, byte(v), byte(v>>8))
	}
}

func (w *writer) u32(v uint32) {
	if w.order == BigEndian {
		w.buf = append(w.buf, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
	} else {
		w.buf = append(w.buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
}

func (w *writer) u64(v uint64) {
	if w.order == BigEndian {
		w.buf = append(w.buf,
			byte(v>>56), byte(v>>48), byte(v>>40), byte(v>>32),
			byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
	} else {
		w.buf = append(w.buf,
			byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
			byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
	}
}

func (w *writer) f32(v float32) { w.u32(math.Float32bits(v)) }
func (w *writer) f64(v float64) { w.u64(math.Float64bits(v)) }

func (w *writer) raw(b []byte) { w.buf = append(w.buf, b...) }

// pad appends zero bytes until the length is a multiple of n.
func (w *writer) pad(n int) {
	for len(w.buf)%n != 0 {
		w.buf = append(w.buf, 0)
	}
}

// reader consumes wire bytes in a chosen byte order.
type reader struct {
	buf   []byte
	pos   int
	order ByteOrder
}

func newReader(buf []byte, order ByteOrder) *reader {
	return &reader{buf: buf, order: order}
}

func (r *reader) remaining() int { return len(r.buf) - r.pos }

func (r *reader) u8() (byte, error) {
	if r.remaining() < 1 {
		return 0, ErrShortBuffer
	}
	v := r.buf[r.pos]
	r.pos++
	return v, nil
}

func (r *reader) u16() (uint16, error) {
	if r.remaining() < 2 {
		return 0, ErrShortBuffer
	}
	b := r.buf[r.pos:]
	r.pos += 2
	if r.order == BigEndian {
		return uint16(b[0])<<8 | uint16(b[1]), nil
	}
	return uint16(b[1])<<8 | uint16(b[0]), nil
}

func (r *reader) u32() (uint32, error) {
	if r.remaining() < 4 {
		return 0, ErrShortBuffer
	}
	b := r.buf[r.pos:]
	r.pos += 4
	if r.order == BigEndian {
		return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3]), nil
	}
	return uint32(b[3])<<24 | uint32(b[2])<<16 | uint32(b[1])<<8 | uint32(b[0]), nil
}

func (r *reader) u64() (uint64, error) {
	if r.remaining() < 8 {
		return 0, ErrShortBuffer
	}
	b := r.buf[r.pos:]
	r.pos += 8
	if r.order == BigEndian {
		return uint64(b[0])<<56 | uint64(b[1])<<48 | uint64(b[2])<<40 | uint64(b[3])<<32 |
			uint64(b[4])<<24 | uint64(b[5])<<16 | uint64(b[6])<<8 | uint64(b[7]), nil
	}
	return uint64(b[7])<<56 | uint64(b[6])<<48 | uint64(b[5])<<40 | uint64(b[4])<<32 |
		uint64(b[3])<<24 | uint64(b[2])<<16 | uint64(b[1])<<8 | uint64(b[0]), nil
}

func (r *reader) f32() (float32, error) {
	v, err := r.u32()
	return math.Float32frombits(v), err
}

func (r *reader) f64() (float64, error) {
	v, err := r.u64()
	return math.Float64frombits(v), err
}

func (r *reader) raw(n int) ([]byte, error) {
	if n < 0 || r.remaining() < n {
		return nil, ErrShortBuffer
	}
	b := r.buf[r.pos : r.pos+n]
	r.pos += n
	return b, nil
}

// skipPad consumes alignment padding up to a multiple of n.
func (r *reader) skipPad(n int) error {
	for r.pos%n != 0 {
		if r.remaining() < 1 {
			return ErrShortBuffer
		}
		r.pos++
	}
	return nil
}
