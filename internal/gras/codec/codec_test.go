package codec

import (
	"reflect"
	"testing"
	"testing/quick"
)

// pastryMsg is the message shape used across the codec tests — the same
// Pastry-like routing message the benchmark harness exchanges.
type pastryMsg struct {
	MsgID    uint64
	Hops     int32
	Key      [4]uint32
	SrcDescr string
	Route    []nodeEntry
	Alive    bool
	Load     float64
}

type nodeEntry struct {
	NodeID uint32
	Addr   string
	Metric float32
}

func samplePastry() pastryMsg {
	return pastryMsg{
		MsgID:    0xDEADBEEFCAFE,
		Hops:     3,
		Key:      [4]uint32{1, 2, 3, 0xFFFFFFFF},
		SrcDescr: "node-42.site-a.example.org",
		Route: []nodeEntry{
			{NodeID: 17, Addr: "10.0.0.17:4017", Metric: 0.25},
			{NodeID: 99, Addr: "10.0.3.99:4099", Metric: 1.5},
		},
		Alive: true,
		Load:  0.625,
	}
}

func archPairs() [][2]Arch {
	var out [][2]Arch
	for _, a := range Archs {
		for _, b := range Archs {
			out = append(out, [2]Arch{a, b})
		}
	}
	return out
}

func TestDescribePastry(t *testing.T) {
	d, err := Describe(pastryMsg{})
	if err != nil {
		t.Fatalf("Describe: %v", err)
	}
	if d.Kind != KindStruct || len(d.Fields) != 7 {
		t.Fatalf("desc = %+v", d)
	}
	if d.Fields[2].Desc.Kind != KindArray || d.Fields[2].Desc.Len != 4 {
		t.Errorf("Key field: %+v", d.Fields[2].Desc)
	}
	if d.Fields[4].Desc.Kind != KindSlice || d.Fields[4].Desc.Elem.Kind != KindStruct {
		t.Errorf("Route field: %+v", d.Fields[4].Desc)
	}
}

func TestDescribeRejectsUnsupported(t *testing.T) {
	for _, v := range []any{
		nil,
		map[string]int{},
		make(chan int),
		func() {},
		&struct{}{},
		struct{ P *int }{},
	} {
		if _, err := Describe(v); err == nil {
			t.Errorf("Describe(%T) succeeded, want error", v)
		}
	}
}

func TestDescribeSkipsUnexported(t *testing.T) {
	type mixed struct {
		Public  int32
		private string //nolint:unused — exercised via reflection
	}
	d, err := Describe(mixed{})
	if err != nil {
		t.Fatalf("Describe: %v", err)
	}
	if len(d.Fields) != 1 || d.Fields[0].Name != "Public" {
		t.Errorf("fields = %+v", d.Fields)
	}
}

// Round-trip of the Pastry message through every codec and every
// architecture pair.
func TestRoundTripAllCodecsAllArchs(t *testing.T) {
	msg := samplePastry()
	d, err := Describe(msg)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range All() {
		for _, pair := range archPairs() {
			from, to := pair[0], pair[1]
			frame, err := c.Encode(d, msg, from)
			if err != nil {
				t.Errorf("%s %s->%s encode: %v", c.Name(), from.Name, to.Name, err)
				continue
			}
			got, err := c.Decode(d, frame, to)
			if err != nil {
				t.Errorf("%s %s->%s decode: %v", c.Name(), from.Name, to.Name, err)
				continue
			}
			if !reflect.DeepEqual(got, msg) {
				t.Errorf("%s %s->%s: round trip mismatch\ngot  %+v\nwant %+v",
					c.Name(), from.Name, to.Name, got, msg)
			}
		}
	}
}

func TestEmptySliceRoundTrip(t *testing.T) {
	msg := pastryMsg{Route: []nodeEntry{}}
	d, _ := Describe(msg)
	for _, c := range All() {
		frame, err := c.Encode(d, msg, ArchX86)
		if err != nil {
			t.Fatalf("%s encode: %v", c.Name(), err)
		}
		got, err := c.Decode(d, frame, ArchSparc)
		if err != nil {
			t.Fatalf("%s decode: %v", c.Name(), err)
		}
		if len(got.(pastryMsg).Route) != 0 {
			t.Errorf("%s: route not empty", c.Name())
		}
	}
}

func TestScalarsRoundTrip(t *testing.T) {
	type scalars struct {
		B   bool
		I8  int8
		I16 int16
		I32 int32
		I64 int64
		U8  uint8
		U16 uint16
		U32 uint32
		U64 uint64
		F32 float32
		F64 float64
		S   string
	}
	v := scalars{
		B: true, I8: -8, I16: -1600, I32: -320000, I64: -1 << 40,
		U8: 200, U16: 65000, U32: 4e9, U64: 1 << 60,
		F32: 3.25, F64: -2.5e-10, S: "héllo <world> & others",
	}
	d, err := Describe(v)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range All() {
		for _, pair := range archPairs() {
			frame, err := c.Encode(d, v, pair[0])
			if err != nil {
				t.Fatalf("%s encode: %v", c.Name(), err)
			}
			got, err := c.Decode(d, frame, pair[1])
			if err != nil {
				t.Fatalf("%s decode (%s->%s): %v", c.Name(), pair[0].Name, pair[1].Name, err)
			}
			if got.(scalars) != v {
				t.Errorf("%s %s->%s: %+v != %+v", c.Name(), pair[0].Name, pair[1].Name, got, v)
			}
		}
	}
}

func TestNDRHomogeneousIsNative(t *testing.T) {
	// On a homogeneous exchange, NDR's payload bytes are the sender's
	// native representation: first byte after the arch tag of a u32
	// 0x01020304 on x86 (LE) must be 0x04.
	type one struct{ X uint32 }
	d, _ := Describe(one{})
	frame, err := NDR{}.Encode(d, one{X: 0x01020304}, ArchX86)
	if err != nil {
		t.Fatal(err)
	}
	if frame[0] != ArchX86.ID || frame[1] != 0x04 {
		t.Errorf("frame = % x, want arch byte then LE payload", frame[:5])
	}
	frameBE, _ := NDR{}.Encode(d, one{X: 0x01020304}, ArchSparc)
	if frameBE[1] != 0x01 {
		t.Errorf("sparc frame = % x, want BE payload", frameBE[:5])
	}
}

func TestXDRIsCanonicalBigEndian(t *testing.T) {
	type one struct{ X uint32 }
	d, _ := Describe(one{})
	le, _ := XDR{}.Encode(d, one{X: 0x01020304}, ArchX86)
	be, _ := XDR{}.Encode(d, one{X: 0x01020304}, ArchSparc)
	if string(le) != string(be) {
		t.Error("XDR output depends on sender architecture")
	}
	if le[0] != 0x01 {
		t.Errorf("XDR not big-endian: % x", le)
	}
}

func TestXDRInflatesSmallScalars(t *testing.T) {
	type small struct {
		A int8
		B int8
	}
	d, _ := Describe(small{})
	frame, _ := XDR{}.Encode(d, small{1, 2}, ArchX86)
	if len(frame) != 8 {
		t.Errorf("XDR frame = %d bytes, want 8 (two 4-byte units)", len(frame))
	}
	ndr, _ := NDR{}.Encode(d, small{1, 2}, ArchX86)
	if len(ndr) != 3 { // arch byte + 2 payload bytes
		t.Errorf("NDR frame = %d bytes, want 3", len(ndr))
	}
}

func TestCDRHasGIOPHeaderAndAlignment(t *testing.T) {
	type mix struct {
		A uint8
		B uint64
	}
	d, _ := Describe(mix{})
	frame, err := CDR{}.Encode(d, mix{1, 2}, ArchX86)
	if err != nil {
		t.Fatal(err)
	}
	if string(frame[:4]) != "GIOP" {
		t.Errorf("no GIOP magic: % x", frame[:4])
	}
	// 12 header + 1 (A) + 3 pad + ... wait: u64 aligns to 8 from
	// offset 13 -> pad to 16 -> 8 bytes: total 24.
	if len(frame) != 24 {
		t.Errorf("frame = %d bytes, want 24 with alignment", len(frame))
	}
}

func TestPBIOCarriesMetadata(t *testing.T) {
	type m struct{ FieldWithLongName uint32 }
	d, _ := Describe(m{})
	pb, _ := PBIO{}.Encode(d, m{7}, ArchX86)
	ndr, _ := NDR{}.Encode(d, m{7}, ArchX86)
	if len(pb) <= len(ndr) {
		t.Errorf("PBIO (%d B) not larger than NDR (%d B) despite metadata", len(pb), len(ndr))
	}
	// Metadata must mention the field name.
	if !contains(pb, []byte("FieldWithLongName")) {
		t.Error("field name not in PBIO metadata")
	}
}

func TestPBIORejectsForeignMetadata(t *testing.T) {
	type a struct{ X uint32 }
	type b struct{ Y uint32 }
	da, _ := Describe(a{})
	db, _ := Describe(b{})
	frame, _ := PBIO{}.Encode(da, a{1}, ArchX86)
	if _, err := (PBIO{}).Decode(db, frame, ArchX86); err == nil {
		t.Error("PBIO accepted mismatched metadata")
	}
}

func TestXMLIsTextual(t *testing.T) {
	msg := samplePastry()
	d, _ := Describe(msg)
	frame, err := XML{}.Encode(d, msg, ArchX86)
	if err != nil {
		t.Fatal(err)
	}
	s := string(frame)
	for _, want := range []string{"<MsgID>", "<payload>", "node-42", "<len>2</len>"} {
		if !containsStr(s, want) {
			t.Errorf("XML output missing %q", want)
		}
	}
}

func TestXMLEscaping(t *testing.T) {
	type s struct{ S string }
	d, _ := Describe(s{})
	v := s{S: "<evil> & </payload>"}
	frame, err := XML{}.Encode(d, v, ArchX86)
	if err != nil {
		t.Fatal(err)
	}
	got, err := XML{}.Decode(d, frame, ArchX86)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.(s) != v {
		t.Errorf("escaping broken: %+v", got)
	}
}

func TestDecodeErrorsOnTruncation(t *testing.T) {
	msg := samplePastry()
	d, _ := Describe(msg)
	for _, c := range All() {
		frame, _ := c.Encode(d, msg, ArchX86)
		for _, cut := range []int{0, 1, len(frame) / 2, len(frame) - 1} {
			if _, err := c.Decode(d, frame[:cut], ArchX86); err == nil {
				t.Errorf("%s: decoding %d/%d bytes succeeded", c.Name(), cut, len(frame))
			}
		}
	}
}

func TestDecodeHostileSliceLength(t *testing.T) {
	type s struct{ V []uint64 }
	d, _ := Describe(s{})
	// NDR frame claiming 2^31 elements but carrying none.
	w := newWriter(LittleEndian)
	w.u8(ArchX86.ID)
	w.u32(1 << 31)
	if _, err := (NDR{}).Decode(d, w.bytes(), ArchX86); err == nil {
		t.Error("hostile slice length accepted")
	}
}

func TestCodecByName(t *testing.T) {
	for _, name := range []string{"GRAS", "MPICH", "OmniORB", "PBIO", "XML"} {
		if c := ByName(name); c == nil || c.Name() != name {
			t.Errorf("ByName(%q) = %v", name, c)
		}
	}
	if ByName("nope") != nil {
		t.Error("unknown codec resolved")
	}
}

func TestArchLookups(t *testing.T) {
	if a, ok := ArchByName("sparc"); !ok || a.Order != BigEndian {
		t.Error("sparc lookup wrong")
	}
	if a, ok := ArchByName(""); !ok || a.Name != "x86" {
		t.Error("default arch wrong")
	}
	if _, ok := ArchByName("vax"); ok {
		t.Error("vax resolved")
	}
	if a, ok := ArchByID(2); !ok || a.Name != "ppc" {
		t.Error("ID lookup wrong")
	}
	if _, ok := ArchByID(99); ok {
		t.Error("bad ID resolved")
	}
	if LittleEndian.String() == BigEndian.String() {
		t.Error("order strings equal")
	}
}

func TestKindStringsAndSizes(t *testing.T) {
	if KindUint32.String() != "uint32" || Kind(99).String() != "invalid" {
		t.Error("kind strings wrong")
	}
	if KindUint32.FixedSize() != 4 || KindFloat64.FixedSize() != 8 ||
		KindString.FixedSize() != 0 || KindBool.FixedSize() != 1 {
		t.Error("fixed sizes wrong")
	}
}

// Property: every codec round-trips arbitrary simple structs between
// arbitrary architecture pairs.
func TestRoundTripProperty(t *testing.T) {
	type payload struct {
		A int32
		B uint64
		C string
		D []int16
		E float64
	}
	d, err := Describe(payload{})
	if err != nil {
		t.Fatal(err)
	}
	codecs := All()
	f := func(a int32, b uint64, c string, dd []int16, e float64, ci, fi, ti uint8) bool {
		v := payload{A: a, B: b, C: c, D: dd, E: e}
		cdc := codecs[int(ci)%len(codecs)]
		from := Archs[int(fi)%len(Archs)]
		to := Archs[int(ti)%len(Archs)]
		frame, err := cdc.Encode(d, v, from)
		if err != nil {
			return false
		}
		got, err := cdc.Decode(d, frame, to)
		if err != nil {
			return false
		}
		g := got.(payload)
		if g.A != v.A || g.B != v.B || g.C != v.C || len(g.D) != len(v.D) {
			return false
		}
		for i := range g.D {
			if g.D[i] != v.D[i] {
				return false
			}
		}
		// NaN-safe float comparison.
		return (g.E == v.E) || (g.E != g.E && v.E != v.E)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func contains(hay, needle []byte) bool {
	return containsStr(string(hay), string(needle))
}

func containsStr(hay, needle string) bool {
	for i := 0; i+len(needle) <= len(hay); i++ {
		if hay[i:i+len(needle)] == needle {
			return true
		}
	}
	return false
}
