// Simulation transport: GRAS agents running as simulated processes on
// the SURF virtual platform. Message bytes travel through the fluid
// network model; payload decoding happens on the receiving agent with
// its architecture, so cross-architecture conversion costs appear
// exactly where they would in the real world.

package gras

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/surf"
)

// World is a simulated universe of GRAS agents (the "simulation mode"
// counterpart of running each agent as a real OS process).
type World struct {
	eng   *core.Engine
	model *surf.Model
	pf    *platform.Platform
	reg   *Registry

	listeners map[string]*simNode // "host:port" -> agent
	nodes     []*simNode

	// BenchScale scales measured Bench durations before injecting them
	// into virtual time (1.0 = wall seconds become virtual seconds on a
	// reference-speed host). Mostly useful to make tests deterministic.
	BenchScale float64
}

// NewWorld builds a simulation world on a platform.
func NewWorld(pf *platform.Platform, cfg surf.Config) *World {
	eng := core.New()
	return &World{
		eng:        eng,
		model:      surf.New(eng, pf, cfg),
		pf:         pf,
		reg:        NewRegistry(),
		listeners:  make(map[string]*simNode),
		BenchScale: 1.0,
	}
}

// Registry returns the world's shared message registry.
func (w *World) Registry() *Registry { return w.reg }

// Engine exposes the kernel (tests, integration with other layers).
func (w *World) Engine() *core.Engine { return w.eng }

// Platform returns the simulated platform.
func (w *World) Platform() *platform.Platform { return w.pf }

// Launch creates a GRAS agent running fn on a host. The agent's
// architecture comes from the host property "arch" (default x86).
func (w *World) Launch(name, hostName string, fn func(Node) error) error {
	h := w.pf.Host(hostName)
	if h == nil {
		return fmt.Errorf("gras: unknown host %q", hostName)
	}
	arch, ok := ArchByName(h.Property("arch"))
	if !ok {
		return fmt.Errorf("gras: host %q has unknown arch %q", hostName, h.Property("arch"))
	}
	n := &simNode{world: w, name: name, host: h, arch: arch}
	w.nodes = append(w.nodes, n)
	n.proc = w.eng.Spawn(name, h, func(p *core.Process) {
		n.err = fn(n)
	})
	n.proc.OnExit(func(error) { n.close() })
	return nil
}

// LaunchDaemon is Launch for server agents that loop forever: the
// simulation may end while they are still blocked.
func (w *World) LaunchDaemon(name, hostName string, fn func(Node) error) error {
	if err := w.Launch(name, hostName, fn); err != nil {
		return err
	}
	w.nodes[len(w.nodes)-1].proc.Daemonize()
	return nil
}

// Run executes the simulated world to completion.
func (w *World) Run() error { return w.eng.Run() }

// Now returns the current virtual time.
func (w *World) Now() float64 { return w.eng.Now() }

// NodeError returns the error returned by a launched agent's function.
func (w *World) NodeError(name string) error {
	for _, n := range w.nodes {
		if n.name == name {
			return n.err
		}
	}
	return fmt.Errorf("gras: unknown agent %q", name)
}

// simEndpoint is the simulation side of a Socket.
type simEndpoint struct {
	owner *simNode
	peer  *simNode
}

// inMsg is a message queued at an agent, still in wire form.
type inMsg struct {
	frame []byte
	from  *simNode
}

// simNode is a simulated GRAS agent.
type simNode struct {
	world *World
	name  string
	host  *platform.Host
	arch  Arch
	proc  *core.Process

	ports  []int
	inbox  []*inMsg
	cbs    map[string]Callback
	closed bool
	err    error

	// recvWait is non-nil while the agent blocks in Recv/Handle.
	recvWait *recvWaiter
}

type recvWaiter struct {
	msgType string // "" accepts anything
	got     *inMsg
}

func (n *simNode) Name() string        { return n.name }
func (n *simNode) Arch() Arch          { return n.arch }
func (n *simNode) Registry() *Registry { return n.world.reg }
func (n *simNode) Clock() float64      { return n.world.eng.Now() }

func (n *simNode) Sleep(d float64) error { return n.proc.Sleep(d) }

func (n *simNode) close() {
	if n.closed {
		return
	}
	n.closed = true
	for _, p := range n.ports {
		delete(n.world.listeners, listenKey(n.host.Name, p))
	}
}

func listenKey(host string, port int) string { return fmt.Sprintf("%s:%d", host, port) }

// Listen implements Node.
func (n *simNode) Listen(port int) error {
	if n.closed {
		return ErrClosed
	}
	key := listenKey(n.host.Name, port)
	if other, busy := n.world.listeners[key]; busy && other != n {
		return fmt.Errorf("gras: %s already in use by %q", key, other.name)
	}
	n.world.listeners[key] = n
	n.ports = append(n.ports, port)
	return nil
}

// Client implements Node.
func (n *simNode) Client(host string, port int) (*Socket, error) {
	if n.closed {
		return nil, ErrClosed
	}
	peer, ok := n.world.listeners[listenKey(host, port)]
	if !ok {
		return nil, fmt.Errorf("%w: %s:%d", ErrRefused, host, port)
	}
	return &Socket{
		Peer: listenKey(host, port),
		sim:  &simEndpoint{owner: n, peer: peer},
	}, nil
}

// Send implements Node: the frame's bytes cross the virtual network
// (sharing bandwidth with everything else in flight), then land in the
// peer's inbox.
func (n *simNode) Send(s *Socket, msgType string, payload any) error {
	if n.closed {
		return ErrClosed
	}
	if s == nil || s.sim == nil {
		return fmt.Errorf("gras: Send on a non-simulation socket")
	}
	frame, err := encodeFrame(n.world.reg, msgType, payload, n.arch)
	if err != nil {
		return err
	}
	peer := s.sim.peer
	a, err := n.world.model.Communicate(n.host.Name, peer.host.Name, float64(len(frame)))
	if err != nil {
		return err
	}
	werr := a.Wait(n.proc)
	a.Release() // the action never escapes this frame
	if werr != nil {
		return werr
	}
	m := &inMsg{frame: frame, from: n}
	peer.deliver(m)
	return nil
}

// deliver places a message in the inbox and wakes a matching waiter.
func (n *simNode) deliver(m *inMsg) {
	if n.closed {
		return // messages to dead agents vanish
	}
	if w := n.recvWait; w != nil && (w.msgType == "" || w.msgType == frameType(m.frame)) {
		w.got = m
		n.recvWait = nil
		n.world.eng.Wake(n.proc, nil)
		return
	}
	n.inbox = append(n.inbox, m)
}

// frameType peeks the message type of a wire frame.
func frameType(frame []byte) string {
	if len(frame) < 2 {
		return ""
	}
	tl := int(frame[0])<<8 | int(frame[1])
	if len(frame) < 2+tl {
		return ""
	}
	return string(frame[2 : 2+tl])
}

// takeFromInbox pops the first queued message matching msgType.
func (n *simNode) takeFromInbox(msgType string) *inMsg {
	for i, m := range n.inbox {
		if msgType == "" || frameType(m.frame) == msgType {
			n.inbox = append(n.inbox[:i], n.inbox[i+1:]...)
			return m
		}
	}
	return nil
}

// Recv implements Node.
func (n *simNode) Recv(msgType string, timeout float64) (*Msg, error) {
	m, err := n.recvRaw(msgType, timeout)
	if err != nil {
		return nil, err
	}
	return n.finish(m)
}

func (n *simNode) recvRaw(msgType string, timeout float64) (*inMsg, error) {
	if n.closed {
		return nil, ErrClosed
	}
	if m := n.takeFromInbox(msgType); m != nil {
		return m, nil
	}
	w := &recvWaiter{msgType: msgType}
	n.recvWait = w
	var timer *core.Timer
	if timeout > 0 {
		timer = n.world.eng.After(timeout, func() {
			if n.recvWait == w {
				n.recvWait = nil
				n.world.eng.Wake(n.proc, ErrTimeout)
			}
		})
	}
	err := n.proc.BlockOn(core.SimcallRecv)
	if timer != nil {
		timer.Cancel()
	}
	if err != nil {
		return nil, err
	}
	if w.got == nil {
		return nil, fmt.Errorf("gras: woken without a message")
	}
	return w.got, nil
}

// finish decodes a raw message on this agent's architecture.
func (n *simNode) finish(m *inMsg) (*Msg, error) {
	msgType, payload, err := decodeFrame(n.world.reg, m.frame, n.arch)
	if err != nil {
		return nil, err
	}
	return &Msg{
		Type:    msgType,
		Payload: payload,
		From:    m.from.host.Name,
		Reply:   &Socket{Peer: m.from.name, sim: &simEndpoint{owner: n, peer: m.from}},
	}, nil
}

// RegisterCB implements Node.
func (n *simNode) RegisterCB(msgType string, cb Callback) {
	if n.cbs == nil {
		n.cbs = make(map[string]Callback)
	}
	n.cbs[msgType] = cb
}

// Handle implements Node.
func (n *simNode) Handle(timeout float64) error {
	m, err := n.recvRaw("", timeout)
	if err != nil {
		return err
	}
	msg, err := n.finish(m)
	if err != nil {
		return err
	}
	cb := n.cbs[msg.Type]
	if cb == nil {
		return fmt.Errorf("gras: no callback for message %q", msg.Type)
	}
	return cb(n, msg)
}

// Bench implements Node: fn's real duration is measured and injected as
// a computation on the agent's host, so the virtual clock advances by
// the benchmarked time (scaled by the host's availability), exactly
// like GRAS_BENCH_ALWAYS_BEGIN/END.
func (n *simNode) Bench(fn func()) (float64, error) {
	t0 := time.Now() //lint:allow det-wallclock execution-driven seam: real compute is measured once, then injected as simulated flops
	fn()
	dt := time.Since(t0).Seconds() * n.world.BenchScale //lint:allow det-wallclock execution-driven seam: real compute is measured once, then injected as simulated flops
	// The measurement machine is taken as the reference: dt seconds of
	// real work become dt × Power flops on this host.
	a, err := n.world.model.Execute(n.host.Name, dt*n.host.Power, 1)
	if err != nil {
		return dt, err
	}
	werr := a.Wait(n.proc)
	a.Release()
	return dt, werr
}
