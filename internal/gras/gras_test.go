package gras

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/platform"
	"repro/internal/surf"
)

func exact() surf.Config { return surf.Config{BandwidthFactor: 1, LatencyFactor: 1} }

// grasPlatform: two hosts with different architectures over a LAN link.
func grasPlatform(t *testing.T) *platform.Platform {
	t.Helper()
	p := platform.New()
	p.AddHost(&platform.Host{Name: "cli", Power: 1e9,
		Properties: map[string]string{"arch": "x86"}})
	p.AddHost(&platform.Host{Name: "srv", Power: 1e9,
		Properties: map[string]string{"arch": "sparc"}})
	l := &platform.Link{Name: "lan", Bandwidth: 1.25e7, Latency: 0.0001}
	if err := p.AddRoute("cli", "srv", []*platform.Link{l}); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestRegistryDeclareLookup(t *testing.T) {
	reg := NewRegistry()
	if _, err := reg.Declare("ping", int32(0)); err != nil {
		t.Fatalf("Declare: %v", err)
	}
	if _, err := reg.Declare("ping", int32(0)); err != nil {
		t.Errorf("idempotent redeclare failed: %v", err)
	}
	if _, err := reg.Declare("ping", "different type"); err == nil {
		t.Error("conflicting redeclare accepted")
	}
	if _, ok := reg.Lookup("ping"); !ok {
		t.Error("Lookup failed")
	}
	if _, ok := reg.Lookup("nope"); ok {
		t.Error("ghost type resolved")
	}
	reg.Declare("alpha", float64(0))
	names := reg.Names()
	if len(names) != 2 || names[0] != "alpha" || names[1] != "ping" {
		t.Errorf("Names = %v", names)
	}
	if _, err := reg.Declare("bad", map[int]int{}); err == nil {
		t.Error("map payload accepted")
	}
}

// The paper's ping-pong, written once against the Node interface.
func pingClient(serverHost string, port int) func(Node) error {
	return func(n Node) error {
		n.Registry().Declare("ping", int32(0))
		n.Registry().Declare("pong", int32(0))
		n.Sleep(0.01) // wait for the server startup (paper: gras_os_sleep)
		peer, err := n.Client(serverHost, port)
		if err != nil {
			return err
		}
		if err := n.Send(peer, "ping", int32(1234)); err != nil {
			return err
		}
		msg, err := n.Recv("pong", 60)
		if err != nil {
			return err
		}
		if got := msg.Payload.(int32); got != 4321 {
			return fmt.Errorf("pong payload = %d, want 4321", got)
		}
		return nil
	}
}

func pingServer(port int) func(Node) error {
	return func(n Node) error {
		n.Registry().Declare("ping", int32(0))
		n.Registry().Declare("pong", int32(0))
		n.RegisterCB("ping", func(n Node, m *Msg) error {
			if m.Payload.(int32) != 1234 {
				return fmt.Errorf("bad ping payload %v", m.Payload)
			}
			return n.Send(m.Reply, "pong", int32(4321))
		})
		if err := n.Listen(port); err != nil {
			return err
		}
		return n.Handle(60)
	}
}

func TestPingPongSimulation(t *testing.T) {
	w := NewWorld(grasPlatform(t), exact())
	if err := w.Launch("server", "srv", pingServer(4000)); err != nil {
		t.Fatal(err)
	}
	if err := w.Launch("client", "cli", pingClient("srv", 4000)); err != nil {
		t.Fatal(err)
	}
	if err := w.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := w.NodeError("client"); err != nil {
		t.Errorf("client: %v", err)
	}
	if err := w.NodeError("server"); err != nil {
		t.Errorf("server: %v", err)
	}
	if w.Now() <= 0.01 {
		t.Errorf("virtual time %g: transfers took no time", w.Now())
	}
}

// The SAME functions run over real TCP — the paper's headline feature.
func TestPingPongRealWorld(t *testing.T) {
	reg := NewRegistry()
	server := NewRealNode("server", ArchSparc, reg)
	defer server.Close()
	client := NewRealNode("client", ArchX86, reg)
	defer client.Close()

	if err := server.Listen(0); err != nil {
		t.Fatal(err)
	}
	addr := server.Addr(0)
	serverErr := make(chan error, 1)
	go func() {
		server.Registry().Declare("ping", int32(0))
		server.Registry().Declare("pong", int32(0))
		server.RegisterCB("ping", func(n Node, m *Msg) error {
			return n.Send(m.Reply, "pong", int32(4321))
		})
		serverErr <- server.Handle(10)
	}()

	client.Registry().Declare("ping", int32(0))
	client.Registry().Declare("pong", int32(0))
	sock, err := client.ClientAddr(addr)
	if err != nil {
		t.Fatalf("ClientAddr: %v", err)
	}
	if err := client.Send(sock, "ping", int32(1234)); err != nil {
		t.Fatalf("Send: %v", err)
	}
	msg, err := client.Recv("pong", 10)
	if err != nil {
		t.Fatalf("Recv: %v", err)
	}
	if msg.Payload.(int32) != 4321 {
		t.Errorf("pong = %v", msg.Payload)
	}
	if err := <-serverErr; err != nil {
		t.Errorf("server Handle: %v", err)
	}
}

func TestCrossArchitecturePayloadSim(t *testing.T) {
	// x86 client sends a struct to a sparc server: byte order differs,
	// NDR must convert on receipt.
	type payload struct {
		A uint32
		B string
		C []float64
	}
	w := NewWorld(grasPlatform(t), exact())
	var got payload
	w.Launch("server", "srv", func(n Node) error {
		n.Registry().Declare("data", payload{})
		if err := n.Listen(4000); err != nil {
			return err
		}
		m, err := n.Recv("data", 60)
		if err != nil {
			return err
		}
		got = m.Payload.(payload)
		return nil
	})
	w.Launch("client", "cli", func(n Node) error {
		n.Registry().Declare("data", payload{})
		n.Sleep(0.01)
		s, err := n.Client("srv", 4000)
		if err != nil {
			return err
		}
		return n.Send(s, "data", payload{A: 0xCAFEBABE, B: "hello", C: []float64{1.5, -2.5}})
	})
	if err := w.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := w.NodeError("server"); err != nil {
		t.Fatalf("server: %v", err)
	}
	if got.A != 0xCAFEBABE || got.B != "hello" || len(got.C) != 2 || got.C[1] != -2.5 {
		t.Errorf("payload corrupted across architectures: %+v", got)
	}
}

func TestSimMessageTakesNetworkTime(t *testing.T) {
	// 1.25 MB over a 12.5 MB/s link = 0.1 s + latency.
	w := NewWorld(grasPlatform(t), exact())
	type blob struct{ Data []uint8 }
	var recvAt float64
	w.Launch("server", "srv", func(n Node) error {
		n.Registry().Declare("blob", blob{})
		n.Listen(1)
		_, err := n.Recv("blob", 60)
		recvAt = n.Clock()
		return err
	})
	w.Launch("client", "cli", func(n Node) error {
		n.Registry().Declare("blob", blob{})
		n.Sleep(0.001)
		s, _ := n.Client("srv", 1)
		return n.Send(s, "blob", blob{Data: make([]uint8, 1250000)})
	})
	if err := w.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if recvAt < 0.1 {
		t.Errorf("1.25MB arrived at %g s, want >= 0.1 s", recvAt)
	}
	if recvAt > 0.2 {
		t.Errorf("1.25MB took %g s, too slow", recvAt)
	}
}

func TestRecvTimeoutSim(t *testing.T) {
	w := NewWorld(grasPlatform(t), exact())
	var gotErr error
	w.Launch("waiter", "srv", func(n Node) error {
		n.Listen(9)
		_, gotErr = n.Recv("never", 0.5)
		return nil
	})
	if err := w.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !errors.Is(gotErr, ErrTimeout) {
		t.Errorf("Recv = %v, want ErrTimeout", gotErr)
	}
	if w.Now() != 0.5 {
		t.Errorf("timed out at %g", w.Now())
	}
}

func TestConnectionRefusedSim(t *testing.T) {
	w := NewWorld(grasPlatform(t), exact())
	var gotErr error
	w.Launch("client", "cli", func(n Node) error {
		_, gotErr = n.Client("srv", 12345)
		return nil
	})
	if err := w.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !errors.Is(gotErr, ErrRefused) {
		t.Errorf("Client = %v, want ErrRefused", gotErr)
	}
}

func TestPortCollisionSim(t *testing.T) {
	w := NewWorld(grasPlatform(t), exact())
	var err1, err2 error
	w.Launch("a", "srv", func(n Node) error {
		err1 = n.Listen(80)
		n.Sleep(1)
		return nil
	})
	w.Launch("b", "srv", func(n Node) error {
		n.Sleep(0.1)
		err2 = n.Listen(80)
		return nil
	})
	if err := w.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err1 != nil {
		t.Errorf("first Listen: %v", err1)
	}
	if err2 == nil {
		t.Error("port collision not detected")
	}
}

func TestUndeclaredMessageRejected(t *testing.T) {
	w := NewWorld(grasPlatform(t), exact())
	var sendErr error
	w.Launch("server", "srv", func(n Node) error {
		n.Listen(4)
		n.Sleep(1)
		return nil
	})
	w.Launch("client", "cli", func(n Node) error {
		n.Sleep(0.01)
		s, err := n.Client("srv", 4)
		if err != nil {
			return err
		}
		sendErr = n.Send(s, "mystery", int32(1))
		return nil
	})
	if err := w.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !errors.Is(sendErr, ErrUnknownMessage) {
		t.Errorf("Send = %v, want ErrUnknownMessage", sendErr)
	}
}

func TestHandleDispatchesToCallback(t *testing.T) {
	w := NewWorld(grasPlatform(t), exact())
	calls := 0
	w.LaunchDaemon("server", "srv", func(n Node) error {
		n.Registry().Declare("evt", uint8(0))
		n.RegisterCB("evt", func(n Node, m *Msg) error {
			calls++
			return nil
		})
		n.Listen(5)
		for {
			if err := n.Handle(60); err != nil {
				return err
			}
		}
	})
	w.Launch("client", "cli", func(n Node) error {
		n.Registry().Declare("evt", uint8(0))
		n.Sleep(0.01)
		s, err := n.Client("srv", 5)
		if err != nil {
			return err
		}
		for i := 0; i < 3; i++ {
			if err := n.Send(s, "evt", uint8(i)); err != nil {
				return err
			}
		}
		return n.Sleep(0.1) // let the last event arrive
	})
	if err := w.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if calls != 3 {
		t.Errorf("callback ran %d times, want 3", calls)
	}
}

func TestHandleWithoutCallbackErrors(t *testing.T) {
	w := NewWorld(grasPlatform(t), exact())
	var handleErr error
	w.Launch("server", "srv", func(n Node) error {
		n.Registry().Declare("x", int32(0))
		n.Listen(6)
		handleErr = n.Handle(60)
		return nil
	})
	w.Launch("client", "cli", func(n Node) error {
		n.Registry().Declare("x", int32(0))
		n.Sleep(0.01)
		s, _ := n.Client("srv", 6)
		return n.Send(s, "x", int32(5))
	})
	if err := w.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if handleErr == nil || !strings.Contains(handleErr.Error(), "no callback") {
		t.Errorf("Handle = %v, want no-callback error", handleErr)
	}
}

func TestBenchAdvancesVirtualClock(t *testing.T) {
	w := NewWorld(grasPlatform(t), exact())
	w.BenchScale = 1000 // amplify the tiny real duration
	var before, after float64
	w.Launch("worker", "srv", func(n Node) error {
		before = n.Clock()
		_, err := n.Bench(func() {
			s := 0
			for i := 0; i < 100000; i++ {
				s += i
			}
			_ = s
		})
		after = n.Clock()
		return err
	})
	if err := w.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if after <= before {
		t.Errorf("Bench did not advance virtual time (%g -> %g)", before, after)
	}
}

func TestLaunchUnknownHost(t *testing.T) {
	w := NewWorld(grasPlatform(t), exact())
	if err := w.Launch("x", "ghost", func(Node) error { return nil }); err == nil {
		t.Error("unknown host accepted")
	}
}

func TestNodeErrorUnknownAgent(t *testing.T) {
	w := NewWorld(grasPlatform(t), exact())
	if err := w.NodeError("nobody"); err == nil {
		t.Error("unknown agent lookup succeeded")
	}
}

func TestWorldAccessors(t *testing.T) {
	pf := grasPlatform(t)
	w := NewWorld(pf, exact())
	if w.Platform() != pf || w.Engine() == nil || w.Registry() == nil {
		t.Error("accessors wrong")
	}
}

func TestRealNodeRecvTimeout(t *testing.T) {
	n := NewRealNode("t", ArchX86, nil)
	defer n.Close()
	if _, err := n.Recv("x", 0.05); !errors.Is(err, ErrTimeout) {
		t.Errorf("Recv = %v, want ErrTimeout", err)
	}
}

func TestRealNodeRefused(t *testing.T) {
	n := NewRealNode("t", ArchX86, nil)
	defer n.Close()
	if _, err := n.ClientAddr("127.0.0.1:1"); !errors.Is(err, ErrRefused) {
		t.Errorf("ClientAddr = %v, want ErrRefused", err)
	}
}

func TestRealNodeBenchRuns(t *testing.T) {
	n := NewRealNode("t", ArchX86, nil)
	defer n.Close()
	ran := false
	dt, err := n.Bench(func() { ran = true })
	if err != nil || !ran || dt < 0 {
		t.Errorf("Bench: ran=%v dt=%g err=%v", ran, dt, err)
	}
}
