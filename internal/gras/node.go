// The Node interface: the API that GRAS application code is written
// against. The same user function runs unmodified on a simNode (inside
// the simulator, sim.go) or a realNode (over real TCP sockets,
// real.go) — the paper's headline GRAS feature.

package gras

import (
	"errors"
	"fmt"

	"repro/internal/gras/codec"
)

// Errors returned by GRAS operations.
var (
	// ErrTimeout reports an expired Recv/Handle timeout.
	ErrTimeout = errors.New("gras: timed out")
	// ErrRefused reports a connection to a port nobody listens on.
	ErrRefused = errors.New("gras: connection refused")
	// ErrUnknownMessage reports an undeclared message type on the wire.
	ErrUnknownMessage = errors.New("gras: unknown message type")
	// ErrClosed reports use of a closed node or socket.
	ErrClosed = errors.New("gras: closed")
)

// Msg is a received message.
type Msg struct {
	Type    string
	Payload any
	// Reply is a socket back to the sender (the paper's "expeditor"),
	// usable with Send.
	Reply *Socket
	// From identifies the sender ("host:port" or TCP address).
	From string
}

// Callback handles one message type (gras_cb_register).
type Callback func(n Node, m *Msg) error

// Node is one GRAS agent: application code receives a Node and uses it
// for all communication, timing and benchmarking, staying agnostic of
// whether it runs simulated or for real.
type Node interface {
	// Name returns the agent name.
	Name() string
	// Arch returns the architecture the agent runs on.
	Arch() Arch
	// Registry returns the message-type registry (shared world-wide in
	// simulation; process-wide for real nodes).
	Registry() *Registry
	// Clock returns the agent's time in seconds (virtual or real).
	Clock() float64
	// Sleep pauses for d seconds (gras_os_sleep).
	Sleep(d float64) error
	// Listen opens a server socket on a port (gras_socket_server).
	Listen(port int) error
	// Client connects to a listening agent (gras_socket_client).
	Client(host string, port int) (*Socket, error)
	// Send emits a declared message over a socket (gras_msg_send).
	Send(s *Socket, msgType string, payload any) error
	// Recv waits for a message of the given type ("" accepts any),
	// with a timeout in seconds (<= 0: wait forever). gras_msg_wait.
	Recv(msgType string, timeout float64) (*Msg, error)
	// RegisterCB installs a callback for a message type.
	RegisterCB(msgType string, cb Callback)
	// Handle waits for one message and dispatches it to its callback
	// (gras_msg_handle).
	Handle(timeout float64) error
	// Bench measures fn's real execution time and accounts it to the
	// agent (in simulation, virtual time advances by the measured
	// duration — the paper's GRAS_BENCH_* blocks; for real nodes it
	// just runs fn). It returns the measured seconds.
	Bench(fn func()) (float64, error)
}

// Socket is a connection endpoint (gras_socket_t).
type Socket struct {
	// Peer is the remote identity ("host:port" in simulation, TCP
	// remote address for real sockets).
	Peer string

	sim  *simEndpoint
	real *realEndpoint
}

// frame is the wire encoding of one message:
//
//	[2B typeLen BE][type bytes][payload (codec frame)]
//
// The payload is encoded with the GRAS NDR codec; the overall frame
// length travels out-of-band (simulated byte count, or a 4-byte length
// prefix on real TCP).
func encodeFrame(reg *Registry, msgType string, payload any, from Arch) ([]byte, error) {
	mt, ok := reg.Lookup(msgType)
	if !ok {
		return nil, fmt.Errorf("%w: %q (declare it first)", ErrUnknownMessage, msgType)
	}
	body, err := (codec.NDR{}).Encode(mt.Desc, payload, from)
	if err != nil {
		return nil, err
	}
	if len(msgType) > 0xFFFF {
		return nil, fmt.Errorf("gras: message type name too long")
	}
	out := make([]byte, 0, 2+len(msgType)+len(body))
	out = append(out, byte(len(msgType)>>8), byte(len(msgType)))
	out = append(out, msgType...)
	out = append(out, body...)
	return out, nil
}

// decodeFrame parses a frame and decodes its payload for the receiving
// architecture.
func decodeFrame(reg *Registry, frame []byte, to Arch) (msgType string, payload any, err error) {
	if len(frame) < 2 {
		return "", nil, codec.ErrShortBuffer
	}
	tl := int(frame[0])<<8 | int(frame[1])
	if len(frame) < 2+tl {
		return "", nil, codec.ErrShortBuffer
	}
	msgType = string(frame[2 : 2+tl])
	mt, ok := reg.Lookup(msgType)
	if !ok {
		return msgType, nil, fmt.Errorf("%w: %q", ErrUnknownMessage, msgType)
	}
	payload, err = (codec.NDR{}).Decode(mt.Desc, frame[2+tl:], to)
	return msgType, payload, err
}
