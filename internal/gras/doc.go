// Package gras implements the paper's GRAS interface (Grid Reality And
// Simulation): applications written once against the Node API run
// unmodified either inside the simulator (simNode, over the SURF
// network model) or over real TCP sockets (RealNode) — "the resulting
// application is production, not prototype".
//
// Messages are typed (datadesc.go) and encoded by the wire formats of
// the codec subpackage; payloads travel in the sender's representation
// and are converted on the receiving architecture ("receiver makes it
// right"), so heterogeneous conversion costs appear exactly where they
// would in the real world. The key invariant is transport neutrality:
// application code must not be able to observe (other than through
// timing) whether it is running on the simulated or the real
// transport.
package gras
