package platform

import "testing"

// TestRouteCache pins the per-pair memoization contract: repeated
// lookups share one *Route, and any topology mutation invalidates the
// cache through the generation counter.
func TestRouteCache(t *testing.T) {
	p := New()
	if err := p.AddHost(&Host{Name: "a", Power: 1}); err != nil {
		t.Fatal(err)
	}
	if err := p.AddHost(&Host{Name: "b", Power: 1}); err != nil {
		t.Fatal(err)
	}
	l := &Link{Name: "l", Bandwidth: 1e6, Latency: 0.25}
	if err := p.AddRoute("a", "b", []*Link{l}); err != nil {
		t.Fatal(err)
	}

	r1, err := p.Route("a", "b")
	if err != nil {
		t.Fatal(err)
	}
	r2, err := p.Route("a", "b")
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Error("repeated Route lookups did not share the cached *Route")
	}
	if got := r1.Latency(); got != 0.25 {
		t.Errorf("Latency() = %g, want 0.25", got)
	}
	// Memoized latency: a second call must agree (same memo).
	if got := r1.Latency(); got != 0.25 {
		t.Errorf("memoized Latency() = %g, want 0.25", got)
	}

	// Self-routes are cached too (empty link list).
	s1, _ := p.Route("a", "a")
	s2, _ := p.Route("a", "a")
	if s1 != s2 || len(s1.Links) != 0 {
		t.Error("self-route not cached as an empty shared route")
	}

	// A topology mutation bumps the generation: the next lookup sees the
	// new route, not the stale cached one.
	l2 := &Link{Name: "l2", Bandwidth: 1e6, Latency: 0.5}
	if err := p.AddRoute("a", "b", []*Link{l2, l}); err != nil {
		t.Fatal(err)
	}
	r3, err := p.Route("a", "b")
	if err != nil {
		t.Fatal(err)
	}
	if r3 == r1 {
		t.Error("Route returned the stale cached route after AddRoute")
	}
	if len(r3.Links) != 2 || r3.Latency() != 0.75 {
		t.Errorf("post-mutation route has %d links latency %g, want 2 links latency 0.75", len(r3.Links), r3.Latency())
	}
}

// TestRouteCacheMissStaysUncached checks that a failed lookup is not
// cached: declaring the missing route afterwards makes it resolvable.
func TestRouteCacheMissStaysUncached(t *testing.T) {
	p := New()
	for _, h := range []string{"x", "y"} {
		if err := p.AddHost(&Host{Name: h, Power: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := p.Route("x", "y"); err == nil {
		t.Fatal("expected ErrNoRoute before any route is declared")
	}
	if err := p.AddRoute("x", "y", []*Link{{Name: "xy", Bandwidth: 1, Latency: 0}}); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Route("x", "y"); err != nil {
		t.Fatalf("Route after AddRoute: %v", err)
	}
}
