// Package platform describes the simulated hardware: hosts (CPUs),
// network links, and multi-hop routes between hosts. It supports
// programmatic construction, a JSON file format, and a BRITE-like
// Waxman random topology generator (the paper imports topologies "from
// topology generators such as BRITE").
//
// A platform is a graph whose vertices are nodes (hosts or routers) and
// whose edges are links. Routes between host pairs are either declared
// explicitly or computed by ComputeRoutes, which runs Floyd–Warshall on
// link latency so traffic follows lowest-latency paths, mirroring the
// static routing tables of SimGrid platform files.
//
// Key invariant: route lookups are memoized behind a topology
// generation counter (Generation) — every mutation bumps it, so the
// shared *Route values handed out by Route, and any state derived from
// them by upper layers (surf's resolved resource lists), are valid
// exactly as long as the generation matches and must be treated
// read-only.
package platform

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/trace"
)

// SharingPolicy selects how concurrent flows share a link.
type SharingPolicy int

const (
	// Shared links divide their bandwidth among all crossing flows
	// regardless of direction (MaxMin), SimGrid's default.
	Shared SharingPolicy = iota
	// Fatpipe links let every flow enjoy the full bandwidth
	// (modelling over-provisioned backbones).
	Fatpipe
	// SplitDuplex links have independent capacity per direction, like
	// NS2/GTNets duplex links; flows only share with same-direction
	// traffic. Requires hop-level routes (Connect + ComputeRoutes).
	SplitDuplex
)

func (s SharingPolicy) String() string {
	switch s {
	case Fatpipe:
		return "fatpipe"
	case SplitDuplex:
		return "splitduplex"
	default:
		return "shared"
	}
}

// Host is a computing resource: a machine running simulated processes.
type Host struct {
	Name  string
	Power float64 // flop/s delivered to a single runnable task

	// Availability scales Power over time (external load); State turns
	// the host off/on (transient failures). Value semantics follow
	// package trace: missing traces mean always fully available.
	Availability *trace.Trace
	StateTrace   *trace.Trace

	// Properties carries free-form metadata (OS, arch...), used by GRAS
	// to pick wire conversion behaviour.
	Properties map[string]string

	// Data is a cookie for the resource layer (surf.CPU).
	Data any
}

// Property returns a host property or "" when absent.
func (h *Host) Property(key string) string {
	if h.Properties == nil {
		return ""
	}
	return h.Properties[key]
}

// Link is a network resource crossed by flows.
type Link struct {
	Name      string
	Bandwidth float64 // bytes/s
	Latency   float64 // seconds
	Policy    SharingPolicy

	BandwidthTrace *trace.Trace
	StateTrace     *trace.Trace

	// Data is a cookie for the resource layer (surf.NetLink).
	Data any
}

// Route is an ordered list of links joining two hosts. Routes returned
// by Platform.Route are cached and shared between callers: treat them
// as immutable.
type Route struct {
	Src, Dst string
	Links    []*Link

	lat      float64 // memoized Latency (routes are immutable once built)
	latKnown bool
}

// Latency returns the sum of link latencies along the route, memoized
// on first call (comm-heavy workloads query it several times per
// transfer on the same cached route).
func (r *Route) Latency() float64 {
	if !r.latKnown {
		sum := 0.0
		for _, l := range r.Links {
			sum += l.Latency
		}
		r.lat = sum
		r.latKnown = true
	}
	return r.lat
}

// Bottleneck returns the smallest link bandwidth along the route.
func (r *Route) Bottleneck() float64 {
	b := math.Inf(1)
	for _, l := range r.Links {
		if l.Bandwidth < b {
			b = l.Bandwidth
		}
	}
	return b
}

// edge is an undirected graph edge used for route computation.
type edge struct {
	a, b string // node names (hosts or routers)
	link *Link
}

// Hop is one directed step of a route: traversing Link from node A to
// node B. Hop-level routes are available for platforms built from a
// Connect graph (ComputeRoutes); packet-level simulators need them to
// share queues between flows crossing a link in the same direction.
type Hop struct {
	A, B string
	Link *Link
}

// Edge is an undirected connection in the platform graph.
type Edge struct {
	A, B string
	Link *Link
}

// Platform is a set of hosts, routers, links and routes.
// The zero value is unusable; call New.
type Platform struct {
	hosts   map[string]*Host
	routers map[string]bool
	links   map[string]*Link
	edges   []edge
	routes  map[[2]string][]*Link
	hops    map[[2]string][]Hop

	// routeCache memoizes the *Route values handed out by Route: route
	// and mailbox map lookups are ~10% of a million-activity profile,
	// and every comm re-allocated its Route before the cache. The cache
	// is valid for generation cacheGen only; any topology mutation bumps
	// gen, so the next lookup rebuilds lazily.
	routeCache map[[2]string]*Route
	cacheGen   uint64
	gen        uint64
}

// New returns an empty platform.
func New() *Platform {
	return &Platform{
		hosts:   make(map[string]*Host),
		routers: make(map[string]bool),
		links:   make(map[string]*Link),
		routes:  make(map[[2]string][]*Link),
		hops:    make(map[[2]string][]Hop),
	}
}

// Errors returned by platform construction and lookup.
var (
	ErrDuplicate = errors.New("platform: duplicate element")
	ErrUnknown   = errors.New("platform: unknown element")
	ErrNoRoute   = errors.New("platform: no route between hosts")
)

// AddHost registers a host. Power must be positive.
func (p *Platform) AddHost(h *Host) error {
	if h.Name == "" {
		return fmt.Errorf("%w: host with empty name", ErrUnknown)
	}
	if h.Power <= 0 {
		return fmt.Errorf("platform: host %q has non-positive power %g", h.Name, h.Power)
	}
	if _, dup := p.hosts[h.Name]; dup {
		return fmt.Errorf("%w: host %q", ErrDuplicate, h.Name)
	}
	if p.routers[h.Name] {
		return fmt.Errorf("%w: node %q already a router", ErrDuplicate, h.Name)
	}
	p.hosts[h.Name] = h
	p.gen++
	return nil
}

// AddRouter registers a routing-only node (no compute capacity).
func (p *Platform) AddRouter(name string) error {
	if _, dup := p.hosts[name]; dup {
		return fmt.Errorf("%w: node %q already a host", ErrDuplicate, name)
	}
	if p.routers[name] {
		return fmt.Errorf("%w: router %q", ErrDuplicate, name)
	}
	p.routers[name] = true
	p.gen++
	return nil
}

// AddLink registers a link. Bandwidth must be positive, latency
// non-negative.
func (p *Platform) AddLink(l *Link) error {
	if l.Name == "" {
		return fmt.Errorf("%w: link with empty name", ErrUnknown)
	}
	if l.Bandwidth <= 0 {
		return fmt.Errorf("platform: link %q has non-positive bandwidth %g", l.Name, l.Bandwidth)
	}
	if l.Latency < 0 {
		return fmt.Errorf("platform: link %q has negative latency %g", l.Name, l.Latency)
	}
	if _, dup := p.links[l.Name]; dup {
		return fmt.Errorf("%w: link %q", ErrDuplicate, l.Name)
	}
	p.links[l.Name] = l
	p.gen++
	return nil
}

// Connect declares that link l joins nodes a and b (hosts or routers),
// for use by ComputeRoutes.
func (p *Platform) Connect(a, b string, l *Link) error {
	if !p.nodeExists(a) {
		return fmt.Errorf("%w: node %q", ErrUnknown, a)
	}
	if !p.nodeExists(b) {
		return fmt.Errorf("%w: node %q", ErrUnknown, b)
	}
	if _, known := p.links[l.Name]; !known {
		if err := p.AddLink(l); err != nil {
			return err
		}
	}
	p.edges = append(p.edges, edge{a: a, b: b, link: l})
	p.gen++
	return nil
}

func (p *Platform) nodeExists(name string) bool {
	_, h := p.hosts[name]
	return h || p.routers[name]
}

// AddRoute declares an explicit (symmetric) route between two hosts.
func (p *Platform) AddRoute(src, dst string, links []*Link) error {
	if _, ok := p.hosts[src]; !ok {
		return fmt.Errorf("%w: host %q", ErrUnknown, src)
	}
	if _, ok := p.hosts[dst]; !ok {
		return fmt.Errorf("%w: host %q", ErrUnknown, dst)
	}
	for _, l := range links {
		if _, ok := p.links[l.Name]; !ok {
			if err := p.AddLink(l); err != nil {
				return err
			}
		}
	}
	ls := make([]*Link, len(links))
	copy(ls, links)
	p.routes[[2]string{src, dst}] = ls
	rev := make([]*Link, len(links))
	for i, l := range links {
		rev[len(links)-1-i] = l
	}
	p.routes[[2]string{dst, src}] = rev
	p.gen++
	return nil
}

// Host returns a host by name, or nil.
func (p *Platform) Host(name string) *Host { return p.hosts[name] }

// Link returns a link by name, or nil.
func (p *Platform) Link(name string) *Link { return p.links[name] }

// Hosts returns all hosts sorted by name.
func (p *Platform) Hosts() []*Host {
	out := make([]*Host, 0, len(p.hosts))
	for _, h := range p.hosts {
		out = append(out, h)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Links returns all links sorted by name.
func (p *Platform) Links() []*Link {
	out := make([]*Link, 0, len(p.links))
	for _, l := range p.links {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Routers returns all router names sorted.
func (p *Platform) Routers() []string {
	out := make([]string, 0, len(p.routers))
	for r := range p.routers {
		out = append(out, r)
	}
	sort.Strings(out)
	return out
}

// Generation returns the topology generation counter: it is bumped by
// every topology mutation (AddRoute, Connect, ComputeRoutes, …), so
// layers that memoize derived routing state (surf's resolved resource
// lists) can drop their caches exactly when the platform's own route
// cache does.
func (p *Platform) Generation() uint64 { return p.gen }

// Route returns the route between two hosts. A host communicates with
// itself over an empty route (intra-host messaging costs only latency 0).
// Results are memoized per ordered pair behind a generation counter:
// repeated lookups — every transfer between the same hosts — return the
// same *Route with no allocation, and any topology mutation (AddRoute,
// Connect, ComputeRoutes, …) invalidates the whole cache at once. The
// returned route is shared: callers must not mutate it.
func (p *Platform) Route(src, dst string) (*Route, error) {
	if _, ok := p.hosts[src]; !ok {
		return nil, fmt.Errorf("%w: host %q", ErrUnknown, src)
	}
	if _, ok := p.hosts[dst]; !ok {
		return nil, fmt.Errorf("%w: host %q", ErrUnknown, dst)
	}
	if p.routeCache == nil || p.cacheGen != p.gen {
		p.routeCache = make(map[[2]string]*Route)
		p.cacheGen = p.gen
	}
	key := [2]string{src, dst}
	if r, ok := p.routeCache[key]; ok {
		return r, nil
	}
	r := &Route{Src: src, Dst: dst}
	if src != dst {
		links, ok := p.routes[key]
		if !ok {
			return nil, fmt.Errorf("%w: %q -> %q", ErrNoRoute, src, dst)
		}
		r.Links = links
	}
	p.routeCache[key] = r
	return r, nil
}

// ComputeRoutes fills the routing table for every host pair using
// Floyd–Warshall over the Connect graph, minimizing total latency (ties
// broken deterministically by node order). Explicit AddRoute entries are
// preserved.
func (p *Platform) ComputeRoutes() error {
	// Stable node indexing.
	var names []string
	for n := range p.hosts {
		names = append(names, n)
	}
	for n := range p.routers {
		names = append(names, n)
	}
	sort.Strings(names)
	idx := make(map[string]int, len(names))
	for i, n := range names {
		idx[n] = i
	}
	n := len(names)
	const inf = math.MaxFloat64
	dist := make([][]float64, n)
	via := make([][]*Link, n) // link used for hop i->j on the best path
	next := make([][]int, n)
	for i := range dist {
		dist[i] = make([]float64, n)
		via[i] = make([]*Link, n)
		next[i] = make([]int, n)
		for j := range dist[i] {
			dist[i][j] = inf
			next[i][j] = -1
		}
		dist[i][i] = 0
		next[i][i] = i
	}
	for _, e := range p.edges {
		i, j := idx[e.a], idx[e.b]
		// Cost: latency plus a tiny per-hop epsilon so that zero-latency
		// meshes still prefer fewer hops.
		w := e.link.Latency + 1e-9
		if w < dist[i][j] {
			dist[i][j], dist[j][i] = w, w
			via[i][j], via[j][i] = e.link, e.link
			next[i][j], next[j][i] = j, i
		}
	}
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			if dist[i][k] == inf {
				continue
			}
			for j := 0; j < n; j++ {
				if dist[k][j] == inf {
					continue
				}
				if d := dist[i][k] + dist[k][j]; d < dist[i][j] {
					dist[i][j] = d
					next[i][j] = next[i][k]
					via[i][j] = via[i][k]
				}
			}
		}
	}
	// Extract host-pair routes.
	for a := range p.hosts {
		for b := range p.hosts {
			if a == b {
				continue
			}
			if _, explicit := p.routes[[2]string{a, b}]; explicit {
				continue
			}
			i, j := idx[a], idx[b]
			if next[i][j] == -1 {
				continue // disconnected; Route() will report ErrNoRoute
			}
			var links []*Link
			var hops []Hop
			for u := i; u != j; {
				v := next[u][j]
				links = append(links, via[u][j])
				hops = append(hops, Hop{A: names[u], B: names[v], Link: via[u][j]})
				u = v
			}
			p.routes[[2]string{a, b}] = links
			p.hops[[2]string{a, b}] = hops
		}
	}
	p.gen++
	return nil
}

// HopRoute returns the directed hop-level route between two hosts.
// Only available for routes computed by ComputeRoutes (explicit
// AddRoute entries carry no endpoint information).
func (p *Platform) HopRoute(src, dst string) ([]Hop, error) {
	if _, ok := p.hosts[src]; !ok {
		return nil, fmt.Errorf("%w: host %q", ErrUnknown, src)
	}
	if _, ok := p.hosts[dst]; !ok {
		return nil, fmt.Errorf("%w: host %q", ErrUnknown, dst)
	}
	if src == dst {
		return nil, nil
	}
	hops, ok := p.hops[[2]string{src, dst}]
	if !ok {
		return nil, fmt.Errorf("%w: no hop route %q -> %q", ErrNoRoute, src, dst)
	}
	return hops, nil
}

// Edges returns the undirected connection graph declared with Connect.
func (p *Platform) Edges() []Edge {
	out := make([]Edge, len(p.edges))
	for i, e := range p.edges {
		out[i] = Edge{A: e.a, B: e.b, Link: e.link}
	}
	return out
}

// Validate checks platform consistency: every declared route references
// known links and every host pair is connected (when strict).
func (p *Platform) Validate(strict bool) error {
	for key, links := range p.routes {
		for _, l := range links {
			if p.links[l.Name] != l {
				return fmt.Errorf("platform: route %v uses unregistered link %q", key, l.Name)
			}
		}
	}
	if strict {
		hosts := p.Hosts()
		for _, a := range hosts {
			for _, b := range hosts {
				if a == b {
					continue
				}
				if _, err := p.Route(a.Name, b.Name); err != nil {
					return err
				}
			}
		}
	}
	return nil
}
