package platform

import (
	"fmt"
	"testing"
)

func TestBuildClusterBasic(t *testing.T) {
	p, names, err := NewCluster(ClusterConfig{
		Prefix: "node", Hosts: 8, Power: 1e9,
		Bandwidth: 1.25e8, Latency: 5e-5,
		Properties: map[string]string{"arch": "x86"},
	})
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	if len(names) != 8 || names[0] != "node0" || names[7] != "node7" {
		t.Errorf("names = %v", names)
	}
	if err := p.Validate(true); err != nil {
		t.Errorf("cluster not fully routable: %v", err)
	}
	r, err := p.Route("node0", "node7")
	if err != nil {
		t.Fatalf("Route: %v", err)
	}
	if len(r.Links) != 2 {
		t.Errorf("intra-cluster route has %d links, want 2 (up + down)", len(r.Links))
	}
	if p.Host("node3").Property("arch") != "x86" {
		t.Error("properties not copied")
	}
	// Property maps must be independent copies.
	p.Host("node3").Properties["arch"] = "sparc"
	if p.Host("node4").Property("arch") != "x86" {
		t.Error("property map shared between hosts")
	}
}

func TestBuildClusterBackbone(t *testing.T) {
	p, _, err := NewCluster(ClusterConfig{
		Prefix: "bb", Hosts: 4, Power: 1e9,
		Bandwidth: 1.25e8, Latency: 5e-5,
		Backbone: 1.25e7, BackboneLatency: 1e-4,
	})
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	// Hosts attach to the leaf router; reaching the cluster switch
	// crosses the backbone. But intra-cluster routes stay on the leaf.
	r, err := p.Route("bb0", "bb1")
	if err != nil {
		t.Fatalf("Route: %v", err)
	}
	if len(r.Links) != 2 {
		t.Errorf("intra-cluster route = %d links, want 2", len(r.Links))
	}
	if p.Link("bb-backbone") == nil {
		t.Error("backbone link missing")
	}
}

func TestBuildClusterValidation(t *testing.T) {
	p := New()
	if _, err := p.BuildCluster(ClusterConfig{Prefix: "x", Hosts: 0, Power: 1, Bandwidth: 1}); err == nil {
		t.Error("zero hosts accepted")
	}
	if _, err := p.BuildCluster(ClusterConfig{Prefix: "x", Hosts: 2, Power: 0, Bandwidth: 1}); err == nil {
		t.Error("zero power accepted")
	}
	// Duplicate prefix collides on the switch name.
	if _, err := p.BuildCluster(ClusterConfig{Prefix: "c", Hosts: 2, Power: 1, Bandwidth: 1}); err != nil {
		t.Fatalf("first cluster: %v", err)
	}
	if _, err := p.BuildCluster(ClusterConfig{Prefix: "c", Hosts: 2, Power: 1, Bandwidth: 1}); err == nil {
		t.Error("duplicate prefix accepted")
	}
}

func TestNewDumbbell(t *testing.T) {
	p, left, right, err := NewDumbbell(DumbbellConfig{
		LeftHosts: 3, RightHosts: 2, Power: 1e9,
		EdgeBandwidth: 1.25e8, EdgeLatency: 1e-5,
		BottleneckBandwidth: 1.25e6, BottleneckLatency: 0.01,
	})
	if err != nil {
		t.Fatalf("NewDumbbell: %v", err)
	}
	if len(left) != 3 || len(right) != 2 {
		t.Fatalf("sides = %d/%d", len(left), len(right))
	}
	r, err := p.Route(left[0], right[0])
	if err != nil {
		t.Fatalf("Route: %v", err)
	}
	if len(r.Links) != 3 {
		t.Errorf("cross route = %d links, want 3 (edge+bottleneck+edge)", len(r.Links))
	}
	if r.Bottleneck() != 1.25e6 {
		t.Errorf("bottleneck = %g", r.Bottleneck())
	}
	// Same-side route must not cross the bottleneck.
	rl, _ := p.Route(left[0], left[1])
	for _, l := range rl.Links {
		if l.Name == "bottleneck" {
			t.Error("same-side route crosses the bottleneck")
		}
	}
	if _, _, _, err := NewDumbbell(DumbbellConfig{LeftHosts: 0, RightHosts: 1}); err == nil {
		t.Error("empty side accepted")
	}
}

func TestNewMultiSite(t *testing.T) {
	site := func(prefix string, n int) ClusterConfig {
		return ClusterConfig{
			Prefix: prefix, Hosts: n, Power: 1e9,
			Bandwidth: 1.25e8, Latency: 5e-5,
		}
	}
	p, hosts, err := NewMultiSite(MultiSiteConfig{
		Sites:        []ClusterConfig{site("ucsd", 4), site("lyon", 3), site("nancy", 2)},
		WANBandwidth: 1.25e6,
		WANLatency:   0.04,
	})
	if err != nil {
		t.Fatalf("NewMultiSite: %v", err)
	}
	if len(hosts) != 3 || len(hosts[0]) != 4 || len(hosts[2]) != 2 {
		t.Fatalf("hosts = %v", hosts)
	}
	// Cross-site route crosses two WAN links (site A -> wan -> site B).
	r, err := p.Route("ucsd0", "lyon2")
	if err != nil {
		t.Fatalf("Route: %v", err)
	}
	wanHops := 0
	for _, l := range r.Links {
		if l.Policy == Fatpipe {
			wanHops++
		}
	}
	if wanHops != 2 {
		t.Errorf("cross-site route crosses %d WAN links, want 2 (%v)", wanHops, names(r.Links))
	}
	// Intra-site stays local.
	r2, _ := p.Route("nancy0", "nancy1")
	for _, l := range r2.Links {
		if l.Policy == Fatpipe {
			t.Error("intra-site route crosses the WAN")
		}
	}
	if _, _, err := NewMultiSite(MultiSiteConfig{Sites: []ClusterConfig{site("solo", 2)}}); err == nil {
		t.Error("single-site grid accepted")
	}
}

func TestMultiSiteSimulatesEndToEnd(t *testing.T) {
	// Smoke: the grid platform works under the fluid model via routes.
	p, hosts, err := NewMultiSite(MultiSiteConfig{
		Sites: []ClusterConfig{
			{Prefix: "a", Hosts: 2, Power: 1e9, Bandwidth: 1.25e8, Latency: 5e-5},
			{Prefix: "b", Hosts: 2, Power: 1e9, Bandwidth: 1.25e8, Latency: 5e-5},
		},
		WANBandwidth: 1.25e6,
		WANLatency:   0.04,
	})
	if err != nil {
		t.Fatal(err)
	}
	r, err := p.Route(hosts[0][0], hosts[1][1])
	if err != nil {
		t.Fatal(err)
	}
	if r.Latency() < 0.08 {
		t.Errorf("cross-site latency %g, want >= 0.08 (two WAN hops)", r.Latency())
	}
	_ = fmt.Sprintf("%v", r)
}
