// JSON platform description format, the reproduction's equivalent of
// SimGrid's XML platform files. Example:
//
//	{
//	  "hosts":   [{"name": "h1", "power": 1e9,
//	               "availability": "PERIODICITY 24\n0 1\n8 0.5",
//	               "properties": {"arch": "x86"}}],
//	  "routers": ["r1"],
//	  "links":   [{"name": "l1", "bandwidth": 1.25e7, "latency": 0.0001,
//	               "policy": "fatpipe"}],
//	  "edges":   [{"a": "h1", "b": "r1", "link": "l1"}],
//	  "routes":  [{"src": "h1", "dst": "h2", "links": ["l1", "l2"]}]
//	}
//
// Traces are embedded in the trace text format (see package trace).

package platform

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"repro/internal/trace"
)

type jsonPlatform struct {
	Hosts   []jsonHost  `json:"hosts"`
	Routers []string    `json:"routers,omitempty"`
	Links   []jsonLink  `json:"links,omitempty"`
	Edges   []jsonEdge  `json:"edges,omitempty"`
	Routes  []jsonRoute `json:"routes,omitempty"`
}

type jsonHost struct {
	Name         string            `json:"name"`
	Power        float64           `json:"power"`
	Availability string            `json:"availability,omitempty"`
	State        string            `json:"state,omitempty"`
	Properties   map[string]string `json:"properties,omitempty"`
}

type jsonLink struct {
	Name      string  `json:"name"`
	Bandwidth float64 `json:"bandwidth"`
	Latency   float64 `json:"latency"`
	Policy    string  `json:"policy,omitempty"`
	BwTrace   string  `json:"bandwidth_trace,omitempty"`
	State     string  `json:"state,omitempty"`
}

type jsonEdge struct {
	A    string `json:"a"`
	B    string `json:"b"`
	Link string `json:"link"`
}

type jsonRoute struct {
	Src   string   `json:"src"`
	Dst   string   `json:"dst"`
	Links []string `json:"links"`
}

// Load reads a JSON platform description. Routes are completed with
// ComputeRoutes when an edge list is present.
func Load(r io.Reader) (*Platform, error) {
	var jp jsonPlatform
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&jp); err != nil {
		return nil, fmt.Errorf("platform: decoding JSON: %w", err)
	}
	p := New()
	for _, jh := range jp.Hosts {
		h := &Host{Name: jh.Name, Power: jh.Power, Properties: jh.Properties}
		if jh.Availability != "" {
			tr, err := trace.ParseString(jh.Name+".availability", jh.Availability)
			if err != nil {
				return nil, err
			}
			h.Availability = tr
		}
		if jh.State != "" {
			tr, err := trace.ParseString(jh.Name+".state", jh.State)
			if err != nil {
				return nil, err
			}
			h.StateTrace = tr
		}
		if err := p.AddHost(h); err != nil {
			return nil, err
		}
	}
	for _, rt := range jp.Routers {
		if err := p.AddRouter(rt); err != nil {
			return nil, err
		}
	}
	for _, jl := range jp.Links {
		l := &Link{Name: jl.Name, Bandwidth: jl.Bandwidth, Latency: jl.Latency}
		switch jl.Policy {
		case "", "shared":
			l.Policy = Shared
		case "fatpipe":
			l.Policy = Fatpipe
		case "splitduplex":
			l.Policy = SplitDuplex
		default:
			return nil, fmt.Errorf("platform: link %q: unknown policy %q", jl.Name, jl.Policy)
		}
		if jl.BwTrace != "" {
			tr, err := trace.ParseString(jl.Name+".bandwidth", jl.BwTrace)
			if err != nil {
				return nil, err
			}
			l.BandwidthTrace = tr
		}
		if jl.State != "" {
			tr, err := trace.ParseString(jl.Name+".state", jl.State)
			if err != nil {
				return nil, err
			}
			l.StateTrace = tr
		}
		if err := p.AddLink(l); err != nil {
			return nil, err
		}
	}
	for _, je := range jp.Edges {
		l := p.Link(je.Link)
		if l == nil {
			return nil, fmt.Errorf("%w: link %q in edge %v", ErrUnknown, je.Link, je)
		}
		if err := p.Connect(je.A, je.B, l); err != nil {
			return nil, err
		}
	}
	for _, jr := range jp.Routes {
		links := make([]*Link, len(jr.Links))
		for i, name := range jr.Links {
			l := p.Link(name)
			if l == nil {
				return nil, fmt.Errorf("%w: link %q in route %s->%s", ErrUnknown, name, jr.Src, jr.Dst)
			}
			links[i] = l
		}
		if err := p.AddRoute(jr.Src, jr.Dst, links); err != nil {
			return nil, err
		}
	}
	if len(jp.Edges) > 0 {
		if err := p.ComputeRoutes(); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// LoadFile reads a JSON platform description from a file.
func LoadFile(path string) (*Platform, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}

// Save serializes the platform back to the JSON format. Traces are not
// round-tripped (they keep running in-memory); the structural topology
// and explicit routes are.
func (p *Platform) Save(w io.Writer) error {
	var jp jsonPlatform
	for _, h := range p.Hosts() {
		jp.Hosts = append(jp.Hosts, jsonHost{Name: h.Name, Power: h.Power, Properties: h.Properties})
	}
	jp.Routers = p.Routers()
	for _, l := range p.Links() {
		jl := jsonLink{Name: l.Name, Bandwidth: l.Bandwidth, Latency: l.Latency}
		switch l.Policy {
		case Fatpipe:
			jl.Policy = "fatpipe"
		case SplitDuplex:
			jl.Policy = "splitduplex"
		}
		jp.Links = append(jp.Links, jl)
	}
	for _, e := range p.edges {
		jp.Edges = append(jp.Edges, jsonEdge{A: e.a, B: e.b, Link: e.link.Name})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(&jp)
}
