// Convenience topology builders, the programmatic equivalents of the
// <cluster> and friends tags of SimGrid platform files. They cover the
// paper's target-application platforms: commodity clusters, networks of
// workstations behind a shared backbone, and multi-site grids.

package platform

import (
	"fmt"
)

// ClusterConfig describes a homogeneous commodity cluster: n hosts
// hanging off one switch through identical links.
type ClusterConfig struct {
	Prefix    string  // host name prefix ("node" -> node0, node1, ...)
	Hosts     int     // number of hosts
	Power     float64 // flop/s per host
	Bandwidth float64 // bytes/s per host uplink
	Latency   float64 // seconds per hop
	// Backbone, when positive, inserts a shared backbone link of that
	// bandwidth between the uplinks and the switch, so intra-cluster
	// traffic contends (SimGrid's cluster backbone, "bb_bw").
	Backbone float64
	// BackboneLatency is the backbone's latency (default 0).
	BackboneLatency float64
	Properties      map[string]string // copied onto every host
}

// BuildCluster adds a cluster to the platform and returns the host
// names. The switch router is named Prefix+"-switch".
func (p *Platform) BuildCluster(cfg ClusterConfig) ([]string, error) {
	if cfg.Hosts <= 0 {
		return nil, fmt.Errorf("platform: cluster %q needs hosts", cfg.Prefix)
	}
	if cfg.Power <= 0 || cfg.Bandwidth <= 0 || cfg.Latency < 0 {
		return nil, fmt.Errorf("platform: cluster %q has invalid characteristics", cfg.Prefix)
	}
	sw := cfg.Prefix + "-switch"
	if err := p.AddRouter(sw); err != nil {
		return nil, err
	}
	attach := sw
	if cfg.Backbone > 0 {
		// hosts -- inner switch -- backbone link -- outer switch
		inner := cfg.Prefix + "-leaf"
		if err := p.AddRouter(inner); err != nil {
			return nil, err
		}
		bb := &Link{
			Name:      cfg.Prefix + "-backbone",
			Bandwidth: cfg.Backbone,
			Latency:   cfg.BackboneLatency,
		}
		if err := p.Connect(inner, sw, bb); err != nil {
			return nil, err
		}
		attach = inner
	}
	names := make([]string, cfg.Hosts)
	for i := 0; i < cfg.Hosts; i++ {
		name := fmt.Sprintf("%s%d", cfg.Prefix, i)
		names[i] = name
		h := &Host{Name: name, Power: cfg.Power}
		if cfg.Properties != nil {
			h.Properties = make(map[string]string, len(cfg.Properties))
			for k, v := range cfg.Properties {
				h.Properties[k] = v
			}
		}
		if err := p.AddHost(h); err != nil {
			return nil, err
		}
		l := &Link{
			Name:      fmt.Sprintf("%s%d-up", cfg.Prefix, i),
			Bandwidth: cfg.Bandwidth,
			Latency:   cfg.Latency,
		}
		if err := p.Connect(name, attach, l); err != nil {
			return nil, err
		}
	}
	return names, nil
}

// NewCluster builds a standalone cluster platform with routes computed.
func NewCluster(cfg ClusterConfig) (*Platform, []string, error) {
	p := New()
	names, err := p.BuildCluster(cfg)
	if err != nil {
		return nil, nil, err
	}
	if err := p.ComputeRoutes(); err != nil {
		return nil, nil, err
	}
	return p, names, nil
}

// DumbbellConfig describes the classic two-sided bottleneck topology:
// left hosts and right hosts joined by one shared middle link.
type DumbbellConfig struct {
	LeftHosts, RightHosts int
	Power                 float64
	EdgeBandwidth         float64
	EdgeLatency           float64
	BottleneckBandwidth   float64
	BottleneckLatency     float64
}

// NewDumbbell builds a dumbbell platform, returning (left, right) host
// names. Useful for congestion experiments: every left-to-right flow
// shares the bottleneck.
func NewDumbbell(cfg DumbbellConfig) (*Platform, []string, []string, error) {
	if cfg.LeftHosts <= 0 || cfg.RightHosts <= 0 {
		return nil, nil, nil, fmt.Errorf("platform: dumbbell needs hosts on both sides")
	}
	p := New()
	if err := p.AddRouter("dumbbell-left"); err != nil {
		return nil, nil, nil, err
	}
	if err := p.AddRouter("dumbbell-right"); err != nil {
		return nil, nil, nil, err
	}
	mid := &Link{
		Name:      "bottleneck",
		Bandwidth: cfg.BottleneckBandwidth,
		Latency:   cfg.BottleneckLatency,
	}
	if err := p.Connect("dumbbell-left", "dumbbell-right", mid); err != nil {
		return nil, nil, nil, err
	}
	side := func(prefix, router string, n int) ([]string, error) {
		names := make([]string, n)
		for i := 0; i < n; i++ {
			name := fmt.Sprintf("%s%d", prefix, i)
			names[i] = name
			if err := p.AddHost(&Host{Name: name, Power: cfg.Power}); err != nil {
				return nil, err
			}
			l := &Link{
				Name:      name + "-edge",
				Bandwidth: cfg.EdgeBandwidth,
				Latency:   cfg.EdgeLatency,
			}
			if err := p.Connect(name, router, l); err != nil {
				return nil, err
			}
		}
		return names, nil
	}
	left, err := side("left", "dumbbell-left", cfg.LeftHosts)
	if err != nil {
		return nil, nil, nil, err
	}
	right, err := side("right", "dumbbell-right", cfg.RightHosts)
	if err != nil {
		return nil, nil, nil, err
	}
	if err := p.ComputeRoutes(); err != nil {
		return nil, nil, nil, err
	}
	return p, left, right, nil
}

// MultiSiteConfig joins several clusters through a wide-area backbone —
// the paper's "scientific simulation running on a multi-site high-end
// grid platform".
type MultiSiteConfig struct {
	Sites        []ClusterConfig
	WANBandwidth float64
	WANLatency   float64
}

// NewMultiSite builds the grid platform: each site's switch connects to
// a central WAN router through a fatpipe WAN link (over-provisioned
// backbone; site uplinks are the contention points). Returns per-site
// host names.
func NewMultiSite(cfg MultiSiteConfig) (*Platform, [][]string, error) {
	if len(cfg.Sites) < 2 {
		return nil, nil, fmt.Errorf("platform: a grid needs at least 2 sites")
	}
	p := New()
	if err := p.AddRouter("wan"); err != nil {
		return nil, nil, err
	}
	var all [][]string
	for i, site := range cfg.Sites {
		names, err := p.BuildCluster(site)
		if err != nil {
			return nil, nil, err
		}
		all = append(all, names)
		wl := &Link{
			Name:      fmt.Sprintf("wan-%d", i),
			Bandwidth: cfg.WANBandwidth,
			Latency:   cfg.WANLatency,
			Policy:    Fatpipe,
		}
		if err := p.Connect(site.Prefix+"-switch", "wan", wl); err != nil {
			return nil, nil, err
		}
	}
	if err := p.ComputeRoutes(); err != nil {
		return nil, nil, err
	}
	return p, all, nil
}
