package platform

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func mkHost(name string) *Host { return &Host{Name: name, Power: 1e9} }

func mkLink(name string, bw, lat float64) *Link {
	return &Link{Name: name, Bandwidth: bw, Latency: lat}
}

func TestAddHostValidation(t *testing.T) {
	p := New()
	if err := p.AddHost(mkHost("a")); err != nil {
		t.Fatalf("AddHost: %v", err)
	}
	if err := p.AddHost(mkHost("a")); err == nil {
		t.Error("duplicate host accepted")
	}
	if err := p.AddHost(&Host{Name: "bad", Power: 0}); err == nil {
		t.Error("zero-power host accepted")
	}
	if err := p.AddHost(&Host{Name: "", Power: 1}); err == nil {
		t.Error("empty-name host accepted")
	}
	if err := p.AddRouter("a"); err == nil {
		t.Error("router with host name accepted")
	}
}

func TestAddLinkValidation(t *testing.T) {
	p := New()
	if err := p.AddLink(mkLink("l", 1e6, 0.001)); err != nil {
		t.Fatalf("AddLink: %v", err)
	}
	if err := p.AddLink(mkLink("l", 1e6, 0.001)); err == nil {
		t.Error("duplicate link accepted")
	}
	if err := p.AddLink(mkLink("bad", 0, 0)); err == nil {
		t.Error("zero-bandwidth link accepted")
	}
	if err := p.AddLink(mkLink("bad2", 1, -1)); err == nil {
		t.Error("negative-latency link accepted")
	}
}

func TestExplicitRoute(t *testing.T) {
	p := New()
	p.AddHost(mkHost("a"))
	p.AddHost(mkHost("b"))
	l1 := mkLink("l1", 1e6, 0.001)
	l2 := mkLink("l2", 2e6, 0.002)
	if err := p.AddRoute("a", "b", []*Link{l1, l2}); err != nil {
		t.Fatalf("AddRoute: %v", err)
	}
	r, err := p.Route("a", "b")
	if err != nil {
		t.Fatalf("Route: %v", err)
	}
	if len(r.Links) != 2 || r.Links[0] != l1 || r.Links[1] != l2 {
		t.Errorf("route = %v", r.Links)
	}
	if math.Abs(r.Latency()-0.003) > 1e-12 {
		t.Errorf("latency = %g, want 0.003", r.Latency())
	}
	if r.Bottleneck() != 1e6 {
		t.Errorf("bottleneck = %g, want 1e6", r.Bottleneck())
	}
	// Reverse route is implicit and reversed.
	rr, err := p.Route("b", "a")
	if err != nil {
		t.Fatalf("reverse Route: %v", err)
	}
	if len(rr.Links) != 2 || rr.Links[0] != l2 || rr.Links[1] != l1 {
		t.Errorf("reverse route = %v", rr.Links)
	}
}

func TestSelfRouteIsEmpty(t *testing.T) {
	p := New()
	p.AddHost(mkHost("a"))
	r, err := p.Route("a", "a")
	if err != nil {
		t.Fatalf("Route(a,a): %v", err)
	}
	if len(r.Links) != 0 {
		t.Errorf("self route has %d links, want 0", len(r.Links))
	}
	if r.Latency() != 0 || !math.IsInf(r.Bottleneck(), 1) {
		t.Errorf("self route latency/bottleneck = %g/%g", r.Latency(), r.Bottleneck())
	}
}

func TestRouteErrors(t *testing.T) {
	p := New()
	p.AddHost(mkHost("a"))
	p.AddHost(mkHost("b"))
	if _, err := p.Route("a", "zzz"); err == nil {
		t.Error("route to unknown host accepted")
	}
	if _, err := p.Route("zzz", "a"); err == nil {
		t.Error("route from unknown host accepted")
	}
	if _, err := p.Route("a", "b"); err == nil {
		t.Error("missing route did not error")
	}
}

func TestComputeRoutesLine(t *testing.T) {
	// a -- r1 -- b: two links, shortest path must chain them.
	p := New()
	p.AddHost(mkHost("a"))
	p.AddHost(mkHost("b"))
	p.AddRouter("r1")
	la := mkLink("la", 1e6, 0.001)
	lb := mkLink("lb", 1e6, 0.002)
	if err := p.Connect("a", "r1", la); err != nil {
		t.Fatalf("Connect: %v", err)
	}
	if err := p.Connect("r1", "b", lb); err != nil {
		t.Fatalf("Connect: %v", err)
	}
	if err := p.ComputeRoutes(); err != nil {
		t.Fatalf("ComputeRoutes: %v", err)
	}
	r, err := p.Route("a", "b")
	if err != nil {
		t.Fatalf("Route: %v", err)
	}
	if len(r.Links) != 2 || r.Links[0] != la || r.Links[1] != lb {
		t.Errorf("route = %v, want [la lb]", names(r.Links))
	}
}

func TestComputeRoutesPrefersLowLatency(t *testing.T) {
	// Two paths a->b: direct slow-latency link vs two fast-latency hops.
	p := New()
	p.AddHost(mkHost("a"))
	p.AddHost(mkHost("b"))
	p.AddRouter("r")
	direct := mkLink("direct", 1e6, 0.010)
	h1 := mkLink("h1", 1e6, 0.001)
	h2 := mkLink("h2", 1e6, 0.001)
	p.Connect("a", "b", direct)
	p.Connect("a", "r", h1)
	p.Connect("r", "b", h2)
	if err := p.ComputeRoutes(); err != nil {
		t.Fatalf("ComputeRoutes: %v", err)
	}
	r, _ := p.Route("a", "b")
	if len(r.Links) != 2 {
		t.Errorf("route = %v, want the 2-hop low-latency path", names(r.Links))
	}
}

func TestComputeRoutesKeepsExplicit(t *testing.T) {
	p := New()
	p.AddHost(mkHost("a"))
	p.AddHost(mkHost("b"))
	forced := mkLink("forced", 1e3, 1.0)
	p.AddRoute("a", "b", []*Link{forced})
	fast := mkLink("fast", 1e9, 1e-6)
	p.Connect("a", "b", fast)
	if err := p.ComputeRoutes(); err != nil {
		t.Fatalf("ComputeRoutes: %v", err)
	}
	r, _ := p.Route("a", "b")
	if len(r.Links) != 1 || r.Links[0] != forced {
		t.Errorf("explicit route overwritten: %v", names(r.Links))
	}
}

func TestConnectUnknownNode(t *testing.T) {
	p := New()
	p.AddHost(mkHost("a"))
	if err := p.Connect("a", "ghost", mkLink("l", 1, 0)); err == nil {
		t.Error("Connect to unknown node accepted")
	}
}

func TestAccessorsSorted(t *testing.T) {
	p := New()
	p.AddHost(mkHost("z"))
	p.AddHost(mkHost("a"))
	p.AddRouter("r2")
	p.AddRouter("r1")
	p.AddLink(mkLink("lz", 1, 0))
	p.AddLink(mkLink("la", 1, 0))
	hosts := p.Hosts()
	if hosts[0].Name != "a" || hosts[1].Name != "z" {
		t.Errorf("Hosts not sorted: %v", hosts)
	}
	links := p.Links()
	if links[0].Name != "la" || links[1].Name != "lz" {
		t.Errorf("Links not sorted: %v", links)
	}
	routers := p.Routers()
	if routers[0] != "r1" || routers[1] != "r2" {
		t.Errorf("Routers not sorted: %v", routers)
	}
	if p.Host("a") == nil || p.Host("nope") != nil {
		t.Error("Host lookup wrong")
	}
	if p.Link("la") == nil || p.Link("nope") != nil {
		t.Error("Link lookup wrong")
	}
}

func TestHostProperties(t *testing.T) {
	h := &Host{Name: "h", Power: 1, Properties: map[string]string{"arch": "sparc"}}
	if h.Property("arch") != "sparc" {
		t.Error("Property lookup failed")
	}
	if h.Property("missing") != "" {
		t.Error("missing property not empty")
	}
	bare := &Host{Name: "b", Power: 1}
	if bare.Property("x") != "" {
		t.Error("nil map property not empty")
	}
}

func TestSharingPolicyString(t *testing.T) {
	if Shared.String() != "shared" || Fatpipe.String() != "fatpipe" {
		t.Error("policy strings wrong")
	}
}

func TestWaxmanDeterministic(t *testing.T) {
	p1, err := GenerateWaxman(DefaultWaxmanConfig(10, 42))
	if err != nil {
		t.Fatalf("GenerateWaxman: %v", err)
	}
	p2, err := GenerateWaxman(DefaultWaxmanConfig(10, 42))
	if err != nil {
		t.Fatalf("GenerateWaxman: %v", err)
	}
	l1, l2 := p1.Links(), p2.Links()
	if len(l1) != len(l2) {
		t.Fatalf("different link counts: %d vs %d", len(l1), len(l2))
	}
	for i := range l1 {
		if l1[i].Name != l2[i].Name || l1[i].Bandwidth != l2[i].Bandwidth || l1[i].Latency != l2[i].Latency {
			t.Fatalf("link %d differs between same-seed runs", i)
		}
	}
}

func TestWaxmanConnected(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 99, 12345} {
		p, err := GenerateWaxman(DefaultWaxmanConfig(12, seed))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := p.Validate(true); err != nil {
			t.Errorf("seed %d: platform not fully routable: %v", seed, err)
		}
		if len(p.Hosts()) != 12 {
			t.Errorf("seed %d: %d hosts, want 12", seed, len(p.Hosts()))
		}
	}
}

func TestWaxmanValidation(t *testing.T) {
	if _, err := GenerateWaxman(DefaultWaxmanConfig(1, 1)); err == nil {
		t.Error("1-node topology accepted")
	}
	cfg := DefaultWaxmanConfig(4, 1)
	cfg.Alpha = 0
	if _, err := GenerateWaxman(cfg); err == nil {
		t.Error("zero alpha accepted")
	}
	cfg = DefaultWaxmanConfig(4, 1)
	cfg.MaxBandwidth = cfg.MinBandwidth / 2
	if _, err := GenerateWaxman(cfg); err == nil {
		t.Error("inverted bandwidth range accepted")
	}
	cfg = DefaultWaxmanConfig(4, 1)
	cfg.MinLatency = -1
	if _, err := GenerateWaxman(cfg); err == nil {
		t.Error("negative latency accepted")
	}
}

// Property: Waxman platforms of any size/seed are connected and within
// the configured ranges.
func TestWaxmanRangesProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := 2 + int(nRaw%20)
		cfg := DefaultWaxmanConfig(n, seed)
		p, err := GenerateWaxman(cfg)
		if err != nil {
			return false
		}
		for _, l := range p.Links() {
			if strings.HasPrefix(l.Name, "lan") {
				continue // host attachment links use a wider range
			}
			if l.Bandwidth < cfg.MinBandwidth-1e-9 || l.Bandwidth > cfg.MaxBandwidth+1e-9 {
				return false
			}
			if l.Latency < cfg.MinLatency-1e-12 || l.Latency > cfg.MaxLatency+1e-12 {
				return false
			}
		}
		return p.Validate(true) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	src := `{
	  "hosts": [
	    {"name": "h1", "power": 1e9, "properties": {"arch": "x86"}},
	    {"name": "h2", "power": 2e9,
	     "availability": "PERIODICITY 10\n0 1\n5 0.5"}
	  ],
	  "routers": ["r1"],
	  "links": [
	    {"name": "l1", "bandwidth": 1.25e7, "latency": 0.0001},
	    {"name": "l2", "bandwidth": 1.25e6, "latency": 0.01, "policy": "fatpipe"}
	  ],
	  "edges": [
	    {"a": "h1", "b": "r1", "link": "l1"},
	    {"a": "r1", "b": "h2", "link": "l2"}
	  ]
	}`
	p, err := Load(strings.NewReader(src))
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if p.Host("h1").Property("arch") != "x86" {
		t.Error("host property lost")
	}
	if p.Host("h2").Availability == nil {
		t.Error("availability trace lost")
	}
	if p.Link("l2").Policy != Fatpipe {
		t.Error("fatpipe policy lost")
	}
	r, err := p.Route("h1", "h2")
	if err != nil {
		t.Fatalf("Route: %v", err)
	}
	if len(r.Links) != 2 {
		t.Errorf("computed route has %d links, want 2", len(r.Links))
	}
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	p2, err := Load(&buf)
	if err != nil {
		t.Fatalf("reload: %v", err)
	}
	if len(p2.Hosts()) != 2 || len(p2.Links()) != 2 {
		t.Errorf("round trip lost elements: %d hosts %d links", len(p2.Hosts()), len(p2.Links()))
	}
	if _, err := p2.Route("h1", "h2"); err != nil {
		t.Errorf("round-tripped route: %v", err)
	}
}

func TestJSONExplicitRoutes(t *testing.T) {
	src := `{
	  "hosts": [{"name": "a", "power": 1}, {"name": "b", "power": 1}],
	  "links": [{"name": "l", "bandwidth": 1000, "latency": 0.5}],
	  "routes": [{"src": "a", "dst": "b", "links": ["l"]}]
	}`
	p, err := Load(strings.NewReader(src))
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	r, err := p.Route("a", "b")
	if err != nil || len(r.Links) != 1 {
		t.Fatalf("route: %v %v", r, err)
	}
}

func TestJSONErrors(t *testing.T) {
	bad := []string{
		`{`,
		`{"unknown_field": 1}`,
		`{"hosts": [{"name": "a", "power": 0}]}`,
		`{"hosts": [{"name": "a", "power": 1, "availability": "garbage here"}]}`,
		`{"hosts": [{"name": "a", "power": 1}], "links": [{"name": "l", "bandwidth": 1, "latency": 0, "policy": "warp"}]}`,
		`{"hosts": [{"name": "a", "power": 1}], "edges": [{"a": "a", "b": "a", "link": "ghost"}]}`,
		`{"hosts": [{"name": "a", "power": 1}], "routes": [{"src": "a", "dst": "a", "links": ["ghost"]}]}`,
	}
	for i, src := range bad {
		if _, err := Load(strings.NewReader(src)); err == nil {
			t.Errorf("case %d: bad JSON accepted", i)
		}
	}
}

func TestValidateCatchesForeignLink(t *testing.T) {
	p := New()
	p.AddHost(mkHost("a"))
	p.AddHost(mkHost("b"))
	foreign := mkLink("foreign", 1, 0)
	p.AddRoute("a", "b", []*Link{foreign})
	// Replace the registered link with a different object of same name.
	p.links["foreign"] = mkLink("foreign", 2, 0)
	if err := p.Validate(false); err == nil {
		t.Error("Validate missed foreign link")
	}
}

func names(links []*Link) []string {
	out := make([]string, len(links))
	for i, l := range links {
		out[i] = l.Name
	}
	return out
}
