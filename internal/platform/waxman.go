// BRITE-like random topology generation using the Waxman model, which is
// what BRITE's router-level generator implements: nodes are placed
// uniformly in a square and each pair is connected with probability
// alpha * exp(-d / (beta * L)) where d is the Euclidean distance and L
// the maximum possible distance. The paper's validation experiment uses
// "a random topology generated with BRITE (random bandwidths and
// latencies)".

package platform

import (
	"fmt"
	"math"
	"math/rand"
)

// WaxmanConfig parameterizes the random topology generator.
type WaxmanConfig struct {
	Nodes int // number of routers (each also carries one host)

	Alpha float64 // Waxman alpha (edge density), BRITE default 0.15
	Beta  float64 // Waxman beta (long-edge likelihood), BRITE default 0.2

	// Random ranges for link characteristics (uniform).
	MinBandwidth, MaxBandwidth float64 // bytes/s
	MinLatency, MaxLatency     float64 // seconds

	// HostPower is the compute power given to the host attached to each
	// router (flop/s).
	HostPower float64

	Seed int64
}

// DefaultWaxmanConfig mirrors BRITE's defaults with bandwidths in the
// 10–100 Mbit/s range and latencies of a metropolitan network.
func DefaultWaxmanConfig(nodes int, seed int64) WaxmanConfig {
	return WaxmanConfig{
		Nodes:        nodes,
		Alpha:        0.15,
		Beta:         0.2,
		MinBandwidth: 1.25e6, // 10 Mbit/s
		MaxBandwidth: 1.25e7, // 100 Mbit/s
		MinLatency:   0.0001, // 0.1 ms
		MaxLatency:   0.01,   // 10 ms
		HostPower:    1e9,    // 1 Gflop/s
		Seed:         seed,
	}
}

// GenerateWaxman builds a connected random platform: cfg.Nodes routers
// joined by Waxman-sampled links, one host ("hostN") hanging off each
// router through a fast LAN link. Routes are precomputed. The same seed
// always yields the same platform.
func GenerateWaxman(cfg WaxmanConfig) (*Platform, error) {
	if cfg.Nodes < 2 {
		return nil, fmt.Errorf("platform: waxman needs >= 2 nodes, got %d", cfg.Nodes)
	}
	if cfg.Alpha <= 0 || cfg.Beta <= 0 {
		return nil, fmt.Errorf("platform: waxman alpha/beta must be positive")
	}
	if cfg.MinBandwidth <= 0 || cfg.MaxBandwidth < cfg.MinBandwidth {
		return nil, fmt.Errorf("platform: bad bandwidth range [%g,%g]", cfg.MinBandwidth, cfg.MaxBandwidth)
	}
	if cfg.MinLatency < 0 || cfg.MaxLatency < cfg.MinLatency {
		return nil, fmt.Errorf("platform: bad latency range [%g,%g]", cfg.MinLatency, cfg.MaxLatency)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	p := New()

	type pt struct{ x, y float64 }
	pos := make([]pt, cfg.Nodes)
	for i := range pos {
		pos[i] = pt{rng.Float64(), rng.Float64()}
		if err := p.AddRouter(routerName(i)); err != nil {
			return nil, err
		}
	}
	maxDist := math.Sqrt2 // unit square diagonal

	// Generated links are split-duplex, matching the duplex links NS2
	// and GTNets build for the same topology.
	randLink := func(name string) *Link {
		return &Link{
			Name:      name,
			Bandwidth: cfg.MinBandwidth + rng.Float64()*(cfg.MaxBandwidth-cfg.MinBandwidth),
			Latency:   cfg.MinLatency + rng.Float64()*(cfg.MaxLatency-cfg.MinLatency),
			Policy:    SplitDuplex,
		}
	}

	// Waxman edges.
	nLinks := 0
	connected := make([]bool, cfg.Nodes)
	for i := 0; i < cfg.Nodes; i++ {
		for j := i + 1; j < cfg.Nodes; j++ {
			d := math.Hypot(pos[i].x-pos[j].x, pos[i].y-pos[j].y)
			prob := cfg.Alpha * math.Exp(-d/(cfg.Beta*maxDist))
			if rng.Float64() < prob {
				l := randLink(fmt.Sprintf("wax%d_%d", i, j))
				if err := p.Connect(routerName(i), routerName(j), l); err != nil {
					return nil, err
				}
				connected[i], connected[j] = true, true
				nLinks++
			}
		}
	}
	// Guarantee connectivity: chain every node to a random previous one
	// if the Waxman pass left it isolated, then add a spanning chain
	// between components via a union-find sweep.
	uf := newUnionFind(cfg.Nodes)
	for _, e := range p.edges {
		uf.union(routerIndex(e.a), routerIndex(e.b))
	}
	for i := 1; i < cfg.Nodes; i++ {
		if uf.find(i) != uf.find(0) {
			j := rng.Intn(i)
			l := randLink(fmt.Sprintf("join%d_%d", j, i))
			if err := p.Connect(routerName(j), routerName(i), l); err != nil {
				return nil, err
			}
			uf.union(i, j)
			nLinks++
		}
	}

	// One host per router, attached by a fast local link so that the
	// interesting contention happens on the Waxman core.
	for i := 0; i < cfg.Nodes; i++ {
		h := &Host{Name: hostName(i), Power: cfg.HostPower}
		if err := p.AddHost(h); err != nil {
			return nil, err
		}
		lan := &Link{
			Name:      fmt.Sprintf("lan%d", i),
			Bandwidth: cfg.MaxBandwidth * 10,
			Latency:   cfg.MinLatency / 10,
			Policy:    SplitDuplex,
		}
		if err := p.Connect(hostName(i), routerName(i), lan); err != nil {
			return nil, err
		}
	}

	if err := p.ComputeRoutes(); err != nil {
		return nil, err
	}
	return p, nil
}

func routerName(i int) string { return fmt.Sprintf("router%d", i) }
func hostName(i int) string   { return fmt.Sprintf("host%d", i) }

// routerIndex parses the index out of routerN / hostN names; hosts do
// not appear in the Waxman edge set at union-find time.
func routerIndex(name string) int {
	var i int
	fmt.Sscanf(name, "router%d", &i)
	return i
}

type unionFind struct{ parent []int }

func newUnionFind(n int) *unionFind {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	return &unionFind{parent: p}
}

func (u *unionFind) find(x int) int {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

func (u *unionFind) union(a, b int) {
	ra, rb := u.find(a), u.find(b)
	if ra != rb {
		u.parent[ra] = rb
	}
}
