// Package gantt records per-process activity intervals during a
// simulation and renders them as an ASCII Gantt chart, reproducing the
// paper's execution figure ("Dark portions denote computations, light
// portions denote communications").
//
// Key invariant: the recorder is a passive observer — recording is
// driven entirely by the layers above (msg processes, simdag tasks)
// and never influences virtual time or scheduling, so enabling a chart
// cannot change a simulation's outcome.
package gantt

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Kind classifies an interval.
type Kind int

// Interval kinds. Compute renders dark ('#'), Comm light ('='), Wait
// as receive-idle ('.').
const (
	Compute Kind = iota
	Comm
	Wait
)

func (k Kind) String() string {
	switch k {
	case Compute:
		return "compute"
	case Comm:
		return "comm"
	case Wait:
		return "wait"
	default:
		return "unknown"
	}
}

// glyph is the fill character used when rendering the kind.
func (k Kind) glyph() byte {
	switch k {
	case Compute:
		return '#'
	case Comm:
		return '='
	case Wait:
		return '.'
	default:
		return '?'
	}
}

// Interval is one activity span on a track (usually one simulated
// process or host per track).
type Interval struct {
	Track string
	Kind  Kind
	Label string
	Start float64
	End   float64
}

// Duration returns End - Start.
func (iv Interval) Duration() float64 { return iv.End - iv.Start }

// Recorder accumulates intervals. The zero value is ready to use.
type Recorder struct {
	intervals []Interval
	open      map[string]*Interval // per track, the in-flight interval
}

// Add records a closed interval.
func (r *Recorder) Add(track string, kind Kind, label string, start, end float64) {
	if end < start {
		start, end = end, start
	}
	r.intervals = append(r.intervals, Interval{
		Track: track, Kind: kind, Label: label, Start: start, End: end,
	})
}

// Begin opens an interval on a track; End closes it. At most one
// interval may be open per track (nested activities close the previous
// one first).
func (r *Recorder) Begin(track string, kind Kind, label string, at float64) {
	if r.open == nil {
		r.open = make(map[string]*Interval)
	}
	if iv := r.open[track]; iv != nil {
		r.Add(iv.Track, iv.Kind, iv.Label, iv.Start, at)
	}
	r.open[track] = &Interval{Track: track, Kind: kind, Label: label, Start: at}
}

// End closes the open interval on a track, if any.
func (r *Recorder) End(track string, at float64) {
	iv := r.open[track]
	if iv == nil {
		return
	}
	delete(r.open, track)
	r.Add(iv.Track, iv.Kind, iv.Label, iv.Start, at)
}

// Intervals returns a copy of the recorded intervals sorted by track
// then start time.
func (r *Recorder) Intervals() []Interval {
	out := make([]Interval, len(r.intervals))
	copy(out, r.intervals)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Track != out[j].Track {
			return out[i].Track < out[j].Track
		}
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].End < out[j].End
	})
	return out
}

// Tracks returns the distinct track names, sorted.
func (r *Recorder) Tracks() []string {
	seen := map[string]bool{}
	var out []string
	for _, iv := range r.intervals {
		if !seen[iv.Track] {
			seen[iv.Track] = true
			out = append(out, iv.Track)
		}
	}
	sort.Strings(out)
	return out
}

// Span returns the (min start, max end) over all intervals.
func (r *Recorder) Span() (start, end float64) {
	if len(r.intervals) == 0 {
		return 0, 0
	}
	start, end = math.Inf(1), math.Inf(-1)
	for _, iv := range r.intervals {
		if iv.Start < start {
			start = iv.Start
		}
		if iv.End > end {
			end = iv.End
		}
	}
	return start, end
}

// TotalByKind sums interval durations per kind for one track
// (or all tracks when track is "").
func (r *Recorder) TotalByKind(track string) map[Kind]float64 {
	out := make(map[Kind]float64)
	for _, iv := range r.intervals {
		if track != "" && iv.Track != track {
			continue
		}
		out[iv.Kind] += iv.Duration()
	}
	return out
}

// Render writes an ASCII Gantt chart, one row per track, `width`
// columns of timeline. Later intervals overdraw earlier ones; Compute
// overdraws Comm overdraws Wait within the same cell.
func (r *Recorder) Render(w io.Writer, width int) error {
	return r.render(w, width, false)
}

// RenderLabeled is Render with each span carrying its (truncated)
// label text over the fill glyphs — the DAG-view: one row per host,
// task names readable in place.
func (r *Recorder) RenderLabeled(w io.Writer, width int) error {
	return r.render(w, width, true)
}

func (r *Recorder) render(w io.Writer, width int, labeled bool) error {
	if width < 10 {
		width = 10
	}
	start, end := r.Span()
	if end <= start {
		_, err := fmt.Fprintln(w, "(empty gantt)")
		return err
	}
	scale := float64(width) / (end - start)
	tracks := r.Tracks()
	nameW := 0
	for _, tr := range tracks {
		if len(tr) > nameW {
			nameW = len(tr)
		}
	}
	// Kind precedence per cell so thin computations stay visible.
	prec := func(b byte) int {
		switch b {
		case '#':
			return 3
		case '=':
			return 2
		case '.':
			return 1
		default:
			return 0
		}
	}
	for _, tr := range tracks {
		row := make([]byte, width)
		for i := range row {
			row[i] = ' '
		}
		for _, iv := range r.intervals {
			if iv.Track != tr {
				continue
			}
			c0 := int((iv.Start - start) * scale)
			c1 := int(math.Ceil((iv.End - start) * scale))
			if c1 <= c0 {
				c1 = c0 + 1
			}
			if c1 > width {
				c1 = width
			}
			g := iv.Kind.glyph()
			for i := c0; i < c1 && i < width; i++ {
				if prec(g) >= prec(row[i]) {
					row[i] = g
				}
			}
			if labeled && iv.Label != "" && c1-c0 >= 2 {
				// Overlay the label, truncated to the span, leaving the
				// first cell as the kind glyph so the fill stays legible.
				for i, j := c0+1, 0; i < c1-1 && i < width && j < len(iv.Label); i, j = i+1, j+1 {
					row[i] = iv.Label[j]
				}
			}
		}
		if _, err := fmt.Fprintf(w, "%-*s |%s|\n", nameW, tr, string(row)); err != nil {
			return err
		}
	}
	// Time axis.
	axis := fmt.Sprintf("%-*s +%s+", nameW, "", strings.Repeat("-", width))
	if _, err := fmt.Fprintln(w, axis); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%-*s  %-*.3g%*.3g\n", nameW, "", width/2, start, width-width/2, end)
	return err
}
