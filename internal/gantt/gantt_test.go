package gantt

import (
	"bytes"
	"strings"
	"testing"
)

func TestAddAndIntervals(t *testing.T) {
	var r Recorder
	r.Add("b", Comm, "x", 1, 2)
	r.Add("a", Compute, "y", 0, 1)
	r.Add("a", Wait, "z", 1, 3)
	ivs := r.Intervals()
	if len(ivs) != 3 {
		t.Fatalf("got %d intervals", len(ivs))
	}
	// Sorted by track then start.
	if ivs[0].Track != "a" || ivs[0].Start != 0 || ivs[2].Track != "b" {
		t.Errorf("sort order wrong: %+v", ivs)
	}
	if ivs[0].Duration() != 1 {
		t.Errorf("duration = %g", ivs[0].Duration())
	}
}

func TestAddSwapsReversedBounds(t *testing.T) {
	var r Recorder
	r.Add("a", Compute, "", 5, 2)
	iv := r.Intervals()[0]
	if iv.Start != 2 || iv.End != 5 {
		t.Errorf("bounds not normalized: %+v", iv)
	}
}

func TestBeginEnd(t *testing.T) {
	var r Recorder
	r.Begin("p", Compute, "work", 0)
	r.End("p", 2)
	ivs := r.Intervals()
	if len(ivs) != 1 || ivs[0].Start != 0 || ivs[0].End != 2 || ivs[0].Kind != Compute {
		t.Errorf("intervals = %+v", ivs)
	}
}

func TestBeginImplicitlyClosesPrevious(t *testing.T) {
	var r Recorder
	r.Begin("p", Compute, "a", 0)
	r.Begin("p", Comm, "b", 1)
	r.End("p", 3)
	ivs := r.Intervals()
	if len(ivs) != 2 {
		t.Fatalf("got %d intervals, want 2", len(ivs))
	}
	if ivs[0].Kind != Compute || ivs[0].End != 1 {
		t.Errorf("first = %+v", ivs[0])
	}
	if ivs[1].Kind != Comm || ivs[1].Start != 1 || ivs[1].End != 3 {
		t.Errorf("second = %+v", ivs[1])
	}
}

func TestEndWithoutBeginIsNoop(t *testing.T) {
	var r Recorder
	r.End("ghost", 1)
	if len(r.Intervals()) != 0 {
		t.Error("spurious interval")
	}
}

func TestTracksAndSpan(t *testing.T) {
	var r Recorder
	r.Add("z", Comm, "", 1, 4)
	r.Add("a", Compute, "", 0.5, 2)
	tracks := r.Tracks()
	if len(tracks) != 2 || tracks[0] != "a" || tracks[1] != "z" {
		t.Errorf("tracks = %v", tracks)
	}
	s, e := r.Span()
	if s != 0.5 || e != 4 {
		t.Errorf("span = %g..%g", s, e)
	}
}

func TestEmptySpan(t *testing.T) {
	var r Recorder
	s, e := r.Span()
	if s != 0 || e != 0 {
		t.Errorf("empty span = %g..%g", s, e)
	}
}

func TestTotalByKind(t *testing.T) {
	var r Recorder
	r.Add("a", Compute, "", 0, 2)
	r.Add("a", Comm, "", 2, 3)
	r.Add("b", Compute, "", 0, 5)
	tot := r.TotalByKind("a")
	if tot[Compute] != 2 || tot[Comm] != 1 {
		t.Errorf("per-track totals = %v", tot)
	}
	all := r.TotalByKind("")
	if all[Compute] != 7 {
		t.Errorf("global compute = %g, want 7", all[Compute])
	}
}

func TestRender(t *testing.T) {
	var r Recorder
	r.Add("client", Compute, "", 0, 5)
	r.Add("client", Comm, "", 5, 10)
	r.Add("server", Wait, "", 0, 5)
	r.Add("server", Compute, "", 5, 10)
	var buf bytes.Buffer
	if err := r.Render(&buf, 20); err != nil {
		t.Fatalf("Render: %v", err)
	}
	out := buf.String()
	if !strings.Contains(out, "client") || !strings.Contains(out, "server") {
		t.Errorf("missing tracks:\n%s", out)
	}
	if !strings.Contains(out, "#") || !strings.Contains(out, "=") || !strings.Contains(out, ".") {
		t.Errorf("missing glyphs:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // 2 tracks + axis + labels
		t.Errorf("got %d lines:\n%s", len(lines), out)
	}
	// Client row: first half compute, second half comm.
	clientRow := lines[0]
	if !strings.Contains(clientRow, "##########") {
		t.Errorf("client compute half missing: %q", clientRow)
	}
	if !strings.Contains(clientRow, "==========") {
		t.Errorf("client comm half missing: %q", clientRow)
	}
}

func TestRenderEmpty(t *testing.T) {
	var r Recorder
	var buf bytes.Buffer
	if err := r.Render(&buf, 30); err != nil {
		t.Fatalf("Render: %v", err)
	}
	if !strings.Contains(buf.String(), "empty") {
		t.Errorf("empty chart output: %q", buf.String())
	}
}

func TestRenderTinyIntervalVisible(t *testing.T) {
	var r Recorder
	r.Add("p", Comm, "", 0, 100)
	r.Add("p", Compute, "", 50, 50.001) // sub-pixel computation
	var buf bytes.Buffer
	if err := r.Render(&buf, 40); err != nil {
		t.Fatalf("Render: %v", err)
	}
	if !strings.Contains(buf.String(), "#") {
		t.Error("tiny interval invisible")
	}
}

func TestRenderMinWidth(t *testing.T) {
	var r Recorder
	r.Add("p", Compute, "", 0, 1)
	var buf bytes.Buffer
	if err := r.Render(&buf, 1); err != nil {
		t.Fatalf("Render: %v", err)
	}
	if len(buf.String()) == 0 {
		t.Error("no output")
	}
}

func TestKindStrings(t *testing.T) {
	if Compute.String() != "compute" || Comm.String() != "comm" ||
		Wait.String() != "wait" || Kind(7).String() != "unknown" {
		t.Error("kind strings wrong")
	}
}
