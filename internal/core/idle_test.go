// Tests for the processless drive loop (RunUntilIdle), the Stop
// watch-point hook, and re-armable timers — the kernel surface the
// simdag subsystem runs on.
package core

import (
	"math"
	"testing"
)

// seqModel completes one "action" per entry of completeAts, in order,
// invoking onComplete with the index — a pure kernel-level activity
// stream with no process attached.
type seqModel struct {
	completeAts []float64
	next        int
	onComplete  func(i int)
}

func (m *seqModel) NextEventTime(now float64) float64 {
	if m.next >= len(m.completeAts) {
		return math.Inf(1)
	}
	return m.completeAts[m.next]
}

func (m *seqModel) AdvanceTo(now, t float64) {
	for m.next < len(m.completeAts) && m.completeAts[m.next] <= t {
		i := m.next
		m.next++
		m.onComplete(i)
	}
}

func TestRunUntilIdleNoProcesses(t *testing.T) {
	e := New()
	var completed []float64
	m := &seqModel{completeAts: []float64{1, 3, 7}}
	m.onComplete = func(i int) { completed = append(completed, e.Now()) }
	e.AddModel(m)
	var timerAt float64
	e.At(5, func() { timerAt = e.Now() })
	if err := e.RunUntilIdle(); err != nil {
		t.Fatalf("RunUntilIdle: %v", err)
	}
	if e.Spawned() != 0 {
		t.Errorf("Spawned() = %d, want 0", e.Spawned())
	}
	if len(completed) != 3 || completed[2] != 7 {
		t.Errorf("completions at %v, want [1 3 7]", completed)
	}
	if timerAt != 5 {
		t.Errorf("timer fired at %g, want 5", timerAt)
	}
	if e.Now() != 7 {
		t.Errorf("clock at %g, want 7", e.Now())
	}
}

// TestRunUntilIdleStopResume pins the watch-point contract: Stop from a
// completion callback returns control once the instant has settled, and
// a later RunUntilIdle resumes with nothing lost.
func TestRunUntilIdleStopResume(t *testing.T) {
	e := New()
	var completed []int
	m := &seqModel{completeAts: []float64{1, 2, 4}}
	m.onComplete = func(i int) {
		completed = append(completed, i)
		if i == 1 {
			e.Stop() // watch point on the second completion
		}
	}
	e.AddModel(m)
	if err := e.RunUntilIdle(); err != nil {
		t.Fatalf("first RunUntilIdle: %v", err)
	}
	if len(completed) != 2 || e.Now() != 2 {
		t.Fatalf("stopped with completions %v at t=%g, want [0 1] at 2", completed, e.Now())
	}
	if err := e.RunUntilIdle(); err != nil {
		t.Fatalf("second RunUntilIdle: %v", err)
	}
	if len(completed) != 3 || e.Now() != 4 {
		t.Errorf("resumed run ended with %v at t=%g, want [0 1 2] at 4", completed, e.Now())
	}
}

// TestRunUntilIdleDispatchesProcesses checks the idle drive still
// schedules processes that wake mid-run (mixed kernel/process use), and
// that quiescence with a blocked process is not an error: the caller
// owns completeness.
func TestRunUntilIdleDispatchesProcesses(t *testing.T) {
	e := New()
	var sleptUntil float64
	e.Spawn("sleeper", nil, func(p *Process) {
		p.Sleep(3)
		sleptUntil = e.Now()
		p.Block() // parks forever: idle drive must still end cleanly
	})
	if err := e.RunUntilIdle(); err != nil {
		t.Fatalf("RunUntilIdle: %v", err)
	}
	if sleptUntil != 3 {
		t.Errorf("process resumed at %g, want 3", sleptUntil)
	}
	if e.Now() != 3 {
		t.Errorf("clock at %g, want 3", e.Now())
	}
	// Release the parked goroutine.
	e.ProcessByPID(1).Kill()
	_ = e.RunUntilIdle()
}

func TestRunUntilIdleMaxTime(t *testing.T) {
	e := New()
	m := &seqModel{completeAts: []float64{10}}
	m.onComplete = func(int) {}
	e.AddModel(m)
	e.MaxTime = 4
	if err := e.RunUntilIdle(); err != nil {
		t.Fatalf("RunUntilIdle: %v", err)
	}
	if e.Now() != 4 {
		t.Errorf("clock at %g, want MaxTime 4", e.Now())
	}
	if m.next != 0 {
		t.Errorf("completion beyond MaxTime fired")
	}
}

// TestTimerRearm drives one timer through fire → Rearm cycles and a
// pending move, the pattern the trace re-arm loop relies on.
func TestTimerRearm(t *testing.T) {
	e := New()
	var fired []float64
	var tm *Timer
	count := 0
	tm = e.At(1, func() {
		fired = append(fired, e.Now())
		count++
		if count < 3 {
			tm.Rearm(e.Now() + 2)
		}
	})
	if err := e.RunUntilIdle(); err != nil {
		t.Fatalf("RunUntilIdle: %v", err)
	}
	want := []float64{1, 3, 5}
	if len(fired) != len(want) {
		t.Fatalf("fired at %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired at %v, want %v", fired, want)
		}
	}

	// Rearm a pending timer: it must move, not fire twice.
	e2 := New()
	var at []float64
	var tm2 *Timer
	tm2 = e2.At(10, func() { at = append(at, e2.Now()) })
	e2.At(1, func() { tm2.Rearm(2) })
	if err := e2.RunUntilIdle(); err != nil {
		t.Fatalf("RunUntilIdle: %v", err)
	}
	if len(at) != 1 || at[0] != 2 {
		t.Errorf("moved timer fired at %v, want [2]", at)
	}

	// Rearm a canceled-but-pending timer: it revives at the new time.
	e3 := New()
	var at3 []float64
	var tm3 *Timer
	tm3 = e3.At(10, func() { at3 = append(at3, e3.Now()) })
	e3.At(1, func() { tm3.Cancel(); tm3.Rearm(3) })
	if err := e3.RunUntilIdle(); err != nil {
		t.Fatalf("RunUntilIdle: %v", err)
	}
	if len(at3) != 1 || at3[0] != 3 {
		t.Errorf("revived timer fired at %v, want [3]", at3)
	}
}
