package core

import (
	"errors"
	"testing"
)

// fakeActivity implements Activity for fast/slow path tests.
type fakeActivity struct {
	done     bool
	err      error
	attached *Process
}

func (f *fakeActivity) Poll() (bool, error) { return f.done, f.err }
func (f *fakeActivity) Attach(p *Process)   { f.attached = p }

// TestSleepZeroFastPath pins the fast path: a zero (or negative)
// duration sleep has nothing to wait for and completes with zero
// channel round trips, counted by the engine's fast-path counter.
func TestSleepZeroFastPath(t *testing.T) {
	e := New()
	e.Spawn("p", nil, func(p *Process) {
		if err := p.Sleep(0); err != nil {
			t.Errorf("Sleep(0): %v", err)
		}
		if err := p.Sleep(-3); err != nil {
			t.Errorf("Sleep(-3): %v", err)
		}
		st := e.SimcallStats()
		if st.Fast != 2 {
			t.Errorf("Fast = %d, want 2", st.Fast)
		}
		if st.Slow != 0 {
			t.Errorf("Slow = %d, want 0 (no round trip for zero sleeps)", st.Slow)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

// TestSleepZeroYieldsWhenOthersRunnable documents the fast-path guard:
// a zero sleep is only answered inline when nobody else is schedulable
// at this instant — with another runnable process it still yields (the
// pre-refactor behaviour), so zero-sleep polling loops cannot starve
// the simulation.
func TestSleepZeroYieldsWhenOthersRunnable(t *testing.T) {
	e := New()
	var order []string
	e.Spawn("a", nil, func(p *Process) {
		p.Sleep(0) // b is runnable: must park behind it
		order = append(order, "a")
	})
	e.Spawn("b", nil, func(p *Process) {
		order = append(order, "b")
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(order) != 2 || order[0] != "b" || order[1] != "a" {
		t.Errorf("order = %v, want [b a]", order)
	}
	if st := e.SimcallStats(); st.Fast != 0 {
		t.Errorf("Fast = %d, want 0 (guarded zero sleep must take the slow path)", st.Fast)
	}
}

// TestSleepZeroPollingLoopProgresses pins the livelock guard end to
// end: a process polling with Sleep(0) must not prevent the process
// that satisfies its condition from running.
func TestSleepZeroPollingLoopProgresses(t *testing.T) {
	e := New()
	done := false
	e.Spawn("poller", nil, func(p *Process) {
		for i := 0; !done; i++ {
			if i > 100 {
				t.Error("polling loop starved the setter")
				return
			}
			p.Sleep(0)
		}
	})
	e.Spawn("setter", nil, func(p *Process) {
		done = true
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !done {
		t.Error("setter never ran")
	}
}

// TestYieldFastPathEmptyQueue: yielding with nobody else runnable is
// answered inline.
func TestYieldFastPathEmptyQueue(t *testing.T) {
	e := New()
	e.Spawn("solo", nil, func(p *Process) {
		p.Yield()
		st := e.SimcallStats()
		if st.Fast != 1 {
			t.Errorf("Fast = %d, want 1", st.Fast)
		}
		if st.Slow != 0 {
			t.Errorf("Slow = %d, want 0", st.Slow)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

// TestWaitActivityFastPath: waiting on a completed activity returns its
// outcome inline, with no handoff.
func TestWaitActivityFastPath(t *testing.T) {
	e := New()
	sentinel := errors.New("outcome")
	e.Spawn("p", nil, func(p *Process) {
		a := &fakeActivity{done: true, err: sentinel}
		if err := p.WaitActivity(a); err != sentinel {
			t.Errorf("WaitActivity = %v, want sentinel", err)
		}
		if a.attached != nil {
			t.Error("fast path attached a waiter")
		}
		st := e.SimcallStats()
		if st.Fast != 1 || st.Slow != 0 {
			t.Errorf("stats = %+v, want Fast=1 Slow=0", st)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

// TestWaitActivitySlowPath: a pending activity parks the caller (one
// slow simcall) until its owner wakes it.
func TestWaitActivitySlowPath(t *testing.T) {
	e := New()
	a := &fakeActivity{}
	var wokeAt float64
	e.Spawn("p", nil, func(p *Process) {
		if err := p.WaitActivity(a); err != nil {
			t.Errorf("WaitActivity: %v", err)
		}
		wokeAt = e.Now()
	})
	e.At(2, func() {
		a.done = true
		e.Wake(a.attached, nil)
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if wokeAt != 2 {
		t.Errorf("woke at %g, want 2", wokeAt)
	}
	if st := e.SimcallStats(); st.Slow != 1 {
		t.Errorf("Slow = %d, want 1", st.Slow)
	}
}

// TestTestActivityNonBlocking: the probe never yields, whatever the
// activity state.
func TestTestActivityNonBlocking(t *testing.T) {
	e := New()
	e.Spawn("p", nil, func(p *Process) {
		a := &fakeActivity{}
		if done, _ := p.TestActivity(a); done {
			t.Error("pending activity reported done")
		}
		a.done = true
		if done, _ := p.TestActivity(a); !done {
			t.Error("completed activity reported pending")
		}
		if st := e.SimcallStats(); st.Fast != 2 || st.Slow != 0 {
			t.Errorf("stats = %+v, want Fast=2 Slow=0", st)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

// TestSimcallKindVisible: a blocked process reports the typed simcall
// it is stuck in.
func TestSimcallKindVisible(t *testing.T) {
	e := New()
	var sleeper, recver *Process
	e.Spawn("sleeper", nil, func(p *Process) {
		sleeper = p
		p.Sleep(5)
	})
	e.Spawn("recver", nil, func(p *Process) {
		recver = p
		_ = p.BlockOn(SimcallRecv)
	})
	e.Spawn("observer", nil, func(p *Process) {
		p.Sleep(1)
		if k := sleeper.Simcall(); k != SimcallSleep {
			t.Errorf("sleeper stuck in %v, want sleep", k)
		}
		if k := recver.Simcall(); k != SimcallRecv {
			t.Errorf("recver stuck in %v, want recv", k)
		}
		e.Wake(recver, nil)
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if sleeper.Simcall() != SimcallNone {
		t.Errorf("done process still reports %v", sleeper.Simcall())
	}
}

// TestDeadlockReportsSimcalls: the deadlock error names the typed
// simcall each blocked process is stuck in.
func TestDeadlockReportsSimcalls(t *testing.T) {
	e := New()
	e.Spawn("stuck-recv", nil, func(p *Process) { p.BlockOn(SimcallRecv) })
	err := e.Run()
	var dl *DeadlockError
	if !errors.As(err, &dl) {
		t.Fatalf("Run = %v, want DeadlockError", err)
	}
	if len(dl.Calls) != 1 || dl.Calls[0] != SimcallRecv {
		t.Errorf("Calls = %v, want [recv]", dl.Calls)
	}
}

// TestKillClearsPendingWake is the regression test for stale deferred
// wakes: a wake that arrived while the victim was suspended must not
// shadow ErrKilled.
func TestKillClearsPendingWake(t *testing.T) {
	e := New()
	stale := errors.New("stale wake")
	var victim *Process
	cleanedUp := false
	e.Spawn("victim", nil, func(p *Process) {
		victim = p
		defer func() { cleanedUp = true }()
		p.Block()
		t.Error("killed process continued after Block")
	})
	e.Spawn("killer", nil, func(p *Process) {
		p.Sleep(1)
		victim.Suspend()
		e.Wake(victim, stale) // deferred: victim is suspended
		if victim.pendingWake == nil {
			t.Error("wake-while-suspended was not deferred")
		}
		victim.Kill()
		if victim.pendingWake != nil {
			t.Error("Kill left a stale pendingWake")
		}
		victim.Resume() // must not resurrect the stale wake
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !cleanedUp {
		t.Error("victim defers did not run")
	}
	if victim.Err() != ErrKilled {
		t.Errorf("victim.Err() = %v, want ErrKilled (stale wake must not shadow it)", victim.Err())
	}
}

// TestKillWhileSuspended: killing a suspended-while-blocked process
// unwinds it with ErrKilled even though it was parked.
func TestKillWhileSuspended(t *testing.T) {
	e := New()
	var victim *Process
	cleanedUp := false
	e.Spawn("victim", nil, func(p *Process) {
		victim = p
		defer func() { cleanedUp = true }()
		p.Block()
	})
	e.Spawn("driver", nil, func(p *Process) {
		p.Sleep(1)
		victim.Suspend()
		p.Sleep(1)
		victim.Kill()
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !cleanedUp {
		t.Error("victim defers did not run")
	}
	if victim.Err() != ErrKilled {
		t.Errorf("victim.Err() = %v, want ErrKilled", victim.Err())
	}
}

// TestSuspendRunnableRedeliversWake: suspending a process that was
// already woken (Runnable) parks it again, and Resume re-delivers the
// original wake error.
func TestSuspendRunnableRedeliversWake(t *testing.T) {
	e := New()
	sentinel := errors.New("sentinel")
	var victim *Process
	var gotErr error
	var wokeAt float64
	e.Spawn("victim", nil, func(p *Process) {
		victim = p
		gotErr = p.Block()
		wokeAt = e.Now()
	})
	e.Spawn("driver", nil, func(p *Process) {
		p.Sleep(1)
		e.Wake(victim, sentinel) // victim runnable with the sentinel
		victim.Suspend()         // suspended before it runs
		p.Sleep(2)               // the scheduler parks it meanwhile
		victim.Resume()
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if gotErr != sentinel {
		t.Errorf("Block returned %v, want sentinel (wake re-delivered on resume)", gotErr)
	}
	if wokeAt != 3 {
		t.Errorf("woke at %g, want 3", wokeAt)
	}
}

// TestResumeAfterSameInstantWake: two waiters woken in the same batch;
// one is suspended in the same instant and must only see its wake after
// Resume.
func TestResumeAfterSameInstantWake(t *testing.T) {
	e := New()
	var w1, w2 *Process
	var woke1, woke2 float64
	e.Spawn("w1", nil, func(p *Process) {
		w1 = p
		if err := p.Block(); err != nil {
			t.Errorf("w1: %v", err)
		}
		woke1 = e.Now()
	})
	e.Spawn("w2", nil, func(p *Process) {
		w2 = p
		if err := p.Block(); err != nil {
			t.Errorf("w2: %v", err)
		}
		woke2 = e.Now()
	})
	e.At(1, func() {
		e.WakeAll([]*Process{w1, w2}, nil)
		w2.Suspend() // same instant: w2 must stay parked
	})
	e.At(2, func() { w2.Resume() })
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if woke1 != 1 {
		t.Errorf("w1 woke at %g, want 1", woke1)
	}
	if woke2 != 2 {
		t.Errorf("w2 woke at %g, want 2 (after resume)", woke2)
	}
}

// TestWakeAllRunsInOrder: a batched wake enqueues the waiters
// contiguously, in slice order.
func TestWakeAllRunsInOrder(t *testing.T) {
	e := New()
	const n = 5
	procs := make([]*Process, n)
	var order []int
	for i := 0; i < n; i++ {
		i := i
		procs[i] = e.Spawn("w", nil, func(p *Process) {
			if err := p.Block(); err != nil {
				t.Errorf("w%d: %v", i, err)
			}
			order = append(order, i)
		})
	}
	e.At(1, func() { e.WakeAll([]*Process{procs[3], procs[1], procs[4], procs[0], procs[2]}, nil) })
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []int{3, 1, 4, 0, 2}
	for i := range want {
		if i >= len(order) || order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

// TestSuspendSelfCarrierStaysParked is the regression test for the
// dispatch check order: the kernel turn runs on the sole waiting
// process's own stack; a timer wakes it and suspends it in the same
// instant, and it must stay parked until Resume — the self-dispatch
// shortcut must not bypass the suspended check.
func TestSuspendSelfCarrierStaysParked(t *testing.T) {
	e := New()
	var victim *Process
	var wokeAt float64
	e.Spawn("victim", nil, func(p *Process) {
		victim = p
		if err := p.Block(); err != nil {
			t.Errorf("Block: %v", err)
		}
		wokeAt = e.Now()
		if p.Suspended() {
			t.Error("process ran while suspended")
		}
	})
	e.At(1, func() {
		e.Wake(victim, nil)
		victim.Suspend()
	})
	e.At(2, func() { victim.Resume() })
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if wokeAt != 2 {
		t.Errorf("woke at %g, want 2 (after resume)", wokeAt)
	}
}

// TestKillWhileRunningKernelTurn: a timer killing the very process
// whose goroutine carries the kernel turn must unwind it cleanly.
func TestKillWhileRunningKernelTurn(t *testing.T) {
	e := New()
	var victim *Process
	cleanedUp := false
	e.Spawn("victim", nil, func(p *Process) {
		victim = p
		defer func() { cleanedUp = true }()
		p.Sleep(10) // parks; its own stack runs the kernel turn
	})
	e.At(1, func() { victim.Kill() })
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !cleanedUp {
		t.Error("victim defers did not run")
	}
	if victim.Err() != ErrKilled {
		t.Errorf("victim.Err() = %v, want ErrKilled", victim.Err())
	}
	if e.Now() != 1 {
		t.Errorf("ended at %g, want 1", e.Now())
	}
}
