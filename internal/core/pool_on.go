//go:build !nopool

package core

// poolingEnabled gates the package-level worker pool (parked process
// goroutines reused across process and engine lifetimes). Build with
// -tags=nopool to spawn a fresh, single-use goroutine per process —
// the reference behaviour the pool-reuse equivalence suite replays
// against. A var, not a const, so in-package tests can flip it at
// runtime.
var poolingEnabled = true
