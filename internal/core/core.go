// Package core implements the discrete-event simulation kernel
// underlying the whole stack: a virtual clock, a timed-event queue, and
// cooperative scheduling of simulated processes.
//
// Each simulated process runs in its own goroutine (the paper's
// "processes in a single address space"; goroutines map naturally onto
// SimGrid's ucontexts). The kernel enforces strictly one-at-a-time
// execution with a kernel token passed by direct handoff: a parking
// process wakes the next runnable goroutine itself (one channel
// synchronization per activation) and the engine goroutine only runs
// between rounds, to advance virtual time. This makes runs
// deterministic and keeps all simulation state free of locks. Processes
// enter the kernel through typed simcalls (see simcall.go), several of
// which are answered inline without any handoff at all.
//
// Resource models (package surf) plug into the engine through the Model
// interface: the engine asks every model for its next completion time,
// advances the clock to the earliest event (model completion or timer),
// fires timers, and lets models complete actions — which wakes the
// processes blocked on them.
package core

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
	"runtime/debug"
	"sort"

	"repro/internal/instr"
)

// State describes a simulated process's lifecycle stage.
type State int

// Process lifecycle states.
const (
	// Created means the process exists but has not run yet.
	Created State = iota
	// Runnable means the process is in the run queue.
	Runnable
	// Running means the process is the one currently executing.
	Running
	// Waiting means the process is blocked in a simcall.
	Waiting
	// Done means the process function returned or the process was killed.
	Done
)

func (s State) String() string {
	switch s {
	case Created:
		return "created"
	case Runnable:
		return "runnable"
	case Running:
		return "running"
	case Waiting:
		return "waiting"
	case Done:
		return "done"
	default:
		return fmt.Sprintf("state(%d)", int(s)) //lint:allow hot-sprintf cold path: unknown-state debug rendering, never on the activity path
	}
}

// ErrKilled is delivered to a process that is forcibly terminated.
var ErrKilled = errors.New("core: process killed")

// ErrHostFailed is delivered to processes whose current activity was
// aborted by a resource failure.
var ErrHostFailed = errors.New("core: host failed")

// ErrLinkFailed is delivered when a network resource on the activity's
// route failed.
var ErrLinkFailed = errors.New("core: link failed")

// DeadlockError is returned by Run when processes remain but nothing can
// make progress (no pending action, no timer).
type DeadlockError struct {
	// Blocked lists the names of the processes stuck in a simcall.
	Blocked []string
	// Calls lists the typed simcall each blocked process is stuck in,
	// aligned with Blocked.
	Calls []SimcallKind
}

func (e *DeadlockError) Error() string {
	return fmt.Sprintf("core: simulation deadlocked with %d blocked processes: %v", len(e.Blocked), e.Blocked) //lint:allow hot-sprintf cold path: formatting a fatal diagnostic, the run is already over
}

// killedSignal unwinds a killed process's stack through panic/recover so
// that its defers run even if user code ignores returned errors.
type killedSignal struct{}

// PanicError records a process panic caught at the spawn site: the
// process that crashed, the panic value, and the goroutine stack at the
// point of the panic. With Engine.ContainPanics set it becomes the
// process's termination cause (Process.Err) and is collected in
// Engine.Panics; otherwise it aborts the whole run through Run's error.
type PanicError struct {
	PID   int
	Name  string
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("core: process %q (pid %d) panicked: %v", e.Name, e.PID, e.Value) //lint:allow hot-sprintf cold path: formatting a crash diagnostic
}

// Model is a resource model advancing a set of actions in virtual time.
//
// The engine contract: on every scheduling round, NextEventTime is
// called on each model (after all runnable processes and due timers
// have run) before the clock advances. It must be a pure query — the
// engine may additionally poll it mid-round (fast-path eligibility
// checks such as a zero sleep), so repeated calls at the same instant
// must be idempotent. AdvanceTo is then invoked — with
// no intervening process, timer, or model activity — but ONLY on the
// models whose reported next event time has been reached: a model that
// answered a time beyond the new clock value is skipped entirely for
// that step. Models must therefore keep progress bookkeeping lazily
// (e.g. absolute completion estimates re-derived when rates change, as
// surf does) rather than relying on AdvanceTo to integrate every
// elapsed interval. Models may cache state computed in NextEventTime
// and rely on it in the immediately following AdvanceTo; any engine
// refactor that decouples the two calls must revisit such caches.
type Model interface {
	// NextEventTime returns the earliest absolute time at which an
	// action managed by this model completes, or +Inf if none.
	NextEventTime(now float64) float64
	// AdvanceTo completes every action finishing at t, waking its
	// waiters via Engine.Wake. It is only called for steps with t at
	// (or, for multi-model engines, past) the model's reported next
	// event time.
	AdvanceTo(now, t float64)
}

// Process is a simulated process. It must only be manipulated from
// simulation context (inside process functions or timer callbacks).
type Process struct {
	pid  int
	name string
	host any // opaque to the kernel; upper layers store their host here

	engine *Engine
	fn     func(*Process)

	resume  chan error // handoff channel (value: wake error); aliases the carrier worker's channel
	state   State
	call    SimcallKind // simcall the process is blocked in
	wakeErr error

	killed      bool
	suspended   bool
	selfSuspend bool   // blocked because it suspended itself
	pendingWake *error // wake that arrived while suspended
	daemon      bool

	// sleepTm is the process's reusable sleep timer: one timer (and one
	// wake closure) per process for its whole lifetime, re-armed on
	// every Sleep, instead of a fresh timer allocation per call. Safe
	// because a process has at most one pending sleep, and its timer
	// has always fired (leaving the heap) before the next Sleep runs.
	sleepTm *timer

	// OnSuspend and OnResume, when non-nil, are invoked by
	// Suspend/Resume so resource layers can zero / restore the sharing
	// weight of the process's in-flight action.
	OnSuspend func()
	OnResume  func()

	onExit []func(err error)
	exited bool
	err    error // termination cause (nil for normal return)
}

// PID returns the process identifier (unique per engine, starting at 1).
func (p *Process) PID() int { return p.pid }

// Name returns the process name.
func (p *Process) Name() string { return p.name }

// Host returns the opaque host cookie set at spawn time.
func (p *Process) Host() any { return p.host }

// SetHost updates the host cookie (process migration).
func (p *Process) SetHost(h any) { p.host = h }

// State returns the process state.
func (p *Process) State() State { return p.state }

// Engine returns the engine the process belongs to.
func (p *Process) Engine() *Engine { return p.engine }

// Daemonize marks the process as a daemon: the simulation may end while
// daemons are still blocked (they are killed at engine shutdown). The
// paper's infinite-loop servers are daemons in our reproduction.
func (p *Process) Daemonize() {
	if !p.daemon && p.state != Done {
		p.daemon = true
		p.engine.live--
	}
}

// Daemon reports whether the process is a daemon.
func (p *Process) Daemon() bool { return p.daemon }

// OnExit registers fn to run (in kernel context) when the process
// terminates; err is nil for a normal return.
func (p *Process) OnExit(fn func(err error)) { p.onExit = append(p.onExit, fn) }

// Err returns the termination cause after the process is Done.
func (p *Process) Err() error { return p.err }

// timer is a scheduled callback in the future event set.
type timer struct {
	at       float64
	seq      int64
	fn       func()
	canceled bool
	index    int
}

// Timer handles a scheduled callback; Cancel prevents it from firing.
type Timer struct {
	t   *timer
	eng *Engine
}

// Cancel prevents the timer from firing. Safe to call multiple times.
func (t *Timer) Cancel() {
	if t != nil && t.t != nil {
		t.t.canceled = true
	}
}

// Time returns the absolute simulated time the timer fires at.
func (t *Timer) Time() float64 { return t.t.at }

// Rearm reschedules the timer at absolute time `at` (clamped to the
// current time if in the past), reusing the same timer and callback: a
// fired or canceled timer is pushed back into the event set, a still
// pending one is moved. Periodic drivers (trace events) re-arm one
// timer from inside its own callback instead of allocating a fresh
// closure-carrying timer per event.
func (t *Timer) Rearm(at float64) { t.t.rearm(t.eng, at) }

// rearm is the shared re-arm core, also used by the per-process sleep
// timer (Process.Sleep).
func (tm *timer) rearm(e *Engine, at float64) {
	if at < e.now {
		at = e.now
	}
	tm.at = at
	tm.seq = e.nextSeq
	e.nextSeq++
	tm.canceled = false
	if tm.index >= 0 {
		heap.Fix(&e.timers, tm.index)
		return
	}
	heap.Push(&e.timers, tm)
}

type timerHeap []*timer

func (h timerHeap) Len() int { return len(h) }
func (h timerHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h timerHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *timerHeap) Push(x any) {
	t := x.(*timer)
	t.index = len(*h)
	*h = append(*h, t)
}
func (h *timerHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	t.index = -1 // out of the heap: Rearm must re-push, not Fix
	old[n-1] = nil
	*h = old[:n-1]
	return t
}

// Engine is the simulation kernel. Create one with New, spawn processes,
// register models, then call Run.
type Engine struct {
	now     float64
	procs   map[int]*Process
	runQ    []*Process
	runHead int           // drain cursor into runQ (in-place queue reuse)
	schedCh chan struct{} // wakes the engine loop when a round is over
	timers  timerHeap
	models  []Model
	nextPID int
	nextSeq int64
	current *Process
	stats   SimcallStats

	modelNext []float64 // per-model next event time, filled each round
	live      int       // non-daemon processes (and external entities) not yet Done
	liveAll   int       // all processes not yet Done
	goSpawns  int       // fresh carrier goroutines created for this engine
	goLive    int       // processes currently backed by a goroutine (not Done)
	goPeak    int       // high-water mark of goLive
	fatal     error
	running   bool
	stopErr   error // deadlock error recorded by the kernel turn
	draining  bool  // shutdown drain: parkers must not advance time
	idleDrive bool  // RunUntilIdle: no live-process requirement, quiescence ends the run
	stopReq   bool  // Stop was called: the drive loop returns at the next round
	inKernel  bool  // a kernel turn is running: a panic reaching a spawn recover came from a kernel phase

	// MaxTime, when > 0, stops the simulation at that virtual time even
	// if activities remain (useful for steady-state measurements).
	MaxTime float64

	// ExternalBlocked, when set, names the external live entities (see
	// AddLive) that are currently blocked, aligned with the typed call
	// each is stuck in. The kernel consults it only to complete a
	// deadlock report: external entities keep Run going, so when
	// nothing can progress their identities belong in the error next
	// to the blocked processes.
	ExternalBlocked func() (names []string, calls []SimcallKind)

	// ContainPanics, when set, turns a panic in a process body into that
	// process's failure (a *PanicError termination cause, collected in
	// Panics) instead of aborting the whole run: one buggy actor cannot
	// crash a million-activity simulation. Containment covers process
	// functions only — a panic inside a kernel phase (model code, timer
	// callbacks, completion handlers) leaves the engine mid-turn and is
	// always fatal.
	ContainPanics bool

	panics []*PanicError // contained process panics, in occurrence order

	// Observability (instr.go): optional wall-clock phase profiler
	// (report-only) and the timer heap's high-water mark.
	prof      *instr.Profiler
	timerPeak int
}

// New returns an empty simulation engine at time 0.
func New() *Engine {
	return &Engine{
		procs:   make(map[int]*Process),
		schedCh: make(chan struct{}),
		nextPID: 1,
	}
}

// Now returns the current virtual time in seconds.
func (e *Engine) Now() float64 { return e.now }

// AddModel registers a resource model with the engine.
func (e *Engine) AddModel(m Model) { e.models = append(e.models, m) }

// Current returns the currently executing process, or nil when called
// from kernel context (timer callbacks, model completion).
func (e *Engine) Current() *Process { return e.current }

// ProcessCount returns the number of processes not yet terminated.
func (e *Engine) ProcessCount() int { return e.liveAll }

// Processes returns the live processes sorted by PID.
func (e *Engine) Processes() []*Process {
	out := make([]*Process, 0, len(e.procs))
	for _, p := range e.procs { //lint:allow det-maprange result is sorted by PID below before anything observes it
		if p.state != Done {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].pid < out[j].pid })
	return out
}

// ProcessByPID returns the live process with the given PID, or nil.
func (e *Engine) ProcessByPID(pid int) *Process {
	p := e.procs[pid]
	if p == nil || p.state == Done {
		return nil
	}
	return p
}

// Spawn creates a simulated process executing fn. The process starts
// when the engine next schedules it (immediately at the current virtual
// time if the simulation is running). host is an opaque cookie exposed
// via Process.Host.
//
// The carrier goroutine comes from the package-level worker pool when
// one is parked (no stack allocation; Engine.GoroutineSpawns does not
// grow) and is created fresh otherwise — see factory.go for the
// recycle contract.
func (e *Engine) Spawn(name string, host any, fn func(*Process)) *Process {
	p := &Process{
		pid:    e.nextPID,
		name:   name,
		host:   host,
		engine: e,
		fn:     fn,
		state:  Created,
	}
	e.nextPID++
	e.procs[p.pid] = p
	e.live++
	e.liveAll++
	e.goLive++
	if e.goLive > e.goPeak {
		e.goPeak = e.goLive
	}

	w := grabWorker()
	if w == nil {
		w = newWorker()
		e.goSpawns++
	}
	w.proc = p
	p.resume = w.resume

	p.state = Runnable
	e.runQ = append(e.runQ, p)
	return p
}

// runProcessBody executes a process function on the current (worker)
// goroutine, converting panics per the containment contract.
func runProcessBody(e *Engine, p *Process) {
	defer func() {
		if r := recover(); r != nil {
			// Any panic reaching this recover means the unwinding
			// goroutine held the kernel token: no kernel turn is
			// live anymore, so the flag is reset either way.
			fromKernel := e.inKernel
			e.inKernel = false
			if _, ok := r.(killedSignal); ok {
				p.err = ErrKilled
				return
			}
			pe := &PanicError{PID: p.pid, Name: p.name, Value: r, Stack: debug.Stack()}
			if e.ContainPanics && !fromKernel {
				// Contained: the panic is this process's failure
				// alone; its defers already ran on the unwind.
				p.err = pe
				e.panics = append(e.panics, pe)
				return
			}
			// Fatal: a raw process panic (containment off), or a
			// panic that escaped a kernel phase running on this
			// goroutine's stack — the engine is mid-turn and
			// cannot continue either way.
			e.fatal = pe
		}
	}()
	p.fn(p)
}

// terminate finalizes a process in kernel handoff context.
func (e *Engine) terminate(p *Process) {
	p.state = Done
	if !p.exited {
		p.exited = true
		if !p.daemon {
			e.live--
		}
		e.liveAll--
		e.goLive--
		for i := len(p.onExit) - 1; i >= 0; i-- {
			p.onExit[i](p.err)
		}
	}
	delete(e.procs, p.pid)
}

// At schedules fn to run in kernel context at absolute virtual time t
// (clamped to the current time if in the past).
func (e *Engine) At(t float64, fn func()) *Timer {
	if t < e.now {
		t = e.now
	}
	tm := &timer{at: t, seq: e.nextSeq, fn: fn}
	e.nextSeq++
	heap.Push(&e.timers, tm)
	return &Timer{t: tm, eng: e}
}

// After schedules fn to run d seconds from now.
func (e *Engine) After(d float64, fn func()) *Timer { return e.At(e.now+d, fn) }

// Wake makes a Waiting process runnable again, delivering err as the
// result of its pending simcall. Waking a suspended process defers
// delivery until Resume. Waking a non-waiting process is a no-op.
func (e *Engine) Wake(p *Process, err error) {
	if p.state != Waiting {
		return
	}
	if p.suspended && !p.selfSuspend {
		ec := err
		p.pendingWake = &ec
		return
	}
	p.wakeErr = err
	p.state = Runnable
	e.runQ = append(e.runQ, p)
}

// WakeAll wakes every process in ps with the same error in one
// bookkeeping pass: the run queue is grown once and the waiters are
// appended contiguously, so k same-instant completions cost a single
// scheduling sweep instead of k interleaved wake/scan cycles. Resource
// models batching same-instant completions (surf.Model.AdvanceTo) use
// this for their waiters.
func (e *Engine) WakeAll(ps []*Process, err error) {
	if len(ps) == 0 {
		return
	}
	if need := len(e.runQ) + len(ps); cap(e.runQ) < need {
		grown := make([]*Process, len(e.runQ), need)
		copy(grown, e.runQ)
		e.runQ = grown
	}
	for _, p := range ps {
		e.Wake(p, err)
	}
}

// Kill forcibly terminates the target process. A process killing itself
// unwinds immediately; killing another process takes effect the next
// time that process is scheduled (its pending simcall aborts).
func (p *Process) Kill() {
	if p.state == Done {
		return
	}
	p.killed = true
	e := p.engine
	if e.current == p {
		panic(killedSignal{})
	}
	switch p.state {
	case Waiting:
		p.suspended = false
		// Drop any wake that arrived while the process was suspended: a
		// stale pending error must not shadow ErrKilled if the victim
		// is touched by Resume before it is drained.
		p.pendingWake = nil
		p.wakeErr = ErrKilled
		p.state = Runnable
		e.runQ = append(e.runQ, p)
	case Created:
		// Not yet started: schedule so the goroutine can terminate.
		p.pendingWake = nil
		p.wakeErr = ErrKilled
		p.state = Runnable
		e.runQ = append(e.runQ, p)
	}
	// Runnable processes die when popped from the queue.
}

// Suspend pauses the process. Suspending the current process blocks it
// until Resume; suspending another process prevents it from being
// scheduled and freezes its in-flight action via OnSuspend.
func (p *Process) Suspend() {
	if p.state == Done || p.suspended {
		return
	}
	p.suspended = true
	if p.OnSuspend != nil {
		p.OnSuspend()
	}
	if p.engine.current == p {
		p.selfSuspend = true
		_ = p.blockOn(SimcallSuspend)
		p.selfSuspend = false
	}
}

// Resume unpauses a suspended process, delivering any wake-up that
// arrived while it slept.
func (p *Process) Resume() {
	if p.state == Done || !p.suspended {
		return
	}
	p.suspended = false
	if p.OnResume != nil {
		p.OnResume()
	}
	e := p.engine
	switch {
	case p.pendingWake != nil:
		err := *p.pendingWake
		p.pendingWake = nil
		e.Wake(p, err)
	case p.selfSuspend:
		e.Wake(p, nil)
	}
}

// Suspended reports whether the process is currently suspended.
func (p *Process) Suspended() bool { return p.suspended }

// Run executes the simulation until no non-daemon process remains, the
// optional MaxTime horizon is reached, or a deadlock is detected. At
// shutdown, remaining daemons are discarded. Run returns a
// *DeadlockError if blocked non-daemon processes can never progress, or
// the panic error of a crashing process.
//
// The engine goroutine only seeds the first dispatch: from then on the
// kernel token travels with whichever goroutine is active, and the
// kernel turn — clock advance, timer firing, model completions — runs
// on the stack of the last process to park in each round. Run regains
// control once per simulation, when it has ended.
func (e *Engine) Run() error {
	if e.running {
		return errors.New("core: engine already running")
	}
	e.running = true
	defer func() { e.running = false }()
	e.stopErr = nil
	e.stopReq = false

	if e.dispatch(nil) == dispatchNext || e.kernelTurn(nil) == dispatchNext {
		<-e.schedCh // the token is out; wait for the simulation to end
	}
	if e.fatal != nil {
		return e.fatal
	}
	if e.stopErr != nil {
		return e.stopErr
	}
	e.shutdownDaemons()
	if e.fatal != nil {
		return e.fatal
	}
	return nil
}

// RunUntilIdle drives the kernel without requiring any live process:
// model events and timers fire, and any process that does wake is
// scheduled, until nothing remains to simulate (or MaxTime is reached,
// or Stop is called). This is the drive loop for purely kernel-level
// workloads — DAG task graphs (package simdag) attach surf actions
// directly, so a simulation of any size spawns zero goroutines.
// Unlike Run, quiescence with pending activities never started is not a
// deadlock: the caller owns the notion of completeness. RunUntilIdle
// may be called repeatedly; each call resumes from the current state.
func (e *Engine) RunUntilIdle() error {
	if e.running {
		return errors.New("core: engine already running")
	}
	e.running = true
	e.idleDrive = true
	defer func() { e.running = false; e.idleDrive = false }()
	e.stopErr = nil
	e.stopReq = false

	if e.dispatch(nil) == dispatchNext || e.kernelTurn(nil) == dispatchNext {
		<-e.schedCh // the token is out; wait for the drive to end
	}
	e.stopReq = false
	if e.fatal != nil {
		return e.fatal
	}
	return e.stopErr
}

// Stop requests the drive loop to return before its next scheduling
// round. It is the kernel half of watch points: a completion callback
// (e.g. a watched DAG task finishing) calls Stop and RunUntilIdle
// returns once the current instant has settled, leaving the remaining
// events scheduled — a later RunUntilIdle resumes exactly where the
// simulation stopped. Calling Stop outside a run is a no-op for the
// next run (Run and RunUntilIdle clear it on entry).
func (e *Engine) Stop() { e.stopReq = true }

// Spawned returns the number of LOGICAL process starts on this engine:
// every Spawn call plus every external process start registered
// through AllocPID (msg's declarative activity chains). It counts
// starts, not goroutines — pooled-worker reuse and processless chains
// both grow it without creating a stack; GoroutineSpawns counts the
// stacks. Kernel-driven workloads (simdag) assert it stays zero.
func (e *Engine) Spawned() int { return e.nextPID - 1 }

// GoroutineSpawns returns the number of fresh carrier goroutines
// created on behalf of this engine's processes: the raw `go`
// statements, as opposed to Spawned's logical starts. With the worker
// pool warm (or a workload expressed as declarative chains) it stays
// at zero while Spawned keeps counting.
func (e *Engine) GoroutineSpawns() int { return e.goSpawns }

// GoroutinesPeak returns the high-water mark of simultaneously live
// process goroutines on this engine — the real stack population a run
// paid for, regardless of how many logical processes cycled through
// those stacks.
func (e *Engine) GoroutinesPeak() int { return e.goPeak }

// AllocPID reserves and returns the next process identifier for an
// external logical process — one driven directly by the kernel with no
// goroutine behind it (msg's declarative activity chains). External
// starts share the PID space and the Spawned count with goroutine
// processes, so "logical process starts" means the same thing across
// both forms.
func (e *Engine) AllocPID() int {
	pid := e.nextPID
	e.nextPID++
	return pid
}

// AddLive adjusts the count of live external entities: kernel-driven
// logical processes (msg activity chains) that must keep Run going
// exactly like a live non-daemon process would. Layers register +1 per
// non-daemon entity at start and -1 at its termination. Unlike
// processes, external entities are not killed at shutdown — their
// owner layer tears them down.
func (e *Engine) AddLive(delta int) { e.live += delta }

// Panics returns the contained process panics recorded so far (empty
// unless ContainPanics is set), in occurrence order. Each entry carries
// the crashing process's identity, the panic value, and the stack at
// the point of the panic — the run's crash event log.
func (e *Engine) Panics() []*PanicError { return e.panics }

// kernelTurn advances the simulation while holding the kernel token
// and the run queue is empty: it finds the next event, advances the
// clock, completes due model actions, fires due timers, and dispatches
// the processes that woke. self is the process whose goroutine runs
// the turn (nil in the engine goroutine). It returns dispatchNext as
// soon as control was handed to another process goroutine,
// dispatchSelf when the turn woke its own carrier (which then just
// keeps running), and dispatchNone when the simulation ended (the
// caller then owns the token and must return it to Run).
func (e *Engine) kernelTurn(self *Process) dispatchResult {
	// The turn runs model and timer callbacks: a panic escaping one of
	// them unwinds through the carrier's spawn recover, which must treat
	// it as fatal (the engine is mid-phase), never contain it. The flag
	// is cleared before control can reach process code again — every
	// return below, and the dispatch hand-off.
	e.inKernel = true
	for {
		if e.fatal != nil || e.stopReq || (!e.idleDrive && e.live <= 0) {
			e.inKernel = false
			return dispatchNone
		}

		// Phase 2: find the next event. Each model's answer is kept so
		// phase 3 can skip the models with nothing due at the new time.
		// Model.NextEventTime triggers the lazy maxmin solve, so this
		// is the profiler's "solve" phase.
		t0 := e.prof.Begin()
		next := math.Inf(1)
		if cap(e.modelNext) < len(e.models) {
			e.modelNext = make([]float64, len(e.models))
		}
		modelNext := e.modelNext[:len(e.models)]
		for i, m := range e.models {
			t := m.NextEventTime(e.now)
			modelNext[i] = t
			if t < next {
				next = t
			}
		}
		e.prof.End(instr.PhaseSolve, t0)
		for len(e.timers) > 0 && e.timers[0].canceled {
			heap.Pop(&e.timers)
		}
		if len(e.timers) > e.timerPeak {
			e.timerPeak = len(e.timers)
		}
		if len(e.timers) > 0 && e.timers[0].at < next {
			next = e.timers[0].at
		}
		if math.IsInf(next, 1) {
			if e.idleDrive {
				// Quiescence is the normal end of an idle drive: nothing
				// left to simulate, whether or not activities never
				// started (the caller inspects its own task states).
				e.inKernel = false
				return dispatchNone
			}
			var blocked []string
			var calls []SimcallKind
			for _, p := range e.Processes() {
				if !p.daemon {
					blocked = append(blocked, p.name)
					calls = append(calls, p.call)
				}
			}
			if e.ExternalBlocked != nil {
				names, ecalls := e.ExternalBlocked()
				blocked = append(blocked, names...)
				calls = append(calls, ecalls...)
			}
			e.stopErr = &DeadlockError{Blocked: blocked, Calls: calls}
			e.inKernel = false
			return dispatchNone
		}
		if e.MaxTime > 0 && next > e.MaxTime {
			e.now = e.MaxTime
			e.inKernel = false
			return dispatchNone
		}

		// Phase 3: advance the clock and fire everything due at `next`.
		// Models complete their due actions first (progress bookkeeping
		// is lazy, see Model); only then do timers fire, so trace-driven
		// capacity changes at `next` never apply retroactively to
		// [prev, next]. Models whose earliest event lies beyond the new
		// time have nothing due and are not polled at all — with lazy
		// bookkeeping a skipped step costs them literally nothing.
		prev := e.now
		e.now = next
		t0 = e.prof.Begin()
		for i, m := range e.models {
			if modelNext[i] <= e.now {
				m.AdvanceTo(prev, e.now)
			}
		}
		e.prof.End(instr.PhaseAdvance, t0)
		t0 = e.prof.Begin()
		for len(e.timers) > 0 && e.timers[0].at <= e.now {
			tm := heap.Pop(&e.timers).(*timer)
			if !tm.canceled {
				tm.fn()
			}
		}
		e.prof.End(instr.PhaseSweep, t0)

		// Phase 1 of the next round: hand control to the first woken
		// process; its dispatch chain continues the round. The flag drops
		// before the hand-off: the woken process runs its own code.
		e.inKernel = false
		t0 = e.prof.Begin()
		r := e.dispatch(self)
		e.prof.End(instr.PhaseDispatch, t0)
		if r != dispatchNone {
			return r
		}
		e.inKernel = true
	}
}

// shutdownDaemons kills all remaining (daemon) processes so their defers
// and exit hooks run. The drain round must not advance virtual time, so
// parkers hand the token straight back instead of running kernel turns.
func (e *Engine) shutdownDaemons() {
	e.draining = true
	for _, p := range e.Processes() {
		p.killed = true
		switch p.state {
		case Waiting, Created:
			p.suspended = false
			p.pendingWake = nil
			p.wakeErr = ErrKilled
			p.state = Runnable
			e.runQ = append(e.runQ, p)
		}
	}
	if e.dispatch(nil) == dispatchNext {
		<-e.schedCh
	}
	e.draining = false
}
