package core

import "repro/internal/instr"

// Observability wiring for the kernel. The engine carries an optional
// phase profiler (wall-clock, report-only — see instr.Profiler) and
// dumps its always-on counters into a metrics registry on demand.

// SetProfiler attaches a phase profiler to the engine. The profiler
// times the kernel's own phases (solve / advance / sweep / dispatch)
// in wall-clock time; it is report-only and never feeds simulation
// state, so runs with and without it are identical. Pass nil to
// detach.
func (e *Engine) SetProfiler(p *instr.Profiler) { e.prof = p }

// Profiler returns the attached phase profiler (nil when off).
func (e *Engine) Profiler() *instr.Profiler { return e.prof }

// TimerPeak returns the high-water mark of the timer heap.
func (e *Engine) TimerPeak() int { return e.timerPeak }

// MetricsInto dumps the kernel's counters into r under the core.*
// namespace: simcall dispositions, process starts vs goroutine
// spawns, and the shared worker-stack free list.
func (e *Engine) MetricsInto(r *instr.Registry) {
	if r == nil {
		return
	}
	r.Counter("core.simcalls_fast").Add(e.stats.Fast)
	r.Counter("core.simcalls_slow").Add(e.stats.Slow)
	r.Counter("core.processes_spawned").Add(uint64(e.Spawned()))
	r.Counter("core.goroutine_spawns").Add(uint64(e.goSpawns))
	r.Gauge("core.goroutines_peak").SetMax(float64(e.goPeak))
	r.Gauge("core.timer_peak").SetMax(float64(e.timerPeak))
	r.Gauge("core.timers").Set(float64(len(e.timers)))
	r.Counter("core.fault_panics").Add(uint64(len(e.panics)))
	r.SetPool("core.worker_pool", WorkerPoolStats())
}
