// Tests for the worker pool: scrub-on-recycle, pooled-vs-fresh
// equivalence, and the Spawned / GoroutineSpawns / GoroutinesPeak
// accounting split (logical process starts vs real stacks).
package core

import (
	"fmt"
	"testing"
)

// TestProcessPoolScrubbed pins the recycle contract: every worker
// parked in the pool carries no trace of its previous assignment — no
// process reference, no buffered wake.
func TestProcessPoolScrubbed(t *testing.T) {
	if !poolingEnabled {
		t.Skip("pooling disabled (-tags=nopool)")
	}
	e := New()
	for i := 0; i < 20; i++ {
		d := float64(i) * 0.01
		e.Spawn(fmt.Sprintf("p%d", i), nil, func(p *Process) {
			_ = p.Sleep(d)
		})
	}
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	workerPool.Lock()
	defer workerPool.Unlock()
	if len(workerPool.free) == 0 {
		t.Fatal("no worker was ever pooled")
	}
	for i, w := range workerPool.free {
		if w.proc != nil {
			t.Errorf("pooled worker %d still references process %q", i, w.proc.name)
		}
		select {
		case err := <-w.resume:
			t.Errorf("pooled worker %d holds a buffered wake (%v)", i, err)
		default:
		}
	}
}

// TestWorkerPoolingEquivalence replays the same churny workload —
// sleeps, mid-run spawns, kills — with the worker pool on and off and
// requires a bit-identical event log: recycling carrier goroutines
// must be unobservable to the simulation.
func TestWorkerPoolingEquivalence(t *testing.T) {
	run := func(pool bool) []string {
		defer func(old bool) { poolingEnabled = old }(poolingEnabled)
		poolingEnabled = pool
		e := New()
		var log []string
		record := func(tag string) {
			log = append(log, fmt.Sprintf("%.3f %s", e.Now(), tag))
		}
		var victims []*Process
		for i := 0; i < 6; i++ {
			i := i
			p := e.Spawn(fmt.Sprintf("p%d", i), nil, func(p *Process) {
				// Each process spawns a child mid-life; two of them are
				// killed before their second sleep completes.
				if err := p.Sleep(0.1 * float64(i+1)); err != nil {
					return
				}
				p.engine.Spawn(fmt.Sprintf("c%d", i), nil, func(c *Process) {
					_ = c.Sleep(0.05)
					record("child " + c.Name())
				})
				record("parent " + p.Name())
				if err := p.Sleep(1.0); err != nil {
					return
				}
				record("late " + p.Name())
			})
			if i%3 == 0 {
				victims = append(victims, p)
			}
		}
		e.At(0.85, func() {
			for _, v := range victims {
				record("kill " + v.Name())
				v.Kill()
			}
		})
		if err := e.Run(); err != nil {
			t.Fatalf("Run(pool=%v): %v", pool, err)
		}
		return log
	}

	pooled := run(true)
	fresh := run(false)
	if len(pooled) != len(fresh) {
		t.Fatalf("log lengths differ: pooled %d, fresh %d", len(pooled), len(fresh))
	}
	for i := range pooled {
		if pooled[i] != fresh[i] {
			t.Fatalf("event %d diverged: pooled %q, fresh %q", i, pooled[i], fresh[i])
		}
	}
}

// TestSpawnedVsGoroutineAccounting pins the accounting split: Spawned
// counts logical process starts, GoroutineSpawns counts fresh stacks
// (zero on a warm pool), GoroutinesPeak the concurrent stack
// high-water mark.
func TestSpawnedVsGoroutineAccounting(t *testing.T) {
	if !poolingEnabled {
		t.Skip("pooling disabled (-tags=nopool)")
	}
	sleeper := func(p *Process) { _ = p.Sleep(0.1) }

	// Warm the pool with 9 concurrent processes (peak is a concurrency
	// high-water mark, independent of whether stacks came from the pool).
	e1 := New()
	for i := 0; i < 9; i++ {
		e1.Spawn(fmt.Sprintf("w%d", i), nil, sleeper)
	}
	if err := e1.Run(); err != nil {
		t.Fatalf("warmup Run: %v", err)
	}
	if e1.GoroutinesPeak() != 9 {
		t.Errorf("warmup GoroutinesPeak() = %d, want 9", e1.GoroutinesPeak())
	}

	// Same concurrency on a fresh engine, in two waves (a keeper stays
	// alive so the t=0.2 timer spawning the second wave still fires):
	// 17 logical starts, zero fresh stacks, peak 9.
	e2 := New()
	e2.Spawn("keeper", nil, func(p *Process) { _ = p.Sleep(0.5) })
	for i := 0; i < 8; i++ {
		e2.Spawn(fmt.Sprintf("a%d", i), nil, sleeper)
	}
	e2.At(0.2, func() {
		for i := 0; i < 8; i++ {
			e2.Spawn(fmt.Sprintf("b%d", i), nil, sleeper)
		}
	})
	if err := e2.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := e2.Spawned(); got != 17 {
		t.Errorf("Spawned() = %d, want 17 logical starts", got)
	}
	if got := e2.GoroutineSpawns(); got != 0 {
		t.Errorf("GoroutineSpawns() = %d, want 0 (warm pool)", got)
	}
	if got := e2.GoroutinesPeak(); got != 9 {
		t.Errorf("GoroutinesPeak() = %d, want 9", got)
	}
}
