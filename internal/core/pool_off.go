//go:build nopool

package core

// poolingEnabled gates the package-level worker pool. This is the
// -tags=nopool build: every process gets a fresh, single-use
// goroutine, the reference behaviour the pooled build must be
// indistinguishable from.
var poolingEnabled = false
