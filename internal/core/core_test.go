package core

import (
	"errors"
	"math"
	"testing"
)

func TestEmptyEngineRuns(t *testing.T) {
	e := New()
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if e.Now() != 0 {
		t.Errorf("Now = %g, want 0", e.Now())
	}
}

func TestSingleProcessRuns(t *testing.T) {
	e := New()
	ran := false
	e.Spawn("p", nil, func(p *Process) { ran = true })
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !ran {
		t.Error("process did not run")
	}
}

func TestSleepAdvancesClock(t *testing.T) {
	e := New()
	var at float64
	e.Spawn("sleeper", nil, func(p *Process) {
		if err := p.Sleep(3.5); err != nil {
			t.Errorf("Sleep: %v", err)
		}
		at = e.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if at != 3.5 {
		t.Errorf("woke at %g, want 3.5", at)
	}
	if e.Now() != 3.5 {
		t.Errorf("final time %g, want 3.5", e.Now())
	}
}

func TestNegativeSleepIsZero(t *testing.T) {
	e := New()
	e.Spawn("p", nil, func(p *Process) {
		if err := p.Sleep(-1); err != nil {
			t.Errorf("Sleep(-1): %v", err)
		}
		if e.Now() != 0 {
			t.Errorf("Now = %g after Sleep(-1)", e.Now())
		}
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestInterleavedSleeps(t *testing.T) {
	e := New()
	var order []string
	mk := func(name string, d float64) {
		e.Spawn(name, nil, func(p *Process) {
			p.Sleep(d)
			order = append(order, name)
		})
	}
	mk("c", 3)
	mk("a", 1)
	mk("b", 2)
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []string{"a", "b", "c"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestSpawnFromProcess(t *testing.T) {
	e := New()
	var childRan bool
	e.Spawn("parent", nil, func(p *Process) {
		e.Spawn("child", nil, func(c *Process) {
			childRan = true
			// The child starts at the virtual time it was spawned at: it
			// runs as soon as the parent yields (here: at its sleep).
			if e.Now() != 0 {
				t.Errorf("child started at %g, want 0", e.Now())
			}
		})
		p.Sleep(1)
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !childRan {
		t.Error("child did not run")
	}
}

func TestTimersFireInOrder(t *testing.T) {
	e := New()
	var seq []float64
	e.At(2, func() { seq = append(seq, 2) })
	e.At(1, func() { seq = append(seq, 1) })
	e.At(1.5, func() { seq = append(seq, 1.5) })
	// Need a process so the engine has something to do... timers fire
	// even without processes? live==0 ends immediately; spawn a sleeper.
	e.Spawn("s", nil, func(p *Process) { p.Sleep(5) })
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []float64{1, 1.5, 2}
	if len(seq) != 3 {
		t.Fatalf("fired %v, want %v", seq, want)
	}
	for i := range want {
		if seq[i] != want[i] {
			t.Errorf("seq = %v, want %v", seq, want)
		}
	}
}

func TestTimerCancel(t *testing.T) {
	e := New()
	fired := false
	tm := e.At(1, func() { fired = true })
	tm.Cancel()
	e.Spawn("s", nil, func(p *Process) { p.Sleep(2) })
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if fired {
		t.Error("canceled timer fired")
	}
}

func TestSameTimeTimersFIFO(t *testing.T) {
	e := New()
	var seq []int
	e.At(1, func() { seq = append(seq, 1) })
	e.At(1, func() { seq = append(seq, 2) })
	e.At(1, func() { seq = append(seq, 3) })
	e.Spawn("s", nil, func(p *Process) { p.Sleep(2) })
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(seq) != 3 || seq[0] != 1 || seq[1] != 2 || seq[2] != 3 {
		t.Errorf("seq = %v, want [1 2 3]", seq)
	}
}

func TestBlockWake(t *testing.T) {
	e := New()
	var waiter *Process
	gotErr := errors.New("unset")
	e.Spawn("waiter", nil, func(p *Process) {
		waiter = p
		gotErr = p.Block()
	})
	e.Spawn("waker", nil, func(p *Process) {
		p.Sleep(1)
		e.Wake(waiter, nil)
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if gotErr != nil {
		t.Errorf("Block returned %v, want nil", gotErr)
	}
}

func TestWakeDeliversError(t *testing.T) {
	e := New()
	sentinel := errors.New("sentinel")
	var waiter *Process
	var gotErr error
	e.Spawn("waiter", nil, func(p *Process) {
		waiter = p
		gotErr = p.Block()
	})
	e.Spawn("waker", nil, func(p *Process) {
		p.Sleep(1)
		e.Wake(waiter, sentinel)
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if gotErr != sentinel {
		t.Errorf("Block returned %v, want sentinel", gotErr)
	}
}

func TestDeadlockDetected(t *testing.T) {
	e := New()
	e.Spawn("stuck", nil, func(p *Process) { p.Block() })
	err := e.Run()
	var dl *DeadlockError
	if !errors.As(err, &dl) {
		t.Fatalf("Run = %v, want DeadlockError", err)
	}
	if len(dl.Blocked) != 1 || dl.Blocked[0] != "stuck" {
		t.Errorf("Blocked = %v, want [stuck]", dl.Blocked)
	}
	if dl.Error() == "" {
		t.Error("empty error string")
	}
}

func TestDaemonDoesNotPreventTermination(t *testing.T) {
	e := New()
	daemonCleanup := false
	e.Spawn("daemon", nil, func(p *Process) {
		p.Daemonize()
		defer func() { daemonCleanup = true }()
		for {
			p.Block() // wait forever
		}
	})
	e.Spawn("worker", nil, func(p *Process) { p.Sleep(2) })
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if e.Now() != 2 {
		t.Errorf("ended at %g, want 2", e.Now())
	}
	if !daemonCleanup {
		t.Error("daemon defers did not run at shutdown")
	}
}

func TestKillBlockedProcess(t *testing.T) {
	e := New()
	var victim *Process
	cleanedUp := false
	reached := false
	e.Spawn("victim", nil, func(p *Process) {
		victim = p
		defer func() { cleanedUp = true }()
		p.Block()
		reached = true // must not run: kill unwinds
	})
	e.Spawn("killer", nil, func(p *Process) {
		p.Sleep(1)
		victim.Kill()
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if reached {
		t.Error("killed process continued after Block")
	}
	if !cleanedUp {
		t.Error("killed process defers did not run")
	}
	if victim.Err() != ErrKilled {
		t.Errorf("victim.Err() = %v, want ErrKilled", victim.Err())
	}
}

func TestKillSelf(t *testing.T) {
	e := New()
	after := false
	e.Spawn("suicidal", nil, func(p *Process) {
		p.Kill()
		after = true
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if after {
		t.Error("code after self-Kill ran")
	}
}

func TestKillNotYetStarted(t *testing.T) {
	e := New()
	ran := false
	var victim *Process
	// killer is spawned first so it runs before victim's first schedule.
	e.Spawn("killer", nil, func(p *Process) { victim.Kill() })
	victim = e.Spawn("victim", nil, func(p *Process) { ran = true })
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if ran {
		t.Error("killed-before-start process body ran")
	}
}

func TestOnExitHooks(t *testing.T) {
	e := New()
	var exitErr error
	hooks := 0
	e.Spawn("p", nil, func(p *Process) {
		p.OnExit(func(err error) { hooks++; exitErr = err })
		p.OnExit(func(err error) { hooks++ })
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if hooks != 2 {
		t.Errorf("hooks = %d, want 2", hooks)
	}
	if exitErr != nil {
		t.Errorf("exit err = %v, want nil", exitErr)
	}
}

func TestOnExitSeesKillError(t *testing.T) {
	e := New()
	var exitErr error
	var victim *Process
	e.Spawn("victim", nil, func(p *Process) {
		victim = p
		p.OnExit(func(err error) { exitErr = err })
		p.Block()
	})
	e.Spawn("killer", nil, func(p *Process) { victim.Kill() })
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if exitErr != ErrKilled {
		t.Errorf("exit err = %v, want ErrKilled", exitErr)
	}
}

func TestSuspendResumeSelf(t *testing.T) {
	e := New()
	var suspended *Process
	var resumedAt float64
	e.Spawn("s", nil, func(p *Process) {
		suspended = p
		p.Suspend() // blocks until resumed
		resumedAt = e.Now()
	})
	e.Spawn("r", nil, func(p *Process) {
		p.Sleep(2)
		if !suspended.Suspended() {
			t.Error("process not reported suspended")
		}
		suspended.Resume()
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if resumedAt != 2 {
		t.Errorf("resumed at %g, want 2", resumedAt)
	}
}

func TestSuspendDefersWake(t *testing.T) {
	// A process suspended while blocked must not receive its wake-up
	// until resumed.
	e := New()
	var waiter *Process
	var wokeAt float64
	e.Spawn("waiter", nil, func(p *Process) {
		waiter = p
		p.Block()
		wokeAt = e.Now()
	})
	e.Spawn("driver", nil, func(p *Process) {
		p.Sleep(1)
		waiter.Suspend()
		e.Wake(waiter, nil) // arrives while suspended
		p.Sleep(2)          // t=3
		waiter.Resume()
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if wokeAt != 3 {
		t.Errorf("woke at %g, want 3 (after resume)", wokeAt)
	}
}

func TestSuspendRunnableProcess(t *testing.T) {
	e := New()
	var target *Process
	var phase2 float64
	e.Spawn("driver", nil, func(p *Process) {
		// target is runnable (spawned, not yet run). Suspend it now.
		target.Suspend()
		p.Sleep(5)
		target.Resume()
	})
	target = e.Spawn("target", nil, func(p *Process) {
		phase2 = e.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if phase2 != 5 {
		t.Errorf("target ran at %g, want 5", phase2)
	}
}

func TestSuspendHooksCalled(t *testing.T) {
	e := New()
	var events []string
	var target *Process
	e.Spawn("driver", nil, func(p *Process) {
		p.Sleep(1)
		target.Suspend()
		p.Sleep(1)
		target.Resume()
	})
	target = e.Spawn("t", nil, func(p *Process) {
		p.OnSuspend = func() { events = append(events, "suspend") }
		p.OnResume = func() { events = append(events, "resume") }
		p.Block()
	})
	err := e.Run()
	// target never woken: deadlock expected after resume.
	var dl *DeadlockError
	if err != nil && !errors.As(err, &dl) {
		t.Fatalf("Run: %v", err)
	}
	if len(events) != 2 || events[0] != "suspend" || events[1] != "resume" {
		t.Errorf("events = %v, want [suspend resume]", events)
	}
}

func TestProcessPanicSurfacesAsError(t *testing.T) {
	e := New()
	e.Spawn("bomb", nil, func(p *Process) { panic("boom") })
	err := e.Run()
	if err == nil || !contains(err.Error(), "boom") {
		t.Errorf("Run = %v, want panic error mentioning boom", err)
	}
}

func TestYield(t *testing.T) {
	e := New()
	var order []string
	e.Spawn("a", nil, func(p *Process) {
		order = append(order, "a1")
		p.Yield()
		order = append(order, "a2")
	})
	e.Spawn("b", nil, func(p *Process) {
		order = append(order, "b1")
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []string{"a1", "b1", "a2"}
	for i := range want {
		if i >= len(order) || order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestMaxTimeStopsSimulation(t *testing.T) {
	e := New()
	e.MaxTime = 10
	e.Spawn("long", nil, func(p *Process) { p.Sleep(100) })
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if e.Now() != 10 {
		t.Errorf("ended at %g, want 10", e.Now())
	}
}

func TestProcessRegistry(t *testing.T) {
	e := New()
	p1 := e.Spawn("one", "host1", func(p *Process) { p.Sleep(1) })
	e.Spawn("two", "host2", func(p *Process) { p.Sleep(1) })
	if e.ProcessCount() != 2 {
		t.Errorf("ProcessCount = %d, want 2", e.ProcessCount())
	}
	procs := e.Processes()
	if len(procs) != 2 || procs[0].Name() != "one" || procs[1].Name() != "two" {
		t.Errorf("Processes() = %v", procs)
	}
	if got := e.ProcessByPID(p1.PID()); got != p1 {
		t.Errorf("ProcessByPID = %v, want p1", got)
	}
	if got := e.ProcessByPID(999); got != nil {
		t.Errorf("ProcessByPID(999) = %v, want nil", got)
	}
	if p1.Host() != "host1" {
		t.Errorf("Host = %v, want host1", p1.Host())
	}
	p1.SetHost("elsewhere")
	if p1.Host() != "elsewhere" {
		t.Error("SetHost did not stick")
	}
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if e.ProcessCount() != 0 {
		t.Errorf("ProcessCount after run = %d, want 0", e.ProcessCount())
	}
}

func TestStateStrings(t *testing.T) {
	for s, want := range map[State]string{
		Created: "created", Runnable: "runnable", Running: "running",
		Waiting: "waiting", Done: "done", State(42): "state(42)",
	} {
		if s.String() != want {
			t.Errorf("State(%d).String() = %q, want %q", int(s), s.String(), want)
		}
	}
}

func TestAfterTimer(t *testing.T) {
	e := New()
	var at float64 = -1
	e.Spawn("p", nil, func(p *Process) {
		p.Sleep(2)
		e.After(3, func() { at = e.Now() })
		p.Sleep(5)
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if at != 5 {
		t.Errorf("After fired at %g, want 5", at)
	}
}

func TestAtInPastClampsToNow(t *testing.T) {
	e := New()
	var at float64 = -1
	e.Spawn("p", nil, func(p *Process) {
		p.Sleep(2)
		e.At(1, func() { at = e.Now() }) // in the past
		p.Sleep(1)
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if at != 2 {
		t.Errorf("past timer fired at %g, want 2 (clamped)", at)
	}
}

// fakeModel exercises the Model plumbing: a single "action" completing
// at a fixed time.
type fakeModel struct {
	completeAt float64
	done       bool
	onComplete func()
	advanced   []float64
}

func (m *fakeModel) NextEventTime(now float64) float64 {
	if m.done {
		return math.Inf(1)
	}
	return m.completeAt
}

func (m *fakeModel) AdvanceTo(now, t float64) {
	m.advanced = append(m.advanced, t)
	if !m.done && t >= m.completeAt {
		m.done = true
		m.onComplete()
	}
}

// TestModelAdvanceSkippedWhenNotDue pins the Model contract: AdvanceTo
// is only invoked for steps that reach the model's reported next event
// time, so timer-driven steps before it never poll the model.
func TestModelAdvanceSkippedWhenNotDue(t *testing.T) {
	e := New()
	var waiter *Process
	m := &fakeModel{completeAt: 10}
	m.onComplete = func() { e.Wake(waiter, nil) }
	e.AddModel(m)
	var timerFired []float64
	e.At(2, func() { timerFired = append(timerFired, e.Now()) })
	e.At(5, func() { timerFired = append(timerFired, e.Now()) })
	e.Spawn("w", nil, func(p *Process) {
		waiter = p
		p.Block()
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(timerFired) != 2 {
		t.Fatalf("timers fired at %v, want 2 firings", timerFired)
	}
	if len(m.advanced) != 1 || m.advanced[0] != 10 {
		t.Errorf("model advanced at %v, want exactly [10] (timer steps must be skipped)", m.advanced)
	}
}

func TestModelDrivesCompletion(t *testing.T) {
	e := New()
	var waiter *Process
	var wokeAt float64
	m := &fakeModel{completeAt: 4}
	m.onComplete = func() { e.Wake(waiter, nil) }
	e.AddModel(m)
	e.Spawn("w", nil, func(p *Process) {
		waiter = p
		p.Block()
		wokeAt = e.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if wokeAt != 4 {
		t.Errorf("woke at %g, want 4", wokeAt)
	}
}

func TestRunTwiceFails(t *testing.T) {
	e := New()
	if err := e.Run(); err != nil {
		t.Fatalf("first Run: %v", err)
	}
	// Running an exhausted engine again is fine (no processes).
	if err := e.Run(); err != nil {
		t.Fatalf("second Run: %v", err)
	}
}

func TestBlockOutsideProcessPanics(t *testing.T) {
	e := New()
	p := e.Spawn("p", nil, func(p *Process) {})
	defer func() {
		if recover() == nil {
			t.Error("Block outside process did not panic")
		}
		// Drain the engine so the spawned goroutine terminates.
		e.Run()
	}()
	p.Block()
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
