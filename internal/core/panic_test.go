package core

import (
	"errors"
	"strings"
	"testing"
)

// TestContainedPanicFailsProcessAlone: with ContainPanics set, a
// panicking process terminates with a *PanicError while the rest of the
// simulation runs to completion, and the panic (value + stack) is
// recorded in Engine.Panics.
func TestContainedPanicFailsProcessAlone(t *testing.T) {
	e := New()
	e.ContainPanics = true
	var survivorDone bool
	bomb := e.Spawn("bomb", nil, func(p *Process) {
		_ = p.Sleep(1)
		panic("boom")
	})
	e.Spawn("survivor", nil, func(p *Process) {
		_ = p.Sleep(5)
		survivorDone = true
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v (a contained panic must not abort the run)", err)
	}
	if !survivorDone {
		t.Error("survivor did not run to completion")
	}
	var pe *PanicError
	if !errors.As(bomb.Err(), &pe) {
		t.Fatalf("bomb.Err() = %v, want *PanicError", bomb.Err())
	}
	if pe.Name != "bomb" || pe.Value != "boom" {
		t.Errorf("PanicError = {%q %v}, want {bomb boom}", pe.Name, pe.Value)
	}
	if !strings.Contains(string(pe.Stack), "panic_test.go") {
		t.Errorf("PanicError.Stack does not point at the panic site:\n%s", pe.Stack)
	}
	if got := e.Panics(); len(got) != 1 || got[0] != pe {
		t.Errorf("Engine.Panics() = %v, want the one contained panic", got)
	}
}

// TestContainedPanicRunsDefers: the contained panic unwinds the process
// stack, so its defers (resource cleanup) run before termination.
func TestContainedPanicRunsDefers(t *testing.T) {
	e := New()
	e.ContainPanics = true
	deferRan := false
	var exitErr error
	p := e.Spawn("bomb", nil, func(p *Process) {
		defer func() { deferRan = true }()
		panic(42)
	})
	p.OnExit(func(err error) { exitErr = err })
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !deferRan {
		t.Error("defer did not run on the contained unwind")
	}
	var pe *PanicError
	if !errors.As(exitErr, &pe) || pe.Value != 42 {
		t.Errorf("OnExit error = %v, want *PanicError with value 42", exitErr)
	}
}

// TestKernelPhasePanicStaysFatal: a panic escaping a timer callback (a
// kernel phase) leaves the engine mid-turn; even with ContainPanics set
// it must abort the run, not be attributed to the carrier process.
func TestKernelPhasePanicStaysFatal(t *testing.T) {
	e := New()
	e.ContainPanics = true
	e.After(1, func() { panic("kernel bug") })
	carrier := e.Spawn("carrier", nil, func(p *Process) {
		_ = p.Sleep(10)
	})
	err := e.Run()
	if err == nil || !strings.Contains(err.Error(), "kernel bug") {
		t.Fatalf("Run = %v, want fatal kernel-phase panic", err)
	}
	var pe *PanicError
	if errors.As(carrier.Err(), &pe) {
		t.Errorf("kernel-phase panic was attributed to the carrier process: %v", pe)
	}
	if len(e.Panics()) != 0 {
		t.Errorf("kernel-phase panic was contained: %v", e.Panics())
	}
}

// TestPanicWithoutContainmentStillFatal pins the default: containment
// is opt-in, a process panic aborts Run (as TestProcessPanicSurfacesAsError
// also checks) and is not collected.
func TestPanicWithoutContainmentStillFatal(t *testing.T) {
	e := New()
	e.Spawn("bomb", nil, func(p *Process) { panic("boom") })
	err := e.Run()
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("Run = %v, want *PanicError", err)
	}
	if len(e.Panics()) != 0 {
		t.Errorf("fatal panic must not be collected in Panics: %v", e.Panics())
	}
}
