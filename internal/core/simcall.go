// The simcall layer: the explicit boundary between simulated processes
// and the kernel (the paper's user-level/simulation-kernel split).
//
// Every way a process can yield control is a *typed* simcall issued
// through a single entry point, so the kernel sees what the process
// wants (wait for an activity, sleep, yield, suspend, mailbox send or
// receive) instead of an opaque block. That buys three things:
//
//   - a synchronous fast path: simcalls whose answer is already known
//     in kernel state (zero-duration sleeps, already-completed
//     activities, non-blocking tests, a yield with an empty run queue)
//     return inline with zero channel round trips;
//   - a lighter handoff: a parking process wakes its successor (the
//     next runnable process, or the engine loop when the round is over)
//     directly through the successor's own resume channel — one channel
//     synchronization per activation instead of the former two-sync
//     ping-pong through a central scheduler goroutine;
//   - diagnosable blocking: a Waiting process records which simcall it
//     is stuck in, surfaced by Process.Simcall and DeadlockError.

package core

// SimcallKind identifies the typed simcall a process issues when it
// yields to the kernel.
type SimcallKind uint8

// Simcall kinds. SimcallSend and SimcallRecv label blocks whose wake is
// driven by upper-layer rendezvous bookkeeping (MSG mailboxes, SMPI
// message queues, GRAS inboxes); the kernel treats them like
// SimcallWait but keeps the label for diagnostics.
const (
	// SimcallNone means the process is not blocked in a simcall.
	SimcallNone SimcallKind = iota
	// SimcallWait is a generic block until an external Engine.Wake.
	SimcallWait
	// SimcallWaitActivity blocks until an Activity completes.
	SimcallWaitActivity
	// SimcallSleep blocks until a timer fires.
	SimcallSleep
	// SimcallYield re-queues the caller behind the runnable processes.
	SimcallYield
	// SimcallSuspend is a self-suspension, lifted by Resume.
	SimcallSuspend
	// SimcallSend is a block in a mailbox/rendezvous send.
	SimcallSend
	// SimcallRecv is a block in a mailbox/rendezvous receive.
	SimcallRecv
)

func (k SimcallKind) String() string {
	switch k {
	case SimcallNone:
		return "none"
	case SimcallWait:
		return "wait"
	case SimcallWaitActivity:
		return "wait-activity"
	case SimcallSleep:
		return "sleep"
	case SimcallYield:
		return "yield"
	case SimcallSuspend:
		return "suspend"
	case SimcallSend:
		return "send"
	case SimcallRecv:
		return "recv"
	default:
		return "simcall(?)"
	}
}

// SimcallStats counts simcall dispositions since engine creation.
type SimcallStats struct {
	// Fast counts simcalls answered inline, with zero channel round
	// trips (completed-activity waits, zero sleeps, empty-queue yields,
	// non-blocking tests).
	Fast uint64
	// Slow counts simcalls that parked the caller: each costs exactly
	// one channel synchronization to hand control to the successor.
	Slow uint64
}

// SimcallStats returns the cumulative fast/slow simcall counters.
func (e *Engine) SimcallStats() SimcallStats { return e.stats }

// Simcall returns the typed simcall the process is currently blocked in
// (SimcallNone while it runs). For a process made Runnable but not yet
// rescheduled it still names the call it is about to return from.
func (p *Process) Simcall() SimcallKind { return p.call }

// Activity is an asynchronous operation a process can block on through
// the typed wait-activity simcall (surf.Action is the canonical
// implementation). The kernel needs only completion polling — the fast
// path — and waiter registration; the activity's owner delivers the
// completion through Engine.Wake or Engine.WakeAll.
type Activity interface {
	// Poll reports whether the activity already completed and, if so,
	// its outcome. It must not block or mutate simulation state.
	Poll() (done bool, err error)
	// Attach registers p as the process to wake at completion. The
	// kernel calls it only after Poll returned false.
	Attach(p *Process)
}

// dispatchResult describes where control went after a dispatch.
type dispatchResult uint8

const (
	// dispatchNone: the run queue drained (or a fatal error aborted the
	// round); the caller keeps the kernel token.
	dispatchNone dispatchResult = iota
	// dispatchNext: control was handed to another process.
	dispatchNext
	// dispatchSelf: the popped process is the one whose goroutine is
	// dispatching (a Yield that re-queued itself, or a kernel turn that
	// woke its own carrier): it simply keeps running — no channel op.
	dispatchSelf
)

// dispatch pops the next schedulable process off the run queue and
// transfers control to it with a single channel send. self is the
// process whose goroutine is running this code (nil in the engine
// goroutine): popping self means control stays right here. The queue
// is drained in place (head cursor) so its backing array is reused
// across scheduling rounds.
func (e *Engine) dispatch(self *Process) dispatchResult {
	for e.fatal == nil && e.runHead < len(e.runQ) {
		p := e.runQ[e.runHead]
		e.runQ[e.runHead] = nil // release the reference for the collector
		e.runHead++
		if p.state == Done {
			continue
		}
		if p.suspended && !p.killed {
			// Park: keep it Waiting until Resume re-delivers the wake.
			// This must precede the self check — a kernel turn running
			// on p's own stack may wake p and then suspend it in the
			// same instant, and p must stay parked, not resume.
			p.state = Waiting
			ec := p.wakeErr
			p.pendingWake = &ec
			continue
		}
		if p == self {
			e.current = p
			p.state = Running
			return dispatchSelf
		}
		e.current = p
		p.state = Running
		p.resume <- p.wakeErr
		return dispatchNext
	}
	e.runQ = e.runQ[:0]
	e.runHead = 0
	e.current = nil
	return dispatchNone
}

// releaseToken passes the kernel token on after the caller's process
// stops running: to the next runnable process, else the kernel turn
// (clock advance, completions, timers) runs right here on the caller's
// stack — so a simulation step costs zero engine-goroutine round
// trips. The token only returns to Run (schedCh) when the simulation
// has ended or a shutdown drain round is over. self is the process
// whose goroutine is executing (nil for a dying goroutine); a
// dispatchSelf result means that very process was scheduled again.
func (e *Engine) releaseToken(self *Process) dispatchResult {
	r := e.dispatch(self)
	if r != dispatchNone {
		return r
	}
	if e.draining {
		e.schedCh <- struct{}{}
		return dispatchNone
	}
	r = e.kernelTurn(self)
	if r == dispatchNone {
		e.schedCh <- struct{}{} // simulation over: return the token
	}
	return r
}

// park hands the kernel token on and blocks until this process is
// resumed, returning the wake error. The successor is woken directly
// through its own resume channel — one synchronization — and a
// self-wake (the kernel turn on this very stack woke this process
// again) returns inline with zero channel round trips for the whole
// step. The parking goroutine performs no simulation-state access
// between the wake-out and its own resume receive.
func (p *Process) park() error {
	if p.engine.releaseToken(p) == dispatchSelf {
		return p.wakeErr
	}
	return <-p.resume
}

// blockOn is the single slow-path simcall entry point: it records the
// typed call, parks the process, and re-establishes its running state
// on wake-up. A killed process unwinds (running its defers) instead of
// returning.
func (p *Process) blockOn(kind SimcallKind) error {
	e := p.engine
	if e.current != p {
		panic("core: simcall issued outside the running process")
	}
	e.stats.Slow++
	p.call = kind
	p.state = Waiting
	err := p.park()
	p.call = SimcallNone
	p.state = Running
	if p.killed {
		panic(killedSignal{})
	}
	return err
}

// Block yields the calling process until the kernel wakes it (action
// completion, timer, Wake). It returns the error passed to Wake. If the
// process was killed while blocked, Block unwinds the stack (running
// defers) instead of returning.
func (p *Process) Block() error { return p.blockOn(SimcallWait) }

// BlockOn is Block labelled with the operation the caller is blocked
// in (send, receive, …), so the kernel's diagnostics — deadlock
// reports, Process.Simcall — name what the process wants instead of an
// opaque wait. The wake is still driven by the caller's own
// bookkeeping, exactly like Block.
func (p *Process) BlockOn(kind SimcallKind) error {
	if kind == SimcallNone {
		kind = SimcallWait
	}
	return p.blockOn(kind)
}

// WaitActivity blocks the process until the activity completes and
// returns its outcome. An activity that already completed is the fast
// path: its outcome is returned inline, with zero channel round trips.
func (p *Process) WaitActivity(a Activity) error {
	if done, err := a.Poll(); done {
		if p.engine.current == p {
			p.engine.stats.Fast++
		}
		return err
	}
	a.Attach(p)
	return p.blockOn(SimcallWaitActivity)
}

// TestActivity is the non-blocking completion probe: it reports whether
// the activity completed (and its outcome) without ever yielding —
// always a fast-path simcall.
func (p *Process) TestActivity(a Activity) (done bool, err error) {
	done, err = a.Poll()
	p.engine.stats.Fast++
	return done, err
}

// quiescentAt reports whether nothing else can happen at the current
// instant: no runnable process, no timer due now, and no model event
// due now. Only then may a zero-duration simcall be answered inline
// without changing what the caller would observe after a real yield.
func (e *Engine) quiescentAt() bool {
	if e.runHead < len(e.runQ) {
		return false
	}
	if len(e.timers) > 0 && !e.timers[0].canceled && e.timers[0].at <= e.now {
		return false
	}
	for _, m := range e.models {
		if m.NextEventTime(e.now) <= e.now {
			return false
		}
	}
	return true
}

// Sleep blocks the process for d virtual seconds. A non-positive
// duration with nothing else scheduled at this instant is the fast
// path: there is nothing to wait for, so Sleep returns inline without
// a scheduler round trip. When anything else is due now — a runnable
// process, a timer, a model completion — a zero sleep still yields,
// exactly like before: the instant fully settles before Sleep returns,
// and a zero-sleep polling loop cannot starve the rest of the
// simulation.
func (p *Process) Sleep(d float64) error {
	e := p.engine
	if d <= 0 {
		if e.current != p {
			panic("core: simcall issued outside the running process")
		}
		if e.quiescentAt() {
			e.stats.Fast++
			return nil
		}
		d = 0
	}
	// One reusable timer per process: a process has at most one pending
	// sleep, and the previous sleep's timer has necessarily fired (and
	// left the heap) before this call runs, so re-arming is normally a
	// fresh push (rearm moves a still-armed timer, e.g. after an early
	// wake). A sleep aborted by Kill leaves the timer armed; its
	// eventual firing wakes a Done process, which is a no-op.
	if p.sleepTm == nil {
		p.sleepTm = &timer{index: -1, fn: func() { e.Wake(p, nil) }}
	}
	p.sleepTm.rearm(e, e.now+d)
	return p.blockOn(SimcallSleep)
}

// Yield gives other runnable processes a chance to run at the current
// virtual time, then resumes. With an empty run queue there is nobody
// to yield to and the call returns inline (fast path).
func (p *Process) Yield() {
	e := p.engine
	if e.current != p {
		panic("core: simcall issued outside the running process")
	}
	if e.runHead >= len(e.runQ) {
		e.stats.Fast++
		return
	}
	e.stats.Slow++
	p.call = SimcallYield
	p.state = Runnable
	e.runQ = append(e.runQ, p)
	_ = p.park()
	p.call = SimcallNone
	p.state = Running
	if p.killed {
		panic(killedSignal{})
	}
}
