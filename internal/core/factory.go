package core

import (
	"sync"

	"repro/internal/instr"
)

// This file is the factory for the pooled process workers: the only
// place allowed to construct a worker by composite literal, and the
// only sanctioned goroutine spawn site on kernel paths (simgrid-lint's
// pool-literal and det-goroutine rules both point here).
//
// A worker is a parked goroutine that lends its stack to one simulated
// process at a time. Spawning a process costs a fresh goroutine (stack
// allocation, GC stack-scan registration) only when the pool is empty;
// otherwise a scrubbed worker is re-armed, so churn-heavy runs — and
// runs on a *fresh engine*, since the pool is package-level and
// outlives any single Engine — stop paying per-spawn stack costs.
// Build with -tags=nopool to always spawn fresh, single-use goroutines
// (the reference behaviour the equivalence suite replays against).

// worker is a reusable carrier goroutine for simulated processes. Its
// resume channel doubles as the process's wake channel for the whole
// assignment (Process.resume aliases it); proc is the current
// assignment, nil while parked in the pool.
//
// The channel is buffered (capacity 1) so a dispatch never blocks on a
// worker that is still unwinding its previous process: the kernel turn
// can run on the dying process's own stack and hand that same worker
// its next assignment before the worker has looped back to its
// receive. Sends and receives stay strictly 1:1 per park, so the
// buffer never holds a stale wake.
type worker struct {
	resume chan error
	proc   *Process
}

// workerPool is the package-level free list of parked workers, shared
// across engines (a simulation binary typically builds many short
// engines over its life; their processes reuse one stack population).
// It is the only cross-engine state in the package, hence the only
// mutex: engines themselves are single-threaded by the kernel token.
var workerPool struct {
	sync.Mutex
	free      []*worker
	hit, miss uint64
}

// maxPooledWorkers bounds the parked population; beyond it, finished
// workers exit instead of parking (their stacks are returned to the
// runtime). The bound exists to cap memory after a one-off spike of
// concurrent processes, not to size steady state.
const maxPooledWorkers = 1 << 15

// SetGoroutinePooling toggles the worker pool at runtime and returns
// the previous setting — the A/B knob for benchmarks and equivalence
// tests that compare pooled against fresh-spawn behaviour in one
// binary. The -tags=nopool build starts with it off; already-parked
// workers stay parked while disabled and become eligible again when
// re-enabled.
func SetGoroutinePooling(on bool) bool {
	old := poolingEnabled
	poolingEnabled = on
	return old
}

// grabWorker returns a parked worker, or nil when the pool is empty or
// pooling is disabled (the caller then creates a fresh one).
func grabWorker() *worker {
	if !poolingEnabled {
		return nil
	}
	workerPool.Lock()
	defer workerPool.Unlock()
	if n := len(workerPool.free); n > 0 {
		w := workerPool.free[n-1]
		workerPool.free[n-1] = nil
		workerPool.free = workerPool.free[:n-1]
		workerPool.hit++
		return w
	}
	workerPool.miss++
	return nil
}

// releaseWorker scrubs the worker and parks it in the pool, reporting
// whether it was retained (false: the caller's loop must exit and let
// the goroutine die). The caller guarantees the worker's process is
// terminated and its resume channel drained — dispatch sends exactly
// one wake per park and the worker consumed the last one to get here.
func releaseWorker(w *worker) bool {
	w.proc = nil
	if !poolingEnabled {
		return false
	}
	workerPool.Lock()
	defer workerPool.Unlock()
	if len(workerPool.free) >= maxPooledWorkers {
		return false
	}
	workerPool.free = append(workerPool.free, w)
	return true
}

// WorkerPoolStats reports the shared worker-stack free list's
// scoreboard: hits are processes that reused a parked stack, misses
// are grabs that fell through to a fresh goroutine spawn.
func WorkerPoolStats() instr.PoolStat {
	workerPool.Lock()
	defer workerPool.Unlock()
	return instr.PoolStat{Hit: workerPool.hit, Miss: workerPool.miss, Free: len(workerPool.free)}
}

// newWorker creates a fresh carrier goroutine — THE goroutine spawn
// site of the kernel (det-goroutine allowlists exactly this function).
// The goroutine runs processes assigned to it until releaseWorker
// declines to retain it.
func newWorker() *worker {
	w := &worker{resume: make(chan error, 1)}
	go w.loop()
	return w
}

// loop runs one assigned process per iteration: wait for the first
// schedule, execute the body, finalize, re-park. The worker repools
// itself BEFORE handing the kernel token on, so the very next Spawn in
// program order — even one issued by the kernel turn running on this
// worker's own dying stack — deterministically finds it: fresh-spawn
// counts are a pure function of the workload, not of goroutine timing.
func (w *worker) loop() {
	for {
		err := <-w.resume // first schedule of the current assignment
		p := w.proc
		e := p.engine
		if err == nil && p.killed {
			err = ErrKilled // killed before it ever ran
		}
		if err == nil {
			runProcessBody(e, p)
		} else {
			p.err = err
		}
		e.terminate(p)
		recycled := releaseWorker(w)
		// The dying process passes the kernel token on itself (self is
		// nil: a Done process is never re-scheduled).
		e.releaseToken(nil)
		if !recycled {
			return
		}
	}
}
