//go:build !nopool

package surf

// poolingEnabled gates the model's free lists (recycled Action structs
// and their resources slices). Build with -tags=nopool to allocate
// everything fresh — the reference behaviour the pool-reuse regression
// suite cross-checks against. A var, not a const, so in-package tests
// can flip it at runtime to compare both paths in one build.
var poolingEnabled = true
