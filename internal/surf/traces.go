// Trace-driven dynamics: availability traces rescale resource capacity
// over time (external load), state traces toggle resources off and on
// (transient failures). Each trace event is armed as an engine timer
// which, when it fires, applies the change and arms the next event —
// so periodic traces unroll lazily and cost nothing until reached.

package surf

import (
	"repro/internal/trace"
)

// scheduleTraces arms the availability and state traces of a resource.
func (m *Model) scheduleTraces(r *resource, avail, state *trace.Trace) {
	if avail != nil && avail.Len() > 0 {
		m.armAvail(r, avail.Iter(m.eng.Now()))
	}
	if state != nil && state.Len() > 0 {
		m.armState(r, state.Iter(m.eng.Now()))
	}
}

func (m *Model) armAvail(r *resource, it *trace.Iterator) {
	ts, v, ok := it.Next()
	if !ok {
		return
	}
	m.eng.At(ts, func() {
		m.setResourceAvail(r, v)
		m.armAvail(r, it)
	})
}

func (m *Model) armState(r *resource, it *trace.Iterator) {
	ts, v, ok := it.Next()
	if !ok {
		return
	}
	m.eng.At(ts, func() {
		m.setResourceState(r, v > 0.5)
		m.armState(r, it)
	})
}
