// Trace-driven dynamics: availability traces rescale resource capacity
// over time (external load), state traces toggle resources off and on
// (transient failures). Each trace is driven by a single re-armable
// engine timer carrying the trace iterator: the timer fires, applies
// the change, pulls the next event off the iterator and re-arms itself
// — so periodic traces unroll lazily with one timer and one closure per
// trace for the whole run, instead of a fresh closure-carrying timer
// per event.

package surf

import (
	"repro/internal/core"
	"repro/internal/trace"
)

// scheduleTraces arms the availability and state traces of a resource.
// The empty-trace checks happen before the apply closures are built:
// on trace-less platforms (the common case) constructing the model
// must not allocate per-resource callbacks that would never fire.
func (m *Model) scheduleTraces(r *resource, avail, state *trace.Trace) {
	if avail != nil && avail.Len() > 0 {
		m.armTrace(avail, func(v float64) { m.setResourceAvail(r, v) })
	}
	if state != nil && state.Len() > 0 {
		m.armTrace(state, func(v float64) { m.setResourceState(r, v > 0.5) })
	}
}

// armTrace drives one trace with one iterator-carrying timer. A state
// trace's "down" event reaches setResourceState, which fails every
// in-flight action crossing the resource — processes see ErrHostFailed
// or ErrLinkFailed, and kernel-level DAG tasks fail with their
// dependents cancelled (package simdag).
func (m *Model) armTrace(tr *trace.Trace, apply func(v float64)) {
	if tr == nil || tr.Len() == 0 {
		return
	}
	it := tr.Iter(m.eng.Now())
	ts, v, ok := it.Next()
	if !ok {
		return
	}
	pending := v
	var tm *core.Timer
	tm = m.eng.At(ts, func() {
		apply(pending)
		nts, nv, ok := it.Next()
		if !ok {
			return // non-periodic trace exhausted: the timer dies here
		}
		pending = nv
		tm.Rearm(nts)
	})
}
