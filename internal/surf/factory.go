package surf

// This file is the factory for pooled actions: the only place allowed
// to construct or scrub an Action by composite literal. simgrid-lint's
// pool-literal rule enforces that scope — a literal anywhere else
// would bypass the free list and break the "pools hold only scrubbed
// structs" invariant (DESIGN.md, "Object lifecycle & pooling").

// newAction returns a blank action (recycled from the free list when
// possible) with the shared creation bookkeeping filled in.
func (m *Model) newAction(kind ActionKind, name string) *Action {
	var a *Action
	if n := len(m.actPool); poolingEnabled && n > 0 {
		a = m.actPool[n-1]
		m.actPool[n-1] = nil
		m.actPool = m.actPool[:n-1]
		m.actPoolHit++
	} else {
		a = &Action{}
		m.actPoolMiss++
	}
	a.model = m
	a.kind = kind
	a.name = name
	a.heapIdx = -1
	a.start = m.eng.Now()
	a.lastSync = a.start
	a.seq = m.nextSeq
	m.nextSeq++
	return a
}

// poolAction scrubs an action and returns it to the free list — the
// single owner of the "pools hold only zeroed structs" invariant.
func (m *Model) poolAction(a *Action) {
	*a = Action{}
	if poolingEnabled {
		m.actPool = append(m.actPool, a)
	}
}
