package surf

import "math/bits"

// actionHeap is an indexed 4-ary min-heap over the model's in-flight
// actions, keyed on each action's next event time (the end of its
// latency phase while that is being paid, its absolute completion
// estimate afterwards). It implements SimGrid's "lazy action
// management": NextEventTime is a peek and AdvanceTo pops only due
// actions, instead of min-scanning every action per step.
//
// Keys change only when an action's rate changes (reported by
// maxmin.System.Updated after a solve) or when its latency phase ends,
// so the heap is re-keyed incrementally: O(log n) per changed action
// rather than O(n) per step. Each entry carries its key inline — a
// sift compares contiguous heap entries instead of dereferencing
// scattered Action structs, which is most of the event machinery's
// cache traffic at 10k+ concurrent actions.
type actionHeap []heapEntry

// heapEntry pairs an action with its cached event key. The key is
// refreshed from eventKey() at push/fix time; between re-keys it is
// authoritative for ordering.
type heapEntry struct {
	key float64
	a   *Action
}

// eventKey is the heap key: the absolute time of the action's next
// event. Suspended or starved bandwidth-phase actions have estFinish
// +Inf and sink to the bottom.
func (a *Action) eventKey() float64 {
	if a.latUntil > 0 {
		return a.latUntil
	}
	return a.estFinish
}

func (h actionHeap) less(i, j int) bool { return h[i].key < h[j].key }

func (h actionHeap) swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].a.heapIdx = i
	h[j].a.heapIdx = j
}

// The heap is 4-ary: half the depth of a binary heap, and the four
// children of a node are adjacent in memory, so a sift touches fewer,
// better-clustered cache lines — measurable at 10k+ in-flight actions.
const heapArity = 4

func (h actionHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / heapArity
		if !h.less(i, parent) {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h actionHeap) down(i int) {
	n := len(h)
	for {
		l := heapArity*i + 1
		if l >= n {
			break
		}
		m := l
		hi := l + heapArity
		if hi > n {
			hi = n
		}
		for c := l + 1; c < hi; c++ {
			if h.less(c, m) {
				m = c
			}
		}
		if !h.less(m, i) {
			break
		}
		h.swap(i, m)
		i = m
	}
}

// push inserts a (which must not be in the heap) and records its index.
func (h *actionHeap) push(a *Action) {
	a.heapIdx = len(*h)
	*h = append(*h, heapEntry{key: a.eventKey(), a: a})
	h.up(a.heapIdx)
}

// fix re-reads the key of h[i]'s action and restores the invariant.
func (h actionHeap) fix(i int) {
	h[i].key = h[i].a.eventKey()
	h.up(i)
	h.down(i)
}

// remove deletes h[i] from the heap and clears its index.
func (h *actionHeap) remove(i int) {
	old := *h
	n := len(old) - 1
	a := old[i].a
	if i != n {
		old.swap(i, n)
	}
	old[n] = heapEntry{} // release for the collector
	*h = old[:n]
	if i != n {
		(*h).fix(i)
	}
	a.heapIdx = -1
}

// popMin removes and returns the action with the earliest event.
func (h *actionHeap) popMin() *Action {
	a := (*h)[0].a
	h.remove(0)
	return a
}

// collectDue appends to buf every action whose event key is <= maxKey,
// without restructuring the heap. The matching actions form a
// parent-closed prefix of the tree (a child never keys below its
// parent), so a pruned DFS visits O(k) nodes for k matches. stack is
// caller-owned scratch; both grown slices are returned for reuse.
func (h actionHeap) collectDue(maxKey float64, buf []*Action, stack []int) ([]*Action, []int) {
	n := len(h)
	if n == 0 || h[0].key > maxKey {
		return buf, stack
	}
	// All-due shortcut: keys never decrease toward the leaves, so if
	// every leaf is due the whole heap is — a straight copy, no DFS.
	// (The scan aborts at the first non-due leaf, so a mixed heap pays
	// almost nothing for the attempt.)
	allDue := true
	for i := (n - 2) / heapArity; i < n; i++ {
		if h[i].key > maxKey {
			allDue = false
			break
		}
	}
	if allDue {
		for i := range h {
			buf = append(buf, h[i].a)
		}
		return buf, stack
	}
	stack = append(stack[:0], 0)
	for len(stack) > 0 {
		i := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		buf = append(buf, h[i].a)
		l := heapArity*i + 1
		hi := l + heapArity
		if hi > len(h) {
			hi = len(h)
		}
		for c := l; c < hi; c++ {
			if h[c].key <= maxKey {
				stack = append(stack, c)
			}
		}
	}
	return buf, stack
}

// removeBatch removes every action in batch (all of which must be in
// the heap). Small batches sift each removal out — O(log n) apiece —
// but a batch that is a large fraction of the heap is cheaper as one
// compaction followed by an O(n) heapify: the equal-key bulk-pop that
// lock-step completions rely on, shaving the per-action log factor.
func (h *actionHeap) removeBatch(batch []*Action) {
	n, k := len(*h), len(batch)
	if k == 0 {
		return
	}
	if k == n {
		// Everything goes: truncate in one pass, no compaction needed.
		for i := range *h {
			(*h)[i].a.heapIdx = -1
			(*h)[i] = heapEntry{}
		}
		*h = (*h)[:0]
		return
	}
	// Crossover: k sifts cost ~k·log n swap steps, the rebuild ~4 linear
	// passes (mark, compact, heapify, plus the re-insert's share).
	if k*bits.Len(uint(n)) < 4*n {
		for _, a := range batch {
			h.remove(a.heapIdx)
		}
		return
	}
	for _, a := range batch {
		a.heapIdx = -1
	}
	old := *h
	w := 0
	for r := 0; r < n; r++ {
		e := old[r]
		if e.a.heapIdx < 0 {
			continue
		}
		old[w] = e
		e.a.heapIdx = w
		w++
	}
	for i := w; i < n; i++ {
		old[i] = heapEntry{} // release for the collector
	}
	*h = old[:w]
	for i := (w - 2) / heapArity; i >= 0; i-- {
		(*h).down(i)
	}
}

// bulkPush inserts every action in as (none of which may be in the
// heap). A batch that rivals the heap size is appended and heapified in
// one O(n) pass instead of k sifts — the re-insertion half of the
// lock-step latency-phase transition.
func (h *actionHeap) bulkPush(as []*Action) {
	k := len(as)
	if k == 0 {
		return
	}
	n := len(*h) + k
	if k*bits.Len(uint(n)) < 4*n {
		for _, a := range as {
			h.push(a)
		}
		return
	}
	for _, a := range as {
		a.heapIdx = len(*h)
		*h = append(*h, heapEntry{key: a.eventKey(), a: a})
	}
	for i := (n - 2) / heapArity; i >= 0; i-- {
		(*h).down(i)
	}
}
