package surf

// actionHeap is an indexed binary min-heap over the model's in-flight
// actions, keyed on each action's next event time (the end of its
// latency phase while that is being paid, its absolute completion
// estimate afterwards). It implements SimGrid's "lazy action
// management": NextEventTime is a peek and AdvanceTo pops only due
// actions, instead of min-scanning every action per step.
//
// Keys change only when an action's rate changes (reported by
// maxmin.System.Updated after a solve) or when its latency phase ends,
// so the heap is re-keyed incrementally: O(log n) per changed action
// rather than O(n) per step.
type actionHeap []*Action

// eventKey is the heap key: the absolute time of the action's next
// event. Suspended or starved bandwidth-phase actions have estFinish
// +Inf and sink to the bottom.
func (a *Action) eventKey() float64 {
	if a.latUntil > 0 {
		return a.latUntil
	}
	return a.estFinish
}

func (h actionHeap) less(i, j int) bool { return h[i].eventKey() < h[j].eventKey() }

func (h actionHeap) swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].heapIdx = i
	h[j].heapIdx = j
}

func (h actionHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h actionHeap) down(i int) {
	n := len(h)
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && h.less(r, l) {
			m = r
		}
		if !h.less(m, i) {
			break
		}
		h.swap(i, m)
		i = m
	}
}

// push inserts a (which must not be in the heap) and records its index.
func (h *actionHeap) push(a *Action) {
	a.heapIdx = len(*h)
	*h = append(*h, a)
	h.up(a.heapIdx)
}

// fix restores the invariant after the key of h[i] changed in place.
func (h actionHeap) fix(i int) {
	h.up(i)
	h.down(i)
}

// remove deletes h[i] from the heap and clears its index.
func (h *actionHeap) remove(i int) {
	old := *h
	n := len(old) - 1
	a := old[i]
	if i != n {
		old.swap(i, n)
	}
	old[n] = nil // release for the collector
	*h = old[:n]
	if i != n {
		(*h).fix(i)
	}
	a.heapIdx = -1
}

// popMin removes and returns the action with the earliest event.
func (h *actionHeap) popMin() *Action {
	a := (*h)[0]
	h.remove(0)
	return a
}
