package surf

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/platform"
)

func poolTestPlatform(t testing.TB, hosts int) *platform.Platform {
	t.Helper()
	pf := platform.New()
	names := make([]string, hosts)
	for i := range names {
		names[i] = string(rune('a' + i))
		if err := pf.AddHost(&platform.Host{Name: names[i], Power: 1e9}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i < hosts; i++ {
		l := &platform.Link{Name: "l" + names[i], Bandwidth: 1e8, Latency: 1e-4 * float64(i)}
		if err := pf.AddRoute(names[0], names[i], []*platform.Link{l}); err != nil {
			t.Fatal(err)
		}
	}
	return pf
}

// TestActionPoolScrubbed drives a randomized churn of computations and
// transfers (with completions, cancels and releases) and asserts that
// every released Action is returned to the free list fully zeroed —
// no stale waiter, callback, heap index, rate, bound or error — and
// that a recycled action exposes only its new parameters.
func TestActionPoolScrubbed(t *testing.T) {
	if !poolingEnabled {
		t.Skip("pooling disabled (-tags=nopool)")
	}
	rng := rand.New(rand.NewSource(11))
	eng := core.New()
	pf := poolTestPlatform(t, 5)
	m := New(eng, pf, DefaultConfig())

	var blank Action
	hosts := []string{"a", "b", "c", "d", "e"}
	for round := 0; round < 40; round++ {
		var acts []*Action
		for i := 0; i < 20; i++ {
			var a *Action
			var err error
			if rng.Intn(2) == 0 {
				a, err = m.Execute(hosts[rng.Intn(len(hosts))], 1e5+rng.Float64()*1e6, 1+rng.Float64())
			} else {
				a, err = m.Communicate("a", hosts[1+rng.Intn(len(hosts)-1)], 1e4+rng.Float64()*1e5)
			}
			if err != nil {
				t.Fatal(err)
			}
			if a.Done() || a.Err() != nil || a.Remaining() <= 0 {
				t.Fatalf("fresh action in terminal state: done=%v err=%v rem=%g", a.Done(), a.Err(), a.Remaining())
			}
			if a.heapIdx < 0 || a.waiter != nil || a.onComplete != nil || a.compl != nil || a.suspended {
				t.Fatalf("recycled action leaked state: %+v", a)
			}
			acts = append(acts, a)
		}
		// Cancel a few mid-flight, run the rest to completion.
		for _, a := range acts[:5] {
			a.Cancel()
		}
		if err := eng.RunUntilIdle(); err != nil {
			t.Fatal(err)
		}
		for _, a := range acts {
			if !a.Done() {
				t.Fatalf("action %q not done after idle drive", a.Name())
			}
			a.Release()
		}
		// Everything in the pool must be indistinguishable from a zero
		// Action.
		for _, p := range m.actPool {
			if !reflect.DeepEqual(*p, blank) {
				t.Fatalf("pooled action carries stale state: %+v", *p)
			}
		}
	}
	if len(m.actPool) == 0 {
		t.Fatal("no action was ever pooled")
	}
}

// TestActionPoolingEquivalence replays one randomized workload twice —
// free lists on, then off — and requires the identical completion
// trace (finish times and outcomes): recycling must be unobservable.
func TestActionPoolingEquivalence(t *testing.T) {
	defer func(old bool) { poolingEnabled = old }(poolingEnabled)

	run := func(pool bool) []float64 {
		poolingEnabled = pool
		rng := rand.New(rand.NewSource(23))
		eng := core.New()
		pf := poolTestPlatform(t, 5)
		m := New(eng, pf, DefaultConfig())
		hosts := []string{"a", "b", "c", "d", "e"}
		var out []float64
		for round := 0; round < 25; round++ {
			var acts []*Action
			for i := 0; i < 15; i++ {
				var a *Action
				var err error
				if rng.Intn(2) == 0 {
					a, err = m.Execute(hosts[rng.Intn(len(hosts))], 1e5+rng.Float64()*1e6, 1)
				} else {
					a, err = m.Communicate("a", hosts[1+rng.Intn(len(hosts)-1)], 1e4+rng.Float64()*1e5)
				}
				if err != nil {
					t.Fatal(err)
				}
				acts = append(acts, a)
			}
			if err := eng.RunUntilIdle(); err != nil {
				t.Fatal(err)
			}
			for _, a := range acts {
				out = append(out, a.Finish())
				a.Release()
			}
		}
		return out
	}

	pooled := run(true)
	fresh := run(false)
	if len(pooled) != len(fresh) {
		t.Fatalf("trace lengths differ: %d vs %d", len(pooled), len(fresh))
	}
	for i := range pooled {
		if pooled[i] != fresh[i] {
			t.Fatalf("completion %d diverged: pooled %g, fresh %g", i, pooled[i], fresh[i])
		}
	}
}

// TestReleaseGuards pins the Release contract: releasing an in-flight
// action is a no-op, and a released action is actually recycled by the
// next creation.
func TestReleaseGuards(t *testing.T) {
	if !poolingEnabled {
		t.Skip("pooling disabled (-tags=nopool)")
	}
	eng := core.New()
	pf := poolTestPlatform(t, 2)
	m := New(eng, pf, DefaultConfig())

	a, err := m.Execute("a", 1e6, 1)
	if err != nil {
		t.Fatal(err)
	}
	a.Release() // in flight: must be ignored
	if len(m.actPool) != 0 {
		t.Fatal("in-flight action was pooled")
	}
	a.Cancel()
	if !a.Done() {
		t.Fatal("canceled action not done")
	}
	a.Release()
	if len(m.actPool) != 1 {
		t.Fatalf("pool has %d entries, want 1", len(m.actPool))
	}
	b, err := m.Execute("b", 1e6, 1)
	if err != nil {
		t.Fatal(err)
	}
	if b != a {
		t.Fatal("released action was not recycled by the next Execute")
	}
	if b.Name() != "exec@b" || b.Done() || b.Err() != nil {
		t.Fatalf("recycled action carries stale identity: name=%q done=%v err=%v", b.Name(), b.Done(), b.Err())
	}
}
