package surf

import (
	"errors"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/trace"
)

// testPlatform builds two hosts joined by one link:
// h1 (1 Gflop/s) -- l1 (1e8 B/s, 10 ms) -- h2 (2 Gflop/s).
func testPlatform(t *testing.T) *platform.Platform {
	t.Helper()
	p := platform.New()
	if err := p.AddHost(&platform.Host{Name: "h1", Power: 1e9}); err != nil {
		t.Fatal(err)
	}
	if err := p.AddHost(&platform.Host{Name: "h2", Power: 2e9}); err != nil {
		t.Fatal(err)
	}
	l := &platform.Link{Name: "l1", Bandwidth: 1e8, Latency: 0.01}
	if err := p.AddRoute("h1", "h2", []*platform.Link{l}); err != nil {
		t.Fatal(err)
	}
	return p
}

// exactCfg disables calibration factors so tests can assert exact times.
func exactCfg() Config { return Config{BandwidthFactor: 1, LatencyFactor: 1, TCPGamma: 0} }

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestExecuteDuration(t *testing.T) {
	e := core.New()
	m := New(e, testPlatform(t), exactCfg())
	var doneAt float64
	e.Spawn("p", nil, func(p *core.Process) {
		a, err := m.Execute("h1", 2e9, 1) // 2 Gflop on 1 Gflop/s
		if err != nil {
			t.Errorf("Execute: %v", err)
			return
		}
		if err := a.Wait(p); err != nil {
			t.Errorf("Wait: %v", err)
		}
		doneAt = e.Now()
		if !a.Done() || a.Err() != nil {
			t.Error("action not done/clean")
		}
		if a.Start() != 0 || !approx(a.Finish(), 2, 1e-9) {
			t.Errorf("start/finish = %g/%g", a.Start(), a.Finish())
		}
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !approx(doneAt, 2, 1e-9) {
		t.Errorf("done at %g, want 2", doneAt)
	}
}

func TestExecuteOnFasterHost(t *testing.T) {
	e := core.New()
	m := New(e, testPlatform(t), exactCfg())
	e.Spawn("p", nil, func(p *core.Process) {
		a, _ := m.Execute("h2", 2e9, 1) // 2 Gflop on 2 Gflop/s
		a.Wait(p)
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !approx(e.Now(), 1, 1e-9) {
		t.Errorf("finished at %g, want 1", e.Now())
	}
}

func TestTwoExecutionsShareCPU(t *testing.T) {
	e := core.New()
	m := New(e, testPlatform(t), exactCfg())
	var t1, t2 float64
	spawn := func(out *float64) {
		e.Spawn("p", nil, func(p *core.Process) {
			a, _ := m.Execute("h1", 1e9, 1)
			a.Wait(p)
			*out = e.Now()
		})
	}
	spawn(&t1)
	spawn(&t2)
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Two 1-second tasks sharing: both end at t=2.
	if !approx(t1, 2, 1e-9) || !approx(t2, 2, 1e-9) {
		t.Errorf("finished at %g/%g, want 2/2", t1, t2)
	}
}

func TestPriorityGetsBiggerShare(t *testing.T) {
	e := core.New()
	m := New(e, testPlatform(t), exactCfg())
	var tHigh, tLow float64
	e.Spawn("high", nil, func(p *core.Process) {
		a, _ := m.Execute("h1", 1e9, 3) // 3x priority
		a.Wait(p)
		tHigh = e.Now()
	})
	e.Spawn("low", nil, func(p *core.Process) {
		a, _ := m.Execute("h1", 1e9, 1)
		a.Wait(p)
		tLow = e.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	// High gets 0.75 Gflop/s -> finishes at 4/3; low then speeds up:
	// at 4/3 low has done 1/3 Gflop, 2/3 remaining at full speed -> 2.
	if !approx(tHigh, 4.0/3, 1e-6) {
		t.Errorf("high finished at %g, want 4/3", tHigh)
	}
	if !approx(tLow, 2, 1e-6) {
		t.Errorf("low finished at %g, want 2", tLow)
	}
}

func TestCommunicateLatencyPlusBandwidth(t *testing.T) {
	e := core.New()
	m := New(e, testPlatform(t), exactCfg())
	e.Spawn("p", nil, func(p *core.Process) {
		a, err := m.Communicate("h1", "h2", 1e8) // 1e8 B at 1e8 B/s + 10ms
		if err != nil {
			t.Errorf("Communicate: %v", err)
			return
		}
		if a.Kind() != ActionComm {
			t.Errorf("kind = %v", a.Kind())
		}
		a.Wait(p)
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !approx(e.Now(), 1.01, 1e-9) {
		t.Errorf("finished at %g, want 1.01", e.Now())
	}
}

func TestBandwidthFactorScalesRate(t *testing.T) {
	e := core.New()
	cfg := Config{BandwidthFactor: 0.5, LatencyFactor: 1, TCPGamma: 0}
	m := New(e, testPlatform(t), cfg)
	e.Spawn("p", nil, func(p *core.Process) {
		a, _ := m.Communicate("h1", "h2", 1e8)
		a.Wait(p)
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Effective bandwidth 5e7 -> 2 s + 10 ms.
	if !approx(e.Now(), 2.01, 1e-9) {
		t.Errorf("finished at %g, want 2.01", e.Now())
	}
}

func TestLatencyFactorScalesLatency(t *testing.T) {
	e := core.New()
	cfg := Config{BandwidthFactor: 1, LatencyFactor: 10, TCPGamma: 0}
	m := New(e, testPlatform(t), cfg)
	e.Spawn("p", nil, func(p *core.Process) {
		a, _ := m.Communicate("h1", "h2", 1e8)
		a.Wait(p)
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !approx(e.Now(), 1.1, 1e-9) {
		t.Errorf("finished at %g, want 1.1", e.Now())
	}
}

func TestTCPWindowBound(t *testing.T) {
	// gamma/(2*RTT) = 1e6/(2*0.01) = 5e7 < bandwidth 1e8: window-bound.
	e := core.New()
	cfg := Config{BandwidthFactor: 1, LatencyFactor: 1, TCPGamma: 1e6}
	m := New(e, testPlatform(t), cfg)
	e.Spawn("p", nil, func(p *core.Process) {
		a, _ := m.Communicate("h1", "h2", 5e7)
		a.Wait(p)
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	// 5e7 bytes at 5e7 B/s + 0.01 latency = 1.01.
	if !approx(e.Now(), 1.01, 1e-6) {
		t.Errorf("finished at %g, want 1.01 (window-bound)", e.Now())
	}
}

func TestTwoFlowsShareLink(t *testing.T) {
	e := core.New()
	m := New(e, testPlatform(t), exactCfg())
	var t1, t2 float64
	spawn := func(out *float64) {
		e.Spawn("f", nil, func(p *core.Process) {
			a, _ := m.Communicate("h1", "h2", 5e7)
			a.Wait(p)
			*out = e.Now()
		})
	}
	spawn(&t1)
	spawn(&t2)
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Each gets 5e7 B/s: 1 s transfer + 10 ms latency.
	if !approx(t1, 1.01, 1e-6) || !approx(t2, 1.01, 1e-6) {
		t.Errorf("finished at %g/%g, want 1.01", t1, t2)
	}
}

func TestFatpipeDoesNotShare(t *testing.T) {
	p := platform.New()
	p.AddHost(&platform.Host{Name: "h1", Power: 1e9})
	p.AddHost(&platform.Host{Name: "h2", Power: 1e9})
	l := &platform.Link{Name: "bb", Bandwidth: 1e8, Latency: 0, Policy: platform.Fatpipe}
	p.AddRoute("h1", "h2", []*platform.Link{l})
	e := core.New()
	m := New(e, p, exactCfg())
	var times []float64
	for i := 0; i < 3; i++ {
		e.Spawn("f", nil, func(pr *core.Process) {
			a, _ := m.Communicate("h1", "h2", 1e8)
			a.Wait(pr)
			times = append(times, e.Now())
		})
	}
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, ts := range times {
		if !approx(ts, 1, 1e-6) {
			t.Errorf("fatpipe flow finished at %g, want 1", ts)
		}
	}
}

func TestMultiHopUsesAllLinks(t *testing.T) {
	p := platform.New()
	p.AddHost(&platform.Host{Name: "a", Power: 1e9})
	p.AddHost(&platform.Host{Name: "b", Power: 1e9})
	l1 := &platform.Link{Name: "l1", Bandwidth: 1e8, Latency: 0.001}
	l2 := &platform.Link{Name: "l2", Bandwidth: 5e7, Latency: 0.002} // bottleneck
	p.AddRoute("a", "b", []*platform.Link{l1, l2})
	e := core.New()
	m := New(e, p, exactCfg())
	e.Spawn("f", nil, func(pr *core.Process) {
		a, _ := m.Communicate("a", "b", 5e7)
		a.Wait(pr)
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Bottleneck 5e7 B/s -> 1 s, latency 3 ms.
	if !approx(e.Now(), 1.003, 1e-6) {
		t.Errorf("finished at %g, want 1.003", e.Now())
	}
}

func TestIntraHostCommIsInstant(t *testing.T) {
	e := core.New()
	m := New(e, testPlatform(t), exactCfg())
	e.Spawn("p", nil, func(p *core.Process) {
		a, err := m.Communicate("h1", "h1", 1e9)
		if err != nil {
			t.Errorf("Communicate: %v", err)
			return
		}
		a.Wait(p)
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if e.Now() != 0 {
		t.Errorf("intra-host comm took %g, want 0", e.Now())
	}
}

func TestZeroFlopsInstant(t *testing.T) {
	e := core.New()
	m := New(e, testPlatform(t), exactCfg())
	e.Spawn("p", nil, func(p *core.Process) {
		a, _ := m.Execute("h1", 0, 1)
		a.Wait(p)
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if e.Now() != 0 {
		t.Errorf("zero-flop exec took %g", e.Now())
	}
}

func TestUnknownHostAndRoute(t *testing.T) {
	e := core.New()
	m := New(e, testPlatform(t), exactCfg())
	if _, err := m.Execute("ghost", 1, 1); err == nil {
		t.Error("Execute on unknown host accepted")
	}
	if _, err := m.Communicate("ghost", "h1", 1); err == nil {
		t.Error("Communicate from unknown host accepted")
	}
}

func TestAvailabilityTraceSlowsCPU(t *testing.T) {
	p := testPlatform(t)
	// h1 drops to 50% power at t=1 forever.
	p.Host("h1").Availability = trace.MustNew("av", []trace.Event{{Time: 1, Value: 0.5}}, 0)
	e := core.New()
	m := New(e, p, exactCfg())
	e.Spawn("p", nil, func(pr *core.Process) {
		a, _ := m.Execute("h1", 2e9, 1)
		a.Wait(pr)
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	// 1 Gflop done in first second; remaining 1 Gflop at 0.5 Gflop/s = 2 s.
	if !approx(e.Now(), 3, 1e-6) {
		t.Errorf("finished at %g, want 3", e.Now())
	}
}

func TestPeriodicAvailabilityTrace(t *testing.T) {
	p := testPlatform(t)
	// Alternates full/half speed every second, period 2.
	p.Host("h1").Availability = trace.MustNew("av",
		[]trace.Event{{Time: 0, Value: 1}, {Time: 1, Value: 0.5}}, 2)
	e := core.New()
	m := New(e, p, exactCfg())
	e.Spawn("p", nil, func(pr *core.Process) {
		a, _ := m.Execute("h1", 3e9, 1)
		a.Wait(pr)
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Work per period: 1 + 0.5 = 1.5 Gflop. 3 Gflop = 2 periods = 4 s.
	if !approx(e.Now(), 4, 1e-6) {
		t.Errorf("finished at %g, want 4", e.Now())
	}
}

func TestStateTraceFailsComputation(t *testing.T) {
	p := testPlatform(t)
	p.Host("h1").StateTrace = trace.MustNew("st", []trace.Event{{Time: 1, Value: 0}}, 0)
	e := core.New()
	m := New(e, p, exactCfg())
	var hostDown bool
	m.OnHostStateChange = func(h *platform.Host, up bool) {
		if h.Name == "h1" && !up {
			hostDown = true
		}
	}
	var gotErr error
	e.Spawn("p", nil, func(pr *core.Process) {
		a, _ := m.Execute("h1", 1e10, 1)
		gotErr = a.Wait(pr)
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !errors.Is(gotErr, ErrHostFailed) {
		t.Errorf("Wait = %v, want ErrHostFailed", gotErr)
	}
	if !hostDown {
		t.Error("OnHostStateChange not called")
	}
	if !approx(e.Now(), 1, 1e-9) {
		t.Errorf("failed at %g, want 1", e.Now())
	}
	if m.HostUp("h1") {
		t.Error("h1 still reported up")
	}
}

func TestStateTraceRecovery(t *testing.T) {
	p := testPlatform(t)
	p.Host("h1").StateTrace = trace.MustNew("st",
		[]trace.Event{{Time: 1, Value: 0}, {Time: 2, Value: 1}}, 0)
	e := core.New()
	m := New(e, p, exactCfg())
	var phase2 error
	e.Spawn("p", nil, func(pr *core.Process) {
		a, _ := m.Execute("h1", 1e10, 1)
		if err := a.Wait(pr); !errors.Is(err, ErrHostFailed) {
			t.Errorf("first Wait = %v", err)
		}
		pr.Sleep(1.5) // wait past recovery (t=2.5)
		a2, _ := m.Execute("h1", 1e9, 1)
		phase2 = a2.Wait(pr)
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if phase2 != nil {
		t.Errorf("post-recovery exec failed: %v", phase2)
	}
	if !approx(e.Now(), 3.5, 1e-6) {
		t.Errorf("finished at %g, want 3.5", e.Now())
	}
}

func TestLinkFailureKillsTransfer(t *testing.T) {
	e := core.New()
	m := New(e, testPlatform(t), exactCfg())
	var gotErr error
	e.Spawn("f", nil, func(pr *core.Process) {
		a, _ := m.Communicate("h1", "h2", 1e9)
		gotErr = a.Wait(pr)
	})
	e.Spawn("saboteur", nil, func(pr *core.Process) {
		pr.Sleep(0.5)
		m.FailLink("l1")
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !errors.Is(gotErr, ErrLinkFailed) {
		t.Errorf("Wait = %v, want ErrLinkFailed", gotErr)
	}
	if m.LinkUp("l1") {
		t.Error("l1 still up")
	}
}

func TestCommOnDownLinkFailsImmediately(t *testing.T) {
	e := core.New()
	m := New(e, testPlatform(t), exactCfg())
	var gotErr error
	e.Spawn("f", nil, func(pr *core.Process) {
		m.FailLink("l1")
		a, err := m.Communicate("h1", "h2", 1e3)
		if err != nil {
			t.Errorf("Communicate: %v", err)
			return
		}
		gotErr = a.Wait(pr)
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !errors.Is(gotErr, ErrLinkFailed) {
		t.Errorf("Wait = %v, want ErrLinkFailed", gotErr)
	}
}

func TestExecOnDownHostFailsImmediately(t *testing.T) {
	e := core.New()
	m := New(e, testPlatform(t), exactCfg())
	var gotErr error
	e.Spawn("p", nil, func(pr *core.Process) {
		m.FailHost("h1")
		a, _ := m.Execute("h1", 1e3, 1)
		gotErr = a.Wait(pr)
		m.RestoreHost("h1")
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !errors.Is(gotErr, ErrHostFailed) {
		t.Errorf("Wait = %v, want ErrHostFailed", gotErr)
	}
	if !m.HostUp("h1") {
		t.Error("h1 not restored")
	}
}

func TestCancelAction(t *testing.T) {
	e := core.New()
	m := New(e, testPlatform(t), exactCfg())
	var gotErr error
	var act *Action
	e.Spawn("p", nil, func(pr *core.Process) {
		act, _ = m.Execute("h1", 1e12, 1)
		gotErr = act.Wait(pr)
	})
	e.Spawn("canceler", nil, func(pr *core.Process) {
		pr.Sleep(1)
		act.Cancel()
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !errors.Is(gotErr, ErrCanceled) {
		t.Errorf("Wait = %v, want ErrCanceled", gotErr)
	}
}

func TestSuspendResumeAction(t *testing.T) {
	e := core.New()
	m := New(e, testPlatform(t), exactCfg())
	var act *Action
	var doneAt float64
	e.Spawn("p", nil, func(pr *core.Process) {
		act, _ = m.Execute("h1", 2e9, 1) // 2 s of work
		act.Wait(pr)
		doneAt = e.Now()
	})
	e.Spawn("ctl", nil, func(pr *core.Process) {
		pr.Sleep(1)
		act.Suspend()
		if !act.Suspended() {
			t.Error("not suspended")
		}
		pr.Sleep(3)
		act.Resume()
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	// 1 s work + 3 s frozen + 1 s work = 5.
	if !approx(doneAt, 5, 1e-6) {
		t.Errorf("done at %g, want 5", doneAt)
	}
}

func TestParallelTaskSpansResources(t *testing.T) {
	e := core.New()
	m := New(e, testPlatform(t), exactCfg())
	e.Spawn("p", nil, func(pr *core.Process) {
		// 1 Gflop on h1 (1 Gflop/s), 1 Gflop on h2 (2 Gflop/s), and
		// 5e7 B h1->h2 (1e8 B/s): rate x bounded by h1: x <= 1;
		// completion at 1/x = 1 s (h1 is the bottleneck).
		a, err := m.ExecuteParallel(
			[]string{"h1", "h2"},
			[]float64{1e9, 1e9},
			[][]float64{{0, 5e7}, {0, 0}},
		)
		if err != nil {
			t.Errorf("ExecuteParallel: %v", err)
			return
		}
		if a.Kind() != ActionParallel {
			t.Errorf("kind = %v", a.Kind())
		}
		a.Wait(pr)
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !approx(e.Now(), 1, 1e-6) {
		t.Errorf("ptask finished at %g, want 1", e.Now())
	}
}

func TestParallelTaskValidation(t *testing.T) {
	e := core.New()
	m := New(e, testPlatform(t), exactCfg())
	if _, err := m.ExecuteParallel([]string{"h1"}, []float64{1, 2}, nil); err == nil {
		t.Error("mismatched flops accepted")
	}
	if _, err := m.ExecuteParallel([]string{"ghost"}, []float64{1}, nil); err == nil {
		t.Error("unknown host accepted")
	}
	if _, err := m.ExecuteParallel([]string{"h1", "h2"}, []float64{1, 1}, [][]float64{{0}}); err == nil {
		t.Error("bad matrix accepted")
	}
}

func TestEmptyParallelTaskInstant(t *testing.T) {
	e := core.New()
	m := New(e, testPlatform(t), exactCfg())
	e.Spawn("p", nil, func(pr *core.Process) {
		a, err := m.ExecuteParallel([]string{"h1"}, []float64{0}, nil)
		if err != nil {
			t.Errorf("ExecuteParallel: %v", err)
			return
		}
		a.Wait(pr)
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if e.Now() != 0 {
		t.Errorf("empty ptask took %g", e.Now())
	}
}

func TestComputeAndCommCoexist(t *testing.T) {
	// Computation and communication don't interfere (separate
	// resources) but both advance in the same timeline.
	e := core.New()
	m := New(e, testPlatform(t), exactCfg())
	var tExec, tComm float64
	e.Spawn("cpu", nil, func(pr *core.Process) {
		a, _ := m.Execute("h1", 1e9, 1)
		a.Wait(pr)
		tExec = e.Now()
	})
	e.Spawn("net", nil, func(pr *core.Process) {
		a, _ := m.Communicate("h1", "h2", 5e7)
		a.Wait(pr)
		tComm = e.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !approx(tExec, 1, 1e-6) {
		t.Errorf("exec at %g, want 1", tExec)
	}
	if !approx(tComm, 0.51, 1e-6) {
		t.Errorf("comm at %g, want 0.51", tComm)
	}
}

func TestHostLoadReporting(t *testing.T) {
	e := core.New()
	m := New(e, testPlatform(t), exactCfg())
	e.Spawn("p", nil, func(pr *core.Process) {
		a, _ := m.Execute("h1", 1e9, 1)
		pr.Sleep(0.5)
		if load := m.HostLoad("h1"); !approx(load, 1e9, 1) {
			t.Errorf("HostLoad = %g, want 1e9", load)
		}
		a.Wait(pr)
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if m.HostLoad("ghost") != 0 {
		t.Error("unknown host load != 0")
	}
}

func TestDefaultConfig(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.BandwidthFactor <= 0 || cfg.BandwidthFactor > 1 {
		t.Errorf("BandwidthFactor = %g", cfg.BandwidthFactor)
	}
	if cfg.TCPGamma <= 0 {
		t.Errorf("TCPGamma = %g", cfg.TCPGamma)
	}
}

func TestActionKindStrings(t *testing.T) {
	if ActionCompute.String() != "compute" || ActionComm.String() != "comm" ||
		ActionParallel.String() != "parallel" || ActionKind(9).String() != "unknown" {
		t.Error("kind strings wrong")
	}
}

func TestModelAccessors(t *testing.T) {
	e := core.New()
	pf := testPlatform(t)
	m := New(e, pf, exactCfg())
	if m.Engine() != e || m.Platform() != pf {
		t.Error("accessors wrong")
	}
	if m.Config().BandwidthFactor != 1 {
		t.Error("config not stored")
	}
	if err := m.FailHost("ghost"); err == nil {
		t.Error("FailHost(ghost) accepted")
	}
	if err := m.RestoreHost("ghost"); err == nil {
		t.Error("RestoreHost(ghost) accepted")
	}
	if err := m.FailLink("ghost"); err == nil {
		t.Error("FailLink(ghost) accepted")
	}
	if err := m.RestoreLink("ghost"); err == nil {
		t.Error("RestoreLink(ghost) accepted")
	}
}

func TestWaitAfterCompletion(t *testing.T) {
	e := core.New()
	m := New(e, testPlatform(t), exactCfg())
	e.Spawn("p", nil, func(pr *core.Process) {
		a, _ := m.Execute("h1", 1e6, 1)
		pr.Sleep(1) // action completes during the sleep
		if err := a.Wait(pr); err != nil {
			t.Errorf("Wait after completion: %v", err)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestDoubleWaiterRejected(t *testing.T) {
	e := core.New()
	m := New(e, testPlatform(t), exactCfg())
	var act *Action
	e.Spawn("p1", nil, func(pr *core.Process) {
		act, _ = m.Execute("h1", 1e9, 1)
		act.Wait(pr)
	})
	e.Spawn("p2", nil, func(pr *core.Process) {
		pr.Yield() // let p1 attach first
		if err := act.Wait(pr); err == nil {
			t.Error("second waiter accepted")
		}
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

// The lazy progress bookkeeping (absolute completion estimates,
// re-integrated only when the MaxMin solve changes a rate) must still
// report live Remaining values mid-flight, and churn on unrelated
// resources must not disturb an action's progress or completion time.
func TestRemainingTracksLazyProgress(t *testing.T) {
	e := core.New()
	m := New(e, testPlatform(t), exactCfg())
	var act *Action
	e.Spawn("worker", nil, func(p *core.Process) {
		var err error
		act, err = m.Execute("h1", 2e9, 1) // 2 Gflop at 1 Gflop/s -> done at 2
		if err != nil {
			t.Errorf("Execute: %v", err)
			return
		}
		act.Wait(p)
	})
	// Unrelated churn on h2: forces re-solves whose partial results must
	// leave h1's action untouched (it is in another component).
	e.At(0.25, func() {
		if _, err := m.Execute("h2", 1e9, 1); err != nil {
			t.Errorf("churn Execute: %v", err)
		}
	})
	var remAtHalf, rateAtHalf float64
	e.At(0.5, func() {
		remAtHalf = act.Remaining()
		rateAtHalf = act.Rate()
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !approx(remAtHalf, 1.5e9, 1) {
		t.Errorf("Remaining at t=0.5 = %g, want 1.5e9", remAtHalf)
	}
	if !approx(rateAtHalf, 1e9, 1) {
		t.Errorf("Rate at t=0.5 = %g, want 1e9", rateAtHalf)
	}
	if !approx(e.Now(), 2, 1e-9) {
		t.Errorf("finished at %g, want 2", e.Now())
	}
	if act.Remaining() != 0 {
		t.Errorf("Remaining after completion = %g, want 0", act.Remaining())
	}
}
