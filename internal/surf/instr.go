package surf

import (
	"repro/internal/instr"
	"repro/internal/maxmin"
)

// Observability wiring for the resource layer. The model owns the
// platform band of a Paje trace: one container per resource (hosts and
// links under a "platform" root), an up/down STATE per resource, and
// utilization/saturation variables recomputed from the maxmin shares
// after every solve. Everything is stamped with simulated time and
// walks resList (creation order), so trace bytes are a pure function
// of the run. All hooks are nil-guarded: a model without EnableTrace
// pays one pointer test per solve.

// surfTrace holds the surf side of a Paje trace: type and container
// aliases minted at EnableTrace time.
type surfTrace struct {
	tr       *instr.Trace
	platType string // PLATFORM container type alias
	root     string // the "platform" root container alias
	hostType string
	linkType string
	stateH   string // STATE type on hosts
	stateL   string // STATE type on links
	utilH    string // utilization variable on hosts
	utilL    string
	satH     string // saturation variable on hosts
	satL     string
}

// EnableTrace attaches a Paje trace to the model: defines the
// platform-band types, creates one container per resource at the
// current simulated time, and starts emitting resource states and
// post-solve utilization/saturation. Idempotent; nil tr is a no-op.
func (m *Model) EnableTrace(tr *instr.Trace) {
	if tr == nil || m.trace != nil {
		return
	}
	st := &surfTrace{tr: tr}
	st.platType = tr.DefineContainerType("0", "PLATFORM")
	st.hostType = tr.DefineContainerType(st.platType, "HOST")
	st.linkType = tr.DefineContainerType(st.platType, "LINK")
	st.stateH = tr.DefineStateType(st.hostType, "STATE")
	st.stateL = tr.DefineStateType(st.linkType, "STATE")
	tr.DefineEntityValue(st.stateH, "up")
	tr.DefineEntityValue(st.stateH, "down")
	tr.DefineEntityValue(st.stateL, "up")
	tr.DefineEntityValue(st.stateL, "down")
	st.utilH = tr.DefineVariableType(st.hostType, "utilization")
	st.satH = tr.DefineVariableType(st.hostType, "saturation")
	st.utilL = tr.DefineVariableType(st.linkType, "utilization")
	st.satL = tr.DefineVariableType(st.linkType, "saturation")
	now := m.eng.Now()
	st.root = tr.CreateContainer(now, st.platType, "0", "platform")
	for _, r := range m.resList {
		ctype, stype := st.linkType, st.stateL
		if r.isHost {
			ctype, stype = st.hostType, st.stateH
		}
		r.pajeC = tr.CreateContainer(now, ctype, st.root, r.name)
		state := "up"
		if !r.on {
			state = "down"
		}
		tr.SetState(now, stype, r.pajeC, state)
	}
	m.trace = st
}

// Trace returns the attached Paje trace (nil when tracing is off).
func (m *Model) Trace() *instr.Trace {
	if m.trace == nil {
		return nil
	}
	return m.trace.tr
}

// TraceRoot returns the "platform" root container alias, the common
// ancestor upper layers use for message links.
func (m *Model) TraceRoot() string {
	if m.trace == nil {
		return ""
	}
	return m.trace.root
}

// TraceRootType returns the PLATFORM container type alias so upper
// layers can define link types spanning the whole platform.
func (m *Model) TraceRootType() string {
	if m.trace == nil {
		return ""
	}
	return m.trace.platType
}

// TraceHostType returns the HOST container type alias so upper layers
// can nest their own containers (processes) under hosts.
func (m *Model) TraceHostType() string {
	if m.trace == nil {
		return ""
	}
	return m.trace.hostType
}

// HostContainer returns the Paje container alias of a host ("" when
// tracing is off or the host is unknown).
func (m *Model) HostContainer(name string) string {
	if m.trace == nil {
		return ""
	}
	if r, ok := m.cpus[name]; ok {
		return r.pajeC
	}
	return ""
}

// emitShares re-derives each resource's utilization (total maxmin
// share) and saturation (share / effective capacity) after a solve and
// emits the variables that changed. Called from refresh with tracing
// on; walks resList so emission order is creation order.
func (m *Model) emitShares(now float64) {
	st := m.trace
	for _, r := range m.resList {
		u := r.cnst.Usage()
		sat := 0.0
		if c := r.effectiveCapacity(); c > 0 {
			sat = u / c
		}
		if u != r.lastUtil {
			vt := st.utilL
			if r.isHost {
				vt = st.utilH
			}
			st.tr.SetVariable(now, vt, r.pajeC, u)
			r.lastUtil = u
		}
		if sat != r.lastSat {
			vt := st.satL
			if r.isHost {
				vt = st.satH
			}
			st.tr.SetVariable(now, vt, r.pajeC, sat)
			r.lastSat = sat
		}
	}
}

// traceResourceState emits a resource's up/down transition.
func (m *Model) traceResourceState(r *resource, up bool) {
	st := m.trace
	stype := st.stateL
	if r.isHost {
		stype = st.stateH
	}
	state := "up"
	if !up {
		state = "down"
	}
	st.tr.SetState(m.eng.Now(), stype, r.pajeC, state)
}

// EnableMetrics registers the model's live time-weighted observations
// on r (event-heap depth over simulated time). The cumulative counters
// don't need enabling — they are always-on fields collected by
// MetricsInto.
func (m *Model) EnableMetrics(r *instr.Registry) {
	if r == nil {
		return
	}
	m.heapDepth = r.Weighted("surf.heap_depth_integral")
}

// ActionPoolStats reports the Action free list's scoreboard.
func (m *Model) ActionPoolStats() instr.PoolStat {
	return instr.PoolStat{Hit: m.actPoolHit, Miss: m.actPoolMiss, Free: len(m.actPool)}
}

// ResSlicePoolStats reports the resources-slice free list's
// scoreboard.
func (m *Model) ResSlicePoolStats() instr.PoolStat {
	return instr.PoolStat{Hit: m.resPoolHit, Miss: m.resPoolMiss, Free: len(m.resPool)}
}

// SolverStats reports the underlying MaxMin system's cumulative solve
// counters.
func (m *Model) SolverStats() maxmin.SolveStats { return m.sys.Stats() }

// VarPoolStats reports the MaxMin variable free list's scoreboard.
func (m *Model) VarPoolStats() instr.PoolStat { return m.sys.VarPoolStats() }

// ElemPoolStats reports the MaxMin element free list's scoreboard.
func (m *Model) ElemPoolStats() instr.PoolStat { return m.sys.ElemPoolStats() }

// MetricsInto dumps the resource layer's counters and pool
// scoreboards into r (surf.* namespace) and delegates to the maxmin
// system underneath.
func (m *Model) MetricsInto(r *instr.Registry) {
	if r == nil {
		return
	}
	r.Counter("surf.actions_started").Add(uint64(m.nextSeq))
	r.Gauge("surf.heap_depth").Set(float64(len(m.heap)))
	r.Gauge("surf.heap_peak").SetMax(float64(m.heapPeak))
	r.Gauge("surf.resources").Set(float64(len(m.resList)))
	r.SetPool("surf.action_pool", m.ActionPoolStats())
	r.SetPool("surf.res_slice_pool", m.ResSlicePoolStats())
	m.sys.MetricsInto(r)
}
