// Package surf implements the virtual platform simulation layer of the
// stack (the paper's SURF component): CPU and network resource models
// based on the unifying MaxMin-fairness sharing model, multi-hop
// communications, trace-driven availability variations, and transient
// resource failures.
//
// All resources live in a single MaxMin system, so computations,
// communications and parallel tasks can share and interfere exactly as
// the paper describes ("Used for computation and communication
// resources […] Interference of communication and computation […]
// Parallel tasks").
//
// The network model follows SimGrid's CM02 fluid TCP model: a transfer
// first pays the route latency (scaled by LatencyFactor), then receives
// a MaxMin share of every crossed link's bandwidth (scaled by
// BandwidthFactor), capped by the TCP window bound TCPGamma / (2·RTT).
//
// Progress bookkeeping is lazy (the key invariant of the event heap):
// an action's remaining work is exact only as of its last rate change,
// and the heap is keyed on absolute completion estimates, so advancing
// virtual time costs nothing for untouched actions (see latUntil /
// estFinish). Steady-state churn is allocation-free: Action structs,
// their resources slices and their maxmin variables are free-listed
// (Action.Release, -tags=nopool to disable), and completion can be
// delivered through the closure-free Completion interface.
package surf

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strconv"

	"repro/internal/core"
	"repro/internal/instr"
	"repro/internal/maxmin"
	"repro/internal/platform"
)

// Errors delivered to processes waiting on failed or canceled actions.
var (
	// ErrCanceled is delivered when an action is canceled explicitly.
	ErrCanceled = errors.New("surf: action canceled")
	// ErrHostFailed is delivered when the host running a computation
	// turns off (state trace).
	ErrHostFailed = core.ErrHostFailed
	// ErrLinkFailed is delivered when a link on a transfer's route
	// turns off.
	ErrLinkFailed = core.ErrLinkFailed
)

// Config tunes the fluid network model.
type Config struct {
	// BandwidthFactor scales nominal link bandwidth to usable payload
	// throughput (TCP/IP header and dynamics overhead). SimGrid's CM02
	// uses 0.92 against real testbeds; our packet-level comparator
	// exhibits a similar payload efficiency.
	BandwidthFactor float64
	// LatencyFactor scales nominal route latency (TCP connection and
	// slow-start warmup overhead folded into a constant).
	LatencyFactor float64
	// TCPGamma is the maximum TCP window size in bytes; a flow's rate
	// is bounded by TCPGamma / (2 · RTT). SimGrid's default is 4 MiB.
	TCPGamma float64
	// WeightByRTT, when true, scales each flow's MaxMin weight by
	// 1/RTT so that short-RTT flows get proportionally more of a shared
	// bottleneck, reproducing TCP's RTT unfairness (CM02 does this).
	WeightByRTT bool
	// RTTReference normalizes RTT weighting (weight = priority ×
	// RTTReference / RTT); only relative weights matter.
	RTTReference float64
	// SolverWorkers bounds the worker pool solving independent MaxMin
	// components in parallel (multi-island platforms): 1 forces a
	// sequential solve, 0 uses GOMAXPROCS. Small solve scopes are
	// always sequential regardless.
	SolverWorkers int
	// SequentialCompletions disables the batched same-instant
	// completion path in AdvanceTo (equal-key bulk-pop of the event
	// heap plus one contiguous wake sweep) and processes completions
	// one heap pop at a time instead. Debug/benchmark knob: the two
	// paths complete the same actions in the same order.
	SequentialCompletions bool
}

// DefaultConfig returns the model defaults (CM02-flavoured).
func DefaultConfig() Config {
	return Config{
		BandwidthFactor: 0.92,
		LatencyFactor:   1.0,
		TCPGamma:        4194304,
		WeightByRTT:     true,
		RTTReference:    1e-3,
	}
}

// ActionKind distinguishes computations from communications.
type ActionKind int

// Action kinds.
const (
	ActionCompute ActionKind = iota
	ActionComm
	ActionParallel
)

func (k ActionKind) String() string {
	switch k {
	case ActionCompute:
		return "compute"
	case ActionComm:
		return "comm"
	case ActionParallel:
		return "parallel"
	default:
		return "unknown"
	}
}

// Action is a unit of resource consumption in flight: a running
// computation (remaining work in flops), a transfer (remaining bytes),
// or a parallel task (remaining fraction).
type Action struct {
	model *Model
	kind  ActionKind
	name  string

	v         *maxmin.Variable
	resources []*resource // for failure propagation

	// Progress bookkeeping is lazy: `remaining` is exact as of
	// `lastSync` only, and is re-integrated (remaining -= rate·Δt)
	// exclusively when the action's rate changes, completes or fails.
	// While the rate is constant the absolute completion estimate
	// `estFinish` is invariant, so advancing virtual time costs nothing
	// for untouched actions.
	remaining float64
	lastSync  float64 // virtual time `remaining` was last integrated to
	latUntil  float64 // absolute end of the latency phase; 0 when paid
	estFinish float64 // absolute completion estimate (+Inf when starved)
	heapIdx   int     // position in the model's event heap; -1 when out
	rate      float64
	priority  float64
	weightMul float64 // RTT-derived weight multiplier (1 for compute)
	bound     float64

	start  float64
	finish float64
	seq    int64 // creation order, the final completion-sort tie-break

	waiter     *core.Process
	onComplete func(err error)
	compl      Completion // allocation-free alternative to onComplete
	done       bool
	err        error

	suspended bool
}

// Completion receives an action's completion without a per-action
// closure: a layer whose bookkeeping object outlives the action (msg's
// pending rendezvous, a simdag task) registers itself via
// SetCompletion, so steady-state churn allocates nothing. The handler
// runs in kernel context, exactly like a SetOnComplete callback.
type Completion interface {
	// ActionDone is invoked once when the action finishes; err is nil
	// for success, else the failure cause (ErrCanceled, ErrHostFailed,
	// ErrLinkFailed).
	ActionDone(a *Action, err error)
}

// Kind returns the action kind.
func (a *Action) Kind() ActionKind { return a.kind }

// Name returns the diagnostic name given at creation.
func (a *Action) Name() string { return a.name }

// Remaining returns the remaining work (flops, bytes or fraction).
func (a *Action) Remaining() float64 {
	if a.done || a.latUntil > 0 || a.rate <= 0 {
		return a.remaining
	}
	rem := a.remaining - a.rate*(a.model.eng.Now()-a.lastSync)
	if rem < 0 {
		rem = 0
	}
	return rem
}

// syncProgress integrates the action's progress up to virtual time now
// (a no-op while the latency phase is still being paid, during which
// no work is performed).
func (a *Action) syncProgress(now float64) {
	if a.latUntil <= 0 && a.rate > 0 && now > a.lastSync {
		a.remaining -= a.rate * (now - a.lastSync)
		if a.remaining < 0 {
			a.remaining = 0
		}
	}
	a.lastSync = now
}

// refreshEstimate recomputes the absolute completion estimate from the
// remaining work and current rate; remaining must be synced to now.
func (a *Action) refreshEstimate(now float64) {
	switch {
	case a.remaining <= eps:
		a.estFinish = now
	case a.rate > eps:
		a.estFinish = now + a.remaining/a.rate
	default:
		a.estFinish = math.Inf(1)
	}
}

// Rate returns the currently allocated progress rate.
func (a *Action) Rate() float64 { return a.rate }

// Done reports whether the action finished (successfully or not).
func (a *Action) Done() bool { return a.done }

// Err returns the failure cause, or nil for success / in flight.
func (a *Action) Err() error { return a.err }

// Start returns the virtual time the action was created at.
func (a *Action) Start() float64 { return a.start }

// Finish returns the virtual completion time (valid once Done).
func (a *Action) Finish() float64 { return a.finish }

// Poll implements core.Activity: completion state and outcome, read
// without blocking. An already-completed action is the kernel's
// fast path — its waiter never yields.
func (a *Action) Poll() (bool, error) { return a.done, a.err }

// Attach implements core.Activity: it registers the process the model
// wakes when the action completes.
func (a *Action) Attach(p *core.Process) { a.waiter = p }

// Wait blocks the calling process until the action completes and
// returns its outcome — the typed wait-activity simcall. An action
// that already completed is answered inline, with no scheduler round
// trip. Only one process may wait on an action.
func (a *Action) Wait(p *core.Process) error {
	if a.waiter != nil && !a.done {
		return fmt.Errorf("surf: action %q already has a waiter", a.name)
	}
	return p.WaitActivity(a)
}

// Test reports whether the action completed (and its outcome) without
// ever blocking — a non-blocking fast-path simcall (MSG_task_test /
// MPI_Test flavour).
func (a *Action) Test(p *core.Process) (bool, error) { return p.TestActivity(a) }

// SetOnComplete registers a callback invoked in kernel context when the
// action finishes (err nil on success). Layers needing to wake several
// processes on one completion (e.g. MSG's sender+receiver) use this
// instead of Wait. If the action is already done the callback fires
// immediately. Steady-state callers should prefer SetCompletion, which
// does not allocate a closure per action.
func (a *Action) SetOnComplete(fn func(err error)) {
	if a.done {
		fn(a.err)
		return
	}
	a.onComplete = fn
}

// SetCompletion registers h to receive the action's completion — the
// closure-free twin of SetOnComplete. If the action is already done
// the handler fires immediately.
func (a *Action) SetCompletion(h Completion) {
	if a.done {
		h.ActionDone(a, a.err)
		return
	}
	a.compl = h
}

// Release scrubs a finished action and returns it to its model's free
// list for reuse by a future Execute/Communicate/ExecuteParallel. Only
// the owner that knows no other reference survives may call it (msg
// releases its transfer and execution actions, simdag its task
// actions); the action must not be touched afterwards. Releasing an
// unfinished action is a no-op.
func (a *Action) Release() {
	m := a.model
	if m == nil || !a.done {
		return
	}
	m.releaseResources(a) // normally already nil; belt and braces
	m.poolAction(a)
}

// Cancel aborts the action, delivering ErrCanceled to its waiter.
func (a *Action) Cancel() {
	if !a.done {
		a.model.complete(a, ErrCanceled)
	}
}

// effWeight is the MaxMin weight of the action: its priority scaled by
// the RTT multiplier of the network model.
func (a *Action) effWeight() float64 {
	if a.weightMul > 0 {
		return a.priority * a.weightMul
	}
	return a.priority
}

// SetPriority changes the action's MaxMin sharing weight.
func (a *Action) SetPriority(w float64) {
	if a.done || w <= 0 {
		return
	}
	a.priority = w
	if !a.suspended {
		a.model.sys.SetWeight(a.v, a.effWeight())
	}
}

// Suspend freezes the action: it keeps its resources but receives a
// zero share until Resume.
func (a *Action) Suspend() {
	if a.done || a.suspended {
		return
	}
	a.suspended = true
	a.model.sys.SetWeight(a.v, 0)
}

// Resume unfreezes a suspended action.
func (a *Action) Resume() {
	if a.done || !a.suspended {
		return
	}
	a.suspended = false
	a.model.sys.SetWeight(a.v, a.effWeight())
}

// Suspended reports whether the action is currently frozen.
func (a *Action) Suspended() bool { return a.suspended }

// resource wraps a platform element with its MaxMin constraint and
// dynamic state.
type resource struct {
	name     string
	execName string // cached "exec@<host>" action name (hosts only)
	cnst     *maxmin.Constraint
	nominal  float64 // configured capacity (after model factors)
	avail    float64 // current availability scaling in [0,1]
	on       bool
	isHost   bool
	host     *platform.Host
	link     *platform.Link
	failErr  error

	// Trace bookkeeping (instr.go): container alias and last-emitted
	// variable values, so only changed shares hit the trace.
	pajeC    string
	lastUtil float64
	lastSat  float64

	// mark dedups the resource within one ExecuteParallel expansion
	// (compared against Model.markGen): a ptask touching the same link
	// from several byte-matrix cells claims it once, with no per-call
	// set allocation.
	mark uint64
}

func (r *resource) effectiveCapacity() float64 {
	if !r.on {
		return 0
	}
	return r.nominal * r.avail
}

// Model is the SURF resource model: it owns every CPU and link of a
// platform and advances all actions in virtual time. It implements
// core.Model.
type Model struct {
	eng *core.Engine
	pf  *platform.Platform
	cfg Config
	sys *maxmin.System

	cpus  map[string]*resource
	links map[string]*resource

	// heap is both the set of in-flight actions and the future-event
	// index over them ("lazy action management"): a min-heap keyed on
	// each action's next event time, re-keyed incrementally as rates
	// change. NextEventTime peeks it; AdvanceTo pops only due actions.
	heap actionHeap

	finBuf    []*Action       // scratch for AdvanceTo's completion sweep
	repushBuf []*Action       // scratch for AdvanceTo's re-keyed actions
	dueBuf    []*Action       // scratch for the equal-key bulk collect
	idxBuf    []int           // scratch DFS stack for collectDue
	waiterBuf []*core.Process // scratch for the batched wake sweep

	// resPool recycles the resources slices of completed actions: at
	// 100k+ activities the per-action []*resource is a measurable share
	// of the allocation churn (ROADMAP's "allocation pressure at scale").
	// Slices are reset (pointers cleared) when returned, capped so a
	// single fat ptask slice does not pin memory forever.
	resPool [][]*resource

	// actPool recycles Action structs released by their owning layer
	// (Action.Release): together with the maxmin variable free list it
	// makes the steady-state activity churn allocation-free. Disabled
	// under -tags=nopool.
	actPool []*Action

	// routeRes caches per-route transfer state — the resolved resource
	// list and the diagnostic "comm src->dst" name — keyed by the
	// shared *platform.Route the platform's own cache hands out: a
	// topology mutation bumps the platform generation, Route returns a
	// fresh pointer, and the stale entries are dropped wholesale at the
	// generation change. Cached slices are shared and read-only.
	routeRes    map[*platform.Route]*routeEntry
	routeResGen uint64

	// hostHandles / routeHandles back the shared placement handles
	// (HostHandle / RouteHandle): one handle per host or pair for the
	// model's lifetime, so callers that start many actions on the same
	// placement (simdag tasks, schedulers) pay the name lookups once.
	hostHandles  map[string]*HostHandle
	routeHandles map[[2]string]*RouteHandle

	// seqCompletions forces the one-pop-at-a-time completion path
	// (Config.SequentialCompletions, benchmark/debug only).
	seqCompletions bool

	nextSeq int64 // action creation counter (completion-sort tie-break)

	// markGen is the current ExecuteParallel dedup generation (see
	// resource.mark).
	markGen uint64

	// OnHostStateChange is invoked (in kernel context) when a host
	// turns off or on via its state trace; upper layers use it to kill
	// the processes of failed hosts.
	OnHostStateChange func(host *platform.Host, up bool)

	// Observability (instr.go). resList is every resource in creation
	// order — the deterministic walk order for trace emission. trace
	// and heapDepth are nil until EnableTrace/EnableMetrics; the
	// counters are plain always-on fields.
	resList                 []*resource
	trace                   *surfTrace
	heapDepth               *instr.Weighted
	heapPeak                int
	actPoolHit, actPoolMiss uint64
	resPoolHit, resPoolMiss uint64
}

// New builds the resource model for a platform, registering it with the
// engine and scheduling all trace events.
func New(eng *core.Engine, pf *platform.Platform, cfg Config) *Model {
	if cfg.BandwidthFactor <= 0 {
		cfg.BandwidthFactor = 1
	}
	if cfg.LatencyFactor <= 0 {
		cfg.LatencyFactor = 1
	}
	m := &Model{
		eng:   eng,
		pf:    pf,
		cfg:   cfg,
		sys:   maxmin.NewSystem(),
		cpus:  make(map[string]*resource),
		links: make(map[string]*resource),
	}
	m.sys.SetWorkers(cfg.SolverWorkers)
	m.seqCompletions = cfg.SequentialCompletions
	for _, h := range pf.Hosts() {
		r := &resource{
			name:     h.Name,
			execName: "exec@" + h.Name,
			nominal:  h.Power,
			avail:    1,
			on:       true,
			isHost:   true,
			host:     h,
			failErr:  ErrHostFailed,
		}
		r.cnst = m.sys.NewConstraint(r.nominal)
		r.cnst.Data = r
		h.Data = r
		m.cpus[h.Name] = r
		m.resList = append(m.resList, r)
		m.scheduleTraces(r, h.Availability, h.StateTrace)
	}
	// endpoints of each link in the connection graph, for split-duplex
	// directional constraints (same key scheme as the packet simulator).
	ends := make(map[string][2]string)
	for _, e := range pf.Edges() {
		ends[e.Link.Name] = [2]string{e.A, e.B}
	}
	for _, l := range pf.Links() {
		mk := func(key string) *resource {
			r := &resource{
				name:    key,
				nominal: l.Bandwidth * cfg.BandwidthFactor,
				avail:   1,
				on:      true,
				link:    l,
				failErr: ErrLinkFailed,
			}
			r.cnst = m.sys.NewConstraint(r.nominal)
			r.cnst.Data = r
			if l.Policy == platform.Fatpipe {
				m.sys.SetShared(r.cnst, false)
			}
			m.links[key] = r
			m.resList = append(m.resList, r)
			m.scheduleTraces(r, l.BandwidthTrace, l.StateTrace)
			return r
		}
		if ep, ok := ends[l.Name]; ok && l.Policy == platform.SplitDuplex {
			// One independent constraint per direction.
			mk(l.Name + "->" + ep[0])
			r := mk(l.Name + "->" + ep[1])
			l.Data = r
		} else {
			l.Data = mk(l.Name)
		}
	}
	eng.AddModel(m)
	return m
}

// Engine returns the engine the model is attached to.
func (m *Model) Engine() *core.Engine { return m.eng }

// Platform returns the simulated platform.
func (m *Model) Platform() *platform.Platform { return m.pf }

// Config returns the model configuration.
func (m *Model) Config() Config { return m.cfg }

// HostUp reports whether a host is currently on.
func (m *Model) HostUp(name string) bool {
	r := m.cpus[name]
	return r != nil && r.on
}

// LinkUp reports whether a link is currently on (both directions, for
// split-duplex links).
func (m *Model) LinkUp(name string) bool {
	rs := m.linkResources(name)
	if len(rs) == 0 {
		return false
	}
	for _, r := range rs {
		if !r.on {
			return false
		}
	}
	return true
}

// HostLoad returns the current MaxMin usage of a host CPU in flop/s.
func (m *Model) HostLoad(name string) float64 {
	r := m.cpus[name]
	if r == nil {
		return 0
	}
	return r.cnst.Usage()
}

// HostHandle is a resolved compute placement: callers that start many
// executions on the same host (simdag tasks, schedulers) fetch it once
// and skip the per-call name lookup. Handles are shared and stay valid
// for the model's lifetime (host state changes flow through the
// underlying resource).
type HostHandle struct {
	r *resource
}

// Name returns the handle's host name.
func (h *HostHandle) Name() string { return h.r.name }

// HostHandle resolves a host name to its shared placement handle, or
// nil for an unknown host.
func (m *Model) HostHandle(name string) *HostHandle {
	if h, ok := m.hostHandles[name]; ok {
		return h
	}
	r, ok := m.cpus[name]
	if !ok {
		return nil
	}
	if m.hostHandles == nil {
		m.hostHandles = make(map[string]*HostHandle)
	}
	h := &HostHandle{r: r}
	m.hostHandles[name] = h
	return h
}

// Execute starts a computation of the given amount of flops on a host.
func (m *Model) Execute(hostName string, flops, priority float64) (*Action, error) {
	r, ok := m.cpus[hostName]
	if !ok {
		return nil, fmt.Errorf("surf: unknown host %q", hostName)
	}
	return m.executeOn(r, flops, priority), nil
}

// ExecuteHandle is Execute through a pre-resolved placement handle —
// no map lookup on the hot path.
func (m *Model) ExecuteHandle(h *HostHandle, flops, priority float64) (*Action, error) {
	if h == nil || h.r == nil {
		return nil, fmt.Errorf("surf: nil host handle")
	}
	return m.executeOn(h.r, flops, priority), nil
}

// executeOn starts a computation on a resolved CPU resource.
func (m *Model) executeOn(r *resource, flops, priority float64) *Action {
	if priority <= 0 {
		priority = 1
	}
	a := m.newAction(ActionCompute, r.execName)
	a.remaining = flops
	a.priority = priority
	if !r.on {
		a.done = true
		a.err = ErrHostFailed
		a.finish = a.start
		return a
	}
	a.v = m.sys.NewVariable(priority, 0)
	a.v.Data = a
	m.sys.Expand(r.cnst, a.v, 1)
	a.resources = append(m.grabResources(), r)
	a.refreshEstimate(a.start)
	m.heap.push(a)
	return a
}

// linkResources returns the resources implementing a platform link
// (two for split-duplex links, one otherwise).
func (m *Model) linkResources(name string) []*resource {
	if r, ok := m.links[name]; ok {
		return []*resource{r}
	}
	// Split-duplex: collect the directional keys and sort them, so the
	// order the two constraints are touched in (FailLink, SetBandwidth)
	// is independent of map iteration order.
	var keys []string
	for key, r := range m.links { //lint:allow det-maprange matched keys are sorted below before use
		if r.link != nil && r.link.Name == name && key != name {
			keys = append(keys, key)
		}
	}
	sort.Strings(keys)
	out := make([]*resource, len(keys))
	for i, key := range keys {
		out[i] = m.links[key]
	}
	return out
}

// routeResources resolves the (directed) resources a transfer crosses.
// Split-duplex links resolve to the constraint of the traversed
// direction via the hop-level route.
func (m *Model) routeResources(src, dst string, links []*platform.Link) ([]*resource, error) {
	needHops := false
	for _, l := range links {
		if _, single := m.links[l.Name]; !single {
			needHops = true
			break
		}
	}
	if !needHops {
		out := make([]*resource, len(links))
		for i, l := range links {
			out[i] = m.links[l.Name]
			if out[i] == nil {
				return nil, fmt.Errorf("surf: route uses unknown link %q", l.Name)
			}
		}
		return out, nil
	}
	hops, err := m.pf.HopRoute(src, dst)
	if err != nil {
		return nil, fmt.Errorf("surf: split-duplex route needs hop information: %w", err)
	}
	out := make([]*resource, len(hops))
	for i, h := range hops {
		r := m.links[h.Link.Name+"->"+h.B]
		if r == nil {
			r = m.links[h.Link.Name]
		}
		if r == nil {
			return nil, fmt.Errorf("surf: route uses unknown link %q", h.Link.Name)
		}
		out[i] = r
	}
	return out, nil
}

// routeEntry is the cached per-route transfer state.
type routeEntry struct {
	rs   []*resource // resolved directed resources, shared, read-only
	name string      // "comm src->dst" diagnostic action name
}

// resolveRoute is routeResources behind a per-route cache: the
// platform's Route cache hands out one shared *Route per pair and
// generation, so the resolved resource list (and the diagnostic comm
// name) can be memoized on that pointer — a repeat transfer between
// the same hosts (the steady state of any workload) resolves with one
// map hit and zero allocation.
func (m *Model) resolveRoute(src, dst string, route *platform.Route) (*routeEntry, error) {
	if gen := m.pf.Generation(); m.routeRes == nil || gen != m.routeResGen {
		m.routeRes = make(map[*platform.Route]*routeEntry)
		m.routeResGen = gen
	}
	if re, ok := m.routeRes[route]; ok {
		return re, nil
	}
	rs, err := m.routeResources(src, dst, route.Links)
	if err != nil {
		return nil, err
	}
	re := &routeEntry{rs: rs, name: "comm " + src + "->" + dst}
	m.routeRes[route] = re
	return re, nil
}

// RouteHandle is a resolved communication placement (ordered host
// pair): callers that start many transfers between the same endpoints
// fetch it once and skip the route and resource lookups per call. The
// handle revalidates itself against the platform's topology generation,
// so it stays correct across topology mutations.
type RouteHandle struct {
	src, dst string
	gen      uint64
	route    *platform.Route
	re       *routeEntry
}

// Endpoints returns the handle's (src, dst) pair.
func (h *RouteHandle) Endpoints() (src, dst string) { return h.src, h.dst }

// RouteHandle resolves an ordered host pair to its shared transfer
// handle. It fails like Communicate would: unknown hosts or a missing
// route are reported immediately.
func (m *Model) RouteHandle(src, dst string) (*RouteHandle, error) {
	key := [2]string{src, dst}
	if h, ok := m.routeHandles[key]; ok {
		return h, nil
	}
	h := &RouteHandle{src: src, dst: dst}
	if err := m.revalidate(h); err != nil {
		return nil, err
	}
	if m.routeHandles == nil {
		m.routeHandles = make(map[[2]string]*RouteHandle)
	}
	m.routeHandles[key] = h
	return h, nil
}

// revalidate re-resolves a route handle against the current topology.
func (m *Model) revalidate(h *RouteHandle) error {
	route, err := m.pf.Route(h.src, h.dst)
	if err != nil {
		return err
	}
	re, err := m.resolveRoute(h.src, h.dst, route)
	if err != nil {
		return err
	}
	h.route, h.re, h.gen = route, re, m.pf.Generation()
	return nil
}

// Communicate starts a transfer of the given number of bytes between
// two hosts. The transfer pays the route latency first, then shares
// bandwidth on every crossed link (the traversed direction only, for
// split-duplex links), bounded by the TCP window cap.
func (m *Model) Communicate(src, dst string, bytes float64) (*Action, error) {
	route, err := m.pf.Route(src, dst)
	if err != nil {
		return nil, err
	}
	re, err := m.resolveRoute(src, dst, route)
	if err != nil {
		return nil, err
	}
	return m.communicateOn(route, re, bytes), nil
}

// CommunicateHandle is Communicate through a pre-resolved route handle
// — no route or resource map lookups on the hot path (one generation
// compare, and a re-resolve only after a topology mutation).
func (m *Model) CommunicateHandle(h *RouteHandle, bytes float64) (*Action, error) {
	if h == nil {
		return nil, fmt.Errorf("surf: nil route handle")
	}
	if h.gen != m.pf.Generation() {
		if err := m.revalidate(h); err != nil {
			return nil, err
		}
	}
	return m.communicateOn(h.route, h.re, bytes), nil
}

// communicateOn starts a transfer over a resolved route.
func (m *Model) communicateOn(route *platform.Route, re *routeEntry, bytes float64) *Action {
	lat := route.Latency() * m.cfg.LatencyFactor
	a := m.newAction(ActionComm, re.name)
	a.remaining = bytes
	a.priority = 1
	a.latUntil = a.start + lat
	if m.cfg.TCPGamma > 0 && lat > 0 {
		a.bound = m.cfg.TCPGamma / (2 * route.Latency())
	}
	if m.cfg.WeightByRTT && route.Latency() > 0 {
		ref := m.cfg.RTTReference
		if ref <= 0 {
			ref = 1e-3
		}
		a.weightMul = ref / route.Latency()
	}
	if len(route.Links) == 0 {
		// Intra-host messaging: no network resource crossed, the data
		// "moves" instantly after the (zero) latency.
		a.remaining = 0
	}
	// Weight starts at 0 while the latency is paid; activated when the
	// latency phase ends (or immediately for zero-latency routes).
	w := 0.0
	if lat <= 0 {
		a.latUntil = 0
		w = a.effWeight()
	}
	a.v = m.sys.NewVariable(w, a.bound)
	a.v.Data = a
	a.resources = m.grabResources()
	for _, r := range re.rs {
		if !r.on {
			a.done = true
			a.err = ErrLinkFailed
			a.finish = a.start
			m.sys.RemoveVariable(a.v)
			a.v = nil
			m.releaseResources(a)
			return a
		}
		m.sys.Expand(r.cnst, a.v, 1)
		a.resources = append(a.resources, r)
	}
	a.refreshEstimate(a.start)
	m.heap.push(a)
	return a
}

// ExecuteParallel starts a parallel task consuming CPU on several hosts
// and bandwidth between them simultaneously (SimGrid's "ptask" / L07
// model). flops[i] is the work on hosts[i]; bytes[i][j] the data moved
// from hosts[i] to hosts[j]. The action's remaining work is the task
// fraction (1 → 0), and each resource is consumed proportionally.
func (m *Model) ExecuteParallel(hosts []string, flops []float64, bytes [][]float64) (*Action, error) {
	if len(flops) != len(hosts) {
		return nil, fmt.Errorf("surf: ExecuteParallel: %d hosts but %d flop amounts", len(hosts), len(flops))
	}
	if bytes != nil && len(bytes) != len(hosts) {
		return nil, fmt.Errorf("surf: ExecuteParallel: bad bytes matrix")
	}
	a := m.newAction(ActionParallel, "ptask("+strconv.Itoa(len(hosts))+" hosts)")
	a.remaining = 1
	a.priority = 1
	a.v = m.sys.NewVariable(1, 0)
	a.v.Data = a
	a.resources = m.grabResources()
	// Claim each resource once per expansion via the generation mark —
	// deterministic (claim order is host/matrix walk order) and free of
	// the per-call set allocation a map would cost.
	m.markGen++
	use := func(r *resource, amount float64) error {
		if !r.on {
			return r.failErr
		}
		m.sys.Expand(r.cnst, a.v, amount)
		if r.mark != m.markGen {
			r.mark = m.markGen
			a.resources = append(a.resources, r)
		}
		return nil
	}
	abort := func(err error) (*Action, error) {
		m.sys.RemoveVariable(a.v)
		a.v = nil
		a.done = true
		a.err = err
		a.finish = a.start
		m.releaseResources(a)
		return a, nil
	}
	// reject unwinds a validation error: unlike abort, no action is
	// handed out, so the action struct itself also comes back (on top
	// of the variable and the pooled slice).
	reject := func(err error) (*Action, error) {
		m.sys.RemoveVariable(a.v)
		a.v = nil
		m.releaseResources(a)
		m.poolAction(a)
		return nil, err
	}
	for i, hn := range hosts {
		r, ok := m.cpus[hn]
		if !ok {
			return reject(fmt.Errorf("surf: unknown host %q", hn))
		}
		if flops[i] <= 0 {
			continue
		}
		if err := use(r, flops[i]); err != nil {
			return abort(err)
		}
	}
	for i := range bytes {
		if len(bytes[i]) != len(hosts) {
			return reject(fmt.Errorf("surf: ExecuteParallel: bytes row %d has %d entries, want %d", i, len(bytes[i]), len(hosts)))
		}
		for j := range bytes[i] {
			if i == j || bytes[i][j] <= 0 {
				continue
			}
			route, err := m.pf.Route(hosts[i], hosts[j])
			if err != nil {
				return reject(err)
			}
			re, err := m.resolveRoute(hosts[i], hosts[j], route)
			if err != nil {
				return reject(err)
			}
			for _, r := range re.rs {
				if err := use(r, bytes[i][j]); err != nil {
					return abort(err)
				}
			}
		}
	}
	if len(a.resources) == 0 {
		// Nothing to do: completes instantly.
		a.remaining = 0
	}
	a.refreshEstimate(a.start)
	m.heap.push(a)
	return a, nil
}

const eps = 1e-9

// grabResources returns an empty resources slice, reusing a pooled one
// when available.
func (m *Model) grabResources() []*resource {
	if n := len(m.resPool); poolingEnabled && n > 0 {
		s := m.resPool[n-1]
		m.resPool[n-1] = nil
		m.resPool = m.resPool[:n-1]
		m.resPoolHit++
		return s
	}
	m.resPoolMiss++
	return make([]*resource, 0, 4)
}

// releaseResources resets and pools a finished action's resources
// slice. Only call once the action is final (off the heap): failure
// propagation scans the resources of in-flight actions.
func (m *Model) releaseResources(a *Action) {
	s := a.resources
	a.resources = nil
	if !poolingEnabled || cap(s) == 0 || cap(s) > 64 {
		return // nothing to pool / fat ptask slice: let the GC have it
	}
	for i := range s {
		s[i] = nil
	}
	m.resPool = append(m.resPool, s[:0])
}

// refresh re-solves the MaxMin system if needed, re-integrates the
// progress of exactly the actions whose allocation changed (the
// partial-solve result reported by maxmin.System.Updated), and re-keys
// them in the event heap; every other action keeps its remaining-work
// sync point, absolute completion estimate and heap position.
func (m *Model) refresh() {
	if !m.sys.Dirty() {
		return
	}
	m.sys.Solve()
	now := m.eng.Now()
	for _, v := range m.sys.Updated() {
		a, ok := v.Data.(*Action)
		if !ok || a.done {
			continue
		}
		if a.latUntil > 0 {
			// No work is performed while the latency is paid; the
			// estimate is rebuilt (and the action re-keyed) when the
			// bandwidth phase starts.
			a.rate = v.Value()
			continue
		}
		a.syncProgress(now)
		a.rate = v.Value()
		a.refreshEstimate(now)
		m.heap.fix(a.heapIdx)
	}
	if m.trace != nil {
		m.emitShares(now)
	}
}

// NextEventTime implements core.Model: a heap peek, O(1) after the
// incremental refresh.
func (m *Model) NextEventTime(now float64) float64 {
	m.refresh()
	if len(m.heap) > m.heapPeak {
		m.heapPeak = len(m.heap)
	}
	if len(m.heap) == 0 {
		return math.Inf(1)
	}
	return m.heap[0].key
}

// AdvanceTo implements core.Model. Progress bookkeeping is lazy
// (absolute completion estimates), so only the actions with an event
// due at t are touched and every other action keeps its heap position;
// a step that completes nothing costs one heap peek.
//
// Same-instant events are processed as one batch: the due run is
// collected off the heap with a pruned DFS (equal keys are a
// parent-closed prefix, so no per-pop sift), removed in a single
// compaction+heapify when the run is large, and the finished actions'
// waiters are enqueued contiguously in one scheduling sweep
// (Engine.WakeAll) — k lock-step completions cost one bookkeeping pass
// instead of k interleaved pop/wake cycles.
func (m *Model) AdvanceTo(now, t float64) {
	m.refresh()
	m.heapDepth.Observe(t, float64(len(m.heap)))
	// The slack absorbs the clock's float64 resolution (otherwise the
	// engine would spin on a next-event time that rounds to now);
	// borderline actions collected but not yet due are re-pushed below.
	maxKey := t + eps + 1e-12*(1+t)
	if m.seqCompletions {
		m.advanceSequential(t, maxKey)
		return
	}
	due, stack := m.heap.collectDue(maxKey, m.dueBuf[:0], m.idxBuf)
	m.idxBuf = stack
	if len(due) == 0 {
		return
	}
	m.heap.removeBatch(due)
	finished := m.finBuf[:0]
	repush := m.repushBuf[:0]
	for _, a := range due {
		finished, repush = m.classifyDue(a, t, finished, repush)
	}
	m.heap.bulkPush(repush)
	// Deterministic completion order (by start time then name).
	sortActions(finished)
	m.completeBatch(finished, t)
	for i := range finished {
		finished[i] = nil // release completed actions for the collector
	}
	m.finBuf = finished[:0]
	for i := range repush {
		repush[i] = nil
	}
	m.repushBuf = repush[:0]
	for i := range due {
		due[i] = nil
	}
	m.dueBuf = due[:0]
}

// classifyDue routes one due action: a latency-phase action whose
// latency is paid enters the bandwidth-sharing phase re-keyed (it is
// never completed in the same step — its first bandwidth-phase
// estimate is only solved next round — so it always goes back on the
// heap), a finished action joins the completion set, and a borderline
// action collected within the float-resolution slack but not yet due
// goes back untouched. Shared by the batched and sequential paths so
// the two cannot drift apart.
func (m *Model) classifyDue(a *Action, t float64, finished, repush []*Action) (fin, rep []*Action) {
	switch {
	case a.latUntil > 0:
		if t >= a.latUntil-eps {
			a.latUntil = 0
			a.lastSync = t
			a.refreshEstimate(t)
			if !a.suspended {
				m.sys.SetWeight(a.v, a.effWeight())
			}
		}
		repush = append(repush, a)
	case a.estFinish <= t+1e-12*(1+t):
		finished = append(finished, a)
	default:
		repush = append(repush, a)
	}
	return finished, repush
}

// advanceSequential is the pre-batching completion path: one heap pop
// and one wake cycle per due action (Config.SequentialCompletions).
func (m *Model) advanceSequential(t, maxKey float64) {
	finished := m.finBuf[:0]
	repush := m.repushBuf[:0]
	for len(m.heap) > 0 && m.heap[0].key <= maxKey {
		finished, repush = m.classifyDue(m.heap.popMin(), t, finished, repush)
	}
	for _, a := range repush {
		m.heap.push(a)
	}
	sortActions(finished)
	for _, a := range finished {
		a.remaining = 0
		a.lastSync = t
		m.complete(a, nil)
	}
	for i := range finished {
		finished[i] = nil
	}
	m.finBuf = finished[:0]
	for i := range repush {
		repush[i] = nil
	}
	m.repushBuf = repush[:0]
}

// completeBatch finishes every action in finished (success). A batch
// with no completion callbacks — the common case for direct waiters —
// is one bookkeeping sweep (variables released, heap entries dropped)
// followed by a single contiguous run-queue append (Engine.WakeAll);
// per-action wake order equals slice order, so it matches the
// sequential path exactly. As soon as any action carries an
// onComplete callback, the whole batch defers to the per-action
// complete() path instead: callbacks may observe — or cancel —
// sibling actions finishing at the same instant, and must see exactly
// the intermediate state the sequential path would give them
// (TestLockstepBatchedEquivalence pins the pure-waiter equivalence).
func (m *Model) completeBatch(finished []*Action, t float64) {
	if len(finished) == 0 {
		return
	}
	hasCallbacks := false
	for _, a := range finished {
		if a.onComplete != nil || a.compl != nil {
			hasCallbacks = true
			break
		}
	}
	if hasCallbacks {
		for _, a := range finished {
			a.remaining = 0
			a.lastSync = t
			m.complete(a, nil)
		}
		return
	}
	waiters := m.waiterBuf[:0]
	for _, a := range finished {
		if a.done {
			continue
		}
		a.remaining = 0
		a.lastSync = t
		a.done = true
		a.finish = t
		if a.v != nil {
			m.sys.RemoveVariable(a.v)
			a.v = nil
		}
		if a.heapIdx >= 0 {
			m.heap.remove(a.heapIdx)
		}
		m.releaseResources(a)
		if a.waiter != nil {
			waiters = append(waiters, a.waiter)
			a.waiter = nil
		}
	}
	m.eng.WakeAll(waiters, nil)
	for i := range waiters {
		waiters[i] = nil
	}
	m.waiterBuf = waiters[:0]
}

// actionLess is the deterministic completion order: start time, then
// name, then creation sequence. The final tie-break makes the order
// total, so it is independent of how the due set was gathered (heap
// pops vs bulk collect) and of sort stability.
func actionLess(x, y *Action) bool {
	if x.start != y.start {
		return x.start < y.start
	}
	if x.name != y.name {
		return x.name < y.name
	}
	return x.seq < y.seq
}

func sortActions(actions []*Action) {
	if len(actions) > 32 {
		// Lock-step steps finish thousands of actions at once; the
		// small-batch insertion sort would be quadratic there.
		sort.Slice(actions, func(i, j int) bool {
			return actionLess(actions[i], actions[j])
		})
		return
	}
	for i := 1; i < len(actions); i++ {
		for j := i; j > 0; j-- {
			if actionLess(actions[j], actions[j-1]) {
				actions[j], actions[j-1] = actions[j-1], actions[j]
			} else {
				break
			}
		}
	}
}

// complete finishes an action (err == nil for success) and wakes its
// waiter.
func (m *Model) complete(a *Action, err error) {
	if a.done {
		return
	}
	a.syncProgress(m.eng.Now()) // freeze Remaining at the failure point
	a.done = true
	a.err = err
	a.finish = m.eng.Now()
	if a.v != nil {
		m.sys.RemoveVariable(a.v)
		a.v = nil
	}
	if a.heapIdx >= 0 {
		m.heap.remove(a.heapIdx)
	}
	m.releaseResources(a)
	if a.waiter != nil {
		w := a.waiter
		a.waiter = nil
		m.eng.Wake(w, err)
	}
	// Detach both handlers before invoking either: a handler may
	// Release the action (simdag does), after which the struct belongs
	// to the free list and must not be read again.
	h, fn := a.compl, a.onComplete
	a.compl, a.onComplete = nil, nil
	if h != nil {
		h.ActionDone(a, err)
	}
	if fn != nil {
		fn(err)
	}
}

// setResourceState turns a resource on or off, failing in-flight
// actions when it goes down.
func (m *Model) setResourceState(r *resource, up bool) {
	if r.on == up {
		return
	}
	r.on = up
	m.sys.SetCapacity(r.cnst, r.effectiveCapacity())
	if m.trace != nil {
		m.traceResourceState(r, up)
	}
	if !up {
		var victims []*Action
		for _, e := range m.heap {
			for _, ar := range e.a.resources {
				if ar == r {
					victims = append(victims, e.a)
					break
				}
			}
		}
		sortActions(victims)
		for _, a := range victims {
			m.complete(a, r.failErr)
		}
	}
	if r.isHost && m.OnHostStateChange != nil {
		m.OnHostStateChange(r.host, up)
	}
}

// setResourceAvail rescales a resource's capacity (availability trace).
func (m *Model) setResourceAvail(r *resource, avail float64) {
	if avail < 0 {
		avail = 0
	}
	r.avail = avail
	m.sys.SetCapacity(r.cnst, r.effectiveCapacity())
}

// FailHost turns a host off programmatically (equivalent to a state
// trace hitting 0). Useful for failure-injection tests.
func (m *Model) FailHost(name string) error {
	r, ok := m.cpus[name]
	if !ok {
		return fmt.Errorf("surf: unknown host %q", name)
	}
	m.setResourceState(r, false)
	return nil
}

// RestoreHost turns a failed host back on.
func (m *Model) RestoreHost(name string) error {
	r, ok := m.cpus[name]
	if !ok {
		return fmt.Errorf("surf: unknown host %q", name)
	}
	m.setResourceState(r, true)
	return nil
}

// FailLink turns a link off programmatically (both directions).
func (m *Model) FailLink(name string) error {
	rs := m.linkResources(name)
	if len(rs) == 0 {
		return fmt.Errorf("surf: unknown link %q", name)
	}
	for _, r := range rs {
		m.setResourceState(r, false)
	}
	return nil
}

// RestoreLink turns a failed link back on (both directions).
func (m *Model) RestoreLink(name string) error {
	rs := m.linkResources(name)
	if len(rs) == 0 {
		return fmt.Errorf("surf: unknown link %q", name)
	}
	for _, r := range rs {
		m.setResourceState(r, true)
	}
	return nil
}
