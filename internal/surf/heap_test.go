package surf

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/platform"
)

// TestActionHeapOps drives the indexed heap with random push/fix/remove
// sequences and checks the min and the index bookkeeping against a
// linear scan after every operation.
func TestActionHeapOps(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var h actionHeap
	var live []*Action
	check := func() {
		t.Helper()
		min := math.Inf(1)
		for _, a := range live {
			if k := a.eventKey(); k < min {
				min = k
			}
		}
		if len(h) != len(live) {
			t.Fatalf("heap has %d entries, want %d", len(h), len(live))
		}
		for i, e := range h {
			if e.a.heapIdx != i {
				t.Fatalf("heap[%d].heapIdx = %d", i, e.a.heapIdx)
			}
			if e.key != e.a.eventKey() {
				t.Fatalf("heap[%d] cached key %g, action key %g", i, e.key, e.a.eventKey())
			}
			if i > 0 {
				if p := (i - 1) / heapArity; h[p].key > h[i].key {
					t.Fatalf("heap invariant broken at %d: parent %g > child %g", i, h[p].key, h[i].key)
				}
			}
		}
		if len(h) > 0 && h[0].key != min {
			t.Fatalf("heap min %g, linear rescan min %g", h[0].key, min)
		}
	}
	for op := 0; op < 2000; op++ {
		switch r := rng.Intn(10); {
		case r < 4 || len(live) == 0:
			a := &Action{heapIdx: -1, estFinish: rng.Float64() * 100}
			if rng.Intn(4) == 0 {
				a.latUntil = rng.Float64() * 100
			}
			h.push(a)
			live = append(live, a)
		case r < 7:
			a := live[rng.Intn(len(live))]
			a.latUntil = 0
			a.estFinish = rng.Float64() * 100
			if rng.Intn(6) == 0 {
				a.estFinish = math.Inf(1) // starved/suspended
			}
			h.fix(a.heapIdx)
		default:
			i := rng.Intn(len(live))
			a := live[i]
			h.remove(a.heapIdx)
			if a.heapIdx != -1 {
				t.Fatalf("removed action still has heapIdx %d", a.heapIdx)
			}
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
		}
		check()
	}
}

// heapChecker is a second core.Model registered behind the surf model.
// On every engine round it forces a linear rescan of all in-flight
// actions and asserts that the heap-based NextEventTime returned the
// identical event time; after each AdvanceTo it asserts that exactly
// the actions a linear sweep would have completed (or moved to the
// bandwidth phase) were processed.
type heapChecker struct {
	t *testing.T
	m *Model

	snapshot []heapSnap
	checks   int
	sweeps   int
}

type heapSnap struct {
	a         *Action
	latUntil  float64
	estFinish float64
}

func (hc *heapChecker) NextEventTime(now float64) float64 {
	t, m := hc.t, hc.m
	// Heap invariant and index bookkeeping.
	for i, e := range m.heap {
		a := e.a
		if a.heapIdx != i {
			t.Fatalf("t=%g: heap[%d].heapIdx = %d", now, i, a.heapIdx)
		}
		if a.done {
			t.Fatalf("t=%g: done action %q still in heap", now, a.name)
		}
		if e.key != a.eventKey() {
			t.Fatalf("t=%g: heap[%d] cached key %g, action key %g", now, i, e.key, a.eventKey())
		}
		if i > 0 {
			if p := (i - 1) / heapArity; m.heap[p].key > m.heap[i].key {
				t.Fatalf("t=%g: heap invariant broken at %d", now, i)
			}
		}
	}
	// Forced linear rescan: the heap peek must agree exactly.
	min := math.Inf(1)
	for _, e := range m.heap {
		if k := e.a.eventKey(); k < min {
			min = k
		}
	}
	heapMin := math.Inf(1)
	if len(m.heap) > 0 {
		heapMin = m.heap[0].key
	}
	if heapMin != min {
		t.Fatalf("t=%g: heap NextEventTime %g, linear rescan %g", now, heapMin, min)
	}
	// Snapshot the pre-sweep state; nothing can mutate actions between
	// this call and AdvanceTo (engine contract).
	hc.snapshot = hc.snapshot[:0]
	for _, e := range m.heap {
		a := e.a
		hc.snapshot = append(hc.snapshot, heapSnap{a: a, latUntil: a.latUntil, estFinish: a.estFinish})
	}
	hc.checks++
	return min
}

func (hc *heapChecker) AdvanceTo(now, t float64) {
	// Runs right after the surf model's AdvanceTo (same registration
	// order): compare against what a linear sweep of the snapshot would
	// have done at time t.
	for _, s := range hc.snapshot {
		expectComplete := s.latUntil <= 0 && s.estFinish <= t+1e-12*(1+t)
		expectLatEnd := s.latUntil > 0 && t >= s.latUntil-eps
		switch {
		case expectComplete != s.a.done:
			hc.t.Fatalf("t=%g: action %q done=%v, linear sweep says %v (latUntil=%g estFinish=%g)",
				t, s.a.name, s.a.done, expectComplete, s.latUntil, s.estFinish)
		case expectLatEnd && s.a.latUntil != 0:
			hc.t.Fatalf("t=%g: action %q still in latency phase (latUntil=%g), linear sweep would have ended it",
				t, s.a.name, s.a.latUntil)
		case !expectLatEnd && s.latUntil > 0 && s.a.latUntil != s.latUntil:
			hc.t.Fatalf("t=%g: action %q latency end moved %g -> %g without being due",
				t, s.a.name, s.latUntil, s.a.latUntil)
		case !expectComplete && s.a.heapIdx < 0:
			hc.t.Fatalf("t=%g: action %q left the heap without completing", t, s.a.name)
		}
	}
	hc.sweeps++
}

// TestHeapEquivalenceRandomized drives a randomized mutation/advance
// sequence — transfers and computations starting, completing, being
// canceled, suspended, reprioritized, plus link/host failures — with
// the heapChecker cross-validating every NextEventTime and AdvanceTo
// against a forced linear rescan.
func TestHeapEquivalenceRandomized(t *testing.T) {
	pf, err := platform.GenerateWaxman(platform.DefaultWaxmanConfig(10, 99))
	if err != nil {
		t.Fatal(err)
	}
	eng := core.New()
	m := New(eng, pf, DefaultConfig())
	hc := &heapChecker{t: t, m: m}
	eng.AddModel(hc)

	hosts := pf.Hosts()
	links := pf.Links()
	rng := rand.New(rand.NewSource(42))
	var live []*Action
	completions := 0
	failedLinks := map[string]bool{}

	eng.Spawn("driver", nil, func(p *core.Process) {
		for op := 0; op < 600; op++ {
			// Prune finished actions.
			n := 0
			for _, a := range live {
				if !a.Done() {
					live[n] = a
					n++
				} else {
					completions++
				}
			}
			live = live[:n]

			switch r := rng.Intn(20); {
			case r < 7: // start a transfer
				src := hosts[rng.Intn(len(hosts))].Name
				dst := hosts[rng.Intn(len(hosts))].Name
				if src == dst {
					continue
				}
				bytes := math.Pow(10, 2+rng.Float64()*5)
				if a, err := m.Communicate(src, dst, bytes); err == nil && !a.Done() {
					live = append(live, a)
				}
			case r < 11: // start a computation
				h := hosts[rng.Intn(len(hosts))].Name
				flops := math.Pow(10, 5+rng.Float64()*4)
				if a, err := m.Execute(h, flops, 1+rng.Float64()*3); err == nil && !a.Done() {
					live = append(live, a)
				}
			case r < 13 && len(live) > 0: // cancel
				live[rng.Intn(len(live))].Cancel()
			case r < 15 && len(live) > 0: // suspend / resume
				a := live[rng.Intn(len(live))]
				if a.Suspended() {
					a.Resume()
				} else {
					a.Suspend()
				}
			case r < 17 && len(live) > 0: // reprioritize
				live[rng.Intn(len(live))].SetPriority(0.5 + rng.Float64()*4)
			default: // link failure / repair
				l := links[rng.Intn(len(links))].Name
				if failedLinks[l] {
					delete(failedLinks, l)
					if err := m.RestoreLink(l); err != nil {
						t.Errorf("RestoreLink(%s): %v", l, err)
					}
				} else {
					failedLinks[l] = true
					if err := m.FailLink(l); err != nil {
						t.Errorf("FailLink(%s): %v", l, err)
					}
				}
			}
			p.Sleep(rng.ExpFloat64() * 0.02)
		}
		for _, a := range live {
			a.Cancel()
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if hc.checks < 100 || hc.sweeps < 50 {
		t.Fatalf("checker barely exercised: %d checks, %d sweeps", hc.checks, hc.sweeps)
	}
	if completions < 50 {
		t.Fatalf("only %d actions completed; workload too weak to trust the equivalence run", completions)
	}
	if len(m.heap) != 0 {
		t.Errorf("%d actions leaked in the heap after the run", len(m.heap))
	}
}
