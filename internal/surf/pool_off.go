//go:build nopool

package surf

// poolingEnabled gates the model's free lists. This is the
// -tags=nopool build: every Action and resources slice is allocated
// fresh, the reference behaviour the pooled build must be
// indistinguishable from.
var poolingEnabled = false
