package surf

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/platform"
)

// TestActionHeapBulkOps fuzzes collectDue / removeBatch / bulkPush
// against linear-scan models of the same operations, checking the heap
// invariant and index bookkeeping after every step.
func TestActionHeapBulkOps(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var h actionHeap
	live := map[*Action]bool{}
	check := func() {
		t.Helper()
		if len(h) != len(live) {
			t.Fatalf("heap has %d entries, want %d", len(h), len(live))
		}
		for i, e := range h {
			if e.a.heapIdx != i {
				t.Fatalf("heap[%d].heapIdx = %d", i, e.a.heapIdx)
			}
			if !live[e.a] {
				t.Fatalf("heap[%d] is not a live action", i)
			}
			if e.key != e.a.eventKey() {
				t.Fatalf("heap[%d] cached key %g, action key %g", i, e.key, e.a.eventKey())
			}
			if i > 0 {
				if p := (i - 1) / heapArity; h[p].key > h[i].key {
					t.Fatalf("heap invariant broken at %d", i)
				}
			}
		}
	}
	var dueBuf []*Action
	var idxBuf []int
	for op := 0; op < 400; op++ {
		switch r := rng.Intn(10); {
		case r < 4 || len(h) == 0: // bulk push a batch
			k := 1 + rng.Intn(40)
			batch := make([]*Action, k)
			for i := range batch {
				batch[i] = &Action{heapIdx: -1, estFinish: rng.Float64() * 100}
				live[batch[i]] = true
			}
			h.bulkPush(batch)
		case r < 8: // collect + remove everything due below a threshold
			maxKey := rng.Float64() * 100
			want := map[*Action]bool{}
			for a := range live {
				if a.eventKey() <= maxKey {
					want[a] = true
				}
			}
			dueBuf, idxBuf = h.collectDue(maxKey, dueBuf[:0], idxBuf)
			if len(dueBuf) != len(want) {
				t.Fatalf("collectDue(%g) found %d actions, linear scan %d", maxKey, len(dueBuf), len(want))
			}
			for _, a := range dueBuf {
				if !want[a] {
					t.Fatalf("collectDue returned non-due action (key %g > %g)", a.eventKey(), maxKey)
				}
			}
			h.removeBatch(dueBuf)
			for _, a := range dueBuf {
				if a.heapIdx != -1 {
					t.Fatalf("removed action still has heapIdx %d", a.heapIdx)
				}
				delete(live, a)
			}
		default: // single remove
			i := rng.Intn(len(h))
			a := h[i].a
			h.remove(i)
			delete(live, a)
		}
		check()
	}
}

// BenchmarkActionHeapLockstep isolates the event-machinery cost the
// equal-key bulk-pop removes: k actions due at the same instant inside
// a heap of n. Each iteration extracts the due run and re-inserts it
// (steady state). `batched` = collectDue + removeBatch + bulkPush —
// O(n) compaction/heapify when the run is large; `per-pop` = k
// individual popMin/push pairs — O(k log n). The full-stack lock-step
// benchmark (BenchmarkMSGScalingLockstep) shows how much of an MSG
// step this machinery is; this one shows the machinery alone.
func BenchmarkActionHeapLockstep(b *testing.B) {
	cases := []struct {
		name string
		n, k int
	}{
		{"n100k-all-due", 100_000, 100_000},
		{"n100k-half-due", 100_000, 50_000},
		{"n100k-10k-due", 100_000, 10_000},
	}
	for _, c := range cases {
		build := func() (actionHeap, float64) {
			rng := rand.New(rand.NewSource(11))
			var h actionHeap
			const dueKey = 1.0
			for i := 0; i < c.k; i++ {
				h.push(&Action{heapIdx: -1, estFinish: dueKey})
			}
			for i := c.k; i < c.n; i++ {
				h.push(&Action{heapIdx: -1, estFinish: 2 + rng.Float64()*100})
			}
			return h, dueKey
		}
		b.Run(c.name+"/batched", func(b *testing.B) {
			h, dueKey := build()
			var due []*Action
			var stack []int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				due, stack = h.collectDue(dueKey, due[:0], stack)
				if len(due) != c.k {
					b.Fatalf("collected %d, want %d", len(due), c.k)
				}
				h.removeBatch(due)
				h.bulkPush(due)
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*c.k), "ns/action")
		})
		b.Run(c.name+"/per-pop", func(b *testing.B) {
			h, dueKey := build()
			due := make([]*Action, 0, c.k)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				due = due[:0]
				for len(h) > 0 && h[0].key <= dueKey {
					due = append(due, h.popMin())
				}
				if len(due) != c.k {
					b.Fatalf("popped %d, want %d", len(due), c.k)
				}
				for _, a := range due {
					h.push(a)
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*c.k), "ns/action")
		})
	}
}

// lockstepModel builds nPairs identical disjoint sender/receiver pairs:
// every transfer and compute completes at the same instant, the
// workload class the equal-key bulk-pop and batched wake target.
func lockstepPlatform(t testing.TB, nPairs int) *platform.Platform {
	t.Helper()
	pf := platform.New()
	for i := 0; i < nPairs; i++ {
		src, dst := fmt.Sprintf("s%d", i), fmt.Sprintf("r%d", i)
		if err := pf.AddHost(&platform.Host{Name: src, Power: 1e9}); err != nil {
			t.Fatal(err)
		}
		if err := pf.AddHost(&platform.Host{Name: dst, Power: 1e9}); err != nil {
			t.Fatal(err)
		}
		l := &platform.Link{Name: fmt.Sprintf("l%d", i), Bandwidth: 1e8, Latency: 1e-4}
		if err := pf.AddRoute(src, dst, []*platform.Link{l}); err != nil {
			t.Fatal(err)
		}
	}
	return pf
}

// runLockstep drives rounds of simultaneous transfers + computes and
// returns the completion log (time, action name) in wake order.
func runLockstep(t *testing.T, cfg Config, nPairs, rounds int) []string {
	t.Helper()
	pf := lockstepPlatform(t, nPairs)
	eng := core.New()
	m := New(eng, pf, cfg)
	var log []string
	for i := 0; i < nPairs; i++ {
		src, dst := fmt.Sprintf("s%d", i), fmt.Sprintf("r%d", i)
		eng.Spawn(fmt.Sprintf("p%d", i), nil, func(p *core.Process) {
			for r := 0; r < rounds; r++ {
				a, err := m.Communicate(src, dst, 1e5)
				if err != nil {
					t.Errorf("Communicate: %v", err)
					return
				}
				if err := a.Wait(p); err != nil {
					t.Errorf("comm wait: %v", err)
					return
				}
				log = append(log, fmt.Sprintf("%.9g %s", eng.Now(), a.Name()))
				b, err := m.Execute(src, 1e6, 1)
				if err != nil {
					t.Errorf("Execute: %v", err)
					return
				}
				if err := b.Wait(p); err != nil {
					t.Errorf("exec wait: %v", err)
					return
				}
				log = append(log, fmt.Sprintf("%.9g %s", eng.Now(), b.Name()))
			}
		})
	}
	if err := eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	return log
}

// TestLockstepBatchedEquivalence asserts that the batched same-instant
// completion path (equal-key bulk-pop + one contiguous wake sweep) and
// the sequential per-completion path produce the identical completion
// log: same times, same actions, same wake order.
func TestLockstepBatchedEquivalence(t *testing.T) {
	base := DefaultConfig()
	seq := base
	seq.SequentialCompletions = true
	batched := runLockstep(t, base, 60, 4)
	sequential := runLockstep(t, seq, 60, 4)
	if len(batched) != len(sequential) {
		t.Fatalf("batched log has %d events, sequential %d", len(batched), len(sequential))
	}
	for i := range batched {
		if batched[i] != sequential[i] {
			t.Fatalf("event %d differs:\n  batched:    %s\n  sequential: %s", i, batched[i], sequential[i])
		}
	}
	if len(batched) != 60*4*2 {
		t.Fatalf("completion log has %d events, want %d", len(batched), 60*4*2)
	}
}

// TestSleepZeroSettlesDueCompletions pins the fast-path guard against
// model events: a zero-work action is due at the current instant, so
// Sleep(0) must still run a kernel round (completing it) instead of
// returning inline — the pre-refactor "let this instant settle"
// barrier semantics.
func TestSleepZeroSettlesDueCompletions(t *testing.T) {
	pf := lockstepPlatform(t, 1)
	eng := core.New()
	m := New(eng, pf, DefaultConfig())
	eng.Spawn("p", nil, func(p *core.Process) {
		a, err := m.Execute("s0", 0, 1) // zero work: due immediately
		if err != nil {
			t.Errorf("Execute: %v", err)
			return
		}
		if err := p.Sleep(0); err != nil {
			t.Errorf("Sleep(0): %v", err)
			return
		}
		if !a.Done() {
			t.Error("zero-work action not completed across Sleep(0)")
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

// TestCompletedActionWaitFastPath: waiting on an action that already
// finished is answered inline — zero channel round trips, visible in
// the kernel's fast-path counter.
func TestCompletedActionWaitFastPath(t *testing.T) {
	pf := lockstepPlatform(t, 1)
	eng := core.New()
	m := New(eng, pf, DefaultConfig())
	eng.Spawn("p", nil, func(p *core.Process) {
		a, err := m.Execute("s0", 1e6, 1)
		if err != nil {
			t.Errorf("Execute: %v", err)
			return
		}
		if err := p.Sleep(10); err != nil { // far beyond the action's finish
			t.Errorf("Sleep: %v", err)
			return
		}
		if done, _ := a.Test(p); !done {
			t.Error("action not done after 10s")
		}
		before := eng.SimcallStats()
		if err := a.Wait(p); err != nil {
			t.Errorf("Wait: %v", err)
		}
		after := eng.SimcallStats()
		if after.Fast != before.Fast+1 {
			t.Errorf("Fast went %d -> %d, want +1 (completed-action wait)", before.Fast, after.Fast)
		}
		if after.Slow != before.Slow {
			t.Errorf("Slow went %d -> %d, want unchanged", before.Slow, after.Slow)
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}
