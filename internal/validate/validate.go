// Package validate implements the paper's validation experiment: a
// random BRITE/Waxman topology, 10 random flows of 100 MB between
// random host pairs, simulated with the fluid MaxMin model (SimGrid)
// and with two packet-level comparators (NS2 and GTNets stand-ins),
// comparing per-flow transfer rates and simulation wall-clock times.
package validate

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/packet"
	"repro/internal/platform"
	"repro/internal/surf"
)

// FlowSpec describes one transfer of the experiment.
type FlowSpec struct {
	Src, Dst string
	Bytes    float64
}

// FlowResult holds the per-simulator transfer rate of one flow.
type FlowResult struct {
	FlowSpec
	FluidRate  float64 // bytes/s (SimGrid fluid model)
	NS2Rate    float64 // bytes/s (packet, Reno)
	GTNetsRate float64 // bytes/s (packet, aggressive)
}

// ErrVsNS2 returns the relative error of the fluid rate vs the NS2
// comparator.
func (fr FlowResult) ErrVsNS2() float64 {
	if fr.NS2Rate == 0 {
		return math.Inf(1)
	}
	return (fr.FluidRate - fr.NS2Rate) / fr.NS2Rate
}

// ErrVsGTNets returns the relative error vs the GTNets comparator.
func (fr FlowResult) ErrVsGTNets() float64 {
	if fr.GTNetsRate == 0 {
		return math.Inf(1)
	}
	return (fr.FluidRate - fr.GTNetsRate) / fr.GTNetsRate
}

// Result is the outcome of the experiment.
type Result struct {
	Flows []FlowResult

	FluidWall  time.Duration // wall-clock time of the fluid simulation
	NS2Wall    time.Duration
	GTNetsWall time.Duration
}

// Speedup returns how many times faster the fluid simulation ran
// compared to the slowest packet-level comparator.
func (r *Result) Speedup() float64 {
	pkt := r.NS2Wall
	if r.GTNetsWall > pkt {
		pkt = r.GTNetsWall
	}
	if r.FluidWall <= 0 {
		return math.Inf(1)
	}
	return float64(pkt) / float64(r.FluidWall)
}

// MaxAbsErrVsNS2 returns the worst |relative error| vs NS2 over flows.
func (r *Result) MaxAbsErrVsNS2() float64 {
	worst := 0.0
	for _, f := range r.Flows {
		if e := math.Abs(f.ErrVsNS2()); e > worst {
			worst = e
		}
	}
	return worst
}

// MeanAbsErrVsNS2 returns the mean |relative error| vs NS2 over flows.
func (r *Result) MeanAbsErrVsNS2() float64 {
	if len(r.Flows) == 0 {
		return 0
	}
	sum := 0.0
	for _, f := range r.Flows {
		sum += math.Abs(f.ErrVsNS2())
	}
	return sum / float64(len(r.Flows))
}

// RandomFlows draws n distinct random source-destination host pairs
// from the platform, each transferring `bytes` bytes, using a seeded
// generator (the paper: "10 random flows for 10 random
// source-destination pairs").
func RandomFlows(pf *platform.Platform, n int, bytes float64, seed int64) []FlowSpec {
	rng := rand.New(rand.NewSource(seed))
	hosts := pf.Hosts()
	var flows []FlowSpec
	used := map[[2]string]bool{}
	for len(flows) < n {
		src := hosts[rng.Intn(len(hosts))].Name
		dst := hosts[rng.Intn(len(hosts))].Name
		if src == dst || used[[2]string{src, dst}] {
			continue
		}
		used[[2]string{src, dst}] = true
		flows = append(flows, FlowSpec{Src: src, Dst: dst, Bytes: bytes})
	}
	return flows
}

// RunFluid simulates the flows with the fluid model and returns
// per-flow rates (bytes / completion time).
func RunFluid(pf *platform.Platform, flows []FlowSpec, cfg surf.Config) ([]float64, error) {
	eng := core.New()
	model := surf.New(eng, pf, cfg)
	rates := make([]float64, len(flows))
	var firstErr error
	for i, fs := range flows {
		i, fs := i, fs
		eng.Spawn(fmt.Sprintf("flow%d", i), nil, func(p *core.Process) {
			a, err := model.Communicate(fs.Src, fs.Dst, fs.Bytes)
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				return
			}
			if err := a.Wait(p); err != nil {
				if firstErr == nil {
					firstErr = err
				}
				return
			}
			rates[i] = fs.Bytes / eng.Now()
		})
	}
	if err := eng.Run(); err != nil {
		return nil, err
	}
	return rates, firstErr
}

// RunPacket simulates the flows with a packet-level comparator and
// returns per-flow rates.
func RunPacket(pf *platform.Platform, flows []FlowSpec, v packet.Variant) ([]float64, error) {
	net := packet.New(pf, packet.DefaultConfig(v))
	pflows := make([]*packet.Flow, len(flows))
	for i, fs := range flows {
		f, err := net.AddFlow(fs.Src, fs.Dst, fs.Bytes, 0)
		if err != nil {
			return nil, err
		}
		pflows[i] = f
	}
	net.Run(0)
	rates := make([]float64, len(flows))
	for i, f := range pflows {
		if f.Done() {
			rates[i] = f.Throughput()
		}
	}
	return rates, nil
}

// Run executes the full three-way experiment.
func Run(pf *platform.Platform, flows []FlowSpec, cfg surf.Config) (*Result, error) {
	res := &Result{}

	t0 := time.Now() //lint:allow det-wallclock experiment self-timing: wall-clock speed is a reported result, it never feeds simulated time
	fluid, err := RunFluid(pf, flows, cfg)
	res.FluidWall = time.Since(t0) //lint:allow det-wallclock experiment self-timing: wall-clock speed is a reported result, it never feeds simulated time
	if err != nil {
		return nil, fmt.Errorf("fluid: %w", err)
	}

	t0 = time.Now() //lint:allow det-wallclock experiment self-timing: wall-clock speed is a reported result, it never feeds simulated time
	ns2, err := RunPacket(pf, flows, packet.VariantNS2)
	res.NS2Wall = time.Since(t0) //lint:allow det-wallclock experiment self-timing: wall-clock speed is a reported result, it never feeds simulated time
	if err != nil {
		return nil, fmt.Errorf("ns2: %w", err)
	}

	t0 = time.Now() //lint:allow det-wallclock experiment self-timing: wall-clock speed is a reported result, it never feeds simulated time
	gtnets, err := RunPacket(pf, flows, packet.VariantGTNets)
	res.GTNetsWall = time.Since(t0) //lint:allow det-wallclock experiment self-timing: wall-clock speed is a reported result, it never feeds simulated time
	if err != nil {
		return nil, fmt.Errorf("gtnets: %w", err)
	}

	for i, fs := range flows {
		res.Flows = append(res.Flows, FlowResult{
			FlowSpec:   fs,
			FluidRate:  fluid[i],
			NS2Rate:    ns2[i],
			GTNetsRate: gtnets[i],
		})
	}
	return res, nil
}

// Report prints the experiment in the shape of the paper's figure: one
// row per flow with the three simulated rates (MB/s) and the relative
// error of the fluid model.
func (r *Result) Report(w io.Writer) {
	fmt.Fprintf(w, "%-4s %-8s %-8s %10s %10s %10s %8s %8s\n",
		"flow", "src", "dst", "NS2", "GTNets", "SimGrid", "vs NS2", "vs GTN")
	fmt.Fprintf(w, "%-4s %-8s %-8s %10s %10s %10s %8s %8s\n",
		"", "", "", "(MB/s)", "(MB/s)", "(MB/s)", "", "")
	flows := make([]FlowResult, len(r.Flows))
	copy(flows, r.Flows)
	sort.Slice(flows, func(i, j int) bool { return flows[i].Src < flows[j].Src })
	for i, f := range r.Flows {
		fmt.Fprintf(w, "%-4d %-8s %-8s %10.3f %10.3f %10.3f %7.1f%% %7.1f%%\n",
			i+1, f.Src, f.Dst,
			f.NS2Rate/1e6, f.GTNetsRate/1e6, f.FluidRate/1e6,
			100*f.ErrVsNS2(), 100*f.ErrVsGTNets())
	}
	fmt.Fprintf(w, "\nmean |err| vs NS2: %.1f%%   max |err|: %.1f%%\n",
		100*r.MeanAbsErrVsNS2(), 100*r.MaxAbsErrVsNS2())
	fmt.Fprintf(w, "wall-clock: fluid %v, ns2 %v, gtnets %v (speedup %.0fx)\n",
		r.FluidWall, r.NS2Wall, r.GTNetsWall, r.Speedup())
}
