package validate

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/platform"
	"repro/internal/surf"
)

// smallExperiment keeps unit-test runtime low: 8 routers, 5 flows of
// 5 MB (the real figure-scale experiment lives in cmd/validate and the
// benchmark harness).
func smallExperiment(t *testing.T) (*platform.Platform, []FlowSpec) {
	t.Helper()
	pf, err := platform.GenerateWaxman(platform.DefaultWaxmanConfig(8, 42))
	if err != nil {
		t.Fatal(err)
	}
	return pf, RandomFlows(pf, 5, 5e6, 7)
}

func TestRandomFlowsDeterministic(t *testing.T) {
	pf, _ := smallExperiment(t)
	a := RandomFlows(pf, 10, 1e6, 3)
	b := RandomFlows(pf, 10, 1e6, 3)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("flow %d differs between same-seed draws", i)
		}
	}
	c := RandomFlows(pf, 10, 1e6, 4)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical flows")
	}
}

func TestRandomFlowsDistinctPairs(t *testing.T) {
	pf, _ := smallExperiment(t)
	flows := RandomFlows(pf, 10, 1e6, 5)
	seen := map[[2]string]bool{}
	for _, f := range flows {
		if f.Src == f.Dst {
			t.Errorf("self-flow %v", f)
		}
		k := [2]string{f.Src, f.Dst}
		if seen[k] {
			t.Errorf("duplicate pair %v", k)
		}
		seen[k] = true
		if f.Bytes != 1e6 {
			t.Errorf("bytes = %g", f.Bytes)
		}
	}
}

func TestRunFluidRatesPositive(t *testing.T) {
	pf, flows := smallExperiment(t)
	rates, err := RunFluid(pf, flows, surf.DefaultConfig())
	if err != nil {
		t.Fatalf("RunFluid: %v", err)
	}
	for i, r := range rates {
		if r <= 0 {
			t.Errorf("flow %d rate %g", i, r)
		}
	}
}

func TestFullExperimentAgreesInShape(t *testing.T) {
	if testing.Short() {
		t.Skip("packet simulation is slow")
	}
	pf, flows := smallExperiment(t)
	res, err := Run(pf, flows, surf.DefaultConfig())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(res.Flows) != len(flows) {
		t.Fatalf("got %d results", len(res.Flows))
	}
	// Shape assertions, not absolute numbers: the fluid model must be
	// in the right ballpark of the packet comparators on short runs
	// (slow start weighs more on 5 MB flows than on the paper's 100 MB,
	// so the tolerance is looser than the headline ±15%).
	if res.MeanAbsErrVsNS2() > 0.5 {
		var buf bytes.Buffer
		res.Report(&buf)
		t.Errorf("mean |err| vs NS2 = %.1f%% (> 50%%)\n%s",
			100*res.MeanAbsErrVsNS2(), buf.String())
	}
	// The fluid simulation must be dramatically faster (paper: orders
	// of magnitude).
	if res.Speedup() < 10 {
		t.Errorf("speedup only %.1fx", res.Speedup())
	}
	for i, f := range res.Flows {
		if f.FluidRate <= 0 || f.NS2Rate <= 0 || f.GTNetsRate <= 0 {
			t.Errorf("flow %d has a zero rate: %+v", i, f)
		}
	}
}

func TestReportFormat(t *testing.T) {
	res := &Result{
		Flows: []FlowResult{
			{FlowSpec: FlowSpec{Src: "a", Dst: "b", Bytes: 1e6},
				FluidRate: 1e6, NS2Rate: 1.1e6, GTNetsRate: 0.9e6},
		},
		FluidWall: 1, NS2Wall: 1000, GTNetsWall: 500,
	}
	var buf bytes.Buffer
	res.Report(&buf)
	out := buf.String()
	for _, want := range []string{"NS2", "GTNets", "SimGrid", "speedup", "mean |err|"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	if res.Speedup() != 1000 {
		t.Errorf("Speedup = %g, want 1000", res.Speedup())
	}
}

func TestErrMetrics(t *testing.T) {
	fr := FlowResult{FluidRate: 110, NS2Rate: 100, GTNetsRate: 0}
	if e := fr.ErrVsNS2(); e < 0.0999 || e > 0.1001 {
		t.Errorf("ErrVsNS2 = %g, want 0.1", e)
	}
	if e := fr.ErrVsGTNets(); !isInf(e) {
		t.Errorf("ErrVsGTNets = %g, want +Inf for zero comparator", e)
	}
	res := &Result{Flows: []FlowResult{
		{FluidRate: 110, NS2Rate: 100},
		{FluidRate: 80, NS2Rate: 100},
	}}
	if m := res.MeanAbsErrVsNS2(); m < 0.149 || m > 0.151 {
		t.Errorf("MeanAbsErrVsNS2 = %g, want 0.15", m)
	}
	if m := res.MaxAbsErrVsNS2(); m < 0.199 || m > 0.201 {
		t.Errorf("MaxAbsErrVsNS2 = %g, want 0.2", m)
	}
}

func isInf(f float64) bool { return f > 1e308 }
