// The paper's SMPI example: 1-D matrix multiplication with a vertical
// strip decomposition. Matrices are distributed among processors;
// column blocks of A are broadcast at every step and each rank
// accumulates a rank-1 update into its local strip of C through an
// SMPI_BENCH_ONCE_RUN_ONCE block (the paper wraps cblas_dgemm; we wrap
// the equivalent Go loops — whatever runs inside is measured once and
// replayed).

package smpi

import (
	"errors"
	"fmt"
)

// MatMulConfig sizes the distributed multiplication C = A×B with
// A: M×K, B: K×N, C: M×N, strip-decomposed over the ranks.
type MatMulConfig struct {
	M, N, K int
}

// Validate checks divisibility by the rank count.
func (c MatMulConfig) Validate(ranks int) error {
	if c.M <= 0 || c.N <= 0 || c.K <= 0 {
		return errors.New("smpi: matmul dimensions must be positive")
	}
	if c.K%ranks != 0 || c.N%ranks != 0 {
		return fmt.Errorf("smpi: K=%d and N=%d must divide by %d ranks", c.K, c.N, ranks)
	}
	return nil
}

// MatMul1D executes the paper's parallel_mat_mult on one rank: each
// rank owns a K/p-column strip of A and an N/p-column strip of B and C.
// At step k the owner broadcasts column k of A (M doubles on the wire)
// and everyone accumulates the rank-1 update into its C strip inside a
// BenchOnce block. It returns this rank's C strip (M × N/p, row-major).
func MatMul1D(r *Rank, cfg MatMulConfig) ([]float64, error) {
	p := r.Size()
	if err := cfg.Validate(p); err != nil {
		return nil, err
	}
	M, N, K := cfg.M, cfg.N, cfg.K
	KK := K / p
	NN := N / p

	// Local strips, initialised to a deterministic pattern so the
	// result is verifiable: A[i][k] = i+k+1, B[k][j] = (k+1)*(j+1).
	a := make([]float64, M*KK) // columns my_id*KK .. my_id*KK+KK-1 of A
	for i := 0; i < M; i++ {
		for kk := 0; kk < KK; kk++ {
			k := r.rank*KK + kk
			a[i*KK+kk] = float64(i + k + 1)
		}
	}
	b := make([]float64, K*NN) // columns my_id*NN .. of B
	for k := 0; k < K; k++ {
		for jj := 0; jj < NN; jj++ {
			j := r.rank*NN + jj
			b[k*NN+jj] = float64((k + 1) * (j + 1))
		}
	}
	c := make([]float64, M*NN)

	bufCol := make([]float64, M)
	for k := 0; k < K; k++ {
		owner := k / KK
		if owner == r.rank {
			for i := 0; i < M; i++ {
				bufCol[i] = a[i*KK+(k%KK)]
			}
		}
		// MPI_Bcast(buf_col, M, MPI_DOUBLE, k/KK, MPI_COMM_WORLD)
		var payload any
		if owner == r.rank {
			col := make([]float64, M)
			copy(col, bufCol)
			payload = col
		}
		v, err := r.Bcast(owner, payload, float64(M*8))
		if err != nil {
			return nil, err
		}
		col := v.([]float64)

		// SMPI_BENCH block around the rank-1 update (the paper calls
		// cblas_dgemm inside SMPI_BENCH_ONCE_RUN_ONCE; we use the
		// always-run variant so the numeric result stays verifiable,
		// with the charged duration still measured exactly once).
		if _, err := r.BenchAlways("matmul-rank1-update", func() {
			for i := 0; i < M; i++ {
				ci := c[i*NN : (i+1)*NN]
				ai := col[i]
				bk := b[k*NN : (k+1)*NN]
				for j := 0; j < NN; j++ {
					ci[j] += ai * bk[j]
				}
			}
		}); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// CheckMatMul verifies a rank's C strip against the closed form of the
// deterministic inputs: C[i][j] = Σ_k (i+k+1)(k+1)(j+1).
func CheckMatMul(rank, size int, cfg MatMulConfig, c []float64) error {
	M, N, K := cfg.M, cfg.N, cfg.K
	NN := N / size
	for i := 0; i < M; i++ {
		for jj := 0; jj < NN; jj++ {
			j := rank*NN + jj
			want := 0.0
			for k := 0; k < K; k++ {
				want += float64(i+k+1) * float64((k+1)*(j+1))
			}
			got := c[i*NN+jj]
			if diff := got - want; diff > 1e-6 || diff < -1e-6 {
				return fmt.Errorf("C[%d][%d] = %g, want %g", i, j, got, want)
			}
		}
	}
	return nil
}

// RunMatMul runs the full experiment on a platform: one rank per host,
// returning the simulated makespan. benchSeconds, when positive,
// preloads the rank-1-update measurement so results are deterministic
// (pass 0 to really measure the Go loops on the first execution).
func RunMatMul(w *World, cfg MatMulConfig, benchSeconds float64, verify bool) (float64, error) {
	if benchSeconds > 0 {
		w.SetBench("matmul-rank1-update", benchSeconds)
	}
	err := w.Run(func(r *Rank) error {
		c, err := MatMul1D(r, cfg)
		if err != nil {
			return err
		}
		if verify {
			return CheckMatMul(r.Rank(), r.Size(), cfg, c)
		}
		return nil
	})
	if err != nil {
		return 0, err
	}
	return w.eng.Now(), nil
}
