package smpi

import (
	"errors"
	"fmt"
	"math"
	"testing"

	"repro/internal/platform"
	"repro/internal/surf"
)

func exact() surf.Config { return surf.Config{BandwidthFactor: 1, LatencyFactor: 1} }

// cluster builds n hosts on a shared switch (star of fast links).
func cluster(t *testing.T, n int, power float64) (*platform.Platform, []string) {
	t.Helper()
	p := platform.New()
	p.AddRouter("switch")
	hosts := make([]string, n)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("n%d", i)
		hosts[i] = name
		if err := p.AddHost(&platform.Host{Name: name, Power: power}); err != nil {
			t.Fatal(err)
		}
		l := &platform.Link{Name: "eth" + name, Bandwidth: 1.25e8, Latency: 5e-5}
		if err := p.Connect(name, "switch", l); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.ComputeRoutes(); err != nil {
		t.Fatal(err)
	}
	return p, hosts
}

func run(t *testing.T, n int, main func(*Rank) error) *World {
	t.Helper()
	pf, hosts := cluster(t, n, 1e9)
	w, err := New(pf, exact(), hosts)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Run(main); err != nil {
		t.Fatalf("Run: %v", err)
	}
	return w
}

func TestRankAndSize(t *testing.T) {
	seen := make([]bool, 4)
	run(t, 4, func(r *Rank) error {
		if r.Size() != 4 {
			return fmt.Errorf("size = %d", r.Size())
		}
		seen[r.Rank()] = true
		if r.Host() == nil {
			return errors.New("nil host")
		}
		return nil
	})
	for i, s := range seen {
		if !s {
			t.Errorf("rank %d never ran", i)
		}
	}
}

func TestSendRecv(t *testing.T) {
	run(t, 2, func(r *Rank) error {
		if r.Rank() == 0 {
			return r.Send(1, 7, "hello", 1e6)
		}
		v, src, err := r.Recv(0, 7)
		if err != nil {
			return err
		}
		if v.(string) != "hello" || src != 0 {
			return fmt.Errorf("got %v from %d", v, src)
		}
		return nil
	})
}

func TestRecvAnySource(t *testing.T) {
	got := map[int]bool{}
	run(t, 4, func(r *Rank) error {
		if r.Rank() != 0 {
			return r.Send(0, 1, r.Rank(), 1e3)
		}
		for i := 0; i < 3; i++ {
			v, src, err := r.Recv(AnySource, 1)
			if err != nil {
				return err
			}
			if v.(int) != src {
				return fmt.Errorf("payload %v from %d", v, src)
			}
			got[src] = true
		}
		return nil
	})
	if len(got) != 3 {
		t.Errorf("received from %d sources, want 3", len(got))
	}
}

func TestSendTakesNetworkTime(t *testing.T) {
	var recvAt float64
	w := run(t, 2, func(r *Rank) error {
		if r.Rank() == 0 {
			return r.Send(1, 0, nil, 1.25e8) // 1 s at 1.25e8 B/s
		}
		_, _, err := r.Recv(0, 0)
		recvAt = r.Wtime()
		return err
	})
	_ = w
	if recvAt < 1.0 || recvAt > 1.1 {
		t.Errorf("1.25e8 B arrived at %g, want ~1 s", recvAt)
	}
}

func TestTagsSeparateStreams(t *testing.T) {
	run(t, 2, func(r *Rank) error {
		if r.Rank() == 0 {
			if err := r.Send(1, 5, "five", 1e3); err != nil {
				return err
			}
			return r.Send(1, 6, "six", 1e3)
		}
		// Receive in reverse tag order.
		v6, _, err := r.Recv(0, 6)
		if err != nil {
			return err
		}
		v5, _, err := r.Recv(0, 5)
		if err != nil {
			return err
		}
		if v5.(string) != "five" || v6.(string) != "six" {
			return fmt.Errorf("tag mixup: %v %v", v5, v6)
		}
		return nil
	})
}

func TestComputeScalesWithPower(t *testing.T) {
	pf, hosts := cluster(t, 2, 2e9)
	w, _ := New(pf, exact(), hosts)
	var at float64
	if err := w.Run(func(r *Rank) error {
		if r.Rank() == 0 {
			if err := r.Compute(4e9); err != nil { // 2 s at 2 Gflop/s
				return err
			}
			at = r.Wtime()
		}
		return nil
	}); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if math.Abs(at-2) > 1e-6 {
		t.Errorf("compute ended at %g, want 2", at)
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	var after [5]float64
	run(t, 5, func(r *Rank) error {
		// Rank i sleeps i*0.1 s before the barrier.
		if err := r.Compute(float64(r.Rank()) * 1e8); err != nil {
			return err
		}
		if err := r.Barrier(); err != nil {
			return err
		}
		after[r.Rank()] = r.Wtime()
		return nil
	})
	// Everyone must leave the barrier at (or after) the slowest entry.
	for i, ts := range after {
		if ts < 0.4 {
			t.Errorf("rank %d left barrier at %g, before slowest entry (0.4)", i, ts)
		}
	}
}

func TestBcastAllSizes(t *testing.T) {
	for n := 1; n <= 9; n++ {
		n := n
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			vals := make([]int, n)
			run(t, n, func(r *Rank) error {
				data := any(nil)
				if r.Rank() == 0 {
					data = 42
				}
				v, err := r.Bcast(0, data, 1e4)
				if err != nil {
					return err
				}
				vals[r.Rank()] = v.(int)
				return nil
			})
			for i, v := range vals {
				if v != 42 {
					t.Errorf("rank %d got %d", i, v)
				}
			}
		})
	}
}

func TestBcastNonZeroRoot(t *testing.T) {
	vals := make([]string, 6)
	run(t, 6, func(r *Rank) error {
		data := any(nil)
		if r.Rank() == 4 {
			data = "from4"
		}
		v, err := r.Bcast(4, data, 1e4)
		if err != nil {
			return err
		}
		vals[r.Rank()] = v.(string)
		return nil
	})
	for i, v := range vals {
		if v != "from4" {
			t.Errorf("rank %d got %q", i, v)
		}
	}
}

func TestReduceSum(t *testing.T) {
	for n := 1; n <= 8; n++ {
		n := n
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			var got float64
			run(t, n, func(r *Rank) error {
				v, err := r.Reduce(0, float64(r.Rank()+1), OpSum, 1e3)
				if err != nil {
					return err
				}
				if r.Rank() == 0 {
					got = v
				}
				return nil
			})
			want := float64(n*(n+1)) / 2
			if got != want {
				t.Errorf("sum = %g, want %g", got, want)
			}
		})
	}
}

func TestReduceOps(t *testing.T) {
	cases := []struct {
		op   Op
		want float64
	}{
		{OpMax, 5}, {OpMin, 1}, {OpProd, 120}, {OpSum, 15},
	}
	for ci, c := range cases {
		var got float64
		run(t, 5, func(r *Rank) error {
			v, err := r.Reduce(0, float64(r.Rank()+1), c.op, 1e3)
			if err != nil {
				return err
			}
			if r.Rank() == 0 {
				got = v
			}
			return nil
		})
		if got != c.want {
			t.Errorf("case %d: got %g, want %g", ci, got, c.want)
		}
	}
}

func TestAllreduce(t *testing.T) {
	sums := make([]float64, 7)
	run(t, 7, func(r *Rank) error {
		v, err := r.Allreduce(float64(r.Rank()), OpSum, 1e3)
		if err != nil {
			return err
		}
		sums[r.Rank()] = v
		return nil
	})
	for i, s := range sums {
		if s != 21 {
			t.Errorf("rank %d allreduce = %g, want 21", i, s)
		}
	}
}

func TestGatherScatter(t *testing.T) {
	var gathered []any
	scattered := make([]string, 4)
	run(t, 4, func(r *Rank) error {
		g, err := r.Gather(0, fmt.Sprintf("item%d", r.Rank()), 1e3)
		if err != nil {
			return err
		}
		if r.Rank() == 0 {
			gathered = g
		}
		var items []any
		if r.Rank() == 0 {
			items = []any{"s0", "s1", "s2", "s3"}
		}
		v, err := r.Scatter(0, items, 1e3)
		if err != nil {
			return err
		}
		scattered[r.Rank()] = v.(string)
		return nil
	})
	for i := range gathered {
		if gathered[i].(string) != fmt.Sprintf("item%d", i) {
			t.Errorf("gathered[%d] = %v", i, gathered[i])
		}
	}
	for i, v := range scattered {
		if v != fmt.Sprintf("s%d", i) {
			t.Errorf("scattered[%d] = %q", i, v)
		}
	}
}

func TestAlltoallAllSizes(t *testing.T) {
	for n := 2; n <= 9; n++ {
		n := n
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			results := make([][]any, n)
			run(t, n, func(r *Rank) error {
				items := make([]any, n)
				for i := range items {
					items[i] = r.Rank()*100 + i // "from r to i"
				}
				out, err := r.Alltoall(items, 1e3)
				if err != nil {
					return err
				}
				results[r.Rank()] = out
				return nil
			})
			for me := 0; me < n; me++ {
				for src := 0; src < n; src++ {
					want := src*100 + me
					if results[me][src].(int) != want {
						t.Errorf("n=%d: rank %d from %d = %v, want %d",
							n, me, src, results[me][src], want)
					}
				}
			}
		})
	}
}

func TestBenchOnceCachesAndReplays(t *testing.T) {
	executions := 0
	var durations []float64
	run(t, 2, func(r *Rank) error {
		for i := 0; i < 3; i++ {
			dt, err := r.BenchOnce("kernel", func() { executions++ })
			if err != nil {
				return err
			}
			durations = append(durations, dt)
		}
		return nil
	})
	if executions != 1 {
		t.Errorf("benched function ran %d times, want 1 (BENCH_ONCE)", executions)
	}
	if len(durations) != 6 {
		t.Errorf("%d durations recorded", len(durations))
	}
}

func TestSetBenchReplaysDeterministically(t *testing.T) {
	pf, hosts := cluster(t, 1, 1e9)
	w, _ := New(pf, exact(), hosts)
	w.SetBench("dgemm", 0.25)
	ran := false
	var dt float64
	if err := w.Run(func(r *Rank) error {
		var err error
		dt, err = r.BenchOnce("dgemm", func() { ran = true })
		return err
	}); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if ran {
		t.Error("preloaded bench still executed the function")
	}
	if math.Abs(dt-0.25) > 1e-9 {
		t.Errorf("replayed duration %g, want 0.25", dt)
	}
}

func TestBenchScalesWithHostPower(t *testing.T) {
	// Same cached measurement on a half-speed host takes twice as long.
	p := platform.New()
	p.AddHost(&platform.Host{Name: "fast", Power: 1e9})
	p.AddHost(&platform.Host{Name: "slow", Power: 5e8})
	l := &platform.Link{Name: "l", Bandwidth: 1e9, Latency: 1e-5}
	p.AddRoute("fast", "slow", []*platform.Link{l})
	w, err := New(p, exact(), []string{"fast", "slow"})
	if err != nil {
		t.Fatal(err)
	}
	w.SetBench("k", 1.0) // 1 s measured on the reference machine
	var dts [2]float64
	if err := w.Run(func(r *Rank) error {
		dt, err := r.BenchOnce("k", func() {})
		dts[r.Rank()] = dt
		return err
	}); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if math.Abs(dts[0]-1) > 1e-6 {
		t.Errorf("fast host: %g, want 1", dts[0])
	}
	if math.Abs(dts[1]-2) > 1e-6 {
		t.Errorf("slow host: %g, want 2 (half power)", dts[1])
	}
}

func TestValidation(t *testing.T) {
	pf, hosts := cluster(t, 2, 1e9)
	if _, err := New(pf, exact(), nil); err == nil {
		t.Error("empty hosts accepted")
	}
	if _, err := New(pf, exact(), []string{"ghost"}); err == nil {
		t.Error("unknown host accepted")
	}
	w, _ := New(pf, exact(), hosts)
	err := w.Run(func(r *Rank) error {
		if r.Rank() != 0 {
			return nil
		}
		if err := r.Send(99, 0, nil, 1); !errors.Is(err, ErrRank) {
			return fmt.Errorf("Send(99) = %v", err)
		}
		if _, _, err := r.Recv(99, 0); !errors.Is(err, ErrRank) {
			return fmt.Errorf("Recv(99) = %v", err)
		}
		if _, err := r.Bcast(99, nil, 1); !errors.Is(err, ErrRank) {
			return fmt.Errorf("Bcast(99) = %v", err)
		}
		if _, err := r.Reduce(0, 1, nil, 1); !errors.Is(err, ErrMismatch) {
			return fmt.Errorf("nil op = %v", err)
		}
		if _, err := r.Alltoall([]any{1}, 1); !errors.Is(err, ErrMismatch) {
			return fmt.Errorf("short alltoall = %v", err)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestRankErrorPropagates(t *testing.T) {
	pf, hosts := cluster(t, 2, 1e9)
	w, _ := New(pf, exact(), hosts)
	boom := errors.New("boom")
	err := w.Run(func(r *Rank) error {
		if r.Rank() == 1 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Errorf("Run = %v, want boom", err)
	}
}
