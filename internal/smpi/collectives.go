// MPI collectives built over the point-to-point layer with the
// algorithms MPICH uses at small scale: binomial trees for Bcast and
// Reduce, a gather+release Barrier, linear Gather/Scatter, and pairwise
// Alltoall. Internal messages use negative tags so they never collide
// with application traffic.

package smpi

import "fmt"

// Internal collective tags.
const (
	tagBarrier = -1
	tagBcast   = -2
	tagReduce  = -3
	tagGather  = -4
	tagScatter = -5
	tagA2A     = -6
)

// ctrlBytes is the simulated size of a zero-payload control message.
const ctrlBytes = 64

// Barrier blocks until every rank reached it (MPI_Barrier):
// all-to-root gather of tokens, then a root-to-all release broadcast
// over the binomial tree.
func (r *Rank) Barrier() error {
	n := r.Size()
	if n == 1 {
		return nil
	}
	if r.rank != 0 {
		if err := r.Send(0, tagBarrier, nil, ctrlBytes); err != nil {
			return err
		}
	} else {
		for i := 1; i < n; i++ {
			if _, _, err := r.Recv(AnySource, tagBarrier); err != nil {
				return err
			}
		}
	}
	_, err := r.Bcast(0, nil, ctrlBytes)
	return err
}

// Bcast distributes root's data to every rank along a binomial tree
// (MPI_Bcast). Every rank receives the returned value; bytes is the
// payload size governing each hop's simulated duration.
func (r *Rank) Bcast(root int, data any, bytes float64) (any, error) {
	n := r.Size()
	if root < 0 || root >= n {
		return nil, fmt.Errorf("%w: root %d", ErrRank, root)
	}
	if n == 1 {
		return data, nil
	}
	// Standard MPICH binomial tree over virtual ranks rooted at 0.
	vrank := (r.rank - root + n) % n
	value := data

	// Receive phase: walk up to the bit that identifies our parent.
	mask := 1
	for mask < n {
		if vrank&mask != 0 {
			parent := ((vrank &^ mask) + root) % n
			v, _, err := r.Recv(parent, tagBcast)
			if err != nil {
				return nil, err
			}
			value = v
			break
		}
		mask <<= 1
	}
	// Send phase: forward to children at every bit below ours.
	for mask >>= 1; mask > 0; mask >>= 1 {
		if child := vrank + mask; vrank&mask == 0 && child < n {
			dst := (child + root) % n
			if err := r.Send(dst, tagBcast, value, bytes); err != nil {
				return nil, err
			}
		}
	}
	return value, nil
}

// Reduce combines every rank's value with op, delivering the result to
// root (MPI_Reduce); other ranks receive 0. bytes sizes each hop.
func (r *Rank) Reduce(root int, value float64, op Op, bytes float64) (float64, error) {
	n := r.Size()
	if root < 0 || root >= n {
		return 0, fmt.Errorf("%w: root %d", ErrRank, root)
	}
	if op == nil {
		return 0, fmt.Errorf("%w: nil op", ErrMismatch)
	}
	if n == 1 {
		return value, nil
	}
	vrank := (r.rank - root + n) % n
	acc := value
	// Binomial tree, leaves inward: at each round, ranks with the
	// current bit set send to their parent and leave.
	for mask := 1; mask < n; mask <<= 1 {
		if vrank&mask != 0 {
			parent := ((vrank &^ mask) + root) % n
			if err := r.Send(parent, tagReduce, acc, bytes); err != nil {
				return 0, err
			}
			return 0, nil // done: non-root ranks get 0
		}
		child := vrank | mask
		if child < n {
			v, _, err := r.Recv((child+root)%n, tagReduce)
			if err != nil {
				return 0, err
			}
			acc = op(acc, v.(float64))
		}
	}
	return acc, nil
}

// Allreduce is Reduce-to-0 followed by a broadcast of the result
// (MPI_Allreduce).
func (r *Rank) Allreduce(value float64, op Op, bytes float64) (float64, error) {
	red, err := r.Reduce(0, value, op, bytes)
	if err != nil {
		return 0, err
	}
	out, err := r.Bcast(0, red, bytes)
	if err != nil {
		return 0, err
	}
	return out.(float64), nil
}

// Gather collects every rank's contribution at root (MPI_Gather): the
// returned slice (indexed by rank) is only valid at root.
func (r *Rank) Gather(root int, data any, bytes float64) ([]any, error) {
	n := r.Size()
	if root < 0 || root >= n {
		return nil, fmt.Errorf("%w: root %d", ErrRank, root)
	}
	if r.rank != root {
		return nil, r.Send(root, tagGather, gatherItem{rank: r.rank, data: data}, bytes)
	}
	out := make([]any, n)
	out[root] = data
	for i := 0; i < n-1; i++ {
		v, _, err := r.Recv(AnySource, tagGather)
		if err != nil {
			return nil, err
		}
		it := v.(gatherItem)
		out[it.rank] = it.data
	}
	return out, nil
}

type gatherItem struct {
	rank int
	data any
}

// Scatter distributes items[i] from root to rank i (MPI_Scatter); the
// items argument is only read at root.
func (r *Rank) Scatter(root int, items []any, bytes float64) (any, error) {
	n := r.Size()
	if root < 0 || root >= n {
		return nil, fmt.Errorf("%w: root %d", ErrRank, root)
	}
	if r.rank == root {
		if len(items) != n {
			return nil, fmt.Errorf("%w: scatter needs %d items, got %d", ErrMismatch, n, len(items))
		}
		for i := 0; i < n; i++ {
			if i == root {
				continue
			}
			if err := r.Send(i, tagScatter, items[i], bytes); err != nil {
				return nil, err
			}
		}
		return items[root], nil
	}
	v, _, err := r.Recv(root, tagScatter)
	return v, err
}

// Alltoall exchanges items[i] with every rank i (MPI_Alltoall),
// returning the slice of items received (indexed by source rank). The
// exchange is scheduled pairwise to avoid head-of-line blocking.
func (r *Rank) Alltoall(items []any, bytes float64) ([]any, error) {
	n := r.Size()
	if len(items) != n {
		return nil, fmt.Errorf("%w: alltoall needs %d items, got %d", ErrMismatch, n, len(items))
	}
	out := make([]any, n)
	out[r.rank] = items[r.rank]
	// Shifted ring: at step s, send to rank+s and receive from rank-s.
	// With rendezvous (blocking) sends, ordering matters: a rank sends
	// first only when its target has a higher rank; the highest rank of
	// every dependency chain posts its receive first, so each step's
	// exchanges unwind without deadlock for any n.
	for step := 1; step < n; step++ {
		to := (r.rank + step) % n
		from := (r.rank - step + n) % n
		if r.rank < to {
			if err := r.Send(to, tagA2A, items[to], bytes); err != nil {
				return nil, err
			}
			v, src, err := r.Recv(from, tagA2A)
			if err != nil {
				return nil, err
			}
			out[src] = v
		} else {
			v, src, err := r.Recv(from, tagA2A)
			if err != nil {
				return nil, err
			}
			out[src] = v
			if err := r.Send(to, tagA2A, items[to], bytes); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}
