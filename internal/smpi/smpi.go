// Package smpi implements the paper's SMPI interface: simulation of
// MPI applications on heterogeneous virtual platforms. Each MPI rank
// runs as a simulated process; point-to-point messages and collectives
// travel through the SURF network model, and SMPI_BENCH-style blocks
// measure real computation once and replay the measured duration in
// virtual time ("automatic (but directed) benchmarking of communication
// and computation costs").
//
// Payloads are passed by reference (all ranks share one address space,
// like MSG tasks); the simulated transfer duration is governed by the
// explicit byte count of each call.
//
// Key invariant: rank-to-rank matching is deterministic — sends and
// receives pair in posting order per (source, tag) queue, so a legal
// MPI program produces the same virtual-time schedule on every run.
package smpi

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/surf"
)

// AnySource matches any sending rank in Recv.
const AnySource = -1

// Errors returned by SMPI operations.
var (
	// ErrRank reports an out-of-range rank argument.
	ErrRank = errors.New("smpi: rank out of range")
	// ErrMismatch reports inconsistent collective participation.
	ErrMismatch = errors.New("smpi: collective call mismatch")
)

// Op is a reduction operator.
type Op func(a, b float64) float64

// Builtin reduction operators.
var (
	OpSum = func(a, b float64) float64 { return a + b }
	OpMax = func(a, b float64) float64 {
		if a > b {
			return a
		}
		return b
	}
	OpMin = func(a, b float64) float64 {
		if a < b {
			return a
		}
		return b
	}
	OpProd = func(a, b float64) float64 { return a * b }
)

// World is one MPI job: a set of ranks bound to hosts of a platform.
type World struct {
	eng   *core.Engine
	model *surf.Model
	pf    *platform.Platform
	hosts []string
	ranks []*Rank

	sendQ map[chanKey][]*pendingSend
	recvQ map[chanKey][]*pendingRecv

	benchCache map[string]float64

	// ReferencePower is the flop/s of the machine BenchOnce
	// measurements are taken on; a measured second becomes
	// ReferencePower flops, so slower simulated hosts take
	// proportionally longer (the paper's heterogeneity study).
	ReferencePower float64
}

type chanKey struct {
	src, dst, tag int
}

type pendingSend struct {
	data    any
	bytes   float64
	src     int
	proc    *core.Process
	action  *surf.Action
	arrived bool         // eager transfer finished before a receiver matched
	recv    *pendingRecv // receiver attached while the transfer is in flight
}

type pendingRecv struct {
	proc *core.Process
	data any
	src  int
}

// EagerThreshold is the message size (bytes) below which Send behaves
// eagerly (buffered, like MPI's eager protocol): the transfer starts
// immediately and Send returns when it completes, without waiting for
// the matching receive. Larger messages use rendezvous.
const EagerThreshold = 65536

// Rank is one MPI process.
type Rank struct {
	world *World
	rank  int
	proc  *core.Process
	host  *platform.Host
	err   error
}

// New creates an MPI world with one rank per host name (rank i runs on
// hosts[i]); duplicate host names are allowed (multiple ranks per
// host).
func New(pf *platform.Platform, cfg surf.Config, hosts []string) (*World, error) {
	if len(hosts) == 0 {
		return nil, errors.New("smpi: no hosts")
	}
	for _, h := range hosts {
		if pf.Host(h) == nil {
			return nil, fmt.Errorf("smpi: unknown host %q", h)
		}
	}
	eng := core.New()
	w := &World{
		eng:            eng,
		model:          surf.New(eng, pf, cfg),
		pf:             pf,
		hosts:          hosts,
		sendQ:          make(map[chanKey][]*pendingSend),
		recvQ:          make(map[chanKey][]*pendingRecv),
		benchCache:     make(map[string]float64),
		ReferencePower: 1e9,
	}
	return w, nil
}

// Run starts main on every rank and executes the simulation to
// completion. The first rank error (if any) is returned after the run.
func (w *World) Run(main func(*Rank) error) error {
	w.ranks = make([]*Rank, len(w.hosts))
	for i, hn := range w.hosts {
		r := &Rank{world: w, rank: i, host: w.pf.Host(hn)}
		w.ranks[i] = r
		r.proc = w.eng.Spawn(fmt.Sprintf("rank%d", i), r.host, func(p *core.Process) {
			r.err = main(r)
		})
	}
	if err := w.eng.Run(); err != nil {
		return err
	}
	for _, r := range w.ranks {
		if r.err != nil {
			return fmt.Errorf("smpi: rank %d: %w", r.rank, r.err)
		}
	}
	return nil
}

// Engine exposes the simulation kernel.
func (w *World) Engine() *core.Engine { return w.eng }

// Model exposes the resource model.
func (w *World) Model() *surf.Model { return w.model }

// --- Rank API ---------------------------------------------------------------

// Rank returns the caller's rank (MPI_Comm_rank).
func (r *Rank) Rank() int { return r.rank }

// Size returns the number of ranks (MPI_Comm_size).
func (r *Rank) Size() int { return len(r.world.ranks) }

// Host returns the host this rank runs on.
func (r *Rank) Host() *platform.Host { return r.host }

// Wtime returns the current simulated time (MPI_Wtime).
func (r *Rank) Wtime() float64 { return r.world.eng.Now() }

// Compute runs `flops` of local work through the CPU model.
func (r *Rank) Compute(flops float64) error {
	a, err := r.world.model.Execute(r.host.Name, flops, 1)
	if err != nil {
		return err
	}
	werr := a.Wait(r.proc)
	a.Release() // the action never escapes this frame
	return werr
}

// Send transmits data to a rank (MPI_Send, blocking until the matching
// receive completes — rendezvous semantics). bytes governs the
// simulated duration; data is delivered by reference.
func (r *Rank) Send(dst, tag int, data any, bytes float64) error {
	w := r.world
	if dst < 0 || dst >= len(w.ranks) {
		return fmt.Errorf("%w: dst %d", ErrRank, dst)
	}
	key := chanKey{src: r.rank, dst: dst, tag: tag}
	anyKey := chanKey{src: AnySource, dst: dst, tag: tag}

	// A receiver may be waiting on our exact source or on AnySource.
	var pr *pendingRecv
	if q := w.recvQ[key]; len(q) > 0 {
		pr, w.recvQ[key] = q[0], q[1:]
	} else if q := w.recvQ[anyKey]; len(q) > 0 {
		pr, w.recvQ[anyKey] = q[0], q[1:]
	}
	ps := &pendingSend{data: data, bytes: bytes, src: r.rank, proc: r.proc}
	if pr != nil {
		if err := w.startTransfer(ps, pr, dst); err != nil {
			return err
		}
		return r.proc.BlockOn(core.SimcallSend)
	}
	w.sendQ[key] = append(w.sendQ[key], ps)
	if bytes <= EagerThreshold {
		// Eager protocol: ship the data now; the receiver will find it
		// (or attach to the in-flight transfer) when it posts.
		a, err := w.model.Communicate(w.hosts[r.rank], w.hosts[dst], bytes)
		if err != nil {
			return err
		}
		ps.action = a
		a.SetOnComplete(func(cerr error) {
			ps.arrived = cerr == nil
			if pr := ps.recv; pr != nil {
				if cerr == nil {
					pr.data = ps.data
					pr.src = ps.src
				}
				w.eng.Wake(pr.proc, cerr)
			}
			w.eng.Wake(ps.proc, cerr)
		})
	}
	return r.proc.BlockOn(core.SimcallSend)
}

// Recv receives data from a rank (MPI_Recv); src may be AnySource.
// It returns the payload and the actual source rank.
func (r *Rank) Recv(src, tag int) (any, int, error) {
	w := r.world
	if src != AnySource && (src < 0 || src >= len(w.ranks)) {
		return nil, 0, fmt.Errorf("%w: src %d", ErrRank, src)
	}
	var ps *pendingSend
	if src == AnySource {
		// Scan all senders to me with this tag, lowest rank first for
		// determinism.
		for s := 0; s < len(w.ranks); s++ {
			key := chanKey{src: s, dst: r.rank, tag: tag}
			if q := w.sendQ[key]; len(q) > 0 {
				ps, w.sendQ[key] = q[0], q[1:]
				break
			}
		}
	} else {
		key := chanKey{src: src, dst: r.rank, tag: tag}
		if q := w.sendQ[key]; len(q) > 0 {
			ps, w.sendQ[key] = q[0], q[1:]
		}
	}
	pr := &pendingRecv{proc: r.proc, src: src}
	switch {
	case ps != nil && ps.arrived:
		// Eager message already delivered locally: no waiting at all.
		return ps.data, ps.src, nil
	case ps != nil && ps.action != nil:
		// Eager transfer still in flight: attach and wait for it.
		ps.recv = pr
	case ps != nil:
		// Rendezvous: the sender was waiting for us; start the wire.
		if err := w.startTransfer(ps, pr, r.rank); err != nil {
			return nil, 0, err
		}
	default:
		key := chanKey{src: src, dst: r.rank, tag: tag}
		w.recvQ[key] = append(w.recvQ[key], pr)
	}
	if err := r.proc.BlockOn(core.SimcallRecv); err != nil {
		return nil, 0, err
	}
	return pr.data, pr.src, nil
}

// startTransfer launches the network action joining a matched
// send/recv pair and wires both wake-ups.
func (w *World) startTransfer(ps *pendingSend, pr *pendingRecv, dstRank int) error {
	srcHost := w.hosts[ps.src]
	dstHost := w.hosts[dstRank]
	a, err := w.model.Communicate(srcHost, dstHost, ps.bytes)
	if err != nil {
		w.eng.Wake(ps.proc, err)
		w.eng.Wake(pr.proc, err)
		return err
	}
	ps.action = a
	deliver := func(cerr error) {
		if cerr == nil {
			pr.data = ps.data
			pr.src = ps.src
		}
		w.eng.Wake(ps.proc, cerr)
		w.eng.Wake(pr.proc, cerr)
	}
	if a.Done() {
		cerr := a.Err()
		w.eng.After(0, func() { deliver(cerr) })
	} else {
		a.SetOnComplete(deliver)
	}
	return nil
}

// BenchOnce measures fn's real duration the first time `key` is seen,
// then replays the measured duration in virtual time on every
// subsequent call without running fn again —
// SMPI_BENCH_ONCE_RUN_ONCE_BEGIN/END. It returns the simulated seconds
// charged on this rank's host.
func (r *Rank) BenchOnce(key string, fn func()) (float64, error) {
	w := r.world
	dt, seen := w.benchCache[key]
	if !seen {
		t0 := time.Now() //lint:allow det-wallclock SMPI_BENCH seam: real compute is measured once, cached, and charged as simulated flops
		fn()
		dt = time.Since(t0).Seconds() //lint:allow det-wallclock SMPI_BENCH seam: real compute is measured once, cached, and charged as simulated flops
		w.benchCache[key] = dt
	}
	flops := dt * w.ReferencePower
	a, err := w.model.Execute(r.host.Name, flops, 1)
	if err != nil {
		return 0, err
	}
	start := w.eng.Now()
	werr := a.Wait(r.proc)
	a.Release()
	if werr != nil {
		return 0, werr
	}
	return w.eng.Now() - start, nil
}

// BenchAlways is BenchOnce except fn really runs on every call (so its
// side effects happen), while the *charged* virtual duration is still
// the one measured on the first execution — SMPI_BENCH_ALWAYS with a
// cached measurement. Use it when the computation's results matter.
func (r *Rank) BenchAlways(key string, fn func()) (float64, error) {
	w := r.world
	dt, seen := w.benchCache[key]
	if !seen {
		t0 := time.Now() //lint:allow det-wallclock SMPI_BENCH seam: real compute is measured once, cached, and charged as simulated flops
		fn()
		dt = time.Since(t0).Seconds() //lint:allow det-wallclock SMPI_BENCH seam: real compute is measured once, cached, and charged as simulated flops
		w.benchCache[key] = dt
	} else {
		fn()
	}
	flops := dt * w.ReferencePower
	a, err := w.model.Execute(r.host.Name, flops, 1)
	if err != nil {
		return 0, err
	}
	start := w.eng.Now()
	werr := a.Wait(r.proc)
	a.Release()
	if werr != nil {
		return 0, werr
	}
	return w.eng.Now() - start, nil
}

// SetBench pre-loads a benchmark measurement (for deterministic tests
// and for replaying measurements captured on a reference machine).
func (w *World) SetBench(key string, seconds float64) {
	w.benchCache[key] = seconds
}
