package smpi

import (
	"math"
	"testing"

	"repro/internal/platform"
)

func matmulWorld(t *testing.T, powers []float64) *World {
	t.Helper()
	p := platform.New()
	p.AddRouter("sw")
	hosts := make([]string, len(powers))
	for i, pw := range powers {
		name := "h" + string(rune('a'+i))
		hosts[i] = name
		if err := p.AddHost(&platform.Host{Name: name, Power: pw}); err != nil {
			t.Fatal(err)
		}
		l := &platform.Link{Name: "l" + name, Bandwidth: 1.25e8, Latency: 5e-5}
		if err := p.Connect(name, "sw", l); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.ComputeRoutes(); err != nil {
		t.Fatal(err)
	}
	w, err := New(p, exact(), hosts)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestMatMulCorrectness(t *testing.T) {
	w := matmulWorld(t, []float64{1e9, 1e9, 1e9, 1e9})
	cfg := MatMulConfig{M: 16, N: 16, K: 16}
	if _, err := RunMatMul(w, cfg, 0.001, true); err != nil {
		t.Fatalf("RunMatMul: %v", err)
	}
}

func TestMatMulRealBenchPath(t *testing.T) {
	// benchSeconds = 0: the rank-1 update really runs and is measured.
	w := matmulWorld(t, []float64{1e9, 1e9})
	cfg := MatMulConfig{M: 8, N: 8, K: 8}
	makespan, err := RunMatMul(w, cfg, 0, true)
	if err != nil {
		t.Fatalf("RunMatMul: %v", err)
	}
	if makespan <= 0 {
		t.Error("zero makespan")
	}
}

func TestMatMulValidation(t *testing.T) {
	w := matmulWorld(t, []float64{1e9, 1e9, 1e9})
	// K=16 not divisible by 3 ranks.
	if _, err := RunMatMul(w, MatMulConfig{M: 8, N: 9, K: 16}, 0.001, false); err == nil {
		t.Error("non-divisible K accepted")
	}
	if err := (MatMulConfig{M: 0, N: 4, K: 4}).Validate(2); err == nil {
		t.Error("zero dimension accepted")
	}
}

// The heterogeneity result: the same code on a platform with one slow
// host takes longer, governed by the slowest strip (the paper's point:
// "easy simulation of the application on a heterogeneous platform").
func TestMatMulHeterogeneitySlowsMakespan(t *testing.T) {
	cfg := MatMulConfig{M: 32, N: 32, K: 32}
	homo := matmulWorld(t, []float64{1e9, 1e9, 1e9, 1e9})
	tHomo, err := RunMatMul(homo, cfg, 0.002, false)
	if err != nil {
		t.Fatalf("homogeneous: %v", err)
	}
	hetero := matmulWorld(t, []float64{1e9, 1e9, 1e9, 2.5e8}) // one 4x slower host
	tHetero, err := RunMatMul(hetero, cfg, 0.002, false)
	if err != nil {
		t.Fatalf("heterogeneous: %v", err)
	}
	if tHetero <= tHomo {
		t.Errorf("heterogeneous (%g) not slower than homogeneous (%g)", tHetero, tHomo)
	}
	// The broadcast synchronises every step, so the slow host should
	// dominate: expect ≥ 2x.
	if tHetero < 2*tHomo {
		t.Errorf("slowdown only %gx, want >= 2x", tHetero/tHomo)
	}
	// And the slowdown is bounded by the power ratio (4x) plus overhead.
	if tHetero > 5*tHomo {
		t.Errorf("slowdown %gx exceeds the 4x power ratio + overhead", tHetero/tHomo)
	}
}

func TestMatMulCommMatters(t *testing.T) {
	// With a preloaded tiny compute cost, makespan is dominated by the
	// K broadcasts of M doubles.
	w := matmulWorld(t, []float64{1e9, 1e9})
	cfg := MatMulConfig{M: 1024, N: 16, K: 16}
	makespan, err := RunMatMul(w, cfg, 1e-9, false)
	if err != nil {
		t.Fatal(err)
	}
	// 16 bcasts of 8 kB at 125 MB/s + latency; at least K × latency.
	if makespan < 16*5e-5 {
		t.Errorf("makespan %g below the latency floor", makespan)
	}
	if math.IsInf(makespan, 0) || math.IsNaN(makespan) {
		t.Error("bad makespan")
	}
}
