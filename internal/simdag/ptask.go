// Parallel tasks (ptasks): the SimGrid L07 workload class as a
// first-class simdag task kind. A ptask is ONE activity that consumes
// CPU on several hosts and bandwidth between them simultaneously —
// surf couples the whole allocation through a single MaxMin variable
// (Model.ExecuteParallel), so the task finishes when the slowest
// coupled resource has delivered its share. Degenerate ptasks reduce
// exactly to the simple kinds: one host and no bytes behaves like a
// Compute task, one crossed link like a Comm task (pinned by
// TestPtaskEquivalence).
//
// Placement is a host *set*: ScheduleParallel assigns k distinct hosts
// to the k per-host flop amounts. The reference schedulers place
// ptasks in a greedy pre-pass (placeParallel) before list-scheduling
// the computes, and the failure-reschedule policy re-places ptask
// victims on the surviving pool like any compute (reschedule.go).

package simdag

import "fmt"

// NewParallelTask creates a ptask, NotScheduled until ScheduleParallel
// assigns its host set. flops[i] is the work of the i-th slot;
// bytes[i][j] (optional, may be nil) the data moved from slot i to
// slot j. Amount() reports the summed flops. The slices are retained,
// not copied — loaders may build them in place.
func (s *Simulation) NewParallelTask(name string, flops []float64, bytes [][]float64) (*Task, error) {
	if len(flops) == 0 {
		return nil, fmt.Errorf("simdag: ptask %q needs at least one flop slot", name)
	}
	total := 0.0
	for i, f := range flops {
		if f < 0 {
			return nil, fmt.Errorf("simdag: ptask %q has negative flops in slot %d", name, i)
		}
		total += f
	}
	if bytes != nil {
		if len(bytes) != len(flops) {
			return nil, fmt.Errorf("simdag: ptask %q bytes matrix has %d rows, want %d", name, len(bytes), len(flops))
		}
		for i := range bytes {
			if len(bytes[i]) != len(flops) {
				return nil, fmt.Errorf("simdag: ptask %q bytes row %d has %d entries, want %d", name, i, len(bytes[i]), len(flops))
			}
		}
	}
	t := s.add()
	t.name, t.kind, t.amount = name, Parallel, total
	t.pflops, t.pbytes = flops, bytes
	return t, nil
}

// Slots returns the number of host slots the ptask spans (0 for other
// kinds).
func (t *Task) Slots() int { return len(t.pflops) }

// ParallelHosts returns the assigned host set (nil before
// ScheduleParallel), aliasing the internal slice.
func (t *Task) ParallelHosts() []string { return t.phosts }

// ScheduleParallel assigns one distinct host per flop slot, making the
// ptask Schedulable. The slice is copied.
func (t *Task) ScheduleParallel(hosts []string) error {
	if t.kind != Parallel {
		return fmt.Errorf("simdag: ScheduleParallel on %s task %q (want ptask)", t.kind, t.name)
	}
	if t.state != NotScheduled && t.state != Schedulable {
		return fmt.Errorf("%w: ScheduleParallel on %s task %q", ErrBadState, t.state, t.name)
	}
	if len(hosts) != len(t.pflops) {
		return fmt.Errorf("simdag: ptask %q got %d hosts for %d slots", t.name, len(hosts), len(t.pflops))
	}
	for i, h := range hosts {
		if t.sim.pf.Host(h) == nil {
			return fmt.Errorf("simdag: unknown host %q", h)
		}
		for j := 0; j < i; j++ {
			if hosts[j] == h {
				return fmt.Errorf("simdag: ptask %q host %q repeated", t.name, h)
			}
		}
	}
	t.phosts = append(t.phosts[:0], hosts...)
	t.state = Schedulable
	return nil
}

// unschedParallel pulls a ptask back to NotScheduled (reschedule
// policy).
func (t *Task) unschedParallel() {
	t.phosts = t.phosts[:0]
	t.state = NotScheduled
}

// parallelDown reports whether any host of a scheduled ptask is
// currently off.
func (s *Simulation) parallelDown(t *Task) bool {
	for _, h := range t.phosts {
		if !s.model.HostUp(h) {
			return true
		}
	}
	return false
}

// placeParallel assigns every unplaced ptask a host set from the pool,
// greedily: ptasks are visited in creation order and each takes the k
// least-loaded pool hosts (estimated finish time, ties broken by pool
// order), the same crude-but-deterministic load model min-min uses for
// availability. All three reference schedulers call this as a
// pre-pass, so computes that depend on a ptask can estimate through
// it.
func placeParallel(s *Simulation, hosts []string) error {
	// Fast path: no ptasks to place (the common DAG).
	any := false
	for _, t := range s.tasks {
		if t.kind == Parallel && t.state == NotScheduled {
			any = true
			break
		}
	}
	if !any {
		return nil
	}
	type hostLoad struct {
		name  string
		power float64
		avail float64
	}
	pool := make([]hostLoad, 0, len(hosts))
	for _, h := range hosts {
		ph := s.pf.Host(h)
		if ph == nil {
			return fmt.Errorf("simdag: unknown host %q", h)
		}
		pool = append(pool, hostLoad{name: h, power: ph.Power})
	}
	chosen := make([]int, 0, 4)
	names := make([]string, 0, 4)
	for _, t := range s.tasks {
		if t.kind != Parallel || t.state != NotScheduled {
			continue
		}
		k := len(t.pflops)
		if k > len(pool) {
			return fmt.Errorf("simdag: ptask %q needs %d hosts, pool has %d", t.name, k, len(pool))
		}
		// Select the k pool entries with the smallest avail (stable in
		// pool order): one selection pass per slot keeps this free of
		// sort allocations and deterministic.
		chosen = chosen[:0]
		for slot := 0; slot < k; slot++ {
			best := -1
			for i := range pool {
				taken := false
				for _, c := range chosen {
					if c == i {
						taken = true
						break
					}
				}
				if taken {
					continue
				}
				if best < 0 || pool[i].avail < pool[best].avail {
					best = i
				}
			}
			chosen = append(chosen, best)
		}
		names = names[:0]
		start, sumPower := 0.0, 0.0
		for _, c := range chosen {
			names = append(names, pool[c].name)
			if pool[c].avail > start {
				start = pool[c].avail
			}
			sumPower += pool[c].power
		}
		if err := t.ScheduleParallel(names); err != nil {
			return err
		}
		dur := 0.0
		if sumPower > 0 {
			dur = t.amount / sumPower
		}
		for _, c := range chosen {
			pool[c].avail = start + dur
		}
	}
	return nil
}
