package simdag

import (
	"errors"
	"math"
	"testing"
)

// Bit-identical equivalence between a degenerate ptask and the plain
// task it degenerates to. The amounts are picked float-exact on purpose
// (power-of-two ratios against the starPlatform's 1e9/2e9 powers and
// 1e8 links, zero latency, exactConfig): the two code paths compute
// duration as amount/rate vs 1/(rate/amount), which only agree to the
// bit when every division is exact. That is the point of the test — the
// seam is the same model, not a lookalike.

// TestPtaskEquivalenceCompute: a 1-slot ptask with no transfer is the
// compute task it wraps.
func TestPtaskEquivalenceCompute(t *testing.T) {
	run := func(parallel bool) (float64, float64) {
		s := New(starPlatform(t, 2), exactConfig())
		if parallel {
			p, err := s.NewParallelTask("P", []float64{4e9}, [][]float64{{0}})
			if err != nil {
				t.Fatal(err)
			}
			if err := p.ScheduleParallel([]string{"h00"}); err != nil {
				t.Fatal(err)
			}
		} else {
			if err := s.NewTask("P", 4e9).Schedule("h00"); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := s.Simulate(); err != nil {
			t.Fatal(err)
		}
		if s.DoneCount() != 1 {
			t.Fatalf("done=%d", s.DoneCount())
		}
		return s.Makespan(), float64(s.Engine().Spawned())
	}
	mkPair, _ := run(false)
	mkPtask, _ := run(true)
	if math.Float64bits(mkPair) != math.Float64bits(mkPtask) {
		t.Fatalf("makespans differ: compute %x (%g), ptask %x (%g)",
			math.Float64bits(mkPair), mkPair, math.Float64bits(mkPtask), mkPtask)
	}
}

// TestPtaskEquivalenceComm: a 2-slot zero-flop ptask moving bytes
// between its slots is the comm task over the same route.
func TestPtaskEquivalenceComm(t *testing.T) {
	run := func(parallel bool) float64 {
		s := New(starPlatform(t, 2), exactConfig())
		if parallel {
			p, err := s.NewParallelTask("X",
				[]float64{0, 0}, [][]float64{{0, 4e8}, {0, 0}})
			if err != nil {
				t.Fatal(err)
			}
			if err := p.ScheduleParallel([]string{"h00", "h01"}); err != nil {
				t.Fatal(err)
			}
		} else {
			if err := s.NewCommTask("X", 4e8).ScheduleComm("h00", "h01"); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := s.Simulate(); err != nil {
			t.Fatal(err)
		}
		if s.DoneCount() != 1 {
			t.Fatalf("done=%d", s.DoneCount())
		}
		return s.Makespan()
	}
	mkComm := run(false)
	mkPtask := run(true)
	if math.Float64bits(mkComm) != math.Float64bits(mkPtask) {
		t.Fatalf("makespans differ: comm %x (%g), ptask %x (%g)",
			math.Float64bits(mkComm), mkComm, math.Float64bits(mkPtask), mkPtask)
	}
}

// TestPtaskEquivalenceChain: the compute→comm→compute pipeline and its
// ptask transliteration produce bitwise-equal task finishes end to end
// (dependency release timing flows through the same kernel path).
func TestPtaskEquivalenceChain(t *testing.T) {
	type finishes struct{ a, x, b float64 }
	run := func(parallel bool) finishes {
		s := New(starPlatform(t, 2), exactConfig())
		var a, x, b *Task
		var err error
		if parallel {
			if a, err = s.NewParallelTask("A", []float64{2e9}, [][]float64{{0}}); err != nil {
				t.Fatal(err)
			}
			if x, err = s.NewParallelTask("X", []float64{0, 0}, [][]float64{{0, 4e8}, {0, 0}}); err != nil {
				t.Fatal(err)
			}
			if b, err = s.NewParallelTask("B", []float64{2e9}, [][]float64{{0}}); err != nil {
				t.Fatal(err)
			}
			must := func(e error) {
				if e != nil {
					t.Fatal(e)
				}
			}
			must(a.ScheduleParallel([]string{"h00"}))
			must(x.ScheduleParallel([]string{"h00", "h01"}))
			must(b.ScheduleParallel([]string{"h01"}))
		} else {
			a = s.NewTask("A", 2e9)
			x = s.NewCommTask("X", 4e8)
			b = s.NewTask("B", 2e9)
			must := func(e error) {
				if e != nil {
					t.Fatal(e)
				}
			}
			must(a.Schedule("h00"))
			must(x.ScheduleComm("h00", "h01"))
			must(b.Schedule("h01"))
		}
		if err := s.AddDependency(a, x); err != nil {
			t.Fatal(err)
		}
		if err := s.AddDependency(x, b); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Simulate(); err != nil {
			t.Fatal(err)
		}
		if s.DoneCount() != 3 {
			t.Fatalf("done=%d, want 3", s.DoneCount())
		}
		return finishes{a.Finish(), x.Finish(), b.Finish()}
	}
	pair := run(false)
	ptask := run(true)
	for _, c := range []struct {
		name       string
		pair, want float64
	}{{"A", ptask.a, pair.a}, {"X", ptask.x, pair.x}, {"B", ptask.b, pair.b}} {
		if math.Float64bits(c.pair) != math.Float64bits(c.want) {
			t.Errorf("%s finish differs: ptask %g, pair %g", c.name, c.pair, c.want)
		}
	}
	// Closed form: A [0,2] on h00 (1 Gflop/s), X [2,6] over the 1e8 B/s
	// links, B [6,7] on h01 (2 Gflop/s).
	if !near(ptask.b, 7) {
		t.Errorf("chain makespan = %g, want 7", ptask.b)
	}
}

// TestPtaskFailureCascade: a member host dying mid-ptask fails the
// whole coupled activity with ErrHostFailed and cancels its dependents.
func TestPtaskFailureCascade(t *testing.T) {
	s := New(starPlatform(t, 2), exactConfig())
	p, err := s.NewParallelTask("P", []float64{4e9, 4e9}, [][]float64{{0, 0}, {0, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.ScheduleParallel([]string{"h00", "h01"}); err != nil {
		t.Fatal(err)
	}
	c := s.NewTask("C", 1e9)
	if err := c.Schedule("h00"); err != nil {
		t.Fatal(err)
	}
	if err := s.AddDependency(p, c); err != nil {
		t.Fatal(err)
	}
	s.Engine().After(1, func() {
		if err := s.Model().FailHost("h01"); err != nil {
			t.Error(err)
		}
	})
	if _, err := s.Simulate(); err != nil {
		t.Fatal(err)
	}
	if p.State() != Failed || !errors.Is(p.Err(), ErrHostFailed) {
		t.Fatalf("P state=%s err=%v, want Failed/ErrHostFailed", p.State(), p.Err())
	}
	if c.State() != Failed || !errors.Is(c.Err(), ErrDependencyFailed) {
		t.Fatalf("C state=%s err=%v, want Failed/ErrDependencyFailed", c.State(), c.Err())
	}
	if s.DoneCount() != 0 || s.FailedCount() != 2 {
		t.Fatalf("done=%d failed=%d, want 0/2", s.DoneCount(), s.FailedCount())
	}
}

// TestPtaskReschedule: under the reschedule policy the diverted ptask is
// re-placed on surviving hosts and the DAG completes with no failures.
func TestPtaskReschedule(t *testing.T) {
	s := New(starPlatform(t, 3), exactConfig())
	s.SetReschedulePolicy([]string{"h00", "h01", "h02"})
	p, err := s.NewParallelTask("P", []float64{4e9, 4e9}, [][]float64{{0, 0}, {0, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.ScheduleParallel([]string{"h00", "h01"}); err != nil {
		t.Fatal(err)
	}
	c := s.NewTask("C", 1e9)
	if err := s.AddDependency(p, c); err != nil {
		t.Fatal(err)
	}
	if err := c.Schedule("h00"); err != nil {
		t.Fatal(err)
	}
	s.Engine().After(1, func() {
		if err := s.Model().FailHost("h01"); err != nil {
			t.Error(err)
		}
	})
	if _, err := s.Simulate(); err != nil {
		t.Fatal(err)
	}
	if s.FailedCount() != 0 || s.DoneCount() != 2 {
		t.Fatalf("done=%d failed=%d (P err: %v), want 2/0", s.DoneCount(), s.FailedCount(), p.Err())
	}
	if s.Reschedules() == 0 {
		t.Error("expected at least one reschedule")
	}
	for _, h := range p.ParallelHosts() {
		if h == "h01" {
			t.Fatalf("P re-placed onto the dead host: %v", p.ParallelHosts())
		}
	}
}

// TestPtaskUnplaceable: a ptask needing more distinct hosts than the
// policy has left fails with ErrUnplaceable without collapsing the rest
// of the pass.
func TestPtaskUnplaceable(t *testing.T) {
	s := New(starPlatform(t, 3), exactConfig())
	s.SetReschedulePolicy([]string{"h00", "h01", "h02"})
	p, err := s.NewParallelTask("P", []float64{4e9, 4e9, 4e9},
		[][]float64{{0, 0, 0}, {0, 0, 0}, {0, 0, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.ScheduleParallel([]string{"h00", "h01", "h02"}); err != nil {
		t.Fatal(err)
	}
	q := s.NewTask("Q", 8e9) // independent survivor
	if err := q.Schedule("h00"); err != nil {
		t.Fatal(err)
	}
	s.Engine().After(1, func() {
		for _, h := range []string{"h01", "h02"} {
			if err := s.Model().FailHost(h); err != nil {
				t.Error(err)
			}
		}
	})
	if _, err := s.Simulate(); err != nil {
		t.Fatal(err)
	}
	if p.State() != Failed || !errors.Is(p.Err(), ErrUnplaceable) {
		t.Fatalf("P state=%s err=%v, want Failed/ErrUnplaceable", p.State(), p.Err())
	}
	if q.State() != Done {
		t.Fatalf("Q state=%s err=%v, want Done", q.State(), q.Err())
	}
}

// TestPtaskUnderListSchedulers: ptasks flow through both list
// schedulers' pre-pass and complete alongside computes and comms.
func TestPtaskUnderListSchedulers(t *testing.T) {
	for _, sched := range []struct {
		name string
		fn   func(*Simulation, []string) error
	}{{"minmin", ScheduleMinMin}, {"rr", ScheduleRoundRobin}, {"heft", ScheduleHEFT}} {
		t.Run(sched.name, func(t *testing.T) {
			s := New(starPlatform(t, 4), exactConfig())
			cfg := DefaultRandomConfig(4, 6, 11)
			cfg.PtaskProb = 0.3
			cfg.PtaskSlots = 2
			tasks, err := RandomLayered(s, cfg)
			if err != nil {
				t.Fatal(err)
			}
			nPtask := 0
			for _, tk := range tasks {
				if tk.Kind() == Parallel {
					nPtask++
				}
			}
			if nPtask == 0 {
				t.Fatal("seed drew no ptasks; pick another seed")
			}
			hosts := []string{"h00", "h01", "h02", "h03"}
			if err := sched.fn(s, hosts); err != nil {
				t.Fatal(err)
			}
			if _, err := s.Simulate(); err != nil {
				t.Fatal(err)
			}
			if s.FailedCount() != 0 || s.DoneCount() != len(tasks) {
				t.Fatalf("done=%d/%d failed=%d", s.DoneCount(), len(tasks), s.FailedCount())
			}
			if g := s.Engine().Spawned(); g != 0 {
				t.Fatalf("%d goroutines spawned, want 0", g)
			}
		})
	}
}
