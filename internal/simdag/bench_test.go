// SimDag scaling benchmarks: the zero-goroutine claim quantified. The
// chain workload mirrors BenchmarkMSGScaling's pair workload — many
// disjoint host pairs, alternating compute and transfer — so ns/task
// here is directly comparable to ns/activity there, minus the process
// goroutines, channel handoffs and mailbox bookkeeping the DAG path
// never pays.
package simdag

import (
	"fmt"
	"testing"

	"repro/internal/platform"
	"repro/internal/surf"
)

// chainPlatform builds nChains disjoint host pairs with a dedicated,
// slightly staggered link each (one connected component per chain, the
// same shape as msgScalingPlatform).
func chainPlatform(b *testing.B, nChains int) *platform.Platform {
	b.Helper()
	pf := platform.New()
	for i := 0; i < nChains; i++ {
		src, dst := fmt.Sprintf("s%d", i), fmt.Sprintf("r%d", i)
		if err := pf.AddHost(&platform.Host{Name: src, Power: 1e9}); err != nil {
			b.Fatal(err)
		}
		if err := pf.AddHost(&platform.Host{Name: dst, Power: 1e9}); err != nil {
			b.Fatal(err)
		}
		l := &platform.Link{
			Name:      fmt.Sprintf("l%d", i),
			Bandwidth: 1e8 * (1 + 0.15*float64(i%7)),
			Latency:   1e-4 * (1 + float64(i%5)),
		}
		if err := pf.AddRoute(src, dst, []*platform.Link{l}); err != nil {
			b.Fatal(err)
		}
	}
	return pf
}

// buildChains populates the simulation with nChains independent
// compute→comm→compute→… chains and returns the total task count.
func buildChains(b *testing.B, s *Simulation, nChains, rounds int) int {
	b.Helper()
	n := 0
	for i := 0; i < nChains; i++ {
		src, dst := fmt.Sprintf("s%d", i), fmt.Sprintf("r%d", i)
		bytes := 1e5 * (1 + float64(i%9))
		flops := 1e6 * (1 + float64(i%4))
		var prev *Task
		for r := 0; r < rounds; r++ {
			c := s.NewTask(fmt.Sprintf("c%d_%d", i, r), flops)
			if err := c.Schedule(src); err != nil {
				b.Fatal(err)
			}
			x := s.NewCommTask(fmt.Sprintf("x%d_%d", i, r), bytes)
			if err := x.ScheduleComm(src, dst); err != nil {
				b.Fatal(err)
			}
			if prev != nil {
				if err := s.AddDependency(prev, c); err != nil {
					b.Fatal(err)
				}
			}
			if err := s.AddDependency(c, x); err != nil {
				b.Fatal(err)
			}
			prev = x
			n += 2
		}
	}
	return n
}

// BenchmarkSimDagScaling runs up to 100k DAG tasks through the kernel
// with zero process goroutines; flat ns/task across scales shows the
// per-task cost is independent of the DAG size, and the absolute value
// is the per-activity cost of the stack without the process layer
// (acceptance: within 2× of BenchmarkMSGScaling's ns/activity — in
// practice it is lower).
func BenchmarkSimDagScaling(b *testing.B) {
	cases := []struct {
		name   string
		chains int
		rounds int
	}{
		{"tasks-1k", 50, 10},
		{"tasks-10k", 500, 10},
		{"tasks-100k", 5000, 10},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			pf := chainPlatform(b, c.chains)
			tasks := 0
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s := New(pf, surf.DefaultConfig())
				tasks = buildChains(b, s, c.chains, c.rounds)
				if _, err := s.Simulate(); err != nil {
					b.Fatal(err)
				}
				if s.DoneCount() != tasks {
					b.Fatalf("only %d/%d tasks done", s.DoneCount(), tasks)
				}
				if g := s.Engine().Spawned(); g != 0 {
					b.Fatalf("%d process goroutines spawned, want 0", g)
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*tasks), "ns/task")
		})
	}
}

// BenchmarkSimDagRandom exercises the generator + min-min + shared
// Waxman platform path end-to-end (contended components, route cache).
func BenchmarkSimDagRandom(b *testing.B) {
	pf, err := platform.GenerateWaxman(platform.DefaultWaxmanConfig(16, 7))
	if err != nil {
		b.Fatal(err)
	}
	var hosts []string
	for _, h := range pf.Hosts() {
		hosts = append(hosts, h.Name)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := New(pf, surf.DefaultConfig())
		tasks, err := RandomLayered(s, DefaultRandomConfig(12, 50, 99))
		if err != nil {
			b.Fatal(err)
		}
		if err := ScheduleMinMin(s, hosts); err != nil {
			b.Fatal(err)
		}
		if _, err := s.Simulate(); err != nil {
			b.Fatal(err)
		}
		if s.DoneCount() != len(tasks) {
			b.Fatalf("only %d/%d tasks done", s.DoneCount(), len(tasks))
		}
	}
}
