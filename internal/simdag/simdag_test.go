package simdag

import (
	"errors"
	"math"
	"strings"
	"testing"

	"repro/internal/platform"
	"repro/internal/surf"
	"repro/internal/trace"
)

// exactConfig removes the CM02 calibration factors so test expectations
// are closed-form: full nominal bandwidth, no RTT weighting or window
// bound.
func exactConfig() surf.Config {
	return surf.Config{BandwidthFactor: 1, LatencyFactor: 1, TCPGamma: 0, WeightByRTT: false}
}

// starPlatform builds n hosts ("h0"…) around a router, each behind a
// dedicated 1e8 B/s zero-latency link, with power 1e9·(1+i%3).
func starPlatform(t testing.TB, n int) *platform.Platform {
	t.Helper()
	pf := platform.New()
	if err := pf.AddRouter("sw"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		name := hostName(i)
		if err := pf.AddHost(&platform.Host{Name: name, Power: 1e9 * float64(1+i%3)}); err != nil {
			t.Fatal(err)
		}
		if err := pf.Connect(name, "sw", &platform.Link{
			Name: "lan-" + name, Bandwidth: 1e8, Latency: 0}); err != nil {
			t.Fatal(err)
		}
	}
	if err := pf.ComputeRoutes(); err != nil {
		t.Fatal(err)
	}
	return pf
}

func hostName(i int) string {
	return "h" + string(rune('0'+i/10)) + string(rune('0'+i%10))
}

func near(a, b float64) bool { return math.Abs(a-b) <= 1e-9*(1+math.Abs(b)) }

// TestDiamond runs the canonical diamond (A → B,C → D) with a data
// transfer on one branch and checks states, timing and makespan.
func TestDiamond(t *testing.T) {
	s := New(starPlatform(t, 2), exactConfig())
	a := s.NewTask("A", 1e9) // 1 s on h00
	b := s.NewTask("B", 2e9) // 2 s on h00
	c := s.NewTask("C", 2e9) // 1 s on h01 (2 Gflop/s)
	d := s.NewTask("D", 1e9)
	xfer := s.NewCommTask("A->C", 1e8) // 1 s across the two 1e8 links
	for _, dep := range [][2]*Task{{a, b}, {a, xfer}, {xfer, c}, {b, d}, {c, d}} {
		if err := s.AddDependency(dep[0], dep[1]); err != nil {
			t.Fatal(err)
		}
	}
	for task, host := range map[*Task]string{a: "h00", b: "h00", d: "h00"} {
		if err := task.Schedule(host); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Schedule("h01"); err != nil {
		t.Fatal(err)
	}
	if err := xfer.ScheduleComm("h00", "h01"); err != nil {
		t.Fatal(err)
	}

	hits, err := s.Simulate()
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	if len(hits) != 0 {
		t.Errorf("unwatched run returned %d watch hits", len(hits))
	}
	for _, task := range s.Tasks() {
		if task.State() != Done {
			t.Errorf("task %s ended %s, want done", task.Name(), task.State())
		}
	}
	// A: [0,1]; B: [1,3]; xfer: [1,2]; C: [2,3]; D: [3,4].
	if !near(a.Finish(), 1) || !near(xfer.Finish(), 2) || !near(c.Finish(), 3) || !near(b.Finish(), 3) {
		t.Errorf("finishes A=%g xfer=%g B=%g C=%g", a.Finish(), xfer.Finish(), b.Finish(), c.Finish())
	}
	if !near(d.Start(), 3) || !near(d.Finish(), 4) || !near(s.Makespan(), 4) {
		t.Errorf("D ran [%g,%g], makespan %g; want [3,4], 4", d.Start(), d.Finish(), s.Makespan())
	}
	if s.DoneCount() != 5 || s.FailedCount() != 0 {
		t.Errorf("done=%d failed=%d, want 5/0", s.DoneCount(), s.FailedCount())
	}
	if g := s.Engine().Spawned(); g != 0 {
		t.Errorf("%d process goroutines spawned, want 0", g)
	}
}

// TestSeqChainCollapses checks that chains of zero-work sync tasks
// complete within a single instant and release through them.
func TestSeqChainCollapses(t *testing.T) {
	s := New(starPlatform(t, 1), exactConfig())
	a := s.NewTask("A", 1e9)
	var chain []*Task
	prev := a
	for i := 0; i < 10; i++ {
		sq := s.NewSeqTask("sync")
		if err := s.AddDependency(prev, sq); err != nil {
			t.Fatal(err)
		}
		chain = append(chain, sq)
		prev = sq
	}
	b := s.NewTask("B", 1e9)
	if err := s.AddDependency(prev, b); err != nil {
		t.Fatal(err)
	}
	if err := a.Schedule("h00"); err != nil {
		t.Fatal(err)
	}
	if err := b.Schedule("h00"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Simulate(); err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	for _, sq := range chain {
		if sq.State() != Done || !near(sq.Finish(), 1) {
			t.Fatalf("seq task ended %s at %g, want done at 1", sq.State(), sq.Finish())
		}
	}
	if !near(b.Start(), 1) || !near(b.Finish(), 2) {
		t.Errorf("B ran [%g,%g], want [1,2]", b.Start(), b.Finish())
	}
}

// TestWatchPointStopsAndResumes pins the watch-point contract.
func TestWatchPointStopsAndResumes(t *testing.T) {
	s := New(starPlatform(t, 1), exactConfig())
	a := s.NewTask("A", 1e9)
	b := s.NewTask("B", 1e9)
	if err := s.AddDependency(a, b); err != nil {
		t.Fatal(err)
	}
	if err := a.Schedule("h00"); err != nil {
		t.Fatal(err)
	}
	a.Watch()

	hits, err := s.Simulate()
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	if len(hits) != 1 || hits[0] != a {
		t.Fatalf("watch hits %v, want [A]", hits)
	}
	if b.State() != NotScheduled {
		t.Fatalf("B is %s before being scheduled, want not-scheduled", b.State())
	}
	// The scheduler reacts to the watch point: place B now.
	if err := b.Schedule("h00"); err != nil {
		t.Fatal(err)
	}
	hits, err = s.Simulate()
	if err != nil {
		t.Fatalf("resumed Simulate: %v", err)
	}
	if len(hits) != 0 {
		t.Errorf("resume returned hits %v, want none", hits)
	}
	if b.State() != Done || !near(b.Finish(), 2) {
		t.Errorf("B ended %s at %g, want done at 2", b.State(), b.Finish())
	}
}

// TestWatchPointInPreRunDrain: a watch point that fires in Simulate's
// synchronous pre-run drain (a watched root Seq task completes before
// the drive loop even starts) must still stop the run — regression
// test for the stop request being cleared by RunUntilIdle's entry
// reset.
func TestWatchPointInPreRunDrain(t *testing.T) {
	s := New(starPlatform(t, 1), exactConfig())
	root := s.NewSeqTask("root")
	root.Watch()
	b := s.NewTask("B", 1e9)
	if err := s.AddDependency(root, b); err != nil {
		t.Fatal(err)
	}
	if err := b.Schedule("h00"); err != nil {
		t.Fatal(err)
	}
	hits, err := s.Simulate()
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	if len(hits) != 1 || hits[0] != root {
		t.Fatalf("watch hits %v, want [root]", hits)
	}
	if b.State() == Done {
		t.Fatal("B ran to completion: the pre-run watch point did not stop the run")
	}
	if _, err := s.Simulate(); err != nil {
		t.Fatalf("resumed Simulate: %v", err)
	}
	if b.State() != Done {
		t.Errorf("B ended %s after resume, want done", b.State())
	}
}

// TestFailurePropagation fails a running task's host programmatically
// and checks the dependents are cancelled while an independent branch
// completes.
func TestFailurePropagation(t *testing.T) {
	s := New(starPlatform(t, 2), exactConfig())
	doomed := s.NewTask("doomed", 4e9)
	child := s.NewTask("child", 1e9)
	grandchild := s.NewTask("grandchild", 1e9)
	bystander := s.NewTask("bystander", 1e9)
	if err := s.AddDependency(doomed, child); err != nil {
		t.Fatal(err)
	}
	if err := s.AddDependency(child, grandchild); err != nil {
		t.Fatal(err)
	}
	for task, host := range map[*Task]string{doomed: "h00", child: "h00", grandchild: "h00", bystander: "h01"} {
		if err := task.Schedule(host); err != nil {
			t.Fatal(err)
		}
	}
	s.Engine().At(1, func() {
		if err := s.Model().FailHost("h00"); err != nil {
			t.Error(err)
		}
	})
	if _, err := s.Simulate(); err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	if doomed.State() != Failed || !errors.Is(doomed.Err(), ErrHostFailed) {
		t.Errorf("doomed ended %s (%v), want failed (host failure)", doomed.State(), doomed.Err())
	}
	for _, task := range []*Task{child, grandchild} {
		if task.State() != Failed || !errors.Is(task.Err(), ErrDependencyFailed) {
			t.Errorf("%s ended %s (%v), want cancelled", task.Name(), task.State(), task.Err())
		}
	}
	if bystander.State() != Done {
		t.Errorf("bystander ended %s, want done (independent branch must survive)", bystander.State())
	}
	if s.FailedCount() != 3 || s.DoneCount() != 1 {
		t.Errorf("done=%d failed=%d, want 1/3", s.DoneCount(), s.FailedCount())
	}
}

// TestVolatilityFailsDAGTasks drives the same failure through a state
// trace ("down" event mid-run), covering the iterative trace re-arm
// path together with the DAG cancellation cascade, and checks the host
// coming back up lets a freshly scheduled task run.
func TestVolatilityFailsDAGTasks(t *testing.T) {
	pf := platform.New()
	st, err := trace.ParseString("updown", "0.5 0\n2.0 1\n")
	if err != nil {
		t.Fatal(err)
	}
	if err := pf.AddHost(&platform.Host{Name: "volatile", Power: 1e9, StateTrace: st}); err != nil {
		t.Fatal(err)
	}
	s := New(pf, exactConfig())
	longRun := s.NewTask("long-run", 2e9) // needs 2 s, dies at 0.5
	dependent := s.NewTask("dependent", 1e9)
	if err := s.AddDependency(longRun, dependent); err != nil {
		t.Fatal(err)
	}
	if err := longRun.Schedule("volatile"); err != nil {
		t.Fatal(err)
	}
	if err := dependent.Schedule("volatile"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Simulate(); err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	if longRun.State() != Failed || !errors.Is(longRun.Err(), ErrHostFailed) {
		t.Fatalf("long-run ended %s (%v), want failed with host failure", longRun.State(), longRun.Err())
	}
	if !near(longRun.Finish(), 0.5) {
		t.Errorf("long-run failed at %g, want 0.5 (trace down event)", longRun.Finish())
	}
	if dependent.State() != Failed || !errors.Is(dependent.Err(), ErrDependencyFailed) {
		t.Errorf("dependent ended %s (%v), want cancelled", dependent.State(), dependent.Err())
	}

	// The trace brings the host back at t=2: a retry scheduled after the
	// failure runs to completion.
	retry := s.NewTask("retry", 1e9)
	if err := retry.Schedule("volatile"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Simulate(); err != nil {
		t.Fatalf("retry Simulate: %v", err)
	}
	if retry.State() != Done {
		t.Fatalf("retry ended %s (%v), want done after the host recovered", retry.State(), retry.Err())
	}
	if retry.Finish() < 2 {
		t.Errorf("retry finished at %g, before the host came back at 2", retry.Finish())
	}
}

// TestCycleDetection rejects cyclic graphs.
func TestCycleDetection(t *testing.T) {
	s := New(starPlatform(t, 1), exactConfig())
	a := s.NewTask("A", 1)
	b := s.NewTask("B", 1)
	c := s.NewTask("C", 1)
	for _, dep := range [][2]*Task{{a, b}, {b, c}, {c, a}} {
		if err := s.AddDependency(dep[0], dep[1]); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Simulate(); !errors.Is(err, ErrCycle) {
		t.Fatalf("Simulate on a cycle returned %v, want ErrCycle", err)
	}
}

// TestAPIErrors covers the state-machine guard rails.
func TestAPIErrors(t *testing.T) {
	s := New(starPlatform(t, 1), exactConfig())
	a := s.NewTask("A", 1)
	if err := a.Schedule("nope"); err == nil || !strings.Contains(err.Error(), "unknown host") {
		t.Errorf("Schedule on unknown host: %v", err)
	}
	if err := a.ScheduleComm("h00", "h00"); err == nil {
		t.Error("ScheduleComm on a compute task succeeded")
	}
	if err := s.AddDependency(a, a); err == nil {
		t.Error("self-dependency accepted")
	}
	b := s.NewTask("B", 1)
	if err := s.AddDependency(a, b); err != nil {
		t.Fatal(err)
	}
	if err := s.AddDependency(a, b); !errors.Is(err, ErrDuplicate) {
		t.Errorf("duplicate dependency returned %v, want ErrDuplicate", err)
	}
	if err := a.Schedule("h00"); err != nil {
		t.Fatal(err)
	}
	if err := b.Schedule("h00"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Simulate(); err != nil {
		t.Fatal(err)
	}
	if err := a.Schedule("h00"); !errors.Is(err, ErrBadState) {
		t.Errorf("Schedule on a done task returned %v, want ErrBadState", err)
	}
	c := s.NewTask("C", 1)
	// Depending on an already-done task is vacuously satisfied.
	if err := s.AddDependency(a, c); err != nil {
		t.Errorf("dependency on done task: %v", err)
	}
	if err := c.Schedule("h00"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Simulate(); err != nil {
		t.Fatal(err)
	}
	if c.State() != Done {
		t.Errorf("C ended %s, want done", c.State())
	}
}

// TestUnplacedTasksStayPut: a run with an unscheduled tail is not an
// error; the tail simply does not execute.
func TestUnplacedTasksStayPut(t *testing.T) {
	s := New(starPlatform(t, 1), exactConfig())
	a := s.NewTask("A", 1e9)
	b := s.NewTask("B", 1e9) // never scheduled
	if err := s.AddDependency(a, b); err != nil {
		t.Fatal(err)
	}
	if err := a.Schedule("h00"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Simulate(); err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	if a.State() != Done || b.State() != NotScheduled {
		t.Errorf("states A=%s B=%s, want done/not-scheduled", a.State(), b.State())
	}
}

// TestLocalCommIsFree: a comm task between identical endpoints
// completes without consuming network time.
func TestLocalCommIsFree(t *testing.T) {
	s := New(starPlatform(t, 1), exactConfig())
	c := s.NewCommTask("local", 1e9)
	if err := c.ScheduleComm("h00", "h00"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Simulate(); err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	if c.State() != Done || !near(c.Finish(), 0) {
		t.Errorf("local comm ended %s at %g, want done at 0", c.State(), c.Finish())
	}
}
