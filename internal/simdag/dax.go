// Pegasus DAX workflow loader: the XML interchange format of the
// Pegasus workflow system ("abstract DAG"), the standard input of the
// workflow-scheduling literature SimDag targets. Jobs become compute
// tasks (runtime is expressed in seconds on a reference machine and is
// converted to flops), and every file produced by one job and consumed
// by another becomes an end-to-end communication task wired between
// them. Synthetic zero-work "root" and "end" synchronization tasks
// bracket the workflow, so the DAG always has a single entry and exit.

package simdag

import (
	"encoding/xml"
	"errors"
	"fmt"
	"io"
	"strings"
)

// DAXReferenceFlops converts Pegasus job runtimes (seconds on the
// reference machine) to flops: Pegasus assumes a 4.2 Gflop/s machine,
// the same constant SimGrid's DAX loader uses.
const DAXReferenceFlops = 4.2e9

type daxAdag struct {
	Name     string     `xml:"name,attr"`
	Jobs     []daxJob   `xml:"job"`
	Children []daxChild `xml:"child"`
}

type daxJob struct {
	ID      string    `xml:"id,attr"`
	Name    string    `xml:"name,attr"`
	Runtime float64   `xml:"runtime,attr"`
	Uses    []daxUses `xml:"uses"`
}

type daxUses struct {
	File string  `xml:"file,attr"`
	Link string  `xml:"link,attr"`
	Size float64 `xml:"size,attr"`
}

type daxChild struct {
	Ref     string `xml:"ref,attr"`
	Parents []struct {
		Ref string `xml:"ref,attr"`
	} `xml:"parent"`
}

// LoadDAX parses a Pegasus DAX document and instantiates its workflow
// in the simulation: one compute task per job (flops = runtime ×
// DAXReferenceFlops), one comm task per produced-then-consumed file,
// control dependencies from the <child>/<parent> declarations, and
// Seq tasks "root"/"end" wired to the workflow's sources and sinks.
// Every task is returned NotScheduled (comm tasks get their endpoints
// from the scheduler once the computes are placed).
func LoadDAX(s *Simulation, r io.Reader) ([]*Task, error) {
	var doc daxAdag
	if err := xml.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("simdag: bad DAX: %w", err)
	}
	if len(doc.Jobs) == 0 {
		return nil, fmt.Errorf("simdag: DAX %q declares no jobs", doc.Name)
	}

	byID := make(map[string]*Task, len(doc.Jobs))
	var tasks []*Task
	// producers[file] is the job producing the file; sizes[file] its
	// declared size (the producer's declaration wins over consumers').
	producers := make(map[string]*daxJob)
	producerTask := make(map[string]*Task)
	sizes := make(map[string]float64)
	for i := range doc.Jobs {
		j := &doc.Jobs[i]
		if j.ID == "" {
			return nil, fmt.Errorf("simdag: DAX job #%d has no id", i)
		}
		if byID[j.ID] != nil {
			return nil, fmt.Errorf("simdag: duplicate DAX job id %q", j.ID)
		}
		name := j.ID
		if j.Name != "" {
			name = j.Name + "_" + j.ID
		}
		t := s.NewTask(name, j.Runtime*DAXReferenceFlops)
		byID[j.ID] = t
		tasks = append(tasks, t)
		for _, u := range j.Uses {
			if strings.EqualFold(u.Link, "output") {
				if _, dup := producers[u.File]; !dup {
					producers[u.File] = j
					producerTask[u.File] = t
					sizes[u.File] = u.Size
				}
			} else if _, known := sizes[u.File]; !known {
				sizes[u.File] = u.Size
			}
		}
	}

	// File transfers: producer → comm(file) → consumer.
	for i := range doc.Jobs {
		j := &doc.Jobs[i]
		consumer := byID[j.ID]
		for _, u := range j.Uses {
			if !strings.EqualFold(u.Link, "input") {
				continue
			}
			prod := producerTask[u.File]
			if prod == nil || prod == consumer {
				continue // stage-in file (no producer in this DAG)
			}
			c := s.NewCommTask(u.File+" "+producers[u.File].ID+"->"+j.ID, sizes[u.File])
			tasks = append(tasks, c)
			if err := s.AddDependency(prod, c); err != nil {
				return nil, err
			}
			if err := s.AddDependency(c, consumer); err != nil {
				return nil, err
			}
		}
	}

	// Control dependencies.
	for _, ch := range doc.Children {
		child := byID[ch.Ref]
		if child == nil {
			return nil, fmt.Errorf("simdag: DAX child ref %q unknown", ch.Ref)
		}
		for _, par := range ch.Parents {
			parent := byID[par.Ref]
			if parent == nil {
				return nil, fmt.Errorf("simdag: DAX parent ref %q unknown", par.Ref)
			}
			if err := s.AddDependency(parent, child); err != nil && !errors.Is(err, ErrDuplicate) {
				return nil, err
			}
		}
	}

	// Bracket the workflow with zero-work synchronization tasks.
	root := s.NewSeqTask("root")
	end := s.NewSeqTask("end")
	for _, t := range tasks {
		if !t.hasPreds() {
			if err := s.AddDependency(root, t); err != nil {
				return nil, err
			}
		}
		if !t.hasSuccs() {
			if err := s.AddDependency(t, end); err != nil {
				return nil, err
			}
		}
	}
	return append(tasks, root, end), nil
}
