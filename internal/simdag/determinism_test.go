// Determinism guarantees for the kernel-driven DAG path: a seeded
// workflow produces a bit-identical task-event order on every run, and
// the batched same-instant release sweep cannot be told apart from the
// sequential per-completion path (mirroring the MSG-level
// TestLockstepBatchedEquivalence).
package simdag

import (
	"fmt"
	"testing"

	"repro/internal/platform"
	"repro/internal/surf"
)

// runSeededDAG generates a seeded random workflow on a seeded Waxman
// platform, schedules it with min-min, runs it, and returns the
// state-transition log.
func runSeededDAG(t *testing.T, seed int64, cfg surf.Config) []string {
	t.Helper()
	pf, err := platform.GenerateWaxman(platform.DefaultWaxmanConfig(8, seed))
	if err != nil {
		t.Fatal(err)
	}
	s := New(pf, cfg)
	var log []string
	s.OnTaskStateChange = func(task *Task) {
		log = append(log, fmt.Sprintf("%.9e %s %s", s.Now(), task.Name(), task.State()))
	}
	if _, err := RandomLayered(s, DefaultRandomConfig(6, 25, seed+1)); err != nil {
		t.Fatal(err)
	}
	var hosts []string
	for _, h := range pf.Hosts() {
		hosts = append(hosts, h.Name)
	}
	if err := ScheduleMinMin(s, hosts); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Simulate(); err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	if s.FailedCount() != 0 {
		t.Fatalf("%d tasks failed", s.FailedCount())
	}
	for _, task := range s.Tasks() {
		if task.State() != Done {
			t.Fatalf("task %s ended %s", task.Name(), task.State())
		}
	}
	if g := s.Engine().Spawned(); g != 0 {
		t.Fatalf("%d goroutines spawned, want 0", g)
	}
	return log
}

// TestSimDagDeterminism is run 5× by CI (-count=5): any nondeterminism
// in the release sweep, the completion batching or the scheduler shows
// up as a diverging event log.
func TestSimDagDeterminism(t *testing.T) {
	const seed = 4242
	ref := runSeededDAG(t, seed, surf.DefaultConfig())
	if len(ref) == 0 {
		t.Fatal("empty event log")
	}
	for run := 1; run <= 2; run++ {
		got := runSeededDAG(t, seed, surf.DefaultConfig())
		diffLogs(t, ref, got, "rerun")
	}
}

// TestSimDagBatchedEquivalence pins that the batched completion path
// (equal-key bulk pop + one release sweep per instant) and the
// sequential per-completion path produce bit-identical event orders on
// a lock-step workload where whole layers finish at the same instant.
func TestSimDagBatchedEquivalence(t *testing.T) {
	run := func(sequential bool) []string {
		pf := platform.New()
		// 16 identical hosts: all tasks of a layer complete in lock-step.
		for i := 0; i < 16; i++ {
			if err := pf.AddHost(&platform.Host{Name: fmt.Sprintf("n%02d", i), Power: 1e9}); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 16; i++ {
			for j := i + 1; j < 16; j++ {
				l := &platform.Link{Name: fmt.Sprintf("l%d_%d", i, j), Bandwidth: 1e8, Latency: 1e-4}
				if err := pf.AddRoute(fmt.Sprintf("n%02d", i), fmt.Sprintf("n%02d", j), []*platform.Link{l}); err != nil {
					t.Fatal(err)
				}
			}
		}
		cfg := exactConfig()
		cfg.SequentialCompletions = sequential
		s := New(pf, cfg)
		var log []string
		s.OnTaskStateChange = func(task *Task) {
			log = append(log, fmt.Sprintf("%.9e %s %s", s.Now(), task.Name(), task.State()))
		}
		// 6 layers × 16 identical tasks, barriers between layers, plus
		// identical cross-host transfers: maximal same-instant batches.
		var prev []*Task
		var hosts []string
		for _, h := range pf.Hosts() {
			hosts = append(hosts, h.Name)
		}
		for l := 0; l < 6; l++ {
			var layer []*Task
			for w := 0; w < 16; w++ {
				task := s.NewTask(fmt.Sprintf("l%dt%02d", l, w), 1e9)
				if err := task.Schedule(hosts[w]); err != nil {
					t.Fatal(err)
				}
				layer = append(layer, task)
				if l == 0 {
					continue
				}
				c := s.NewCommTask(fmt.Sprintf("x%dt%02d", l, w), 1e6)
				if err := c.ScheduleComm(hosts[(w+1)%16], hosts[w]); err != nil {
					t.Fatal(err)
				}
				if err := s.AddDependency(prev[(w+1)%16], c); err != nil {
					t.Fatal(err)
				}
				if err := s.AddDependency(c, task); err != nil {
					t.Fatal(err)
				}
			}
			if l > 0 {
				barrier := s.NewSeqTask(fmt.Sprintf("barrier%d", l))
				for _, p := range prev {
					if err := s.AddDependency(p, barrier); err != nil {
						t.Fatal(err)
					}
				}
				for _, n := range layer {
					if err := s.AddDependency(barrier, n); err != nil {
						t.Fatal(err)
					}
				}
			}
			prev = layer
		}
		if _, err := s.Simulate(); err != nil {
			t.Fatalf("Simulate: %v", err)
		}
		if s.DoneCount() != len(s.Tasks()) {
			t.Fatalf("only %d/%d tasks done", s.DoneCount(), len(s.Tasks()))
		}
		return log
	}
	batched := run(false)
	sequential := run(true)
	diffLogs(t, batched, sequential, "sequential-completions")
}

func diffLogs(t *testing.T, ref, got []string, label string) {
	t.Helper()
	if len(got) != len(ref) {
		t.Fatalf("%s: %d events, reference has %d", label, len(got), len(ref))
	}
	for i := range ref {
		if got[i] != ref[i] {
			t.Fatalf("%s: event %d differs:\n  ref: %s\n  got: %s", label, i, ref[i], got[i])
		}
	}
}
