// HEFT — Heterogeneous Earliest Finish Time (Topcuoglu, Hariri, Wu,
// IEEE TPDS 2002) — as the second reference list scheduler next to
// min-min. Tasks are ranked by "upward rank" (mean execution cost plus
// the most expensive mean-cost path to an exit task) and placed, in
// decreasing rank order, on the host minimizing the earliest finish
// time under an insertion-based policy (a task may slide into an idle
// gap between two already-planned tasks).
//
// The repo's DAGs reify data movement as Comm task nodes, so the
// paper's edge weights map onto comm-task nodes: a comm node
// contributes its mean transfer estimate to ranks, and its
// placement-dependent cost (zero when producer and consumer land on
// the same host) to ready times. Cost hooks (HEFTOptions) let
// scheduling research — and the reference test, which replays the
// paper's canonical 10-task/3-processor example — substitute arbitrary
// cost tables for the default flops/power and latency+bytes/bandwidth
// estimates. Estimates only steer placement: execution always runs the
// real contention model.

package simdag

import (
	"fmt"
	"math"
	"sort"
)

// HEFTOptions customizes HEFT's cost model. Nil fields get defaults.
type HEFTOptions struct {
	// Cost estimates a compute task's execution time on a host.
	// Default: flops / host power.
	Cost func(t *Task, host string) float64
	// CommCost estimates a comm task's transfer time from the
	// producer's host src to a candidate consumer host dst. Default:
	// route latency + bytes / bottleneck bandwidth; 0 when src == dst
	// (or src is unknown).
	CommCost func(c *Task, src, dst string) float64
	// MeanCommCost is the placement-independent transfer estimate used
	// in upward ranks (the paper's c̄). Default: CommCost averaged over
	// the distinct ordered host pairs of the pool.
	MeanCommCost func(c *Task) float64
}

// PlannedTask is one entry of HEFT's placement plan: the task, its
// chosen host, and the planned (estimated) execution interval.
type PlannedTask struct {
	Task          *Task
	Host          string
	Start, Finish float64
}

// HEFTStats reports the scheduling-analysis byproducts of a HEFT pass:
// the mean-cost critical path, the DAG's per-level parallelism profile,
// and the full placement plan in scheduling (rank) order.
type HEFTStats struct {
	// CriticalPath is the largest upward rank: the mean-cost length of
	// the DAG's critical path (the paper's lower-bound yardstick).
	CriticalPath float64
	// PlannedMakespan is the latest planned finish time — HEFT's own
	// estimate, not the simulated makespan.
	PlannedMakespan float64
	// Levels counts schedulable units (computes and ptasks) per depth
	// level: Levels[0] units have no unit ancestor, and so on.
	Levels []int
	// MaxParallelism and MeanParallelism summarize Levels: the widest
	// level, and units divided by the number of levels.
	MaxParallelism  int
	MeanParallelism float64
	// Plan lists the placed units in scheduling order.
	Plan []PlannedTask

	// ranks backs RankOf without freezing a map into the public schema.
	ranks heftRanks
}

// RankOf returns a task's upward rank from the last ScheduleHEFTStats
// plan lookup table, or NaN when the task was not ranked.
func (st *HEFTStats) RankOf(t *Task) float64 {
	if st == nil || st.ranks == nil {
		return math.NaN()
	}
	if r, ok := st.ranks[t]; ok {
		return r
	}
	return math.NaN()
}

// heftRanks is the upward-rank lookup table.
type heftRanks = map[*Task]float64

// ScheduleHEFT places unscheduled compute tasks (and, via the shared
// pre-pass, ptasks) with the HEFT heuristic, then wires comm tasks
// between the placements (placeComms).
func ScheduleHEFT(s *Simulation, hosts []string) error {
	_, err := ScheduleHEFTStats(s, hosts, nil)
	return err
}

// ScheduleHEFTStats is ScheduleHEFT returning the rank/plan/parallelism
// analysis alongside.
func ScheduleHEFTStats(s *Simulation, hosts []string, opts *HEFTOptions) (*HEFTStats, error) {
	if len(hosts) == 0 {
		return nil, fmt.Errorf("simdag: no hosts to schedule on")
	}
	if err := s.checkCycles(); err != nil {
		return nil, err
	}
	for _, h := range hosts {
		if s.pf.Host(h) == nil {
			return nil, fmt.Errorf("simdag: unknown host %q", h)
		}
	}
	if err := placeParallel(s, hosts); err != nil {
		return nil, err
	}
	o := resolveHEFTOptions(s, hosts, opts)

	// Creation index: the deterministic tie-break everywhere below.
	idx := make(map[*Task]int, len(s.tasks))
	for i, t := range s.tasks {
		idx[t] = i
	}

	topo, err := topoOrder(s)
	if err != nil {
		return nil, err
	}

	// Upward ranks over the full graph, in reverse topological order:
	// rank(t) = weight(t) + max over successors rank(succ), with comm
	// nodes weighing their mean transfer estimate (the paper's
	// c̄(t,succ) folded into the reified edge node).
	ranks := make(heftRanks, len(topo))
	for i := len(topo) - 1; i >= 0; i-- {
		t := topo[i]
		best := 0.0
		for it := t.succIter(); ; {
			succ, ok := it.next()
			if !ok {
				break
			}
			if r, ok2 := ranks[succ]; ok2 && r > best {
				best = r
			}
		}
		ranks[t] = o.weight(t) + best
	}
	cp := 0.0
	for _, t := range topo {
		if ranks[t] > cp {
			cp = ranks[t]
		}
	}

	// Units: everything HEFT plans an interval for — unplaced computes
	// (to be placed), plus already-placed computes and ptasks whose
	// spans must block their hosts. Decreasing rank order; near-ties
	// (an ulp apart from equivalent mean-cost paths) fall back to
	// creation order so the walk matches the paper's.
	var units []*Task
	for _, t := range topo {
		switch t.kind {
		case Compute:
			if t.state == NotScheduled || t.state == Schedulable {
				units = append(units, t)
			}
		case Parallel:
			if t.state == Schedulable {
				units = append(units, t)
			}
		}
	}
	sort.SliceStable(units, func(i, j int) bool {
		ri, rj := ranks[units[i]], ranks[units[j]]
		if d := ri - rj; d > rankTieEps || d < -rankTieEps {
			return ri > rj
		}
		return idx[units[i]] < idx[units[j]]
	})

	p := &heftPlanner{
		s:     s,
		o:     o,
		hosts: hosts,
		slots: make(map[string][]heftSpan, len(hosts)),
		aft:   make(map[*Task]float64, len(topo)),
	}
	st := &HEFTStats{CriticalPath: cp, ranks: ranks}
	for _, t := range units {
		var pl PlannedTask
		if t.kind == Parallel {
			pl = p.placePtask(t)
		} else if t.state == Schedulable {
			// Pre-placed compute: keep the host, plan around it.
			pl = p.placeFixed(t)
		} else {
			var err error
			pl, err = p.placeCompute(t)
			if err != nil {
				return nil, err
			}
		}
		st.Plan = append(st.Plan, pl)
		if pl.Finish > st.PlannedMakespan {
			st.PlannedMakespan = pl.Finish
		}
	}
	if err := placeComms(s); err != nil {
		return nil, err
	}

	st.Levels = unitLevels(topo)
	for _, n := range st.Levels {
		if n > st.MaxParallelism {
			st.MaxParallelism = n
		}
		st.MeanParallelism += float64(n)
	}
	if len(st.Levels) > 0 {
		st.MeanParallelism /= float64(len(st.Levels))
	}
	return st, nil
}

// rankTieEps bounds the rank difference treated as a tie: equivalent
// mean-cost paths can differ by an ulp of float summation order.
const rankTieEps = 1e-9

// heftOpts is the resolved cost model (all hooks non-nil).
type heftOpts struct {
	cost     func(t *Task, host string) float64
	commCost func(c *Task, src, dst string) float64
	meanComm func(c *Task) float64
	hosts    []string
	s        *Simulation
}

// weight is a task's rank contribution: mean execution cost for
// computes, mean transfer estimate for comms, the coupled estimate for
// placed ptasks, zero for seq points.
func (o *heftOpts) weight(t *Task) float64 {
	switch t.kind {
	case Compute:
		sum := 0.0
		for _, h := range o.hosts {
			sum += o.cost(t, h)
		}
		return sum / float64(len(o.hosts))
	case Comm:
		return o.meanComm(t)
	case Parallel:
		sum := 0.0
		for _, h := range t.phosts {
			sum += o.s.pf.Host(h).Power
		}
		if sum <= 0 {
			return 0
		}
		return t.amount / sum
	default:
		return 0
	}
}

func resolveHEFTOptions(s *Simulation, hosts []string, opts *HEFTOptions) *heftOpts {
	o := &heftOpts{hosts: hosts, s: s}
	if opts != nil && opts.Cost != nil {
		o.cost = opts.Cost
	} else {
		o.cost = func(t *Task, host string) float64 {
			return t.amount / s.pf.Host(host).Power
		}
	}
	if opts != nil && opts.CommCost != nil {
		o.commCost = opts.CommCost
	} else {
		o.commCost = func(c *Task, src, dst string) float64 {
			if src == dst || src == "" || dst == "" {
				return 0
			}
			route, err := s.pf.Route(src, dst)
			if err != nil || len(route.Links) == 0 {
				return 0
			}
			return route.Latency() + c.amount/route.Bottleneck()
		}
	}
	if opts != nil && opts.MeanCommCost != nil {
		o.meanComm = opts.MeanCommCost
	} else {
		o.meanComm = func(c *Task) float64 {
			sum, n := 0.0, 0
			for i := range hosts {
				for j := range hosts {
					if i == j {
						continue
					}
					sum += o.commCost(c, hosts[i], hosts[j])
					n++
				}
			}
			if n == 0 {
				return 0
			}
			return sum / float64(n)
		}
	}
	return o
}

// topoOrder returns every non-terminal task in a topological order
// (Kahn over live in-degrees; ready queue drained in creation order).
func topoOrder(s *Simulation) ([]*Task, error) {
	order := make([]*Task, 0, len(s.tasks))
	for _, t := range s.tasks {
		if t.terminal() {
			t.indeg = -1
			continue
		}
		c := 0
		for it := t.predIter(); ; {
			p, ok := it.next()
			if !ok {
				break
			}
			if !p.terminal() {
				c++
			}
		}
		t.indeg = c
		if c == 0 {
			order = append(order, t)
		}
	}
	for i := 0; i < len(order); i++ {
		for it := order[i].succIter(); ; {
			succ, ok := it.next()
			if !ok {
				break
			}
			if succ.indeg > 0 {
				succ.indeg--
				if succ.indeg == 0 {
					order = append(order, succ)
				}
			}
		}
	}
	live := 0
	for _, t := range s.tasks {
		if !t.terminal() {
			live++
		}
	}
	if len(order) != live {
		return nil, fmt.Errorf("%w involving %d tasks", ErrCycle, live-len(order))
	}
	return order, nil
}

// unitLevels computes the per-level parallelism profile: a unit
// (compute or ptask) sits one level below its deepest unit ancestor,
// with comm and seq nodes transparent.
func unitLevels(topo []*Task) []int {
	depth := make(map[*Task]int, len(topo))
	var levels []int
	for _, t := range topo {
		d := 0 // deepest unit-ancestor level + 1, carried through comm/seq
		for it := t.predIter(); ; {
			p, ok := it.next()
			if !ok {
				break
			}
			pd := depth[p]
			switch p.kind {
			case Compute, Parallel:
				pd++
			}
			if pd > d {
				d = pd
			}
		}
		depth[t] = d
		if t.kind == Compute || t.kind == Parallel {
			for len(levels) <= d {
				levels = append(levels, 0)
			}
			levels[d]++
		}
	}
	return levels
}

// heftSpan is one planned busy interval on a host.
type heftSpan struct{ start, end float64 }

// heftPlanner carries the placement state of one HEFT pass.
type heftPlanner struct {
	s     *Simulation
	o     *heftOpts
	hosts []string
	slots map[string][]heftSpan // per-host planned intervals, sorted
	aft   map[*Task]float64     // planned (or actual) finish per task
}

// aftOf resolves a predecessor's finish estimate: terminal tasks
// report their actual finish, planned units their planned finish, seq
// points pass their deepest predecessor through, running tasks
// estimate start + weight, and comm nodes resolve to their producer
// plus the mean transfer estimate (callers that know the candidate
// host use readyOn instead for host-exact comm costs).
func (p *heftPlanner) aftOf(t *Task) float64 {
	if t.terminal() {
		return t.finish
	}
	if v, ok := p.aft[t]; ok {
		return v
	}
	v := 0.0
	switch t.kind {
	case Seq:
		for it := t.predIter(); ; {
			pr, ok := it.next()
			if !ok {
				break
			}
			if a := p.aftOf(pr); a > v {
				v = a
			}
		}
	case Comm:
		src := ""
		for it := t.predIter(); ; {
			pr, ok := it.next()
			if !ok {
				break
			}
			if a := p.aftOf(pr); a > v {
				v = a
			}
			if src == "" {
				src = placementHost(pr)
			}
		}
		if src != "" {
			v += p.o.meanComm(t)
		}
	default:
		// Unplanned compute/ptask (e.g. running): preds + own weight.
		for it := t.predIter(); ; {
			pr, ok := it.next()
			if !ok {
				break
			}
			if a := p.aftOf(pr); a > v {
				v = a
			}
		}
		if t.state == Running {
			v = t.start
		}
		v += p.o.weight(t)
	}
	p.aft[t] = v
	return v
}

// readyOn is the earliest a task's inputs can be complete on candidate
// host h: direct predecessors contribute their finish, comm
// predecessors their producer's finish plus the host-exact transfer
// cost (zero when the producer already sits on h).
func (p *heftPlanner) readyOn(t *Task, h string) float64 {
	ready := 0.0
	for it := t.predIter(); ; {
		pr, ok := it.next()
		if !ok {
			break
		}
		var v float64
		if pr.kind == Comm {
			v = 0
			src := ""
			for it2 := pr.predIter(); ; {
				pp, ok2 := it2.next()
				if !ok2 {
					break
				}
				if a := p.aftOf(pp); a > v {
					v = a
				}
				if src == "" {
					src = placementHost(pp)
				}
			}
			v += p.o.commCost(pr, src, h)
		} else {
			v = p.aftOf(pr)
		}
		if v > ready {
			ready = v
		}
	}
	return ready
}

// fit finds the earliest start ≥ ready of a length-w interval on host
// h under the insertion policy: the first idle gap (including the open
// tail) that can hold it.
func (p *heftPlanner) fit(h string, ready, w float64) float64 {
	prevEnd := 0.0
	for _, sp := range p.slots[h] {
		start := prevEnd
		if ready > start {
			start = ready
		}
		if start+w <= sp.start {
			return start
		}
		prevEnd = sp.end
	}
	if ready > prevEnd {
		return ready
	}
	return prevEnd
}

// occupy inserts [start, start+w) into h's interval list, keeping it
// sorted.
func (p *heftPlanner) occupy(h string, start, w float64) {
	spans := p.slots[h]
	i := len(spans)
	for j, sp := range spans {
		if start < sp.start {
			i = j
			break
		}
	}
	spans = append(spans, heftSpan{})
	copy(spans[i+1:], spans[i:])
	spans[i] = heftSpan{start, start + w}
	p.slots[h] = spans
}

// placeCompute commits an unplaced compute to its min-EFT host.
func (p *heftPlanner) placeCompute(t *Task) (PlannedTask, error) {
	bestEFT, bestStart := math.Inf(1), 0.0
	bestHost := ""
	for _, h := range p.hosts {
		ready := p.readyOn(t, h)
		w := p.o.cost(t, h)
		start := p.fit(h, ready, w)
		if eft := start + w; eft < bestEFT {
			bestEFT, bestStart, bestHost = eft, start, h
		}
	}
	if err := t.Schedule(bestHost); err != nil {
		return PlannedTask{}, err
	}
	p.occupy(bestHost, bestStart, bestEFT-bestStart)
	p.aft[t] = bestEFT
	return PlannedTask{Task: t, Host: bestHost, Start: bestStart, Finish: bestEFT}, nil
}

// placeFixed plans a compute whose host is already fixed (pre-placed
// before the HEFT call): same EFT machinery, one candidate.
func (p *heftPlanner) placeFixed(t *Task) PlannedTask {
	h := t.host
	ready := p.readyOn(t, h)
	w := p.o.cost(t, h)
	start := p.fit(h, ready, w)
	p.occupy(h, start, w)
	p.aft[t] = start + w
	return PlannedTask{Task: t, Host: h, Start: start, Finish: start + w}
}

// placePtask plans a (pre-placed) ptask: it must hold all its hosts
// simultaneously, so it starts at the latest of its ready time and
// every member host's planned tail (append-only — no insertion across
// k hosts), and occupies the interval on each.
func (p *heftPlanner) placePtask(t *Task) PlannedTask {
	start := p.readyOn(t, t.phosts[0])
	for _, h := range t.phosts {
		if spans := p.slots[h]; len(spans) > 0 {
			if tail := spans[len(spans)-1].end; tail > start {
				start = tail
			}
		}
	}
	w := p.o.weight(t)
	for _, h := range t.phosts {
		p.occupy(h, start, w)
	}
	p.aft[t] = start + w
	return PlannedTask{Task: t, Host: t.phosts[0], Start: start, Finish: start + w}
}
