// Opt-in failure recovery: instead of cascade-cancelling the dependents
// of a compute task whose host died, divert the task back to
// NotScheduled and re-place everything unplaced with the existing
// min-min pass over the policy's surviving hosts. The pass itself runs
// from one re-armable timer at the current instant (the same batching
// shape as the release sweep), so a host failure killing k running
// tasks costs one rescheduling pass, not k.

package simdag

import "errors"

// ErrUnplaceable marks a task failed by the reschedule policy because
// no policy host survived to take it.
var ErrUnplaceable = errors.New("simdag: no surviving host to reschedule onto")

// SetReschedulePolicy enables failure rescheduling over the given host
// pool: a compute task failing with ErrHostFailed is pulled back to
// NotScheduled and re-placed by min-min on whichever policy hosts are
// still up (with adjacent unreleased comm tasks re-derived to match),
// instead of failing and cancelling its dependents. Tasks are only
// terminally failed — with ErrUnplaceable, dependents cancelled — when
// every policy host is down at rescheduling time. Passing nil (or an
// empty slice) disables the policy. The slice is copied.
func (s *Simulation) SetReschedulePolicy(hosts []string) {
	if len(hosts) == 0 {
		s.reschedHosts = nil
		return
	}
	s.reschedHosts = append([]string(nil), hosts...)
}

// divert intercepts a would-be terminal failure: under the reschedule
// policy, a compute task (or ptask — any member host dying kills the
// whole coupled activity) killed by its host's failure goes back to
// the scheduler instead of Failed. Returns false when the failure
// should proceed terminally (policy off, wrong kind, or a non-host
// cause — comm tasks are deliberately not diverted: re-placing one
// between the same endpoints would retry the same dead link in the
// same instant).
func (s *Simulation) divert(t *Task, err error) bool {
	if len(s.reschedHosts) == 0 || (t.kind != Compute && t.kind != Parallel) || !errors.Is(err, ErrHostFailed) {
		return false
	}
	if t.action != nil {
		t.action.Release()
		t.action = nil
	}
	if t.kind == Parallel {
		t.unschedParallel()
	} else {
		t.state = NotScheduled
		t.host = ""
		t.execH = nil
	}
	t.err = nil
	s.reschedules++
	s.notify(t)
	s.armReschedule()
	return true
}

// armReschedule schedules one rescheduling pass at the current instant
// (re-arming a single timer), batching however many same-instant
// failures into one min-min run. The timer sequence makes the order
// within the instant deterministic: the resource failure fails and
// diverts its victims, then the pass re-places them, then the release
// sweep starts whatever became ready.
func (s *Simulation) armReschedule() {
	if s.reschedArmed {
		return
	}
	s.reschedArmed = true
	if s.resched == nil {
		s.resched = s.eng.At(s.eng.Now(), func() {
			s.reschedArmed = false
			s.reschedulePass()
		})
	} else {
		s.resched.Rearm(s.eng.Now())
	}
}

// reschedulePass re-places every unplaced compute on the policy's
// surviving hosts. Schedulable-but-unreleased computes stranded on a
// dead host are pulled back first, and unreleased comm tasks adjacent
// to any unplaced compute have their endpoints cleared so placeComms
// re-derives them from the new placements.
func (s *Simulation) reschedulePass() {
	up := make([]string, 0, len(s.reschedHosts))
	for _, h := range s.reschedHosts {
		if s.model.HostUp(h) {
			up = append(up, h)
		}
	}
	for _, t := range s.tasks {
		if t.kind == Compute && t.state == Schedulable && !s.model.HostUp(t.host) {
			t.state = NotScheduled
			t.host = ""
			t.execH = nil
			s.notify(t)
		}
		if t.kind == Parallel && t.state == Schedulable && s.parallelDown(t) {
			t.unschedParallel()
			s.notify(t)
		}
	}
	for _, t := range s.tasks {
		if t.kind == Comm && t.state == Schedulable && commNeighbourUnplaced(t) {
			t.state = NotScheduled
			t.src, t.dst = "", ""
			t.commH = nil
			s.notify(t)
		}
	}
	if len(up) == 0 {
		s.failUnplaceable()
		return
	}
	// A ptask needing more distinct hosts than survive is unplaceable
	// on its own; failing it here (dependents cancel through the normal
	// cascade) lets the remaining work still be re-placed below.
	for _, t := range s.tasks {
		if t.kind == Parallel && t.state == NotScheduled && len(t.pflops) > len(up) {
			s.failTerminal(t, ErrUnplaceable)
		}
	}
	if err := ScheduleMinMin(s, up); err != nil {
		s.failUnplaceable()
		return
	}
	for _, t := range s.tasks {
		if t.state == Schedulable && t.waitingOn == 0 {
			s.enqueue(t)
		}
	}
}

// commNeighbourUnplaced reports whether any compute neighbour of a comm
// task is currently unplaced (being rescheduled).
func commNeighbourUnplaced(t *Task) bool {
	for it := t.predIter(); ; {
		p, ok := it.next()
		if !ok {
			break
		}
		if (p.kind == Compute || p.kind == Parallel) && p.state == NotScheduled {
			return true
		}
	}
	for it := t.succIter(); ; {
		p, ok := it.next()
		if !ok {
			break
		}
		if (p.kind == Compute || p.kind == Parallel) && p.state == NotScheduled {
			return true
		}
	}
	return false
}

// failUnplaceable terminally fails every unplaced compute and ptask:
// the policy ran out of hosts. Their dependents cancel through the
// normal cascade; FailedCount thus reflects only genuinely unplaceable
// work.
func (s *Simulation) failUnplaceable() {
	for _, t := range s.tasks {
		if (t.kind == Compute || t.kind == Parallel) && t.state == NotScheduled {
			s.failTerminal(t, ErrUnplaceable)
		}
	}
}
