package simdag

import (
	"strings"
	"testing"
)

const sampleDAX = `<?xml version="1.0" encoding="UTF-8"?>
<adag xmlns="http://pegasus.isi.edu/schema/DAX" version="2.1" name="diamond" jobCount="4">
  <job id="ID0000001" name="preprocess" runtime="2.0">
    <uses file="f.input" link="input" size="1000000"/>
    <uses file="f.a" link="output" size="4000000"/>
    <uses file="f.b" link="output" size="2000000"/>
  </job>
  <job id="ID0000002" name="findrange" runtime="4.0">
    <uses file="f.a" link="input" size="4000000"/>
    <uses file="f.c" link="output" size="1000000"/>
  </job>
  <job id="ID0000003" name="findrange" runtime="4.0">
    <uses file="f.b" link="input" size="2000000"/>
    <uses file="f.d" link="output" size="1000000"/>
  </job>
  <job id="ID0000004" name="analyze" runtime="1.5">
    <uses file="f.c" link="input" size="1000000"/>
    <uses file="f.d" link="input" size="1000000"/>
    <uses file="f.out" link="output" size="500000"/>
  </job>
  <child ref="ID0000002"><parent ref="ID0000001"/></child>
  <child ref="ID0000003"><parent ref="ID0000001"/></child>
  <child ref="ID0000004">
    <parent ref="ID0000002"/>
    <parent ref="ID0000003"/>
  </child>
</adag>`

// TestLoadDAX parses the Pegasus diamond and runs it end-to-end under
// min-min.
func TestLoadDAX(t *testing.T) {
	s := New(starPlatform(t, 4), exactConfig())
	tasks, err := LoadDAX(s, strings.NewReader(sampleDAX))
	if err != nil {
		t.Fatalf("LoadDAX: %v", err)
	}
	// 4 jobs + 4 produced-and-consumed files (f.a, f.b, f.c, f.d) +
	// root + end.
	if len(tasks) != 10 {
		t.Fatalf("loaded %d tasks, want 10", len(tasks))
	}
	var computes, comms, seqs int
	byName := map[string]*Task{}
	for _, task := range tasks {
		byName[task.Name()] = task
		switch task.Kind() {
		case Compute:
			computes++
		case Comm:
			comms++
		case Seq:
			seqs++
		}
	}
	if computes != 4 || comms != 4 || seqs != 2 {
		t.Fatalf("got %d computes, %d comms, %d seqs; want 4/4/2", computes, comms, seqs)
	}
	pre := byName["preprocess_ID0000001"]
	if pre == nil {
		t.Fatal("job task preprocess_ID0000001 missing")
	}
	if pre.Amount() != 2.0*DAXReferenceFlops {
		t.Errorf("runtime conversion: %g flops, want %g", pre.Amount(), 2.0*DAXReferenceFlops)
	}
	// The stage-in file f.input has no producer: no comm task for it.
	for name := range byName {
		if strings.Contains(name, "f.input") {
			t.Errorf("stage-in file got a transfer task %q", name)
		}
	}

	var hosts []string
	for _, h := range s.Platform().Hosts() {
		hosts = append(hosts, h.Name)
	}
	if err := ScheduleMinMin(s, hosts); err != nil {
		t.Fatalf("ScheduleMinMin: %v", err)
	}
	if _, err := s.Simulate(); err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	if s.DoneCount() != len(tasks) {
		t.Fatalf("only %d/%d tasks done", s.DoneCount(), len(tasks))
	}
	// Dependency order must hold through the transfers.
	analyze := byName["analyze_ID0000004"]
	fr2 := byName["findrange_ID0000002"]
	if analyze.Start() < fr2.Finish() {
		t.Errorf("analyze started at %g before findrange finished at %g", analyze.Start(), fr2.Finish())
	}
	if byName["root"].Finish() != 0 {
		t.Errorf("root seq finished at %g, want 0", byName["root"].Finish())
	}
	if end := byName["end"]; !near(end.Finish(), s.Makespan()) {
		t.Errorf("end seq finished at %g, makespan %g", end.Finish(), s.Makespan())
	}
}

const sampleDOT = `/* layered workflow */
digraph G {
  node [shape=box];
  root   [size="0"];
  work1  [size="4e9"];
  work2  [size="4e9"];
  merge  [size="1e9"];
  root -> work1;          // control only
  root -> work2
  work1 -> merge [size="8e7"];
  work2 -> merge [size="8e7"];
  # repeated edge must be tolerated
  root -> work1;
}`

// TestLoadDOT parses the DOT subset and runs it.
func TestLoadDOT(t *testing.T) {
	s := New(starPlatform(t, 2), exactConfig())
	tasks, err := LoadDOT(s, strings.NewReader(sampleDOT))
	if err != nil {
		t.Fatalf("LoadDOT: %v", err)
	}
	// 4 nodes + 2 sized edges.
	if len(tasks) != 6 {
		t.Fatalf("loaded %d tasks, want 6", len(tasks))
	}
	byName := map[string]*Task{}
	for _, task := range tasks {
		byName[task.Name()] = task
	}
	if w := byName["work2"]; w == nil || w.Amount() != 4e9 || w.Kind() != Compute {
		t.Fatalf("work2 parsed wrong: %+v", w)
	}
	if c := byName["work1->merge"]; c == nil || c.Kind() != Comm || c.Amount() != 8e7 {
		t.Fatalf("transfer edge parsed wrong: %+v", c)
	}
	if len(byName["merge"].Dependencies()) != 2 {
		t.Errorf("merge has %d deps, want 2", len(byName["merge"].Dependencies()))
	}

	var hosts []string
	for _, h := range s.Platform().Hosts() {
		hosts = append(hosts, h.Name)
	}
	if err := ScheduleMinMin(s, hosts); err != nil {
		t.Fatalf("ScheduleMinMin: %v", err)
	}
	if _, err := s.Simulate(); err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	if s.DoneCount() != len(tasks) {
		t.Fatalf("only %d/%d done", s.DoneCount(), len(tasks))
	}
	// min-min on the 2-host star: with two equal 4 Gflop tasks, the
	// second lands on the slower-but-idle h00 (ECT 4) rather than
	// queueing behind the first on h01 (ECT 2+2): the heuristic spreads.
	if byName["work1"].Host() == byName["work2"].Host() {
		t.Errorf("min-min serialized work1 and work2 on %s", byName["work1"].Host())
	}
}

// TestMinMinPrefersFasterHost: a single task must land on the fastest
// host.
func TestMinMinPrefersFasterHost(t *testing.T) {
	s := New(starPlatform(t, 3), exactConfig()) // h02 has power 3e9
	task := s.NewTask("solo", 3e9)
	if err := ScheduleMinMin(s, []string{"h00", "h01", "h02"}); err != nil {
		t.Fatal(err)
	}
	if task.Host() != "h02" {
		t.Errorf("solo placed on %s, want h02 (fastest)", task.Host())
	}
	if _, err := s.Simulate(); err != nil {
		t.Fatal(err)
	}
	if !near(task.Finish(), 1) {
		t.Errorf("solo finished at %g, want 1 (3 Gflop on 3 Gflop/s)", task.Finish())
	}
}

// TestMinMinDiamondLattice: a deep lattice of Seq tasks (every node
// depending on both nodes of the previous layer) must schedule in
// polynomial time — regression test for the unmemoized estOf recursion
// going exponential on diamond shapes.
func TestMinMinDiamondLattice(t *testing.T) {
	s := New(starPlatform(t, 2), exactConfig())
	top := s.NewTask("top", 1e9)
	prev := []*Task{top}
	for l := 0; l < 40; l++ {
		var layer []*Task
		for w := 0; w < 2; w++ {
			sq := s.NewSeqTask("lat")
			for _, p := range prev {
				if err := s.AddDependency(p, sq); err != nil {
					t.Fatal(err)
				}
			}
			layer = append(layer, sq)
		}
		prev = layer
	}
	bottom := s.NewTask("bottom", 1e9)
	for _, p := range prev {
		if err := s.AddDependency(p, bottom); err != nil {
			t.Fatal(err)
		}
	}
	if err := ScheduleMinMin(s, []string{"h00", "h01"}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Simulate(); err != nil {
		t.Fatal(err)
	}
	if bottom.State() != Done {
		t.Errorf("bottom ended %s, want done", bottom.State())
	}
}

// TestMinMinWithPrePlacedPredecessors: min-min must schedule tasks
// that depend on compute tasks placed outside the call (the
// watch-point reschedule flow) instead of reporting them
// unschedulable.
func TestMinMinWithPrePlacedPredecessors(t *testing.T) {
	s := New(starPlatform(t, 2), exactConfig())
	// first is hand-placed and NOT yet executed: min-min must estimate
	// through it (Schedulable, no committed ECT) rather than treat the
	// dependents as unschedulable.
	first := s.NewTask("first", 1e9)
	if err := first.Schedule("h00"); err != nil {
		t.Fatal(err)
	}
	second := s.NewTask("second", 1e9)
	if err := s.AddDependency(first, second); err != nil {
		t.Fatal(err)
	}
	third := s.NewTask("third", 1e9)
	if err := s.AddDependency(second, third); err != nil {
		t.Fatal(err)
	}
	if err := ScheduleMinMin(s, []string{"h00", "h01"}); err != nil {
		t.Fatalf("ScheduleMinMin with pre-placed predecessor: %v", err)
	}
	if _, err := s.Simulate(); err != nil {
		t.Fatal(err)
	}
	if first.State() != Done || second.State() != Done || third.State() != Done {
		t.Errorf("states first=%s second=%s third=%s, want all done",
			first.State(), second.State(), third.State())
	}
}

// TestRoundRobinSchedules covers the baseline scheduler incl. comm
// placement from neighbours.
func TestRoundRobinSchedules(t *testing.T) {
	s := New(starPlatform(t, 2), exactConfig())
	a := s.NewTask("a", 1e9)
	b := s.NewTask("b", 1e9)
	x := s.NewCommTask("a->b", 1e6)
	if err := s.AddDependency(a, x); err != nil {
		t.Fatal(err)
	}
	if err := s.AddDependency(x, b); err != nil {
		t.Fatal(err)
	}
	if err := ScheduleRoundRobin(s, []string{"h00", "h01"}); err != nil {
		t.Fatal(err)
	}
	if a.Host() != "h00" || b.Host() != "h01" {
		t.Fatalf("round robin placed a=%s b=%s", a.Host(), b.Host())
	}
	src, dst := x.Endpoints()
	if src != "h00" || dst != "h01" {
		t.Fatalf("comm endpoints %s->%s, want h00->h01", src, dst)
	}
	if _, err := s.Simulate(); err != nil {
		t.Fatal(err)
	}
	if s.DoneCount() != 3 {
		t.Fatalf("only %d/3 done", s.DoneCount())
	}
}
