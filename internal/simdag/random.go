// Layered random DAG generation, the synthetic-workflow counterpart
// of platform.GenerateWaxman: tasks arranged in layers, every task
// depending on one or more tasks of the previous layer, a tunable
// fraction of the edges carrying data (comm tasks). The same seed
// always yields the same DAG, so benchmarks and determinism tests are
// reproducible.

package simdag

import (
	"errors"
	"fmt"
	"math/rand"
	"strconv"
)

// RandomConfig parameterizes RandomLayered.
type RandomConfig struct {
	Layers int // number of layers (≥ 1)
	Width  int // compute tasks per layer (≥ 1)

	// ExtraDeps is the expected number of additional predecessors per
	// task beyond the guaranteed one (sampled from the previous layer).
	ExtraDeps float64

	// CommProb is the probability an edge carries data: the dependency
	// is then routed through a comm task of random size.
	CommProb           float64
	MinBytes, MaxBytes float64

	MinFlops, MaxFlops float64

	// PtaskProb is the probability a layer member is generated as a
	// parallel task (ptask) spanning PtaskSlots host slots instead of a
	// plain compute: per-slot flops drawn from the flops range, and a
	// ring of slot-to-slot transfers drawn from the bytes range. Zero
	// (the default) draws nothing, so pre-existing seeds are unchanged.
	PtaskProb  float64
	PtaskSlots int

	Seed int64
}

// DefaultRandomConfig returns a moderately connected workflow shape:
// tasks of 0.1–1 Gflop, one extra dependency on average, a third of
// the edges moving 0.1–1 MB.
func DefaultRandomConfig(layers, width int, seed int64) RandomConfig {
	return RandomConfig{
		Layers:    layers,
		Width:     width,
		ExtraDeps: 1,
		CommProb:  0.33,
		MinBytes:  1e5,
		MaxBytes:  1e6,
		MinFlops:  1e8,
		MaxFlops:  1e9,
		Seed:      seed,
	}
}

// RandomLayered populates the simulation with a random layered DAG and
// returns every created task (computes and comms) in creation order,
// NotScheduled.
func RandomLayered(s *Simulation, cfg RandomConfig) ([]*Task, error) {
	if cfg.Layers < 1 || cfg.Width < 1 {
		return nil, fmt.Errorf("simdag: random DAG needs ≥1 layer and width, got %d×%d", cfg.Layers, cfg.Width)
	}
	if cfg.MinFlops < 0 || cfg.MaxFlops < cfg.MinFlops {
		return nil, fmt.Errorf("simdag: bad flops range [%g,%g]", cfg.MinFlops, cfg.MaxFlops)
	}
	if cfg.MinBytes < 0 || cfg.MaxBytes < cfg.MinBytes {
		return nil, fmt.Errorf("simdag: bad bytes range [%g,%g]", cfg.MinBytes, cfg.MaxBytes)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	uniform := func(lo, hi float64) float64 {
		if hi <= lo {
			return lo
		}
		return lo + rng.Float64()*(hi-lo)
	}

	var tasks []*Task
	prev := make([]*Task, 0, cfg.Width)
	cur := make([]*Task, 0, cfg.Width)
	link := func(from, to *Task) error {
		if cfg.CommProb > 0 && rng.Float64() < cfg.CommProb {
			c := s.NewCommTask(from.name+"->"+to.name, uniform(cfg.MinBytes, cfg.MaxBytes))
			tasks = append(tasks, c)
			if err := s.AddDependency(from, c); err != nil {
				return err
			}
			return s.AddDependency(c, to)
		}
		err := s.AddDependency(from, to)
		if err != nil && errors.Is(err, ErrDuplicate) {
			return nil
		}
		return err
	}
	slots := cfg.PtaskSlots
	if slots < 2 {
		slots = 2
	}
	for l := 0; l < cfg.Layers; l++ {
		cur = cur[:0]
		for w := 0; w < cfg.Width; w++ {
			var t *Task
			if cfg.PtaskProb > 0 && rng.Float64() < cfg.PtaskProb {
				flops := make([]float64, slots)
				bytes := make([][]float64, slots)
				for i := range flops {
					flops[i] = uniform(cfg.MinFlops, cfg.MaxFlops)
					bytes[i] = make([]float64, slots)
				}
				for i := range flops {
					bytes[i][(i+1)%slots] = uniform(cfg.MinBytes, cfg.MaxBytes)
				}
				var err error
				t, err = s.NewParallelTask("l"+strconv.Itoa(l)+"p"+strconv.Itoa(w), flops, bytes)
				if err != nil {
					return nil, err
				}
			} else {
				t = s.NewTask("l"+strconv.Itoa(l)+"t"+strconv.Itoa(w), uniform(cfg.MinFlops, cfg.MaxFlops))
			}
			tasks = append(tasks, t)
			cur = append(cur, t)
			if l == 0 {
				continue
			}
			// One guaranteed predecessor plus a geometric number of
			// extras, all from the previous layer.
			if err := link(prev[rng.Intn(len(prev))], t); err != nil {
				return nil, err
			}
			extra := 0
			for p := cfg.ExtraDeps / (1 + cfg.ExtraDeps); rng.Float64() < p; {
				extra++
				if extra >= len(prev) {
					break
				}
			}
			for i := 0; i < extra; i++ {
				if err := link(prev[rng.Intn(len(prev))], t); err != nil {
					return nil, err
				}
			}
		}
		prev, cur = cur, prev
	}
	return tasks, nil
}
