// HEFT pinned against the canonical example of the source paper
// (Topcuoglu, Hariri, Wu, "Performance-Effective and Low-Complexity
// Task Scheduling for Heterogeneous Computing", IEEE TPDS 13(3), 2002):
// the 10-task/3-processor DAG of Figure 2, with the published upward
// ranks and the Figure 3(a) schedule as golden values. The cost-table
// hooks (HEFTOptions) replay the paper's arbitrary per-task-per-
// processor costs, which a flops/power model cannot express.
package simdag

import (
	"math"
	"os"
	"sort"
	"testing"

	"repro/internal/platform"
	"repro/internal/surf"
)

// topcuogluW is the paper's computation-cost table: row = task n1..n10,
// column = processor P1..P3.
var topcuogluW = [10][3]float64{
	{14, 16, 9},  // n1
	{13, 19, 18}, // n2
	{11, 13, 19}, // n3
	{13, 8, 17},  // n4
	{12, 13, 10}, // n5
	{13, 16, 9},  // n6
	{7, 15, 11},  // n7
	{5, 11, 14},  // n8
	{18, 12, 20}, // n9
	{21, 7, 16},  // n10
}

// topcuogluEdges is the paper's DAG: (from, to, average comm cost).
var topcuogluEdges = []struct {
	from, to int // 1-based task numbers
	cost     float64
}{
	{1, 2, 18}, {1, 3, 12}, {1, 4, 9}, {1, 5, 11}, {1, 6, 14},
	{2, 8, 19}, {2, 9, 16},
	{3, 7, 23},
	{4, 8, 27}, {4, 9, 23},
	{5, 9, 13},
	{6, 8, 15},
	{7, 10, 17}, {8, 10, 11}, {9, 10, 13},
}

// topcuogluRanks is the paper's Table of upward ranks (Figure 2).
var topcuogluRanks = [10]float64{108, 77, 80, 80, 69, 63.333, 42.667, 35.667, 44.333, 14.667}

// topcuogluPlan is the Figure 3(a) HEFT schedule: task → processor and
// planned interval, in scheduling (decreasing-rank) order.
var topcuogluPlan = []struct {
	task          int
	host          string
	start, finish float64
}{
	{1, "P3", 0, 9},
	{3, "P3", 9, 28},
	{4, "P2", 18, 26},
	{2, "P1", 27, 40},
	{5, "P3", 28, 38},
	{6, "P2", 26, 42},
	{9, "P2", 56, 68},
	{7, "P3", 38, 49},
	{8, "P1", 57, 62},
	{10, "P2", 73, 80},
}

// meshPlatform builds a full mesh over the named hosts (dedicated
// directional link pairs, so placements never contend in the test).
func meshPlatform(t *testing.T, hosts []string, power float64) *platform.Platform {
	t.Helper()
	pf := platform.New()
	for _, h := range hosts {
		if err := pf.AddHost(&platform.Host{Name: h, Power: power}); err != nil {
			t.Fatal(err)
		}
	}
	for i, a := range hosts {
		for j, b := range hosts {
			if i == j {
				continue
			}
			l := &platform.Link{Name: "l-" + a + "-" + b, Bandwidth: 1e9, Latency: 0}
			if err := pf.AddRoute(a, b, []*platform.Link{l}); err != nil {
				t.Fatal(err)
			}
		}
	}
	return pf
}

// buildTopcuoglu constructs the paper DAG: computes n1..n10 (Data =
// 0-based row index), one comm task per edge (Data = cost).
func buildTopcuoglu(t *testing.T, s *Simulation) []*Task {
	t.Helper()
	tasks := make([]*Task, 10)
	for i := range tasks {
		tasks[i] = s.NewTask("n"+itoa(i+1), 1)
		tasks[i].Data = i
	}
	for _, e := range topcuogluEdges {
		c := s.NewCommTask("c"+itoa(e.from)+"-"+itoa(e.to), e.cost)
		c.Data = e.cost
		if err := s.AddDependency(tasks[e.from-1], c); err != nil {
			t.Fatal(err)
		}
		if err := s.AddDependency(c, tasks[e.to-1]); err != nil {
			t.Fatal(err)
		}
	}
	return tasks
}

func itoa(n int) string {
	if n >= 10 {
		return string(rune('0'+n/10)) + string(rune('0'+n%10))
	}
	return string(rune('0' + n))
}

func topcuogluOptions(hosts []string) *HEFTOptions {
	col := map[string]int{"P1": 0, "P2": 1, "P3": 2}
	return &HEFTOptions{
		Cost: func(t *Task, host string) float64 {
			return topcuogluW[t.Data.(int)][col[host]]
		},
		CommCost: func(c *Task, src, dst string) float64 {
			if src == dst || src == "" || dst == "" {
				return 0
			}
			return c.Data.(float64)
		},
		MeanCommCost: func(c *Task) float64 {
			return c.Data.(float64)
		},
	}
}

func TestHEFTReference(t *testing.T) {
	hosts := []string{"P1", "P2", "P3"}
	pf := meshPlatform(t, hosts, 1)
	s := New(pf, surf.DefaultConfig())
	tasks := buildTopcuoglu(t, s)

	st, err := ScheduleHEFTStats(s, hosts, topcuogluOptions(hosts))
	if err != nil {
		t.Fatalf("ScheduleHEFTStats: %v", err)
	}

	// Upward ranks match the paper's published values.
	for i, want := range topcuogluRanks {
		got := st.RankOf(tasks[i])
		if math.Abs(got-want) > 0.05 {
			t.Errorf("rank(n%d) = %.3f, want %.3f", i+1, got, want)
		}
	}
	// The critical path is n1's rank.
	if math.Abs(st.CriticalPath-108) > 0.05 {
		t.Errorf("critical path = %.3f, want 108", st.CriticalPath)
	}

	// The plan replays Figure 3(a): same scheduling order, processors
	// and intervals, makespan 80.
	if len(st.Plan) != len(topcuogluPlan) {
		t.Fatalf("plan has %d entries, want %d", len(st.Plan), len(topcuogluPlan))
	}
	for i, want := range topcuogluPlan {
		got := st.Plan[i]
		if got.Task != tasks[want.task-1] || got.Host != want.host ||
			math.Abs(got.Start-want.start) > 1e-9 || math.Abs(got.Finish-want.finish) > 1e-9 {
			t.Errorf("plan[%d] = %s on %s [%g,%g], want n%d on %s [%g,%g]",
				i, got.Task.Name(), got.Host, got.Start, got.Finish,
				want.task, want.host, want.start, want.finish)
		}
	}
	if math.Abs(st.PlannedMakespan-80) > 1e-9 {
		t.Errorf("planned makespan = %g, want 80", st.PlannedMakespan)
	}

	// Parallelism profile of the paper DAG: entry, 5-wide fan-out,
	// 3-wide join layer, exit.
	wantLevels := []int{1, 5, 3, 1}
	if len(st.Levels) != len(wantLevels) {
		t.Fatalf("levels = %v, want %v", st.Levels, wantLevels)
	}
	for i := range wantLevels {
		if st.Levels[i] != wantLevels[i] {
			t.Fatalf("levels = %v, want %v", st.Levels, wantLevels)
		}
	}
	if st.MaxParallelism != 5 {
		t.Errorf("max parallelism = %d, want 5", st.MaxParallelism)
	}

	// The placements drive a real run to completion (estimates steer,
	// the contention model executes).
	if _, err := s.Simulate(); err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	if s.FailedCount() != 0 {
		t.Fatalf("%d tasks failed", s.FailedCount())
	}
	if g := s.Engine().Spawned(); g != 0 {
		t.Fatalf("%d goroutines spawned, want 0", g)
	}
}

// TestHEFTvsMinMinProperty cross-checks HEFT and min-min on seeded
// random layered DAGs: both must produce valid schedules — every unit
// placed, HEFT's planned intervals non-overlapping per host, ranks
// non-increasing along dependency edges, and a clean simulated run.
func TestHEFTvsMinMinProperty(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		pf, err := platform.GenerateWaxman(platform.DefaultWaxmanConfig(8, seed))
		if err != nil {
			t.Fatal(err)
		}
		var hosts []string
		for _, h := range pf.Hosts() {
			hosts = append(hosts, h.Name)
		}

		build := func() (*Simulation, []*Task) {
			s := New(pf, surf.DefaultConfig())
			cfg := DefaultRandomConfig(5, 12, seed)
			cfg.PtaskProb = 0.1
			cfg.PtaskSlots = 2
			tasks, err := RandomLayered(s, cfg)
			if err != nil {
				t.Fatal(err)
			}
			return s, tasks
		}

		// HEFT lane.
		s1, _ := build()
		st, err := ScheduleHEFTStats(s1, hosts, nil)
		if err != nil {
			t.Fatalf("seed %d: heft: %v", seed, err)
		}
		spans := make(map[string][]heftSpan)
		for _, pl := range st.Plan {
			if pl.Host == "" {
				t.Fatalf("seed %d: %s unplaced", seed, pl.Task.Name())
			}
			if pl.Task.Kind() == Parallel {
				for _, h := range pl.Task.ParallelHosts() {
					spans[h] = append(spans[h], heftSpan{pl.Start, pl.Finish})
				}
			} else {
				spans[pl.Host] = append(spans[pl.Host], heftSpan{pl.Start, pl.Finish})
			}
		}
		for _, h := range hosts {
			sp := spans[h]
			sort.Slice(sp, func(i, j int) bool { return sp[i].start < sp[j].start })
			for i := 1; i < len(sp); i++ {
				if sp[i].start < sp[i-1].end-1e-9 {
					t.Fatalf("seed %d: host %s overlap: [%g,%g] then [%g,%g]",
						seed, h, sp[i-1].start, sp[i-1].end, sp[i].start, sp[i].end)
				}
			}
		}
		for _, task := range s1.Tasks() {
			r := st.RankOf(task)
			for _, succ := range task.Dependents() {
				if rs := st.RankOf(succ); rs > r+1e-9 {
					t.Fatalf("seed %d: rank(%s)=%g < rank of successor %s=%g",
						seed, task.Name(), r, succ.Name(), rs)
				}
			}
		}
		if _, err := s1.Simulate(); err != nil {
			t.Fatalf("seed %d: heft simulate: %v", seed, err)
		}
		if s1.FailedCount() != 0 {
			t.Fatalf("seed %d: heft: %d failed", seed, s1.FailedCount())
		}

		// Min-min lane on the identical DAG.
		s2, _ := build()
		if err := ScheduleMinMin(s2, hosts); err != nil {
			t.Fatalf("seed %d: minmin: %v", seed, err)
		}
		if _, err := s2.Simulate(); err != nil {
			t.Fatalf("seed %d: minmin simulate: %v", seed, err)
		}
		if s2.FailedCount() != 0 {
			t.Fatalf("seed %d: minmin: %d failed", seed, s2.FailedCount())
		}
		if s1.DoneCount() != s2.DoneCount() {
			t.Fatalf("seed %d: done count differs: heft %d, minmin %d",
				seed, s1.DoneCount(), s2.DoneCount())
		}
	}
}

// TestHEFTBeatsRoundRobinOnDAX pins the acceptance criterion: on the
// bundled Montage-shaped DAX and a heterogeneous star platform, HEFT's
// simulated makespan beats round-robin's.
func TestHEFTBeatsRoundRobinOnDAX(t *testing.T) {
	const dax = "../../cmd/simdag-run/testdata/sample.dax"
	pf := platform.New()
	if err := pf.AddRouter("sw"); err != nil {
		t.Fatal(err)
	}
	powers := []float64{1e9, 2e9, 4e9, 8e9}
	var hosts []string
	for i, p := range powers {
		name := "h" + itoa(i)
		hosts = append(hosts, name)
		if err := pf.AddHost(&platform.Host{Name: name, Power: p}); err != nil {
			t.Fatal(err)
		}
		l := &platform.Link{Name: "up" + itoa(i), Bandwidth: 1e8, Latency: 1e-4}
		if err := pf.Connect(name, "sw", l); err != nil {
			t.Fatal(err)
		}
	}
	if err := pf.ComputeRoutes(); err != nil {
		t.Fatal(err)
	}

	run := func(sched func(*Simulation, []string) error) float64 {
		s := New(pf, surf.DefaultConfig())
		f, err := os.Open(dax)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		if _, err := LoadDAX(s, f); err != nil {
			t.Fatal(err)
		}
		if err := sched(s, hosts); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Simulate(); err != nil {
			t.Fatal(err)
		}
		if s.FailedCount() != 0 {
			t.Fatalf("%d tasks failed", s.FailedCount())
		}
		return s.Makespan()
	}

	heft := run(ScheduleHEFT)
	rr := run(ScheduleRoundRobin)
	if heft >= rr {
		t.Fatalf("HEFT makespan %g does not beat round-robin %g", heft, rr)
	}
	t.Logf("makespans: heft %.4f, rr %.4f (%.1f%%)", heft, rr, 100*heft/rr)
}
