// Reference list schedulers. They only assign placements — execution
// stays with the simulation kernel — so they are interchangeable and a
// natural extension point for scheduling research (the SimDag use case
// in the paper). Both are deterministic: tasks are considered in
// creation order and hosts in the given order, with strict-improvement
// tie-breaks.

package simdag

import (
	"fmt"
	"math"
)

// ScheduleRoundRobin assigns unplaced compute tasks to hosts
// round-robin in creation order, then wires comm tasks between their
// neighbours' placements (see placeComms). The cheap baseline — and
// the right choice when the DAG is huge and placement quality is not
// the question (benchmarks).
func ScheduleRoundRobin(s *Simulation, hosts []string) error {
	if len(hosts) == 0 {
		return fmt.Errorf("simdag: no hosts to schedule on")
	}
	if err := placeParallel(s, hosts); err != nil {
		return err
	}
	i := 0
	for _, t := range s.tasks {
		if t.kind != Compute || t.state != NotScheduled {
			continue
		}
		if err := t.Schedule(hosts[i%len(hosts)]); err != nil {
			return err
		}
		i++
	}
	return placeComms(s)
}

// ScheduleMinMin is the classic min-min list-scheduling heuristic over
// a heterogeneous platform: repeatedly pick, among the compute tasks
// whose predecessors are all resolved, the (task, host) pair with the
// globally minimal estimated completion time, and commit it. Transfer
// costs are estimated from the platform routes (latency + bytes over
// the bottleneck bandwidth) for comm tasks directly feeding the
// candidate; the estimates only steer placement — the simulation
// itself runs the real contention model.
func ScheduleMinMin(s *Simulation, hosts []string) error {
	if len(hosts) == 0 {
		return fmt.Errorf("simdag: no hosts to schedule on")
	}
	// estOf recurses over predecessors: reject cycles up front instead
	// of overflowing the stack on a malformed graph.
	if err := s.checkCycles(); err != nil {
		return err
	}
	// Ptasks are placed first (greedy host sets), so computes that
	// depend on one can estimate through it below.
	if err := placeParallel(s, hosts); err != nil {
		return err
	}
	power := make(map[string]float64, len(hosts))
	avail := make(map[string]float64, len(hosts))
	for _, h := range hosts {
		ph := s.pf.Host(h)
		if ph == nil {
			return fmt.Errorf("simdag: unknown host %q", h)
		}
		power[h] = ph.Power
	}

	estFin := make(map[*Task]float64)
	// estOf resolves a predecessor's estimated finish: a compute task's
	// committed estimate (or, for tasks placed outside this call —
	// pre-scheduled or already running after a watch point — the
	// recursive estimate on its assigned host), the max over
	// predecessors for Seq and Comm tasks (a comm's own wire time is
	// added per candidate host by the caller, where the destination is
	// known). Results are memoized per round — the memo is reset after
	// each placement — so diamond-shaped graphs stay polynomial.
	type memoEntry struct {
		v  float64
		ok bool
	}
	memo := make(map[*Task]memoEntry)
	var estOf func(t *Task) (float64, bool)
	estOf = func(t *Task) (float64, bool) {
		if t.terminal() {
			return t.finish, true
		}
		if v, ok := estFin[t]; ok {
			return v, true
		}
		if m, ok := memo[t]; ok {
			return m.v, m.ok
		}
		var v float64
		ok := true
		if (t.kind == Compute && t.host == "") || (t.kind == Parallel && len(t.phosts) == 0) {
			ok = false // not placed: the task is not resolvable yet
		} else {
			for it := t.predIter(); ; {
				p, pok2 := it.next()
				if !pok2 {
					break
				}
				pv, pok := estOf(p)
				if !pok {
					ok = false
					break
				}
				if pv > v {
					v = pv
				}
			}
			if ok && t.kind == Compute {
				v += t.amount / s.pf.Host(t.host).Power
			}
			if ok && t.kind == Parallel {
				// Crude coupled estimate: total work over the pooled
				// power of the assigned host set.
				sum := 0.0
				for _, h := range t.phosts {
					sum += s.pf.Host(h).Power
				}
				if sum > 0 {
					v += t.amount / sum
				}
			}
		}
		memo[t] = memoEntry{v, ok}
		return v, ok
	}

	// commCost estimates moving `bytes` from src to dst.
	commCost := func(src, dst string, bytes float64) float64 {
		if src == dst || src == "" {
			return 0
		}
		route, err := s.pf.Route(src, dst)
		if err != nil || len(route.Links) == 0 {
			return 0
		}
		return route.Latency() + bytes/route.Bottleneck()
	}

	var pending []*Task
	for _, t := range s.tasks {
		if t.kind == Compute && t.state == NotScheduled {
			pending = append(pending, t)
		}
	}
	for len(pending) > 0 {
		bestECT := math.Inf(1)
		bestIdx, bestHost := -1, ""
		for idx, t := range pending {
			// Earliest the task's inputs can be complete, excluding the
			// final wire hop of direct comm predecessors (host-dependent).
			eligible := true
			base := 0.0
			for it := t.predIter(); ; {
				p, more := it.next()
				if !more {
					break
				}
				v, ok := estOf(p)
				if !ok {
					eligible = false
					break
				}
				if p.kind != Comm && v > base {
					base = v
				}
			}
			if !eligible {
				continue
			}
			for _, h := range hosts {
				arrive := base
				for it := t.predIter(); ; {
					p, more := it.next()
					if !more {
						break
					}
					if p.kind != Comm {
						continue
					}
					v, _ := estOf(p)
					v += commCost(commSrcHost(p), h, p.amount)
					if v > arrive {
						arrive = v
					}
				}
				start := arrive
				if a := avail[h]; a > start {
					start = a
				}
				ect := start + t.amount/power[h]
				if ect < bestECT {
					bestECT, bestIdx, bestHost = ect, idx, h
				}
			}
		}
		if bestIdx < 0 {
			return fmt.Errorf("simdag: %d compute tasks unschedulable (dangling dependencies)", len(pending))
		}
		t := pending[bestIdx]
		if err := t.Schedule(bestHost); err != nil {
			return err
		}
		estFin[t] = bestECT
		avail[bestHost] = bestECT
		pending = append(pending[:bestIdx], pending[bestIdx+1:]...)
		// The placement may have made downstream tasks resolvable: drop
		// the round's memo (committed estimates live in estFin).
		memo = make(map[*Task]memoEntry)
	}
	return placeComms(s)
}

// commSrcHost returns the placement of a comm task's producing compute
// (or ptask — by convention its first host) predecessor ("" when there
// is none yet).
func commSrcHost(c *Task) string {
	for it := c.predIter(); ; {
		p, ok := it.next()
		if !ok {
			return ""
		}
		if h := placementHost(p); h != "" {
			return h
		}
	}
}

// placementHost reduces a task's placement to one representative host:
// a compute's host, a ptask's first host, "" otherwise.
func placementHost(t *Task) string {
	switch t.kind {
	case Compute:
		return t.host
	case Parallel:
		if len(t.phosts) > 0 {
			return t.phosts[0]
		}
	}
	return ""
}

// placeComms assigns every unplaced comm task's endpoints from its
// placed compute neighbours: source from the producing predecessor,
// destination from the consuming successor. A missing producer
// (stage-in data) collapses onto the destination; a missing consumer
// onto the source — both model a free local touch.
func placeComms(s *Simulation) error {
	for _, t := range s.tasks {
		if t.kind != Comm || t.state != NotScheduled {
			continue
		}
		src := commSrcHost(t)
		dst := ""
		for it := t.succIter(); ; {
			p, ok := it.next()
			if !ok {
				break
			}
			if h := placementHost(p); h != "" {
				dst = h
				break
			}
		}
		if src == "" {
			src = dst
		}
		if dst == "" {
			dst = src
		}
		if src == "" {
			return fmt.Errorf("simdag: comm task %q has no placed compute neighbour", t.name)
		}
		if err := t.ScheduleComm(src, dst); err != nil {
			return err
		}
	}
	return nil
}
