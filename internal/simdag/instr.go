package simdag

import "repro/internal/instr"

// Observability wiring for the DAG layer. On top of surf's platform
// band, the simulation traces one TASK container per task (created
// lazily at its first state change) with a TSTATE state following the
// NotScheduled→…→Done/Failed lifecycle, riding the same notify hook
// that feeds OnTaskStateChange. All hooks are nil-guarded; the
// reschedule counter underneath is a plain always-on field.

// dagTrace holds the simdag side of a Paje trace.
type dagTrace struct {
	tr       *instr.Trace
	taskType string // TASK container type, under the platform root
	tstate   string // lifecycle state type on tasks
	root     string // the "platform" root container alias
}

// EnableTrace attaches a Paje trace to the simulation: the surf
// platform band is enabled first, then the task band on top. Tasks
// created before or after are both covered — containers appear at a
// task's first state change. Idempotent; nil is a no-op.
func (s *Simulation) EnableTrace(tr *instr.Trace) {
	if tr == nil || s.trace != nil {
		return
	}
	s.model.EnableTrace(tr)
	dt := &dagTrace{tr: tr, root: s.model.TraceRoot()}
	dt.taskType = tr.DefineContainerType(s.model.TraceRootType(), "TASK")
	dt.tstate = tr.DefineStateType(dt.taskType, "TSTATE")
	for st := NotScheduled; st <= Failed; st++ {
		tr.DefineEntityValue(dt.tstate, st.String())
	}
	s.trace = dt
}

// Trace returns the attached Paje trace (nil when tracing is off).
func (s *Simulation) Trace() *instr.Trace {
	if s.trace == nil {
		return nil
	}
	return s.trace.tr
}

// traceTask emits a task's state transition, creating its container on
// first sight. Called from notify, so the trace sees exactly the
// transitions observers see.
func (s *Simulation) traceTask(t *Task) {
	dt := s.trace
	now := s.eng.Now()
	if t.pajeC == "" {
		t.pajeC = dt.tr.CreateContainer(now, dt.taskType, dt.root, t.name)
	}
	dt.tr.SetState(now, dt.tstate, t.pajeC, t.state.String())
}

// Reschedules returns how many compute tasks were diverted back to the
// scheduler by host failures (see SetReschedulePolicy).
func (s *Simulation) Reschedules() uint64 { return s.reschedules }

// MetricsInto dumps the DAG layer's counters into r (simdag.*
// namespace) and delegates to the layers underneath (surf, maxmin,
// core).
func (s *Simulation) MetricsInto(r *instr.Registry) {
	if r == nil {
		return
	}
	r.Gauge("simdag.tasks").Set(float64(len(s.tasks)))
	ptasks := 0
	for _, t := range s.tasks {
		if t.kind == Parallel {
			ptasks++
		}
	}
	r.Gauge("simdag.ptasks").Set(float64(ptasks))
	r.Counter("simdag.done").Add(uint64(s.nDone))
	r.Counter("simdag.failed").Add(uint64(s.nFailed))
	r.Counter("simdag.reschedules").Add(s.reschedules)
	r.Counter("simdag.watch_hits").Add(uint64(len(s.watchHits)))
	s.model.MetricsInto(r)
	s.eng.MetricsInto(r)
}
