package simdag

import (
	"errors"
	"testing"
)

// TestRescheduleRunningTask: a running compute's host dies; under the
// policy the task is re-placed on the surviving host and the DAG
// completes with zero failures.
func TestRescheduleRunningTask(t *testing.T) {
	s := New(starPlatform(t, 2), exactConfig())
	s.SetReschedulePolicy([]string{"h00", "h01"})
	a := s.NewTask("A", 2e9) // 2 s on h00
	b := s.NewTask("B", 1e9)
	if err := s.AddDependency(a, b); err != nil {
		t.Fatal(err)
	}
	if err := a.Schedule("h00"); err != nil {
		t.Fatal(err)
	}
	if err := b.Schedule("h00"); err != nil {
		t.Fatal(err)
	}
	s.Engine().After(1, func() {
		if err := s.Model().FailHost("h00"); err != nil {
			t.Error(err)
		}
	})
	if _, err := s.Simulate(); err != nil {
		t.Fatal(err)
	}
	if s.FailedCount() != 0 || s.DoneCount() != 2 {
		t.Fatalf("done=%d failed=%d, want 2/0 (A err: %v)", s.DoneCount(), s.FailedCount(), a.Err())
	}
	if a.Host() != "h01" || b.Host() != "h01" {
		t.Errorf("placements A=%s B=%s, want both h01", a.Host(), b.Host())
	}
	// A restarts from scratch on h01 (2 Gflop/s): failed at 1, reruns
	// [1,2]; B follows [2,2.5].
	if !near(a.Finish(), 2) || !near(b.Finish(), 2.5) {
		t.Errorf("finishes A=%g B=%g, want 2, 2.5", a.Finish(), b.Finish())
	}
}

// TestRescheduleRederivesComms: the comm between two re-placed computes
// must follow the new placements instead of pointing at the dead host.
func TestRescheduleRederivesComms(t *testing.T) {
	s := New(starPlatform(t, 2), exactConfig())
	s.SetReschedulePolicy([]string{"h00", "h01"})
	a := s.NewTask("A", 2e9)
	b := s.NewTask("B", 1e9)
	x := s.NewCommTask("A->B", 1e8)
	for _, dep := range [][2]*Task{{a, x}, {x, b}} {
		if err := s.AddDependency(dep[0], dep[1]); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Schedule("h00"); err != nil {
		t.Fatal(err)
	}
	if err := b.Schedule("h00"); err != nil {
		t.Fatal(err)
	}
	if err := x.ScheduleComm("h00", "h00"); err != nil {
		t.Fatal(err)
	}
	s.Engine().After(1, func() {
		if err := s.Model().FailHost("h00"); err != nil {
			t.Error(err)
		}
	})
	if _, err := s.Simulate(); err != nil {
		t.Fatal(err)
	}
	if s.FailedCount() != 0 || s.DoneCount() != 3 {
		t.Fatalf("done=%d failed=%d, want 3/0", s.DoneCount(), s.FailedCount())
	}
	src, dst := x.Endpoints()
	if src != "h01" || dst != "h01" {
		t.Errorf("comm endpoints %s->%s, want h01->h01", src, dst)
	}
}

// TestRescheduleExhaustedPool: with every policy host down, unplaced
// computes fail with ErrUnplaceable and their dependents cancel —
// FailedCount reflects the genuinely unplaceable work.
func TestRescheduleExhaustedPool(t *testing.T) {
	s := New(starPlatform(t, 2), exactConfig())
	s.SetReschedulePolicy([]string{"h00", "h01"})
	a := s.NewTask("A", 2e9)
	b := s.NewTask("B", 1e9)
	if err := s.AddDependency(a, b); err != nil {
		t.Fatal(err)
	}
	if err := a.Schedule("h00"); err != nil {
		t.Fatal(err)
	}
	if err := b.Schedule("h00"); err != nil {
		t.Fatal(err)
	}
	s.Engine().After(1, func() {
		for _, h := range []string{"h00", "h01"} {
			if err := s.Model().FailHost(h); err != nil {
				t.Error(err)
			}
		}
	})
	if _, err := s.Simulate(); err != nil {
		t.Fatal(err)
	}
	if s.FailedCount() != 2 || s.DoneCount() != 0 {
		t.Fatalf("done=%d failed=%d, want 0/2", s.DoneCount(), s.FailedCount())
	}
	if !errors.Is(a.Err(), ErrUnplaceable) {
		t.Errorf("A err = %v, want ErrUnplaceable", a.Err())
	}
	if !errors.Is(b.Err(), ErrDependencyFailed) {
		t.Errorf("B err = %v, want ErrDependencyFailed", b.Err())
	}
}

// TestRescheduleOffByDefault: without the policy the pre-PR semantics
// hold — host failure fails the task and cancels its dependents.
func TestRescheduleOffByDefault(t *testing.T) {
	s := New(starPlatform(t, 2), exactConfig())
	a := s.NewTask("A", 2e9)
	b := s.NewTask("B", 1e9)
	if err := s.AddDependency(a, b); err != nil {
		t.Fatal(err)
	}
	if err := a.Schedule("h00"); err != nil {
		t.Fatal(err)
	}
	if err := b.Schedule("h00"); err != nil {
		t.Fatal(err)
	}
	s.Engine().After(1, func() {
		if err := s.Model().FailHost("h00"); err != nil {
			t.Error(err)
		}
	})
	if _, err := s.Simulate(); err != nil {
		t.Fatal(err)
	}
	if s.FailedCount() != 2 {
		t.Fatalf("failed=%d, want 2", s.FailedCount())
	}
	if !errors.Is(a.Err(), ErrHostFailed) {
		t.Errorf("A err = %v, want ErrHostFailed", a.Err())
	}
}

// TestRescheduleStrandedSchedulable: a Schedulable-but-unreleased task
// placed on the dead host is pulled along by the pass even though no
// action of its own failed.
func TestRescheduleStrandedSchedulable(t *testing.T) {
	s := New(starPlatform(t, 3), exactConfig())
	s.SetReschedulePolicy([]string{"h00", "h01", "h02"})
	a := s.NewTask("A", 2e9) // runs on h00, killed at t=1
	c := s.NewTask("C", 1e9) // stranded: placed on h00, waiting on A
	if err := s.AddDependency(a, c); err != nil {
		t.Fatal(err)
	}
	if err := a.Schedule("h00"); err != nil {
		t.Fatal(err)
	}
	if err := c.Schedule("h00"); err != nil {
		t.Fatal(err)
	}
	s.Engine().After(1, func() {
		if err := s.Model().FailHost("h00"); err != nil {
			t.Error(err)
		}
	})
	if _, err := s.Simulate(); err != nil {
		t.Fatal(err)
	}
	if s.FailedCount() != 0 || s.DoneCount() != 2 {
		t.Fatalf("done=%d failed=%d, want 2/0", s.DoneCount(), s.FailedCount())
	}
	if a.Host() == "h00" || c.Host() == "h00" {
		t.Errorf("placements A=%s C=%s still on the dead host", a.Host(), c.Host())
	}
}
