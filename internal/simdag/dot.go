// GraphViz DOT workflow loader: the other interchange format SimDag
// reads. Nodes are compute tasks whose "size" attribute is the work in
// flops; an edge with a "size" attribute is a data transfer (a comm
// task is inserted between the endpoints), and an edge without one is
// a plain control dependency. The parser covers the DOT subset
// workflow generators emit — digraph header, node statements with
// attribute lists, edge chains (a -> b -> c), quoted identifiers,
// comments — without pulling in a graph library.

package simdag

import (
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// LoadDOT parses a DOT digraph and instantiates it: one compute task
// per node (flops from the node's size attribute, 0 when absent), a
// comm task per sized edge, a direct dependency per bare edge. Tasks
// are returned in declaration order, NotScheduled.
func LoadDOT(s *Simulation, r io.Reader) ([]*Task, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	text, err := stripDOTComments(string(raw))
	if err != nil {
		return nil, err
	}
	open := strings.IndexByte(text, '{')
	closing := strings.LastIndexByte(text, '}')
	if open < 0 || closing < open || !strings.Contains(strings.ToLower(text[:open]), "digraph") {
		return nil, errors.New("simdag: bad DOT: no digraph body")
	}

	byName := make(map[string]*Task)
	seenXfer := make(map[[2]string]bool) // dedupe repeated sized edges
	var tasks []*Task
	node := func(name string) *Task {
		if t := byName[name]; t != nil {
			return t
		}
		t := s.NewTask(name, 0)
		byName[name] = t
		tasks = append(tasks, t)
		return t
	}

	for _, stmt := range splitDOTStatements(text[open+1 : closing]) {
		head, attrs, err := splitDOTAttrs(stmt)
		if err != nil {
			return nil, err
		}
		if head == "" {
			continue
		}
		switch lower := strings.ToLower(head); {
		case lower == "graph" || lower == "node" || lower == "edge":
			continue // default-attribute statements
		case strings.Contains(head, "->"):
			hops := strings.Split(head, "->")
			for i := range hops {
				hops[i] = unquoteDOT(strings.TrimSpace(hops[i]))
				if hops[i] == "" {
					return nil, fmt.Errorf("simdag: bad DOT edge %q", stmt)
				}
			}
			bytes := attrs["size"]
			for i := 0; i+1 < len(hops); i++ {
				src, dst := node(hops[i]), node(hops[i+1])
				if bytes > 0 {
					// A repeated sized edge is the same transfer declared
					// twice, not twice the data: first declaration wins.
					key := [2]string{hops[i], hops[i+1]}
					if seenXfer[key] {
						continue
					}
					seenXfer[key] = true
					c := s.NewCommTask(hops[i]+"->"+hops[i+1], bytes)
					tasks = append(tasks, c)
					if err := depTolerant(s, src, c); err != nil {
						return nil, err
					}
					if err := depTolerant(s, c, dst); err != nil {
						return nil, err
					}
				} else if err := depTolerant(s, src, dst); err != nil {
					return nil, err
				}
			}
		default:
			t := node(unquoteDOT(head))
			if flops, ok := attrs["size"]; ok {
				t.amount = flops
			}
		}
	}
	return tasks, nil
}

// depTolerant adds a dependency, ignoring duplicates (DOT files often
// repeat edges).
func depTolerant(s *Simulation, before, after *Task) error {
	if err := s.AddDependency(before, after); err != nil && !errors.Is(err, ErrDuplicate) {
		return err
	}
	return nil
}

// stripDOTComments removes //, # line comments and /* */ blocks.
func stripDOTComments(text string) (string, error) {
	var b strings.Builder
	b.Grow(len(text))
	for i := 0; i < len(text); {
		switch {
		case text[i] == '"': // quoted strings may contain comment starters
			j := i + 1
			for j < len(text) && text[j] != '"' {
				if text[j] == '\\' {
					j++
				}
				j++
			}
			if j >= len(text) {
				return "", errors.New("simdag: bad DOT: unterminated string")
			}
			b.WriteString(text[i : j+1])
			i = j + 1
		case strings.HasPrefix(text[i:], "//") || text[i] == '#':
			for i < len(text) && text[i] != '\n' {
				i++
			}
		case strings.HasPrefix(text[i:], "/*"):
			end := strings.Index(text[i+2:], "*/")
			if end < 0 {
				return "", errors.New("simdag: bad DOT: unterminated comment")
			}
			i += 2 + end + 2
		default:
			b.WriteByte(text[i])
			i++
		}
	}
	return b.String(), nil
}

// splitDOTStatements splits a digraph body on ';' and newlines,
// keeping attribute lists (which may contain either) intact.
func splitDOTStatements(body string) []string {
	var out []string
	var cur strings.Builder
	depth := 0
	inStr := false
	for i := 0; i < len(body); i++ {
		c := body[i]
		switch {
		case inStr:
			if c == '\\' && i+1 < len(body) {
				cur.WriteByte(c)
				i++
				c = body[i]
			} else if c == '"' {
				inStr = false
			}
		case c == '"':
			inStr = true
		case c == '[':
			depth++
		case c == ']':
			depth--
		case (c == ';' || c == '\n') && depth == 0:
			if s := strings.TrimSpace(cur.String()); s != "" {
				out = append(out, s)
			}
			cur.Reset()
			continue
		}
		cur.WriteByte(c)
	}
	if s := strings.TrimSpace(cur.String()); s != "" {
		out = append(out, s)
	}
	return out
}

// splitDOTAttrs separates a statement's head from its [attr, ...]
// list, parsing numeric attribute values.
func splitDOTAttrs(stmt string) (head string, attrs map[string]float64, err error) {
	open := strings.IndexByte(stmt, '[')
	if open < 0 {
		return strings.TrimSpace(stmt), nil, nil
	}
	closing := strings.LastIndexByte(stmt, ']')
	if closing < open {
		return "", nil, fmt.Errorf("simdag: bad DOT attribute list in %q", stmt)
	}
	attrs = make(map[string]float64)
	for _, kv := range strings.FieldsFunc(stmt[open+1:closing], func(r rune) bool { return r == ',' }) {
		eq := strings.IndexByte(kv, '=')
		if eq < 0 {
			continue
		}
		key := strings.ToLower(strings.TrimSpace(kv[:eq]))
		val := unquoteDOT(strings.TrimSpace(kv[eq+1:]))
		if f, perr := strconv.ParseFloat(val, 64); perr == nil {
			attrs[key] = f
		}
	}
	return strings.TrimSpace(stmt[:open]), attrs, nil
}

// unquoteDOT strips surrounding double quotes.
func unquoteDOT(s string) string {
	if len(s) >= 2 && s[0] == '"' && s[len(s)-1] == '"' {
		return s[1 : len(s)-1]
	}
	return s
}
