// Package simdag implements the paper's fourth user interface, SimDag:
// scheduling of task graphs (DAGs) on a simulated platform, the
// workload class of workflow systems and list-scheduling research.
//
// Unlike MSG/GRAS/SMPI processes, DAG tasks are pure kernel-level
// activities: a scheduled task whose dependencies complete is started
// automatically as a surf action attached through completion callbacks
// — no core.Process is ever spawned, so a 100k-task workflow costs
// zero goroutines and the simulation is driven by the kernel alone
// (core.Engine.RunUntilIdle).
//
// Tasks are typed — computations (flops on a host), end-to-end
// communications (bytes between two hosts), and sequential "no-op"
// synchronization points — and move through the state machine
//
//	NotScheduled → Schedulable → Runnable → Running → Done/Failed
//
// NotScheduled tasks have no placement; Schedule/ScheduleComm makes
// them Schedulable; a Schedulable task whose last dependency finishes
// becomes Runnable and is started by the next same-instant release
// sweep (one batched sweep per instant, however many tasks k
// same-instant completions free); Running tasks own a surf action;
// completion yields Done, and a resource failure (or a failed
// dependency) yields Failed with the dependents cancelled.
package simdag

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/gantt"
	"repro/internal/platform"
	"repro/internal/surf"
)

// Errors reported by DAG construction and execution.
var (
	// ErrCycle reports that the dependency graph is not acyclic.
	ErrCycle = errors.New("simdag: dependency cycle")
	// ErrDependencyFailed marks a task cancelled because a (transitive)
	// dependency failed.
	ErrDependencyFailed = errors.New("simdag: dependency failed")
	// ErrBadState reports an operation illegal in the task's state.
	ErrBadState = errors.New("simdag: operation illegal in this state")
	// ErrDuplicate reports an already-declared dependency edge.
	ErrDuplicate = errors.New("simdag: duplicate dependency")
	// ErrHostFailed is re-exported from surf: a compute task's host
	// turned off mid-run (state trace).
	ErrHostFailed = surf.ErrHostFailed
	// ErrLinkFailed is re-exported from surf: a link on a comm task's
	// route turned off mid-run.
	ErrLinkFailed = surf.ErrLinkFailed
)

// Kind is the task type.
type Kind int

// Task kinds.
const (
	// Compute burns flops on one host.
	Compute Kind = iota
	// Comm moves bytes end-to-end between two hosts over the platform's
	// route (latency + MaxMin bandwidth share, like any transfer).
	Comm
	// Seq is a zero-work synchronization point (fan-in/fan-out barrier);
	// it needs no placement and completes the instant it is released.
	Seq
	// Parallel is a ptask (SimGrid's L07 model): one activity consuming
	// CPU on several hosts and bandwidth between them simultaneously,
	// completing when the whole coupled allocation has been delivered.
	Parallel
)

func (k Kind) String() string {
	switch k {
	case Compute:
		return "compute"
	case Comm:
		return "comm"
	case Seq:
		return "seq"
	case Parallel:
		return "ptask"
	default:
		return "unknown"
	}
}

// State is a task's position in the lifecycle.
type State int

// Task states, in lifecycle order.
const (
	// NotScheduled: created, no placement assigned yet.
	NotScheduled State = iota
	// Schedulable: placement assigned, waiting on dependencies.
	Schedulable
	// Runnable: dependencies satisfied, queued for the release sweep.
	Runnable
	// Running: surf action in flight.
	Running
	// Done: completed successfully.
	Done
	// Failed: resource failure, or a dependency failed (cancelled).
	Failed
)

func (s State) String() string {
	switch s {
	case NotScheduled:
		return "not-scheduled"
	case Schedulable:
		return "schedulable"
	case Runnable:
		return "runnable"
	case Running:
		return "running"
	case Done:
		return "done"
	case Failed:
		return "failed"
	default:
		return fmt.Sprintf("state(%d)", int(s)) //lint:allow hot-sprintf cold path: unknown-state debug rendering, never on the task path
	}
}

// Task is one node of the DAG.
type Task struct {
	sim    *Simulation
	name   string
	kind   Kind
	amount float64 // flops (Compute) or bytes (Comm)
	state  State

	// Dependency adjacency. The first edge of each direction is stored
	// inline (pred0/succ0) — most workflow tasks have degree 1, so the
	// common walk is a single field read — and the overflow lives as
	// heads/tails of index-linked lists in the simulation's edge arena
	// (see depEdge): a 100k-edge DAG costs a handful of arena growths
	// instead of two small slice allocations per task. 0 means empty;
	// indices are 1-based.
	pred0, succ0       *Task
	predHead, predTail int32
	succHead, succTail int32
	waitingOn          int // predecessors not yet Done

	host     string // Compute placement
	src, dst string // Comm placement
	priority float64

	// Parallel (ptask) payload and placement: pflops[i] runs on
	// phosts[i], pbytes[i][j] moves from phosts[i] to phosts[j]
	// (see NewParallelTask / ScheduleParallel in ptask.go).
	phosts []string
	pflops []float64
	pbytes [][]float64

	// Resolved placement handles, filled by Schedule/ScheduleComm so
	// start() touches no string-keyed maps: shared per host / per pair
	// for the model's lifetime.
	execH *surf.HostHandle
	commH *surf.RouteHandle // nil when the pair has no route: resolved at start, failing the task

	action  *surf.Action
	start   float64
	finish  float64
	err     error
	watched bool

	indeg int // scratch for the cycle check

	pajeC string // trace container alias, minted at first state change

	// Data is a free cookie for schedulers and loaders.
	Data any
}

// Name returns the task name.
func (t *Task) Name() string { return t.name }

// Kind returns the task type.
func (t *Task) Kind() Kind { return t.kind }

// State returns the task's lifecycle state.
func (t *Task) State() State { return t.state }

// Amount returns the work payload (flops or bytes).
func (t *Task) Amount() float64 { return t.amount }

// Host returns the compute placement ("" before Schedule).
func (t *Task) Host() string { return t.host }

// Endpoints returns the comm placement ("","" before ScheduleComm).
func (t *Task) Endpoints() (src, dst string) { return t.src, t.dst }

// Start returns the virtual time the task started running.
func (t *Task) Start() float64 { return t.start }

// Finish returns the virtual completion time (valid once terminal).
func (t *Task) Finish() float64 { return t.finish }

// Err returns the failure cause (nil unless Failed).
func (t *Task) Err() error { return t.err }

// Dependencies returns the task's predecessors (a fresh slice; the
// adjacency itself lives in the simulation's edge arena).
func (t *Task) Dependencies() []*Task {
	var out []*Task
	for it := t.predIter(); ; {
		p, ok := it.next()
		if !ok {
			break
		}
		out = append(out, p)
	}
	return out
}

// Dependents returns the task's successors (a fresh slice).
func (t *Task) Dependents() []*Task {
	var out []*Task
	for it := t.succIter(); ; {
		p, ok := it.next()
		if !ok {
			break
		}
		out = append(out, p)
	}
	return out
}

// hasPreds reports whether the task has any predecessor.
func (t *Task) hasPreds() bool { return t.pred0 != nil }

// hasSuccs reports whether the task has any successor.
func (t *Task) hasSuccs() bool { return t.succ0 != nil }

// terminal reports whether the task reached Done or Failed.
func (t *Task) terminal() bool { return t.state == Done || t.state == Failed }

// Watch marks the task as a watch point: when it reaches Done or
// Failed, the running Simulate call returns (with the task in its
// result) instead of draining the whole DAG — the caller can inspect,
// reschedule, and call Simulate again to resume.
func (t *Task) Watch() { t.watched = true }

// SetPriority sets the MaxMin sharing weight of the task's future
// action (1 by default). Must be called before the task starts.
func (t *Task) SetPriority(w float64) error {
	if t.state != NotScheduled && t.state != Schedulable {
		return fmt.Errorf("%w: SetPriority on %s task %q", ErrBadState, t.state, t.name)
	}
	if w > 0 {
		t.priority = w
	}
	return nil
}

// Schedule assigns a compute (or re-assigns a not-yet-released) task to
// a host, making it Schedulable.
func (t *Task) Schedule(host string) error {
	if t.kind != Compute {
		return fmt.Errorf("simdag: Schedule on %s task %q (want compute)", t.kind, t.name)
	}
	if t.state != NotScheduled && t.state != Schedulable {
		return fmt.Errorf("%w: Schedule on %s task %q", ErrBadState, t.state, t.name)
	}
	h := t.sim.model.HostHandle(host)
	if h == nil {
		return fmt.Errorf("simdag: unknown host %q", host)
	}
	t.host = host
	t.execH = h
	t.state = Schedulable
	return nil
}

// ScheduleComm assigns a communication task's endpoints, making it
// Schedulable. src == dst is legal and models a local (free) transfer.
func (t *Task) ScheduleComm(src, dst string) error {
	if t.kind != Comm {
		return fmt.Errorf("simdag: ScheduleComm on %s task %q (want comm)", t.kind, t.name)
	}
	if t.state != NotScheduled && t.state != Schedulable {
		return fmt.Errorf("%w: ScheduleComm on %s task %q", ErrBadState, t.state, t.name)
	}
	if t.sim.pf.Host(src) == nil {
		return fmt.Errorf("simdag: unknown host %q", src)
	}
	if t.sim.pf.Host(dst) == nil {
		return fmt.Errorf("simdag: unknown host %q", dst)
	}
	t.src, t.dst = src, dst
	// Resolve the route handle eagerly when possible; a pair with no
	// route keeps the nil handle and fails at start time, preserving
	// the "scheduling succeeds, execution fails" contract.
	t.commH, _ = t.sim.model.RouteHandle(src, dst)
	t.state = Schedulable
	return nil
}

// Simulation owns a DAG of tasks and the platform it runs on. Create
// one with New, build the graph, schedule tasks, then call Simulate.
type Simulation struct {
	eng   *core.Engine
	model *surf.Model
	pf    *platform.Platform
	tasks []*Task

	ready      []*Task // Runnable tasks awaiting the release sweep
	draining   bool    // inside startReady: don't arm the sweep
	sweep      *core.Timer
	sweepArmed bool
	depsDirty  bool // an edge was added since the last cycle check

	// Reschedule policy (see SetReschedulePolicy): host pool, and the
	// re-armable timer batching one min-min pass per instant.
	reschedHosts []string
	resched      *core.Timer
	reschedArmed bool

	// depEdges is the arena backing every task's dependency lists,
	// walked through depIter. Entries are never removed — tasks live as
	// long as their simulation.
	depEdges depArena

	// taskArena chunk-allocates the Task structs themselves: tasks are
	// only ever created through New*Task and live as long as the
	// simulation, so block allocation keeps a 100k-task DAG to a few
	// dozen allocations and lays tasks out contiguously for the state
	// sweeps. The returned pointers are stable.
	taskArena []Task

	watchHits []*Task
	nDone     int
	nFailed   int

	// Observability: the task band of a Paje trace (nil when off) and
	// the always-on count of failure-diverted reschedules.
	trace       *dagTrace
	reschedules uint64

	// Gantt, when non-nil, records every finished task as a closed
	// interval: compute tasks on their host's track, comm tasks on the
	// source host's track (comm kind), so the chart reads one row per
	// host.
	Gantt *gantt.Recorder

	// OnTaskStateChange, when non-nil, is invoked (in kernel context)
	// at every task state transition — the observer hook the
	// determinism suite logs events through.
	OnTaskStateChange func(*Task)
}

// New builds a DAG simulation on a platform with the given network
// model configuration (surf.DefaultConfig for the paper's calibration).
func New(pf *platform.Platform, cfg surf.Config) *Simulation {
	eng := core.New()
	return &Simulation{
		eng:   eng,
		model: surf.New(eng, pf, cfg),
		pf:    pf,
	}
}

// Engine exposes the underlying kernel (tests, advanced use).
func (s *Simulation) Engine() *core.Engine { return s.eng }

// Model exposes the underlying resource model.
func (s *Simulation) Model() *surf.Model { return s.model }

// Platform returns the simulated platform.
func (s *Simulation) Platform() *platform.Platform { return s.pf }

// Now returns the current virtual time.
func (s *Simulation) Now() float64 { return s.eng.Now() }

// Tasks returns the tasks in creation order.
func (s *Simulation) Tasks() []*Task { return s.tasks }

// DoneCount returns the number of tasks that completed successfully.
func (s *Simulation) DoneCount() int { return s.nDone }

// FailedCount returns the number of failed (including cancelled) tasks.
func (s *Simulation) FailedCount() int { return s.nFailed }

// NewTask creates a compute task of the given flops, NotScheduled.
func (s *Simulation) NewTask(name string, flops float64) *Task {
	if flops < 0 {
		flops = 0
	}
	t := s.add()
	t.name, t.kind, t.amount = name, Compute, flops
	return t
}

// NewCommTask creates an end-to-end communication task of the given
// bytes, NotScheduled until ScheduleComm assigns its endpoints.
func (s *Simulation) NewCommTask(name string, bytes float64) *Task {
	if bytes < 0 {
		bytes = 0
	}
	t := s.add()
	t.name, t.kind, t.amount = name, Comm, bytes
	return t
}

// NewSeqTask creates a zero-work synchronization task. It needs no
// placement and is Schedulable from the start.
func (s *Simulation) NewSeqTask(name string) *Task {
	t := s.add()
	t.name, t.kind, t.state = name, Seq, Schedulable
	return t
}

// taskBlockSize is the task-arena growth quantum.
const taskBlockSize = 1024

// add carves a fresh task out of the arena (growing it by whole
// blocks) and registers it.
func (s *Simulation) add() *Task {
	if len(s.taskArena) == cap(s.taskArena) {
		s.taskArena = make([]Task, 0, taskBlockSize)
	}
	s.taskArena = s.taskArena[:len(s.taskArena)+1]
	t := &s.taskArena[len(s.taskArena)-1]
	t.sim = s
	t.priority = 1
	s.tasks = append(s.tasks, t)
	return t
}

// depEdge is one arena entry of a task's dependency list: the peer
// task and the 1-based arena index of the next edge in the same list
// (0 terminates). Index links stay valid across arena growth, unlike
// element pointers.
type depEdge struct {
	task *Task
	next int32
}

// depBlockBits sizes the edge-arena blocks (4096 edges ≈ 64 KiB): the
// arena grows by whole blocks, so building a large DAG never copies
// already-stored edges — none of the append-doubling churn a flat
// slice would feed the collector.
const (
	depBlockBits = 12
	depBlockSize = 1 << depBlockBits
)

// depArena is a chunked, append-only store of dependency edges.
type depArena struct {
	blocks [][]depEdge
	n      int32
}

// push stores e and returns its 1-based index.
func (a *depArena) push(e depEdge) int32 {
	b, off := int(a.n)>>depBlockBits, int(a.n)&(depBlockSize-1)
	if off == 0 && b == len(a.blocks) {
		a.blocks = append(a.blocks, make([]depEdge, depBlockSize))
	}
	a.blocks[b][off] = e
	a.n++
	return a.n
}

// at returns the edge stored under 1-based index i.
func (a *depArena) at(i int32) *depEdge {
	i--
	return &a.blocks[i>>depBlockBits][i&(depBlockSize-1)]
}

// depIter walks one adjacency list: the inline first edge, then the
// arena overflow. It re-reads the arena through the simulation on
// every step, so edges appended mid-walk (observer callbacks) are
// picked up safely.
type depIter struct {
	s      *Simulation
	inline *Task // yielded first; nil once consumed (or for empty lists)
	i      int32
}

// next returns the next task of the list, or ok == false at the end.
func (it *depIter) next() (*Task, bool) {
	if it.inline != nil {
		t := it.inline
		it.inline = nil
		return t, true
	}
	if it.i == 0 {
		return nil, false
	}
	e := it.s.depEdges.at(it.i)
	it.i = e.next
	return e.task, true
}

func (t *Task) predIter() depIter { return depIter{s: t.sim, inline: t.pred0, i: t.predHead} }
func (t *Task) succIter() depIter { return depIter{s: t.sim, inline: t.succ0, i: t.succHead} }

// pushEdge appends an edge holding t to the list identified by
// inline/head/tail, preserving insertion order: the first edge lands
// in the inline slot, the rest in the arena.
func (s *Simulation) pushEdge(inline **Task, head, tail *int32, t *Task) {
	if *inline == nil && *head == 0 {
		*inline = t
		return
	}
	idx := s.depEdges.push(depEdge{task: t})
	if *tail != 0 {
		s.depEdges.at(*tail).next = idx
	} else {
		*head = idx
	}
	*tail = idx
}

// AddDependency declares that `after` cannot start before `before`
// completed. It is an error to add a dependency onto a task that
// already left the Schedulable state, or a duplicate edge.
func (s *Simulation) AddDependency(before, after *Task) error {
	if before == after {
		return fmt.Errorf("simdag: task %q cannot depend on itself", before.name)
	}
	if before.sim != s || after.sim != s {
		return errors.New("simdag: tasks belong to a different simulation")
	}
	if after.state != NotScheduled && after.state != Schedulable {
		return fmt.Errorf("%w: dependency onto %s task %q", ErrBadState, after.state, after.name)
	}
	if before.terminal() {
		if before.state == Failed {
			return fmt.Errorf("%w: dependency on failed task %q", ErrBadState, before.name)
		}
		return nil // depending on a Done task is vacuously satisfied
	}
	for it := after.predIter(); ; {
		p, ok := it.next()
		if !ok {
			break
		}
		if p == before {
			return fmt.Errorf("%w: %q -> %q", ErrDuplicate, before.name, after.name)
		}
	}
	s.pushEdge(&before.succ0, &before.succHead, &before.succTail, after)
	s.pushEdge(&after.pred0, &after.predHead, &after.predTail, before)
	after.waitingOn++
	s.depsDirty = true
	return nil
}

// Simulate runs the DAG until nothing can progress further: every
// released task ran to completion (or failure), and any task still
// NotScheduled or waiting on an unfinished dependency is simply left
// in place. It returns the watch-point tasks that reached a terminal
// state during this call (an empty slice when the run drained), so a
// scheduler can interleave decisions with execution: Watch a task,
// Simulate, reschedule, Simulate again. Simulate may be called
// repeatedly; each call resumes from the current virtual time.
func (s *Simulation) Simulate() ([]*Task, error) {
	if err := s.checkCycles(); err != nil {
		return nil, err
	}
	s.watchHits = s.watchHits[:0]
	// The pre-run kick drains synchronously below: suppress the sweep
	// timer a mid-build enqueue would otherwise arm for nothing.
	s.draining = true
	for _, t := range s.tasks {
		if t.state == Schedulable && t.waitingOn == 0 {
			s.enqueue(t)
		}
	}
	s.startReady()
	// A watch point can already fire in the synchronous pre-run drain
	// (a watched Seq task, or a placement on an already-failed host):
	// return before entering the drive loop — RunUntilIdle resets the
	// kernel's stop request on entry and would run the DAG to the end.
	var err error
	if len(s.watchHits) == 0 {
		err = s.eng.RunUntilIdle()
	}
	var hits []*Task
	if len(s.watchHits) > 0 {
		hits = append(hits, s.watchHits...) // copy: the buffer is reused
	}
	return hits, err
}

// Makespan returns the latest finish time over all terminal tasks.
func (s *Simulation) Makespan() float64 {
	m := 0.0
	for _, t := range s.tasks {
		if t.terminal() && t.finish > m {
			m = t.finish
		}
	}
	return m
}

// checkCycles runs Kahn's algorithm over the non-terminal tasks. Only
// new edges can create a cycle, so the O(V+E) pass is skipped when no
// dependency was added since the last check (Simulate in a watch-point
// loop stays cheap).
func (s *Simulation) checkCycles() error {
	if !s.depsDirty {
		return nil
	}
	queue := make([]*Task, 0, len(s.tasks))
	n := 0
	for _, t := range s.tasks {
		if t.terminal() {
			t.indeg = -1
			continue
		}
		c := 0
		for it := t.predIter(); ; {
			p, ok := it.next()
			if !ok {
				break
			}
			if !p.terminal() {
				c++
			}
		}
		t.indeg = c
		n++
		if c == 0 {
			queue = append(queue, t)
		}
	}
	seen := 0
	for i := 0; i < len(queue); i++ {
		seen++
		for it := queue[i].succIter(); ; {
			succ, ok := it.next()
			if !ok {
				break
			}
			if succ.indeg > 0 {
				succ.indeg--
				if succ.indeg == 0 {
					queue = append(queue, succ)
				}
			}
		}
	}
	if seen != n {
		return fmt.Errorf("%w involving %d tasks", ErrCycle, n-seen)
	}
	s.depsDirty = false
	return nil
}

// notify runs the observer hook (and the trace band, which sees the
// same transitions).
func (s *Simulation) notify(t *Task) {
	if s.trace != nil {
		s.traceTask(t)
	}
	if s.OnTaskStateChange != nil {
		s.OnTaskStateChange(t)
	}
}

// enqueue moves a task to Runnable and queues it for the release
// sweep. Same-instant completions share one sweep: the first release
// of the instant arms a single timer at the current time (re-arming
// the same timer object every instant), and the sweep then starts the
// whole batch back-to-back — k lock-step releases cost one timer and
// one contiguous start pass, the kernel-level analog of the batched
// process wake (Engine.WakeAll).
func (s *Simulation) enqueue(t *Task) {
	t.state = Runnable
	s.notify(t)
	s.ready = append(s.ready, t)
	if s.draining || s.sweepArmed {
		return
	}
	s.sweepArmed = true
	if s.sweep == nil {
		s.sweep = s.eng.At(s.eng.Now(), func() {
			s.sweepArmed = false
			s.startReady()
		})
	} else {
		s.sweep.Rearm(s.eng.Now())
	}
}

// startReady drains the ready queue, starting every released task.
// Seq tasks complete synchronously and may release further tasks into
// the same drain (their appends are picked up by the index loop), so
// whole chains of synchronization points collapse within one instant.
func (s *Simulation) startReady() {
	s.draining = true
	for i := 0; i < len(s.ready); i++ {
		t := s.ready[i]
		s.ready[i] = nil
		s.start(t)
	}
	s.ready = s.ready[:0]
	s.draining = false
}

// start launches one Runnable task as a surf action (or completes it
// inline for Seq tasks). No process is spawned: the action's
// completion callback drives the DAG.
func (s *Simulation) start(t *Task) {
	if t.state != Runnable {
		return
	}
	t.state = Running
	t.start = s.eng.Now()
	s.notify(t)

	var a *surf.Action
	var err error
	switch t.kind {
	case Seq:
		s.taskFinished(t, nil)
		return
	case Compute:
		a, err = s.model.ExecuteHandle(t.execH, t.amount, t.priority)
	case Parallel:
		a, err = s.model.ExecuteParallel(t.phosts, t.pflops, t.pbytes)
	case Comm:
		if t.commH != nil {
			a, err = s.model.CommunicateHandle(t.commH, t.amount)
		} else {
			a, err = s.model.Communicate(t.src, t.dst, t.amount)
		}
	}
	if err != nil {
		s.failTask(t, err)
		return
	}
	t.action = a
	if done, aerr := a.Poll(); done {
		// Completed at creation: the placement resource is already down.
		s.taskFinished(t, aerr)
		return
	}
	a.SetCompletion(t)
}

// ActionDone implements surf.Completion: the task's action finished,
// drive the DAG. Registering the task itself (instead of a closure)
// keeps a 100k-task run free of per-task callback allocations.
func (t *Task) ActionDone(_ *surf.Action, cerr error) {
	t.sim.taskFinished(t, cerr)
}

// taskFinished is the completion callback: it finalizes the task and
// releases its dependents (success) or cancels them (failure).
func (s *Simulation) taskFinished(t *Task, err error) {
	if err != nil {
		s.failTask(t, err)
		return
	}
	t.state = Done
	t.finish = s.eng.Now()
	if t.action != nil {
		// The action never escapes the task: recycle it (with its
		// variable and resources) for the next task start.
		t.action.Release()
		t.action = nil
	}
	s.nDone++
	s.record(t)
	s.notify(t)
	s.watch(t)
	for it := t.succIter(); ; {
		succ, ok := it.next()
		if !ok {
			break
		}
		succ.waitingOn--
		if succ.waitingOn == 0 && succ.state == Schedulable {
			s.enqueue(succ)
		}
	}
}

// failTask handles a task failure: under the reschedule policy a
// host-failure victim is diverted back to the scheduler; otherwise the
// failure is terminal.
func (s *Simulation) failTask(t *Task, err error) {
	if s.divert(t, err) {
		return
	}
	s.failTerminal(t, err)
}

// failTerminal marks a task Failed and cancels its dependents
// transitively: a workflow with a failed branch keeps executing the
// independent branches, exactly like a workflow engine would.
func (s *Simulation) failTerminal(t *Task, err error) {
	t.state = Failed
	t.err = err
	t.finish = s.eng.Now()
	if t.action != nil {
		t.action.Release()
		t.action = nil
	}
	s.nFailed++
	s.record(t)
	s.notify(t)
	s.watch(t)
	for it := t.succIter(); ; {
		succ, ok := it.next()
		if !ok {
			break
		}
		s.cancel(succ)
	}
}

// cancel marks a dependent of a failed task Failed (recursively). A
// dependent can never be Running here: its failed predecessor was, by
// definition, unfinished.
func (s *Simulation) cancel(t *Task) {
	if t.terminal() {
		return
	}
	t.state = Failed
	t.err = ErrDependencyFailed
	t.finish = s.eng.Now()
	s.nFailed++
	s.notify(t)
	s.watch(t)
	for it := t.succIter(); ; {
		succ, ok := it.next()
		if !ok {
			break
		}
		s.cancel(succ)
	}
}

// watch fires the watch point: the terminal task is recorded and the
// drive loop is asked to return once the instant settles.
func (s *Simulation) watch(t *Task) {
	if !t.watched {
		return
	}
	s.watchHits = append(s.watchHits, t)
	s.eng.Stop()
}

// record adds the finished task's span to the Gantt recorder.
func (s *Simulation) record(t *Task) {
	if s.Gantt == nil || t.kind == Seq {
		return
	}
	track := t.host
	kind := gantt.Compute
	switch t.kind {
	case Comm:
		track = t.src
		kind = gantt.Comm
	case Parallel:
		track = t.phosts[0] // by convention: the ptask's first host carries its span
	}
	s.Gantt.Add(track, kind, t.name, t.start, t.finish)
}
