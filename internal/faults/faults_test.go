package faults

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/surf"
)

func mustCompile(t *testing.T, seed int64, p Params) *Schedule {
	t.Helper()
	s, err := Compile(seed, p)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestCompileValidation(t *testing.T) {
	cases := []struct {
		name string
		p    Params
	}{
		{"zero horizon", Params{Classes: []Class{{Hosts: []string{"h"}, MTBF: 1, MTTR: 1}}}},
		{"zero mtbf", Params{Horizon: 10, Classes: []Class{{Hosts: []string{"h"}, MTTR: 1}}}},
		{"zero mttr", Params{Horizon: 10, Classes: []Class{{Hosts: []string{"h"}, MTBF: 1}}}},
		{"weibull no shape", Params{Horizon: 10, Classes: []Class{{Hosts: []string{"h"}, MTBF: 1, MTTR: 1, Dist: Weibull}}}},
	}
	for _, c := range cases {
		if _, err := Compile(1, c.p); err == nil {
			t.Errorf("%s: Compile accepted invalid params", c.name)
		}
	}
}

// TestFaultScheduleDeterminism pins the tentpole's core contract: a
// schedule is a pure function of (seed, params) — identical bytes on
// every compile — and an injected run replays it identically.
func TestFaultScheduleDeterminism(t *testing.T) {
	p := Params{
		Horizon: 1000,
		Classes: []Class{
			{Name: "cpus", Hosts: []string{"a", "b", "c"}, MTBF: 40, MTTR: 5},
			{Name: "wan", Links: []string{"l0", "l1"}, MTBF: 90, MTTR: 2, Dist: Weibull, Shape: 0.7},
		},
	}
	ref := mustCompile(t, 42, p).String()
	if ref == "" {
		t.Fatal("empty schedule: horizon/MTBF tuning produced no events")
	}
	for i := 0; i < 5; i++ {
		if got := mustCompile(t, 42, p).String(); got != ref {
			t.Fatalf("run %d: schedule differs from first compile:\n%s\nvs\n%s", i, got, ref)
		}
	}
	if other := mustCompile(t, 43, p).String(); other == ref {
		t.Fatal("different seed produced an identical schedule")
	}

	// Replaying the schedule through the injector must produce an
	// identical event log across runs: same times, same order.
	runLog := func() string {
		eng := core.New()
		pf := faultsPlatform(t)
		m := surf.New(eng, pf, surf.DefaultConfig())
		sched := mustCompile(t, 42, Params{
			Horizon: 500,
			Classes: []Class{{Hosts: []string{"a", "b"}, Links: []string{"l0"}, MTBF: 30, MTTR: 4}},
		})
		in, err := Arm(sched, m)
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		in.OnEvent = func(ev Event) {
			fmt.Fprintf(&b, "%.9e %v %s %v\n", eng.Now(), ev.Link, ev.Name, ev.Up)
		}
		if err := eng.RunUntilIdle(); err != nil {
			t.Fatal(err)
		}
		if in.Applied() != sched.Len() {
			t.Fatalf("applied %d of %d events", in.Applied(), sched.Len())
		}
		return b.String()
	}
	first := runLog()
	for i := 0; i < 4; i++ {
		if got := runLog(); got != first {
			t.Fatalf("injection run %d: event log differs", i)
		}
	}
}

// TestTrailingRecovery: every failure is paired with its recovery, even
// past the horizon — per resource the events strictly alternate
// down/up and end up.
func TestTrailingRecovery(t *testing.T) {
	s := mustCompile(t, 7, Params{
		Horizon: 200,
		Classes: []Class{{Hosts: []string{"x", "y"}, Links: []string{"l"}, MTBF: 10, MTTR: 8}},
	})
	last := map[string]bool{}   // resource -> last direction seen (true = up)
	opened := map[string]bool{} // resource -> has any events
	for _, ev := range s.Events {
		k := ev.Name
		if ev.Link {
			k = "link:" + k
		}
		if opened[k] && ev.Up == last[k] {
			t.Fatalf("resource %s: consecutive %v events", k, ev.Up)
		}
		if !opened[k] && ev.Up {
			t.Fatalf("resource %s: first event is a recovery", k)
		}
		opened[k], last[k] = true, ev.Up
	}
	for k, up := range last {
		if !up {
			t.Errorf("resource %s ends down: missing trailing recovery", k)
		}
	}
	if len(opened) != 3 {
		t.Fatalf("expected events for 3 resources, got %d", len(opened))
	}
	// No failure starts at or after the horizon.
	for _, ev := range s.Events {
		if !ev.Up && ev.At >= 200 {
			t.Errorf("failure at %g, past horizon 200", ev.At)
		}
	}
}

// TestResourceStreamIndependence: each resource draws from its own
// sub-seeded stream, so growing a class leaves existing resources'
// events untouched.
func TestResourceStreamIndependence(t *testing.T) {
	base := Params{Horizon: 500, Classes: []Class{{Hosts: []string{"a"}, MTBF: 20, MTTR: 3}}}
	grown := Params{Horizon: 500, Classes: []Class{{Hosts: []string{"a", "zz"}, MTBF: 20, MTTR: 3}}}
	onlyA := func(s *Schedule) string {
		var b strings.Builder
		for _, ev := range s.Events {
			if ev.Name == "a" {
				fmt.Fprintf(&b, "%.9e %v\n", ev.At, ev.Up)
			}
		}
		return b.String()
	}
	if onlyA(mustCompile(t, 5, base)) != onlyA(mustCompile(t, 5, grown)) {
		t.Fatal("adding a resource to the class shifted another resource's events")
	}
}

// TestLifetimeMeans: sampled up-times track MTBF for both
// distributions (law of large numbers, loose tolerance).
func TestLifetimeMeans(t *testing.T) {
	for _, tc := range []struct {
		name string
		c    Class
	}{
		{"exponential", Class{MTBF: 10, MTTR: 1}},
		{"weibull k=0.7", Class{MTBF: 10, MTTR: 1, Dist: Weibull, Shape: 0.7}},
		{"weibull k=2", Class{MTBF: 10, MTTR: 1, Dist: Weibull, Shape: 2}},
	} {
		c := tc.c
		c.Hosts = []string{"h"}
		s := mustCompile(t, 11, Params{Horizon: 200_000, Classes: []Class{c}})
		var sum float64
		var n int
		prevUp := 0.0
		for _, ev := range s.Events {
			if !ev.Up {
				sum += ev.At - prevUp
				n++
			} else {
				prevUp = ev.At
			}
		}
		if n < 1000 {
			t.Fatalf("%s: only %d failures sampled", tc.name, n)
		}
		mean := sum / float64(n)
		if math.Abs(mean-10) > 1.0 {
			t.Errorf("%s: mean up-time %.3f, want ~10", tc.name, mean)
		}
	}
}

func TestArmRejectsUnknownResource(t *testing.T) {
	eng := core.New()
	m := surf.New(eng, faultsPlatform(t), surf.DefaultConfig())
	s := &Schedule{Events: []Event{{At: 1, Name: "nope"}}}
	if _, err := Arm(s, m); err == nil {
		t.Fatal("Arm accepted a schedule naming an unknown host")
	}
	s = &Schedule{Events: []Event{{At: 1, Name: "nope", Link: true}}}
	if _, err := Arm(s, m); err == nil {
		t.Fatal("Arm accepted a schedule naming an unknown link")
	}
}

// TestInjectorFlipsState: a hand-written schedule drives real surf
// state transitions at the scheduled instants.
func TestInjectorFlipsState(t *testing.T) {
	eng := core.New()
	m := surf.New(eng, faultsPlatform(t), surf.DefaultConfig())
	s := &Schedule{Events: []Event{
		{At: 1, Name: "a"},
		{At: 2, Name: "l0", Link: true},
		{At: 3, Name: "a", Up: true},
		{At: 3, Name: "l0", Link: true, Up: true},
	}}
	in, err := Arm(s, m)
	if err != nil {
		t.Fatal(err)
	}
	type sample struct{ hostUp, linkUp bool }
	got := map[float64]sample{}
	in.OnEvent = func(Event) {
		got[eng.Now()] = sample{m.HostUp("a"), m.LinkUp("l0")}
	}
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if in.Applied() != 4 {
		t.Fatalf("applied %d events, want 4", in.Applied())
	}
	want := map[float64]sample{
		1: {false, true},
		2: {false, false},
		3: {true, true}, // after both same-instant recoveries
	}
	for at, w := range want {
		if got[at] != w {
			t.Errorf("t=%g: state %+v, want %+v", at, got[at], w)
		}
	}
}

// faultsPlatform builds hosts a, b and links l0, l1.
func faultsPlatform(t *testing.T) *platform.Platform {
	t.Helper()
	pf := platform.New()
	for _, h := range []string{"a", "b"} {
		if err := pf.AddHost(&platform.Host{Name: h, Power: 1e9}); err != nil {
			t.Fatal(err)
		}
	}
	if err := pf.AddRoute("a", "b", []*platform.Link{
		{Name: "l0", Bandwidth: 1e8, Latency: 1e-4},
		{Name: "l1", Bandwidth: 1e8, Latency: 1e-4},
	}); err != nil {
		t.Fatal(err)
	}
	return pf
}
