// Package faults implements deterministic fault injection: seeded
// synthetic availability models (exponential and Weibull MTBF/MTTR per
// host/link class) compiled into explicit failure/recovery schedules,
// and an injector replaying a schedule onto a surf model through one
// re-armable kernel timer — the same machinery as state traces, so a
// "down" event carries exactly the FailHost/FailLink semantics the
// rest of the stack already handles (processes killed and optionally
// auto-restarted by msg, tasks failed and optionally rescheduled by
// simdag).
//
// Determinism is the point: a schedule is a pure function of
// (seed, Params). Each resource draws from its own sub-seeded
// generator (seed mixed with a hash of the resource name), so adding a
// resource to a class never shifts another resource's failure times,
// and Schedule.WriteTo renders the whole campaign byte-for-byte
// reproducibly — the replayable failure log the paper's availability
// traces provide, without hand-writing a trace.
package faults

import (
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"math/rand"
	"sort"
	"strconv"
	"strings"
)

// Dist selects the lifetime distribution of a class.
type Dist int

// Supported distributions. Means are always the class's MTBF/MTTR.
const (
	// Exponential lifetimes: memoryless failures, the classic
	// availability-trace model.
	Exponential Dist = iota
	// Weibull lifetimes with the class's Shape parameter: shape < 1
	// models infant mortality (bursty failures), shape > 1 wear-out.
	// Shape 1 degenerates to Exponential.
	Weibull
)

func (d Dist) String() string {
	switch d {
	case Exponential:
		return "exponential"
	case Weibull:
		return "weibull"
	default:
		return "dist(?)"
	}
}

// Class describes one failure class: a set of resources sharing
// MTBF/MTTR statistics.
type Class struct {
	// Name labels the class in diagnostics (optional).
	Name string
	// Hosts and Links list the member resources by platform name.
	Hosts []string
	Links []string
	// MTBF is the mean time between failures (mean up-time), seconds.
	MTBF float64
	// MTTR is the mean time to repair (mean down-time), seconds.
	MTTR float64
	// Dist selects the lifetime distribution (default Exponential).
	Dist Dist
	// Shape is the Weibull shape parameter k (> 0); ignored for
	// Exponential.
	Shape float64
}

// Params is a complete campaign description.
type Params struct {
	Classes []Class
	// Horizon bounds the campaign: no failure starts at or after this
	// time. Every failure is paired with its recovery even when the
	// recovery lands past the horizon — a schedule never strands a
	// resource down.
	Horizon float64
}

// Event is one scheduled state flip.
type Event struct {
	At   float64 // absolute virtual time
	Name string  // resource (host or link) name
	Link bool    // link event (host otherwise)
	Up   bool    // recovery (failure otherwise)
}

// Schedule is a compiled campaign: the events, time-ordered.
type Schedule struct {
	Seed   int64
	Events []Event
}

// Compile expands (seed, Params) into an explicit schedule. The result
// is a pure function of its arguments: same inputs, byte-identical
// schedule (see WriteTo).
func Compile(seed int64, p Params) (*Schedule, error) {
	if p.Horizon <= 0 {
		return nil, errors.New("faults: Params.Horizon must be > 0")
	}
	s := &Schedule{Seed: seed}
	for ci := range p.Classes {
		c := &p.Classes[ci]
		if c.MTBF <= 0 || c.MTTR <= 0 {
			return nil, fmt.Errorf("faults: class %d (%s): MTBF and MTTR must be > 0", ci, c.Name)
		}
		if c.Dist == Weibull && !(c.Shape > 0) {
			return nil, fmt.Errorf("faults: class %d (%s): Weibull needs Shape > 0", ci, c.Name)
		}
		for _, h := range c.Hosts {
			s.compileResource(seed, c, h, false, p.Horizon)
		}
		for _, l := range c.Links {
			s.compileResource(seed, c, l, true, p.Horizon)
		}
	}
	// Per-resource streams are independent; the merged schedule is
	// ordered by (time, kind, name, direction) — a total deterministic
	// order with down before up at equal times, so a zero-length outage
	// still flips the resource off and back on.
	sort.Slice(s.Events, func(i, j int) bool {
		a, b := s.Events[i], s.Events[j]
		if a.At != b.At {
			return a.At < b.At
		}
		if a.Link != b.Link {
			return !a.Link // host events first
		}
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		return !a.Up && b.Up
	})
	return s, nil
}

// compileResource unrolls one resource's alternating up/down lifetime
// draws into events, from its own sub-seeded stream.
func (s *Schedule) compileResource(seed int64, c *Class, name string, link bool, horizon float64) {
	rng := rand.New(rand.NewSource(seed ^ subSeed(name, link)))
	t := 0.0
	for {
		t += draw(rng, c, c.MTBF) // up-time until the next failure
		if t >= horizon {
			return
		}
		s.Events = append(s.Events, Event{At: t, Name: name, Link: link})
		t += draw(rng, c, c.MTTR) // down-time until recovery
		// The paired recovery is always emitted, even past the horizon:
		// campaigns end with every resource back up.
		s.Events = append(s.Events, Event{At: t, Name: name, Link: link, Up: true})
	}
}

// subSeed hashes a resource's identity into a seed perturbation, so
// each resource owns an independent random stream: class membership
// and declaration order never shift another resource's draws.
func subSeed(name string, link bool) int64 {
	h := fnv.New64a()
	if link {
		io.WriteString(h, "link:")
	} else {
		io.WriteString(h, "host:")
	}
	io.WriteString(h, name)
	return int64(h.Sum64())
}

// draw samples one lifetime with the class's distribution and the
// given mean.
func draw(rng *rand.Rand, c *Class, mean float64) float64 {
	switch c.Dist {
	case Weibull:
		// X = λ·(−ln U)^(1/k) with λ chosen so E[X] = mean:
		// λ = mean / Γ(1 + 1/k).
		lambda := mean / math.Gamma(1+1/c.Shape)
		u := rng.Float64()
		return lambda * math.Pow(-math.Log(1-u), 1/c.Shape)
	default:
		return rng.ExpFloat64() * mean
	}
}

// Len returns the number of events.
func (s *Schedule) Len() int { return len(s.Events) }

// WriteTo renders the schedule as one line per event —
//
//	<time> host|link <name> down|up
//
// with times in %.9e — the byte-for-byte replayable form determinism
// tests and CI diff across runs.
func (s *Schedule) WriteTo(w io.Writer) (int64, error) {
	var b strings.Builder
	for _, ev := range s.Events {
		b.WriteString(strconv.FormatFloat(ev.At, 'e', 9, 64))
		if ev.Link {
			b.WriteString(" link ")
		} else {
			b.WriteString(" host ")
		}
		b.WriteString(ev.Name)
		if ev.Up {
			b.WriteString(" up\n")
		} else {
			b.WriteString(" down\n")
		}
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// String renders the schedule in WriteTo's line format.
func (s *Schedule) String() string {
	var b strings.Builder
	s.WriteTo(&b)
	return b.String()
}
