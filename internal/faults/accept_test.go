package faults

import (
	"strconv"
	"testing"

	"repro/internal/platform"
	"repro/internal/simdag"
	"repro/internal/surf"
)

// TestDAGSurvivesInjectedFailures is the tentpole acceptance run: a
// 1000-compute-task DAG (50 chains of 20, with a data transfer between
// consecutive stages) under an injected host-failure campaign, with the
// simdag reschedule policy recovering every victim onto surviving
// hosts. The run must complete with zero failed tasks — FailedCount
// only ever reflects genuinely unplaceable work, and with recoveries in
// the campaign the pool never empties.
func TestDAGSurvivesInjectedFailures(t *testing.T) {
	const (
		nHosts  = 8
		nChains = 50
		depth   = 20
	)
	pf := platform.New()
	if err := pf.AddRouter("sw"); err != nil {
		t.Fatal(err)
	}
	hosts := make([]string, nHosts)
	for i := 0; i < nHosts; i++ {
		h := "h" + strconv.Itoa(i)
		hosts[i] = h
		if err := pf.AddHost(&platform.Host{Name: h, Power: 1e9}); err != nil {
			t.Fatal(err)
		}
		if err := pf.Connect(h, "sw", &platform.Link{Name: "lan-" + h, Bandwidth: 1e8, Latency: 1e-4}); err != nil {
			t.Fatal(err)
		}
	}
	if err := pf.ComputeRoutes(); err != nil {
		t.Fatal(err)
	}

	s := simdag.New(pf, surf.DefaultConfig())
	s.SetReschedulePolicy(hosts)
	total := 0
	for c := 0; c < nChains; c++ {
		var prev *simdag.Task
		for d := 0; d < depth; d++ {
			name := "c" + strconv.Itoa(c) + "-" + strconv.Itoa(d)
			task := s.NewTask(name, 1e9) // ~1 s per stage
			total++
			if prev != nil {
				x := s.NewCommTask(name+"-in", 1e7)
				total++
				if err := s.AddDependency(prev, x); err != nil {
					t.Fatal(err)
				}
				if err := s.AddDependency(x, task); err != nil {
					t.Fatal(err)
				}
			}
			prev = task
		}
	}
	if err := simdag.ScheduleRoundRobin(s, hosts); err != nil {
		t.Fatal(err)
	}

	// Two hosts churn through the first 60 simulated seconds (the DAG
	// needs ~140 s): with MTBF 25 each fails about twice, and every
	// failure recovers ~4 s later, so the pool always recovers.
	sched := mustCompile(t, 3, Params{
		Horizon: 60,
		Classes: []Class{{Name: "churn", Hosts: []string{"h1", "h3"}, MTBF: 25, MTTR: 4}},
	})
	in, err := Arm(sched, s.Model())
	if err != nil {
		t.Fatal(err)
	}
	var downs []float64
	in.OnEvent = func(ev Event) {
		if !ev.Up {
			downs = append(downs, ev.At)
		}
	}

	if _, err := s.Simulate(); err != nil {
		t.Fatal(err)
	}
	if in.Applied() != sched.Len() {
		t.Fatalf("applied %d of %d scheduled events", in.Applied(), sched.Len())
	}
	midRun := 0
	for _, at := range downs {
		if at < s.Makespan() {
			midRun++
		}
	}
	if midRun < 1 {
		t.Fatalf("no host failure landed mid-run (makespan %g, downs %v): campaign needs retuning", s.Makespan(), downs)
	}
	if s.DoneCount() != total || s.FailedCount() != 0 {
		t.Fatalf("done=%d failed=%d, want %d/0", s.DoneCount(), s.FailedCount(), total)
	}
	if g := s.Engine().Spawned(); g != 0 {
		t.Errorf("%d process goroutines spawned, want 0", g)
	}
	t.Logf("makespan %.3f s, %d injected events (%d mid-run failures)", s.Makespan(), in.Applied(), midRun)
}
