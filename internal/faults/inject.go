package faults

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/instr"
	"repro/internal/surf"
)

// Injector replays a compiled schedule onto a surf model. One
// re-armable kernel timer carries a cursor through the events — the
// same one-timer-per-stream shape surf uses for state traces — so a
// campaign of any length costs a single timer and a single closure for
// the whole run.
type Injector struct {
	sched *Schedule
	m     *surf.Model
	// OnEvent, when set, observes each event right after it is applied.
	// It runs in kernel context: it must not issue simcalls. Set it
	// before the first event fires (in practice, right after Arm).
	OnEvent func(Event)
	applied int

	// Split of applied events into failures and recoveries (Up events),
	// for the metrics snapshot.
	injections uint64
	recoveries uint64
}

// Arm validates the schedule against the model's platform and arms the
// replay timer. Events already in the past (At < now) are rejected —
// an injector is armed before the run, not spliced into one.
func Arm(sched *Schedule, m *surf.Model) (*Injector, error) {
	pf := m.Platform()
	for _, ev := range sched.Events {
		if ev.Link {
			if pf.Link(ev.Name) == nil {
				return nil, fmt.Errorf("faults: schedule names unknown link %q", ev.Name)
			}
		} else if pf.Host(ev.Name) == nil {
			return nil, fmt.Errorf("faults: schedule names unknown host %q", ev.Name)
		}
	}
	in := &Injector{sched: sched, m: m}
	if len(sched.Events) == 0 {
		return in, nil
	}
	now := m.Engine().Now()
	if sched.Events[0].At < now {
		return nil, fmt.Errorf("faults: schedule starts at %g, before now (%g)", sched.Events[0].At, now)
	}
	// One cursor-carrying timer: fire, apply every event at this
	// instant, re-arm at the next distinct time. Applying same-instant
	// events in one firing keeps their relative order exactly the
	// schedule's sort order regardless of timer-heap tie-breaking.
	idx := 0
	var tm *core.Timer
	tm = m.Engine().At(sched.Events[0].At, func() {
		at := sched.Events[idx].At
		for idx < len(sched.Events) && sched.Events[idx].At == at {
			in.apply(sched.Events[idx])
			idx++
		}
		if idx < len(sched.Events) {
			tm.Rearm(sched.Events[idx].At)
		}
	})
	return in, nil
}

// apply flips one resource and notifies the observer. Failing or
// restoring an already-failed/restored resource is benign at the surf
// layer, so overlapping classes compose without bookkeeping here.
func (in *Injector) apply(ev Event) {
	var err error
	switch {
	case ev.Link && ev.Up:
		err = in.m.RestoreLink(ev.Name)
	case ev.Link:
		err = in.m.FailLink(ev.Name)
	case ev.Up:
		err = in.m.RestoreHost(ev.Name)
	default:
		err = in.m.FailHost(ev.Name)
	}
	if err != nil {
		// Names were validated at Arm time; surf only errors on unknown
		// resources, so this is unreachable — but don't swallow it.
		panic(err)
	}
	in.applied++
	if ev.Up {
		in.recoveries++
	} else {
		in.injections++
	}
	if in.OnEvent != nil {
		in.OnEvent(ev)
	}
}

// Applied reports how many events have been injected so far.
func (in *Injector) Applied() int { return in.applied }

// Schedule returns the schedule this injector replays.
func (in *Injector) Schedule() *Schedule { return in.sched }

// MetricsInto dumps the injector's counters into r (faults.*
// namespace): how many failure events were injected and how many
// recovery (Up) events restored a resource.
func (in *Injector) MetricsInto(r *instr.Registry) {
	if r == nil {
		return
	}
	r.Counter("faults.injections").Add(in.injections)
	r.Counter("faults.recoveries").Add(in.recoveries)
	r.Gauge("faults.schedule_events").Set(float64(len(in.sched.Events)))
}
