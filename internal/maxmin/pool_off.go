//go:build nopool

package maxmin

// poolingEnabled gates the steady-state free lists. This is the
// -tags=nopool build: every Variable and constraint element is
// allocated fresh, the reference behaviour the pooled build must be
// indistinguishable from.
var poolingEnabled = false
