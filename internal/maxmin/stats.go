package maxmin

import "repro/internal/instr"

// SolveStats counts solver work since construction. The fields are
// plain integers bumped inline on the solve path (an increment, not a
// hook — always on, far below the noise floor of a solve), snapshot
// via Stats or MetricsInto.
type SolveStats struct {
	Solves         uint64 // solve() runs (Dirty() short-circuits don't count)
	ParallelSolves uint64 // solves dispatched to the component worker pool
	ScopeVars      uint64 // cumulative variables across re-solved scopes
	Components     uint64 // cumulative connected components re-solved
	MaxScopeVars   int    // largest single-solve scope
	MaxComponents  int    // most components in one solve
}

// Stats returns the accumulated solver counters.
func (s *System) Stats() SolveStats { return s.stats }

// VarPoolStats reports the variable free list's scoreboard.
func (s *System) VarPoolStats() instr.PoolStat {
	return instr.PoolStat{Hit: s.varPoolHit, Miss: s.varPoolMiss, Free: len(s.varPool)}
}

// ElemPoolStats reports the constraint-element free list's scoreboard.
func (s *System) ElemPoolStats() instr.PoolStat {
	return instr.PoolStat{Hit: s.elemPoolHit, Miss: s.elemPoolMiss, Free: len(s.elemPool)}
}

// MetricsInto dumps the solver's counters and pool scoreboards into r
// under the maxmin.* namespace.
func (s *System) MetricsInto(r *instr.Registry) {
	if r == nil {
		return
	}
	r.Counter("maxmin.solves").Add(s.stats.Solves)
	r.Counter("maxmin.parallel_solves").Add(s.stats.ParallelSolves)
	r.Counter("maxmin.scope_vars").Add(s.stats.ScopeVars)
	r.Counter("maxmin.components").Add(s.stats.Components)
	r.Gauge("maxmin.max_scope_vars").SetMax(float64(s.stats.MaxScopeVars))
	r.Gauge("maxmin.max_components").SetMax(float64(s.stats.MaxComponents))
	r.Gauge("maxmin.vars").Set(float64(len(s.vars)))
	r.Gauge("maxmin.constraints").Set(float64(len(s.cnsts)))
	r.SetPool("maxmin.var_pool", s.VarPoolStats())
	r.SetPool("maxmin.elem_pool", s.ElemPoolStats())
}
