package maxmin

// This file is the factory for the pooled solver objects: the only
// place allowed to construct (or scrub) a Variable or constraint
// element by composite literal. simgrid-lint's pool-literal rule
// enforces that scope — a literal anywhere else would bypass the free
// lists and break the "pools hold only scrubbed structs" invariant
// (DESIGN.md, "Object lifecycle & pooling").

// grabVariable pops a recycled variable off the free list, or
// allocates one. Pooled variables were scrubbed and dequeued by
// RemoveVariable; only the visit generation mark may be live, and it
// can never equal a future generation.
func (s *System) grabVariable() *Variable {
	if n := len(s.varPool); poolingEnabled && n > 0 {
		v := s.varPool[n-1]
		s.varPool[n-1] = nil
		s.varPool = s.varPool[:n-1]
		s.varPoolHit++
		return v
	}
	s.varPoolMiss++
	return &Variable{dirtyQ: -1}
}

// grabElem pops a recycled constraint element off the free list, or
// allocates one.
func (s *System) grabElem() *elem {
	if n := len(s.elemPool); poolingEnabled && n > 0 {
		e := s.elemPool[n-1]
		s.elemPool[n-1] = nil
		s.elemPool = s.elemPool[:n-1]
		s.elemPoolHit++
		return e
	}
	s.elemPoolMiss++
	return &elem{}
}

// releaseElem scrubs a detached element and returns it to the free
// list. The element must already be unlinked from both adjacency
// lists.
func (s *System) releaseElem(e *elem) {
	*e = elem{}
	if poolingEnabled {
		s.elemPool = append(s.elemPool, e)
	}
}
