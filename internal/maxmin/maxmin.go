// Package maxmin implements the weighted, bounded Max-Min fairness
// solver at the heart of SURF ("allocate as much capacity to all tasks
// in a way that maximizes the minimum capacity allocation over all
// tasks" — SimGrid, HPDC'06).
//
// The model is a linear system: variables (one per simulated activity:
// a TCP flow, a computation, ...) consume capacity on constraints (one
// per resource: a network link, a CPU). A variable x with weight w that
// crosses constraint c contributes w·x to c's load, and c's load must
// not exceed its capacity. Variables may additionally carry an upper
// bound (e.g. the TCP window bound gamma/2RTT).
//
// Solve computes the max-min fair allocation by progressive filling:
// grow all variables' shares together until either a variable hits its
// bound (it is then frozen) or a constraint saturates (all its variables
// are then frozen), remove frozen usage, and repeat on the remainder.
//
// The solver is incremental (SimGrid's "selective update" / lazy lmm
// optimization): every mutation (Expand, SetWeight, SetBound,
// SetCapacity, Remove*, ...) marks only the touched variables and
// constraints dirty, and Solve re-runs progressive filling only on the
// connected components of the variable/constraint bipartite graph that
// contain a dirty element. Allocations in untouched components are
// carried over unchanged — max-min fairness decomposes exactly per
// component, so the combined solution is identical to a full solve.
// Solve reports the variables whose allocation actually changed via
// Updated, letting callers refresh only the affected activities.
//
// Because max-min fairness decomposes exactly per connected component,
// the dirty components are also independent solving units: when the
// dirty scope is large enough, Solve dispatches them to a bounded
// worker pool (SetWorkers, default GOMAXPROCS) and merges the results,
// which is bit-identical to solving them sequentially.
//
// All per-solve bookkeeping (weighted loads, the active set, the
// component worklist) lives in scratch slices reused across solves, so
// a steady-state sequential re-solve performs no heap allocation. The
// same holds for the activity churn itself: RemoveVariable scrubs and
// free-lists the Variable and its constraint elements, and
// NewVariable/Expand reuse them, so the add/solve/remove cycle of a
// simulated activity is allocation-free at steady state (disable with
// -tags=nopool; the paper counterpart is SimGrid's lmm system, and the
// key invariant is that pooled and unpooled builds are bit-identical).
package maxmin

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Variable is one activity receiving an allocation. Create variables
// with System.NewVariable and attach them to constraints with Expand.
type Variable struct {
	id     int
	idx    int     // position in sys.vars, maintained under index-swap removal
	weight float64 // sharing weight (a.k.a. priority); 0 disables the variable
	bound  float64 // upper bound on Value; <= 0 means unbounded
	value  float64 // the solution, valid after Solve

	cnsts []*elem

	// User cookie: the surf action owning this variable.
	Data any

	sys    *System
	fixed  bool
	dirtyQ int32  // position in sys.dirtyVars; -1 when not queued
	visit  uint64 // component-walk generation mark
}

// elem ties a variable to a constraint with a consumption multiplier.
// Its positions in both adjacency lists are tracked so detaching is
// O(1) per edge.
type elem struct {
	v      *Variable
	c      *Constraint
	factor float64 // capacity consumed per unit of variable value
	vIdx   int     // position in v.cnsts
	cIdx   int     // position in c.elems
}

// Constraint is one capacity-limited resource.
type Constraint struct {
	id       int
	idx      int // position in sys.cnsts, maintained under index-swap removal
	capacity float64
	elems    []*elem

	// shared reports whether concurrent variables share the capacity
	// (true, the normal case: links, CPUs) or each may use the full
	// capacity independently (false: SimGrid "fatpipe" links, modelling
	// e.g. the Internet backbone in some platform files).
	shared bool

	// User cookie: the surf resource owning this constraint.
	Data any

	sys    *System
	remCap float64 // scratch for Solve
	usage  float64 // post-solve total load
	dirty  bool    // queued in sys.dirtyCnsts
	visit  uint64  // component-walk generation mark
}

// component is one connected component of the dirty scope, as ranges
// into the solveVars/solveCnsts slices (collectScope appends each
// component contiguously).
type component struct {
	v0, v1 int // solveVars[v0:v1]
	c0, c1 int // solveCnsts[c0:c1]
}

// System holds variables and constraints and solves the allocation.
// The zero value is not usable; call NewSystem.
type System struct {
	vars    []*Variable
	cnsts   []*Constraint
	nextVID int
	nextCID int

	// Dirty tracking: mutated elements since the last Solve. allDirty
	// forces the next Solve to recompute every component from scratch.
	dirtyVars  []*Variable
	dirtyCnsts []*Constraint
	allDirty   bool

	visitGen uint64 // current component-walk generation

	// workers bounds the pool used to solve independent components in
	// parallel; 0 means GOMAXPROCS, 1 forces sequential solving.
	workers int

	// Scratch storage reused across solves (no steady-state allocation).
	loads        []float64 // weighted load per constraint, indexed by Constraint.idx
	solveVars    []*Variable
	solveCnsts   []*Constraint
	comps        []component
	active       []*Variable
	workerActive [][]*Variable // per-worker active-set scratch
	oldVals      []float64     // pre-solve values of solveVars, for Updated
	updated      []*Variable
	queue        []*Constraint // component-walk worklist

	// Free lists for the activity churn (see "Object lifecycle &
	// pooling" in DESIGN.md): RemoveVariable recycles the variable and
	// its constraint elements, NewVariable/Expand reuse them, so the
	// steady-state add/remove cycle of a simulated activity performs no
	// heap allocation. Disabled under -tags=nopool.
	varPool  []*Variable
	elemPool []*elem

	// Observability (stats.go): solver work counters and pool
	// hit/miss scoreboards. Plain fields, always on.
	stats                     SolveStats
	varPoolHit, varPoolMiss   uint64
	elemPoolHit, elemPoolMiss uint64
}

// NewSystem returns an empty linear MaxMin system.
func NewSystem() *System { return &System{} }

// SetWorkers bounds the worker pool used to solve independent dirty
// components in parallel. n == 1 forces sequential solving; n <= 0
// restores the default (GOMAXPROCS). Small solve scopes are always
// solved sequentially regardless of this setting, since the dispatch
// overhead would dominate.
func (s *System) SetWorkers(n int) {
	if n <= 0 {
		n = 0
	}
	s.workers = n
}

// Workers returns the configured worker bound (0 = GOMAXPROCS).
func (s *System) Workers() int { return s.workers }

func (s *System) touchVar(v *Variable) {
	if v.dirtyQ < 0 {
		v.dirtyQ = int32(len(s.dirtyVars))
		s.dirtyVars = append(s.dirtyVars, v)
	}
}

// dequeueVar drops a variable from the dirty queue (swap-remove,
// fixing the moved entry's index). Removal must dequeue: a recycled
// struct keeping its old queue slot would reseed the component walk in
// a different order than a fresh allocation, and the pooled build must
// stay bit-identical to the unpooled one.
func (s *System) dequeueVar(v *Variable) {
	if v.dirtyQ < 0 {
		return
	}
	last := len(s.dirtyVars) - 1
	moved := s.dirtyVars[last]
	s.dirtyVars[v.dirtyQ] = moved
	moved.dirtyQ = v.dirtyQ
	s.dirtyVars[last] = nil
	s.dirtyVars = s.dirtyVars[:last]
	v.dirtyQ = -1
}

func (s *System) touchCnst(c *Constraint) {
	if !c.dirty {
		c.dirty = true
		s.dirtyCnsts = append(s.dirtyCnsts, c)
	}
}

// NewConstraint adds a resource with the given capacity.
// Capacity must be non-negative; a zero-capacity constraint forces all
// its variables to zero.
func (s *System) NewConstraint(capacity float64) *Constraint {
	if capacity < 0 {
		capacity = 0
	}
	c := &Constraint{id: s.nextCID, idx: len(s.cnsts), capacity: capacity, shared: true, sys: s}
	s.nextCID++
	s.cnsts = append(s.cnsts, c)
	s.touchCnst(c)
	return c
}

// NewVariable adds an activity with the given sharing weight and upper
// bound (bound <= 0 means unbounded). Weight 0 makes the variable
// inactive: it receives value 0 and consumes nothing (used for
// suspended activities). The returned variable may be a recycled
// struct (see RemoveVariable) but always carries a fresh id and no
// state beyond the given parameters.
func (s *System) NewVariable(weight, bound float64) *Variable {
	v := s.grabVariable()
	v.id = s.nextVID
	v.idx = len(s.vars)
	v.weight = weight
	v.bound = bound
	v.sys = s
	s.nextVID++
	s.vars = append(s.vars, v)
	s.touchVar(v)
	return v
}

// Expand records that v consumes factor×value capacity on c. Expanding
// the same pair twice accumulates the factors (a route crossing the same
// link twice consumes twice the bandwidth on it).
func (s *System) Expand(c *Constraint, v *Variable, factor float64) {
	if factor <= 0 {
		return
	}
	s.touchVar(v)
	s.touchCnst(c)
	for _, e := range v.cnsts {
		if e.c == c {
			e.factor += factor
			return
		}
	}
	e := s.grabElem()
	e.v, e.c, e.factor = v, c, factor
	e.vIdx, e.cIdx = len(v.cnsts), len(c.elems)
	v.cnsts = append(v.cnsts, e)
	c.elems = append(c.elems, e)
}

// detachFromConstraint unlinks e from e.c.elems in O(1) by index swap.
func detachFromConstraint(e *elem) {
	c := e.c
	last := len(c.elems) - 1
	moved := c.elems[last]
	c.elems[e.cIdx] = moved
	moved.cIdx = e.cIdx
	c.elems[last] = nil
	c.elems = c.elems[:last]
}

// detachFromVariable unlinks e from e.v.cnsts in O(1) by index swap.
func detachFromVariable(e *elem) {
	v := e.v
	last := len(v.cnsts) - 1
	moved := v.cnsts[last]
	v.cnsts[e.vIdx] = moved
	moved.vIdx = e.vIdx
	v.cnsts[last] = nil
	v.cnsts = v.cnsts[:last]
}

// RemoveVariable detaches v from all its constraints and drops it from
// the system in O(degree). The struct (and its constraint elements)
// are scrubbed and recycled for a future NewVariable, so v must not be
// used afterwards — a later call on the stale pointer would act on
// whatever activity is reusing the struct.
func (s *System) RemoveVariable(v *Variable) {
	if v.sys != s {
		return
	}
	for i, e := range v.cnsts {
		s.touchCnst(e.c)
		detachFromConstraint(e)
		s.releaseElem(e)
		v.cnsts[i] = nil
	}
	v.cnsts = v.cnsts[:0] // keep the capacity for the next owner
	last := len(s.vars) - 1
	moved := s.vars[last]
	s.vars[v.idx] = moved
	moved.idx = v.idx
	s.vars[last] = nil
	s.vars = s.vars[:last]
	// Dequeue, scrub everything except the visit mark, and recycle.
	s.dequeueVar(v)
	v.sys = nil
	v.id, v.idx = 0, 0
	v.weight, v.bound, v.value = 0, 0, 0
	v.fixed = false
	v.Data = nil
	if poolingEnabled {
		s.varPool = append(s.varPool, v)
	}
	if len(s.vars) == 0 && len(s.cnsts) == 0 {
		// Nothing left to solve, but the books must still close.
		s.allDirty = true
	}
}

// RemoveConstraint drops c (and detaches it from all variables) in
// O(degree). The constraint struct itself is not recycled (resources
// live as long as their platform), but its elements are.
func (s *System) RemoveConstraint(c *Constraint) {
	if c.sys != s {
		return
	}
	for i, e := range c.elems {
		s.touchVar(e.v)
		detachFromVariable(e)
		s.releaseElem(e)
		c.elems[i] = nil
	}
	c.elems = nil
	last := len(s.cnsts) - 1
	moved := s.cnsts[last]
	s.cnsts[c.idx] = moved
	moved.idx = c.idx
	s.cnsts[last] = nil
	s.cnsts = s.cnsts[:last]
	c.sys = nil
	if len(s.vars) == 0 && len(s.cnsts) == 0 {
		s.allDirty = true
	}
}

// SetCapacity updates a resource capacity (trace events, failures).
func (s *System) SetCapacity(c *Constraint, capacity float64) {
	if capacity < 0 {
		capacity = 0
	}
	if c.capacity != capacity {
		c.capacity = capacity
		s.touchCnst(c)
	}
}

// SetWeight updates a variable's sharing weight (0 suspends it).
func (s *System) SetWeight(v *Variable, weight float64) {
	if v.weight != weight {
		v.weight = weight
		s.touchVar(v)
	}
}

// SetBound updates a variable's upper bound (<= 0 removes the bound).
func (s *System) SetBound(v *Variable, bound float64) {
	if v.bound != bound {
		v.bound = bound
		s.touchVar(v)
	}
}

// SetShared toggles capacity sharing on a constraint. Non-shared
// ("fatpipe") constraints only enforce the per-variable cap
// value×factor ≤ capacity instead of the sum.
func (s *System) SetShared(c *Constraint, shared bool) {
	if c.shared != shared {
		c.shared = shared
		s.touchCnst(c)
	}
}

// InvalidateAll marks the whole system dirty so the next Solve
// recomputes every component from scratch. Used by benchmarks to
// measure the full-recompute baseline and by tests as a reference
// solver; incremental and full solves yield identical allocations.
func (s *System) InvalidateAll() { s.allDirty = true }

// Value returns the variable's allocation from the last Solve.
func (v *Variable) Value() float64 { return v.value }

// Weight returns the variable's sharing weight.
func (v *Variable) Weight() float64 { return v.weight }

// Bound returns the variable's upper bound (<= 0 if unbounded).
func (v *Variable) Bound() float64 { return v.bound }

// Constraints returns the constraints the variable crosses.
func (v *Variable) Constraints() []*Constraint {
	out := make([]*Constraint, len(v.cnsts))
	for i, e := range v.cnsts {
		out[i] = e.c
	}
	return out
}

// Capacity returns the constraint's configured capacity.
func (c *Constraint) Capacity() float64 { return c.capacity }

// Usage returns the total load on the constraint after the last Solve.
func (c *Constraint) Usage() float64 { return c.usage }

// Shared reports whether the constraint's capacity is shared.
func (c *Constraint) Shared() bool { return c.shared }

// Variables returns the variables crossing this constraint.
func (c *Constraint) Variables() []*Variable {
	out := make([]*Variable, len(c.elems))
	for i, e := range c.elems {
		out[i] = e.v
	}
	return out
}

// Dirty reports whether the system changed since the last Solve.
func (s *System) Dirty() bool {
	return s.allDirty || len(s.dirtyVars) > 0 || len(s.dirtyCnsts) > 0
}

// Updated returns the variables whose allocation changed in the last
// Solve (including variables that joined or left a re-solved
// component). The slice is valid until the next Solve, and must be
// consumed before any RemoveVariable call: removal recycles the
// struct, so a stale entry may later denote a different activity
// (surf reads Updated immediately after Solve, inside one refresh).
func (s *System) Updated() []*Variable { return s.updated }

// Epsilon below which capacities/weights are treated as zero.
const eps = 1e-12

// Solve computes the max-min fair allocation by progressive filling and
// stores the result in each variable (read it with Value). Only the
// connected components containing a mutated variable or constraint are
// recomputed; allocations elsewhere are carried over. When nothing
// changed since the last Solve, it returns immediately.
//
// The algorithm maintains a "share" ratio r grown uniformly for all
// active variables (a variable's tentative value is r×weight). At each
// step it finds the smallest event among (a) a constraint saturating and
// (b) a variable reaching its bound, freezes the corresponding
// variables, subtracts their consumption, and iterates. Complexity is
// O((V+E)·rounds) over the re-solved components only.
func (s *System) Solve() {
	if !s.Dirty() {
		s.updated = s.updated[:0] // nothing changed
		return
	}
	s.solve()
	if shadowCheck {
		s.crossCheck()
	}
}

// collectScope fills s.solveVars/s.solveCnsts with the members of every
// connected component containing a dirty element (or the whole system
// when allDirty), clearing the dirty queues. Each component is laid out
// contiguously and its ranges recorded in s.comps, so components can be
// solved independently (and in parallel). The walk is expressed as
// methods on scratch fields, not closures: collectScope runs on every
// solve, and escaping closures here would be a per-step allocation.
func (s *System) collectScope() {
	s.solveVars = s.solveVars[:0]
	s.solveCnsts = s.solveCnsts[:0]
	s.comps = s.comps[:0]
	s.queue = s.queue[:0]
	s.visitGen++
	if s.allDirty {
		for _, v := range s.vars {
			s.walkComponentFrom(v, nil)
		}
		for _, c := range s.cnsts {
			s.walkComponentFrom(nil, c)
		}
	} else {
		for _, v := range s.dirtyVars {
			s.walkComponentFrom(v, nil)
		}
		for _, c := range s.dirtyCnsts {
			s.walkComponentFrom(nil, c)
		}
	}
	for _, v := range s.dirtyVars {
		v.dirtyQ = -1
	}
	for _, c := range s.dirtyCnsts {
		c.dirty = false
	}
	s.dirtyVars = s.dirtyVars[:0]
	s.dirtyCnsts = s.dirtyCnsts[:0]
	s.allDirty = false
}

// scopeAddC marks a constraint visited, appending it to the scope and
// the walk worklist.
func (s *System) scopeAddC(c *Constraint) {
	if c.sys == s && c.visit != s.visitGen {
		c.visit = s.visitGen
		s.solveCnsts = append(s.solveCnsts, c)
		s.queue = append(s.queue, c)
	}
}

// scopeAddV marks a variable visited, appending it and queueing its
// constraints.
func (s *System) scopeAddV(v *Variable) {
	if v.sys == s && v.visit != s.visitGen {
		v.visit = s.visitGen
		s.solveVars = append(s.solveVars, v)
		for _, e := range v.cnsts {
			s.scopeAddC(e.c)
		}
	}
}

// walkComponentFrom walks the full component of one unvisited seed
// (variable or constraint) before returning, so components land
// contiguously in solveVars/solveCnsts; an already-visited (or
// detached) seed contributes nothing.
func (s *System) walkComponentFrom(v *Variable, c *Constraint) {
	v0, c0 := len(s.solveVars), len(s.solveCnsts)
	if v != nil {
		s.scopeAddV(v)
	} else {
		s.scopeAddC(c)
	}
	for len(s.queue) > 0 {
		cc := s.queue[len(s.queue)-1]
		s.queue = s.queue[:len(s.queue)-1]
		for _, e := range cc.elems {
			s.scopeAddV(e.v)
		}
	}
	if len(s.solveVars) > v0 || len(s.solveCnsts) > c0 {
		s.comps = append(s.comps, component{v0: v0, v1: len(s.solveVars), c0: c0, c1: len(s.solveCnsts)})
	}
}

// minParallelComponents / minParallelScopeVars gate the parallel
// dispatch: below these scope sizes the per-solve goroutine spawn cost
// exceeds the solving work and the sequential path wins.
const (
	minParallelComponents = 4
	minParallelScopeVars  = 256
)

// parallelism decides how many workers to use for the current scope.
func (s *System) parallelism() int {
	w := s.workers
	if w == 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w <= 1 || len(s.comps) < minParallelComponents || len(s.solveVars) < minParallelScopeVars {
		return 1
	}
	if w > len(s.comps) {
		w = len(s.comps)
	}
	return w
}

// solve re-runs progressive filling on the dirty components — in
// parallel when the scope is large enough — and records which variables
// changed value.
func (s *System) solve() {
	s.collectScope()
	sv, sc := s.solveVars, s.solveCnsts

	s.stats.Solves++
	s.stats.ScopeVars += uint64(len(sv))
	s.stats.Components += uint64(len(s.comps))
	if len(sv) > s.stats.MaxScopeVars {
		s.stats.MaxScopeVars = len(sv)
	}
	if len(s.comps) > s.stats.MaxComponents {
		s.stats.MaxComponents = len(s.comps)
	}

	// Size the constraint-indexed load scratch to the current system.
	if cap(s.loads) < len(s.cnsts) {
		s.loads = make([]float64, len(s.cnsts))
	}
	loads := s.loads[:cap(s.loads)]

	// Remember pre-solve values to report changes.
	oldVals := s.oldVals[:0]
	for _, v := range sv {
		oldVals = append(oldVals, v.value)
	}
	s.oldVals = oldVals

	if workers := s.parallelism(); workers > 1 {
		s.stats.ParallelSolves++
		s.solveParallel(workers, loads)
	} else {
		active := s.active
		for _, cr := range s.comps {
			active = solveComponent(sv[cr.v0:cr.v1], sc[cr.c0:cr.c1], loads, active[:0])
		}
		s.active = active[:0]
	}

	// Report variables whose allocation changed.
	updated := s.updated[:0]
	for i, v := range sv {
		if v.value != oldVals[i] {
			updated = append(updated, v)
		}
	}
	s.updated = updated
}

// solveParallel dispatches the collected components to a pool of
// workers pulling from a shared index. Components only ever touch their
// own variables, constraints and loads[] entries (constraint indices
// are disjoint across components), so workers share no mutable state
// beyond the claim counter; the merged result is bit-identical to the
// sequential order.
func (s *System) solveParallel(workers int, loads []float64) {
	sv, sc, comps := s.solveVars, s.solveCnsts, s.comps
	if len(s.workerActive) < workers {
		s.workerActive = append(s.workerActive, make([][]*Variable, workers-len(s.workerActive))...)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		//lint:allow det-goroutine bounded worker pool over disjoint components; the merged result is bit-identical to the sequential solve
		go func(w int) {
			defer wg.Done()
			active := s.workerActive[w]
			for {
				i := int(next.Add(1)) - 1
				if i >= len(comps) {
					break
				}
				cr := comps[i]
				active = solveComponent(sv[cr.v0:cr.v1], sc[cr.c0:cr.c1], loads, active[:0])
			}
			s.workerActive[w] = active[:0]
		}(w)
	}
	wg.Wait()
}

// solveComponent runs progressive filling on one connected component
// (sv/sc are the component's members) and stores values and usage on
// its variables and constraints. loads is the system-wide
// constraint-indexed scratch (components touch disjoint entries);
// active is the caller's scratch for the active set, returned for
// reuse.
func solveComponent(sv []*Variable, sc []*Constraint, loads []float64, active []*Variable) []*Variable {
	// Reset scope state; variables on a zero-capacity constraint (shared
	// or fatpipe alike) are fixed at 0 immediately.
	for _, v := range sv {
		v.fixed = true
		v.value = 0
		if v.weight <= eps || len(v.cnsts) == 0 {
			continue // inactive or unconstrained-with-no-resource
		}
		starved := false
		for _, e := range v.cnsts {
			if e.c.capacity <= eps {
				starved = true
				break
			}
		}
		if !starved {
			v.fixed = false
			active = append(active, v)
		}
	}
	for _, c := range sc {
		c.remCap = c.capacity
	}

	for len(active) > 0 {
		// loads[c.idx] = sum over active vars on c of weight*factor.
		for _, c := range sc {
			loads[c.idx] = 0
		}
		for _, v := range active {
			for _, e := range v.cnsts {
				loads[e.c.idx] += v.weight * e.factor
			}
		}

		// Candidate growth limit from constraints: r such that
		// r * weightedLoad == remCap (shared) or per-variable for fatpipes.
		minR := math.Inf(1)
		for _, c := range sc {
			if !c.shared {
				// Fatpipe: each variable independently limited by
				// capacity/(weight*factor); handled below per variable.
				continue
			}
			if wl := loads[c.idx]; wl > eps {
				if r := c.remCap / wl; r < minR {
					minR = r
				}
			}
		}
		// Candidate growth limit from variable bounds and fatpipes.
		for _, v := range active {
			if v.bound > 0 {
				if r := v.bound / v.weight; r < minR {
					minR = r
				}
			}
			for _, e := range v.cnsts {
				if !e.c.shared && e.factor > eps {
					if r := e.c.remCap / (v.weight * e.factor); r < minR {
						minR = r
					}
				}
			}
		}
		if math.IsInf(minR, 1) {
			// No limiting factor: variables are unconstrained. This
			// only happens when every active variable sits on fatpipe
			// constraints with infinite capacity; clamp to bound-less
			// infinity is meaningless, so freeze at +Inf guarded by eps.
			for _, v := range active {
				v.value = math.Inf(1)
				v.fixed = true
			}
			active = active[:0]
			break
		}
		if minR < 0 {
			minR = 0
		}

		// Mark everything that saturates at r = minR against the
		// round-start remaining capacities, then apply the freezes. The
		// two-phase sweep keeps the round order-independent and freezes
		// every variable of a saturating constraint in one pass.
		frozen := 0
		for _, v := range active {
			val := minR * v.weight
			atBound := v.bound > 0 && val >= v.bound-1e-9*math.Max(1, v.bound)
			atCnst := false
			for _, e := range v.cnsts {
				if e.c.shared {
					wl := loads[e.c.idx]
					if wl > eps && math.Abs(e.c.remCap/wl-minR) <= 1e-9*math.Max(1, minR) {
						atCnst = true
						break
					}
				} else if e.factor > eps {
					if math.Abs(e.c.remCap/(v.weight*e.factor)-minR) <= 1e-9*math.Max(1, minR) {
						atCnst = true
						break
					}
				}
			}
			if atBound || atCnst {
				if atBound && (v.bound < val || !atCnst) {
					val = v.bound
				}
				v.value = val
				v.fixed = true
				frozen++
			}
		}
		if frozen == 0 {
			// Numerical stall: freeze the variable with the smallest
			// weight to guarantee progress.
			var worst *Variable
			for _, v := range active {
				if worst == nil || v.weight < worst.weight {
					worst = v
				}
			}
			worst.value = minR * worst.weight
			worst.fixed = true
		}
		// Subtract frozen consumption and compact the active set.
		n := 0
		for _, v := range active {
			if !v.fixed {
				active[n] = v
				n++
				continue
			}
			for _, e := range v.cnsts {
				if e.c.shared {
					e.c.remCap -= v.value * e.factor
					if e.c.remCap < 0 {
						e.c.remCap = 0
					}
				}
			}
		}
		active = active[:n]
	}

	// Record usage on the re-solved constraints.
	for _, c := range sc {
		u := 0.0
		for _, e := range c.elems {
			u += e.v.value * e.factor
		}
		c.usage = u
	}
	return active[:0]
}

// Validate checks the current solution for feasibility and max-min
// optimality within tolerance tol and returns a list of violations
// (empty when the solution is sound). It is used by tests and available
// to callers as a debugging aid.
func (s *System) Validate(tol float64) []string {
	var problems []string
	for _, c := range s.cnsts {
		if !c.shared {
			for _, e := range c.elems {
				if e.v.value*e.factor > c.capacity+tol {
					problems = append(problems,
						fmt.Sprintf("fatpipe constraint %d: var %d uses %g > cap %g", //lint:allow hot-sprintf cold path: Validate is a debugging aid, never on the solve path
							c.id, e.v.id, e.v.value*e.factor, c.capacity))
				}
			}
			continue
		}
		u := 0.0
		for _, e := range c.elems {
			u += e.v.value * e.factor
		}
		if u > c.capacity+tol {
			problems = append(problems,
				fmt.Sprintf("constraint %d overloaded: usage %g > cap %g", c.id, u, c.capacity)) //lint:allow hot-sprintf cold path: Validate is a debugging aid, never on the solve path
		}
	}
	// Max-min optimality: every active variable must be saturated —
	// either at its bound or on at least one tight constraint.
	for _, v := range s.vars {
		if v.weight <= eps || len(v.cnsts) == 0 {
			continue
		}
		if v.bound > 0 && v.value >= v.bound-tol {
			continue
		}
		sat := false
		for _, e := range v.cnsts {
			c := e.c
			if !c.shared {
				if e.v.value*e.factor >= c.capacity-tol {
					sat = true
					break
				}
				continue
			}
			u := 0.0
			for _, ce := range c.elems {
				u += ce.v.value * ce.factor
			}
			if u >= c.capacity-tol {
				sat = true
				break
			}
		}
		if !sat {
			problems = append(problems,
				fmt.Sprintf("variable %d not saturated: value %g, bound %g", v.id, v.value, v.bound)) //lint:allow hot-sprintf cold path: Validate is a debugging aid, never on the solve path
		}
	}
	return problems
}

// String renders the system state for debugging.
func (s *System) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "maxmin system: %d vars, %d constraints\n", len(s.vars), len(s.cnsts))
	cs := make([]*Constraint, len(s.cnsts))
	copy(cs, s.cnsts)
	sort.Slice(cs, func(i, j int) bool { return cs[i].id < cs[j].id })
	for _, c := range cs {
		fmt.Fprintf(&b, "  C%d cap=%g usage=%g shared=%v vars=[", c.id, c.capacity, c.usage, c.shared)
		for i, e := range c.elems {
			if i > 0 {
				b.WriteString(" ")
			}
			fmt.Fprintf(&b, "V%d×%g", e.v.id, e.factor)
		}
		b.WriteString("]\n")
	}
	vs := make([]*Variable, len(s.vars))
	copy(vs, s.vars)
	sort.Slice(vs, func(i, j int) bool { return vs[i].id < vs[j].id })
	for _, v := range vs {
		fmt.Fprintf(&b, "  V%d w=%g bound=%g value=%g\n", v.id, v.weight, v.bound, v.value)
	}
	return b.String()
}

// NVariables returns the number of variables in the system.
func (s *System) NVariables() int { return len(s.vars) }

// NConstraints returns the number of constraints in the system.
func (s *System) NConstraints() int { return len(s.cnsts) }
