// Package maxmin implements the weighted, bounded Max-Min fairness
// solver at the heart of SURF ("allocate as much capacity to all tasks
// in a way that maximizes the minimum capacity allocation over all
// tasks" — SimGrid, HPDC'06).
//
// The model is a linear system: variables (one per simulated activity:
// a TCP flow, a computation, ...) consume capacity on constraints (one
// per resource: a network link, a CPU). A variable x with weight w that
// crosses constraint c contributes w·x to c's load, and c's load must
// not exceed its capacity. Variables may additionally carry an upper
// bound (e.g. the TCP window bound gamma/2RTT).
//
// Solve computes the max-min fair allocation by progressive filling:
// grow all variables' shares together until either a variable hits its
// bound (it is then frozen) or a constraint saturates (all its variables
// are then frozen), remove frozen usage, and repeat on the remainder.
package maxmin

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Variable is one activity receiving an allocation. Create variables
// with System.NewVariable and attach them to constraints with Expand.
type Variable struct {
	id     int
	weight float64 // sharing weight (a.k.a. priority); 0 disables the variable
	bound  float64 // upper bound on Value; <= 0 means unbounded
	value  float64 // the solution, valid after Solve

	cnsts []*elem

	// User cookie: the surf action owning this variable.
	Data any

	sys   *System
	fixed bool
}

// elem ties a variable to a constraint with a consumption multiplier.
type elem struct {
	v      *Variable
	c      *Constraint
	factor float64 // capacity consumed per unit of variable value
}

// Constraint is one capacity-limited resource.
type Constraint struct {
	id       int
	capacity float64
	elems    []*elem

	// shared reports whether concurrent variables share the capacity
	// (true, the normal case: links, CPUs) or each may use the full
	// capacity independently (false: SimGrid "fatpipe" links, modelling
	// e.g. the Internet backbone in some platform files).
	shared bool

	// User cookie: the surf resource owning this constraint.
	Data any

	sys    *System
	remCap float64 // scratch for Solve
	usage  float64 // post-solve total load
}

// System holds variables and constraints and solves the allocation.
// The zero value is not usable; call NewSystem.
type System struct {
	vars    []*Variable
	cnsts   []*Constraint
	nextVID int
	nextCID int
	dirty   bool
}

// NewSystem returns an empty linear MaxMin system.
func NewSystem() *System { return &System{} }

// NewConstraint adds a resource with the given capacity.
// Capacity must be non-negative; a zero-capacity constraint forces all
// its variables to zero.
func (s *System) NewConstraint(capacity float64) *Constraint {
	if capacity < 0 {
		capacity = 0
	}
	c := &Constraint{id: s.nextCID, capacity: capacity, shared: true, sys: s}
	s.nextCID++
	s.cnsts = append(s.cnsts, c)
	s.dirty = true
	return c
}

// NewVariable adds an activity with the given sharing weight and upper
// bound (bound <= 0 means unbounded). Weight 0 makes the variable
// inactive: it receives value 0 and consumes nothing (used for
// suspended activities).
func (s *System) NewVariable(weight, bound float64) *Variable {
	v := &Variable{id: s.nextVID, weight: weight, bound: bound, sys: s}
	s.nextVID++
	s.vars = append(s.vars, v)
	s.dirty = true
	return v
}

// Expand records that v consumes factor×value capacity on c. Expanding
// the same pair twice accumulates the factors (a route crossing the same
// link twice consumes twice the bandwidth on it).
func (s *System) Expand(c *Constraint, v *Variable, factor float64) {
	if factor <= 0 {
		return
	}
	for _, e := range v.cnsts {
		if e.c == c {
			e.factor += factor
			s.dirty = true
			return
		}
	}
	e := &elem{v: v, c: c, factor: factor}
	v.cnsts = append(v.cnsts, e)
	c.elems = append(c.elems, e)
	s.dirty = true
}

// RemoveVariable detaches v from all its constraints and drops it from
// the system. v must not be used afterwards.
func (s *System) RemoveVariable(v *Variable) {
	for _, e := range v.cnsts {
		c := e.c
		for i, ce := range c.elems {
			if ce == e {
				c.elems = append(c.elems[:i], c.elems[i+1:]...)
				break
			}
		}
	}
	v.cnsts = nil
	for i, sv := range s.vars {
		if sv == v {
			s.vars = append(s.vars[:i], s.vars[i+1:]...)
			break
		}
	}
	v.sys = nil
	s.dirty = true
}

// RemoveConstraint drops c (and detaches it from all variables).
func (s *System) RemoveConstraint(c *Constraint) {
	for _, e := range c.elems {
		v := e.v
		for i, ve := range v.cnsts {
			if ve == e {
				v.cnsts = append(v.cnsts[:i], v.cnsts[i+1:]...)
				break
			}
		}
	}
	c.elems = nil
	for i, sc := range s.cnsts {
		if sc == c {
			s.cnsts = append(s.cnsts[:i], s.cnsts[i+1:]...)
			break
		}
	}
	c.sys = nil
	s.dirty = true
}

// SetCapacity updates a resource capacity (trace events, failures).
func (s *System) SetCapacity(c *Constraint, capacity float64) {
	if capacity < 0 {
		capacity = 0
	}
	if c.capacity != capacity {
		c.capacity = capacity
		s.dirty = true
	}
}

// SetWeight updates a variable's sharing weight (0 suspends it).
func (s *System) SetWeight(v *Variable, weight float64) {
	if v.weight != weight {
		v.weight = weight
		s.dirty = true
	}
}

// SetBound updates a variable's upper bound (<= 0 removes the bound).
func (s *System) SetBound(v *Variable, bound float64) {
	if v.bound != bound {
		v.bound = bound
		s.dirty = true
	}
}

// SetShared toggles capacity sharing on a constraint. Non-shared
// ("fatpipe") constraints only enforce the per-variable cap
// value×factor ≤ capacity instead of the sum.
func (s *System) SetShared(c *Constraint, shared bool) {
	if c.shared != shared {
		c.shared = shared
		s.dirty = true
	}
}

// Value returns the variable's allocation from the last Solve.
func (v *Variable) Value() float64 { return v.value }

// Weight returns the variable's sharing weight.
func (v *Variable) Weight() float64 { return v.weight }

// Bound returns the variable's upper bound (<= 0 if unbounded).
func (v *Variable) Bound() float64 { return v.bound }

// Constraints returns the constraints the variable crosses.
func (v *Variable) Constraints() []*Constraint {
	out := make([]*Constraint, len(v.cnsts))
	for i, e := range v.cnsts {
		out[i] = e.c
	}
	return out
}

// Capacity returns the constraint's configured capacity.
func (c *Constraint) Capacity() float64 { return c.capacity }

// Usage returns the total load on the constraint after the last Solve.
func (c *Constraint) Usage() float64 { return c.usage }

// Shared reports whether the constraint's capacity is shared.
func (c *Constraint) Shared() bool { return c.shared }

// Variables returns the variables crossing this constraint.
func (c *Constraint) Variables() []*Variable {
	out := make([]*Variable, len(c.elems))
	for i, e := range c.elems {
		out[i] = e.v
	}
	return out
}

// Dirty reports whether the system changed since the last Solve.
func (s *System) Dirty() bool { return s.dirty }

// Epsilon below which capacities/weights are treated as zero.
const eps = 1e-12

// Solve computes the max-min fair allocation by progressive filling and
// stores the result in each variable (read it with Value).
//
// The algorithm maintains a "share" ratio r grown uniformly for all
// active variables (a variable's tentative value is r×weight). At each
// step it finds the smallest event among (a) a constraint saturating and
// (b) a variable reaching its bound, freezes the corresponding
// variables, subtracts their consumption, and iterates. Complexity is
// O((V+E)·min(V,C)) which is ample for simulation workloads where the
// system is re-solved only when the action set changes.
func (s *System) Solve() {
	// Reset scratch state.
	active := 0
	for _, v := range s.vars {
		v.fixed = false
		v.value = 0
		if v.weight <= eps || len(v.cnsts) == 0 {
			v.fixed = true // inactive or unconstrained-with-no-resource
			continue
		}
		active++
	}
	for _, c := range s.cnsts {
		c.remCap = c.capacity
		c.usage = 0
	}
	// A variable on any zero-capacity constraint gets 0 immediately.
	for _, v := range s.vars {
		if v.fixed {
			continue
		}
		for _, e := range v.cnsts {
			if e.c.capacity <= eps && e.c.shared {
				v.fixed = true
				active--
				break
			}
			if !e.c.shared && e.c.capacity <= eps {
				v.fixed = true
				active--
				break
			}
		}
	}

	for active > 0 {
		// weightedLoad[c] = sum over active vars on c of weight*factor.
		loads := make(map[*Constraint]float64, len(s.cnsts))
		for _, v := range s.vars {
			if v.fixed {
				continue
			}
			for _, e := range v.cnsts {
				loads[e.c] += v.weight * e.factor
			}
		}

		// Candidate growth limit from constraints: r such that
		// r * weightedLoad == remCap (shared) or per-variable for fatpipes.
		minR := math.Inf(1)
		for c, wl := range loads {
			if wl <= eps {
				continue
			}
			var r float64
			if c.shared {
				r = c.remCap / wl
			} else {
				// Fatpipe: each variable independently limited by
				// capacity/(weight*factor); handled below per variable.
				continue
			}
			if r < minR {
				minR = r
			}
		}
		// Candidate growth limit from variable bounds and fatpipes.
		for _, v := range s.vars {
			if v.fixed {
				continue
			}
			if v.bound > 0 {
				if r := v.bound / v.weight; r < minR {
					minR = r
				}
			}
			for _, e := range v.cnsts {
				if !e.c.shared && e.factor > eps {
					if r := e.c.remCap / (v.weight * e.factor); r < minR {
						minR = r
					}
				}
			}
		}
		if math.IsInf(minR, 1) {
			// No limiting factor: variables are unconstrained. This
			// only happens when every active variable sits on fatpipe
			// constraints with infinite capacity; clamp to bound-less
			// infinity is meaningless, so freeze at +Inf guarded by eps.
			for _, v := range s.vars {
				if !v.fixed {
					v.value = math.Inf(1)
					v.fixed = true
					active--
				}
			}
			break
		}
		if minR < 0 {
			minR = 0
		}

		// Freeze everything that saturates at r = minR.
		frozen := 0
		for _, v := range s.vars {
			if v.fixed {
				continue
			}
			val := minR * v.weight
			atBound := v.bound > 0 && val >= v.bound-1e-9*math.Max(1, v.bound)
			atCnst := false
			for _, e := range v.cnsts {
				if e.c.shared {
					wl := loads[e.c]
					if wl > eps && math.Abs(e.c.remCap/wl-minR) <= 1e-9*math.Max(1, minR) {
						atCnst = true
						break
					}
				} else if e.factor > eps {
					if math.Abs(e.c.remCap/(v.weight*e.factor)-minR) <= 1e-9*math.Max(1, minR) {
						atCnst = true
						break
					}
				}
			}
			if atBound || atCnst {
				if atBound && (v.bound < val || !atCnst) {
					val = v.bound
				}
				v.value = val
				v.fixed = true
				frozen++
				active--
				// Subtract consumption from remaining capacities.
				for _, e := range v.cnsts {
					if e.c.shared {
						e.c.remCap -= val * e.factor
						if e.c.remCap < 0 {
							e.c.remCap = 0
						}
					}
				}
			}
		}
		if frozen == 0 {
			// Numerical stall: freeze the variable with the smallest
			// tentative value to guarantee progress.
			var worst *Variable
			for _, v := range s.vars {
				if !v.fixed && (worst == nil || v.weight < worst.weight) {
					worst = v
				}
			}
			if worst == nil {
				break
			}
			worst.value = minR * worst.weight
			worst.fixed = true
			active--
			for _, e := range worst.cnsts {
				if e.c.shared {
					e.c.remCap -= worst.value * e.factor
					if e.c.remCap < 0 {
						e.c.remCap = 0
					}
				}
			}
		}
	}

	// Record usage.
	for _, c := range s.cnsts {
		u := 0.0
		for _, e := range c.elems {
			u += e.v.value * e.factor
		}
		c.usage = u
	}
	s.dirty = false
}

// Validate checks the current solution for feasibility and max-min
// optimality within tolerance tol and returns a list of violations
// (empty when the solution is sound). It is used by tests and available
// to callers as a debugging aid.
func (s *System) Validate(tol float64) []string {
	var problems []string
	for _, c := range s.cnsts {
		if !c.shared {
			for _, e := range c.elems {
				if e.v.value*e.factor > c.capacity+tol {
					problems = append(problems,
						fmt.Sprintf("fatpipe constraint %d: var %d uses %g > cap %g",
							c.id, e.v.id, e.v.value*e.factor, c.capacity))
				}
			}
			continue
		}
		u := 0.0
		for _, e := range c.elems {
			u += e.v.value * e.factor
		}
		if u > c.capacity+tol {
			problems = append(problems,
				fmt.Sprintf("constraint %d overloaded: usage %g > cap %g", c.id, u, c.capacity))
		}
	}
	// Max-min optimality: every active variable must be saturated —
	// either at its bound or on at least one tight constraint.
	for _, v := range s.vars {
		if v.weight <= eps || len(v.cnsts) == 0 {
			continue
		}
		if v.bound > 0 && v.value >= v.bound-tol {
			continue
		}
		sat := false
		for _, e := range v.cnsts {
			c := e.c
			if !c.shared {
				if e.v.value*e.factor >= c.capacity-tol {
					sat = true
					break
				}
				continue
			}
			u := 0.0
			for _, ce := range c.elems {
				u += ce.v.value * ce.factor
			}
			if u >= c.capacity-tol {
				sat = true
				break
			}
		}
		if !sat {
			problems = append(problems,
				fmt.Sprintf("variable %d not saturated: value %g, bound %g", v.id, v.value, v.bound))
		}
	}
	return problems
}

// String renders the system state for debugging.
func (s *System) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "maxmin system: %d vars, %d constraints\n", len(s.vars), len(s.cnsts))
	cs := make([]*Constraint, len(s.cnsts))
	copy(cs, s.cnsts)
	sort.Slice(cs, func(i, j int) bool { return cs[i].id < cs[j].id })
	for _, c := range cs {
		fmt.Fprintf(&b, "  C%d cap=%g usage=%g shared=%v vars=[", c.id, c.capacity, c.usage, c.shared)
		for i, e := range c.elems {
			if i > 0 {
				b.WriteString(" ")
			}
			fmt.Fprintf(&b, "V%d×%g", e.v.id, e.factor)
		}
		b.WriteString("]\n")
	}
	vs := make([]*Variable, len(s.vars))
	copy(vs, s.vars)
	sort.Slice(vs, func(i, j int) bool { return vs[i].id < vs[j].id })
	for _, v := range vs {
		fmt.Fprintf(&b, "  V%d w=%g bound=%g value=%g\n", v.id, v.weight, v.bound, v.value)
	}
	return b.String()
}

// NVariables returns the number of variables in the system.
func (s *System) NVariables() int { return len(s.vars) }

// NConstraints returns the number of constraints in the system.
func (s *System) NConstraints() int { return len(s.cnsts) }
