//go:build !maxmincheck

package maxmin

// shadowCheck enables the full-solve cross-check after every
// incremental Solve. Build with -tags=maxmincheck to turn it on.
const shadowCheck = false
