package maxmin

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestIncrementalEquivalenceProperty drives randomized mutation
// sequences (expand / set-weight / set-bound / set-capacity /
// set-shared / add and remove variables and constraints) through two
// mirrored systems: one solved incrementally after every mutation, one
// forced through a from-scratch full recompute with InvalidateAll. The
// allocations and constraint usages must stay identical within eps.
func TestIncrementalEquivalenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		sa, sb := NewSystem(), NewSystem()
		var av, bv []*Variable
		var ac, bc []*Constraint

		addCnst := func() {
			cap := rng.Float64() * 100
			if rng.Intn(8) == 0 {
				cap = 0 // failed resource
			}
			ca, cb := sa.NewConstraint(cap), sb.NewConstraint(cap)
			if rng.Intn(5) == 0 {
				sa.SetShared(ca, false)
				sb.SetShared(cb, false)
			}
			ac, bc = append(ac, ca), append(bc, cb)
		}
		addVar := func() {
			bound := 0.0
			if rng.Intn(3) == 0 {
				bound = 0.5 + rng.Float64()*20
			}
			w := 0.5 + rng.Float64()*4
			va, vb := sa.NewVariable(w, bound), sb.NewVariable(w, bound)
			for n := 1 + rng.Intn(3); n > 0 && len(ac) > 0; n-- {
				i := rng.Intn(len(ac))
				f := 0.5 + rng.Float64()*2
				sa.Expand(ac[i], va, f)
				sb.Expand(bc[i], vb, f)
			}
			av, bv = append(av, va), append(bv, vb)
		}

		for i := 0; i < 2+rng.Intn(5); i++ {
			addCnst()
		}
		for i := 0; i < 4+rng.Intn(10); i++ {
			addVar()
		}

		for step := 0; step < 40; step++ {
			switch rng.Intn(9) {
			case 0:
				addCnst()
			case 1:
				addVar()
			case 2:
				if len(ac) > 1 {
					i := rng.Intn(len(ac))
					sa.RemoveConstraint(ac[i])
					sb.RemoveConstraint(bc[i])
					ac = append(ac[:i], ac[i+1:]...)
					bc = append(bc[:i], bc[i+1:]...)
				}
			case 3:
				if len(av) > 1 {
					i := rng.Intn(len(av))
					sa.RemoveVariable(av[i])
					sb.RemoveVariable(bv[i])
					av = append(av[:i], av[i+1:]...)
					bv = append(bv[:i], bv[i+1:]...)
				}
			case 4:
				if len(av) > 0 {
					i := rng.Intn(len(av))
					w := rng.Float64() * 4 // 0 suspends
					sa.SetWeight(av[i], w)
					sb.SetWeight(bv[i], w)
				}
			case 5:
				if len(av) > 0 {
					i := rng.Intn(len(av))
					bound := rng.Float64()*20 - 5 // <= 0 unbounds
					sa.SetBound(av[i], bound)
					sb.SetBound(bv[i], bound)
				}
			case 6:
				if len(ac) > 0 {
					i := rng.Intn(len(ac))
					cap := rng.Float64() * 100
					if rng.Intn(6) == 0 {
						cap = 0
					}
					sa.SetCapacity(ac[i], cap)
					sb.SetCapacity(bc[i], cap)
				}
			case 7:
				if len(ac) > 0 && len(av) > 0 {
					i, j := rng.Intn(len(ac)), rng.Intn(len(av))
					f := 0.5 + rng.Float64()*2
					sa.Expand(ac[i], av[j], f)
					sb.Expand(bc[i], bv[j], f)
				}
			case 8:
				if len(ac) > 0 {
					i := rng.Intn(len(ac))
					shared := rng.Intn(2) == 0
					sa.SetShared(ac[i], shared)
					sb.SetShared(bc[i], shared)
				}
			}
			sa.Solve() // incremental: dirty components only
			sb.InvalidateAll()
			sb.Solve() // reference: full recompute
			for i := range av {
				x, y := av[i].Value(), bv[i].Value()
				if math.IsInf(x, 1) && math.IsInf(y, 1) {
					continue
				}
				if !approx(x, y, 1e-6*(1+math.Abs(y))) {
					t.Logf("seed %d step %d: var %d incremental=%g full=%g\nincremental:\n%s\nfull:\n%s",
						seed, step, i, x, y, sa.String(), sb.String())
					return false
				}
			}
			for i := range ac {
				x, y := ac[i].Usage(), bc[i].Usage()
				if math.IsInf(x, 1) && math.IsInf(y, 1) {
					continue
				}
				if !approx(x, y, 1e-6*(1+math.Abs(y))) {
					t.Logf("seed %d step %d: constraint %d usage incremental=%g full=%g",
						seed, step, i, x, y)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Regression for the zero-capacity pre-pass: fatpipe (non-shared)
// constraints with zero capacity must starve their variables exactly
// like shared ones (the seed had two duplicate branches for this; they
// are now a single capacity check).
func TestZeroCapacityFatpipeConstraint(t *testing.T) {
	s := NewSystem()
	c := s.NewConstraint(0)
	s.SetShared(c, false)
	v1 := s.NewVariable(1, 0)
	v2 := s.NewVariable(2, 5)
	s.Expand(c, v1, 1)
	s.Expand(c, v2, 1.5)
	s.Solve()
	if v1.Value() != 0 || v2.Value() != 0 {
		t.Errorf("values on zero-capacity fatpipe = %g,%g, want 0,0", v1.Value(), v2.Value())
	}
	// A healthy constraint on the same variable must not resurrect it.
	ok := s.NewConstraint(10)
	s.Expand(ok, v1, 1)
	s.Solve()
	if v1.Value() != 0 {
		t.Errorf("value with one dead fatpipe + one healthy constraint = %g, want 0", v1.Value())
	}
	// Restoring the capacity revives both variables at the fatpipe
	// semantics (each bounded independently).
	s.SetCapacity(c, 9)
	s.Solve()
	if !approx(v1.Value(), 9, 1e-9) {
		t.Errorf("v1 after restore = %g, want 9", v1.Value())
	}
	if !approx(v2.Value(), 5, 1e-9) { // bound 5 < 9/1.5
		t.Errorf("v2 after restore = %g, want 5 (its bound)", v2.Value())
	}
}

// Updated must report exactly the variables whose allocation changed:
// mutating one component must not touch (or report) the other.
func TestUpdatedReportsOnlyChangedComponent(t *testing.T) {
	s := NewSystem()
	c1 := s.NewConstraint(10)
	c2 := s.NewConstraint(20)
	a1 := s.NewVariable(1, 0)
	a2 := s.NewVariable(1, 0)
	b1 := s.NewVariable(1, 0)
	s.Expand(c1, a1, 1)
	s.Expand(c1, a2, 1)
	s.Expand(c2, b1, 1)
	s.Solve()
	if n := len(s.Updated()); n != 3 {
		t.Fatalf("initial solve updated %d vars, want 3", n)
	}

	s.SetWeight(a1, 3) // touches only the c1 component
	s.Solve()
	up := map[*Variable]bool{}
	for _, v := range s.Updated() {
		up[v] = true
	}
	if !up[a1] || !up[a2] {
		t.Errorf("updated = %v, want both c1 variables", up)
	}
	if up[b1] {
		t.Error("variable of untouched component reported as updated")
	}
	if !approx(b1.Value(), 20, 1e-9) {
		t.Errorf("untouched component value = %g, want 20", b1.Value())
	}
	if !approx(a1.Value(), 7.5, 1e-9) || !approx(a2.Value(), 2.5, 1e-9) {
		t.Errorf("resolved component = %g,%g, want 7.5,2.5", a1.Value(), a2.Value())
	}

	// A clean system must not re-solve at all.
	s.Solve()
	if len(s.Updated()) != 0 {
		t.Error("clean re-solve reported updates")
	}
}

// A mutation in one component must leave the allocations of every
// other component bit-identical (carried over, not recomputed).
func TestPartialSolveLeavesOtherComponentsUntouched(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	s := NewSystem()
	type comp struct {
		vars []*Variable
		cns  []*Constraint
	}
	var comps []comp
	for k := 0; k < 20; k++ {
		var cp comp
		for i := 0; i < 3; i++ {
			cp.cns = append(cp.cns, s.NewConstraint(1+rng.Float64()*50))
		}
		for i := 0; i < 8; i++ {
			v := s.NewVariable(0.5+rng.Float64()*2, 0)
			s.Expand(cp.cns[rng.Intn(3)], v, 0.5+rng.Float64())
			s.Expand(cp.cns[rng.Intn(3)], v, 0.5+rng.Float64())
			cp.vars = append(cp.vars, v)
		}
		comps = append(comps, cp)
	}
	s.Solve()
	before := make(map[*Variable]float64)
	for _, cp := range comps[1:] {
		for _, v := range cp.vars {
			before[v] = v.Value()
		}
	}
	s.SetCapacity(comps[0].cns[0], 123)
	s.SetWeight(comps[0].vars[0], 9)
	s.Solve()
	for v, want := range before {
		if v.Value() != want {
			t.Fatalf("untouched component variable drifted: %g != %g", v.Value(), want)
		}
	}
	if problems := s.Validate(1e-6); len(problems) > 0 {
		t.Errorf("solution invalid after partial solve: %v", problems)
	}
}

// Steady-state incremental solves must not allocate.
func TestIncrementalSolveAllocationFree(t *testing.T) {
	if shadowCheck {
		t.Skip("the -tags=maxmincheck shadow solve allocates by design")
	}
	s := NewSystem()
	var cns []*Constraint
	for i := 0; i < 50; i++ {
		cns = append(cns, s.NewConstraint(10+float64(i%7)))
	}
	var vars []*Variable
	for i := 0; i < 400; i++ {
		v := s.NewVariable(1, 0)
		s.Expand(cns[i%50], v, 1)
		s.Expand(cns[(i*7+3)%50], v, 1)
		vars = append(vars, v)
	}
	s.Solve()
	i := 0
	avg := testing.AllocsPerRun(100, func() {
		s.SetWeight(vars[i%400], float64(1+i%3))
		s.Solve()
		i++
	})
	if avg > 0 {
		t.Errorf("incremental solve allocates %.1f objects per run, want 0", avg)
	}
}
