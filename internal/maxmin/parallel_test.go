package maxmin

import (
	"math/rand"
	"testing"
)

// islandSystem is a federation of independent sharing islands — many
// connected components — used to exercise the parallel component solve.
type islandSystem struct {
	sys   *System
	cnsts [][]*Constraint // per island
	vars  [][]*Variable   // per island
	rng   *rand.Rand
}

// newIslandSystem builds nIslands components of nCnsts constraints and
// nVars variables each, with random routes of 1-3 constraints.
func newIslandSystem(seed int64, workers, nIslands, nCnsts, nVars int) *islandSystem {
	is := &islandSystem{sys: NewSystem(), rng: rand.New(rand.NewSource(seed))}
	is.sys.SetWorkers(workers)
	for i := 0; i < nIslands; i++ {
		cs := make([]*Constraint, nCnsts)
		for j := range cs {
			cs[j] = is.sys.NewConstraint(10 + is.rng.Float64()*90)
			if is.rng.Intn(10) == 0 {
				is.sys.SetShared(cs[j], false)
			}
		}
		vs := make([]*Variable, nVars)
		for j := range vs {
			vs[j] = is.newVar(cs)
		}
		is.cnsts = append(is.cnsts, cs)
		is.vars = append(is.vars, vs)
	}
	return is
}

func (is *islandSystem) newVar(cs []*Constraint) *Variable {
	bound := 0.0
	if is.rng.Intn(3) == 0 {
		bound = 1 + is.rng.Float64()*20
	}
	v := is.sys.NewVariable(0.5+is.rng.Float64()*2, bound)
	for _, k := range is.rng.Perm(len(cs))[:1+is.rng.Intn(3)] {
		is.sys.Expand(cs[k], v, 0.5+is.rng.Float64())
	}
	return v
}

// churn mutates nTouch random islands: one variable replaced, one
// capacity changed, one weight changed.
func (is *islandSystem) churn(nTouch int) {
	for t := 0; t < nTouch; t++ {
		i := is.rng.Intn(len(is.vars))
		cs, vs := is.cnsts[i], is.vars[i]
		j := is.rng.Intn(len(vs))
		is.sys.RemoveVariable(vs[j])
		vs[j] = is.newVar(cs)
		is.sys.SetCapacity(cs[is.rng.Intn(len(cs))], 10+is.rng.Float64()*90)
		is.sys.SetWeight(vs[is.rng.Intn(len(vs))], 0.5+is.rng.Float64()*2)
	}
}

// TestParallelSolveEquivalence drives identical mutation sequences
// through a sequential (workers=1) and a parallel (workers=8) system —
// large enough that the parallel path actually engages — and asserts
// bit-identical allocations after every solve.
func TestParallelSolveEquivalence(t *testing.T) {
	const (
		seed     = 7
		nIslands = 40
		nCnsts   = 4
		nVars    = 12 // 480 vars total; churn scope comfortably > minParallelScopeVars
	)
	seq := newIslandSystem(seed, 1, nIslands, nCnsts, nVars)
	par := newIslandSystem(seed, 8, nIslands, nCnsts, nVars)
	compare := func(step int) {
		t.Helper()
		if len(seq.sys.vars) != len(par.sys.vars) {
			t.Fatalf("step %d: variable counts diverged: %d vs %d", step, len(seq.sys.vars), len(par.sys.vars))
		}
		for i := range seq.vars {
			for j := range seq.vars[i] {
				got, want := par.vars[i][j].Value(), seq.vars[i][j].Value()
				if got != want {
					t.Fatalf("step %d: island %d var %d: parallel=%g sequential=%g", step, i, j, got, want)
				}
			}
		}
		for i := range seq.cnsts {
			for j := range seq.cnsts[i] {
				got, want := par.cnsts[i][j].Usage(), seq.cnsts[i][j].Usage()
				if got != want {
					t.Fatalf("step %d: island %d cnst %d usage: parallel=%g sequential=%g", step, i, j, got, want)
				}
			}
		}
	}
	seq.sys.Solve()
	par.sys.Solve()
	compare(0)
	for step := 1; step <= 30; step++ {
		// Touch many islands so the dirty scope crosses the parallel
		// dispatch thresholds (≥4 components, ≥256 scope variables).
		seq.churn(25)
		par.churn(25)
		seq.sys.Solve()
		par.sys.Solve()
		compare(step)
		if nu, ns := len(par.sys.Updated()), len(seq.sys.Updated()); nu != ns {
			t.Fatalf("step %d: Updated() sizes diverged: parallel=%d sequential=%d", step, nu, ns)
		}
	}
	if problems := par.sys.Validate(1e-6); len(problems) > 0 {
		t.Fatalf("parallel solution invalid: %v", problems)
	}
}

// TestParallelSolveAllDirty checks the full-recompute path (allDirty
// partitions the whole system into components) under parallel dispatch.
func TestParallelSolveAllDirty(t *testing.T) {
	seq := newIslandSystem(11, 1, 32, 3, 10)
	par := newIslandSystem(11, 8, 32, 3, 10)
	seq.sys.Solve()
	par.sys.Solve()
	seq.sys.InvalidateAll()
	par.sys.InvalidateAll()
	seq.sys.Solve()
	par.sys.Solve()
	for i := range seq.vars {
		for j := range seq.vars[i] {
			if got, want := par.vars[i][j].Value(), seq.vars[i][j].Value(); got != want {
				t.Fatalf("island %d var %d: parallel=%g sequential=%g", i, j, got, want)
			}
		}
	}
}

// TestParallelWorkersConfig pins the SetWorkers/parallelism contract:
// tiny scopes stay sequential, big multi-component scopes use the pool.
func TestParallelWorkersConfig(t *testing.T) {
	s := NewSystem()
	if s.Workers() != 0 {
		t.Errorf("default workers = %d, want 0 (GOMAXPROCS)", s.Workers())
	}
	s.SetWorkers(3)
	if s.Workers() != 3 {
		t.Errorf("workers = %d, want 3", s.Workers())
	}
	s.SetWorkers(-1)
	if s.Workers() != 0 {
		t.Errorf("workers after reset = %d, want 0", s.Workers())
	}

	// A 2-component system below the size thresholds must solve
	// sequentially even with many workers configured.
	s.SetWorkers(8)
	a := s.NewConstraint(10)
	b := s.NewConstraint(10)
	s.Expand(a, s.NewVariable(1, 0), 1)
	s.Expand(b, s.NewVariable(1, 0), 1)
	s.collectScope()
	if got := s.parallelism(); got != 1 {
		t.Errorf("parallelism for tiny scope = %d, want 1", got)
	}
	if len(s.comps) != 2 {
		t.Errorf("components = %d, want 2", len(s.comps))
	}
}
