package maxmin

import (
	"math/rand"
	"testing"
)

// TestVariablePoolScrubbed churns variables through a shared constraint
// set with randomized weights, bounds and adjacency and asserts that
// every recycled Variable comes back with no stale state: a pooled
// struct carries nothing of its previous owner, and a variable handed
// out by NewVariable exposes exactly the requested parameters.
func TestVariablePoolScrubbed(t *testing.T) {
	if !poolingEnabled {
		t.Skip("pooling disabled (-tags=nopool)")
	}
	rng := rand.New(rand.NewSource(42))
	s := NewSystem()
	var cnsts []*Constraint
	for i := 0; i < 8; i++ {
		cnsts = append(cnsts, s.NewConstraint(10+rng.Float64()*90))
	}
	var live []*Variable
	for op := 0; op < 3000; op++ {
		switch {
		case rng.Intn(3) > 0 || len(live) == 0:
			w := rng.Float64() * 4
			bound := 0.0
			if rng.Intn(2) == 0 {
				bound = rng.Float64() * 50
			}
			v := s.NewVariable(w, bound)
			if v.Weight() != w || v.Bound() != bound {
				t.Fatalf("fresh variable carries weight %g bound %g, want %g %g", v.Weight(), v.Bound(), w, bound)
			}
			if v.Value() != 0 || v.Data != nil || len(v.cnsts) != 0 || v.fixed {
				t.Fatalf("recycled variable leaked state: value=%g data=%v deg=%d fixed=%v",
					v.Value(), v.Data, len(v.cnsts), v.fixed)
			}
			v.Data = op // pollute the cookie to catch leaks on reuse
			deg := 1 + rng.Intn(3)
			for d := 0; d < deg; d++ {
				s.Expand(cnsts[rng.Intn(len(cnsts))], v, 0.5+rng.Float64())
			}
			live = append(live, v)
		default:
			i := rng.Intn(len(live))
			v := live[i]
			s.RemoveVariable(v)
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
			// The struct sitting in the pool must be fully scrubbed
			// (dirty/visit bookkeeping aside, which the solver owns).
			p := s.varPool[len(s.varPool)-1]
			if p != v {
				t.Fatalf("removed variable was not pooled")
			}
			if p.sys != nil || p.weight != 0 || p.bound != 0 || p.value != 0 ||
				p.Data != nil || len(p.cnsts) != 0 || p.fixed {
				t.Fatalf("pooled variable carries stale state: %+v", p)
			}
		}
		if rng.Intn(8) == 0 {
			s.Solve()
			if problems := s.Validate(1e-6); len(problems) != 0 {
				t.Fatalf("solution invalid after churn: %v", problems)
			}
		}
	}
}

// TestPoolingEquivalence replays one randomized churn trace twice —
// free lists on, then off — and requires bit-identical allocations:
// recycling must be unobservable.
func TestPoolingEquivalence(t *testing.T) {
	defer func(old bool) { poolingEnabled = old }(poolingEnabled)

	run := func(pool bool) []float64 {
		poolingEnabled = pool
		rng := rand.New(rand.NewSource(7))
		s := NewSystem()
		var cnsts []*Constraint
		for i := 0; i < 10; i++ {
			cnsts = append(cnsts, s.NewConstraint(5+rng.Float64()*95))
		}
		var live []*Variable
		var out []float64
		for op := 0; op < 2000; op++ {
			switch {
			case rng.Intn(3) > 0 || len(live) == 0:
				v := s.NewVariable(0.5+rng.Float64()*3, float64(rng.Intn(2))*rng.Float64()*40)
				for d, deg := 0, 1+rng.Intn(3); d < deg; d++ {
					s.Expand(cnsts[rng.Intn(len(cnsts))], v, 0.5+rng.Float64())
				}
				live = append(live, v)
			default:
				i := rng.Intn(len(live))
				s.RemoveVariable(live[i])
				live[i] = live[len(live)-1]
				live = live[:len(live)-1]
			}
			if rng.Intn(5) == 0 {
				s.Solve()
				for _, v := range live {
					out = append(out, v.Value())
				}
			}
		}
		return out
	}

	pooled := run(true)
	fresh := run(false)
	if len(pooled) != len(fresh) {
		t.Fatalf("trace lengths differ: %d vs %d", len(pooled), len(fresh))
	}
	for i := range pooled {
		if pooled[i] != fresh[i] {
			t.Fatalf("allocation %d diverged: pooled %g, fresh %g", i, pooled[i], fresh[i])
		}
	}
}
