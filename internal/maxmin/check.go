package maxmin

import (
	"fmt"
	"math"
)

// crossCheck verifies the incremental solution against a from-scratch
// full solve of a structural clone of the system, panicking on any
// divergence. Only compiled-in behaviour under -tags=maxmincheck (see
// shadowCheck); it allocates freely since it is a debugging aid.
func (s *System) crossCheck() {
	clone, vmap := s.clone()
	clone.allDirty = true
	clone.solve()
	for i, v := range s.vars {
		cv := vmap[i]
		got, want := v.value, cv.value
		if math.IsInf(got, 1) && math.IsInf(want, 1) {
			continue
		}
		if math.Abs(got-want) > 1e-6*(1+math.Abs(want)) {
			panic(fmt.Sprintf( //lint:allow hot-sprintf cold path: divergence panic under -tags=maxmincheck, the run is already dead
				"maxmin: incremental solve diverged on V%d: incremental=%g full=%g\nincremental state:\n%s\nfull state:\n%s",
				v.id, got, want, s.String(), clone.String()))
		}
	}
}

// clone copies the system's structure (not its dirty/solution state)
// and returns the clone plus the cloned variables aligned with s.vars.
func (s *System) clone() (*System, []*Variable) {
	c := NewSystem()
	cmap := make(map[*Constraint]*Constraint, len(s.cnsts))
	for _, sc := range s.cnsts {
		nc := c.NewConstraint(sc.capacity)
		nc.shared = sc.shared
		cmap[sc] = nc
	}
	vmap := make([]*Variable, len(s.vars))
	for i, sv := range s.vars {
		nv := c.NewVariable(sv.weight, sv.bound)
		for _, e := range sv.cnsts {
			c.Expand(cmap[e.c], nv, e.factor)
		}
		vmap[i] = nv
	}
	return c, vmap
}
