//go:build maxmincheck

package maxmin

// shadowCheck enables the full-solve cross-check after every
// incremental Solve (see crossCheck). Built with -tags=maxmincheck.
const shadowCheck = true
