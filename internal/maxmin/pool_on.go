//go:build !nopool

package maxmin

// poolingEnabled gates the steady-state free lists (recycled Variable
// structs, constraint-element structs and their adjacency slices).
// Build with -tags=nopool to allocate everything fresh instead — the
// reference behaviour the pool-reuse regression suite cross-checks
// against. It is a var, not a const, so in-package tests can flip it
// at runtime to compare both paths in one build.
var poolingEnabled = true
