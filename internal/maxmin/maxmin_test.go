package maxmin

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSingleVariableSingleConstraint(t *testing.T) {
	s := NewSystem()
	c := s.NewConstraint(10)
	v := s.NewVariable(1, 0)
	s.Expand(c, v, 1)
	s.Solve()
	if !approx(v.Value(), 10, 1e-9) {
		t.Errorf("value = %g, want 10", v.Value())
	}
	if !approx(c.Usage(), 10, 1e-9) {
		t.Errorf("usage = %g, want 10", c.Usage())
	}
}

func TestEqualShare(t *testing.T) {
	s := NewSystem()
	c := s.NewConstraint(9)
	vars := []*Variable{s.NewVariable(1, 0), s.NewVariable(1, 0), s.NewVariable(1, 0)}
	for _, v := range vars {
		s.Expand(c, v, 1)
	}
	s.Solve()
	for i, v := range vars {
		if !approx(v.Value(), 3, 1e-9) {
			t.Errorf("var %d = %g, want 3", i, v.Value())
		}
	}
}

func TestWeightedShare(t *testing.T) {
	s := NewSystem()
	c := s.NewConstraint(12)
	v1 := s.NewVariable(1, 0)
	v2 := s.NewVariable(2, 0) // twice the priority -> twice the share
	s.Expand(c, v1, 1)
	s.Expand(c, v2, 1)
	s.Solve()
	if !approx(v1.Value(), 4, 1e-9) || !approx(v2.Value(), 8, 1e-9) {
		t.Errorf("values = %g,%g, want 4,8", v1.Value(), v2.Value())
	}
}

func TestBoundFreesCapacityForOthers(t *testing.T) {
	s := NewSystem()
	c := s.NewConstraint(10)
	v1 := s.NewVariable(1, 2) // capped at 2
	v2 := s.NewVariable(1, 0)
	s.Expand(c, v1, 1)
	s.Expand(c, v2, 1)
	s.Solve()
	if !approx(v1.Value(), 2, 1e-9) {
		t.Errorf("v1 = %g, want 2 (its bound)", v1.Value())
	}
	if !approx(v2.Value(), 8, 1e-9) {
		t.Errorf("v2 = %g, want 8 (leftover capacity)", v2.Value())
	}
}

func TestBoundAboveShareIsInert(t *testing.T) {
	s := NewSystem()
	c := s.NewConstraint(10)
	v1 := s.NewVariable(1, 100)
	v2 := s.NewVariable(1, 0)
	s.Expand(c, v1, 1)
	s.Expand(c, v2, 1)
	s.Solve()
	if !approx(v1.Value(), 5, 1e-9) || !approx(v2.Value(), 5, 1e-9) {
		t.Errorf("values = %g,%g, want 5,5", v1.Value(), v2.Value())
	}
}

// The classic multi-link example: flow A crosses links L1 and L2, flow B
// only L1, flow C only L2. With caps L1=1, L2=2: A and B share L1
// equally (0.5 each); C then gets the rest of L2 (1.5).
func TestMultiHopBottleneck(t *testing.T) {
	s := NewSystem()
	l1 := s.NewConstraint(1)
	l2 := s.NewConstraint(2)
	a := s.NewVariable(1, 0)
	b := s.NewVariable(1, 0)
	c := s.NewVariable(1, 0)
	s.Expand(l1, a, 1)
	s.Expand(l2, a, 1)
	s.Expand(l1, b, 1)
	s.Expand(l2, c, 1)
	s.Solve()
	if !approx(a.Value(), 0.5, 1e-9) {
		t.Errorf("a = %g, want 0.5", a.Value())
	}
	if !approx(b.Value(), 0.5, 1e-9) {
		t.Errorf("b = %g, want 0.5", b.Value())
	}
	if !approx(c.Value(), 1.5, 1e-9) {
		t.Errorf("c = %g, want 1.5", c.Value())
	}
}

// The paper's MaxMin illustration: 4 "procs" sharing resources.
// proc1+proc2 share a resource of capacity C while proc3 uses a private
// one; verifies the "maximize the minimum" property.
func TestPaperIllustration(t *testing.T) {
	s := NewSystem()
	shared := s.NewConstraint(100)
	private := s.NewConstraint(60)
	p1 := s.NewVariable(1, 0)
	p2 := s.NewVariable(1, 0)
	p3 := s.NewVariable(1, 0)
	p4 := s.NewVariable(1, 0)
	s.Expand(shared, p1, 1)
	s.Expand(shared, p2, 1)
	s.Expand(shared, p3, 1)
	s.Expand(private, p4, 1)
	s.Solve()
	want := []float64{100.0 / 3, 100.0 / 3, 100.0 / 3, 60}
	for i, v := range []*Variable{p1, p2, p3, p4} {
		if !approx(v.Value(), want[i], 1e-9) {
			t.Errorf("p%d = %g, want %g", i+1, v.Value(), want[i])
		}
	}
}

func TestZeroWeightVariableGetsNothing(t *testing.T) {
	s := NewSystem()
	c := s.NewConstraint(10)
	v1 := s.NewVariable(0, 0) // suspended
	v2 := s.NewVariable(1, 0)
	s.Expand(c, v1, 1)
	s.Expand(c, v2, 1)
	s.Solve()
	if v1.Value() != 0 {
		t.Errorf("suspended var = %g, want 0", v1.Value())
	}
	if !approx(v2.Value(), 10, 1e-9) {
		t.Errorf("v2 = %g, want 10", v2.Value())
	}
}

func TestZeroCapacityConstraint(t *testing.T) {
	s := NewSystem()
	c := s.NewConstraint(0) // failed resource
	v := s.NewVariable(1, 0)
	s.Expand(c, v, 1)
	s.Solve()
	if v.Value() != 0 {
		t.Errorf("value on failed resource = %g, want 0", v.Value())
	}
}

func TestFactorScalesConsumption(t *testing.T) {
	s := NewSystem()
	c := s.NewConstraint(10)
	v := s.NewVariable(1, 0)
	s.Expand(c, v, 2) // consumes 2 units of capacity per unit of value
	s.Solve()
	if !approx(v.Value(), 5, 1e-9) {
		t.Errorf("value = %g, want 5", v.Value())
	}
}

func TestExpandTwiceAccumulates(t *testing.T) {
	s := NewSystem()
	c := s.NewConstraint(10)
	v := s.NewVariable(1, 0)
	s.Expand(c, v, 1)
	s.Expand(c, v, 1) // route crosses the link twice
	s.Solve()
	if !approx(v.Value(), 5, 1e-9) {
		t.Errorf("value = %g, want 5", v.Value())
	}
}

func TestFatpipeDoesNotShare(t *testing.T) {
	s := NewSystem()
	c := s.NewConstraint(10)
	s.SetShared(c, false)
	v1 := s.NewVariable(1, 0)
	v2 := s.NewVariable(1, 0)
	s.Expand(c, v1, 1)
	s.Expand(c, v2, 1)
	s.Solve()
	if !approx(v1.Value(), 10, 1e-9) || !approx(v2.Value(), 10, 1e-9) {
		t.Errorf("values = %g,%g, want 10,10 (fatpipe)", v1.Value(), v2.Value())
	}
}

func TestRemoveVariableRelaxesOthers(t *testing.T) {
	s := NewSystem()
	c := s.NewConstraint(10)
	v1 := s.NewVariable(1, 0)
	v2 := s.NewVariable(1, 0)
	s.Expand(c, v1, 1)
	s.Expand(c, v2, 1)
	s.Solve()
	if !approx(v1.Value(), 5, 1e-9) {
		t.Fatalf("v1 = %g, want 5", v1.Value())
	}
	s.RemoveVariable(v2)
	if !s.Dirty() {
		t.Error("system not dirty after RemoveVariable")
	}
	s.Solve()
	if !approx(v1.Value(), 10, 1e-9) {
		t.Errorf("v1 after removal = %g, want 10", v1.Value())
	}
	if s.NVariables() != 1 {
		t.Errorf("NVariables = %d, want 1", s.NVariables())
	}
}

func TestRemoveConstraint(t *testing.T) {
	s := NewSystem()
	c1 := s.NewConstraint(1)
	c2 := s.NewConstraint(100)
	v := s.NewVariable(1, 0)
	s.Expand(c1, v, 1)
	s.Expand(c2, v, 1)
	s.Solve()
	if !approx(v.Value(), 1, 1e-9) {
		t.Fatalf("v = %g, want 1", v.Value())
	}
	s.RemoveConstraint(c1)
	s.Solve()
	if !approx(v.Value(), 100, 1e-9) {
		t.Errorf("v after constraint removal = %g, want 100", v.Value())
	}
}

func TestSetCapacityReallocates(t *testing.T) {
	s := NewSystem()
	c := s.NewConstraint(10)
	v := s.NewVariable(1, 0)
	s.Expand(c, v, 1)
	s.Solve()
	s.SetCapacity(c, 4)
	s.Solve()
	if !approx(v.Value(), 4, 1e-9) {
		t.Errorf("v = %g, want 4 after capacity change", v.Value())
	}
	s.SetCapacity(c, -3) // clamped to 0
	s.Solve()
	if v.Value() != 0 {
		t.Errorf("v = %g, want 0 for negative capacity", v.Value())
	}
}

func TestSetWeightAndBound(t *testing.T) {
	s := NewSystem()
	c := s.NewConstraint(12)
	v1 := s.NewVariable(1, 0)
	v2 := s.NewVariable(1, 0)
	s.Expand(c, v1, 1)
	s.Expand(c, v2, 1)
	s.Solve()
	s.SetWeight(v1, 3)
	s.Solve()
	if !approx(v1.Value(), 9, 1e-9) || !approx(v2.Value(), 3, 1e-9) {
		t.Errorf("after SetWeight: %g,%g want 9,3", v1.Value(), v2.Value())
	}
	s.SetBound(v1, 1)
	s.Solve()
	if !approx(v1.Value(), 1, 1e-9) || !approx(v2.Value(), 11, 1e-9) {
		t.Errorf("after SetBound: %g,%g want 1,11", v1.Value(), v2.Value())
	}
}

func TestVariableWithNoConstraintIsZero(t *testing.T) {
	s := NewSystem()
	v := s.NewVariable(1, 5)
	s.Solve()
	if v.Value() != 0 {
		t.Errorf("unattached variable = %g, want 0", v.Value())
	}
}

func TestAccessors(t *testing.T) {
	s := NewSystem()
	c := s.NewConstraint(10)
	v := s.NewVariable(2, 7)
	s.Expand(c, v, 1)
	if v.Weight() != 2 || v.Bound() != 7 {
		t.Errorf("weight/bound = %g/%g, want 2/7", v.Weight(), v.Bound())
	}
	if c.Capacity() != 10 || !c.Shared() {
		t.Errorf("capacity/shared = %g/%v", c.Capacity(), c.Shared())
	}
	if len(v.Constraints()) != 1 || v.Constraints()[0] != c {
		t.Error("Constraints() wrong")
	}
	if len(c.Variables()) != 1 || c.Variables()[0] != v {
		t.Error("Variables() wrong")
	}
	if s.NConstraints() != 1 {
		t.Errorf("NConstraints = %d", s.NConstraints())
	}
	if s.String() == "" {
		t.Error("String() empty")
	}
}

// buildRandomSystem creates a random feasible system for property tests.
func buildRandomSystem(rng *rand.Rand, nVars, nCnsts int) *System {
	s := NewSystem()
	cs := make([]*Constraint, nCnsts)
	for i := range cs {
		cs[i] = s.NewConstraint(1 + rng.Float64()*99)
	}
	for i := 0; i < nVars; i++ {
		bound := 0.0
		if rng.Intn(3) == 0 {
			bound = 0.5 + rng.Float64()*20
		}
		v := s.NewVariable(0.5+rng.Float64()*4, bound)
		// Attach to 1..3 random constraints.
		n := 1 + rng.Intn(3)
		for j := 0; j < n; j++ {
			s.Expand(cs[rng.Intn(len(cs))], v, 0.5+rng.Float64()*2)
		}
	}
	return s
}

// Property: Solve always yields a feasible, max-min-saturated solution.
func TestSolveIsValidProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := buildRandomSystem(rng, 1+rng.Intn(30), 1+rng.Intn(10))
		s.Solve()
		problems := s.Validate(1e-6)
		if len(problems) > 0 {
			t.Logf("seed %d: %v\n%s", seed, problems, s.String())
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: doubling every capacity doubles every allocation
// (the solution is positively homogeneous).
func TestSolveHomogeneityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nv, nc := 1+rng.Intn(15), 1+rng.Intn(6)

		rng1 := rand.New(rand.NewSource(seed))
		s1 := buildRandomSystem(rng1, nv, nc)
		rng2 := rand.New(rand.NewSource(seed))
		s2 := buildRandomSystem(rng2, nv, nc)
		for i, c := range s2.cnsts {
			_ = i
			s2.SetCapacity(c, c.Capacity()*2)
		}
		for _, v := range s2.vars {
			if v.Bound() > 0 {
				s2.SetBound(v, v.Bound()*2)
			}
		}
		s1.Solve()
		s2.Solve()
		for i := range s1.vars {
			if !approx(s1.vars[i].Value()*2, s2.vars[i].Value(), 1e-6*(1+s2.vars[i].Value())) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: removing a variable never decreases the minimum normalized
// share (value/weight) of the remaining variables. (Note that individual
// allocations may legitimately *decrease* — freeing one bottleneck can
// unblock a competitor on another — but max-min lexicographically
// maximizes the minimum, and the old solution restricted to the
// remaining variables stays feasible.)
func TestRemovalMinShareMonotonicityProperty(t *testing.T) {
	minShare := func(s *System) float64 {
		m := math.Inf(1)
		for _, v := range s.vars {
			if v.Weight() <= 0 || len(v.cnsts) == 0 {
				continue
			}
			if sh := v.Value() / v.Weight(); sh < m {
				m = sh
			}
		}
		return m
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nv, nc := 2+rng.Intn(15), 1+rng.Intn(6)
		s := buildRandomSystem(rng, nv, nc)
		s.Solve()
		victim := s.vars[rng.Intn(len(s.vars))]
		// The bound of the victim could have been the old minimum: only
		// compare against the min over the *surviving* variables.
		s.RemoveVariable(victim)
		survivorsBeforeMin := minShare(s) // values still from old solve
		s.Solve()
		return minShare(s) >= survivorsBeforeMin-1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestLargeSystemSolves(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := buildRandomSystem(rng, 2000, 300)
	s.Solve()
	if problems := s.Validate(1e-5); len(problems) > 0 {
		t.Errorf("large system invalid: %v", problems[:min(3, len(problems))])
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
