package deploy

import (
	"strings"
	"testing"

	"repro/internal/msg"
	"repro/internal/platform"
	"repro/internal/surf"
)

func testEnv(t *testing.T) *msg.Environment {
	t.Helper()
	pf, _, err := platform.NewCluster(platform.ClusterConfig{
		Prefix: "node", Hosts: 4, Power: 1e9,
		Bandwidth: 1.25e8, Latency: 5e-5,
	})
	if err != nil {
		t.Fatal(err)
	}
	return msg.NewEnvironment(pf, surf.Config{BandwidthFactor: 1, LatencyFactor: 1})
}

func TestLoadValidDeployment(t *testing.T) {
	src := `{
	  "processes": [
	    {"host": "node0", "function": "master", "args": ["4"]},
	    {"host": "node1", "function": "worker", "daemon": true, "count": 3}
	  ]
	}`
	s, err := Load(strings.NewReader(src))
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(s.Processes) != 2 || s.Processes[1].Count != 3 || !s.Processes[1].Daemon {
		t.Errorf("spec = %+v", s)
	}
}

func TestLoadErrors(t *testing.T) {
	for _, src := range []string{
		`{`,
		`{"processes": []}`,
		`{"unknown": 1}`,
	} {
		if _, err := Load(strings.NewReader(src)); err == nil {
			t.Errorf("Load(%q) accepted", src)
		}
	}
}

func TestApplyRunsProcesses(t *testing.T) {
	env := testEnv(t)
	spec := &Spec{Processes: []ProcessSpec{
		{Host: "node0", Function: "send", Args: []string{"hi"}},
		{Host: "node1", Function: "recv"},
	}}
	var got string
	reg := Registry{
		"send": func(p *msg.Process, args []string) error {
			task := msg.NewTask("m", 0, 1e3)
			task.Data = args[0]
			return p.Put(task, "node1", 1)
		},
		"recv": func(p *msg.Process, args []string) error {
			task, err := p.Get(1)
			if err != nil {
				return err
			}
			got = task.Data.(string)
			return nil
		},
	}
	if err := Run(env, spec, reg); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got != "hi" {
		t.Errorf("got %q", got)
	}
}

func TestApplyCountInstantiatesMany(t *testing.T) {
	env := testEnv(t)
	ran := 0
	spec := &Spec{Processes: []ProcessSpec{
		{Host: "node2", Function: "tick", Count: 5},
	}}
	reg := Registry{
		"tick": func(p *msg.Process, args []string) error { ran++; return nil },
	}
	if err := Run(env, spec, reg); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if ran != 5 {
		t.Errorf("ran %d times, want 5", ran)
	}
}

func TestApplyDaemonsDoNotBlockTermination(t *testing.T) {
	env := testEnv(t)
	spec := &Spec{Processes: []ProcessSpec{
		{Host: "node0", Function: "server", Daemon: true},
		{Host: "node1", Function: "client"},
	}}
	reg := Registry{
		"server": func(p *msg.Process, args []string) error {
			for {
				if _, err := p.Get(9); err != nil {
					return err
				}
			}
		},
		"client": func(p *msg.Process, args []string) error {
			return p.Put(msg.NewTask("x", 0, 1e3), "node0", 9)
		},
	}
	if err := Run(env, spec, reg); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestApplyUnknownFunction(t *testing.T) {
	env := testEnv(t)
	spec := &Spec{Processes: []ProcessSpec{{Host: "node0", Function: "ghost"}}}
	if err := spec.Apply(env, Registry{}); err == nil {
		t.Error("unknown function accepted")
	}
}

func TestApplyUnknownHost(t *testing.T) {
	env := testEnv(t)
	spec := &Spec{Processes: []ProcessSpec{{Host: "mars", Function: "f"}}}
	reg := Registry{"f": func(p *msg.Process, args []string) error { return nil }}
	if err := spec.Apply(env, reg); err == nil {
		t.Error("unknown host accepted")
	}
}
