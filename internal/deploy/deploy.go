// Package deploy implements SimGrid-style deployment descriptions: a
// JSON file mapping process functions to hosts, the counterpart of the
// paper's XML deployment files used with MSG_launch_application. An
// application registers its process functions by name; the deployment
// file instantiates them on platform hosts with arguments. The key
// invariant is declaration-order instantiation: processes are spawned
// exactly in file order, so a deployment is reproducible by
// construction.
//
//	{
//	  "processes": [
//	    {"host": "node0", "function": "master", "args": ["16"]},
//	    {"host": "node1", "function": "worker", "daemon": true},
//	    {"host": "node2", "function": "worker", "daemon": true}
//	  ]
//	}
package deploy

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"repro/internal/msg"
)

// Func is a deployable process body: the MSG process plus the args
// string list from the deployment file.
type Func func(p *msg.Process, args []string) error

// Registry maps function names to process bodies.
type Registry map[string]Func

// ProcessSpec is one process instantiation.
type ProcessSpec struct {
	Host     string   `json:"host"`
	Function string   `json:"function"`
	Args     []string `json:"args,omitempty"`
	// Daemon marks server-style processes that may outlive the
	// simulation (infinite loops).
	Daemon bool `json:"daemon,omitempty"`
	// Count instantiates the same spec several times (0 means 1).
	Count int `json:"count,omitempty"`
}

// Spec is a full deployment.
type Spec struct {
	Processes []ProcessSpec `json:"processes"`
}

// Load parses a deployment description.
func Load(r io.Reader) (*Spec, error) {
	var s Spec
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("deploy: decoding JSON: %w", err)
	}
	if len(s.Processes) == 0 {
		return nil, fmt.Errorf("deploy: no processes")
	}
	return &s, nil
}

// LoadFile parses a deployment description from a file.
func LoadFile(path string) (*Spec, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}

// Apply instantiates every process of the deployment on the
// environment, resolving functions through the registry. Processes are
// created in file order (they all start at time 0).
func (s *Spec) Apply(env *msg.Environment, reg Registry) error {
	for i, ps := range s.Processes {
		fn, ok := reg[ps.Function]
		if !ok {
			return fmt.Errorf("deploy: process %d: unknown function %q", i, ps.Function)
		}
		count := ps.Count
		if count <= 0 {
			count = 1
		}
		for c := 0; c < count; c++ {
			// Unique, readable process names: function@host(-k).
			name := fmt.Sprintf("%s@%s", ps.Function, ps.Host)
			if count > 1 {
				name = fmt.Sprintf("%s-%d", name, c)
			}
			args := ps.Args
			daemon := ps.Daemon
			p, err := env.NewProcess(name, ps.Host, func(mp *msg.Process) error {
				return fn(mp, args)
			})
			if err != nil {
				return fmt.Errorf("deploy: process %d (%s on %s): %w", i, ps.Function, ps.Host, err)
			}
			if daemon {
				p.Daemonize()
			}
		}
	}
	return nil
}

// Run is the one-call entry point: apply the deployment and run the
// simulation to completion.
func Run(env *msg.Environment, spec *Spec, reg Registry) error {
	if err := spec.Apply(env, reg); err != nil {
		return err
	}
	return env.Run()
}
