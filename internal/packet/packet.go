// Package packet implements an event-driven packet-level network
// simulator with TCP Reno congestion control, standing in for the NS2
// and GTNets simulators used as ground truth in the paper's validation
// experiment ("For short-lived flows, one can use more accurate, but
// more expensive, packet-level simulation").
//
// The simulator models store-and-forward links with drop-tail FIFO
// queues (serialization then propagation delay) and TCP senders with
// slow start, congestion avoidance, fast retransmit/fast recovery and
// Jacobson RTO estimation. Two parameterisations are provided: VariantNS2
// (classic Reno) and VariantGTNets (slightly more aggressive window
// growth), mirroring the two comparators of the paper.
//
// It consumes the same hop-level routes as the fluid model (package
// surf), so a flow crosses exactly the same queues in both simulators.
package packet

import (
	"container/heap"
	"errors"
	"fmt"
	"math"

	"repro/internal/platform"
)

// Variant selects a comparator personality.
type Variant int

// Simulator personalities.
const (
	// VariantNS2 is classic TCP Reno with NS2-like defaults.
	VariantNS2 Variant = iota
	// VariantGTNets behaves like GTNetS' default TCP: a slightly more
	// aggressive congestion-avoidance growth and larger initial window.
	VariantGTNets
)

func (v Variant) String() string {
	if v == VariantGTNets {
		return "gtnets"
	}
	return "ns2"
}

// Config tunes the packet simulation.
type Config struct {
	Variant Variant

	MSS        int     // TCP payload bytes per data packet
	HeaderSize int     // TCP/IP header bytes added to every data packet
	AckSize    int     // bytes of a pure ACK
	QueueLimit int     // packets per link queue (drop-tail)
	InitCwnd   float64 // initial congestion window (packets)
	MaxCwnd    float64 // receiver window clamp (packets)
	SSThresh   float64 // initial slow-start threshold (packets)
	RTOMin     float64 // minimum retransmission timeout (seconds)

	// CAIncrement is the congestion-avoidance additive increase per
	// RTT, in packets (1 for Reno; GTNetS default behaves closer to
	// 1.5 in our calibration).
	CAIncrement float64
}

// DefaultConfig returns the configuration for a variant.
func DefaultConfig(v Variant) Config {
	cfg := Config{
		Variant:     v,
		MSS:         1460,
		HeaderSize:  40,
		AckSize:     40,
		QueueLimit:  100,
		InitCwnd:    2,
		MaxCwnd:     1000,
		SSThresh:    64,
		RTOMin:      0.2,
		CAIncrement: 1,
	}
	if v == VariantGTNets {
		cfg.InitCwnd = 4
		cfg.CAIncrement = 1.5
	}
	return cfg
}

// dlink is one direction of a physical link: a rate-limited FIFO queue.
type dlink struct {
	name  string
	rate  float64 // bytes/s
	delay float64 // propagation seconds
	limit int

	queue []*pkt
	busy  bool

	// Counters.
	sent    int
	dropped int
}

// pkt is a packet in flight.
type pkt struct {
	flow  *Flow
	seq   int // data sequence (packet number) or ack number
	size  int // bytes on the wire
	isAck bool
	path  []*dlink
	hop   int
	sent  float64 // time the data packet left the sender (for RTT)
}

// Flow is one TCP transfer.
type Flow struct {
	ID       int
	Src, Dst string
	Bytes    float64

	net     *Network
	fwd     []*dlink // data path
	rev     []*dlink // ack path
	nPkts   int
	started float64

	// Sender state.
	cwnd     float64
	ssthresh float64
	sndNxt   int
	sndUna   int
	dupAcks  int
	recover  int  // fast-recovery high-water mark
	inFR     bool // in fast recovery

	// RTT estimation (Jacobson).
	srtt, rttvar float64
	rtoGen       int // invalidates stale RTO events

	// Receiver state.
	rcvNxt   int
	received map[int]bool // out-of-order buffer

	done     bool
	finish   float64
	timeouts int
	rexmits  int
}

// Done reports whether the flow has completed.
func (f *Flow) Done() bool { return f.done }

// FinishTime returns the completion time (valid once Done).
func (f *Flow) FinishTime() float64 { return f.finish }

// Throughput returns achieved goodput in bytes/s (valid once Done).
func (f *Flow) Throughput() float64 {
	if !f.done || f.finish <= f.started {
		return 0
	}
	return f.Bytes / (f.finish - f.started)
}

// Retransmits returns the number of retransmitted packets.
func (f *Flow) Retransmits() int { return f.rexmits }

// Timeouts returns the number of RTO events.
func (f *Flow) Timeouts() int { return f.timeouts }

// event is a scheduled simulator step.
type event struct {
	at  float64
	seq int64
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Network is a packet-level simulation instance.
type Network struct {
	cfg    Config
	pf     *platform.Platform
	dlinks map[string]*dlink // key: linkName + "→" + direction head node
	flows  []*Flow
	events eventHeap
	now    float64
	seq    int64
	active int
}

// ErrNoHopRoute reports that the platform lacks hop-level routes.
var ErrNoHopRoute = errors.New("packet: platform has no hop-level route (build it with Connect/ComputeRoutes)")

// New builds a packet network over a platform's connection graph. The
// same platform object can drive the fluid model, guaranteeing both
// simulators route flows identically.
func New(pf *platform.Platform, cfg Config) *Network {
	if cfg.MSS <= 0 {
		cfg = DefaultConfig(cfg.Variant)
	}
	return &Network{
		cfg:    cfg,
		pf:     pf,
		dlinks: make(map[string]*dlink),
	}
}

// Now returns the current simulated time.
func (n *Network) Now() float64 { return n.now }

// Config returns the simulation configuration.
func (n *Network) Config() Config { return n.cfg }

func (n *Network) at(t float64, fn func()) {
	if t < n.now {
		t = n.now
	}
	n.seq++
	heap.Push(&n.events, &event{at: t, seq: n.seq, fn: fn})
}

// dlinkFor returns (creating on demand) the directed link for crossing
// `hop` — flows crossing the same physical link in the same direction
// share the queue.
func (n *Network) dlinkFor(hop platform.Hop) *dlink {
	key := hop.Link.Name + "->" + hop.B
	dl := n.dlinks[key]
	if dl == nil {
		dl = &dlink{
			name:  key,
			rate:  hop.Link.Bandwidth,
			delay: hop.Link.Latency,
			limit: n.cfg.QueueLimit,
		}
		n.dlinks[key] = dl
	}
	return dl
}

// AddFlow registers a TCP transfer of `bytes` bytes from src to dst,
// starting at time `start`. Returns an error if the platform has no
// hop-level route between the hosts.
func (n *Network) AddFlow(src, dst string, bytes float64, start float64) (*Flow, error) {
	hops, err := n.pf.HopRoute(src, dst)
	if err != nil {
		return nil, err
	}
	if len(hops) == 0 {
		return nil, fmt.Errorf("packet: %s -> %s is intra-host", src, dst)
	}
	f := &Flow{
		ID:       len(n.flows),
		Src:      src,
		Dst:      dst,
		Bytes:    bytes,
		net:      n,
		started:  start,
		cwnd:     n.cfg.InitCwnd,
		ssthresh: n.cfg.SSThresh,
		received: make(map[int]bool),
	}
	for _, h := range hops {
		f.fwd = append(f.fwd, n.dlinkFor(h))
	}
	rev, err := n.pf.HopRoute(dst, src)
	if err != nil {
		return nil, err
	}
	for _, h := range rev {
		f.rev = append(f.rev, n.dlinkFor(h))
	}
	f.nPkts = int(math.Ceil(bytes / float64(n.cfg.MSS)))
	if f.nPkts == 0 {
		f.nPkts = 1
	}
	n.flows = append(n.flows, f)
	n.active++
	n.at(start, func() { f.trySend() })
	return f, nil
}

// Flows returns the registered flows.
func (n *Network) Flows() []*Flow { return n.flows }

// Run executes the simulation until all flows complete or until
// maxTime (<= 0: no limit). It returns the number of completed flows.
func (n *Network) Run(maxTime float64) int {
	for len(n.events) > 0 && n.active > 0 {
		ev := heap.Pop(&n.events).(*event)
		if maxTime > 0 && ev.at > maxTime {
			n.now = maxTime
			break
		}
		n.now = ev.at
		ev.fn()
	}
	completed := 0
	for _, f := range n.flows {
		if f.done {
			completed++
		}
	}
	return completed
}

// --- link machinery -------------------------------------------------------

// enqueue places a packet on a directed link, dropping it if the queue
// is full (drop-tail).
func (n *Network) enqueue(dl *dlink, p *pkt) {
	if len(dl.queue) >= dl.limit {
		dl.dropped++
		return // lost; recovery via dupacks or RTO
	}
	dl.queue = append(dl.queue, p)
	if !dl.busy {
		n.transmitNext(dl)
	}
}

// transmitNext starts serializing the head-of-line packet.
func (n *Network) transmitNext(dl *dlink) {
	if len(dl.queue) == 0 {
		dl.busy = false
		return
	}
	dl.busy = true
	p := dl.queue[0]
	dl.queue = dl.queue[1:]
	txTime := float64(p.size) / dl.rate
	n.at(n.now+txTime, func() {
		dl.sent++
		// Serialization done: the wire is free for the next packet,
		// and this one propagates.
		arrival := n.now + dl.delay
		n.at(arrival, func() { n.arrive(p) })
		n.transmitNext(dl)
	})
}

// arrive delivers a packet at the next hop or its destination.
func (n *Network) arrive(p *pkt) {
	p.hop++
	if p.hop < len(p.path) {
		n.enqueue(p.path[p.hop], p)
		return
	}
	if p.isAck {
		p.flow.onAck(p)
	} else {
		p.flow.onData(p)
	}
}

// --- TCP sender -----------------------------------------------------------

// window returns the usable send window in packets.
func (f *Flow) window() int {
	w := math.Min(f.cwnd, f.net.cfg.MaxCwnd)
	if w < 1 {
		w = 1
	}
	return int(w)
}

// trySend emits new data packets while the window allows. The pipe is
// estimated as sndNxt - sndUna (retransmissions do not inflate it).
func (f *Flow) trySend() {
	if f.done {
		return
	}
	for f.sndNxt-f.sndUna < f.window() && f.sndNxt < f.nPkts {
		f.emit(f.sndNxt, false)
		f.sndNxt++
	}
}

// emit sends one data packet (seq) onto the forward path; rexmit marks
// retransmissions (counted but otherwise identical).
func (f *Flow) emit(seq int, rexmit bool) {
	n := f.net
	size := n.cfg.MSS + n.cfg.HeaderSize
	if seq == f.nPkts-1 {
		// Last packet may be partial.
		rem := f.Bytes - float64(n.cfg.MSS)*float64(f.nPkts-1)
		if rem > 0 && rem < float64(n.cfg.MSS) {
			size = int(rem) + n.cfg.HeaderSize
		}
	}
	p := &pkt{flow: f, seq: seq, size: size, path: f.fwd, hop: 0, sent: n.now}
	if rexmit {
		f.rexmits++
	}
	n.enqueue(f.fwd[0], p)
	f.armRTO()
}

// rto returns the current retransmission timeout.
func (f *Flow) rto() float64 {
	if f.srtt == 0 {
		return 3 * math.Max(f.net.cfg.RTOMin, 1) // conservative initial RTO
	}
	rto := f.srtt + 4*f.rttvar
	if rto < f.net.cfg.RTOMin {
		rto = f.net.cfg.RTOMin
	}
	return rto
}

// armRTO (re)arms the retransmission timer.
func (f *Flow) armRTO() {
	f.rtoGen++
	gen := f.rtoGen
	f.net.at(f.net.now+f.rto(), func() { f.onRTO(gen) })
}

// onRTO fires when the retransmission timer expires.
func (f *Flow) onRTO(gen int) {
	if f.done || gen != f.rtoGen {
		return // stale timer
	}
	f.timeouts++
	f.ssthresh = math.Max(f.cwnd/2, 2)
	f.cwnd = 1
	f.dupAcks = 0
	f.inFR = false
	f.sndNxt = f.sndUna // everything outstanding is presumed lost
	f.emit(f.sndNxt, true)
	f.sndNxt++
}

// onAck processes a cumulative ACK at the sender.
func (f *Flow) onAck(p *pkt) {
	if f.done {
		return
	}
	n := f.net
	ackNo := p.seq // next expected packet at receiver

	// RTT sample from the echo of the send timestamp.
	sample := n.now - p.sent
	if sample > 0 {
		if f.srtt == 0 {
			f.srtt = sample
			f.rttvar = sample / 2
		} else {
			const alpha, beta = 0.125, 0.25
			f.rttvar = (1-beta)*f.rttvar + beta*math.Abs(f.srtt-sample)
			f.srtt = (1-alpha)*f.srtt + alpha*sample
		}
	}

	if ackNo > f.sndUna {
		acked := ackNo - f.sndUna
		f.sndUna = ackNo
		if f.sndNxt < f.sndUna {
			f.sndNxt = f.sndUna
		}
		f.dupAcks = 0
		if f.inFR {
			if ackNo > f.recover {
				// Full recovery.
				f.inFR = false
				f.cwnd = f.ssthresh
			} else {
				// Partial ACK: retransmit the next hole (NewReno).
				f.emit(f.sndUna, true)
				f.cwnd = math.Max(f.cwnd-float64(acked)+1, 1)
			}
		} else if f.cwnd < f.ssthresh {
			f.cwnd += float64(acked) // slow start
		} else {
			f.cwnd += n.cfg.CAIncrement * float64(acked) / f.cwnd
		}
		if f.sndUna >= f.nPkts {
			f.complete()
			return
		}
		f.armRTO()
	} else {
		// Duplicate ACK.
		f.dupAcks++
		if f.dupAcks == 3 && !f.inFR {
			// Fast retransmit + fast recovery.
			f.ssthresh = math.Max(f.cwnd/2, 2)
			f.cwnd = f.ssthresh + 3
			f.inFR = true
			f.recover = f.sndNxt
			f.emit(f.sndUna, true)
		} else if f.inFR {
			f.cwnd++ // window inflation
		}
	}
	f.trySend()
}

// complete marks the flow finished.
func (f *Flow) complete() {
	f.done = true
	f.finish = f.net.now
	f.net.active--
	f.rtoGen++ // kill pending RTO
}

// --- TCP receiver -----------------------------------------------------------

// onData processes a data packet at the receiver and sends an ACK.
func (f *Flow) onData(p *pkt) {
	n := f.net
	if p.seq >= f.rcvNxt {
		f.received[p.seq] = true
	}
	for f.received[f.rcvNxt] {
		delete(f.received, f.rcvNxt)
		f.rcvNxt++
	}
	// Cumulative ACK carrying the data packet's timestamp (timestamp
	// option), so the sender gets an RTT sample per ACK.
	ack := &pkt{
		flow:  f,
		seq:   f.rcvNxt,
		size:  n.cfg.AckSize,
		isAck: true,
		path:  f.rev,
		hop:   0,
		sent:  p.sent,
	}
	n.enqueue(f.rev[0], ack)
}

// --- diagnostics ------------------------------------------------------------

// LinkStats describes per-directed-link counters after a run.
type LinkStats struct {
	Name    string
	Sent    int
	Dropped int
}

// Stats returns per-directed-link counters sorted by name.
func (n *Network) Stats() []LinkStats {
	out := make([]LinkStats, 0, len(n.dlinks))
	for _, dl := range n.dlinks {
		out = append(out, LinkStats{Name: dl.name, Sent: dl.sent, Dropped: dl.dropped})
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Name < out[j-1].Name; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
