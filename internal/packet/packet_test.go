package packet

import (
	"math"
	"testing"

	"repro/internal/platform"
)

// linePlatform builds a -- l1 -- r -- l2 -- b with given bandwidths
// (bytes/s) and latencies.
func linePlatform(t *testing.T, bw1, lat1, bw2, lat2 float64) *platform.Platform {
	t.Helper()
	p := platform.New()
	p.AddHost(&platform.Host{Name: "a", Power: 1e9})
	p.AddHost(&platform.Host{Name: "b", Power: 1e9})
	p.AddRouter("r")
	p.Connect("a", "r", &platform.Link{Name: "l1", Bandwidth: bw1, Latency: lat1})
	p.Connect("r", "b", &platform.Link{Name: "l2", Bandwidth: bw2, Latency: lat2})
	if err := p.ComputeRoutes(); err != nil {
		t.Fatal(err)
	}
	return p
}

// directPlatform: a -- link -- b.
func directPlatform(t *testing.T, bw, lat float64) *platform.Platform {
	t.Helper()
	p := platform.New()
	p.AddHost(&platform.Host{Name: "a", Power: 1e9})
	p.AddHost(&platform.Host{Name: "b", Power: 1e9})
	p.Connect("a", "b", &platform.Link{Name: "l", Bandwidth: bw, Latency: lat})
	if err := p.ComputeRoutes(); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestSingleFlowApproachesLinkRate(t *testing.T) {
	// 100 MB over a 1.25e6 B/s (10 Mbit) link with 5 ms latency: long
	// enough to reach steady state; goodput should be close to
	// MSS/(MSS+header) of the link rate.
	pf := directPlatform(t, 1.25e6, 0.005)
	n := New(pf, DefaultConfig(VariantNS2))
	f, err := n.AddFlow("a", "b", 20e6, 0)
	if err != nil {
		t.Fatalf("AddFlow: %v", err)
	}
	if done := n.Run(0); done != 1 {
		t.Fatalf("completed %d flows, want 1", done)
	}
	gp := f.Throughput()
	maxGoodput := 1.25e6 * 1460 / 1500
	if gp > maxGoodput*1.001 {
		t.Errorf("goodput %g exceeds line rate %g", gp, maxGoodput)
	}
	if gp < 0.8*maxGoodput {
		t.Errorf("goodput %g too low (want >= 80%% of %g)", gp, maxGoodput)
	}
}

func TestBottleneckGovernsRate(t *testing.T) {
	// Second link is 4x slower: throughput bounded by it.
	pf := linePlatform(t, 1e7, 0.001, 2.5e6, 0.001)
	n := New(pf, DefaultConfig(VariantNS2))
	f, _ := n.AddFlow("a", "b", 20e6, 0)
	if done := n.Run(0); done != 1 {
		t.Fatalf("flow did not complete")
	}
	gp := f.Throughput()
	bottleneck := 2.5e6 * 1460 / 1500
	if gp > bottleneck*1.001 {
		t.Errorf("goodput %g above bottleneck %g", gp, bottleneck)
	}
	if gp < 0.75*bottleneck {
		t.Errorf("goodput %g too far below bottleneck %g", gp, bottleneck)
	}
}

func TestTwoFlowsShareFairly(t *testing.T) {
	// Two flows sharing one 10 Mbit bottleneck should each get roughly
	// half in steady state.
	pf := platform.New()
	pf.AddHost(&platform.Host{Name: "a1", Power: 1})
	pf.AddHost(&platform.Host{Name: "a2", Power: 1})
	pf.AddHost(&platform.Host{Name: "b", Power: 1})
	pf.AddRouter("r")
	pf.Connect("a1", "r", &platform.Link{Name: "in1", Bandwidth: 1.25e7, Latency: 0.001})
	pf.Connect("a2", "r", &platform.Link{Name: "in2", Bandwidth: 1.25e7, Latency: 0.001})
	pf.Connect("r", "b", &platform.Link{Name: "out", Bandwidth: 1.25e6, Latency: 0.004})
	if err := pf.ComputeRoutes(); err != nil {
		t.Fatal(err)
	}
	n := New(pf, DefaultConfig(VariantNS2))
	f1, _ := n.AddFlow("a1", "b", 20e6, 0)
	f2, _ := n.AddFlow("a2", "b", 20e6, 0)
	if done := n.Run(0); done != 2 {
		t.Fatalf("completed %d flows, want 2", done)
	}
	g1, g2 := f1.Throughput(), f2.Throughput()
	// While both are active they share; after one ends the other speeds
	// up, so allow generous asymmetry but demand the same order.
	ratio := g1 / g2
	if ratio < 0.5 || ratio > 2.0 {
		t.Errorf("unfair split: %g vs %g (ratio %g)", g1, g2, ratio)
	}
	// Combined goodput can't exceed the bottleneck.
	if g1+g2 > 1.25e6*1.01 {
		t.Errorf("combined %g exceeds bottleneck", g1+g2)
	}
}

func TestDropsTriggerRetransmits(t *testing.T) {
	// Tiny queue forces drops during slow start on a fat-to-thin path.
	cfg := DefaultConfig(VariantNS2)
	cfg.QueueLimit = 5
	pf := linePlatform(t, 1.25e7, 0.001, 1.25e5, 0.02)
	n := New(pf, cfg)
	f, _ := n.AddFlow("a", "b", 2e6, 0)
	if done := n.Run(0); done != 1 {
		t.Fatalf("flow did not complete")
	}
	if f.Retransmits() == 0 {
		t.Error("expected retransmissions on a congested tiny-queue path")
	}
	stats := n.Stats()
	drops := 0
	for _, s := range stats {
		drops += s.Dropped
	}
	if drops == 0 {
		t.Error("expected drops with QueueLimit=5")
	}
}

func TestFlowCompletesDespiteHeavyLoss(t *testing.T) {
	cfg := DefaultConfig(VariantNS2)
	cfg.QueueLimit = 2
	pf := linePlatform(t, 1.25e7, 0.0005, 1.25e5, 0.05)
	n := New(pf, cfg)
	f, _ := n.AddFlow("a", "b", 1e6, 0)
	if done := n.Run(0); done != 1 {
		t.Fatalf("flow did not complete (rexmits %d, timeouts %d)",
			f.Retransmits(), f.Timeouts())
	}
}

func TestThroughputZeroBeforeDone(t *testing.T) {
	pf := directPlatform(t, 1.25e6, 0.005)
	n := New(pf, DefaultConfig(VariantNS2))
	f, _ := n.AddFlow("a", "b", 1e9, 0)
	n.Run(0.1) // stop early
	if f.Done() {
		t.Fatal("1 GB flow done in 0.1 s?!")
	}
	if f.Throughput() != 0 {
		t.Error("throughput nonzero before completion")
	}
}

func TestMaxTimeStopsRun(t *testing.T) {
	pf := directPlatform(t, 1.25e6, 0.005)
	n := New(pf, DefaultConfig(VariantNS2))
	n.AddFlow("a", "b", 1e9, 0)
	done := n.Run(2)
	if done != 0 {
		t.Errorf("done = %d, want 0", done)
	}
	if n.Now() > 2.0001 {
		t.Errorf("clock ran to %g past maxTime", n.Now())
	}
}

func TestVariantsDiffer(t *testing.T) {
	run := func(v Variant) float64 {
		pf := directPlatform(t, 1.25e6, 0.02)
		n := New(pf, DefaultConfig(v))
		f, _ := n.AddFlow("a", "b", 5e6, 0)
		n.Run(0)
		return f.FinishTime()
	}
	ns2 := run(VariantNS2)
	gt := run(VariantGTNets)
	if ns2 == gt {
		t.Error("variants produced identical finish times; parameterisation inert")
	}
	// Both should still be in the same ballpark (same link!).
	if math.Abs(ns2-gt)/ns2 > 0.5 {
		t.Errorf("variants wildly different: %g vs %g", ns2, gt)
	}
}

func TestVariantStrings(t *testing.T) {
	if VariantNS2.String() != "ns2" || VariantGTNets.String() != "gtnets" {
		t.Error("variant strings wrong")
	}
}

func TestAddFlowErrors(t *testing.T) {
	pf := directPlatform(t, 1e6, 0.001)
	n := New(pf, DefaultConfig(VariantNS2))
	if _, err := n.AddFlow("a", "ghost", 1, 0); err == nil {
		t.Error("flow to unknown host accepted")
	}
	if _, err := n.AddFlow("a", "a", 1, 0); err == nil {
		t.Error("intra-host flow accepted")
	}
	// Platform with explicit (non-hop) routes only.
	p2 := platform.New()
	p2.AddHost(&platform.Host{Name: "x", Power: 1})
	p2.AddHost(&platform.Host{Name: "y", Power: 1})
	p2.AddRoute("x", "y", []*platform.Link{{Name: "l", Bandwidth: 1, Latency: 0}})
	n2 := New(p2, DefaultConfig(VariantNS2))
	if _, err := n2.AddFlow("x", "y", 1, 0); err == nil {
		t.Error("flow without hop route accepted")
	}
}

func TestZeroConfigGetsDefaults(t *testing.T) {
	pf := directPlatform(t, 1.25e6, 0.001)
	n := New(pf, Config{})
	if n.Config().MSS == 0 {
		t.Error("zero config not defaulted")
	}
}

func TestTinyFlowCompletes(t *testing.T) {
	pf := directPlatform(t, 1.25e6, 0.001)
	n := New(pf, DefaultConfig(VariantNS2))
	f, _ := n.AddFlow("a", "b", 100, 0) // less than one MSS
	if done := n.Run(0); done != 1 {
		t.Fatal("tiny flow did not complete")
	}
	if f.FinishTime() <= 0 {
		t.Error("no finish time")
	}
}

func TestStaggeredStarts(t *testing.T) {
	pf := directPlatform(t, 1.25e6, 0.005)
	n := New(pf, DefaultConfig(VariantNS2))
	f1, _ := n.AddFlow("a", "b", 5e6, 0)
	f2, _ := n.AddFlow("a", "b", 5e6, 10)
	if done := n.Run(0); done != 2 {
		t.Fatal("flows did not complete")
	}
	if f2.FinishTime() <= 10 {
		t.Error("staggered flow finished before it started")
	}
	if f1.FinishTime() >= f2.FinishTime() {
		t.Error("first flow should finish first here")
	}
}

func TestSharedDirectedQueueCounted(t *testing.T) {
	// Two flows in the same direction share one directed queue; the
	// reverse direction is separate.
	pf := directPlatform(t, 1.25e6, 0.001)
	n := New(pf, DefaultConfig(VariantNS2))
	n.AddFlow("a", "b", 1e6, 0)
	n.AddFlow("a", "b", 1e6, 0)
	n.Run(0)
	stats := n.Stats()
	if len(stats) != 2 { // l->b (data), l->a (acks)
		t.Fatalf("got %d directed links, want 2: %+v", len(stats), stats)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []float64 {
		pf, err := platform.GenerateWaxman(platform.DefaultWaxmanConfig(8, 7))
		if err != nil {
			t.Fatal(err)
		}
		n := New(pf, DefaultConfig(VariantNS2))
		n.AddFlow("host0", "host3", 2e6, 0)
		n.AddFlow("host1", "host5", 2e6, 0)
		n.AddFlow("host2", "host7", 2e6, 0)
		n.Run(0)
		var out []float64
		for _, f := range n.Flows() {
			out = append(out, f.FinishTime())
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("flow %d: %g vs %g — nondeterministic", i, a[i], b[i])
		}
	}
}
