package msg

import (
	"errors"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/surf"
	"repro/internal/trace"
)

// exact disables model calibration so tests can assert exact durations.
func exact() surf.Config { return surf.Config{BandwidthFactor: 1, LatencyFactor: 1} }

// lanPlatform: client and server joined by a 1e8 B/s, 1 ms link; both
// 1 Gflop/s.
func lanPlatform(t *testing.T) *platform.Platform {
	t.Helper()
	p := platform.New()
	for _, n := range []string{"client", "server"} {
		if err := p.AddHost(&platform.Host{Name: n, Power: 1e9}); err != nil {
			t.Fatal(err)
		}
	}
	l := &platform.Link{Name: "lan", Bandwidth: 1e8, Latency: 0.001}
	if err := p.AddRoute("client", "server", []*platform.Link{l}); err != nil {
		t.Fatal(err)
	}
	return p
}

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestTaskCreation(t *testing.T) {
	task := NewTask("t", 30e6, 3.2e6)
	if task.Name != "t" || task.Flops != 30e6 || task.Bytes != 3.2e6 {
		t.Errorf("task = %+v", task)
	}
	neg := NewTask("n", -1, -2)
	if neg.Flops != 0 || neg.Bytes != 0 {
		t.Error("negative payloads not clamped")
	}
	if task.Source() != nil || task.Sender() != nil {
		t.Error("fresh task has source/sender")
	}
}

func TestExecuteDuration(t *testing.T) {
	env := NewEnvironment(lanPlatform(t), exact())
	env.NewProcess("worker", "client", func(p *Process) error {
		return p.Execute(NewTask("work", 2e9, 0)) // 2 Gflop at 1 Gflop/s
	})
	if err := env.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !approx(env.Now(), 2, 1e-9) {
		t.Errorf("finished at %g, want 2", env.Now())
	}
}

func TestPutGetTransfersTask(t *testing.T) {
	env := NewEnvironment(lanPlatform(t), exact())
	var got *Task
	env.NewProcess("sender", "client", func(p *Process) error {
		task := NewTask("data", 0, 1e8) // 1 s at 1e8 B/s + 1 ms
		task.Data = "payload"
		return p.Put(task, "server", 22)
	})
	env.NewProcess("receiver", "server", func(p *Process) error {
		var err error
		got, err = p.Get(22)
		return err
	})
	if err := env.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got == nil || got.Name != "data" || got.Data != "payload" {
		t.Fatalf("received %+v", got)
	}
	if got.Source() == nil || got.Source().Name != "client" {
		t.Error("task source not set")
	}
	if got.Sender() == nil || got.Sender().Name() != "sender" {
		t.Error("task sender not set")
	}
	if !approx(env.Now(), 1.001, 1e-6) {
		t.Errorf("finished at %g, want 1.001", env.Now())
	}
}

func TestGetBeforePutRendezvous(t *testing.T) {
	env := NewEnvironment(lanPlatform(t), exact())
	var recvDone, sendDone float64
	env.NewProcess("receiver", "server", func(p *Process) error {
		_, err := p.Get(5)
		recvDone = p.Now()
		return err
	})
	env.NewProcess("sender", "client", func(p *Process) error {
		p.Sleep(2) // receiver waits 2 s before the transfer starts
		err := p.Put(NewTask("x", 0, 1e8), "server", 5)
		sendDone = p.Now()
		return err
	})
	if err := env.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := 3.001 // 2 s wait + 1 s transfer + 1 ms latency
	if !approx(recvDone, want, 1e-6) || !approx(sendDone, want, 1e-6) {
		t.Errorf("recv/send done at %g/%g, want %g", recvDone, sendDone, want)
	}
}

func TestChannelsAreIndependent(t *testing.T) {
	env := NewEnvironment(lanPlatform(t), exact())
	var got22, got23 *Task
	env.NewProcess("recv22", "server", func(p *Process) error {
		var err error
		got22, err = p.Get(22)
		return err
	})
	env.NewProcess("recv23", "server", func(p *Process) error {
		var err error
		got23, err = p.Get(23)
		return err
	})
	env.NewProcess("sender", "client", func(p *Process) error {
		if err := p.Put(NewTask("a", 0, 1e3), "server", 23); err != nil {
			return err
		}
		return p.Put(NewTask("b", 0, 1e3), "server", 22)
	})
	if err := env.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got22 == nil || got22.Name != "b" {
		t.Errorf("channel 22 got %+v", got22)
	}
	if got23 == nil || got23.Name != "a" {
		t.Errorf("channel 23 got %+v", got23)
	}
}

func TestPaperClientServerExchange(t *testing.T) {
	// The paper's MSG example: client sends a 30 MFlop / 3.2 MB task to
	// the server, executes a local 10.5 MFlop task, then waits for a
	// 10 KB ack.
	env := NewEnvironment(lanPlatform(t), exact())
	env.NewProcess("server", "server", func(p *Process) error {
		p.Daemonize()
		for {
			task, err := p.Get(22)
			if err != nil {
				return err
			}
			if err := p.Execute(task); err != nil {
				return err
			}
			ack := NewTask("Ack", 0, 0.01e6)
			if err := p.Put(ack, task.Source().Name, 23); err != nil {
				return err
			}
		}
	})
	env.NewProcess("client", "client", func(p *Process) error {
		remote := NewTask("Remote", 30e6, 3.2e6)
		if err := p.Put(remote, "server", 22); err != nil {
			return err
		}
		local := NewTask("Local", 10.5e6, 3.2e6)
		if err := p.Execute(local); err != nil {
			return err
		}
		_, err := p.Get(23)
		return err
	})
	if err := env.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	// put: 1ms + 3.2e6/1e8 = 0.033 s; server exec 0.03 s;
	// client local exec 0.0105 s (parallel with server);
	// ack: 1ms + 1e4/1e8 = 0.0011 s.
	// Client timeline: 0.033 + max(0.0105 elapsed before ack wait)…
	// ack sent at 0.033+0.03 = 0.063, arrives 0.0641.
	if !approx(env.Now(), 0.0641, 1e-4) {
		t.Errorf("finished at %g, want ~0.0641", env.Now())
	}
}

func TestGetTimeout(t *testing.T) {
	env := NewEnvironment(lanPlatform(t), exact())
	var gotErr error
	env.NewProcess("recv", "server", func(p *Process) error {
		_, gotErr = p.GetWithTimeout(9, 1.5)
		return nil
	})
	if err := env.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !errors.Is(gotErr, ErrTimeout) {
		t.Errorf("Get = %v, want ErrTimeout", gotErr)
	}
	if !approx(env.Now(), 1.5, 1e-9) {
		t.Errorf("timed out at %g, want 1.5", env.Now())
	}
}

func TestPutTimeout(t *testing.T) {
	env := NewEnvironment(lanPlatform(t), exact())
	var gotErr error
	env.NewProcess("send", "client", func(p *Process) error {
		gotErr = p.PutWithTimeout(NewTask("x", 0, 1), "server", 9, 2)
		return nil
	})
	if err := env.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !errors.Is(gotErr, ErrTimeout) {
		t.Errorf("Put = %v, want ErrTimeout", gotErr)
	}
}

func TestTimeoutNotFiredOnSuccess(t *testing.T) {
	env := NewEnvironment(lanPlatform(t), exact())
	env.NewProcess("recv", "server", func(p *Process) error {
		task, err := p.GetWithTimeout(1, 10)
		if err != nil || task.Name != "ok" {
			t.Errorf("Get = %v, %v", task, err)
		}
		return p.Sleep(20) // outlive the (canceled) timeout
	})
	env.NewProcess("send", "client", func(p *Process) error {
		return p.Put(NewTask("ok", 0, 1e3), "server", 1)
	})
	if err := env.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestInFlightTimeoutCancelsTransfer(t *testing.T) {
	env := NewEnvironment(lanPlatform(t), exact())
	var sendErr, recvErr error
	env.NewProcess("recv", "server", func(p *Process) error {
		_, recvErr = p.GetWithTimeout(1, 0.5) // transfer needs ~1 s
		return nil
	})
	env.NewProcess("send", "client", func(p *Process) error {
		sendErr = p.Put(NewTask("big", 0, 1e8), "server", 1)
		return nil
	})
	if err := env.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if recvErr == nil || sendErr == nil {
		t.Errorf("recv/send errs = %v/%v, want both non-nil", recvErr, sendErr)
	}
}

func TestProcessSuspendResumeFreezesExecution(t *testing.T) {
	env := NewEnvironment(lanPlatform(t), exact())
	var worker *Process
	var doneAt float64
	env.NewProcess("worker", "client", func(p *Process) error {
		worker = p
		err := p.Execute(NewTask("w", 2e9, 0)) // 2 s nominal
		doneAt = p.Now()
		return err
	})
	env.NewProcess("ctl", "server", func(p *Process) error {
		p.Sleep(1)
		worker.Suspend()
		p.Sleep(3)
		worker.Resume()
		return nil
	})
	if err := env.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !approx(doneAt, 5, 1e-6) {
		t.Errorf("done at %g, want 5 (1 work + 3 frozen + 1 work)", doneAt)
	}
}

func TestKillProcess(t *testing.T) {
	env := NewEnvironment(lanPlatform(t), exact())
	var victim *Process
	env.NewProcess("victim", "server", func(p *Process) error {
		victim = p
		_, err := p.Get(1)
		return err
	})
	env.NewProcess("killer", "client", func(p *Process) error {
		p.Sleep(1)
		victim.Kill()
		return nil
	})
	if err := env.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if victim.Core().State() != core.Done {
		t.Error("victim not terminated")
	}
}

func TestHostFailureKillsProcesses(t *testing.T) {
	pf := lanPlatform(t)
	pf.Host("server").StateTrace = trace.MustNew("st",
		[]trace.Event{{Time: 1, Value: 0}}, 0)
	env := NewEnvironment(pf, exact())
	env.NewProcess("doomed", "server", func(p *Process) error {
		return p.Sleep(100)
	})
	env.NewProcess("other", "client", func(p *Process) error {
		return p.Sleep(2)
	})
	if err := env.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !approx(env.Now(), 2, 1e-9) {
		t.Errorf("simulation ended at %g, want 2 (doomed killed at 1)", env.Now())
	}
}

func TestHostFailureKillDisabled(t *testing.T) {
	pf := lanPlatform(t)
	pf.Host("server").StateTrace = trace.MustNew("st",
		[]trace.Event{{Time: 1, Value: 0}, {Time: 2, Value: 1}}, 0)
	env := NewEnvironment(pf, exact())
	env.KillOnHostFailure = false
	survived := false
	env.NewProcess("tough", "server", func(p *Process) error {
		p.Sleep(5)
		survived = true
		return nil
	})
	if err := env.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !survived {
		t.Error("process killed despite KillOnHostFailure=false")
	}
}

func TestSpawnFromProcess(t *testing.T) {
	env := NewEnvironment(lanPlatform(t), exact())
	childRan := false
	env.NewProcess("parent", "client", func(p *Process) error {
		p.Sleep(1)
		_, err := p.Spawn("child", "server", func(c *Process) error {
			childRan = true
			if !approx(c.Now(), 1, 1e-9) {
				t.Errorf("child started at %g, want 1", c.Now())
			}
			return nil
		})
		return err
	})
	if err := env.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !childRan {
		t.Error("child did not run")
	}
}

func TestNewProcessUnknownHost(t *testing.T) {
	env := NewEnvironment(lanPlatform(t), exact())
	if _, err := env.NewProcess("p", "ghost", func(*Process) error { return nil }); err == nil {
		t.Error("unknown host accepted")
	}
}

func TestPutUnknownHost(t *testing.T) {
	env := NewEnvironment(lanPlatform(t), exact())
	var gotErr error
	env.NewProcess("p", "client", func(p *Process) error {
		gotErr = p.Put(NewTask("x", 0, 1), "ghost", 1)
		return nil
	})
	if err := env.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if gotErr == nil {
		t.Error("Put to unknown host succeeded")
	}
}

func TestPutNilTask(t *testing.T) {
	env := NewEnvironment(lanPlatform(t), exact())
	var gotErr error
	env.NewProcess("p", "client", func(p *Process) error {
		gotErr = p.Put(nil, "server", 1)
		return nil
	})
	if err := env.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if gotErr == nil {
		t.Error("nil task accepted")
	}
}

func TestAccessors(t *testing.T) {
	pf := lanPlatform(t)
	env := NewEnvironment(pf, exact())
	if env.Platform() != pf || env.Engine() == nil || env.Model() == nil {
		t.Error("environment accessors wrong")
	}
	if env.HostByName("client") == nil || env.HostByName("ghost") != nil {
		t.Error("HostByName wrong")
	}
	env.NewProcess("p", "client", func(p *Process) error {
		if p.Env() != env || p.Host().Name != "client" {
			t.Error("process accessors wrong")
		}
		if p.Name() != "p" || p.PID() == 0 || p.Core() == nil {
			t.Error("identity accessors wrong")
		}
		return nil
	})
	if err := env.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestDeadlockReported(t *testing.T) {
	env := NewEnvironment(lanPlatform(t), exact())
	env.NewProcess("stuck", "server", func(p *Process) error {
		_, err := p.Get(1)
		return err
	})
	err := env.Run()
	var dl *core.DeadlockError
	if !errors.As(err, &dl) {
		t.Fatalf("Run = %v, want DeadlockError", err)
	}
}

func TestManyProcessesScale(t *testing.T) {
	// 100 client/server pairs ping-ponging: smoke test for scheduling.
	p := platform.New()
	p.AddHost(&platform.Host{Name: "a", Power: 1e9})
	p.AddHost(&platform.Host{Name: "b", Power: 1e9})
	l := &platform.Link{Name: "l", Bandwidth: 1e9, Latency: 0.0001}
	p.AddRoute("a", "b", []*platform.Link{l})
	env := NewEnvironment(p, exact())
	const n = 100
	received := 0
	for i := 0; i < n; i++ {
		ch := i
		env.NewProcess("recv", "b", func(pr *Process) error {
			_, err := pr.Get(ch)
			if err == nil {
				received++
			}
			return err
		})
		env.NewProcess("send", "a", func(pr *Process) error {
			return pr.Put(NewTask("m", 0, 1e6), "b", ch)
		})
	}
	if err := env.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if received != n {
		t.Errorf("received %d, want %d", received, n)
	}
}
