//go:build nopool

package msg

// poolingEnabled gates the environment's free lists. This is the
// -tags=nopool build: every rendezvous record is allocated fresh, the
// reference behaviour the pooled build must be indistinguishable from.
var poolingEnabled = false
