package msg

import (
	"testing"

	"repro/internal/platform"
	"repro/internal/surf"
)

// TestRendezvousPoolingEquivalence runs the same Put/Get workload with
// the rendezvous free lists on and off and requires identical
// completion times: recycling pendingSend/pendingRecv records (and the
// transfer actions they release) must be unobservable.
func TestRendezvousPoolingEquivalence(t *testing.T) {
	defer func(old bool) { poolingEnabled = old }(poolingEnabled)

	run := func(pool bool) []float64 {
		poolingEnabled = pool
		pf := platform.New()
		for _, h := range []string{"a", "b"} {
			if err := pf.AddHost(&platform.Host{Name: h, Power: 1e9}); err != nil {
				t.Fatal(err)
			}
		}
		if err := pf.AddRoute("a", "b", []*platform.Link{
			{Name: "l", Bandwidth: 1e8, Latency: 1e-4},
		}); err != nil {
			t.Fatal(err)
		}
		env := NewEnvironment(pf, surf.DefaultConfig())
		var times []float64
		if _, err := env.NewProcess("recv", "b", func(p *Process) error {
			for i := 0; i < 50; i++ {
				if _, err := p.Get(1); err != nil {
					return err
				}
				times = append(times, p.Now())
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if _, err := env.NewProcess("send", "a", func(p *Process) error {
			for i := 0; i < 50; i++ {
				if err := p.Put(NewTask("t", 0, 1e5), "b", 1); err != nil {
					return err
				}
				if err := p.Execute(NewTask("c", 1e6, 0)); err != nil {
					return err
				}
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if err := env.Run(); err != nil {
			t.Fatal(err)
		}
		if len(env.sendPool) == 0 && pool {
			t.Fatal("no pendingSend was ever pooled")
		}
		return times
	}

	pooled := run(true)
	fresh := run(false)
	if len(pooled) != len(fresh) {
		t.Fatalf("trace lengths differ: %d vs %d", len(pooled), len(fresh))
	}
	for i := range pooled {
		if pooled[i] != fresh[i] {
			t.Fatalf("delivery %d diverged: pooled %g, fresh %g", i, pooled[i], fresh[i])
		}
	}
}
