package msg

// This file is the factory for the pooled rendezvous records: the only
// place allowed to construct or scrub a pendingSend/pendingRecv by
// composite literal. simgrid-lint's pool-literal rule enforces that
// scope — a literal anywhere else would bypass the free lists and
// break the "pools hold only scrubbed structs" invariant (DESIGN.md,
// "Object lifecycle & pooling").

// grabSend returns a blank pendingSend, recycled when possible.
func (env *Environment) grabSend() *pendingSend {
	if n := len(env.sendPool); poolingEnabled && n > 0 {
		ps := env.sendPool[n-1]
		env.sendPool[n-1] = nil
		env.sendPool = env.sendPool[:n-1]
		env.sendPoolHit++
		return ps
	}
	env.sendPoolMiss++
	return &pendingSend{}
}

// releaseSend scrubs a finished pendingSend (returning its transfer
// action to the surf free list) and pools it. Callers must guarantee
// no reference survives: the record is out of every mailbox queue, its
// timeout timer is canceled, and the delivery cross-references were
// severed by ActionDone. put's release defer establishes exactly that
// on both the return and the unwind path (a killed sender's record is
// dequeued or handed to ActionDone via abandonSend before recycling —
// kill churn leaks nothing).
func (env *Environment) releaseSend(ps *pendingSend) {
	if a := ps.action; a != nil {
		a.Release() // no-op if somehow not done
	}
	*ps = pendingSend{}
	if poolingEnabled {
		env.sendPool = append(env.sendPool, ps)
	}
}

// grabRecv returns a blank pendingRecv, recycled when possible.
func (env *Environment) grabRecv() *pendingRecv {
	if n := len(env.recvPool); poolingEnabled && n > 0 {
		pr := env.recvPool[n-1]
		env.recvPool[n-1] = nil
		env.recvPool = env.recvPool[:n-1]
		env.recvPoolHit++
		return pr
	}
	env.recvPoolMiss++
	return &pendingRecv{}
}

// releaseRecv scrubs a finished pendingRecv and pools it; the same
// ownership rules as releaseSend apply, with get as the only caller.
func (env *Environment) releaseRecv(pr *pendingRecv) {
	*pr = pendingRecv{}
	if poolingEnabled {
		env.recvPool = append(env.recvPool, pr)
	}
}

// grabChain returns a blank ChainProc, recycled when possible: chain
// churn (millions of short-lived chains, or auto-restart cycling)
// reuses terminated instances instead of allocating fresh ones.
func (env *Environment) grabChain() *ChainProc {
	if n := len(env.chainPool); poolingEnabled && n > 0 {
		c := env.chainPool[n-1]
		env.chainPool[n-1] = nil
		env.chainPool = env.chainPool[:n-1]
		env.chainPoolHit++
		return c
	}
	env.chainPoolMiss++
	return &ChainProc{}
}

// releaseChain scrubs a terminated ChainProc and pools it. The caller
// (teardown) guarantees the chain is deregistered and every pending
// record, action and gantt interval has been settled. Two allocations
// survive the scrub on purpose: the counters slice (capacity reused by
// the next occupant) and the sleep timer (tied to this environment's
// engine and re-armed rather than re-allocated — its callback reads
// the ChainProc afresh at fire time, so a recycled occupant is fine).
func (env *Environment) releaseChain(c *ChainProc) {
	counters := c.counters[:0]
	timer := c.sleepTimer
	*c = ChainProc{counters: counters, sleepTimer: timer}
	if poolingEnabled {
		env.chainPool = append(env.chainPool, c)
	}
}
