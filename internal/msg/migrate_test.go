package msg

import (
	"testing"

	"repro/internal/platform"
)

// migratePlatform: fast and slow host joined by a link.
func migratePlatform(t *testing.T) *platform.Platform {
	t.Helper()
	p := platform.New()
	if err := p.AddHost(&platform.Host{Name: "fast", Power: 2e9}); err != nil {
		t.Fatal(err)
	}
	if err := p.AddHost(&platform.Host{Name: "slow", Power: 5e8}); err != nil {
		t.Fatal(err)
	}
	l := &platform.Link{Name: "l", Bandwidth: 1e8, Latency: 1e-4}
	if err := p.AddRoute("fast", "slow", []*platform.Link{l}); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestMigrateChangesExecutionSpeed(t *testing.T) {
	env := NewEnvironment(migratePlatform(t), exact())
	var tFast, tSlow float64
	env.NewProcess("mover", "fast", func(p *Process) error {
		if err := p.Execute(NewTask("a", 1e9, 0)); err != nil { // 0.5 s at 2 Gflop/s
			return err
		}
		tFast = p.Now()
		if err := p.Migrate("slow"); err != nil {
			return err
		}
		if p.Host().Name != "slow" {
			t.Errorf("host = %s after migrate", p.Host().Name)
		}
		if err := p.Execute(NewTask("b", 1e9, 0)); err != nil { // 2 s at 0.5 Gflop/s
			return err
		}
		tSlow = p.Now()
		return nil
	})
	if err := env.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !approx(tFast, 0.5, 1e-6) {
		t.Errorf("first exec at %g, want 0.5", tFast)
	}
	if !approx(tSlow, 2.5, 1e-6) {
		t.Errorf("second exec at %g, want 2.5 (migrated to slow host)", tSlow)
	}
}

func TestMigrateChangesMailboxLocation(t *testing.T) {
	env := NewEnvironment(migratePlatform(t), exact())
	env.NewProcess("recv", "fast", func(p *Process) error {
		if err := p.Migrate("slow"); err != nil {
			return err
		}
		// Now listening on the slow host's channels.
		task, err := p.Get(7)
		if err != nil {
			return err
		}
		if task.Name != "to-slow" {
			t.Errorf("got %q", task.Name)
		}
		return nil
	})
	env.NewProcess("send", "fast", func(p *Process) error {
		p.Sleep(0.01)
		return p.Put(NewTask("to-slow", 0, 1e3), "slow", 7)
	})
	if err := env.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestMigrateValidation(t *testing.T) {
	env := NewEnvironment(migratePlatform(t), exact())
	env.NewProcess("p", "fast", func(p *Process) error {
		if err := p.Migrate("ghost"); err == nil {
			t.Error("unknown host accepted")
		}
		if err := p.Migrate("fast"); err != nil {
			t.Errorf("self migration: %v", err)
		}
		return nil
	})
	if err := env.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestMigrateTracksHostFailureTargets(t *testing.T) {
	// After migration, a failure of the NEW host kills the process.
	env := NewEnvironment(migratePlatform(t), exact())
	killed := false
	env.NewProcess("mover", "fast", func(p *Process) error {
		p.Core().OnExit(func(err error) {
			if err != nil {
				killed = true
			}
		})
		if err := p.Migrate("slow"); err != nil {
			return err
		}
		return p.Sleep(100)
	})
	env.NewProcess("saboteur", "fast", func(p *Process) error {
		p.Sleep(1)
		return env.Model().FailHost("slow")
	})
	if err := env.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !killed {
		t.Error("migrated process survived its new host's failure")
	}
}
