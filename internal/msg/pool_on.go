//go:build !nopool

package msg

// poolingEnabled gates the environment's free lists (recycled
// pendingSend/pendingRecv rendezvous records). Build with -tags=nopool
// to allocate everything fresh — the reference behaviour the
// pool-reuse regression suite cross-checks against. A var, not a
// const, so in-package tests can flip it at runtime.
var poolingEnabled = true
