package msg

// Tests for declarative activity chains: builder validation, loop and
// branch constructs, bit-identical equivalence with goroutine
// processes (and of pooled vs fresh chain records), kill and
// auto-restart semantics, deadlock reporting, and pool hygiene.

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/core"
)

// rec builds an event recorder whose entries embed the exact (hex
// float) timestamp: two runs agree only if they are bit-identical.
func chainRecorder(env *Environment) (func(string), *[]string) {
	log := &[]string{}
	return func(tag string) {
		*log = append(*log, fmt.Sprintf("%x %s", env.Now(), tag))
	}, log
}

func TestChainBuilderValidation(t *testing.T) {
	if _, err := NewChain().Build(); err == nil {
		t.Error("empty chain built")
	}
	if _, err := NewChain().Loop(2).Compute("w", 1).Build(); err == nil {
		t.Error("unclosed Loop built")
	}
	if _, err := NewChain().Compute("w", 1).End().Build(); err == nil {
		t.Error("End without Loop built")
	}
	if _, err := NewChain().BreakIf(func(*Task) bool { return true }).Build(); err == nil {
		t.Error("BreakIf outside Loop built")
	}
	if _, err := NewChain().Loop(3).Sleep(1).End().Build(); err != nil {
		t.Errorf("valid chain rejected: %v", err)
	}
}

// TestChainLoopConstructs pins counted loops, nesting, BreakIf and
// StopIf against a pure Do/Sleep chain (no rendezvous, exact count).
func TestChainLoopConstructs(t *testing.T) {
	env := NewEnvironment(lanPlatform(t), exact())
	var outer, inner, after int
	spec := NewChain().
		Loop(3).
		Do(func(c *ChainProc) { outer++ }).
		Loop(4).
		Do(func(c *ChainProc) { inner++ }).
		Sleep(0.01).
		BreakIf(func(*Task) bool { return inner%10 == 0 }). // fires once, at inner==10
		End().
		End().
		Do(func(c *ChainProc) { after++ }).
		MustBuild()
	if _, err := env.StartChain("loops", "client", spec, nil); err != nil {
		t.Fatal(err)
	}
	if err := env.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Outer runs 3 times; inner runs 4 per outer pass except the pass
	// where the break fires at the 10th total inner iteration (2nd
	// iteration of the 3rd pass).
	if outer != 3 || inner != 10 || after != 1 {
		t.Errorf("outer=%d inner=%d after=%d, want 3/10/1", outer, inner, after)
	}
}

// TestChainComputeDuration mirrors TestExecuteDuration in chain form.
func TestChainComputeDuration(t *testing.T) {
	env := NewEnvironment(lanPlatform(t), exact())
	spec := NewChain().Compute("work", 2e9).MustBuild() // 2 Gflop at 1 Gflop/s
	var exitErr = errors.New("sentinel: OnExit never ran")
	if _, err := env.StartChain("worker", "client", spec, &ChainConfig{
		OnExit: func(err error) { exitErr = err },
	}); err != nil {
		t.Fatal(err)
	}
	if err := env.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if exitErr != nil {
		t.Errorf("OnExit err = %v", exitErr)
	}
	if !approx(env.Now(), 2, 1e-9) {
		t.Errorf("finished at %g, want 2", env.Now())
	}
}

// TestChainSpawnedAccounting: chains are logical process starts with
// zero goroutines behind them.
func TestChainSpawnedAccounting(t *testing.T) {
	env := NewEnvironment(lanPlatform(t), exact())
	spec := NewChain().Sleep(0.1).MustBuild()
	for i := 0; i < 5; i++ {
		if _, err := env.StartChain(fmt.Sprintf("c%d", i), "client", spec, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := env.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	eng := env.Engine()
	if eng.Spawned() != 5 {
		t.Errorf("Spawned() = %d, want 5", eng.Spawned())
	}
	if eng.GoroutineSpawns() != 0 {
		t.Errorf("GoroutineSpawns() = %d, want 0", eng.GoroutineSpawns())
	}
	if eng.GoroutinesPeak() != 0 {
		t.Errorf("GoroutinesPeak() = %d, want 0", eng.GoroutinesPeak())
	}
	if env.LiveChains() != 0 {
		t.Errorf("LiveChains() = %d after Run", env.LiveChains())
	}
}

// chainPairWorkload runs the same staggered multi-pair send/compute
// workload in either form and returns its bit-exact event log.
// Sender i: sleep i*stagger, then rounds×(put 1 MB; compute 2 MFlop).
// Receiver i: rounds×(get; execute the received task's 3 MFlop).
func chainPairWorkload(t *testing.T, declarative bool, pairs, rounds int, stagger float64) []string {
	t.Helper()
	env := NewEnvironment(lanPlatform(t), exact())
	rec, log := chainRecorder(env)
	for i := 0; i < pairs; i++ {
		i := i
		ch := i + 1
		delay := float64(i) * stagger
		tname := fmt.Sprintf("t%d", i)
		if declarative {
			send := NewChain().
				Sleep(delay).
				Do(func(c *ChainProc) { c.SetTask(NewTask(tname, 3e6, 1e6)) }).
				Loop(rounds).
				PutReg("server", ch).
				Do(func(c *ChainProc) { rec(fmt.Sprintf("sent%d", i)) }).
				Compute("w", 2e6).
				Do(func(c *ChainProc) { rec(fmt.Sprintf("scomp%d", i)) }).
				End().
				MustBuild()
			recv := NewChain().
				Loop(rounds).
				Get(ch).
				Do(func(c *ChainProc) { rec(fmt.Sprintf("got%d %s", i, c.Task().Name)) }).
				ComputeTask().
				Do(func(c *ChainProc) { rec(fmt.Sprintf("rcomp%d", i)) }).
				End().
				MustBuild()
			if _, err := env.StartChain(fmt.Sprintf("send%d", i), "client", send, nil); err != nil {
				t.Fatal(err)
			}
			if _, err := env.StartChain(fmt.Sprintf("recv%d", i), "server", recv, nil); err != nil {
				t.Fatal(err)
			}
			continue
		}
		env.NewProcess(fmt.Sprintf("send%d", i), "client", func(p *Process) error {
			if err := p.Sleep(delay); err != nil {
				return err
			}
			task := NewTask(tname, 3e6, 1e6)
			w := NewTask("w", 2e6, 0)
			for r := 0; r < rounds; r++ {
				if err := p.Put(task, "server", ch); err != nil {
					return err
				}
				rec(fmt.Sprintf("sent%d", i))
				if err := p.Execute(w); err != nil {
					return err
				}
				rec(fmt.Sprintf("scomp%d", i))
			}
			return nil
		})
		env.NewProcess(fmt.Sprintf("recv%d", i), "server", func(p *Process) error {
			for r := 0; r < rounds; r++ {
				task, err := p.Get(ch)
				if err != nil {
					return err
				}
				rec(fmt.Sprintf("got%d %s", i, task.Name))
				if err := p.Execute(task); err != nil {
					return err
				}
				rec(fmt.Sprintf("rcomp%d", i))
			}
			return nil
		})
	}
	if err := env.Run(); err != nil {
		t.Fatalf("Run(declarative=%v): %v", declarative, err)
	}
	return *log
}

func diffLogs(t *testing.T, labelA string, a []string, labelB string, b []string) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s produced %d events, %s %d", labelA, len(a), labelB, len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d diverged:\n  %s: %s\n  %s: %s", i, labelA, a[i], labelB, b[i])
		}
	}
}

// TestChainGoroutineEquivalence is the tentpole contract: the same
// workload expressed as declarative chains and as goroutine processes
// produces a bit-identical event log — both in a staggered schedule
// and in a lockstep one where every pair completes at the same
// instants (exercising the same-instant batch path).
func TestChainGoroutineEquivalence(t *testing.T) {
	for _, tc := range []struct {
		name    string
		stagger float64
	}{
		{"staggered", 0.013},
		{"lockstep", 0},
	} {
		t.Run(tc.name, func(t *testing.T) {
			goro := chainPairWorkload(t, false, 3, 4, tc.stagger)
			decl := chainPairWorkload(t, true, 3, 4, tc.stagger)
			if len(goro) == 0 {
				t.Fatal("workload produced no events")
			}
			diffLogs(t, "goroutine", goro, "chain", decl)
		})
	}
}

// TestChainDeterminism runs the declarative pair workload five times:
// every run must produce the bit-identical event log (the repo-wide
// replayability contract, extended to the processless form).
func TestChainDeterminism(t *testing.T) {
	ref := chainPairWorkload(t, true, 3, 4, 0.013)
	for i := 1; i < 5; i++ {
		diffLogs(t, "run0", ref, fmt.Sprintf("run%d", i), chainPairWorkload(t, true, 3, 4, 0.013))
	}
}

// TestChainPoolingEquivalence replays a chain-churn workload (waves of
// short chains recycled through the pool, started from OnExit) with
// pooling on and off: recycled ChainProcs and rendezvous records must
// be unobservable.
func TestChainPoolingEquivalence(t *testing.T) {
	run := func(pool bool) []string {
		defer func(old bool) { poolingEnabled = old }(poolingEnabled)
		poolingEnabled = pool
		env := NewEnvironment(lanPlatform(t), exact())
		rec, log := chainRecorder(env)
		spec := NewChain().
			Sleep(0.01).
			Compute("w", 1e6).
			MustBuild()
		const waves = 5
		var launch func(wave int)
		launch = func(wave int) {
			if wave >= waves {
				return
			}
			for i := 0; i < 3; i++ {
				i := i
				name := fmt.Sprintf("c%d.%d", wave, i)
				if _, err := env.StartChain(name, "client", spec, &ChainConfig{
					OnExit: func(err error) {
						rec(fmt.Sprintf("exit %s %v", name, err))
						if i == 0 {
							launch(wave + 1)
						}
					},
				}); err != nil {
					t.Fatal(err)
				}
			}
		}
		launch(0)
		if err := env.Run(); err != nil {
			t.Fatalf("Run(pool=%v): %v", pool, err)
		}
		return *log
	}
	pooled := run(true)
	fresh := run(false)
	if len(pooled) != waves3(5) {
		t.Fatalf("pooled run produced %d events, want %d", len(pooled), waves3(5))
	}
	diffLogs(t, "pooled", pooled, "fresh", fresh)
}

func waves3(waves int) int { return waves * 3 }

// TestChainMixedRendezvous crosses the forms: a goroutine master farms
// tasks to a declarative worker, poison pill included — the hybrid
// shape examples/masterworker uses.
func TestChainMixedRendezvous(t *testing.T) {
	env := NewEnvironment(lanPlatform(t), exact())
	var handled int
	var workerErr = errors.New("sentinel")
	worker := NewChain().
		Loop(0). // forever, until the poison pill stops the chain
		Get(1).
		StopIf(func(task *Task) bool { return task.Data == "stop" }).
		ComputeTask().
		Do(func(c *ChainProc) { handled++ }).
		End().
		MustBuild()
	if _, err := env.StartChain("worker", "server", worker, &ChainConfig{
		OnExit: func(err error) { workerErr = err },
	}); err != nil {
		t.Fatal(err)
	}
	env.NewProcess("master", "client", func(p *Process) error {
		for i := 0; i < 4; i++ {
			if err := p.Put(NewTask(fmt.Sprintf("job%d", i), 1e6, 1e5), "server", 1); err != nil {
				return err
			}
		}
		stop := NewTask("poison", 0, 1)
		stop.Data = "stop"
		return p.Put(stop, "server", 1)
	})
	if err := env.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if handled != 4 {
		t.Errorf("worker handled %d tasks, want 4", handled)
	}
	if workerErr != nil {
		t.Errorf("worker OnExit err = %v, want nil (StopIf is a normal exit)", workerErr)
	}
	if env.LiveChains() != 0 {
		t.Errorf("LiveChains() = %d", env.LiveChains())
	}
}

// TestChainKill kills chains blocked on each step kind and checks the
// unwind: records dequeued, actions canceled, OnExit(ErrKilled), no
// live chains left.
func TestChainKill(t *testing.T) {
	env := NewEnvironment(lanPlatform(t), exact())
	eng := env.Engine()
	var exits []string
	onExit := func(name string) *ChainConfig {
		return &ChainConfig{OnExit: func(err error) {
			exits = append(exits, fmt.Sprintf("%s %v", name, err))
		}}
	}
	// Blocked in Get with no sender in sight.
	starved := NewChain().Get(5).MustBuild()
	cGet, err := env.StartChain("starved", "server", starved, onExit("starved"))
	if err != nil {
		t.Fatal(err)
	}
	// Blocked mid-compute.
	busy := NewChain().Compute("long", 5e9).MustBuild()
	cExec, err := env.StartChain("busy", "client", busy, onExit("busy"))
	if err != nil {
		t.Fatal(err)
	}
	// Blocked mid-sleep.
	dozing := NewChain().Sleep(100).MustBuild()
	cSleep, err := env.StartChain("dozing", "client", dozing, onExit("dozing"))
	if err != nil {
		t.Fatal(err)
	}
	eng.After(0.5, func() {
		cGet.Kill()
		cExec.Kill()
		cSleep.Kill()
	})
	if err := env.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []string{
		"starved core: process killed",
		"busy core: process killed",
		"dozing core: process killed",
	}
	if len(exits) != len(want) {
		t.Fatalf("exits = %v", exits)
	}
	for i := range want {
		if exits[i] != want[i] {
			t.Errorf("exit %d = %q, want %q", i, exits[i], want[i])
		}
	}
	if env.LiveChains() != 0 {
		t.Errorf("LiveChains() = %d", env.LiveChains())
	}
	if got := len(env.mailbox(mailboxKey{host: "server", channel: 5}).recvQ); got != 0 {
		t.Errorf("killed receiver left %d queued records", got)
	}
	if !approx(env.Now(), 0.5, 1e-9) {
		t.Errorf("ended at %g, want 0.5", env.Now())
	}
}

// TestChainKillMidTransfer kills the chain sender of an in-flight
// matched transfer: like a killed goroutine sender, the transfer keeps
// flowing and the receiver still gets the task.
func TestChainKillMidTransfer(t *testing.T) {
	env := NewEnvironment(lanPlatform(t), exact())
	send := NewChain().Put("big", 0, 1e8, "server", 1).MustBuild() // ~1 s transfer
	var chainErr error
	cs, err := env.StartChain("sender", "client", send, &ChainConfig{
		OnExit: func(err error) { chainErr = err },
	})
	if err != nil {
		t.Fatal(err)
	}
	var got *Task
	var recvErr error
	env.NewProcess("receiver", "server", func(p *Process) error {
		got, recvErr = p.Get(1)
		return recvErr
	})
	env.Engine().After(0.5, func() { cs.Kill() })
	if err := env.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !errors.Is(chainErr, ErrKilled) {
		t.Errorf("chain OnExit err = %v, want ErrKilled", chainErr)
	}
	if recvErr != nil || got == nil || got.Name != "big" {
		t.Errorf("receiver got (%v, %v), want the task despite the kill", got, recvErr)
	}
}

// TestChainDeadlockReport: a chain starved forever must show up by
// name (with its blocked simcall) in the DeadlockError, even though no
// goroutine is blocked.
func TestChainDeadlockReport(t *testing.T) {
	env := NewEnvironment(lanPlatform(t), exact())
	starved := NewChain().Get(9).MustBuild()
	if _, err := env.StartChain("starved", "server", starved, nil); err != nil {
		t.Fatal(err)
	}
	err := env.Run()
	var dl *core.DeadlockError
	if !errors.As(err, &dl) {
		t.Fatalf("Run returned %v, want DeadlockError", err)
	}
	found := false
	for i, n := range dl.Blocked {
		if n == "starved" && dl.Calls[i] == core.SimcallRecv {
			found = true
		}
	}
	if !found {
		t.Errorf("deadlock report %v / %v does not name the starved chain", dl.Blocked, dl.Calls)
	}
}

// TestChainAutoRestart fails the host mid-compute and checks the full
// declarative fault cycle: the failing action parks the chain, the
// sweep kills it (OnFailure, OnExit(ErrKilled)), recovery re-arms it
// from step 0 under a fresh PID, and it completes on the second life.
func TestChainAutoRestart(t *testing.T) {
	env := NewEnvironment(lanPlatform(t), exact())
	eng := env.Engine()
	rec, log := chainRecorder(env)
	spec := NewChain().
		Compute("a", 1.5e9). // 1.5 s on the 1 Gflop/s host
		Do(func(c *ChainProc) { rec("a done") }).
		Sleep(0.2).
		Do(func(c *ChainProc) { rec("b done") }).
		MustBuild()
	var pids []int
	cp, err := env.StartChain("victim", "server", spec, &ChainConfig{
		AutoRestart: true,
		OnExit:      func(err error) { rec(fmt.Sprintf("exit %v", err)) },
		OnFailure:   func(err error) { rec(fmt.Sprintf("failure %v", err)) },
	})
	if err != nil {
		t.Fatal(err)
	}
	pids = append(pids, cp.PID())
	// A bystander keeps the simulation alive across the outage window.
	clock := NewChain().Sleep(10).MustBuild()
	if _, err := env.StartChain("clock", "client", clock, nil); err != nil {
		t.Fatal(err)
	}
	eng.After(1, func() { _ = env.Model().FailHost("server") })
	eng.After(3, func() {
		_ = env.Model().RestoreHost("server")
		pids = append(pids, cp.PID())
	})
	if err := env.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Kill at t=1 mid-compute, restart from the top at t=3: "a done" at
	// 4.5, "b done" at 4.7, final exit nil.
	want := []string{
		fmt.Sprintf("%x failure %v", 1.0, ErrHostFailed),
		fmt.Sprintf("%x exit %v", 1.0, ErrKilled),
		fmt.Sprintf("%x a done", 4.5),
		fmt.Sprintf("%x b done", 4.7),
		fmt.Sprintf("%x exit %v", 4.7, error(nil)),
	}
	diffLogs(t, "got", *log, "want", want)
	if len(pids) != 2 || pids[1] <= pids[0] {
		t.Errorf("restart did not allocate a fresh PID: %v", pids)
	}
}

// TestChainPoolScrubbed: recycled ChainProcs carry nothing of their
// previous life.
func TestChainPoolScrubbed(t *testing.T) {
	if !poolingEnabled {
		t.Skip("free lists disabled (-tags=nopool)")
	}
	env := NewEnvironment(lanPlatform(t), exact())
	spec := NewChain().Loop(2).Sleep(0.05).Compute("w", 1e6).End().MustBuild()
	for i := 0; i < 4; i++ {
		if _, err := env.StartChain(fmt.Sprintf("c%d", i), "client", spec, &ChainConfig{
			OnExit: func(error) {},
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := env.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(env.chainPool) == 0 {
		t.Fatal("no ChainProc was pooled")
	}
	for i, c := range env.chainPool {
		clean := c.env == nil && c.spec == nil && c.task == nil && c.exec == nil &&
			c.sendRec == nil && c.recvRec == nil && c.onExit == nil && c.OnFailure == nil &&
			!c.done && c.pc == 0 && c.pid == 0 && len(c.counters) == 0
		if !clean {
			t.Errorf("pooled ChainProc %d not scrubbed: %+v", i, c)
		}
	}
}
