package msg

// RetryPolicy bounds and paces Retry: how many attempts in total, and
// how long (in simulated seconds) to back off between them.
type RetryPolicy struct {
	// Attempts is the total number of tries (first call included);
	// values below 1 mean a single attempt.
	Attempts int
	// Backoff is the simulated-time sleep before each retry (none
	// before the first attempt). Zero retries immediately.
	Backoff float64
	// Multiplier grows the backoff after each retry when > 1
	// (exponential backoff); 0 or 1 keeps it constant.
	Multiplier float64
	// MaxBackoff caps a single backoff when > 0.
	MaxBackoff float64
}

// Retry runs fn until it returns nil or the policy's attempts are
// exhausted, sleeping the (optionally growing) backoff in simulated
// time between attempts. It returns nil on the first success, the last
// error otherwise. The sleep is a regular simcall: a kill during the
// backoff unwinds like any blocked operation, and a host failure
// surfaces as the sleep's error, returned as-is — Retry never retries
// past its own process dying.
func Retry(p *Process, pol RetryPolicy, fn func() error) error {
	attempts := pol.Attempts
	if attempts < 1 {
		attempts = 1
	}
	backoff := pol.Backoff
	var err error
	for i := 0; i < attempts; i++ {
		if i > 0 {
			p.env.retries++
		}
		if i > 0 && backoff > 0 {
			if serr := p.Sleep(backoff); serr != nil {
				return serr
			}
			if pol.Multiplier > 1 {
				backoff *= pol.Multiplier
				if pol.MaxBackoff > 0 && backoff > pol.MaxBackoff {
					backoff = pol.MaxBackoff
				}
			}
		}
		if err = fn(); err == nil {
			return nil
		}
	}
	return err
}
