package msg

import (
	"strconv"
	"testing"

	"repro/internal/platform"
	"repro/internal/surf"
)

// BenchmarkHostFailureKillSweep guards the PID-ordered kill sweep (and
// the kill-unwind release path behind it) at 10k victims: one host
// failure kills 10 000 processes blocked in Get, each unwinding through
// the abandon/recycle path. The sweep plus unwinds must stay linear in
// the victim count.
func BenchmarkHostFailureKillSweep(b *testing.B) {
	const victims = 10_000
	pf := platform.New()
	if err := pf.AddHost(&platform.Host{Name: "farm", Power: 1e9}); err != nil {
		b.Fatal(err)
	}
	if err := pf.AddHost(&platform.Host{Name: "observer", Power: 1e9}); err != nil {
		b.Fatal(err)
	}
	if err := pf.AddRoute("farm", "observer", []*platform.Link{
		{Name: "l", Bandwidth: 1e8, Latency: 1e-4},
	}); err != nil {
		b.Fatal(err)
	}

	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		env := NewEnvironment(pf, surf.DefaultConfig())
		for v := 0; v < victims; v++ {
			ch := v // per-victim channel: the sweep, not queue scans, is under test
			p, err := env.NewProcess("w"+strconv.Itoa(v), "farm", func(p *Process) error {
				_, err := p.Get(ch)
				return err
			})
			if err != nil {
				b.Fatal(err)
			}
			p.Daemonize()
		}
		// The observer keeps the run live through the sweep; the timer
		// fails the host once every victim is parked in its Get.
		env.NewProcess("observer", "observer", func(p *Process) error { return p.Sleep(2) })
		env.Engine().After(1, func() {
			if err := env.Model().FailHost("farm"); err != nil {
				b.Error(err)
			}
		})
		if err := env.Run(); err != nil {
			b.Fatal(err)
		}
	}
}
