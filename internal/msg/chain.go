package msg

// Declarative activity-chain processes: the processless MSG form.
//
// A Chain is a compiled description of a process as a flat program of
// activity steps — send / receive / compute / sleep plus loop, branch
// and callback constructs. A ChainProc executes that program directly
// in kernel context: each step arms a surf action (or a timer, or a
// rendezvous record) through the exact same fast paths the goroutine
// API uses, and the completion callback advances the program counter
// and runs the next step. No goroutine, no stack, no channel handoff —
// a chain's entire kernel-visible behaviour (rendezvous matching,
// action ordering, gantt records, kill/restart semantics) is
// indistinguishable from the equivalent goroutine process, which the
// equivalence suite in chain_test.go replays both ways to check.
//
// The form exists for scale: a 10M-activity run over goroutine
// processes pays a stack and two channel operations per block/wake,
// while the chain interpreter pays a pc increment and a virtual-step
// dispatch. Chains share the PID space, the live count and the
// Spawned() accounting with goroutine processes, so a mixed workload
// (examples/masterworker keeps its dispatcher as a goroutine and runs
// workers as chains) needs no special casing anywhere.

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/gantt"
	"repro/internal/platform"
	"repro/internal/surf"
)

// chainOp is the opcode of one compiled chain step.
type chainOp uint8

const (
	opLoopInit chainOp = iota // reset the loop counter for a Loop
	opLoopJump                // decrement and jump back while iterations remain
	opPut                     // send a task and block until delivered
	opGet                     // receive a task into the register and block
	opCompute                 // run flops on the local CPU and block
	opSleep                   // block for a fixed duration
	opDo                      // run a kernel-context callback, no block
	opStopIf                  // terminate the chain if the predicate holds
	opBreakIf                 // exit the innermost loop if the predicate holds
)

// chainStep is one compiled step. Which fields are meaningful depends
// on op; the zero value of the rest is inert.
type chainStep struct {
	op      chainOp
	name    string  // task/gantt label (opPut, opCompute)
	flops   float64 // opPut (payload), opCompute
	bytes   float64 // opPut
	dur     float64 // opSleep
	dest    string  // opPut destination host
	channel int     // opPut, opGet
	slot    int     // opLoopInit, opLoopJump counter index
	n       int     // opLoopInit iteration count (<= 0: forever)
	target  int     // opLoopJump (body start), opBreakIf (loop exit)
	useTask bool    // opPut/opCompute: use the task register instead of name/flops

	makeTask func(*ChainProc) *Task // opPut custom task factory
	do       func(*ChainProc)       // opDo
	pred     func(*Task) bool       // opStopIf, opBreakIf
}

// Chain is a compiled, immutable activity-chain program. One Chain is
// typically shared by many ChainProcs (all workers run the same spec).
type Chain struct {
	steps    []chainStep
	numLoops int
}

// ChainBuilder accumulates steps; Build compiles them. Builder methods
// return the builder for fluent chaining; errors (unbalanced loops,
// misplaced breaks) are deferred to Build.
type ChainBuilder struct {
	steps    []chainStep
	frames   []chainFrame
	numLoops int
	err      error
}

// chainFrame is an open Loop during building.
type chainFrame struct {
	slot   int
	start  int   // pc of the first body step
	breaks []int // BreakIf steps whose exit target needs patching
}

// NewChain starts a chain description.
func NewChain() *ChainBuilder { return &ChainBuilder{} }

func (b *ChainBuilder) fail(msg string) *ChainBuilder {
	if b.err == nil {
		b.err = errors.New("msg: " + msg)
	}
	return b
}

// Loop opens a counted loop executing its body n times; n <= 0 loops
// forever (daemon-style servers — pair with StopIf or BreakIf, or rely
// on kill). Close with End. Loops nest.
func (b *ChainBuilder) Loop(n int) *ChainBuilder {
	slot := b.numLoops
	b.numLoops++
	b.frames = append(b.frames, chainFrame{slot: slot, start: len(b.steps) + 1})
	b.steps = append(b.steps, chainStep{op: opLoopInit, slot: slot, n: n})
	return b
}

// End closes the innermost open Loop.
func (b *ChainBuilder) End() *ChainBuilder {
	if len(b.frames) == 0 {
		return b.fail("chain: End without Loop")
	}
	f := b.frames[len(b.frames)-1]
	b.frames = b.frames[:len(b.frames)-1]
	b.steps = append(b.steps, chainStep{op: opLoopJump, slot: f.slot, target: f.start})
	exit := len(b.steps)
	for _, i := range f.breaks {
		b.steps[i].target = exit
	}
	return b
}

// Put sends a fresh task (name, flops, bytes) to (destHost, channel)
// and blocks until delivered — MSG_task_put as a step. A new Task is
// allocated per execution; use PutReg or PutTask to reuse one.
func (b *ChainBuilder) Put(name string, flops, bytes float64, destHost string, channel int) *ChainBuilder {
	b.steps = append(b.steps, chainStep{op: opPut, name: name, flops: flops, bytes: bytes, dest: destHost, channel: channel})
	return b
}

// PutReg sends the task currently in the chain's task register (set by
// Get, SetTask, or a Do callback). The register keeps pointing at the
// task afterwards, so a loop of PutReg steps reuses one Task object —
// the zero-allocation steady state.
func (b *ChainBuilder) PutReg(destHost string, channel int) *ChainBuilder {
	b.steps = append(b.steps, chainStep{op: opPut, useTask: true, dest: destHost, channel: channel})
	return b
}

// PutTask sends the task returned by fn (invoked at step execution, in
// kernel context — it must not block). Returning nil fails the chain.
func (b *ChainBuilder) PutTask(fn func(*ChainProc) *Task, destHost string, channel int) *ChainBuilder {
	b.steps = append(b.steps, chainStep{op: opPut, makeTask: fn, dest: destHost, channel: channel})
	return b
}

// Get receives the next task from the given channel of the chain's own
// host into the task register, blocking until one arrives.
func (b *ChainBuilder) Get(channel int) *ChainBuilder {
	b.steps = append(b.steps, chainStep{op: opGet, channel: channel})
	return b
}

// Compute runs flops of work on the chain's host (MSG_task_execute as
// a step); name labels the gantt interval.
func (b *ChainBuilder) Compute(name string, flops float64) *ChainBuilder {
	b.steps = append(b.steps, chainStep{op: opCompute, name: name, flops: flops})
	return b
}

// ComputeTask runs the execution payload of the task register (the
// task last received) — the worker half of a task-farm.
func (b *ChainBuilder) ComputeTask() *ChainBuilder {
	b.steps = append(b.steps, chainStep{op: opCompute, useTask: true})
	return b
}

// Sleep blocks the chain for d simulated seconds.
func (b *ChainBuilder) Sleep(d float64) *ChainBuilder {
	b.steps = append(b.steps, chainStep{op: opSleep, dur: d})
	return b
}

// Do runs fn inline in kernel context — counters, logging, task
// mutation. fn must not block (no goroutine-API calls); it sees the
// chain for Now/Task/SetTask access.
func (b *ChainBuilder) Do(fn func(*ChainProc)) *ChainBuilder {
	b.steps = append(b.steps, chainStep{op: opDo, do: fn})
	return b
}

// StopIf terminates the chain normally (err nil) when pred holds for
// the task register — the poison-pill test of a task-farm worker.
func (b *ChainBuilder) StopIf(pred func(*Task) bool) *ChainBuilder {
	b.steps = append(b.steps, chainStep{op: opStopIf, pred: pred})
	return b
}

// BreakIf exits the innermost enclosing loop when pred holds for the
// task register.
func (b *ChainBuilder) BreakIf(pred func(*Task) bool) *ChainBuilder {
	if len(b.frames) == 0 {
		return b.fail("chain: BreakIf outside Loop")
	}
	f := &b.frames[len(b.frames)-1]
	f.breaks = append(f.breaks, len(b.steps))
	b.steps = append(b.steps, chainStep{op: opBreakIf, pred: pred})
	return b
}

// Build compiles the chain. It fails on unbalanced Loop/End or a
// misplaced BreakIf.
func (b *ChainBuilder) Build() (*Chain, error) {
	if b.err != nil {
		return nil, b.err
	}
	if len(b.frames) > 0 {
		return nil, errors.New("msg: chain: Loop without End")
	}
	if len(b.steps) == 0 {
		return nil, errors.New("msg: chain: empty chain")
	}
	return &Chain{steps: b.steps, numLoops: b.numLoops}, nil
}

// MustBuild is Build panicking on error (for compile-time-constant
// chain specs in examples and benchmarks).
func (b *ChainBuilder) MustBuild() *Chain {
	c, err := b.Build()
	if err != nil {
		panic(err)
	}
	return c
}

// ChainConfig carries the optional knobs of StartChain.
type ChainConfig struct {
	// Daemon excludes the chain from the engine's liveness count, like
	// Process.Daemonize: the simulation may end while it still runs.
	Daemon bool
	// AutoRestart re-arms the chain from step 0 when its host recovers
	// from a failure that killed it, like Process.SetAutoRestart.
	AutoRestart bool
	// OnExit runs in kernel context when the chain terminates (err nil
	// on normal completion, ErrKilled on kill, the step error
	// otherwise). This is the sanctioned way to harvest results: the
	// ChainProc itself may be recycled right after.
	OnExit func(err error)
	// OnFailure mirrors Process.OnFailure: invoked right before a host
	// failure kills the chain, before any restart is queued.
	OnFailure func(err error)
}

// ChainProc is a running (or pooled) instance of a Chain on a host: the
// processless counterpart of Process. It is this package's
// surf.Completion handler for the chain's compute actions; transfers
// complete through the shared pendingSend handler, which advances the
// chain endpoints inline.
//
// Lifetime: StartChain hands out the instance; once the chain
// terminates (OnExit has run) the instance may be scrubbed and re-armed
// for a later StartChain, so holding the pointer past termination
// reads another chain's state. Harvest results in OnExit.
type ChainProc struct {
	env  *Environment
	host *platform.Host
	name string
	pid  int
	spec *Chain

	daemon      bool
	autoRestart bool
	onExit      func(error)
	// OnFailure mirrors Process.OnFailure (settable after StartChain).
	OnFailure func(err error)

	pc        int
	counters  []int
	task      *Task // the task register: last Get result / SetTask value
	err       error
	done      bool
	blockedOn core.SimcallKind

	exec       *surf.Action // in-flight compute
	sleepTimer *core.Timer  // re-armed across Sleep steps (and reuses)
	sendRec    *pendingSend // in-flight/queued Put record
	recvRec    *pendingRecv // in-flight/queued Get record
	pendKey    mailboxKey   // mailbox of the queued record, for kill dequeue

	restartPending bool // killed by host failure, parked in restartQ
	inRun          bool // the interpreter loop is on the stack
	releasePending bool // terminated inside run(): recycle at loop exit
	ganttOpen      bool

	pajeC    string // trace container alias ("" with tracing off)
	pajeOpen bool   // a PSTATE push awaits its pop
}

// StartChain starts spec as a processless chain on hostName. It runs
// inline immediately (from time 0 when called before Run, from the
// current instant when called inside the simulation) up to its first
// blocking step. cfg may be nil.
func (env *Environment) StartChain(name, hostName string, spec *Chain, cfg *ChainConfig) (*ChainProc, error) {
	h := env.pf.Host(hostName)
	if h == nil {
		return nil, fmt.Errorf("msg: unknown host %q", hostName)
	}
	if spec == nil {
		return nil, errors.New("msg: nil chain")
	}
	c := env.grabChain()
	c.env, c.host, c.name, c.spec = env, h, name, spec
	if cap(c.counters) < spec.numLoops {
		c.counters = make([]int, spec.numLoops)
	} else {
		c.counters = c.counters[:spec.numLoops]
	}
	if cfg != nil {
		c.daemon = cfg.Daemon
		c.autoRestart = cfg.AutoRestart
		c.onExit = cfg.OnExit
		c.OnFailure = cfg.OnFailure
	}
	c.pid = env.eng.AllocPID()
	if !c.daemon {
		env.eng.AddLive(1)
	}
	env.chains[c.pid] = c
	if env.chainsByHost[h.Name] == nil {
		env.chainsByHost[h.Name] = make(map[*ChainProc]bool)
	}
	env.chainsByHost[h.Name][c] = true
	c.pajeC = env.traceProcStart(name, h.Name)
	c.run()
	return c, nil
}

// LiveChains returns the number of chains currently registered (not yet
// terminated) — a test and diagnostics hook.
func (env *Environment) LiveChains() int { return len(env.chains) }

// --- ChainProc accessors (valid until termination) ----------------------

// Name returns the chain's process name.
func (c *ChainProc) Name() string { return c.name }

// PID returns the chain's process identifier (shared space with
// goroutine processes; a restart allocates a fresh one).
func (c *ChainProc) PID() int { return c.pid }

// Host returns the host the chain runs on.
func (c *ChainProc) Host() *platform.Host { return c.host }

// Env returns the owning environment.
func (c *ChainProc) Env() *Environment { return c.env }

// Now returns the current simulated time.
func (c *ChainProc) Now() float64 { return c.env.eng.Now() }

// Task returns the task register: the task last received by Get or
// stored by SetTask (nil initially).
func (c *ChainProc) Task() *Task { return c.task }

// SetTask stores t in the task register (for PutReg / ComputeTask).
// Meant for Do callbacks — e.g. allocating one reusable task before an
// infinite send loop.
func (c *ChainProc) SetTask(t *Task) { c.task = t }

// Err returns the chain's termination cause (nil while running or
// after normal completion).
func (c *ChainProc) Err() error { return c.err }

// Done reports whether the chain terminated.
func (c *ChainProc) Done() bool { return c.done }

// Kill terminates the chain from within the simulation (kernel or
// process context), unwinding whatever step it is blocked on — the
// MSG_process_kill of the processless form.
func (c *ChainProc) Kill() { c.kill(ErrKilled) }

// --- interpreter --------------------------------------------------------

// run executes steps from the current pc until the chain blocks (a
// step armed an action, record or timer and will be advanced by its
// completion callback) or terminates. It runs in kernel context; all
// step starters use the same non-blocking kernel paths as the
// goroutine API's fast paths.
//
// Recycling a chain that terminates while this loop is on the stack
// (a Do callback calling Kill, a StopIf firing, the final step) is
// deferred to the loop's exit: scrubbing the struct mid-loop would
// reset done under the loop condition's feet.
func (c *ChainProc) run() {
	c.inRun = true
	c.step()
	c.inRun = false
	if c.releasePending {
		c.releasePending = false
		c.env.releaseChain(c)
	}
}

// step is run's interpreter loop.
func (c *ChainProc) step() {
	steps := c.spec.steps
	for !c.done {
		if c.pc >= len(steps) {
			c.finish(nil)
			return
		}
		st := &steps[c.pc]
		switch st.op {
		case opLoopInit:
			if st.n <= 0 {
				c.counters[st.slot] = -1 // forever
			} else {
				c.counters[st.slot] = st.n
			}
			c.pc++
		case opLoopJump:
			if c.counters[st.slot] < 0 {
				c.pc = st.target
				break
			}
			c.counters[st.slot]--
			if c.counters[st.slot] > 0 {
				c.pc = st.target
			} else {
				c.pc++
			}
		case opDo:
			st.do(c) // may Kill the chain: the loop condition re-checks done
			c.pc++
		case opStopIf:
			if st.pred(c.task) {
				c.finish(nil)
				return
			}
			c.pc++
		case opBreakIf:
			if st.pred(c.task) {
				c.pc = st.target
			} else {
				c.pc++
			}
		case opSleep:
			c.blockedOn = core.SimcallSleep
			if c.sleepTimer == nil {
				c.sleepTimer = c.env.eng.After(st.dur, c.sleepDone)
			} else {
				c.sleepTimer.Rearm(c.env.eng.Now() + st.dur)
			}
			return
		case opCompute:
			if !c.stepCompute(st) {
				return
			}
		case opPut:
			c.stepPut(st)
			return
		case opGet:
			c.stepGet(st)
			return
		}
	}
}

// fail terminates the chain with a step error.
func (c *ChainProc) fail(err error) { c.finish(err) }

// finish terminates a chain that completed (or failed) under its own
// power. kill is the external-termination twin.
func (c *ChainProc) finish(err error) {
	if c.done {
		return
	}
	c.done = true
	c.teardown(err)
}

// teardown is the shared termination tail: deregister, report, recycle.
func (c *ChainProc) teardown(err error) {
	c.err = err
	env := c.env
	env.traceProcEnd(c.pajeC, c.pajeOpen, err)
	c.pajeC, c.pajeOpen = "", false
	if !c.daemon {
		env.eng.AddLive(-1)
	}
	delete(env.chains, c.pid)
	delete(env.chainsByHost[c.host.Name], c)
	if c.onExit != nil {
		c.onExit(err)
	}
	if !c.restartPending {
		if c.inRun {
			c.releasePending = true // run()'s exit recycles
		} else {
			env.releaseChain(c)
		}
	}
}

// kill terminates the chain from outside (Kill API or the host-failure
// sweep), cleaning up whatever it is blocked on. An in-flight matched
// transfer keeps flowing to the peer — exactly the goroutine-kill
// semantics, where the record is abandoned to ActionDone.
func (c *ChainProc) kill(err error) {
	if c.done {
		return
	}
	c.done = true // guards the reentrant ActionDone from Cancel below
	if a := c.exec; a != nil {
		a.Cancel() // drives c.ActionDone inline, which releases the action
	}
	if ps := c.sendRec; ps != nil {
		c.sendRec = nil
		if ps.delivery != nil {
			ps.chainS = nil
			ps.abandoned = true // ActionDone recycles it, peer still delivered
		} else {
			mb := c.env.mailbox(c.pendKey)
			for i, q := range mb.sendQ {
				if q == ps {
					mb.sendQ = append(mb.sendQ[:i], mb.sendQ[i+1:]...)
					c.env.noteQueued(-1, 0)
					break
				}
			}
			c.env.releaseSend(ps)
		}
	}
	if pr := c.recvRec; pr != nil {
		c.recvRec = nil
		if pr.matched != nil {
			pr.chainR = nil
			pr.abandoned = true
		} else {
			mb := c.env.mailbox(c.pendKey)
			for i, q := range mb.recvQ {
				if q == pr {
					mb.recvQ = append(mb.recvQ[:i], mb.recvQ[i+1:]...)
					c.env.noteQueued(0, -1)
					break
				}
			}
			c.env.releaseRecv(pr)
		}
	}
	if c.sleepTimer != nil {
		c.sleepTimer.Cancel()
	}
	c.ganttEndNow()
	c.teardown(err)
}

// rearm restarts a killed auto-restart chain from step 0 — fresh PID,
// original name/host/spec/flags — when its host recovers. The chain
// analogue of restartOn's process respawn.
func (c *ChainProc) rearm() {
	env := c.env
	c.restartPending = false
	c.done = false
	c.err = nil
	c.pc = 0
	c.task = nil
	c.blockedOn = core.SimcallNone
	for i := range c.counters {
		c.counters[i] = 0
	}
	c.pid = env.eng.AllocPID()
	if !c.daemon {
		env.eng.AddLive(1)
	}
	env.chains[c.pid] = c
	if env.chainsByHost[c.host.Name] == nil {
		env.chainsByHost[c.host.Name] = make(map[*ChainProc]bool)
	}
	env.chainsByHost[c.host.Name][c] = true
	c.pajeC = env.traceProcStart(c.name, c.host.Name)
	c.run()
}

// --- step starters ------------------------------------------------------

// stepCompute arms a CPU action. It reports true when the action
// finished inline (the interpreter keeps running) and false when the
// chain blocked or failed.
func (c *ChainProc) stepCompute(st *chainStep) bool {
	flops, label := st.flops, st.name
	if st.useTask {
		if c.task == nil {
			c.fail(errors.New("msg: chain: ComputeTask with empty task register"))
			return false
		}
		flops, label = c.task.Flops, c.task.Name
	}
	a, err := c.env.model.Execute(c.host.Name, flops, 1)
	if err != nil {
		c.fail(err)
		return false
	}
	c.ganttBegin(gantt.Compute, label)
	if a.Done() {
		cerr := a.Err()
		c.ganttEndNow()
		a.Release()
		if cerr != nil {
			c.fail(cerr)
			return false
		}
		c.pc++
		return true
	}
	c.exec = a
	c.blockedOn = core.SimcallWaitActivity
	a.SetCompletion(c)
	return false
}

// ActionDone implements surf.Completion for the chain's compute
// actions (transfers are completed by pendingSend.ActionDone, which
// calls sendDone/recvDone on the chain endpoints instead).
func (c *ChainProc) ActionDone(a *surf.Action, err error) {
	c.exec = nil
	c.blockedOn = core.SimcallNone
	c.ganttEndNow()
	a.Release()
	if c.done {
		return // kill canceled the action; teardown already ran
	}
	if err != nil {
		if err == ErrHostFailed && c.env.KillOnHostFailure {
			// surf fails a dying host's actions BEFORE OnHostStateChange
			// fires: the kill sweep for this very failure runs next and
			// must find the chain alive to kill it (and queue its
			// restart). Park here; the sweep finishes the job.
			return
		}
		c.fail(err)
		return
	}
	c.pc++
	c.run()
}

// sleepDone is the (single, re-armed) sleep timer's callback.
func (c *ChainProc) sleepDone() {
	if c.done {
		return
	}
	c.blockedOn = core.SimcallNone
	c.pc++
	c.run()
}

// stepPut arms a rendezvous send: enqueue or match on the destination
// mailbox, exactly like the goroutine put, with the chain itself as
// the blocked party. The transfer's completion advances the chain.
func (c *ChainProc) stepPut(st *chainStep) {
	env := c.env
	var task *Task
	switch {
	case st.makeTask != nil:
		task = st.makeTask(c)
		if task == nil {
			c.fail(errors.New("msg: chain: PutTask factory returned nil"))
			return
		}
	case st.useTask:
		task = c.task
		if task == nil {
			c.fail(errors.New("msg: chain: PutReg with empty task register"))
			return
		}
	default:
		task = NewTask(st.name, st.flops, st.bytes)
	}
	if env.pf.Host(st.dest) == nil {
		c.fail(fmt.Errorf("msg: unknown destination host %q", st.dest))
		return
	}
	task.source = c.host
	task.sender = nil // chains have no *Process identity

	key := mailboxKey{host: st.dest, channel: st.channel}
	mb := env.mailbox(key)
	ps := env.grabSend()
	ps.task, ps.env, ps.srcHost, ps.chainS = task, env, c.host, c
	ps.srcC = c.pajeC
	c.sendRec = ps
	c.pendKey = key
	c.blockedOn = core.SimcallSend
	c.ganttBegin(gantt.Comm, task.Name)

	if len(mb.recvQ) > 0 {
		pr := mb.recvQ[0]
		mb.recvQ = mb.recvQ[1:]
		env.noteQueued(0, -1)
		if err := env.startTransfer(key, ps, pr, c); err != nil {
			c.sendRec = nil
			env.releaseSend(ps)
			c.ganttEndNow()
			c.fail(err)
		}
	} else {
		mb.sendQ = append(mb.sendQ, ps)
		env.noteQueued(1, 0)
	}
}

// stepGet arms a rendezvous receive on the chain's own host.
func (c *ChainProc) stepGet(st *chainStep) {
	env := c.env
	key := mailboxKey{host: c.host.Name, channel: st.channel}
	mb := env.mailbox(key)
	pr := env.grabRecv()
	pr.chainR = c
	pr.dstC = c.pajeC
	c.recvRec = pr
	c.pendKey = key
	c.blockedOn = core.SimcallRecv
	c.ganttBegin(gantt.Wait, "recv")

	if len(mb.sendQ) > 0 {
		ps := mb.sendQ[0]
		mb.sendQ = mb.sendQ[1:]
		env.noteQueued(-1, 0)
		if err := env.startTransfer(key, ps, pr, c); err != nil {
			c.recvRec = nil
			env.releaseRecv(pr)
			c.ganttEndNow()
			c.fail(err)
		}
	} else {
		mb.recvQ = append(mb.recvQ, pr)
		env.noteQueued(0, 1)
	}
}

// sendDone resumes a chain whose Put transfer completed. Called by
// pendingSend.ActionDone after the record was recycled.
func (c *ChainProc) sendDone(err error) {
	c.sendRec = nil
	c.blockedOn = core.SimcallNone
	c.ganttEndNow()
	if c.done {
		return
	}
	if err != nil {
		c.fail(err)
		return
	}
	c.pc++
	c.run()
}

// recvDone resumes a chain whose Get matched and completed, loading
// the task register.
func (c *ChainProc) recvDone(task *Task, err error) {
	c.recvRec = nil
	c.blockedOn = core.SimcallNone
	c.ganttEndNow()
	if c.done {
		return
	}
	if err != nil {
		c.fail(err)
		return
	}
	c.task = task
	c.pc++
	c.run()
}

// --- gantt --------------------------------------------------------------

func (c *ChainProc) ganttBegin(kind gantt.Kind, label string) {
	if c.env.Gantt != nil {
		c.env.Gantt.Begin(c.name, kind, label, c.env.eng.Now())
		c.ganttOpen = true
	}
	if mt := c.env.trace; mt != nil && c.pajeC != "" {
		mt.tr.PushState(c.env.eng.Now(), mt.pstate, c.pajeC, pstateValue(kind))
		c.pajeOpen = true
	}
}

func (c *ChainProc) ganttEndNow() {
	if c.ganttOpen {
		c.env.Gantt.End(c.name, c.env.eng.Now())
		c.ganttOpen = false
	}
	if c.pajeOpen {
		mt := c.env.trace
		mt.tr.PopState(c.env.eng.Now(), mt.pstate, c.pajeC)
		c.pajeOpen = false
	}
}
