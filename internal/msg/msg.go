// Package msg implements the paper's MSG interface: a convenient,
// standard abstraction for prototyping distributed algorithms.
//
// Applications consist of processes running on simulated hosts.
// Processes can be created, suspended, resumed and terminated
// dynamically, and synchronize by exchanging tasks. A task carries a
// communication payload (bytes, simulated on the network) and an
// execution payload (flops, simulated on the host CPU), plus an
// arbitrary Data pointer — all processes share one address space, so
// passing Go values through tasks is free, like the paper's "convenient
// communication via global data structure".
//
// Tasks move between processes through channels attached to hosts
// (Put(task, host, channel) / Get(channel)), mirroring the MSG_task_put
// / MSG_task_get API of the paper's client/server example.
//
// Key invariant: a Put/Get rendezvous owns exactly one pendingSend /
// pendingRecv record and one surf transfer action, all recycled
// through free lists on the blocking call's return — the steady-state
// exchange loop allocates nothing (see DESIGN.md, "Object lifecycle &
// pooling"; disable with -tags=nopool).
package msg

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/gantt"
	"repro/internal/platform"
	"repro/internal/surf"
)

// Errors returned by MSG operations.
var (
	// ErrTimeout reports that a Get or Put timed out.
	ErrTimeout = errors.New("msg: operation timed out")
	// ErrHostFailed reports that the local or remote host failed.
	ErrHostFailed = surf.ErrHostFailed
	// ErrLinkFailed reports a network failure during a transfer.
	ErrLinkFailed = surf.ErrLinkFailed
	// ErrKilled reports the peer process was killed mid-rendezvous.
	ErrKilled = core.ErrKilled
)

// Task is the unit of work and of communication: it carries an
// execution payload (Flops) and a communication payload (Bytes).
type Task struct {
	Name  string
	Flops float64 // execution payload ("30.0 MFlop" in the paper)
	Bytes float64 // communication payload ("3.2 MB" in the paper)
	Data  any     // free cross-process payload (shared address space)

	source *platform.Host // filled in by Put
	sender *Process
}

// NewTask builds a task. Negative payloads are clamped to zero.
func NewTask(name string, flops, bytes float64) *Task {
	if flops < 0 {
		flops = 0
	}
	if bytes < 0 {
		bytes = 0
	}
	return &Task{Name: name, Flops: flops, Bytes: bytes}
}

// Source returns the host the task was sent from (nil before Put).
func (t *Task) Source() *platform.Host { return t.source }

// Sender returns the process that sent the task (nil before Put).
func (t *Task) Sender() *Process { return t.sender }

// Process is a simulated application process bound to a host.
type Process struct {
	cp   *core.Process
	env  *Environment
	host *platform.Host
	exec *surf.Action // in-flight execution, for suspend propagation

	pajeC    string // trace container alias ("" with tracing off)
	pajeOpen bool   // a PSTATE push awaits its pop

	fn          func(*Process) error // original body, kept for auto-restart
	autoRestart bool

	// OnFailure, when non-nil, is invoked in kernel context right before
	// the process is killed by a host failure (and before any restart is
	// queued). It must not issue simcalls; use it for accounting and
	// event logs.
	OnFailure func(err error)
}

// Environment owns a simulated platform and the processes running on
// it: it is the MSG world (MSG_global_init + MSG_main).
type Environment struct {
	eng   *core.Engine
	model *surf.Model
	pf    *platform.Platform

	mailboxes map[mailboxKey]*mailbox
	byHost    map[string]map[*Process]bool

	// Declarative activity chains (chain.go): the live population by
	// PID, and by host for the failure sweep. Chains share the PID
	// space and liveness accounting with goroutine processes.
	chains       map[int]*ChainProc
	chainsByHost map[string]map[*ChainProc]bool

	// Free lists for the rendezvous churn: every Put/Get cycle reuses a
	// scrubbed pendingSend/pendingRecv instead of allocating fresh ones
	// (disabled under -tags=nopool). chainPool recycles terminated
	// ChainProcs the same way.
	sendPool  []*pendingSend
	recvPool  []*pendingRecv
	chainPool []*ChainProc

	// restartQ holds, per host, the processes and chains killed by that
	// host's failure that must respawn when it recovers, in kill (PID)
	// order — one merged queue so mixed workloads restart in exactly
	// their kill order.
	restartQ map[string][]restartEntry

	// Gantt, when non-nil, records per-process compute/comm intervals.
	Gantt *gantt.Recorder

	// KillOnHostFailure controls whether processes on a failing host
	// are killed (the paper's volatile-hosts behaviour). Default true.
	KillOnHostFailure bool

	// RestartOnRecovery, when set, queues every process killed by a host
	// failure for respawn at that host's recovery, regardless of the
	// per-process SetAutoRestart flag (the simgrid-run -faults switch).
	RestartOnRecovery bool

	// Observability (instr.go): optional Paje trace band, mailbox
	// backlog counters, Retry re-attempts, and pool scoreboards. The
	// counters are plain always-on fields; trace is nil until
	// EnableTrace.
	trace                       *msgTrace
	queuedSends, queuedRecvs    int
	queuedPeak                  int
	retries                     uint64
	sendPoolHit, sendPoolMiss   uint64
	recvPoolHit, recvPoolMiss   uint64
	chainPoolHit, chainPoolMiss uint64
}

type mailboxKey struct {
	host    string
	channel int
}

// restartEntry is one killed party queued for respawn at host
// recovery: a goroutine process or a declarative chain, never both.
type restartEntry struct {
	p *Process
	c *ChainProc
}

// pendingSend is a sender blocked in Put (or an in-flight transfer).
// It doubles as the transfer's completion handler (surf.Completion),
// and is recycled through the environment's free list: the sender's
// put releases it on return, the only point where no queue entry,
// timeout closure or receiver can still reach it.
type pendingSend struct {
	task     *Task
	env      *Environment
	srcHost  *platform.Host
	sender   *core.Process // goroutine sender (nil for a chain)
	chainS   *ChainProc    // chain sender (nil for a goroutine)
	action   *surf.Action
	delivery *pendingRecv
	srcC     string // sender's trace container ("" with tracing off)
	linkKey  string // message-link key, minted at transfer start
	// abandoned marks a record whose owner unwound (kill or contained
	// panic) while a delivery was still pending: ownership moved to
	// ActionDone, which recycles it after severing the cross-references.
	abandoned bool
}

// pendingRecv is a receiver blocked in Get, recycled by get on return.
type pendingRecv struct {
	receiver  *core.Process // goroutine receiver (nil for a chain)
	chainR    *ChainProc    // chain receiver (nil for a goroutine)
	task      *Task         // filled in at completion
	matched   *pendingSend
	abandoned bool   // see pendingSend.abandoned
	dstC      string // receiver's trace container ("" with tracing off)
}

// ActionDone implements surf.Completion: the transfer finished (err is
// nil on success), so hand the task over and wake both parties. The
// cross-references are severed here: a timeout timer firing later in
// the same instant must fall through to its queue scan (a no-op)
// instead of touching a transfer that already ended — that is what
// makes the put/get release points safe. A side that unwound before
// delivery left its record flagged abandoned; with the references
// severed nothing can reach such a record anymore, so it is recycled
// right here instead of by the (dead) owner's return path.
// Chain endpoints are advanced inline instead of woken — sender first,
// then receiver, the same order the goroutine wake queue produces — and
// their records are recycled here, since no returning Put/Get frame
// will do it for them.
func (ps *pendingSend) ActionDone(_ *surf.Action, cerr error) {
	pr := ps.delivery
	if cerr == nil {
		pr.task = ps.task
	}
	env := ps.env
	if mt := env.trace; mt != nil && ps.linkKey != "" && pr.dstC != "" {
		mt.tr.EndLink(env.eng.Now(), mt.linkType, mt.root, pr.dstC, ps.task.Name, ps.linkKey)
	}
	cs, cr := ps.chainS, pr.chainR
	task := pr.task
	if ps.sender != nil {
		env.eng.Wake(ps.sender, cerr)
	}
	if pr.receiver != nil {
		env.eng.Wake(pr.receiver, cerr)
	}
	pr.matched = nil
	ps.delivery = nil
	if pr.abandoned {
		env.releaseRecv(pr)
	}
	if ps.abandoned {
		env.releaseSend(ps)
	}
	if cs != nil {
		env.releaseSend(ps)
		cs.sendDone(cerr)
	}
	if cr != nil {
		env.releaseRecv(pr)
		cr.recvDone(task, cerr)
	}
}

type mailbox struct {
	sendQ []*pendingSend
	recvQ []*pendingRecv
}

// NewEnvironment builds an MSG world on a platform with the given
// network model configuration (surf.DefaultConfig for the paper's
// calibration).
func NewEnvironment(pf *platform.Platform, cfg surf.Config) *Environment {
	eng := core.New()
	// MSG processes are user code: a panic in one is that process's
	// failure (recorded with its stack in Engine.Panics), never the
	// simulation's.
	eng.ContainPanics = true
	env := &Environment{
		eng:               eng,
		model:             surf.New(eng, pf, cfg),
		pf:                pf,
		mailboxes:         make(map[mailboxKey]*mailbox),
		byHost:            make(map[string]map[*Process]bool),
		chains:            make(map[int]*ChainProc),
		chainsByHost:      make(map[string]map[*ChainProc]bool),
		restartQ:          make(map[string][]restartEntry),
		KillOnHostFailure: true,
	}
	// Declarative chains have no goroutine for the kernel to count as
	// blocked: name them in deadlock reports through this hook.
	eng.ExternalBlocked = func() ([]string, []core.SimcallKind) {
		if len(env.chains) == 0 {
			return nil, nil
		}
		pids := make([]int, 0, len(env.chains))
		for pid := range env.chains { //lint:allow det-maprange sorted below before any output
			pids = append(pids, pid)
		}
		sort.Ints(pids)
		var names []string
		var calls []core.SimcallKind
		for _, pid := range pids {
			c := env.chains[pid]
			if c.daemon {
				continue
			}
			names = append(names, c.name)
			calls = append(calls, c.blockedOn)
		}
		return names, calls
	}
	env.model.OnHostStateChange = func(h *platform.Host, up bool) {
		if up {
			env.restartOn(h)
			return
		}
		if !env.KillOnHostFailure {
			return
		}
		// Kill in PID order, not map order: each kill is an observable
		// event (unwind, OnExit callbacks, wake of rendezvous peers),
		// so the sweep's order is part of the replayable event log.
		// Goroutine processes and declarative chains die in one merged
		// sweep, ordered by their shared PID space.
		type victim struct {
			pid int
			p   *Process
			c   *ChainProc
		}
		victims := make([]victim, 0, len(env.byHost[h.Name])+len(env.chainsByHost[h.Name]))
		for p := range env.byHost[h.Name] { //lint:allow det-maprange victims are sorted by PID below before any observable effect
			victims = append(victims, victim{pid: p.cp.PID(), p: p})
		}
		for c := range env.chainsByHost[h.Name] { //lint:allow det-maprange victims are sorted by PID below before any observable effect
			victims = append(victims, victim{pid: c.pid, c: c})
		}
		sort.Slice(victims, func(i, j int) bool { return victims[i].pid < victims[j].pid })
		for _, v := range victims {
			if v.p != nil {
				p := v.p
				if p.OnFailure != nil {
					p.OnFailure(ErrHostFailed)
				}
				if p.autoRestart || env.RestartOnRecovery {
					env.restartQ[h.Name] = append(env.restartQ[h.Name], restartEntry{p: p})
				}
				p.cp.Kill()
			} else {
				c := v.c
				if c.OnFailure != nil {
					c.OnFailure(ErrHostFailed)
				}
				if c.autoRestart || env.RestartOnRecovery {
					c.restartPending = true
					env.restartQ[h.Name] = append(env.restartQ[h.Name], restartEntry{c: c})
				}
				c.kill(ErrKilled)
			}
		}
	}
	return env
}

// restartOn respawns, in their original kill order, the auto-restart
// processes and chains that died with host h. A process respawn is a
// fresh process (new PID, the original body run from the top)
// inheriting the old one's name, host, daemon-ness, restart flag and
// OnFailure hook — the MSG analogue of a node coming back and its
// services being re-launched by init. A chain respawn re-arms the same
// ChainProc from step 0 under a fresh PID.
func (env *Environment) restartOn(h *platform.Host) {
	dead := env.restartQ[h.Name]
	if len(dead) == 0 {
		return
	}
	delete(env.restartQ, h.Name)
	for _, en := range dead {
		if en.c != nil {
			en.c.rearm()
			continue
		}
		old := en.p
		np, err := env.NewProcess(old.cp.Name(), h.Name, old.fn)
		if err != nil {
			continue // the host vanished from the platform: nothing to do
		}
		np.autoRestart = old.autoRestart
		np.OnFailure = old.OnFailure
		if old.cp.Daemon() {
			np.Daemonize()
		}
	}
}

// Engine exposes the underlying kernel (for tests and advanced use).
func (env *Environment) Engine() *core.Engine { return env.eng }

// Model exposes the underlying resource model.
func (env *Environment) Model() *surf.Model { return env.model }

// Platform returns the simulated platform.
func (env *Environment) Platform() *platform.Platform { return env.pf }

// Now returns the current simulated time in seconds (MSG_get_clock).
func (env *Environment) Now() float64 { return env.eng.Now() }

// HostByName returns a platform host (MSG_get_host_by_name), or nil.
func (env *Environment) HostByName(name string) *platform.Host {
	return env.pf.Host(name)
}

// NewProcess creates a process on a host. fn runs in simulation
// context; returning an error records it as the process's termination
// cause. Processes created before Run start at time 0.
func (env *Environment) NewProcess(name, hostName string, fn func(*Process) error) (*Process, error) {
	h := env.pf.Host(hostName)
	if h == nil {
		return nil, fmt.Errorf("msg: unknown host %q", hostName)
	}
	p := &Process{env: env, host: h, fn: fn}
	p.cp = env.eng.Spawn(name, h, func(cp *core.Process) {
		if err := fn(p); err != nil {
			// Recorded for OnExit inspection; the kernel treats a
			// returning process as terminated either way.
			_ = err
		}
	})
	p.pajeC = env.traceProcStart(name, h.Name)
	if env.byHost[h.Name] == nil {
		env.byHost[h.Name] = make(map[*Process]bool)
	}
	env.byHost[h.Name][p] = true
	p.cp.OnExit(func(err error) {
		delete(env.byHost[p.host.Name], p)
		env.ganttEnd(p)
		env.traceProcEnd(p.pajeC, p.pajeOpen, err)
		p.pajeOpen = false
	})
	return p, nil
}

// Run executes the simulation until every non-daemon process finished.
// A deadlock (blocked processes that can never progress) is returned as
// *core.DeadlockError.
func (env *Environment) Run() error { return env.eng.Run() }

// --- Process API --------------------------------------------------------

// Env returns the environment the process belongs to.
func (p *Process) Env() *Environment { return p.env }

// Host returns the host the process runs on.
func (p *Process) Host() *platform.Host { return p.host }

// Name returns the process name.
func (p *Process) Name() string { return p.cp.Name() }

// PID returns the process identifier.
func (p *Process) PID() int { return p.cp.PID() }

// Core returns the underlying kernel process.
func (p *Process) Core() *core.Process { return p.cp }

// Now returns the current simulated time.
func (p *Process) Now() float64 { return p.env.eng.Now() }

// Sleep suspends execution for d simulated seconds (MSG_process_sleep).
func (p *Process) Sleep(d float64) error { return p.cp.Sleep(d) }

// Daemonize marks the process as a daemon (infinite-loop servers).
func (p *Process) Daemonize() { p.cp.Daemonize() }

// SetAutoRestart opts the process into auto-restart: if it is killed
// by its host failing, a fresh process with the same name, body, and
// flags is respawned when the host recovers. The restart order of
// several victims is their kill (PID) order — deterministic.
func (p *Process) SetAutoRestart(on bool) { p.autoRestart = on }

// AutoRestart reports whether the process is marked for auto-restart.
func (p *Process) AutoRestart() bool { return p.autoRestart }

// Kill terminates the target process (MSG_process_kill).
func (p *Process) Kill() { p.cp.Kill() }

// Suspend pauses the target process and freezes its in-flight
// execution (MSG_process_suspend).
func (p *Process) Suspend() {
	if p.exec != nil {
		p.exec.Suspend()
	}
	p.cp.Suspend()
}

// Resume unpauses the process (MSG_process_resume).
func (p *Process) Resume() {
	if p.exec != nil {
		p.exec.Resume()
	}
	p.cp.Resume()
}

// Spawn creates a new process from within the simulation
// (MSG_process_create), starting at the current simulated time.
func (p *Process) Spawn(name, hostName string, fn func(*Process) error) (*Process, error) {
	return p.env.NewProcess(name, hostName, fn)
}

// Migrate moves the process to another host (MSG_process_migrate):
// subsequent Execute and Get calls use the new host's CPU and network
// location. Only the process itself may migrate (call it between
// activities; an in-flight action stays on the old host).
func (p *Process) Migrate(hostName string) error {
	h := p.env.pf.Host(hostName)
	if h == nil {
		return fmt.Errorf("msg: unknown host %q", hostName)
	}
	if h == p.host {
		return nil
	}
	old := p.host
	delete(p.env.byHost[old.Name], p)
	p.host = h
	p.cp.SetHost(h)
	if p.env.byHost[h.Name] == nil {
		p.env.byHost[h.Name] = make(map[*Process]bool)
	}
	p.env.byHost[h.Name][p] = true
	return nil
}

// Execute runs the task's execution payload on the local host
// (MSG_task_execute): Flops of work through the CPU's MaxMin share.
func (p *Process) Execute(task *Task) error {
	return p.ExecuteWithPriority(task, 1)
}

// ExecuteWithPriority is Execute with a MaxMin sharing weight.
func (p *Process) ExecuteWithPriority(task *Task, priority float64) error {
	a, err := p.env.model.Execute(p.host.Name, task.Flops, priority)
	if err != nil {
		return err
	}
	p.exec = a
	p.ganttBegin(gantt.Compute, task.Name)
	err = a.Wait(p.cp)
	p.ganttEndNow()
	p.exec = nil
	// Wait only returns once the action is final, and it never escaped
	// this frame: recycle it. (A killed process unwinds through Wait's
	// panic instead, leaving the action to the collector.)
	a.Release()
	return err
}

// Put sends a task to (destination host, channel) and blocks until the
// transfer completes (MSG_task_put). The transfer starts when a
// receiver is ready (rendezvous) and its duration is governed by the
// network model across the route between the two hosts.
func (p *Process) Put(task *Task, destHost string, channel int) error {
	return p.put(task, destHost, channel, 0)
}

// PutWithTimeout is Put aborting with ErrTimeout after timeout seconds
// (<= 0 means no timeout).
func (p *Process) PutWithTimeout(task *Task, destHost string, channel int, timeout float64) error {
	return p.put(task, destHost, channel, timeout)
}

func (p *Process) put(task *Task, destHost string, channel int, timeout float64) error {
	dst := p.env.pf.Host(destHost)
	if dst == nil {
		return fmt.Errorf("msg: unknown destination host %q", destHost)
	}
	if task == nil {
		return errors.New("msg: nil task")
	}
	task.source = p.host
	task.sender = p

	key := mailboxKey{host: destHost, channel: channel}
	mb := p.env.mailbox(key)
	ps := p.env.grabSend()
	ps.task, ps.env, ps.srcHost, ps.sender = task, p.env, p.host, p.cp
	ps.srcC = p.pajeC

	var timer *core.Timer
	// The single release point, on return AND on unwind (kill, contained
	// panic): the timeout timer is canceled first — once canceled its
	// closure can never fire against a recycled record — and the record
	// goes back to the pool, via the abandon path if the unwind left it
	// queued or owning an undelivered transfer.
	unwound := true
	defer func() {
		if timer != nil {
			timer.Cancel()
		}
		if unwound {
			p.env.abandonSend(key, ps)
			return
		}
		p.env.releaseSend(ps)
	}()
	if timeout > 0 {
		timer = p.env.eng.After(timeout, func() {
			p.env.timeoutSend(key, ps)
		})
	}

	if len(mb.recvQ) > 0 {
		pr := mb.recvQ[0]
		mb.recvQ = mb.recvQ[1:]
		p.env.noteQueued(0, -1)
		if err := p.env.startTransfer(key, ps, pr, nil); err != nil {
			unwound = false
			return err
		}
	} else {
		mb.sendQ = append(mb.sendQ, ps)
		p.env.noteQueued(1, 0)
	}

	p.ganttBegin(gantt.Comm, task.Name)
	err := p.cp.BlockOn(core.SimcallSend)
	p.ganttEndNow()
	unwound = false
	return err
}

// Get receives the next task from the given channel of the local host,
// blocking until one arrives (MSG_task_get).
func (p *Process) Get(channel int) (*Task, error) {
	return p.get(channel, 0)
}

// GetWithTimeout is Get aborting with ErrTimeout after timeout seconds
// (<= 0 means no timeout).
func (p *Process) GetWithTimeout(channel int, timeout float64) (*Task, error) {
	return p.get(channel, timeout)
}

func (p *Process) get(channel int, timeout float64) (*Task, error) {
	key := mailboxKey{host: p.host.Name, channel: channel}
	mb := p.env.mailbox(key)
	pr := p.env.grabRecv()
	pr.receiver = p.cp
	pr.dstC = p.pajeC

	var timer *core.Timer
	// Single release point, mirroring put: cancel the timeout first,
	// then recycle — via the abandon path when unwinding.
	unwound := true
	defer func() {
		if timer != nil {
			timer.Cancel()
		}
		if unwound {
			p.env.abandonRecv(key, pr)
			return
		}
		p.env.releaseRecv(pr)
	}()
	if timeout > 0 {
		timer = p.env.eng.After(timeout, func() {
			p.env.timeoutRecv(key, pr)
		})
	}

	if len(mb.sendQ) > 0 {
		ps := mb.sendQ[0]
		mb.sendQ = mb.sendQ[1:]
		p.env.noteQueued(-1, 0)
		if err := p.env.startTransfer(key, ps, pr, nil); err != nil {
			// A goroutine ps stays with its sender: the wake above hands
			// it back to put, which releases it. A chain ps was failed
			// and recycled inside startTransfer.
			unwound = false
			return nil, err
		}
	} else {
		mb.recvQ = append(mb.recvQ, pr)
		p.env.noteQueued(0, 1)
	}

	p.ganttBegin(gantt.Wait, "recv")
	err := p.cp.BlockOn(core.SimcallRecv)
	p.ganttEndNow()
	unwound = false
	task := pr.task
	if err != nil {
		return nil, err
	}
	return task, nil
}

// --- Environment internals ----------------------------------------------

func (env *Environment) mailbox(key mailboxKey) *mailbox {
	mb := env.mailboxes[key]
	if mb == nil {
		mb = &mailbox{}
		env.mailboxes[key] = mb
	}
	return mb
}

// startTransfer matches a sender and a receiver and launches the
// network action; both sides are woken (or, for chain endpoints,
// advanced) at completion. caller identifies the chain currently
// executing the matching step, if any: on error it handles its own
// record and gets the failure as the return value, while the opposite
// side is notified here.
func (env *Environment) startTransfer(key mailboxKey, ps *pendingSend, pr *pendingRecv, caller *ChainProc) error {
	a, err := env.model.Communicate(ps.srcHost.Name, key.host, ps.task.Bytes)
	if err != nil {
		// Malformed route: deliver the error to both sides. A goroutine
		// caller also gets it as a return value; the Wake targeting it
		// is a no-op. A chain endpoint other than the caller is failed
		// and its record recycled right here — no returning frame owns
		// it.
		if ps.sender != nil {
			env.eng.Wake(ps.sender, err)
		}
		if pr.receiver != nil {
			env.eng.Wake(pr.receiver, err)
		}
		if cs := ps.chainS; cs != nil && cs != caller {
			cs.sendRec = nil
			env.releaseSend(ps)
			cs.ganttEndNow()
			cs.fail(err)
		}
		if cr := pr.chainR; cr != nil && cr != caller {
			cr.recvRec = nil
			env.releaseRecv(pr)
			cr.ganttEndNow()
			cr.fail(err)
		}
		return err
	}
	ps.action = a
	ps.delivery = pr
	pr.matched = ps
	if mt := env.trace; mt != nil && ps.srcC != "" {
		ps.linkKey = mt.newKey()
		mt.tr.StartLink(env.eng.Now(), mt.linkType, mt.root, ps.srcC, ps.task.Name, ps.linkKey)
	}
	if a.Done() {
		// Already finished (e.g. the route's link is down): defer the
		// delivery one kernel turn so both sides have blocked.
		cerr := a.Err()
		env.eng.After(0, func() { ps.ActionDone(a, cerr) })
	} else {
		a.SetCompletion(ps)
	}
	return nil
}

// abandonSend recycles a pendingSend whose owner is unwinding (killed,
// or a contained panic) instead of returning from put. Three cases:
// a delivery is still pending (matched, ActionDone not yet run) — the
// record is flagged and ownership moves to ActionDone, which recycles
// it once the cross-references are severed; still queued — dequeue and
// recycle now; already delivered (or never matched and dequeued by a
// timeout) — nothing can reach it, recycle now. The caller has already
// canceled the timeout timer.
func (env *Environment) abandonSend(key mailboxKey, ps *pendingSend) {
	if ps.delivery != nil {
		ps.abandoned = true
		return
	}
	if ps.action == nil {
		mb := env.mailbox(key)
		for i, q := range mb.sendQ {
			if q == ps {
				mb.sendQ = append(mb.sendQ[:i], mb.sendQ[i+1:]...)
				env.noteQueued(-1, 0)
				break
			}
		}
	}
	env.releaseSend(ps)
}

// abandonRecv is abandonSend for the receiver side.
func (env *Environment) abandonRecv(key mailboxKey, pr *pendingRecv) {
	if pr.matched != nil {
		pr.abandoned = true
		return
	}
	mb := env.mailbox(key)
	for i, q := range mb.recvQ {
		if q == pr {
			mb.recvQ = append(mb.recvQ[:i], mb.recvQ[i+1:]...)
			env.noteQueued(0, -1)
			break
		}
	}
	env.releaseRecv(pr)
}

// timeoutSend aborts a pending or in-flight Put.
func (env *Environment) timeoutSend(key mailboxKey, ps *pendingSend) {
	if ps.action != nil {
		if !ps.action.Done() {
			ps.action.Cancel() // wakes both sides with ErrCanceled
		}
		return
	}
	mb := env.mailbox(key)
	for i, q := range mb.sendQ {
		if q == ps {
			mb.sendQ = append(mb.sendQ[:i], mb.sendQ[i+1:]...)
			env.noteQueued(-1, 0)
			env.eng.Wake(ps.sender, ErrTimeout)
			return
		}
	}
}

// timeoutRecv aborts a pending or in-flight Get.
func (env *Environment) timeoutRecv(key mailboxKey, pr *pendingRecv) {
	if pr.matched != nil {
		if pr.matched.action != nil && !pr.matched.action.Done() {
			pr.matched.action.Cancel()
		}
		return
	}
	mb := env.mailbox(key)
	for i, q := range mb.recvQ {
		if q == pr {
			mb.recvQ = append(mb.recvQ[:i], mb.recvQ[i+1:]...)
			env.noteQueued(0, -1)
			env.eng.Wake(pr.receiver, ErrTimeout)
			return
		}
	}
}

// --- Gantt plumbing -------------------------------------------------------

func (p *Process) ganttBegin(kind gantt.Kind, label string) {
	if p.env.Gantt != nil {
		p.env.Gantt.Begin(p.Name(), kind, label, p.env.eng.Now())
	}
	if mt := p.env.trace; mt != nil && p.pajeC != "" {
		mt.tr.PushState(p.env.eng.Now(), mt.pstate, p.pajeC, pstateValue(kind))
		p.pajeOpen = true
	}
}

func (p *Process) ganttEndNow() {
	if p.env.Gantt != nil {
		p.env.Gantt.End(p.Name(), p.env.eng.Now())
	}
	if p.pajeOpen {
		mt := p.env.trace
		mt.tr.PopState(p.env.eng.Now(), mt.pstate, p.pajeC)
		p.pajeOpen = false
	}
}

func (env *Environment) ganttEnd(p *Process) {
	if env.Gantt != nil {
		env.Gantt.End(p.Name(), env.eng.Now())
	}
}
