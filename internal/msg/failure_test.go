package msg

// Failure-path regression suite: link failure surfacing, kill-unwind
// pool hygiene, auto-restart, Retry, and panic containment — the MSG
// half of the fault-injection subsystem (package faults drives the
// schedules; these tests pin the per-mechanism semantics).

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

// TestInFlightLinkFailure fails the route's link in the middle of a
// transfer: both endpoints must observe ErrLinkFailed — not a hang,
// not ErrTimeout, and not a swallowed nil.
func TestInFlightLinkFailure(t *testing.T) {
	env := NewEnvironment(lanPlatform(t), exact())
	var sendErr, recvErr error
	sendErr = errors.New("sentinel: put never returned")
	recvErr = errors.New("sentinel: get never returned")
	env.NewProcess("sender", "client", func(p *Process) error {
		sendErr = p.Put(NewTask("d", 0, 1e8), "server", 1) // ~1 s transfer
		return sendErr
	})
	env.NewProcess("receiver", "server", func(p *Process) error {
		_, recvErr = p.Get(1)
		return recvErr
	})
	env.Engine().After(0.5, func() {
		if err := env.Model().FailLink("lan"); err != nil {
			t.Errorf("FailLink: %v", err)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !errors.Is(sendErr, ErrLinkFailed) {
		t.Errorf("sender saw %v, want ErrLinkFailed", sendErr)
	}
	if !errors.Is(recvErr, ErrLinkFailed) {
		t.Errorf("receiver saw %v, want ErrLinkFailed", recvErr)
	}
	if got := env.Now(); got != 0.5 {
		t.Errorf("failure delivered at t=%g, want 0.5", got)
	}
}

// TestKillUnwindRecyclesRendezvous is the kill-churn scrub assertion:
// records abandoned on the unwind path (queued sender, queued receiver,
// each side of an in-flight transfer) must all come back to the free
// lists scrubbed, and repeated churn must not grow the pools — the
// "leaks safely" escape hatch is gone.
func TestKillUnwindRecyclesRendezvous(t *testing.T) {
	if !poolingEnabled {
		t.Skip("free lists disabled (-tags=nopool)")
	}
	env := NewEnvironment(lanPlatform(t), exact())

	const cycles = 6
	var steadySend, steadyRecv int
	_, err := env.NewProcess("driver", "client", func(p *Process) error {
		for i := 0; i < cycles; i++ {
			// (a) sender killed while queued (no receiver ever shows up).
			qs, err := p.Spawn("qs", "client", func(q *Process) error {
				return q.Put(NewTask("x", 0, 1e6), "server", 9)
			})
			if err != nil {
				return err
			}
			// (b) receiver killed while queued.
			qr, err := p.Spawn("qr", "server", func(q *Process) error {
				_, err := q.Get(8)
				return err
			})
			if err != nil {
				return err
			}
			if err := p.Sleep(0.01); err != nil {
				return err
			}
			qs.Kill()
			qr.Kill()

			// (c) sender killed mid-transfer: the delivery completes and
			// ActionDone recycles the abandoned record.
			ts, err := p.Spawn("ts", "client", func(q *Process) error {
				return q.Put(NewTask("y", 0, 1e8), "server", 7)
			})
			if err != nil {
				return err
			}
			if _, err := p.Spawn("tr", "server", func(q *Process) error {
				_, err := q.Get(7)
				return err
			}); err != nil {
				return err
			}
			if err := p.Sleep(0.05); err != nil {
				return err
			}
			ts.Kill()
			if err := p.Sleep(2); err != nil {
				return err
			}

			// (d) receiver killed mid-transfer.
			if _, err := p.Spawn("ts2", "client", func(q *Process) error {
				return q.Put(NewTask("z", 0, 1e8), "server", 6)
			}); err != nil {
				return err
			}
			tr2, err := p.Spawn("tr2", "server", func(q *Process) error {
				_, err := q.Get(6)
				return err
			})
			if err != nil {
				return err
			}
			if err := p.Sleep(0.05); err != nil {
				return err
			}
			tr2.Kill()
			if err := p.Sleep(2); err != nil {
				return err
			}

			if i == 0 {
				steadySend, steadyRecv = len(env.sendPool), len(env.recvPool)
				continue
			}
			if len(env.sendPool) != steadySend || len(env.recvPool) != steadyRecv {
				t.Errorf("cycle %d: pools %d/%d, steady state %d/%d — kill churn leaks or over-returns",
					i, len(env.sendPool), len(env.recvPool), steadySend, steadyRecv)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := env.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(env.sendPool) == 0 || len(env.recvPool) == 0 {
		t.Fatalf("kill churn recycled nothing (pools %d/%d)", len(env.sendPool), len(env.recvPool))
	}
	for i, ps := range env.sendPool {
		if *ps != (pendingSend{}) {
			t.Errorf("pooled pendingSend %d not scrubbed: %+v", i, *ps)
		}
	}
	for i, pr := range env.recvPool {
		if *pr != (pendingRecv{}) {
			t.Errorf("pooled pendingRecv %d not scrubbed: %+v", i, *pr)
		}
	}
}

// TestAutoRestart: a process killed by its host failing respawns when
// the host recovers, with its OnFailure hook fired in between and its
// flags inherited by the new incarnation.
func TestAutoRestart(t *testing.T) {
	env := NewEnvironment(lanPlatform(t), exact())
	starts, failures := 0, 0
	var restartAt float64
	var restarted *Process
	svc, err := env.NewProcess("svc", "server", func(p *Process) error {
		starts++
		if starts == 1 {
			return p.Sleep(100) // first life: killed by the failure at t=1
		}
		restartAt = p.Now()
		restarted = p
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	svc.SetAutoRestart(true)
	svc.OnFailure = func(err error) {
		failures++
		if !errors.Is(err, ErrHostFailed) {
			t.Errorf("OnFailure got %v, want ErrHostFailed", err)
		}
	}
	// A bystander keeps the simulation live across the outage window
	// (restart needs a running simulation to restart into).
	env.NewProcess("bystander", "client", func(p *Process) error { return p.Sleep(5) })
	eng := env.Engine()
	eng.After(1, func() { _ = env.Model().FailHost("server") })
	eng.After(3, func() { _ = env.Model().RestoreHost("server") })
	if err := env.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if starts != 2 || failures != 1 {
		t.Errorf("starts=%d failures=%d, want 2/1", starts, failures)
	}
	if restartAt != 3 {
		t.Errorf("restarted at t=%g, want 3 (host recovery)", restartAt)
	}
	if restarted == nil || !restarted.AutoRestart() {
		t.Error("restarted incarnation did not inherit the auto-restart flag")
	}
	if errors.Is(svc.Core().Err(), ErrKilled) == false {
		t.Errorf("first incarnation ended with %v, want ErrKilled", svc.Core().Err())
	}
}

// TestAutoRestartOffByDefault pins that a plain process stays dead.
func TestAutoRestartOffByDefault(t *testing.T) {
	env := NewEnvironment(lanPlatform(t), exact())
	starts := 0
	env.NewProcess("svc", "server", func(p *Process) error {
		starts++
		return p.Sleep(100)
	})
	env.NewProcess("bystander", "client", func(p *Process) error { return p.Sleep(5) })
	eng := env.Engine()
	eng.After(1, func() { _ = env.Model().FailHost("server") })
	eng.After(3, func() { _ = env.Model().RestoreHost("server") })
	if err := env.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if starts != 1 {
		t.Errorf("starts=%d, want 1 (no restart without the flag)", starts)
	}
}

// TestRetryBackoff: Retry sleeps its (growing, capped) backoff in
// simulated time between bounded attempts and returns the first nil.
func TestRetryBackoff(t *testing.T) {
	env := NewEnvironment(lanPlatform(t), exact())
	attempts := 0
	var doneAt float64
	env.NewProcess("p", "client", func(p *Process) error {
		err := Retry(p, RetryPolicy{Attempts: 4, Backoff: 0.5, Multiplier: 2, MaxBackoff: 1}, func() error {
			attempts++
			if attempts < 4 {
				return errors.New("transient")
			}
			return nil
		})
		doneAt = p.Now()
		return err
	})
	if err := env.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if attempts != 4 {
		t.Errorf("attempts = %d, want 4", attempts)
	}
	// Backoffs: 0.5, then 1.0 (doubled), then 1.0 (capped) = 2.5 s.
	if doneAt != 2.5 {
		t.Errorf("succeeded at t=%g, want 2.5", doneAt)
	}
}

// TestRetryExhausted: the last error comes back after the attempt
// budget is spent.
func TestRetryExhausted(t *testing.T) {
	env := NewEnvironment(lanPlatform(t), exact())
	attempts := 0
	var got error
	env.NewProcess("p", "client", func(p *Process) error {
		got = Retry(p, RetryPolicy{Attempts: 3, Backoff: 0.1}, func() error {
			attempts++
			return fmt.Errorf("fail %d", attempts)
		})
		return got
	})
	if err := env.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if attempts != 3 {
		t.Errorf("attempts = %d, want 3", attempts)
	}
	if got == nil || got.Error() != "fail 3" {
		t.Errorf("Retry = %v, want the last error", got)
	}
}

// TestProcessPanicContained is the acceptance criterion: a deliberately
// panicking MSG process fails alone — the run completes, the other
// processes finish their work, and the panic is recorded with a stack.
func TestProcessPanicContained(t *testing.T) {
	env := NewEnvironment(lanPlatform(t), exact())
	env.NewProcess("bomb", "client", func(p *Process) error {
		_ = p.Sleep(0.5)
		panic("worker bug")
	})
	var got *Task
	env.NewProcess("sender", "client", func(p *Process) error {
		return p.Put(NewTask("d", 0, 1e8), "server", 1)
	})
	env.NewProcess("receiver", "server", func(p *Process) error {
		var err error
		got, err = p.Get(1)
		return err
	})
	if err := env.Run(); err != nil {
		t.Fatalf("Run: %v (a process panic must be contained)", err)
	}
	if got == nil || got.Name != "d" {
		t.Errorf("the surviving exchange did not complete: %+v", got)
	}
	panics := env.Engine().Panics()
	if len(panics) != 1 {
		t.Fatalf("Panics() = %d entries, want 1", len(panics))
	}
	pe := panics[0]
	if pe.Name != "bomb" || pe.Value != "worker bug" {
		t.Errorf("recorded panic = {%q %v}", pe.Name, pe.Value)
	}
	if !strings.Contains(string(pe.Stack), "failure_test.go") {
		t.Errorf("panic stack does not point at the panic site:\n%s", pe.Stack)
	}
}

// TestPanicMidRendezvousRecyclesRecord: a panic that unwinds out of a
// blocked Put takes the same abandon path as a kill — the record is
// recycled, the peer is not left dangling forever.
func TestPanicMidRendezvousRecyclesRecord(t *testing.T) {
	if !poolingEnabled {
		t.Skip("free lists disabled (-tags=nopool)")
	}
	env := NewEnvironment(lanPlatform(t), exact())
	env.NewProcess("bomb", "client", func(p *Process) error {
		err := p.PutWithTimeout(NewTask("x", 0, 1e6), "server", 3, 0.5)
		if errors.Is(err, ErrTimeout) {
			panic("gave up") // unwind with the record already dequeued
		}
		return err
	})
	env.NewProcess("bystander", "server", func(p *Process) error { return p.Sleep(2) })
	if err := env.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(env.Engine().Panics()) != 1 {
		t.Fatalf("want 1 contained panic, got %d", len(env.Engine().Panics()))
	}
	for i, ps := range env.sendPool {
		if *ps != (pendingSend{}) {
			t.Errorf("pooled pendingSend %d not scrubbed: %+v", i, *ps)
		}
	}
}
