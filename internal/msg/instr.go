package msg

import (
	"strconv"

	"repro/internal/gantt"
	"repro/internal/instr"
)

// Observability wiring for the MSG layer. On top of surf's platform
// band, the environment traces one PROCESS container per process or
// chain (under its host), an activity state (PSTATE: compute/put/get)
// pushed and popped alongside the existing gantt plumbing, message
// links between the communicating processes, and the mailbox backlog
// as root-container variables. All hooks are nil-guarded; the paired
// counters underneath (queue depths, retries, pool scoreboards) are
// plain always-on fields.

// msgTrace holds the MSG side of a Paje trace.
type msgTrace struct {
	tr       *instr.Trace
	procType string // PROCESS container type, under HOST
	pstate   string // activity state type on processes
	linkType string // MSG link type, spanning the platform root
	root     string // the "platform" root container alias
	qSendVar string // queued-sends variable on the root
	qRecvVar string // queued-recvs variable on the root
	nextKey  int    // deterministic message-link key counter
}

// EnableTrace attaches a Paje trace to the environment: the surf
// platform band is enabled first, then the MSG process band on top.
// Call it before deploying processes — containers are only created for
// processes and chains started after this. Idempotent; nil is a no-op.
func (env *Environment) EnableTrace(tr *instr.Trace) {
	if tr == nil || env.trace != nil {
		return
	}
	env.model.EnableTrace(tr)
	mt := &msgTrace{tr: tr, root: env.model.TraceRoot()}
	mt.procType = tr.DefineContainerType(env.model.TraceHostType(), "PROCESS")
	mt.pstate = tr.DefineStateType(mt.procType, "PSTATE")
	tr.DefineEntityValue(mt.pstate, "compute")
	tr.DefineEntityValue(mt.pstate, "put")
	tr.DefineEntityValue(mt.pstate, "get")
	tr.DefineEntityValue(mt.pstate, "killed")
	mt.linkType = tr.DefineLinkType(env.model.TraceRootType(), mt.procType, mt.procType, "MSG")
	mt.qSendVar = tr.DefineVariableType(env.model.TraceRootType(), "queued_sends")
	mt.qRecvVar = tr.DefineVariableType(env.model.TraceRootType(), "queued_recvs")
	env.trace = mt
}

// Trace returns the attached Paje trace (nil when tracing is off).
func (env *Environment) Trace() *instr.Trace {
	if env.trace == nil {
		return nil
	}
	return env.trace.tr
}

// pstateValue maps a gantt interval kind to its Paje PSTATE value, so
// the trace and the in-memory recorder stay two views of one event.
func pstateValue(kind gantt.Kind) string {
	switch kind {
	case gantt.Compute:
		return "compute"
	case gantt.Comm:
		return "put"
	default:
		return "get"
	}
}

// traceProcStart creates a process/chain container under its host and
// returns its alias ("" with tracing off).
func (env *Environment) traceProcStart(name, hostName string) string {
	mt := env.trace
	if mt == nil {
		return ""
	}
	return mt.tr.CreateContainer(env.eng.Now(), mt.procType, env.model.HostContainer(hostName), name)
}

// traceProcEnd closes a process/chain container: an abnormal death is
// marked with the "killed" state before the container goes away.
func (env *Environment) traceProcEnd(alias string, open bool, err error) {
	mt := env.trace
	if mt == nil || alias == "" {
		return
	}
	now := env.eng.Now()
	if open {
		mt.tr.PopState(now, mt.pstate, alias)
	}
	if err != nil {
		mt.tr.SetState(now, mt.pstate, alias, "killed")
	}
	mt.tr.DestroyContainer(now, mt.procType, alias)
}

// linkKey mints the next deterministic message-link key.
func (mt *msgTrace) newKey() string {
	k := "k" + strconv.Itoa(mt.nextKey)
	mt.nextKey++
	return k
}

// noteQueued tracks the mailbox backlog (queued sends and receives
// across all mailboxes). The counters are always on; with tracing
// enabled each change is also emitted as a root-container variable.
func (env *Environment) noteQueued(dSend, dRecv int) {
	env.queuedSends += dSend
	env.queuedRecvs += dRecv
	if env.queuedSends > env.queuedPeak {
		env.queuedPeak = env.queuedSends
	}
	if env.queuedRecvs > env.queuedPeak {
		env.queuedPeak = env.queuedRecvs
	}
	mt := env.trace
	if mt == nil {
		return
	}
	now := env.eng.Now()
	if dSend != 0 {
		mt.tr.SetVariable(now, mt.qSendVar, mt.root, float64(env.queuedSends))
	}
	if dRecv != 0 {
		mt.tr.SetVariable(now, mt.qRecvVar, mt.root, float64(env.queuedRecvs))
	}
}

// SendPoolStats reports the pendingSend free list's scoreboard.
func (env *Environment) SendPoolStats() instr.PoolStat {
	return instr.PoolStat{Hit: env.sendPoolHit, Miss: env.sendPoolMiss, Free: len(env.sendPool)}
}

// RecvPoolStats reports the pendingRecv free list's scoreboard.
func (env *Environment) RecvPoolStats() instr.PoolStat {
	return instr.PoolStat{Hit: env.recvPoolHit, Miss: env.recvPoolMiss, Free: len(env.recvPool)}
}

// ChainPoolStats reports the ChainProc free list's scoreboard.
func (env *Environment) ChainPoolStats() instr.PoolStat {
	return instr.PoolStat{Hit: env.chainPoolHit, Miss: env.chainPoolMiss, Free: len(env.chainPool)}
}

// Retries returns how many Retry re-attempts ran in this environment.
func (env *Environment) Retries() uint64 { return env.retries }

// MetricsInto dumps the MSG layer's counters and pool scoreboards into
// r (msg.* namespace) and delegates to the layers underneath (surf,
// maxmin, core).
func (env *Environment) MetricsInto(r *instr.Registry) {
	if r == nil {
		return
	}
	r.Counter("msg.retries").Add(env.retries)
	r.Gauge("msg.queued_sends").Set(float64(env.queuedSends))
	r.Gauge("msg.queued_recvs").Set(float64(env.queuedRecvs))
	r.Gauge("msg.queued_peak").SetMax(float64(env.queuedPeak))
	r.Gauge("msg.live_chains").Set(float64(len(env.chains)))
	r.SetPool("msg.send_pool", env.SendPoolStats())
	r.SetPool("msg.recv_pool", env.RecvPoolStats())
	r.SetPool("msg.chain_pool", env.ChainPoolStats())
	env.model.MetricsInto(r)
	env.eng.MetricsInto(r)
}
