// Package instr is the observability layer of the stack: Paje trace
// export, a metrics registry, and a wall-clock phase profiler, shared
// by every simulation package (core, maxmin, surf, msg, simdag,
// faults) and by the CLIs that expose them (-trace / -stats /
// -profile).
//
// Three bands, two clocks:
//
//   - The deterministic band — the Paje tracer and the metrics
//     registry — is stamped exclusively with SIMULATED time. Its byte
//     output is a pure function of the run: same workload, same trace,
//     bit for bit, pooled or not. Nothing in this band may read the
//     host clock (det-wallclock enforces it; this package is part of
//     the linter's determinism scope).
//   - The wall-clock band — the phase Profiler — measures how long the
//     kernel's own phases take in REAL time. It reports only: its
//     numbers never feed a simulation decision, so a run traced with
//     profiling on or off is identical. The single host-clock read
//     lives behind one reasoned //lint:allow seam (profile.go).
//
// Everything here is zero-cost when disabled: the layers hold nil
// pointers and every hook is either a nil-guard or a method that is
// safe (and trivially cheap) on a nil receiver. When enabled, trace
// events draw from a free list per the DESIGN pooling rules
// (factory.go, -tags=nopool to disable), so steady-state tracing adds
// no per-event allocation after warm-up.
//
// This package deliberately imports nothing from the rest of the
// module, so every layer can depend on it without cycles.
package instr

// PoolStat is one free list's scoreboard: how many grabs were served
// from the pool (Hit) vs freshly allocated (Miss), and the pool's
// current population (Free — at quiescence, the steady-state
// occupancy). Every pooled type across the stack reports one of these
// (cmd/benchstats surfaces them per tier).
type PoolStat struct {
	Hit  uint64 `json:"hit"`
	Miss uint64 `json:"miss"`
	Free int    `json:"steady_free"`
}
