package instr

import (
	"io"
	"sort"
	"strconv"
)

// Registry holds named metrics — counters, gauges and time-weighted
// integrals — and snapshots them as deterministic JSON: names are
// emitted sorted, values with Go's shortest-round-trip float
// formatting, so two identical runs produce identical bytes.
//
// Layers register metrics lazily (Counter/Gauge/Weighted are
// idempotent by name) and either update them live during the run or
// dump final totals at collection time (the MetricsInto convention).
// The registry is simulation-context only — no locking, exactly like
// every other kernel structure.
type Registry struct {
	names []string // registration order; sorted at snapshot
	items map[string]*metric
}

type metricKind int8

const (
	kindCounter metricKind = iota
	kindGauge
	kindWeighted
)

// metric is one named entry; the exported wrappers are typed views.
type metric struct {
	kind         metricKind
	n            uint64  // counter
	v            float64 // gauge value / weighted integral
	lastT, lastV float64
	began        bool // weighted: first observation seen
}

// NewRegistry returns an empty metrics registry.
func NewRegistry() *Registry {
	return &Registry{items: make(map[string]*metric)}
}

func (r *Registry) get(name string, kind metricKind) *metric {
	if m, ok := r.items[name]; ok {
		return m
	}
	m := &metric{kind: kind}
	r.items[name] = m
	r.names = append(r.names, name)
	return m
}

// Counter is a monotonically growing event count. All methods are
// no-ops on a nil receiver, so a disabled layer holds nil and calls
// through unconditionally.
type Counter struct{ m *metric }

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.m.n++
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.m.n += n
	}
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.m.n
}

// Gauge is a point-in-time value (queue depth, pool occupancy).
type Gauge struct{ m *metric }

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.m.v = v
	}
}

// SetMax stores v if it exceeds the current value (high-water marks).
func (g *Gauge) SetMax(v float64) {
	if g != nil && v > g.m.v {
		g.m.v = v
	}
}

// Weighted is a time-weighted integral over simulated time: each
// Observe(t, v) accrues previous-value × elapsed-sim-time, so
// Integral / elapsed is the time-average of the observed quantity
// (mean event-heap depth, mean utilization). Observations must come
// in non-decreasing t — which simulation code gets for free.
type Weighted struct{ m *metric }

// Observe accrues the integral up to sim-time t, then records v as the
// current value.
func (w *Weighted) Observe(t, v float64) {
	if w == nil {
		return
	}
	m := w.m
	if m.began && t > m.lastT {
		m.v += m.lastV * (t - m.lastT)
	}
	m.lastT, m.lastV, m.began = t, v, true
}

// Integral returns the accrued value-seconds up to the last
// observation.
func (w *Weighted) Integral() float64 {
	if w == nil {
		return 0
	}
	return w.m.v
}

// Counter returns (registering if needed) the named counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	return &Counter{m: r.get(name, kindCounter)}
}

// Gauge returns (registering if needed) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	return &Gauge{m: r.get(name, kindGauge)}
}

// Weighted returns (registering if needed) the named time-weighted
// integral.
func (r *Registry) Weighted(name string) *Weighted {
	if r == nil {
		return nil
	}
	return &Weighted{m: r.get(name, kindWeighted)}
}

// SetPool registers the three <name>.hit/.miss/.steady_free entries
// for one free list — the uniform shape every pooled type reports.
func (r *Registry) SetPool(name string, ps PoolStat) {
	if r == nil {
		return
	}
	r.Counter(name + ".hit").Add(ps.Hit)
	r.Counter(name + ".miss").Add(ps.Miss)
	r.Gauge(name + ".steady_free").Set(float64(ps.Free))
}

// WriteJSON writes the snapshot as one flat JSON object, keys sorted,
// trailing newline: {"name": value, ...}. Counters emit as integers,
// gauges and weighted integrals as shortest-round-trip floats. The
// byte output is a pure function of the registered state.
func (r *Registry) WriteJSON(w io.Writer) error {
	if r == nil {
		_, err := w.Write([]byte("{}\n"))
		return err
	}
	names := append([]string(nil), r.names...)
	sort.Strings(names)
	buf := make([]byte, 0, 64+32*len(names))
	buf = append(buf, '{', '\n')
	for i, name := range names {
		m := r.items[name]
		buf = append(buf, "  "...)
		buf = strconv.AppendQuote(buf, name)
		buf = append(buf, ':', ' ')
		switch m.kind {
		case kindCounter:
			buf = strconv.AppendUint(buf, m.n, 10)
		default:
			buf = appendFloat(buf, m.v)
		}
		if i < len(names)-1 {
			buf = append(buf, ',')
		}
		buf = append(buf, '\n')
	}
	buf = append(buf, '}', '\n')
	_, err := w.Write(buf)
	return err
}

// appendFloat formats a float64 as valid JSON (shortest round-trip;
// never the bare Inf/NaN tokens JSON rejects).
func appendFloat(buf []byte, v float64) []byte {
	if v != v || v > 1e308 || v < -1e308 {
		return append(buf, "null"...)
	}
	return strconv.AppendFloat(buf, v, 'g', -1, 64)
}
