package instr

import (
	"io"
	"strconv"
)

// Trace writes a Paje trace: a fixed %EventDef header followed by one
// numeric event line per emission, each stamped with SIMULATED time.
// Aliases for types and containers come from deterministic counters
// ("t0", "t1", ... / "c0", "c1", ...), string arguments are quoted
// with Go escaping, and floats use shortest-round-trip formatting —
// so the byte stream is a pure function of the emission sequence.
//
// Emissions fill pooled event records (factory.go) that are formatted
// and released in batches, keeping steady-state tracing allocation-
// free after warm-up. Like the rest of the kernel, a Trace is
// simulation-context-only and unlocked. All methods are safe on a nil
// receiver, so layers can call hooks unconditionally.
type Trace struct {
	w       io.Writer
	pending []*event
	out     []byte
	err     error
	nType   int
	nCont   int
}

// Paje event IDs, in header order.
const (
	pajeDefineContainerType = 0
	pajeDefineStateType     = 1
	pajeDefineVariableType  = 2
	pajeDefineLinkType      = 3
	pajeDefineEntityValue   = 4
	pajeCreateContainer     = 5
	pajeDestroyContainer    = 6
	pajeSetState            = 7
	pajePushState           = 8
	pajePopState            = 9
	pajeSetVariable         = 10
	pajeStartLink           = 11
	pajeEndLink             = 12
)

const pajeHeader = `%EventDef PajeDefineContainerType 0
%  Alias string
%  Type string
%  Name string
%EndEventDef
%EventDef PajeDefineStateType 1
%  Alias string
%  Type string
%  Name string
%EndEventDef
%EventDef PajeDefineVariableType 2
%  Alias string
%  Type string
%  Name string
%EndEventDef
%EventDef PajeDefineLinkType 3
%  Alias string
%  Type string
%  StartContainerType string
%  EndContainerType string
%  Name string
%EndEventDef
%EventDef PajeDefineEntityValue 4
%  Alias string
%  Type string
%  Name string
%EndEventDef
%EventDef PajeCreateContainer 5
%  Time date
%  Alias string
%  Type string
%  Container string
%  Name string
%EndEventDef
%EventDef PajeDestroyContainer 6
%  Time date
%  Type string
%  Name string
%EndEventDef
%EventDef PajeSetState 7
%  Time date
%  Type string
%  Container string
%  Value string
%EndEventDef
%EventDef PajePushState 8
%  Time date
%  Type string
%  Container string
%  Value string
%EndEventDef
%EventDef PajePopState 9
%  Time date
%  Type string
%  Container string
%EndEventDef
%EventDef PajeSetVariable 10
%  Time date
%  Type string
%  Container string
%  Value double
%EndEventDef
%EventDef PajeStartLink 11
%  Time date
%  Type string
%  Container string
%  SourceContainer string
%  Value string
%  Key string
%EndEventDef
%EventDef PajeEndLink 12
%  Time date
%  Type string
%  Container string
%  DestContainer string
%  Value string
%  Key string
%EndEventDef
`

// event is one pending trace line. Records come from the free list in
// factory.go and are scrubbed and released after formatting.
type event struct {
	id     int
	timed  bool
	time   float64
	hasVal bool
	val    float64
	args   []string
}

// flushBatch is how many pending events accumulate before being
// formatted and recycled; outChunk is the output-buffer size that
// triggers an actual write.
const (
	flushBatch = 256
	outChunk   = 1 << 15
)

// NewTrace starts a Paje trace on w, writing the event-definition
// header immediately.
func NewTrace(w io.Writer) *Trace {
	tr := &Trace{w: w, out: make([]byte, 0, outChunk+1024)}
	tr.out = append(tr.out, pajeHeader...)
	return tr
}

// typeAlias mints the next deterministic alias for a type-like
// definition (container/state/variable/link types and entity values).
func (tr *Trace) typeAlias() string {
	a := "t" + strconv.Itoa(tr.nType)
	tr.nType++
	return a
}

// contAlias mints the next deterministic container alias.
func (tr *Trace) contAlias() string {
	a := "c" + strconv.Itoa(tr.nCont)
	tr.nCont++
	return a
}

func (tr *Trace) emit(ev *event) {
	tr.pending = append(tr.pending, ev)
	if len(tr.pending) >= flushBatch {
		tr.drain()
	}
}

// drain formats every pending event into the output buffer, releases
// the records, and writes the buffer out once it crosses outChunk.
func (tr *Trace) drain() {
	for _, ev := range tr.pending {
		tr.out = strconv.AppendInt(tr.out, int64(ev.id), 10)
		if ev.timed {
			tr.out = append(tr.out, ' ')
			tr.out = appendFloat(tr.out, ev.time)
		}
		for _, a := range ev.args {
			tr.out = append(tr.out, ' ')
			tr.out = strconv.AppendQuote(tr.out, a)
		}
		if ev.hasVal {
			tr.out = append(tr.out, ' ')
			tr.out = appendFloat(tr.out, ev.val)
		}
		tr.out = append(tr.out, '\n')
		releaseEvent(ev)
	}
	tr.pending = tr.pending[:0]
	if len(tr.out) >= outChunk {
		tr.writeOut()
	}
}

func (tr *Trace) writeOut() {
	if len(tr.out) == 0 {
		return
	}
	if tr.err == nil && tr.w != nil {
		_, tr.err = tr.w.Write(tr.out)
	}
	tr.out = tr.out[:0]
}

// def queues an untimed definition event.
func (tr *Trace) def(id int, args ...string) {
	ev := grabEvent()
	ev.id = id
	ev.args = append(ev.args, args...)
	tr.emit(ev)
}

// timedEvent queues a timed event with string args only.
func (tr *Trace) timedEvent(id int, t float64, args ...string) {
	ev := grabEvent()
	ev.id = id
	ev.timed = true
	ev.time = t
	ev.args = append(ev.args, args...)
	tr.emit(ev)
}

// DefineContainerType declares a container type under parent (use
// "0" for the root type) and returns its alias.
func (tr *Trace) DefineContainerType(parent, name string) string {
	if tr == nil {
		return ""
	}
	a := tr.typeAlias()
	tr.def(pajeDefineContainerType, a, parent, name)
	return a
}

// DefineStateType declares a state type on container type ctype.
func (tr *Trace) DefineStateType(ctype, name string) string {
	if tr == nil {
		return ""
	}
	a := tr.typeAlias()
	tr.def(pajeDefineStateType, a, ctype, name)
	return a
}

// DefineVariableType declares a variable type on container type
// ctype.
func (tr *Trace) DefineVariableType(ctype, name string) string {
	if tr == nil {
		return ""
	}
	a := tr.typeAlias()
	tr.def(pajeDefineVariableType, a, ctype, name)
	return a
}

// DefineLinkType declares a link type rooted at parent, connecting
// containers of srcType to containers of dstType.
func (tr *Trace) DefineLinkType(parent, srcType, dstType, name string) string {
	if tr == nil {
		return ""
	}
	a := tr.typeAlias()
	tr.def(pajeDefineLinkType, a, parent, srcType, dstType, name)
	return a
}

// DefineEntityValue declares a named value for state type stype.
func (tr *Trace) DefineEntityValue(stype, name string) string {
	if tr == nil {
		return ""
	}
	a := tr.typeAlias()
	tr.def(pajeDefineEntityValue, a, stype, name)
	return a
}

// CreateContainer creates a container of type ctype under parent
// (alias or "0" for the root) and returns its alias.
func (tr *Trace) CreateContainer(t float64, ctype, parent, name string) string {
	if tr == nil {
		return ""
	}
	a := tr.contAlias()
	tr.timedEvent(pajeCreateContainer, t, a, ctype, parent, name)
	return a
}

// DestroyContainer destroys the container with the given alias.
func (tr *Trace) DestroyContainer(t float64, ctype, alias string) {
	if tr == nil {
		return
	}
	tr.timedEvent(pajeDestroyContainer, t, ctype, alias)
}

// SetState sets the current value of a state (replacing any previous
// value).
func (tr *Trace) SetState(t float64, stype, container, value string) {
	if tr == nil {
		return
	}
	tr.timedEvent(pajeSetState, t, stype, container, value)
}

// PushState pushes a value onto a state's stack.
func (tr *Trace) PushState(t float64, stype, container, value string) {
	if tr == nil {
		return
	}
	tr.timedEvent(pajePushState, t, stype, container, value)
}

// PopState pops the top value off a state's stack.
func (tr *Trace) PopState(t float64, stype, container string) {
	if tr == nil {
		return
	}
	tr.timedEvent(pajePopState, t, stype, container)
}

// SetVariable sets a numeric variable on a container.
func (tr *Trace) SetVariable(t float64, vtype, container string, v float64) {
	if tr == nil {
		return
	}
	ev := grabEvent()
	ev.id = pajeSetVariable
	ev.timed = true
	ev.time = t
	ev.args = append(ev.args, vtype, container)
	ev.hasVal = true
	ev.val = v
	tr.emit(ev)
}

// StartLink starts an arrow of type ltype within container, leaving
// srcContainer; key pairs it with the matching EndLink.
func (tr *Trace) StartLink(t float64, ltype, container, srcContainer, value, key string) {
	if tr == nil {
		return
	}
	tr.timedEvent(pajeStartLink, t, ltype, container, srcContainer, value, key)
}

// EndLink ends the arrow with the matching key at dstContainer.
func (tr *Trace) EndLink(t float64, ltype, container, dstContainer, value, key string) {
	if tr == nil {
		return
	}
	tr.timedEvent(pajeEndLink, t, ltype, container, dstContainer, value, key)
}

// Flush formats all pending events and writes every buffered byte to
// the underlying writer.
func (tr *Trace) Flush() error {
	if tr == nil {
		return nil
	}
	tr.drain()
	tr.writeOut()
	return tr.err
}

// Close flushes the trace. The underlying writer is not closed — the
// caller owns it.
func (tr *Trace) Close() error { return tr.Flush() }
