//go:build nopool

package instr

// poolingEnabled is off under -tags=nopool: every trace event is a
// fresh allocation and releases are dropped for the GC.
const poolingEnabled = false
