//go:build !nopool

package instr

// poolingEnabled gates the trace event free list; build with
// -tags=nopool to allocate every event fresh (leak hunts, -race runs).
const poolingEnabled = true
