package instr

import (
	"bytes"
	"strings"
	"testing"
)

func TestRegistryJSONDeterministic(t *testing.T) {
	build := func() *Registry {
		r := NewRegistry()
		r.Counter("z.count").Add(3)
		r.Counter("a.count").Inc()
		r.Gauge("m.depth").Set(4.5)
		r.Gauge("m.depth").SetMax(2) // below current: no effect
		w := r.Weighted("util")
		w.Observe(0, 1)
		w.Observe(2, 0.5)
		w.Observe(4, 0)
		r.SetPool("pool.x", PoolStat{Hit: 10, Miss: 2, Free: 7})
		return r
	}
	var b1, b2 bytes.Buffer
	if err := build().WriteJSON(&b1); err != nil {
		t.Fatal(err)
	}
	if err := build().WriteJSON(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatalf("snapshot not deterministic:\n%s\nvs\n%s", b1.String(), b2.String())
	}
	out := b1.String()
	// Keys must come out sorted.
	if strings.Index(out, `"a.count"`) > strings.Index(out, `"z.count"`) {
		t.Fatalf("keys not sorted:\n%s", out)
	}
	for _, want := range []string{`"a.count": 1`, `"z.count": 3`, `"m.depth": 4.5`, `"util": 3`, `"pool.x.hit": 10`, `"pool.x.miss": 2`, `"pool.x.steady_free": 7`} {
		if !strings.Contains(out, want) {
			t.Errorf("snapshot missing %q:\n%s", want, out)
		}
	}
}

func TestWeightedIntegral(t *testing.T) {
	r := NewRegistry()
	w := r.Weighted("depth")
	w.Observe(1, 2)  // depth 2 from t=1
	w.Observe(3, 5)  // 2*2=4 accrued
	w.Observe(3, 7)  // zero elapsed: no accrual, value replaced
	w.Observe(10, 0) // 7*7=49 accrued
	if got := w.Integral(); got != 53 {
		t.Fatalf("Integral = %v, want 53", got)
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	r.Counter("x").Inc()
	r.Gauge("x").Set(1)
	r.Weighted("x").Observe(1, 1)
	r.SetPool("x", PoolStat{})
	var b bytes.Buffer
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if b.String() != "{}\n" {
		t.Fatalf("nil registry snapshot = %q", b.String())
	}

	var tr *Trace
	if a := tr.DefineContainerType("0", "HOST"); a != "" {
		t.Fatalf("nil trace alias = %q", a)
	}
	tr.CreateContainer(0, "t0", "0", "h")
	tr.SetState(0, "t1", "c0", "on")
	tr.PushState(0, "t1", "c0", "x")
	tr.PopState(1, "t1", "c0")
	tr.SetVariable(1, "t2", "c0", 0.5)
	tr.StartLink(1, "t3", "c0", "c0", "m", "k")
	tr.EndLink(2, "t3", "c0", "c0", "m", "k")
	tr.DestroyContainer(2, "t0", "c0")
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	var p *Profiler
	t0 := p.Begin()
	p.End(PhaseSolve, t0)
	if p.Total(PhaseSolve) != 0 || p.Count(PhaseSolve) != 0 {
		t.Fatal("nil profiler accumulated")
	}
	if err := p.WriteReport(&b); err != nil {
		t.Fatal(err)
	}
}

// writeSample emits a small but representative trace and returns its
// bytes.
func writeSample(t *testing.T) []byte {
	t.Helper()
	var b bytes.Buffer
	tr := NewTrace(&b)
	host := tr.DefineContainerType("0", "HOST")
	proc := tr.DefineContainerType(host, "PROCESS")
	pstate := tr.DefineStateType(proc, "PSTATE")
	util := tr.DefineVariableType(host, "utilization")
	msg := tr.DefineLinkType("0", proc, proc, "MSG")
	tr.DefineEntityValue(pstate, "compute")
	h := tr.CreateContainer(0, host, "0", "node one")
	p1 := tr.CreateContainer(0, proc, h, "worker-1")
	p2 := tr.CreateContainer(0, proc, h, "worker-2")
	tr.PushState(0, pstate, p1, "compute")
	tr.SetVariable(0.5, util, h, 0.75)
	tr.StartLink(1, msg, "0", p1, "task", "k0")
	tr.PopState(1.5, pstate, p1)
	tr.EndLink(2, msg, "0", p2, "task", "k0")
	tr.SetState(2, pstate, p2, "running")
	tr.SetState(3, pstate, p2, "blocked")
	tr.DestroyContainer(4, proc, p2)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

func TestTraceRoundTrip(t *testing.T) {
	raw := writeSample(t)
	if !bytes.HasPrefix(raw, []byte("%EventDef PajeDefineContainerType 0\n")) {
		t.Fatalf("missing header:\n%s", raw[:80])
	}
	td, err := ReadTrace(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if len(td.Containers) != 3 {
		t.Fatalf("containers = %+v", td.Containers)
	}
	if td.Containers[0].Name != "node one" || td.Containers[0].Type != "HOST" {
		t.Fatalf("container[0] = %+v", td.Containers[0])
	}
	if td.Containers[1].Parent != "node one" || td.Containers[1].Type != "PROCESS" {
		t.Fatalf("container[1] = %+v", td.Containers[1])
	}
	want := map[string]StateInterval{
		"worker-1/compute": {Container: "worker-1", Type: "PSTATE", Value: "compute", Start: 0, End: 1.5},
		"worker-2/running": {Container: "worker-2", Type: "PSTATE", Value: "running", Start: 2, End: 3},
		"worker-2/blocked": {Container: "worker-2", Type: "PSTATE", Value: "blocked", Start: 3, End: 4},
	}
	if len(td.Intervals) != len(want) {
		t.Fatalf("intervals = %+v", td.Intervals)
	}
	for _, iv := range td.Intervals {
		w, ok := want[iv.Container+"/"+iv.Value]
		if !ok || iv != w {
			t.Errorf("unexpected interval %+v (want %+v)", iv, w)
		}
	}
	if len(td.Links) != 1 {
		t.Fatalf("links = %+v", td.Links)
	}
	l := td.Links[0]
	if l.Src != "worker-1" || l.Dst != "worker-2" || l.Start != 1 || l.End != 2 || l.Value != "task" {
		t.Fatalf("link = %+v", l)
	}
	if td.EndTime != 4 {
		t.Fatalf("EndTime = %v", td.EndTime)
	}
}

func TestTraceBytesStable(t *testing.T) {
	first := writeSample(t)
	for i := 0; i < 4; i++ {
		if got := writeSample(t); !bytes.Equal(first, got) {
			t.Fatalf("run %d differs", i+2)
		}
	}
}

func TestEventPoolRecycles(t *testing.T) {
	if !poolingEnabled {
		t.Skip("pooling disabled by build tag")
	}
	var b bytes.Buffer
	tr := NewTrace(&b)
	ct := tr.DefineContainerType("0", "HOST")
	st := tr.DefineStateType(ct, "S")
	c := tr.CreateContainer(0, ct, "0", "h")
	before := EventPoolStats()
	// Fill well past one flush batch so recycled records get reused.
	for i := 0; i < 3*flushBatch; i++ {
		tr.SetState(float64(i), st, c, "v")
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	after := EventPoolStats()
	if after.Hit <= before.Hit {
		t.Fatalf("pool never hit: before=%+v after=%+v", before, after)
	}
	if after.Free == 0 {
		t.Fatal("pool empty after flush")
	}
}

func TestProfilerAccumulates(t *testing.T) {
	p := NewProfiler()
	t0 := p.Begin()
	p.End(PhaseAdvance, t0)
	if p.Count(PhaseAdvance) != 1 {
		t.Fatalf("count = %d", p.Count(PhaseAdvance))
	}
	var b bytes.Buffer
	if err := p.WriteReport(&b); err != nil {
		t.Fatal(err)
	}
	for _, s := range []string{"solve", "advance", "sweep", "dispatch", "total"} {
		if !strings.Contains(b.String(), s) {
			t.Errorf("report missing %q:\n%s", s, b.String())
		}
	}
}
