package instr

// Free list for trace event records. This is the only place an event
// composite literal may appear (lint: pool-literal); grab everywhere,
// release after formatting, scrub on release. The pool is
// simulation-context-only like the Trace that feeds it, so it needs
// no lock.

// maxPooledEvents bounds the free list; events beyond it are dropped
// for the GC. flushBatch is far below this, so in practice every
// event recycles.
const maxPooledEvents = 4096

var eventPool struct {
	free      []*event
	hit, miss uint64
}

func grabEvent() *event {
	if poolingEnabled {
		if n := len(eventPool.free); n > 0 {
			ev := eventPool.free[n-1]
			eventPool.free[n-1] = nil
			eventPool.free = eventPool.free[:n-1]
			eventPool.hit++
			return ev
		}
	}
	eventPool.miss++
	return &event{args: make([]string, 0, 6)}
}

func releaseEvent(ev *event) {
	for i := range ev.args {
		ev.args[i] = ""
	}
	ev.args = ev.args[:0]
	ev.id = 0
	ev.timed = false
	ev.time = 0
	ev.hasVal = false
	ev.val = 0
	if poolingEnabled && len(eventPool.free) < maxPooledEvents {
		eventPool.free = append(eventPool.free, ev)
	}
}

// EventPoolStats reports the trace event free list's scoreboard.
func EventPoolStats() PoolStat {
	return PoolStat{Hit: eventPool.hit, Miss: eventPool.miss, Free: len(eventPool.free)}
}
