package instr

import (
	"fmt"
	"io"
	"time"
)

// Phase identifies one kernel phase the Profiler times.
type Phase int

const (
	// PhaseSolve is the model next-event computation, including the
	// lazy maxmin solve it triggers.
	PhaseSolve Phase = iota
	// PhaseAdvance is the model AdvanceTo sweep that completes actions
	// up to the new simulated time.
	PhaseAdvance
	// PhaseSweep is the timer-firing loop (watchpoints, deadlines,
	// fault events).
	PhaseSweep
	// PhaseDispatch is the run-queue drain that hands control to ready
	// processes.
	PhaseDispatch
	numPhases
)

var phaseNames = [numPhases]string{"solve", "advance", "sweep", "dispatch"}

// String returns the phase's report name.
func (p Phase) String() string {
	if p < 0 || p >= numPhases {
		return "unknown"
	}
	return phaseNames[p]
}

// Profiler accumulates WALL-CLOCK time per kernel phase. It lives in
// the report-only band: its readings are never visible to simulation
// code, so enabling it cannot perturb a run's trace or results — only
// its wall-clock duration. Methods are safe on a nil receiver; a
// disabled engine holds nil and pays one pointer test per phase.
type Profiler struct {
	total [numPhases]time.Duration
	count [numPhases]uint64
}

// NewProfiler returns an empty profiler.
func NewProfiler() *Profiler { return &Profiler{} }

// now is the profiler's single host-clock read. Everything else in
// this package (and in every simulation package) is stamped with
// simulated time.
func (p *Profiler) now() time.Time {
	return time.Now() //lint:allow det-wallclock profiler self-timing is report-only; readings never feed simulation state or trace output
}

// Begin samples the host clock at a phase boundary. Returns the zero
// time on a nil profiler.
func (p *Profiler) Begin() time.Time {
	if p == nil {
		return time.Time{}
	}
	return p.now()
}

// End charges the elapsed wall-clock time since t0 to phase ph.
func (p *Profiler) End(ph Phase, t0 time.Time) {
	if p == nil {
		return
	}
	p.total[ph] += p.now().Sub(t0)
	p.count[ph]++
}

// Total returns the accumulated wall-clock time for ph.
func (p *Profiler) Total(ph Phase) time.Duration {
	if p == nil {
		return 0
	}
	return p.total[ph]
}

// Count returns how many times ph was timed.
func (p *Profiler) Count(ph Phase) uint64 {
	if p == nil {
		return 0
	}
	return p.count[ph]
}

// WriteReport writes a human-readable per-phase table: calls, total
// wall-clock time, mean per call, and share of the profiled total.
func (p *Profiler) WriteReport(w io.Writer) error {
	if p == nil {
		return nil
	}
	var grand time.Duration
	for ph := Phase(0); ph < numPhases; ph++ {
		grand += p.total[ph]
	}
	if _, err := fmt.Fprintf(w, "%-10s %12s %14s %12s %7s\n", "phase", "calls", "total", "mean", "share"); err != nil {
		return err
	}
	for ph := Phase(0); ph < numPhases; ph++ {
		var mean time.Duration
		if p.count[ph] > 0 {
			mean = p.total[ph] / time.Duration(p.count[ph])
		}
		share := 0.0
		if grand > 0 {
			share = 100 * float64(p.total[ph]) / float64(grand)
		}
		if _, err := fmt.Fprintf(w, "%-10s %12d %14s %12s %6.1f%%\n",
			ph.String(), p.count[ph], p.total[ph], mean, share); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%-10s %12s %14s\n", "total", "", grand)
	return err
}
