package instr

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// This file parses the Paje subset that Trace emits, so a written
// trace can be loaded back and rendered (cmd/ganttgen -paje). It is a
// consumer-side proof that the format round-trips, not a general Paje
// parser: it assumes the alias scheme and quoting NewTrace produces.

// Container is one container seen in a trace, in creation order.
type Container struct {
	Name   string
	Type   string // container type name (e.g. HOST, PROCESS)
	Parent string // parent container name; "" for roots
}

// StateInterval is one closed span of a state on a container:
// [Start, End) during which the state held Value. Push/Pop pairs and
// Set transitions both reduce to intervals; spans still open at
// end-of-trace are closed at the trace's last timestamp.
type StateInterval struct {
	Container string
	Type      string // state type name (e.g. PSTATE, TSTATE)
	Value     string
	Start     float64
	End       float64
}

// LinkSpan is one matched StartLink/EndLink pair.
type LinkSpan struct {
	Type       string
	Src, Dst   string // container names
	Value, Key string
	Start, End float64
}

// TraceData is the decoded content of one Paje trace.
type TraceData struct {
	Containers []Container
	Intervals  []StateInterval
	Links      []LinkSpan
	EndTime    float64
}

// typeDecl maps a type alias to its name for every definition kind —
// the reader only needs names.
type openState struct {
	cont, typ string // container and state-type names
	stack     []stackedVal
	setVal    string // current SetState value ("" = none)
	setAt     float64
}

type stackedVal struct {
	val string
	at  float64
}

type openLink struct {
	typ, src, val, key string
	at                 float64
}

// ReadTrace decodes a trace produced by Trace from r.
func ReadTrace(r io.Reader) (*TraceData, error) {
	td := &TraceData{}
	types := map[string]string{} // type alias -> name
	conts := map[string]string{} // container alias -> name
	stateIdx := map[string]int{} // cont+"\x00"+type -> index into states
	var states []*openState      // deterministic close order
	var links []openLink
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "%") || strings.HasPrefix(line, "#") {
			continue
		}
		fields, err := splitPaje(line)
		if err != nil {
			return nil, fmt.Errorf("paje line %d: %w", lineNo, err)
		}
		if len(fields) == 0 {
			continue
		}
		id, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("paje line %d: bad event id %q", lineNo, fields[0])
		}
		args := fields[1:]
		// Timed events carry the timestamp first.
		var t float64
		if id >= pajeCreateContainer {
			if len(args) == 0 {
				return nil, fmt.Errorf("paje line %d: missing timestamp", lineNo)
			}
			t, err = strconv.ParseFloat(args[0], 64)
			if err != nil {
				return nil, fmt.Errorf("paje line %d: bad timestamp %q", lineNo, args[0])
			}
			args = args[1:]
			if t > td.EndTime {
				td.EndTime = t
			}
		}
		get := func(i int) string {
			if i < len(args) {
				return args[i]
			}
			return ""
		}
		stateFor := func(contAlias, typeAlias string) *openState {
			cn, tn := conts[contAlias], types[typeAlias]
			k := cn + "\x00" + tn
			if i, ok := stateIdx[k]; ok {
				return states[i]
			}
			st := &openState{cont: cn, typ: tn}
			stateIdx[k] = len(states)
			states = append(states, st)
			return st
		}
		switch id {
		case pajeDefineContainerType, pajeDefineStateType, pajeDefineVariableType:
			types[get(0)] = get(2)
		case pajeDefineLinkType:
			types[get(0)] = get(4)
		case pajeDefineEntityValue:
			types[get(0)] = get(2)
		case pajeCreateContainer:
			alias, ctype, parent, name := get(0), get(1), get(2), get(3)
			conts[alias] = name
			td.Containers = append(td.Containers, Container{
				Name:   name,
				Type:   types[ctype],
				Parent: conts[parent],
			})
		case pajeDestroyContainer:
			name := conts[get(1)]
			for _, st := range states {
				if st.cont == name {
					closeState(td, st, t)
				}
			}
		case pajeSetState:
			st := stateFor(get(1), get(0))
			if st.setVal != "" {
				td.Intervals = append(td.Intervals, StateInterval{
					Container: st.cont, Type: st.typ, Value: st.setVal,
					Start: st.setAt, End: t,
				})
			}
			st.setVal, st.setAt = get(2), t
		case pajePushState:
			st := stateFor(get(1), get(0))
			st.stack = append(st.stack, stackedVal{val: get(2), at: t})
		case pajePopState:
			st := stateFor(get(1), get(0))
			if n := len(st.stack); n > 0 {
				top := st.stack[n-1]
				st.stack = st.stack[:n-1]
				td.Intervals = append(td.Intervals, StateInterval{
					Container: st.cont, Type: st.typ, Value: top.val,
					Start: top.at, End: t,
				})
			}
		case pajeSetVariable:
			// Variables are not needed for rendering; skip.
		case pajeStartLink:
			links = append(links, openLink{
				typ: types[get(0)], src: conts[get(2)], val: get(3), key: get(4), at: t,
			})
		case pajeEndLink:
			ltype, dst, key := types[get(0)], conts[get(2)], get(4)
			for i := range links {
				if links[i].key == key && links[i].typ == ltype {
					td.Links = append(td.Links, LinkSpan{
						Type: ltype, Src: links[i].src, Dst: dst,
						Value: links[i].val, Key: key,
						Start: links[i].at, End: t,
					})
					links = append(links[:i], links[i+1:]...)
					break
				}
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for _, st := range states {
		closeState(td, st, td.EndTime)
	}
	return td, nil
}

// closeState flushes a state's open set-value and stacked values as
// intervals ending at t.
func closeState(td *TraceData, st *openState, t float64) {
	if st.setVal != "" {
		td.Intervals = append(td.Intervals, StateInterval{
			Container: st.cont, Type: st.typ, Value: st.setVal,
			Start: st.setAt, End: t,
		})
		st.setVal = ""
	}
	for i := len(st.stack) - 1; i >= 0; i-- {
		td.Intervals = append(td.Intervals, StateInterval{
			Container: st.cont, Type: st.typ, Value: st.stack[i].val,
			Start: st.stack[i].at, End: t,
		})
	}
	st.stack = st.stack[:0]
}

// splitPaje splits an event line into fields: whitespace-separated
// tokens, with Go-quoted strings (as AppendQuote emits) kept as one
// field and unescaped.
func splitPaje(line string) ([]string, error) {
	var fields []string
	i := 0
	for i < len(line) {
		for i < len(line) && line[i] == ' ' {
			i++
		}
		if i >= len(line) {
			break
		}
		if line[i] == '"' {
			j := i + 1
			for j < len(line) {
				if line[j] == '\\' {
					j += 2
					continue
				}
				if line[j] == '"' {
					break
				}
				j++
			}
			if j >= len(line) {
				return nil, fmt.Errorf("unterminated quote")
			}
			s, err := strconv.Unquote(line[i : j+1])
			if err != nil {
				return nil, fmt.Errorf("bad quoted field %q: %w", line[i:j+1], err)
			}
			fields = append(fields, s)
			i = j + 1
		} else {
			j := i
			for j < len(line) && line[j] != ' ' {
				j++
			}
			fields = append(fields, line[i:j])
			i = j
		}
	}
	return fields, nil
}
