// Package lint is the project's static-analysis suite: it machine-checks
// the kernel contracts that DESIGN.md states in prose and that replay
// tests can only probabilistically witness — deterministic event
// ordering, pooled-object ownership, goroutine-free and allocation-free
// hot paths, and the simcall blocking contract.
//
// The suite is deliberately stdlib-only (go/parser + go/types with the
// "source" importer); it does not depend on golang.org/x/tools. Each
// rule is registered under a stable ID:
//
//	det-maprange            no range over a map on a simulation path
//	det-wallclock           no time.Now / global math/rand in simulation packages
//	det-goroutine           no go statements outside approved spawn sites
//	pool-literal            pooled types built only by their factory files
//	pool-use-after-release  no reads of an object after it was released
//	simcall-in-handler      Completion handlers cannot reach blocking simcalls
//	hot-sprintf             no fmt.Sprintf in concat-converted hot packages
//
// A finding is suppressed with an in-source annotation carrying a
// mandatory reason, placed on the offending line or alone on the line
// directly above it:
//
//	for k := range m { //lint:allow det-maprange keys are re-sorted below
//
// Malformed annotations (unknown rule, missing reason) and stale ones
// (the named rule no longer fires there) are themselves findings, so
// suppressions cannot rot silently.
//
// cmd/simgrid-lint is the command-line driver; the fixture harness in
// this package (Check / // want "…" expectations under testdata/)
// pins each rule's positive and negative cases.
package lint
