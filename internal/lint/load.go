package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed, type-checked, lint-ready package.
type Package struct {
	Path  string // import path, used for rule scoping
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File // build-selected non-test files, in file-name order
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks packages of the enclosing module using
// only the standard library. Module-internal imports resolve through
// the loader itself (so every rule sees one canonical *types.Package
// per module package); everything else falls back to the "source"
// importer, which type-checks the dependency from GOROOT source.
type Loader struct {
	Fset    *token.FileSet
	ctxt    build.Context
	root    string // module root directory (holds go.mod)
	modPath string
	std     types.ImporterFrom
	pkgs    map[string]*Package // by import path
	loading map[string]bool     // cycle guard
}

// NewLoader returns a loader rooted at the module directory root.
func NewLoader(root string) (*Loader, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	ctxt := build.Default
	// The source importer reads &build.Default directly; force pure-Go
	// views of the stdlib so type-checking never needs a C toolchain.
	build.Default.CgoEnabled = false
	ctxt.CgoEnabled = false
	l := &Loader{
		Fset:    fset,
		ctxt:    ctxt,
		root:    abs,
		modPath: modPath,
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
	}
	l.std = importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	return l, nil
}

// ModulePath returns the module path declared in go.mod.
func (l *Loader) ModulePath() string { return l.modPath }

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, l.root, 0)
}

// ImportFrom implements types.ImporterFrom: module-internal paths are
// loaded (and cached) by the loader, the rest delegates to the source
// importer.
func (l *Loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if rel, ok := l.moduleRel(path); ok {
		p, err := l.LoadDir(filepath.Join(l.root, filepath.FromSlash(rel)))
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.ImportFrom(path, dir, mode)
}

// moduleRel reports whether path names a package of this module, and
// its directory relative to the module root.
func (l *Loader) moduleRel(path string) (string, bool) {
	if path == l.modPath {
		return ".", true
	}
	if strings.HasPrefix(path, l.modPath+"/") {
		return path[len(l.modPath)+1:], true
	}
	return "", false
}

// pathForDir is the inverse of moduleRel.
func (l *Loader) pathForDir(dir string) (string, error) {
	rel, err := filepath.Rel(l.root, dir)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return l.modPath, nil
	}
	if strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("lint: %s is outside the module", dir)
	}
	return l.modPath + "/" + filepath.ToSlash(rel), nil
}

// LoadDir loads the single package in dir (non-test files only, build
// constraints honored with the default tag set). Results are cached by
// import path.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	path, err := l.pathForDir(abs)
	if err != nil {
		return nil, err
	}
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	bp, err := l.ctxt.ImportDir(abs, 0)
	if err != nil {
		return nil, err
	}
	names := append([]string(nil), bp.GoFiles...)
	sort.Strings(names)
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(abs, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	var terrs []string
	conf := types.Config{
		Importer: l,
		Error: func(err error) {
			if len(terrs) < 10 {
				terrs = append(terrs, err.Error())
			}
		},
	}
	tpkg, _ := conf.Check(path, l.Fset, files, info)
	if len(terrs) > 0 {
		return nil, fmt.Errorf("lint: type-checking %s failed:\n\t%s", path, strings.Join(terrs, "\n\t"))
	}
	p := &Package{
		Path:  path,
		Dir:   abs,
		Fset:  l.Fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}
	l.pkgs[path] = p
	return p, nil
}

// LoadPatterns expands go-style package patterns (a directory, or a
// prefix ending in /... for a recursive walk; testdata, vendor and
// dot/underscore directories are skipped) and loads every matched
// package. Directories without buildable Go files are skipped silently.
func (l *Loader) LoadPatterns(patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	var dirs []string
	seen := make(map[string]bool)
	add := func(d string) {
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if strings.HasSuffix(pat, "/...") || pat == "..." {
			recursive = true
			pat = strings.TrimSuffix(strings.TrimSuffix(pat, "..."), "/")
			if pat == "" {
				pat = "."
			}
		}
		base := pat
		if !filepath.IsAbs(base) {
			base = filepath.Join(l.root, base)
		}
		if !recursive {
			add(base)
			continue
		}
		err := filepath.Walk(base, func(path string, fi os.FileInfo, err error) error {
			if err != nil {
				return err
			}
			if !fi.IsDir() {
				return nil
			}
			name := fi.Name()
			if path != base && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			add(path)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	var pkgs []*Package
	for _, dir := range dirs {
		p, err := l.LoadDir(dir)
		if err != nil {
			if _, ok := err.(*build.NoGoError); ok {
				continue
			}
			return nil, err
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			mp := strings.TrimSpace(rest)
			mp = strings.Trim(mp, `"`)
			if mp != "" {
				return mp, nil
			}
		}
	}
	return "", fmt.Errorf("lint: no module line in %s", gomod)
}
