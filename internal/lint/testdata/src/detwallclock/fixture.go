// Fixture for det-wallclock: positive cases read the host clock or the
// global math/rand source; negative cases use an explicitly seeded
// local generator or pure time arithmetic.
package detwallclock

import (
	"math/rand"
	"time"
)

func stamp() float64 {
	t := time.Now() // want "wallclock read time.Now"
	return float64(t.Unix())
}

func elapsed(t0 time.Time) float64 {
	return time.Since(t0).Seconds() // want "wallclock read time.Since"
}

func deadline(t time.Time) time.Duration {
	return time.Until(t) // want "wallclock read time.Until"
}

func globalDraw() int {
	return rand.Intn(10) // want "global math/rand source via rand.Intn"
}

func globalFloat() float64 {
	return rand.Float64() // want "global math/rand source via rand.Float64"
}

func globalShuffle(s []int) {
	rand.Shuffle(len(s), func(i, j int) { s[i], s[j] = s[j], s[i] }) // want "global math/rand source via rand.Shuffle"
}

func seededDraw(seed int64) int {
	r := rand.New(rand.NewSource(seed)) // constructors are the sanctioned path
	return r.Intn(10)                   // methods on a local *rand.Rand are fine
}

func pureArithmetic(d time.Duration) time.Duration {
	return d * 2 // no clock read: fine
}
