// Fixture for the faults-package determinism contract: a fault
// schedule is a pure function of (seed, params), so its compiler must
// draw from locally seeded generators only (det-wallclock) and expand
// resource sets in a deterministic order (det-maprange). Positive
// cases model the tempting-but-wrong shortcuts; negative cases the
// sanctioned shapes internal/faults actually uses.
package faultsched

import (
	"math/rand"
	"sort"
	"time"
)

type event struct {
	at   float64
	name string
}

// badCompile draws failure times from the global source and stamps the
// schedule with the host clock — two different ways to break replay.
func badCompile(hosts []string, mtbf float64) []event {
	var out []event
	for _, h := range hosts {
		at := rand.ExpFloat64() * mtbf // want "global math/rand source via rand.ExpFloat64"
		out = append(out, event{at, h})
	}
	stamp := time.Now() // want "wallclock read time.Now"
	_ = stamp
	return out
}

// badExpand walks the class membership as a map: the emitted event
// order would differ between runs even with per-resource sub-seeding.
func badExpand(classes map[string]float64) []event {
	var out []event
	for name, mtbf := range classes { // want "range over map map\\[string\\]float64"
		out = append(out, event{mtbf, name})
	}
	return out
}

// goodCompile is the sanctioned shape: explicit seed through a local
// generator, membership as a slice, merged order fixed by sorting.
func goodCompile(seed int64, hosts []string, mtbf float64) []event {
	var out []event
	for _, h := range hosts {
		rng := rand.New(rand.NewSource(seed)) // constructors are the sanctioned path
		out = append(out, event{rng.ExpFloat64() * mtbf, h})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].at != out[j].at {
			return out[i].at < out[j].at
		}
		return out[i].name < out[j].name
	})
	return out
}
